(* The admission-control daemon's endpoint surface: a Router over a
   Cac.Engine.  Engines are single-domain by contract, so every engine
   call is serialized by one mutex — decisions are microseconds
   (cached: a hash lookup), so the lock is never the bottleneck next
   to socket I/O. *)

type t = {
  engine : Cac.Engine.t;
  mutex : Mutex.t;
  started_wall : float;
}

let create engine =
  { engine; mutex = Mutex.create (); started_wall = Obs.Clock.wall () }

let with_engine t f = Mutex.protect t.mutex (fun () -> f t.engine)

(* {2 Request decoding} *)

let body_json (req : Http.request) =
  match Obs.Json.of_string req.Http.body with
  | Some doc -> Ok doc
  | None -> Stdlib.Error (Http.json_error ~status:400 "malformed JSON body")

let string_field doc name =
  match Obs.Json.member name doc with
  | Some (Obs.Json.String s) -> Ok s
  | Some _ ->
      Stdlib.Error
        (Http.json_error ~status:422
           (Printf.sprintf "field %S must be a string" name))
  | None ->
      Stdlib.Error
        (Http.json_error ~status:422 (Printf.sprintf "missing field %S" name))

let int_field doc name =
  match Obs.Json.member name doc with
  | Some (Obs.Json.Int n) -> Ok n
  | Some _ ->
      Stdlib.Error
        (Http.json_error ~status:422
           (Printf.sprintf "field %S must be an integer" name))
  | None ->
      Stdlib.Error
        (Http.json_error ~status:422 (Printf.sprintf "missing field %S" name))

let ( let* ) r k = match r with Ok v -> k v | Stdlib.Error resp -> resp

(* {"link": ..., "class": ...} — the decide/admit request schema. *)
let link_class t req k =
  let* doc = body_json req in
  let* link = string_field doc "link" in
  let* cls_name = string_field doc "class" in
  match Cac.Source_class.of_name cls_name with
  | None ->
      Http.json_error ~status:404
        (Printf.sprintf "unknown class %S (known: %s)" cls_name
           (String.concat ", " Cac.Source_class.names))
  | Some cls ->
      if
        not
          (with_engine t (fun e ->
               List.exists
                 (fun l -> String.equal (Cac.Link.id l) link)
                 (Cac.Engine.links e)))
      then Http.json_error ~status:404 (Printf.sprintf "unknown link %S" link)
      else k ~link ~cls

(* {2 Encoding} *)

let opt_float = function
  | Some v -> Obs.Json.Float v
  | None -> Obs.Json.Null

let reason_json = function
  | Some Cac.Engine.Unstable -> Obs.Json.String "unstable"
  | Some Cac.Engine.Clr_exceeded -> Obs.Json.String "clr_exceeded"
  | None -> Obs.Json.Null

let verdict_json (v : Cac.Engine.verdict) =
  Obs.Json.Obj
    [
      ("admissible", Obs.Json.Bool v.Cac.Engine.admissible);
      ("degraded", Obs.Json.Bool v.Cac.Engine.degraded);
      ("reason", reason_json v.Cac.Engine.reason);
      ("log10_bop", opt_float v.Cac.Engine.log10_bop);
      ("required_bw", opt_float v.Cac.Engine.required_bw);
    ]

(* {2 Handlers} *)

let decide t req =
  link_class t req @@ fun ~link ~cls ->
  let verdict = with_engine t (fun e -> Cac.Engine.evaluate e ~link ~cls) in
  Http.json (verdict_json verdict)

let admit t req =
  link_class t req @@ fun ~link ~cls ->
  match with_engine t (fun e -> Cac.Engine.admit e ~link ~cls) with
  | Cac.Engine.Admitted conn ->
      Http.json
        (Obs.Json.Obj
           [ ("admitted", Obs.Json.Bool true); ("conn", Obs.Json.Int conn) ])
  | Cac.Engine.Rejected reason ->
      Http.json
        (Obs.Json.Obj
           [
             ("admitted", Obs.Json.Bool false);
             ("reason", reason_json (Some reason));
           ])

let release t req =
  let* doc = body_json req in
  let* conn = int_field doc "conn" in
  match with_engine t (fun e -> Cac.Engine.release e ~conn) with
  | () -> Http.json (Obs.Json.Obj [ ("released", Obs.Json.Bool true) ])
  | exception Invalid_argument _ ->
      Http.json_error ~status:404 (Printf.sprintf "unknown connection %d" conn)

let healthz t _req =
  let links, connections =
    with_engine t (fun e ->
        ( List.map (fun l -> Obs.Json.String (Cac.Link.id l)) (Cac.Engine.links e),
          Cac.Engine.active_connections e ))
  in
  Http.json
    (Obs.Json.Obj
       [
         ("status", Obs.Json.String "ok");
         ("uptime_s", Obs.Json.Float (Obs.Clock.wall () -. t.started_wall));
         ("links", Obs.Json.List links);
         ("connections", Obs.Json.Int connections);
       ])

let breakers t _req =
  let entries =
    with_engine t (fun e ->
        List.concat_map
          (fun link ->
            List.filter_map
              (fun name ->
                let cls = Cac.Source_class.of_name_exn name in
                match
                  Cac.Engine.breaker_state e ~link:(Cac.Link.id link) ~cls
                with
                | None -> None
                | Some state ->
                    Some
                      (Obs.Json.Obj
                         [
                           ("link", Obs.Json.String (Cac.Link.id link));
                           ("class", Obs.Json.String name);
                           ( "state",
                             Obs.Json.String
                               (Resilience.Guard.Breaker.state_name state) );
                         ]))
              Cac.Source_class.names)
          (Cac.Engine.links e))
  in
  Http.json (Obs.Json.Obj [ ("breakers", Obs.Json.List entries) ])

let metrics _req =
  Http.response
    ~headers:[ ("content-type", "text/plain; version=0.0.4; charset=utf-8") ]
    ~status:200
    (Obs.Export.prometheus (Obs.Registry.snapshot ()))

let router t =
  Router.create
    [
      Router.route Http.POST "/v1/decide" (decide t);
      Router.route Http.POST "/v1/admit" (admit t);
      Router.route Http.POST "/v1/release" (release t);
      Router.route Http.GET "/metrics" metrics;
      Router.route Http.GET "/healthz" (healthz t);
      Router.route Http.GET "/breakers" (breakers t);
    ]
