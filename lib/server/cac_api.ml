(* The admission-control daemon's endpoint surface: a Router over a
   Cac.Engine.  Engines are single-domain by contract, so every engine
   call is serialized by one mutex — decisions are microseconds
   (cached: a hash lookup), so the lock is never the bottleneck next
   to socket I/O. *)

type t = {
  engine : Cac.Engine.t;
  mutex : Mutex.t;
  started_wall : float;
  (* Readiness vs. liveness: while WAL replay is restoring the
     connection table the daemon is alive but must not take decisions
     — /healthz reports "recovering" and decide/admit/release answer
     503 so load balancers keep traffic away. *)
  ready : bool Atomic.t;
  (* The durability barrier, installed by the daemon when a persist
     store is wired in: runs after each acked mutation, outside the
     engine mutex, and blocks until the fsync policy's watermark
     covers it. *)
  barrier : (unit -> unit) Atomic.t;
  (* Extra /debug/vars sections contributed by the embedding daemon
     (pool configuration, build info, …); guarded by [mutex]. *)
  mutable debug_providers : (string * (unit -> Obs.Json.t)) list;
}

let create ?(recovering = false) engine =
  {
    engine;
    mutex = Mutex.create ();
    started_wall = Obs.Clock.wall ();
    ready = Atomic.make (not recovering);
    barrier = Atomic.make (fun () -> ());
    debug_providers = [];
  }

let with_engine t f = Mutex.protect t.mutex (fun () -> f t.engine)
let ready t = Atomic.get t.ready
let set_ready t = Atomic.set t.ready true
let set_barrier t f = Atomic.set t.barrier f
let run_barrier t = (Atomic.get t.barrier) ()

let add_debug_provider t ~name f =
  Mutex.protect t.mutex (fun () ->
      t.debug_providers <-
        (name, f) :: List.remove_assoc name t.debug_providers);
  t

(* {2 Request decoding} *)

let body_json (req : Http.request) =
  match Obs.Json.of_string req.Http.body with
  | Some doc -> Ok doc
  | None -> Stdlib.Error (Http.json_error ~status:400 "malformed JSON body")

let string_field doc name =
  match Obs.Json.member name doc with
  | Some (Obs.Json.String s) -> Ok s
  | Some _ ->
      Stdlib.Error
        (Http.json_error ~status:422
           (Printf.sprintf "field %S must be a string" name))
  | None ->
      Stdlib.Error
        (Http.json_error ~status:422 (Printf.sprintf "missing field %S" name))

let int_field doc name =
  match Obs.Json.member name doc with
  | Some (Obs.Json.Int n) -> Ok n
  | Some _ ->
      Stdlib.Error
        (Http.json_error ~status:422
           (Printf.sprintf "field %S must be an integer" name))
  | None ->
      Stdlib.Error
        (Http.json_error ~status:422 (Printf.sprintf "missing field %S" name))

let ( let* ) r k = match r with Ok v -> k v | Stdlib.Error resp -> resp

(* {"link": ..., "class": ...} — the decide/admit request schema. *)
let link_class t req k =
  let* doc = body_json req in
  let* link = string_field doc "link" in
  let* cls_name = string_field doc "class" in
  match Cac.Source_class.of_name cls_name with
  | None ->
      Http.json_error ~status:404
        (Printf.sprintf "unknown class %S (known: %s)" cls_name
           (String.concat ", " Cac.Source_class.names))
  | Some cls ->
      if
        not
          (with_engine t (fun e ->
               List.exists
                 (fun l -> String.equal (Cac.Link.id l) link)
                 (Cac.Engine.links e)))
      then Http.json_error ~status:404 (Printf.sprintf "unknown link %S" link)
      else k ~link ~cls

(* {2 Encoding} *)

let opt_float = function
  | Some v -> Obs.Json.Float v
  | None -> Obs.Json.Null

let reason_json = function
  | Some Cac.Engine.Unstable -> Obs.Json.String "unstable"
  | Some Cac.Engine.Clr_exceeded -> Obs.Json.String "clr_exceeded"
  | None -> Obs.Json.Null

let verdict_json (v : Cac.Engine.verdict) =
  Obs.Json.Obj
    [
      ("admissible", Obs.Json.Bool v.Cac.Engine.admissible);
      ("degraded", Obs.Json.Bool v.Cac.Engine.degraded);
      ("reason", reason_json v.Cac.Engine.reason);
      ("log10_bop", opt_float v.Cac.Engine.log10_bop);
      ("required_bw", opt_float v.Cac.Engine.required_bw);
    ]

(* {2 Handlers} *)

(* Each mutating/deciding endpoint opens its own span under the pool's
   [srv.http.request] span, so a traced request yields a proper span
   tree (request → api handler → engine/kernel spans), all stamped
   with the same trace id. *)

let not_ready () =
  Http.json_error ~status:503 "recovering: state replay in progress"

let decide t req =
  Obs.Span.with_ ~name:"cac.api.decide" @@ fun () ->
  if not (ready t) then not_ready ()
  else
  link_class t req @@ fun ~link ~cls ->
  (* The only blocking call the lint can reach from this critical
     section is the seeded latency injector inside the decision
     cache; it is disarmed outside chaos tests and exists precisely
     to exercise lock-hold latency. *)
  let verdict =
    (with_engine t (fun e -> Cac.Engine.evaluate e ~link ~cls)
    [@lint.allow "L1"])
  in
  Http.json (verdict_json verdict)

let admit t req =
  Obs.Span.with_ ~name:"cac.api.admit" @@ fun () ->
  if not (ready t) then not_ready ()
  else
  link_class t req @@ fun ~link ~cls ->
  (* Same seeded-latency-injector waiver as [decide]. *)
  match
    (with_engine t (fun e -> Cac.Engine.admit e ~link ~cls)
    [@lint.allow "L1"])
  with
  | Cac.Engine.Admitted conn ->
      (* Ack only once the journal's fsync policy covers the admit:
         the barrier runs outside the engine mutex so slow storage
         never serializes decisions. *)
      run_barrier t;
      Http.json
        (Obs.Json.Obj
           [ ("admitted", Obs.Json.Bool true); ("conn", Obs.Json.Int conn) ])
  | Cac.Engine.Rejected reason ->
      Http.json
        (Obs.Json.Obj
           [
             ("admitted", Obs.Json.Bool false);
             ("reason", reason_json (Some reason));
           ])

let release t req =
  Obs.Span.with_ ~name:"cac.api.release" @@ fun () ->
  if not (ready t) then not_ready ()
  else
  let* doc = body_json req in
  let* conn = int_field doc "conn" in
  match with_engine t (fun e -> Cac.Engine.release e ~conn) with
  | () ->
      run_barrier t;
      Http.json (Obs.Json.Obj [ ("released", Obs.Json.Bool true) ])
  | exception Invalid_argument _ ->
      Http.json_error ~status:404 (Printf.sprintf "unknown connection %d" conn)

(* The runtime collector is "live" while its last sample is younger
   than this; the pool samples every accept-loop tick (≤ 0.25 s), so
   5 s of silence means the sampling domain is wedged or gone. *)
let runtime_live_threshold_s = 5.0

let opt_age = function Some a -> Obs.Json.Float a | None -> Obs.Json.Null

let runtime_collector_status () =
  match Obs.Runtime.sample_age_s () with
  | None -> "never"
  | Some age -> if age <= runtime_live_threshold_s then "live" else "stale"

let healthz t _req =
  let links, connections =
    with_engine t (fun e ->
        ( List.map (fun l -> Obs.Json.String (Cac.Link.id l)) (Cac.Engine.links e),
          Cac.Engine.active_connections e ))
  in
  Http.json
    (Obs.Json.Obj
       [
         ("status", Obs.Json.String "ok");
         (* Liveness vs. readiness: the process answers (alive) even
            while state replay keeps decide/admit at 503. *)
         ( "state",
           Obs.Json.String (if ready t then "ready" else "recovering") );
         ("uptime_s", Obs.Json.Float (Obs.Clock.wall () -. t.started_wall));
         ("links", Obs.Json.List links);
         ("connections", Obs.Json.Int connections);
         (* Health is more than engine reachability: how stale is the
            exported registry view, and is the runtime collector
            alive?  ("never" is normal before the first /metrics
            scrape or outside the serving pool.) *)
         ("snapshot_age_s", opt_age (Obs.Registry.snapshot_age_s ()));
         ( "runtime_collector",
           Obs.Json.String (runtime_collector_status ()) );
         ("runtime_sample_age_s", opt_age (Obs.Runtime.sample_age_s ()));
       ])

(* The span quantile view shared by /debug/vars and [cts obs export]
   consumers: every unlabelled [span.*.us] histogram that has seen at
   least one completion, with interpolated p50/p95/p99. *)
let spans_json () =
  let snap = Obs.Registry.snapshot () in
  let q h p =
    match Obs.Registry.histogram_quantile h ~q:p with
    | Some v -> Obs.Json.Float v
    | None -> Obs.Json.Null
  in
  Obs.Json.Obj
    (List.filter_map
       (fun ((name, labels), h) ->
         if
           String.starts_with ~prefix:"span." name
           && h.Obs.Registry.count > 0
           && Obs.Labels.to_list labels = []
         then
           Some
             ( name,
               Obs.Json.Obj
                 [
                   ("count", Obs.Json.Int h.Obs.Registry.count);
                   ( "mean_us",
                     Obs.Json.Float
                       (h.Obs.Registry.sum /. float_of_int h.Obs.Registry.count)
                   );
                   ("p50_us", q h 0.5);
                   ("p95_us", q h 0.95);
                   ("p99_us", q h 0.99);
                 ] )
         else None)
       snap.Obs.Registry.histograms)

let debug_vars t _req =
  let providers = Mutex.protect t.mutex (fun () -> t.debug_providers) in
  let provider_fields =
    List.rev_map
      (fun (name, f) ->
        ( name,
          match f () with
          | doc -> doc
          | exception _ -> Obs.Json.String "<provider error>" ))
      providers
  in
  Http.json
    (Obs.Json.Obj
       ([
          ("uptime_s", Obs.Json.Float (Obs.Clock.wall () -. t.started_wall));
          ("clock_source", Obs.Json.String (Obs.Clock.source ()));
          (* [read], not [sample]: /debug/vars may be hit from any
             worker domain, and runtime gauges are single-writer.  GC
             counters are domain-local in OCaml 5, so [gc] is the
             answering worker's view; [gc_sampled] is the accept-loop
             collector's latest poll. *)
          ("gc", Obs.Runtime.json_of_stats (Obs.Runtime.read ()));
          ( "gc_sampled",
            match Obs.Runtime.last () with
            | Some (_, s) -> Obs.Runtime.json_of_stats s
            | None -> Obs.Json.Null );
          ("runtime_collector", Obs.Json.String (runtime_collector_status ()));
          ("runtime_sample_age_s", opt_age (Obs.Runtime.sample_age_s ()));
          ("registry_snapshot_age_s", opt_age (Obs.Registry.snapshot_age_s ()));
          ("spans", spans_json ());
        ]
       @ provider_fields))

let heatmap_html _req =
  match Obs.Heatmap.of_snapshot (Obs.Registry.snapshot ()) with
  | Some hm ->
      Http.response
        ~headers:[ ("content-type", "text/html; charset=utf-8") ]
        ~status:200 (Obs.Heatmap.to_html hm)
  | None ->
      Http.response
        ~headers:[ ("content-type", "text/html; charset=utf-8") ]
        ~status:200
        "<!DOCTYPE html>\n\
         <html><head><meta charset=\"utf-8\"><meta http-equiv=\"refresh\" \
         content=\"5\"><title>cts.m_star heatmap</title></head>\n\
         <body><p>No per-buffer m* observations yet — issue some \
         /v1/decide requests first.</p></body></html>\n"

let heatmap_csv _req =
  let body =
    match Obs.Heatmap.of_snapshot (Obs.Registry.snapshot ()) with
    | Some hm -> Obs.Heatmap.to_csv hm
    | None -> "buffer_cells,bin_lo,bin_hi,count\n"
  in
  Http.response
    ~headers:[ ("content-type", "text/csv; charset=utf-8") ]
    ~status:200 body

let breakers t _req =
  let entries =
    with_engine t (fun e ->
        List.concat_map
          (fun link ->
            List.filter_map
              (fun name ->
                let cls = Cac.Source_class.of_name_exn name in
                match
                  Cac.Engine.breaker_state e ~link:(Cac.Link.id link) ~cls
                with
                | None -> None
                | Some state ->
                    Some
                      (Obs.Json.Obj
                         [
                           ("link", Obs.Json.String (Cac.Link.id link));
                           ("class", Obs.Json.String name);
                           ( "state",
                             Obs.Json.String
                               (Resilience.Guard.Breaker.state_name state) );
                         ]))
              Cac.Source_class.names)
          (Cac.Engine.links e))
  in
  Http.json (Obs.Json.Obj [ ("breakers", Obs.Json.List entries) ])

let metrics _req =
  Http.response
    ~headers:[ ("content-type", "text/plain; version=0.0.4; charset=utf-8") ]
    ~status:200
    (Obs.Export.prometheus (Obs.Registry.snapshot ()))

(* {2 /profile — where does request latency go?}

   Decomposes the serving path per route from the registry's own
   histograms: queue wait (accept → worker pop, charged to the
   connection's first request), handler time ([srv.http.latency_us]),
   and — when the [Obs.Events] consumer runs — the GC pauses that
   overlapped each dispatch.  [totals] lets a client cross-check the
   decomposition against the [srv.http.request] span's view of the
   same requests. *)

let route_of labels =
  match Obs.Labels.to_list labels with
  | [ ("route", r) ] -> Some r
  | _ -> None

let profile _t _req =
  let snap = Obs.Registry.snapshot () in
  let by_route name =
    List.filter_map
      (fun ((n, labels), h) ->
        if String.equal n name then
          Option.map (fun r -> (r, h)) (route_of labels)
        else None)
      snap.Obs.Registry.histograms
  in
  let latency = by_route "srv.http.latency_us" in
  let queue = by_route "srv.http.queue_wait.us" in
  let gc = by_route "srv.http.gc_pause.us" in
  let sum_for table r =
    match List.assoc_opt r table with
    | Some h -> h.Obs.Registry.sum
    | None -> 0.0
  in
  let routes =
    List.map
      (fun (r, h) ->
        let handler_us = h.Obs.Registry.sum in
        let queue_wait_us = sum_for queue r in
        let gc_pause_us = sum_for gc r in
        let q p =
          match Obs.Registry.histogram_quantile h ~q:p with
          | Some v -> Obs.Json.Float v
          | None -> Obs.Json.Null
        in
        ( r,
          Obs.Json.Obj
            [
              ("requests", Obs.Json.Int h.Obs.Registry.count);
              ("handler_us", Obs.Json.Float handler_us);
              ("queue_wait_us", Obs.Json.Float queue_wait_us);
              ("gc_pause_us", Obs.Json.Float gc_pause_us);
              ( "handler_minus_gc_us",
                Obs.Json.Float (handler_us -. gc_pause_us) );
              ("total_us", Obs.Json.Float (handler_us +. queue_wait_us));
              ("p50_us", q 0.5);
              ("p95_us", q 0.95);
              ("p99_us", q 0.99);
            ] ))
      latency
  in
  let handler_us =
    List.fold_left (fun acc (_, h) -> acc +. h.Obs.Registry.sum) 0.0 latency
  in
  let total_us =
    List.fold_left
      (fun acc (r, h) -> acc +. h.Obs.Registry.sum +. sum_for queue r)
      0.0 latency
  in
  (* The same requests as seen by the [srv.http.request] span — the
     decomposition above should account for (almost all of) this. *)
  let span_request_us =
    match
      List.find_opt
        (fun ((n, labels), _) ->
          String.equal n "span.srv.http.request.us"
          && Obs.Labels.to_list labels = [])
        snap.Obs.Registry.histograms
    with
    | Some (_, h) -> h.Obs.Registry.sum
    | None -> 0.0
  in
  Http.json
    (Obs.Json.Obj
       [
         ("events", Obs.Events.debug_json ());
         ("routes", Obs.Json.Obj routes);
         ( "totals",
           Obs.Json.Obj
             [
               ("total_us", Obs.Json.Float total_us);
               (* [handler_us] is the leg the [srv.http.request] span
                  also times: the two should agree to within the
                  span's own overhead (queue wait happens before the
                  span opens, so [total_us] does not compare). *)
               ("handler_us", Obs.Json.Float handler_us);
               ("span_request_us", Obs.Json.Float span_request_us);
             ] );
         ( "top_pauses",
           Obs.Json.List
             (List.map Obs.Events.pause_json (Obs.Events.top_pauses ())) );
         ( "gc_domains",
           Obs.Json.List
             (List.map
                (fun (d, n, ns) ->
                  Obs.Json.Obj
                    [
                      ("domain", Obs.Json.Int d);
                      ("pauses", Obs.Json.Int n);
                      ("pause_ns", Obs.Json.Int ns);
                    ])
                (Obs.Events.domain_stats ())) );
       ])

(* Last-resort exception boundary for every route.  Handlers can
   raise through deep call chains (a kernel [invalid_arg], a TOCTOU
   race on a link removed between parse and dispatch, a histogram
   shape mismatch in the registry) — that must become a structured
   500, not a torn connection and a dead worker domain. *)
let protected h req =
  Resilience.Guard.protect ~label:"srv.api.handler"
    ~fallback:(fun _ -> Http.json_error ~status:500 "internal error")
    (fun () -> h req)

let router t =
  Router.create
    [
      Router.route Http.POST "/v1/decide" (protected (decide t));
      Router.route Http.POST "/v1/admit" (protected (admit t));
      Router.route Http.POST "/v1/release" (protected (release t));
      Router.route Http.GET "/metrics" (protected metrics);
      Router.route Http.GET "/healthz" (protected (healthz t));
      Router.route Http.GET "/breakers" (protected (breakers t));
      Router.route Http.GET "/debug/vars" (protected (debug_vars t));
      Router.route Http.GET "/profile" (protected (profile t));
      Router.route Http.GET "/heatmap" (protected heatmap_html);
      Router.route Http.GET "/heatmap.csv" (protected heatmap_csv);
    ]
