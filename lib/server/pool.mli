(** The Domain-parallel serving pool.

    One accept loop (run by the caller of {!serve}) feeds accepted
    connections into a bounded work queue drained by [config.domains]
    worker domains.  Backpressure is explicit and fail-fast: when the
    queue is full the acceptor answers [503 Service Unavailable] and
    closes — overload degrades to fast rejections, never to an
    unbounded queue.

    {2 Per-connection discipline}

    Each connection gets a fresh read deadline per request
    ([config.read_timeout_s], enforced by {!Io}), the {!Http.limits}
    caps, and a {!Resilience.Guard.Budget} of
    [config.max_conn_requests] keep-alive requests.  Handler
    exceptions are contained by {!Resilience.Guard.protect} — the
    request answers [500] and the worker survives.  The
    [srv.http.handler] fault point fires before every dispatch, so
    chaos specs cover the serving path.

    {2 Telemetry}

    [srv.http.requests] (total and per
    [{route,method,status}]), [srv.http.latency_us] and
    [srv.http.queue_wait.us] per route, [srv.http.in_flight],
    [srv.http.queue_depth], [srv.http.queue_occupancy] (depth /
    capacity), [srv.http.connections], [srv.http.shed],
    [srv.http.parse_errors], [srv.http.handler_errors], plus the
    [srv.http.request] span.  When an {!Obs.Events} consumer runs,
    each request's GC overlap — the delta of
    {!Obs.Events.cumulative_pause_ns} across its dispatch — is
    recorded as [srv.http.gc_pause.us] per route.  The accept loop
    additionally runs {!Obs.Runtime.sample} once per poll tick (it is
    the process's single runtime-gauge writer).

    {2 Trace correlation}

    Every dispatched request runs under an {!Obs.Trace} context —
    parsed from the peer's [traceparent] header when present and
    well-formed, freshly generated otherwise — so all spans and
    histogram exemplars it produces share one trace id.  The response
    carries the context back in a [traceparent] header.  With
    [config.access_log] set, each request also emits a one-line JSON
    access log ([method], [path], [status], [us], [queue_wait_us],
    [gc_pause_us], [trace]) through
    [config.access_sink] (resolved per line, so the daemon can rotate
    the log on SIGHUP by swapping the sink the thunk returns); when
    unset, {!Obs.Sink.human_sink} is used, which [--quiet] silences.

    {2 Housekeeping tick}

    [config.tick], when set, runs on the accept-loop domain once per
    poll tick (~250 ms), after {!Obs.Runtime.sample}, inside
    {!Resilience.Guard.protect} — a throwing tick is counted and
    dropped, never fatal.  The daemon hangs periodic work off it:
    signal-flag polling, snapshot scheduling.

    {2 Shutdown}

    {!stop} is async-signal-safe (one atomic write).  The accept loop
    notices within one 250 ms poll tick, stops accepting, enqueues one
    quit sentinel per worker {e behind} any queued connections — every
    accepted request is answered — then joins the workers and
    returns.  Because {!serve} returns only after every worker domain
    has joined, any work the caller does after it (e.g. a shutdown
    snapshot) observes the final state: a request racing the drain has
    either fully completed or was shed with 503. *)

type config = {
  domains : int;  (** worker domains draining the queue *)
  queue_capacity : int;  (** accepted connections queued before shedding *)
  read_timeout_s : float option;  (** per-request read deadline; [None] = none *)
  limits : Http.limits;
  max_conn_requests : int;  (** keep-alive requests per connection *)
  access_log : bool;  (** one JSON line per request on the access sink *)
  access_sink : (unit -> Obs.Sink.t) option;
      (** access-log destination, resolved per line; [None] = human sink *)
  tick : (unit -> unit) option;
      (** housekeeping hook, run each accept-loop poll tick *)
}

val default_config : config
(** [min 4 (recommended_domain_count - 1)] domains (at least 1), a
    128-connection queue, 10 s read timeout, {!Http.default_limits},
    100k requests per connection, access log off, no access sink
    override, no tick hook. *)

type t

val create : ?config:config -> Router.t -> t
(** Raises [Invalid_argument] on a non-positive domain count, queue
    capacity, request budget or timeout. *)

val listen : ?backlog:int -> host:string -> port:int -> unit -> Unix.file_descr
(** Bind and listen on [host:port] ([SO_REUSEADDR] set; port [0]
    picks an ephemeral port — read it back with {!bound_port}). *)

val bound_port : Unix.file_descr -> int

val serve : t -> Unix.file_descr -> unit
(** Run the accept loop on the calling domain, spawning the worker
    domains first; returns after {!stop} completes the drain.  The
    listening socket stays open (the caller owns it).  [SIGPIPE] is
    set to ignore for the whole process. *)

val stop : t -> unit
(** Request shutdown.  Safe to call from a signal handler. *)

val stopping : t -> bool

val accepting : t -> bool
(** True while {!serve}'s accept loop is live — poll this to know when
    a backgrounded server is ready. *)

val queue_length : t -> int
(** Connections accepted but not yet claimed by a worker. *)

val serve_connection : t -> queue_wait_us:float -> Unix.file_descr -> unit
(** Serve one connection synchronously on the calling domain (the
    worker body; exposed for socketpair-driven tests).  [queue_wait_us]
    is the time the connection sat in the work queue; it is charged to
    the connection's {e first} request (later keep-alive requests
    never queued).  Closes [fd] before returning. *)
