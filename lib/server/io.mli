(** Buffered socket I/O with absolute deadlines.

    The serving layer reads requests through a {!reader}: a fixed
    buffer over a [Unix.file_descr] with byte-, line- and
    exact-length reads, each bounded by an absolute monotonic
    {!deadline} so a trickling peer cannot hold a worker forever.
    Writes are unbuffered ([write] until done) — responses are
    serialized into one string first (see {!Http.write_response}). *)

exception Timeout of string
(** A deadline passed while waiting for the peer; the payload names
    the operation. *)

exception Closed
(** The peer closed the connection mid-read. *)

exception Line_too_long
(** {!read_line} hit its [max] before the line terminator. *)

type deadline = int64 option
(** Absolute {!Obs.Clock.monotonic_ns} instant; [None] = no limit. *)

val deadline_in : float -> deadline
(** [deadline_in s] is the instant [s] seconds from now.  Raises
    [Invalid_argument] unless [s] is finite and positive. *)

type reader

val reader : ?buf_size:int -> Unix.file_descr -> reader
(** Default buffer: 8 KiB. *)

val read_line : reader -> max:int -> deadline -> string option
(** One line, CRLF or LF terminated, terminator stripped.  [None] on
    clean EOF before the first byte; raises {!Closed} on EOF mid-line
    and {!Line_too_long} past [max] bytes. *)

val read_exact : reader -> int -> deadline -> string
(** Exactly [n] bytes; raises {!Closed} on early EOF. *)

val write_string : Unix.file_descr -> string -> unit
(** Write the whole string, retrying on short writes and [EINTR]. *)
