type handler = Http.request -> Http.response

type route = { meth : Http.meth; path : string; handler : handler }

type t = { routes : route list }

let route meth path handler =
  if path = "" || path.[0] <> '/' then
    invalid_arg (Printf.sprintf "Router.route: path %S must start with '/'" path);
  { meth; path; handler }

let create routes =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let key = Http.meth_name r.meth ^ " " ^ r.path in
      if Hashtbl.mem seen key then
        invalid_arg (Printf.sprintf "Router.create: duplicate route %s" key);
      Hashtbl.replace seen key ())
    routes;
  { routes }

let routes t = List.map (fun r -> (r.meth, r.path)) t.routes

(* The route label used for telemetry: the matched pattern for known
   paths, a single bucket for everything else so hostile paths cannot
   explode the label-set cardinality. *)
let unmatched_label = "unmatched"

let find t (req : Http.request) =
  let matching_path =
    List.filter (fun r -> String.equal r.path req.Http.path) t.routes
  in
  match
    List.find_opt (fun r -> Http.meth_equal r.meth req.Http.meth) matching_path
  with
  | Some r -> Ok r
  | None ->
      if matching_path = [] then Stdlib.Error `Not_found
      else
        Stdlib.Error
          (`Method_not_allowed
            (List.map (fun r -> Http.meth_name r.meth) matching_path))

let label t (req : Http.request) =
  match find t req with
  | Ok r -> r.path
  | Stdlib.Error (`Method_not_allowed _) -> req.Http.path
  | Stdlib.Error `Not_found -> unmatched_label

let dispatch t req =
  match find t req with
  | Ok r -> (r.path, r.handler req)
  | Stdlib.Error `Not_found ->
      (unmatched_label, Http.json_error ~status:404 "no such endpoint")
  | Stdlib.Error (`Method_not_allowed allowed) ->
      ( req.Http.path,
        Http.response
          ~headers:
            [
              ("allow", String.concat ", " allowed);
              ("content-type", "application/json");
            ]
          ~status:405
          (Obs.Json.to_string
             (Obs.Json.Obj [ ("error", Obs.Json.String "method not allowed") ])
          ^ "\n") )
