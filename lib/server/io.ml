exception Timeout of string
exception Closed

(* A deadline is an absolute monotonic instant; [None] waits forever.
   Absolute (rather than per-read relative) deadlines make the
   per-connection read timeout a real bound: a peer trickling one byte
   per second cannot reset the clock. *)
type deadline = int64 option

let deadline_in seconds =
  if not (Float.is_finite seconds) || seconds <= 0.0 then
    invalid_arg "Io.deadline_in: seconds must be finite and > 0";
  Some
    (Int64.add (Obs.Clock.monotonic_ns ())
       (Int64.of_float (seconds *. 1e9)))

(* Block until [fd] is readable or the deadline passes.  EINTR retries
   with the remaining budget recomputed from the monotonic clock. *)
let rec wait_readable ~label fd (deadline : deadline) =
  let timeout_s =
    match deadline with
    | None -> -1.0 (* select: wait forever *)
    | Some d ->
        let remaining_ns = Int64.sub d (Obs.Clock.monotonic_ns ()) in
        if Int64.compare remaining_ns 0L <= 0 then raise (Timeout label)
        else Int64.to_float remaining_ns *. 1e-9
  in
  match Unix.select [ fd ] [] [] timeout_s with
  | [], _, _ -> raise (Timeout label)
  | _ :: _, _, _ -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      wait_readable ~label fd deadline

type reader = {
  fd : Unix.file_descr;
  buf : Bytes.t;
  mutable pos : int;  (** next unread byte in [buf] *)
  mutable len : int;  (** valid bytes in [buf] *)
}

let reader ?(buf_size = 8192) fd =
  if buf_size < 1 then invalid_arg "Io.reader: buf_size < 1";
  { fd; buf = Bytes.create buf_size; pos = 0; len = 0 }

(* Refill the buffer; false on EOF. *)
let refill r deadline =
  wait_readable ~label:"read" r.fd deadline;
  let rec read () =
    match Unix.read r.fd r.buf 0 (Bytes.length r.buf) with
    | 0 -> false
    | n ->
        r.pos <- 0;
        r.len <- n;
        true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> read ()
  in
  read ()

let read_byte r deadline =
  if r.pos >= r.len && not (refill r deadline) then raise Closed
  else begin
    let b = Bytes.get r.buf r.pos in
    r.pos <- r.pos + 1;
    b
  end

exception Line_too_long

(* One CRLF- (or bare-LF-) terminated line, terminator stripped.
   [None] on a clean EOF before any byte of the line; EOF mid-line
   raises [Closed]; more than [max] bytes before the terminator raises
   [Line_too_long]. *)
let read_line r ~max deadline =
  let line = Buffer.create 128 in
  let rec go started =
    match read_byte r deadline with
    | exception Closed -> if started then raise Closed else None
    | '\n' ->
        let s = Buffer.contents line in
        let n = String.length s in
        Some (if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s)
    | c ->
        if Buffer.length line >= max then raise Line_too_long;
        Buffer.add_char line c;
        go true
  in
  go false

(* Exactly [n] bytes; raises [Closed] if the peer quits early. *)
let read_exact r n deadline =
  if n < 0 then invalid_arg "Io.read_exact: negative length";
  let out = Bytes.create n in
  let filled = ref 0 in
  while !filled < n do
    if r.pos >= r.len && not (refill r deadline) then raise Closed;
    let take = Stdlib.min (n - !filled) (r.len - r.pos) in
    Bytes.blit r.buf r.pos out !filled take;
    r.pos <- r.pos + take;
    filled := !filled + take
  done;
  Bytes.unsafe_to_string out

let rec write_all fd s pos len =
  if len > 0 then begin
    match Unix.write_substring fd s pos len with
    | n -> write_all fd s (pos + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s pos len
  end

let write_string fd s = write_all fd s 0 (String.length s)
