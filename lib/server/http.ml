type meth = GET | POST | PUT | DELETE | HEAD | OPTIONS | Other of string

let meth_of_string = function
  | "GET" -> GET
  | "POST" -> POST
  | "PUT" -> PUT
  | "DELETE" -> DELETE
  | "HEAD" -> HEAD
  | "OPTIONS" -> OPTIONS
  | s -> Other s

let meth_name = function
  | GET -> "GET"
  | POST -> "POST"
  | PUT -> "PUT"
  | DELETE -> "DELETE"
  | HEAD -> "HEAD"
  | OPTIONS -> "OPTIONS"
  | Other s -> s

let meth_equal a b = String.equal (meth_name a) (meth_name b)

type limits = { max_line : int; max_headers : int; max_body : int }

let default_limits = { max_line = 8192; max_headers = 64; max_body = 1 lsl 20 }

type version = Http_1_0 | Http_1_1

type request = {
  meth : meth;
  target : string;
  path : string;
  query : (string * string) list;
  version : version;
  headers : (string * string) list;
  body : string;
}

let header req name =
  List.assoc_opt (String.lowercase_ascii name) req.headers

let traceparent req =
  match header req "traceparent" with
  | None -> None
  | Some v -> Obs.Trace.parse_traceparent v

let keep_alive req =
  match Option.map String.lowercase_ascii (header req "connection") with
  | Some "close" -> false
  | Some "keep-alive" -> true
  | Some _ | None -> ( match req.version with Http_1_1 -> true | Http_1_0 -> false)

(* {2 Target parsing} *)

let hex_value c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

(* Percent-decoding for query components; malformed escapes pass
   through verbatim rather than failing the request. *)
let percent_decode s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then begin
      (match s.[i] with
      | '+' ->
          Buffer.add_char b ' ';
          go (i + 1)
      | '%' when i + 2 < n -> (
          match (hex_value s.[i + 1], hex_value s.[i + 2]) with
          | Some hi, Some lo ->
              Buffer.add_char b (Char.chr ((hi * 16) + lo));
              go (i + 3)
          | _ ->
              Buffer.add_char b '%';
              go (i + 1))
      | c ->
          Buffer.add_char b c;
          go (i + 1))
    end
  in
  go 0;
  Buffer.contents b

let parse_query qs =
  String.split_on_char '&' qs
  |> List.filter_map (fun pair ->
         if pair = "" then None
         else
           match String.index_opt pair '=' with
           | None -> Some (percent_decode pair, "")
           | Some i ->
               Some
                 ( percent_decode (String.sub pair 0 i),
                   percent_decode
                     (String.sub pair (i + 1) (String.length pair - i - 1)) ))

let split_target target =
  match String.index_opt target '?' with
  | None -> (target, [])
  | Some i ->
      ( String.sub target 0 i,
        parse_query (String.sub target (i + 1) (String.length target - i - 1))
      )

(* {2 Request parsing} *)

type error = { status : int; reason : string }
type parse = Request of request | Eof | Error of error

let err status reason = Error { status; reason }

let parse_request_line line =
  match String.split_on_char ' ' line with
  | [ meth; target; version ] when meth <> "" && target <> "" -> (
      match version with
      | "HTTP/1.1" -> Ok (meth_of_string meth, target, Http_1_1)
      | "HTTP/1.0" -> Ok (meth_of_string meth, target, Http_1_0)
      | _ -> Stdlib.Error (505, "unsupported HTTP version"))
  | _ -> Stdlib.Error (400, "malformed request line")

let parse_header_line line =
  match String.index_opt line ':' with
  | None | Some 0 -> None
  | Some i ->
      Some
        ( String.lowercase_ascii (String.trim (String.sub line 0 i)),
          String.trim (String.sub line (i + 1) (String.length line - i - 1)) )

let rec read_headers r ~limits deadline acc count =
  if count > limits.max_headers then
    Stdlib.Error (431, "too many header fields")
  else
    match Io.read_line r ~max:limits.max_line deadline with
    | None -> raise Io.Closed
    | Some "" -> Ok (List.rev acc)
    | Some line -> (
        match parse_header_line line with
        | None -> Stdlib.Error (400, "malformed header field")
        | Some kv -> read_headers r ~limits deadline (kv :: acc) (count + 1))

let read_request ?(limits = default_limits) r deadline =
  match Io.read_line r ~max:limits.max_line deadline with
  | None -> Eof
  | exception Io.Closed -> Eof
  | exception Io.Timeout _ -> err 408 "request timed out"
  | exception Io.Line_too_long -> err 414 "request line too long"
  | Some line -> (
      match parse_request_line line with
      | Stdlib.Error (status, reason) -> err status reason
      | Ok (meth, target, version) -> (
          match read_headers r ~limits deadline [] 0 with
          | Stdlib.Error (status, reason) -> err status reason
          | exception Io.Closed -> err 400 "connection closed mid-headers"
          | exception Io.Timeout _ -> err 408 "request timed out"
          | exception Io.Line_too_long -> err 431 "header field too long"
          | Ok headers -> (
              let find name = List.assoc_opt name headers in
              match find "transfer-encoding" with
              | Some _ -> err 501 "transfer-encoding not supported"
              | None -> (
                  let length =
                    match find "content-length" with
                    | None -> Ok 0
                    | Some v -> (
                        match int_of_string_opt (String.trim v) with
                        | Some n when n >= 0 -> Ok n
                        | _ -> Stdlib.Error ())
                  in
                  match length with
                  | Stdlib.Error () -> err 400 "malformed content-length"
                  | Ok n when n > limits.max_body ->
                      err 413 "request body too large"
                  | Ok n -> (
                      match Io.read_exact r n deadline with
                      | exception Io.Closed ->
                          err 400 "connection closed mid-body"
                      | exception Io.Timeout _ -> err 408 "request timed out"
                      | body ->
                          let path, query = split_target target in
                          Request
                            {
                              meth;
                              target;
                              path;
                              query;
                              version;
                              headers;
                              body;
                            })))))

(* {2 Responses} *)

type response = {
  status : int;
  resp_headers : (string * string) list;
  body : string;
}

let reason_phrase = function
  | 200 -> "OK"
  | 201 -> "Created"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 409 -> "Conflict"
  | 413 -> "Payload Too Large"
  | 414 -> "URI Too Long"
  | 422 -> "Unprocessable Entity"
  | 429 -> "Too Many Requests"
  | 431 -> "Request Header Fields Too Large"
  | 500 -> "Internal Server Error"
  | 501 -> "Not Implemented"
  | 503 -> "Service Unavailable"
  | 505 -> "HTTP Version Not Supported"
  | _ -> "Unknown"

let response ?(headers = []) ~status body =
  { status; resp_headers = headers; body }

let status (r : response) = r.status

let add_header resp kv = { resp with resp_headers = kv :: resp.resp_headers }

let text ?(status = 200) body =
  response ~status ~headers:[ ("content-type", "text/plain; charset=utf-8") ]
    body

let json ?(status = 200) doc =
  response ~status
    ~headers:[ ("content-type", "application/json") ]
    (Obs.Json.to_string doc ^ "\n")

let json_error ~status reason =
  json ~status (Obs.Json.Obj [ ("error", Obs.Json.String reason) ])

let to_string ~keep_alive:ka resp =
  let b = Buffer.create (256 + String.length resp.body) in
  Buffer.add_string b
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" resp.status
       (reason_phrase resp.status));
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v))
    resp.resp_headers;
  Buffer.add_string b
    (Printf.sprintf "content-length: %d\r\n" (String.length resp.body));
  Buffer.add_string b
    (if ka then "connection: keep-alive\r\n" else "connection: close\r\n");
  Buffer.add_string b "\r\n";
  Buffer.add_string b resp.body;
  Buffer.contents b

let write fd ~keep_alive resp = Io.write_string fd (to_string ~keep_alive resp)
