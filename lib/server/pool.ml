(* One accept loop feeding a bounded queue of accepted connections,
   drained by Domain workers.  Backpressure is explicit: a full queue
   sheds the connection with an immediate 503 instead of queueing
   unboundedly, so overload degrades to fast rejections rather than
   collapse (the same fail-fast posture as the engine's circuit
   breakers). *)

type config = {
  domains : int;
  queue_capacity : int;
  read_timeout_s : float option;
  limits : Http.limits;
  max_conn_requests : int;
  access_log : bool;
  access_sink : (unit -> Obs.Sink.t) option;
  tick : (unit -> unit) option;
}

let default_config =
  {
    domains = Stdlib.max 1 (Stdlib.min 4 (Domain.recommended_domain_count () - 1));
    queue_capacity = 128;
    read_timeout_s = Some 10.0;
    limits = Http.default_limits;
    max_conn_requests = 100_000;
    access_log = false;
    access_sink = None;
    tick = None;
  }

(* {2 Telemetry}

   Keyed updates (not handles): every update here is adjacent to a
   syscall, so the hash cost is noise.  The latency histogram is only
   ever recorded with a [route] label; fix its shape without
   declaring an unlabelled zero series. *)

let () =
  Obs.Registry.declare_counter "srv.http.requests";
  Obs.Registry.declare_counter "srv.http.connections";
  Obs.Registry.declare_counter "srv.http.shed";
  Obs.Registry.declare_counter "srv.http.parse_errors";
  Obs.Registry.declare_counter "srv.http.handler_errors";
  Obs.Registry.declare_gauge "srv.http.in_flight";
  Obs.Registry.declare_gauge "srv.http.queue_depth";
  Obs.Registry.declare_gauge "srv.http.queue_occupancy";
  Obs.Registry.set_histogram_spec ~lo:0.0 ~hi:1_000_000.0 ~bins:60
    "srv.http.latency_us";
  Obs.Registry.set_histogram_spec ~lo:0.0 ~hi:1_000_000.0 ~bins:60
    "srv.http.queue_wait.us";
  Obs.Registry.set_histogram_spec ~lo:0.0 ~hi:100_000.0 ~bins:50
    "srv.http.gc_pause.us"

(* {2 Bounded work queue}

   [Conn] carries its enqueue timestamp so the worker that pops it can
   charge the time spent queued to the request it serves — the
   queue-wait leg of the [/profile] latency decomposition. *)

type job = Conn of Unix.file_descr * int64 | Quit

type queue = {
  q : job Queue.t;
  capacity : int;
  mutex : Mutex.t;
  not_empty : Condition.t;
  mutable depth : int;  (** [Conn] jobs currently queued *)
}

let queue_create capacity =
  {
    q = Queue.create ();
    capacity;
    mutex = Mutex.create ();
    not_empty = Condition.create ();
    depth = 0;
  }

(* Non-blocking; false when the queue is at capacity (the caller
   sheds).  [Quit] sentinels bypass the capacity check so shutdown can
   never itself be shed. *)
let queue_push qu job =
  Mutex.protect qu.mutex (fun () ->
      match job with
      | Conn _ when qu.depth >= qu.capacity -> false
      | _ ->
          (match job with Conn _ -> qu.depth <- qu.depth + 1 | Quit -> ());
          Queue.push job qu.q;
          Condition.signal qu.not_empty;
          true)

let queue_pop qu =
  Mutex.protect qu.mutex (fun () ->
      while Queue.is_empty qu.q do
        Condition.wait qu.not_empty qu.mutex
      done;
      let job = Queue.pop qu.q in
      (match job with Conn _ -> qu.depth <- qu.depth - 1 | Quit -> ());
      job)

let queue_depth qu = Mutex.protect qu.mutex (fun () -> qu.depth)

(* {2 The pool} *)

type t = {
  router : Router.t;
  config : config;
  work : queue;
  stop_flag : bool Atomic.t;  (** set from a signal handler: only an Atomic write *)
  accepting : bool Atomic.t;
}

let create ?(config = default_config) router =
  if config.domains < 1 then invalid_arg "Pool.create: domains < 1";
  if config.queue_capacity < 1 then invalid_arg "Pool.create: queue_capacity < 1";
  if config.max_conn_requests < 1 then
    invalid_arg "Pool.create: max_conn_requests < 1";
  (match config.read_timeout_s with
  | Some s when not (s > 0.0 && Float.is_finite s) ->
      invalid_arg "Pool.create: read_timeout_s must be finite and > 0"
  | _ -> ());
  {
    router;
    config;
    work = queue_create config.queue_capacity;
    stop_flag = Atomic.make false;
    accepting = Atomic.make false;
  }

let stop t = Atomic.set t.stop_flag true
let stopping t = Atomic.get t.stop_flag
let queue_length t = queue_depth t.work
let accepting t = Atomic.get t.accepting

(* {2 Request handling} *)

let incr_requests ~route ~meth ~status =
  Obs.Registry.incr "srv.http.requests";
  Obs.Registry.incr
    ~labels:
      (Obs.Labels.make
         [
           ("route", route);
           ("method", meth);
           ("status", string_of_int status);
         ])
    "srv.http.requests"

(* One structured access-log line per request.  The sink resolves per
   line: by default the process-wide human sink (so [--quiet], a Null
   human sink, silences it), or [config.access_sink]'s current value —
   which is how SIGHUP-driven log rotation swaps the file under a
   running pool without tearing requests. *)
let access_log_line ~sink ~ctx ~req ~status ~us ~queue_wait_us ~gc_pause_us =
  Obs.Sink.message
    (match sink with None -> Obs.Sink.human_sink () | Some f -> f ())
    (Obs.Json.to_string
       (Obs.Json.Obj
          [
            ("ts", Obs.Json.Float (Obs.Clock.wall ()));
            ("kind", Obs.Json.String "access");
            ("method", Obs.Json.String (Http.meth_name req.Http.meth));
            ("path", Obs.Json.String req.Http.path);
            ("status", Obs.Json.Int status);
            ("us", Obs.Json.Float us);
            ("queue_wait_us", Obs.Json.Float queue_wait_us);
            ("gc_pause_us", Obs.Json.Float gc_pause_us);
            ("trace", Obs.Json.String ctx.Obs.Trace.trace_id);
          ]))

(* Dispatch one parsed request: the [srv.http.handler] fault point
   fires first (chaos testing of the serving path itself), then the
   handler runs under [Guard.protect] so an exception degrades to a
   500 for this request instead of killing the worker domain.

   The whole dispatch runs under the request's trace context — parsed
   from the peer's [traceparent] header, generated otherwise — so the
   [srv.http.request] span, every span the handler opens, and every
   histogram exemplar recorded on this domain share one trace id; the
   response echoes it in [traceparent]. *)
let handle_request t ~queue_wait_us req =
  Obs.Registry.add_gauge "srv.http.in_flight" 1.0;
  let t0 = Obs.Clock.monotonic_ns () in
  (* GC attribution: the consumer's cumulative pause clock for this
     worker domain, read on both sides of the dispatch.  The delta is
     collector time that overlapped this request (late by at most one
     consumer poll interval; 0 when no [Obs.Events] consumer runs). *)
  let gc0 = Obs.Events.cumulative_pause_ns () in
  Fun.protect ~finally:(fun () ->
      Obs.Registry.add_gauge "srv.http.in_flight" (-1.0))
  @@ fun () ->
  let route = Router.label t.router req in
  let ctx =
    match Http.traceparent req with
    | Some ctx -> ctx
    | None -> Obs.Trace.generate ()
  in
  Obs.Trace.with_context ctx @@ fun () ->
  let resp =
    Obs.Span.with_ ~name:"srv.http.request" @@ fun () ->
    Resilience.Guard.protect ~label:"srv.http.handler"
      ~fallback:(fun _exn ->
        Obs.Registry.incr "srv.http.handler_errors";
        Http.json_error ~status:500 "internal error")
      (fun () ->
        Resilience.Fault.inject "srv.http.handler";
        snd (Router.dispatch t.router req))
  in
  let status = Http.status resp in
  incr_requests ~route ~meth:(Http.meth_name req.Http.meth) ~status;
  let us = Obs.Clock.ns_to_us (Obs.Clock.elapsed_ns ~since:t0) in
  let gc_pause_us =
    let us = float_of_int (Obs.Events.cumulative_pause_ns () - gc0) /. 1e3 in
    (* A consumer stopping mid-request can make the delta negative;
       clamp rather than poison the histogram. *)
    if Float.is_finite us && us >= 0.0 then us else 0.0
  in
  let route_labels = Obs.Labels.make [ ("route", route) ] in
  Obs.Registry.observe ~labels:route_labels "srv.http.latency_us" us;
  Obs.Registry.observe ~labels:route_labels "srv.http.queue_wait.us"
    queue_wait_us;
  if Obs.Events.running () then
    Obs.Registry.observe ~labels:route_labels "srv.http.gc_pause.us"
      gc_pause_us;
  if t.config.access_log then
    access_log_line ~sink:t.config.access_sink ~ctx ~req ~status ~us
      ~queue_wait_us ~gc_pause_us;
  Http.add_header resp ("traceparent", Obs.Trace.to_traceparent ctx)

(* Serve every request a connection carries, then close it.  The
   keep-alive budget ([Guard.Budget]) bounds requests per connection;
   the read deadline bounds how long a worker waits for (the rest of)
   a request.  Peer write failures (reset, broken pipe) just end the
   connection. *)
let serve_connection t ~queue_wait_us fd =
  Obs.Registry.incr "srv.http.connections";
  let reader = Io.reader fd in
  let budget =
    Resilience.Guard.Budget.create ~label:"srv.conn.requests"
      t.config.max_conn_requests
  in
  let deadline () = Option.bind t.config.read_timeout_s (fun s -> Io.deadline_in s) in
  (* Only the connection's first request actually waited in the work
     queue; keep-alive successors are served as they arrive. *)
  let pending_wait = ref queue_wait_us in
  let rec loop () =
    match Resilience.Guard.Budget.tick budget with
    | exception Resilience.Guard.Budget_exhausted _ -> ()
    | () -> (
        match Http.read_request ~limits:t.config.limits reader (deadline ()) with
        | Http.Eof -> ()
        | Http.Error { status; reason } ->
            Obs.Registry.incr "srv.http.parse_errors";
            incr_requests ~route:Router.unmatched_label ~meth:"-" ~status;
            Http.write fd ~keep_alive:false
              (Http.json_error ~status reason)
        | Http.Request req ->
            let queue_wait_us = !pending_wait in
            pending_wait := 0.0;
            let resp = handle_request t ~queue_wait_us req in
            let ka =
              Http.keep_alive req
              && (not (stopping t))
              && not (Resilience.Guard.Budget.exhausted budget)
            in
            Http.write fd ~keep_alive:ka resp;
            if ka then loop ())
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> try loop () with Unix.Unix_error _ | Io.Timeout _ -> ())

(* {2 Listening and accepting} *)

let listen ?(backlog = 128) ~host ~port () =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ ->
      invalid_arg (Printf.sprintf "Pool.listen: bad host %S" host)
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (addr, port));
     Unix.listen fd backlog
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let bound_port fd =
  match Unix.getsockname fd with
  | Unix.ADDR_INET (_, port) -> port
  | Unix.ADDR_UNIX _ -> invalid_arg "Pool.bound_port: not an INET socket"

(* The overload answer, written from the accept loop itself: the
   queue is full, so the connection is refused in O(1) without
   touching a worker. *)
let shed fd =
  Obs.Registry.incr "srv.http.shed";
  incr_requests ~route:Router.unmatched_label ~meth:"-" ~status:503;
  (try
     Http.write fd ~keep_alive:false
       (Http.response
          ~headers:
            [ ("content-type", "application/json"); ("retry-after", "1") ]
          ~status:503 "{\"error\":\"server overloaded\"}\n")
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let serve t listen_fd =
  if stopping t then invalid_arg "Pool.serve: pool already stopped";
  (* A peer resetting mid-write must surface as EPIPE, not kill the
     process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let workers =
    List.init t.config.domains (fun _ ->
        Domain.spawn (fun () ->
            let rec work () =
              match queue_pop t.work with
              | Quit -> ()
              | Conn (fd, enqueued_ns) ->
                  let queue_wait_us =
                    Obs.Clock.ns_to_us
                      (Obs.Clock.elapsed_ns ~since:enqueued_ns)
                  in
                  (* A handler that raises must cost one response,
                     never the worker domain: an escaping exception
                     here would silently shrink the pool until the
                     final [Domain.join]. *)
                  Resilience.Guard.protect ~label:"srv.pool.worker"
                    ~fallback:(fun _ -> ())
                    (fun () -> serve_connection t ~queue_wait_us fd);
                  work ()
            in
            work ()))
  in
  Atomic.set t.accepting true;
  (* Accept-loop housekeeping, run once per select tick (≤ 0.25 s
     apart): mirror queue depth/occupancy and poll the GC into the
     registry.  The accept loop is the process's single
     [Obs.Runtime.sample] writer — gauges merge by summation across
     shards, so a second sampling domain would double-count. *)
  let observe_tick () =
    let depth = queue_depth t.work in
    Obs.Registry.set_gauge "srv.http.queue_depth" (float_of_int depth);
    (* 0/0 on an idle zero-capacity queue would poison the gauge. *)
    let occupancy =
      float_of_int depth /. float_of_int t.config.queue_capacity
    in
    if Float.is_finite occupancy then
      Obs.Registry.set_gauge "srv.http.queue_occupancy" occupancy;
    ignore (Obs.Runtime.sample ());
    (* Daemon housekeeping (periodic snapshots, signal-driven log
       rotation) rides the same tick; it must never kill the accept
       loop. *)
    match t.config.tick with
    | None -> ()
    | Some f ->
        Resilience.Guard.protect ~label:"srv.pool.tick"
          ~fallback:(fun _ -> ())
          f
  in
  let rec accept_loop () =
    if not (stopping t) then begin
      observe_tick ();
      (* Poll the stop flag between waits so [stop] from a signal
         handler takes effect within one tick. *)
      (match Unix.select [ listen_fd ] [] [] 0.25 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept listen_fd with
          | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED), _, _) ->
              ()
          | fd, _ ->
              if
                not
                  (queue_push t.work
                     (Conn (fd, Obs.Clock.monotonic_ns ())))
              then shed fd)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      accept_loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set t.accepting false;
      (* Drain: the Quit sentinels queue behind any accepted-but-unserved
         connections, so every queued request is answered before the
         workers exit. *)
      List.iter (fun _ -> ignore (queue_push t.work Quit)) workers;
      List.iter Domain.join workers)
    accept_loop
