(** HTTP/1.1 request parsing and response serialization.

    Deliberately small: request line + header fields + an optional
    [Content-Length] body, with hard caps on line length, header count
    and body size ({!limits}) so a hostile peer cannot balloon a
    worker's memory.  Chunked transfer encoding is rejected with
    [501].  Keep-alive follows HTTP/1.1 defaults (persistent unless
    [Connection: close]; HTTP/1.0 is one-shot unless
    [Connection: keep-alive]). *)

type meth = GET | POST | PUT | DELETE | HEAD | OPTIONS | Other of string

val meth_of_string : string -> meth
val meth_name : meth -> string
val meth_equal : meth -> meth -> bool

type limits = {
  max_line : int;  (** request line / single header line, bytes *)
  max_headers : int;  (** header field count *)
  max_body : int;  (** [Content-Length] bound, bytes *)
}

val default_limits : limits
(** 8 KiB lines, 64 headers, 1 MiB body. *)

type version = Http_1_0 | Http_1_1

type request = {
  meth : meth;
  target : string;  (** raw request target, e.g. ["/v1/decide?n=3"] *)
  path : string;  (** target before ['?'] *)
  query : (string * string) list;  (** percent-decoded query pairs *)
  version : version;
  headers : (string * string) list;  (** names lowercased, values trimmed *)
  body : string;
}

val header : request -> string -> string option
(** Case-insensitive header lookup. *)

val traceparent : request -> Obs.Trace.t option
(** The request's W3C [traceparent] context, if present and
    well-formed. *)

val keep_alive : request -> bool

type error = { status : int; reason : string }

type parse =
  | Request of request
  | Eof  (** clean close before the first request byte *)
  | Error of error
      (** malformed/oversized/timed-out input, with the status to
          answer before closing: 400, 408, 413, 414, 431, 501 or 505 *)

val read_request : ?limits:limits -> Io.reader -> Io.deadline -> parse
(** Read one request off the connection.  Never raises on peer
    misbehaviour — bad input comes back as [Error] so the caller can
    answer it. *)

(** {1 Responses} *)

type response

val response : ?headers:(string * string) list -> status:int -> string -> response
val text : ?status:int -> string -> response
val json : ?status:int -> Obs.Json.t -> response

val json_error : status:int -> string -> response
(** [{"error": reason}] with the given status. *)

val reason_phrase : int -> string
val status : response -> int

val add_header : response -> string * string -> response
(** Prepend one header (e.g. the echoed [traceparent]). *)

val to_string : keep_alive:bool -> response -> string
(** Serialize: status line, caller headers, [content-length],
    [connection], blank line, body. *)

val write : Unix.file_descr -> keep_alive:bool -> response -> unit
