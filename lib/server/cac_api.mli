(** The admission-control daemon's endpoint surface.

    Wraps a {!Cac.Engine.t} (single-domain by contract) behind one
    mutex and exposes it as a {!Router.t}:

    - [POST /v1/decide] — body [{"link": id, "class": name}]; answers
      the non-mutating verdict
      [{"admissible", "degraded", "reason", "log10_bop", "required_bw"}].
    - [POST /v1/admit] — same body; on admission establishes the
      connection and answers [{"admitted": true, "conn": id}], else
      [{"admitted": false, "reason": ...}].
    - [POST /v1/release] — body [{"conn": id}]; answers
      [{"released": true}] or [404].
    - [GET /metrics] — Prometheus text exposition of the whole
      {!Obs.Registry} (the OpenMetrics scrape endpoint).
    - [GET /healthz] — liveness: status, uptime, link ids, active
      connection count.
    - [GET /breakers] — every (link, class) circuit breaker that has
      seen traffic, with its state.

    Malformed JSON answers [400]; missing or mistyped fields answer
    [422]; unknown links, classes and connections answer [404]. *)

type t

val create : Cac.Engine.t -> t

val with_engine : t -> (Cac.Engine.t -> 'a) -> 'a
(** Run [f] on the engine under the API mutex — for daemon code that
    needs to touch the engine (setup, reporting) while the server is
    live. *)

val router : t -> Router.t
