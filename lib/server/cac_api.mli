(** The admission-control daemon's endpoint surface.

    Wraps a {!Cac.Engine.t} (single-domain by contract) behind one
    mutex and exposes it as a {!Router.t}:

    - [POST /v1/decide] — body [{"link": id, "class": name}]; answers
      the non-mutating verdict
      [{"admissible", "degraded", "reason", "log10_bop", "required_bw"}].
    - [POST /v1/admit] — same body; on admission establishes the
      connection and answers [{"admitted": true, "conn": id}], else
      [{"admitted": false, "reason": ...}].
    - [POST /v1/release] — body [{"conn": id}]; answers
      [{"released": true}] or [404].
    - [GET /metrics] — Prometheus text exposition of the whole
      {!Obs.Registry} (the OpenMetrics scrape endpoint), including
      trace-id exemplars on histogram [+Inf] buckets.
    - [GET /healthz] — liveness: status, uptime, link ids, active
      connection count, registry snapshot age, and runtime-collector
      liveness ([live]/[stale]/[never]; stale after 5 s without an
      {!Obs.Runtime.sample}).
    - [GET /breakers] — every (link, class) circuit breaker that has
      seen traffic, with its state.
    - [GET /debug/vars] — JSON introspection: uptime, monotonic clock
      source, a fresh [Gc.quick_stat] poll ([gc], the answering
      domain's view) plus the runtime collector's last sample
      ([gc_sampled]), collector/snapshot ages, and any sections
      registered via {!add_debug_provider}.
    - [GET /heatmap], [GET /heatmap.csv] — the per-buffer
      [cts.m_star] distributions ({!Obs.Heatmap}) as a self-contained
      HTML view / long-format CSV.

    [decide]/[admit]/[release] run inside [cac.api.*] spans, so a
    traced request produces a span tree under the pool's
    [srv.http.request] root.

    Malformed JSON answers [400]; missing or mistyped fields answer
    [422]; unknown links, classes and connections answer [404]. *)

type t

val create : Cac.Engine.t -> t

val with_engine : t -> (Cac.Engine.t -> 'a) -> 'a
(** Run [f] on the engine under the API mutex — for daemon code that
    needs to touch the engine (setup, reporting) while the server is
    live. *)

val add_debug_provider : t -> name:string -> (unit -> Obs.Json.t) -> t
(** Register (or replace) a named [/debug/vars] section; the thunk
    runs per request, and an exception renders as
    ["<provider error>"] instead of failing the endpoint.  Returns
    [t] for chaining. *)

val router : t -> Router.t
