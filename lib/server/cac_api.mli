(** The admission-control daemon's endpoint surface.

    Wraps a {!Cac.Engine.t} (single-domain by contract) behind one
    mutex and exposes it as a {!Router.t}:

    - [POST /v1/decide] — body [{"link": id, "class": name}]; answers
      the non-mutating verdict
      [{"admissible", "degraded", "reason", "log10_bop", "required_bw"}].
    - [POST /v1/admit] — same body; on admission establishes the
      connection and answers [{"admitted": true, "conn": id}], else
      [{"admitted": false, "reason": ...}].
    - [POST /v1/release] — body [{"conn": id}]; answers
      [{"released": true}] or [404].
    - [GET /metrics] — Prometheus text exposition of the whole
      {!Obs.Registry} (the OpenMetrics scrape endpoint), including
      trace-id exemplars on histogram [+Inf] buckets.
    - [GET /healthz] — liveness {e and} readiness: status, [state]
      (["ready"], or ["recovering"] while WAL replay is restoring the
      connection table), uptime, link ids, active connection count,
      registry snapshot age, and runtime-collector liveness
      ([live]/[stale]/[never]; stale after 5 s without an
      {!Obs.Runtime.sample}).
    - [GET /breakers] — every (link, class) circuit breaker that has
      seen traffic, with its state.
    - [GET /debug/vars] — JSON introspection: uptime, monotonic clock
      source, a fresh [Gc.quick_stat] poll ([gc], the answering
      domain's view) plus the runtime collector's last sample
      ([gc_sampled]), collector/snapshot ages, a [spans] section
      (count, mean and interpolated p50/p95/p99 per [span.*.us]
      histogram), and any sections registered via
      {!add_debug_provider}.
    - [GET /profile] — the latency decomposition: per route, the
      handler time ([srv.http.latency_us] sum and quantiles), queue
      wait and GC-pause overlap sums; [totals] (decomposition total
      vs. the [srv.http.request] span's sum over the same requests);
      the {!Obs.Events} state, its longest pauses and per-domain pause
      totals.  GC fields are zero until the daemon runs with
      [--events].
    - [GET /heatmap], [GET /heatmap.csv] — the per-buffer
      [cts.m_star] distributions ({!Obs.Heatmap}) as a self-contained
      HTML view / long-format CSV.

    [decide]/[admit]/[release] run inside [cac.api.*] spans, so a
    traced request produces a span tree under the pool's
    [srv.http.request] root.

    Malformed JSON answers [400]; missing or mistyped fields answer
    [422]; unknown links, classes and connections answer [404];
    decide/admit/release answer [503] while the daemon is still
    recovering ({!create}'s [recovering], cleared by {!set_ready}). *)

type t

val create : ?recovering:bool -> Cac.Engine.t -> t
(** [recovering] (default [false]) starts the API not-ready: /healthz
    reports [state = "recovering"] and decide/admit/release answer
    503 until {!set_ready} — bind the socket early, route traffic only
    after replay. *)

val with_engine : t -> (Cac.Engine.t -> 'a) -> 'a
(** Run [f] on the engine under the API mutex — for daemon code that
    needs to touch the engine (setup, reporting) while the server is
    live. *)

val ready : t -> bool

val set_ready : t -> unit
(** Flip to ready (one-way).  Call after state recovery completes. *)

val set_barrier : t -> (unit -> unit) -> unit
(** Install the durability barrier (e.g. [Persist.Store.barrier]): it
    runs after each acked mutation (admit established / release
    applied), outside the engine mutex, before the response is
    written.  Default: no-op. *)

val add_debug_provider : t -> name:string -> (unit -> Obs.Json.t) -> t
(** Register (or replace) a named [/debug/vars] section; the thunk
    runs per request, and an exception renders as
    ["<provider error>"] instead of failing the endpoint.  Returns
    [t] for chaining. *)

val router : t -> Router.t
