(** Method + path request routing.

    Routes are exact-path matches; dispatching an unknown path answers
    [404], a known path with the wrong method answers [405] with an
    [Allow] header.  {!dispatch} also returns the {e route label} used
    for per-route telemetry: the matched path for known routes, the
    single {!unmatched_label} bucket otherwise, so hostile paths
    cannot explode metric label cardinality. *)

type handler = Http.request -> Http.response
type route
type t

val route : Http.meth -> string -> handler -> route
(** Raises [Invalid_argument] unless the path starts with ['/']. *)

val create : route list -> t
(** Raises [Invalid_argument] on duplicate (method, path) pairs. *)

val routes : t -> (Http.meth * string) list

val unmatched_label : string
(** ["unmatched"] — the telemetry bucket for 404s. *)

val label : t -> Http.request -> string
(** The route label {!dispatch} would report, without running any
    handler. *)

val dispatch : t -> Http.request -> string * Http.response
(** [(route_label, response)]. *)
