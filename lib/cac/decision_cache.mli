(** Bounded LRU memoisation of admission-decision primitives.

    An online CAC engine answers a stream of admit/release requests
    whose underlying numerical work — Bahadur–Rao rate-function
    evaluations and effective-bandwidth bisections — depends only on a
    small, heavily revisited state space (source class, per-source
    buffer and bandwidth, connection count).  Caching those evaluations
    turns the steady-state decision into a hash lookup.

    The cache is generic in key and value, bounded by an entry
    capacity, and evicts least-recently-used entries.  Hit, miss and
    eviction counts flow to two places: the process-wide telemetry
    counters [cac.cache.{hits,misses,evictions}] in {!Obs.Registry}
    (summed over every cache instance and domain — the export source
    of truth), and a per-instance {!stats} view used for steady-state
    windows within one run ({!diff}).  A capacity of 0 disables
    memoisation (every lookup recomputes), which gives benchmarks and
    tests an uncached reference path.

    Not thread-safe: use one cache per domain. *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** [create ~capacity] holds at most [capacity] entries ([capacity >= 0]). *)

val find_or_add : ('k, 'v) t -> 'k -> compute:(unit -> 'v) -> 'v
(** [find_or_add t k ~compute] returns the cached value for [k],
    computing and inserting it (possibly evicting the LRU entry) on a
    miss.  The entry becomes most-recently-used either way. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Membership test; does not touch recency or counters. *)

val length : ('k, 'v) t -> int
val capacity : ('k, 'v) t -> int

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
}

val stats : ('k, 'v) t -> stats

val hit_rate : stats -> float
(** [hits / (hits + misses)]; 0 when no lookups happened. *)

val diff : before:stats -> after:stats -> stats
(** Counter deltas between two snapshots of the same cache — used to
    report the steady-state hit rate after a warm-up window. *)

val reset_counters : ('k, 'v) t -> unit
(** Zero the hit/miss/eviction counters, keeping the entries. *)

val clear : ('k, 'v) t -> unit
(** Drop all entries and zero the counters. *)
