(** One admission-controlled ATM link: static resources (capacity,
    buffer, CLR target) plus the live mix of admitted connections,
    bucketed by source class.

    The link itself is passive bookkeeping — admission logic lives in
    {!Engine}, which consults and mutates the per-class counts. *)

type t

val create :
  id:string -> capacity:float -> buffer:float -> target_clr:float -> t
(** [capacity] in cells/frame, [buffer] in cells,
    [target_clr] in (0, 1).  Raises [Invalid_argument] on
    non-positive capacity/buffer or an out-of-range target. *)

val id : t -> string
val capacity : t -> float
val buffer : t -> float
val target_clr : t -> float

val count : t -> cls:Source_class.t -> int
(** Admitted connections of one class (0 when none). *)

val counts : t -> (Source_class.t * int) list
(** All classes with at least one admitted connection. *)

val connections : t -> int
(** Total admitted connections across classes. *)

val mean_load : t -> float
(** Aggregate mean rate of the admitted mix, cells/frame. *)

val utilization : t -> float
(** [mean_load / capacity]. *)

val buffer_msec : t -> float
(** Maximum drain time of the buffer at full line rate, msec. *)

val add : t -> cls:Source_class.t -> unit
(** Record one more admitted connection of [cls]. *)

val remove : t -> cls:Source_class.t -> unit
(** Remove one connection of [cls]; raises [Invalid_argument] if none
    is admitted. *)
