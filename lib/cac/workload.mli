(** A stochastic connection-level workload for stressing the engine:
    Poisson arrivals, exponential holding times, and a weighted mix of
    source classes — the classic Erlang loss setting, with the CAC
    decision in place of a fixed trunk count.

    Everything is driven by a {!Numerics.Rng.t}, so a replay is exactly
    reproducible from a seed, and replications fan out over
    {!Queueing.Replication} substreams. *)

type spec = {
  arrival_rate : float;  (** connection attempts per second *)
  mean_holding : float;  (** mean connection lifetime, seconds *)
  requests : int;  (** connection attempts to replay *)
  mix : (Source_class.t * float) list;
      (** classes with positive sampling weights *)
  warmup : float;
      (** fraction of requests treated as warm-up when reporting
          steady-state figures (in [0, 1)) *)
}

val spec :
  ?warmup:float ->
  ?mean_holding:float ->
  arrival_rate:float ->
  requests:int ->
  mix:(Source_class.t * float) list ->
  unit ->
  spec
(** Defaults: [warmup = 0.2], [mean_holding = 60.0]. *)

val offered_load : spec -> float
(** [arrival_rate * mean_holding]: mean number of simultaneously
    active connections the workload tries to sustain (Erlangs). *)

type result = {
  offered : int;  (** connection attempts replayed *)
  admitted : int;
  rejected : int;  (** requests the engine decided to reject *)
  errors : int;
      (** requests on which the engine {e failed} mid-decision
          (exception escaped {!Engine.admit}, or an armed
          [cac.workload.admit] fault fired).  Counted fail-closed: the
          connection is not admitted and the replay continues. *)
  degraded : int;
      (** decisions taken through the engine's peak-rate fallback
          (the {!Metrics.fallbacks} delta across this run) *)
  blocking : float;  (** (rejected + errors) / offered *)
  steady_blocking : float;  (** same, over the post-warm-up portion *)
  cache_hit_rate : float;  (** over the whole replay *)
  steady_cache_hit_rate : float;  (** over the post-warm-up portion *)
  mean_occupancy : float;  (** time-average of active connections *)
  peak_occupancy : int;
  final_occupancy : int;
  mean_latency_us : float;  (** mean decision latency, microseconds *)
  duration : float;  (** simulated seconds *)
}

val run : Engine.t -> link:string -> spec -> Numerics.Rng.t -> result
(** Replay [spec.requests] connection attempts against [link],
    releasing each admitted connection when its exponential holding
    time expires.  The engine is used as-is (its cache may be warm).

    Crash-proof: an exception from an individual admission decision is
    counted in [errors] (and [cac.workload.errors]) and the replay
    continues — only [Out_of_memory]/[Stack_overflow] (or a failure
    outside the per-request decision, e.g. an unknown [link])
    propagate. *)

val replicate :
  seed:int ->
  reps:int ->
  make_engine:(unit -> Engine.t * string) ->
  spec ->
  result array * Stats.Ci.interval
(** Independent replications, one fresh engine and RNG substream each;
    returns the per-replication results and a Student-t interval on
    the steady-state blocking probability. *)
