(** Named traffic classes for the admission engine.

    A class bundles a {!Traffic.Process.t} (one of the paper's VBR
    video models) with its memoised {!Core.Variance_growth.t}, so every
    decision about the class shares one incrementally-built V(m) table.
    The class [name] is the stable identifier used in decision-cache
    keys and CLI arguments.

    [of_name] resolves through a domain-local registry (one memo table
    per OCaml domain), sharing the variance-growth table across
    engines in the same domain without any cross-domain
    synchronization.  [fresh] bypasses the registry entirely:
    variance-growth tables mutate internally on evaluation, so code
    that hands a class to another domain (see {!Sweep}) must build a
    private instance per domain. *)

type t = {
  name : string;
  process : Traffic.Process.t;
  vg : Core.Variance_growth.t;
}

val names : string list
(** The known class names: z0.7, z0.9, z0.975, z0.99, l, dar1, dar2,
    dar3, mpeg. *)

val of_name : string -> t option
(** Resolve a name through the calling domain's registry
    (case-insensitive).  [None] for unknown names. *)

val of_name_exn : string -> t
(** Like {!of_name}, raising [Invalid_argument] on unknown names. *)

val fresh : string -> t option
(** Build a private, registry-bypassing instance — required when the
    class will be used from a spawned domain. *)

val of_process : Traffic.Process.t -> t
(** Wrap an arbitrary process (name taken from the process). *)

val mean : t -> float
(** Mean frame size, cells/frame. *)

val peak : t -> float
(** The engineered peak-rate proxy, cells/frame: [mean + 3 * std] of
    the frame-size marginal.  This is what the engine's fail-closed
    degraded path allocates per connection when the Bahadur–Rao kernel
    is unavailable — deliberately cruder and more conservative than
    any buffer-aware test, and never dependent on the numerics that
    just failed. *)
