(** The online connection-admission-control engine.

    An engine owns a registry of {!Link}s, a table of live connections,
    a {!Decision_cache} shared by every link, and {!Metrics}.  It
    answers admit/release/query requests against live state:

    - {b admit}: would the link still meet its CLR target with one
      more connection of the given class?  If yes, the connection is
      established and a connection id returned.
    - {b release}: tear down a connection by id, restoring the link
      state exactly.
    - {b query}: non-mutating versions of the same decision, plus
      utilisation accounting.

    {2 Decision rule}

    For a link with capacity [C] (cells/frame), buffer [B] (cells) and
    CLR target [clr], a candidate mix is accepted when:

    - the mix is homogeneous (one class, [n] connections): the
      Bahadur–Rao overflow probability of [n] sources at [(C, B)] is
      at most [clr] (exactly {!Core.Admission.max_admissible}'s
      criterion);
    - the mix is heterogeneous: the sum over classes of
      [n_k * eb_k(n_k)] is at most [C], where [eb_k] is the per-source
      effective bandwidth ({!Core.Admission.effective_bandwidth_per_source})
      of [n_k] class-[k] sources alone on [(C, B)] at [clr].  Additive
      effective bandwidths are mildly conservative — each class is
      priced as if it had to meet the target by itself.

    Both primitives are memoised in the decision cache: the
    Bahadur–Rao evaluation under key [(class, b, c-per-source, n)] and
    the effective bandwidth under [(class, B, clr, n)].  Since an
    engine's reachable state space is small and heavily revisited,
    steady-state decisions are O(1) hash lookups.  A kernel result
    that is NaN or infinite is {e never} inserted — the failed compute
    raises first, so retries recompute instead of replaying corruption.

    {2 Fail-closed degradation}

    Admission at CLR <= 1e-6 is a safety property: the test must never
    silently fail {e open}.  Every kernel evaluation therefore runs
    behind a per-(link, class) {!Resilience.Guard.Breaker} with
    bounded retry inside it.  A kernel that raises, exhausts its
    retries, or returns a non-finite value counts as a breaker
    failure, and the decision {e degrades} to peak-rate allocation:
    the candidate mix is admitted only if
    [sum n_k * peak_k <= C], with [peak_k] the class's
    {!Source_class.peak} proxy — cruder and strictly more conservative
    in spirit, and independent of the numerics that just failed.
    After [breaker_threshold] consecutive failures the breaker opens
    and decisions skip the kernel entirely for [breaker_cooldown]
    calls, then a half-open probe retries it; recovery closes the
    breaker.  Degraded verdicts carry [degraded = true] and tick
    [cac.guard.fallbacks].

    {2 Durability hook}

    The engine itself is memory-only, but every mutation can be
    mirrored to an external journal: {!set_journal} installs a hook
    that receives each completed {!op} (link added/removed, connection
    admitted/released) inside whatever critical section the caller
    runs the engine under.  The hook must not raise and must not block
    — [Persist.Store] satisfies both by pushing to an in-memory ring
    drained by a dedicated flusher domain.  {!apply} is the replay
    inverse: it re-executes an [op] on a cold engine without
    re-deciding it (no admission test, no admit/reject counters), and
    {!export}/{!restore} move whole-engine snapshots for
    checkpointing.

    {2 Engines are single-domain}: share nothing across [Domain.spawn]
    (see {!Sweep}). *)

type t

(** A completed engine mutation, as recorded by the journal hook and
    re-executed by {!apply}.  Links and classes are referenced by
    their stable names so the value survives process restarts. *)
type op =
  | Op_add_link of {
      id : string;
      capacity : float;
      buffer : float;
      target_clr : float;
    }
  | Op_remove_link of string
  | Op_admit of { conn : int; link : string; cls : string }
  | Op_release of int

type reject_reason =
  | Unstable  (** mean load of the candidate mix would reach capacity *)
  | Clr_exceeded  (** the loss estimate for the candidate mix misses the target *)

type decision = Admitted of int  (** connection id *) | Rejected of reject_reason

type verdict = {
  admissible : bool;
  reason : reject_reason option;
  log10_bop : float option;
      (** Bahadur–Rao log10 BOP of the candidate mix (homogeneous
          path, kernel healthy) *)
  required_bw : float option;
      (** total effective bandwidth of the candidate mix, cells/frame
          (heterogeneous path) — or the total {e peak-rate} allocation
          when [degraded] *)
  degraded : bool;
      (** the Bahadur–Rao/effective-bandwidth kernel was unavailable
          (exception, non-finite result, or open breaker) and the
          decision fell back to peak-rate allocation *)
}

val create :
  ?cache_capacity:int ->
  ?clock:(unit -> float) ->
  ?max_retries:int ->
  ?breaker_threshold:int ->
  ?breaker_cooldown:int ->
  ?breaker_cooldown_s:float ->
  unit ->
  t
(** [cache_capacity] bounds the decision cache (default 4096; 0
    disables caching).  [clock] supplies wall-clock seconds for latency
    metrics (default {!Obs.Clock.wall}).  [max_retries] (default 1)
    bounds kernel re-attempts per decision; [breaker_threshold]
    (default 5) is the consecutive-failure trip point and
    [breaker_cooldown] (default 32) the number of fast-failed
    decisions before a half-open probe.  [breaker_cooldown_s] switches
    the per-(link, class) breakers to wall-clock cooldowns of that
    many seconds (see {!Resilience.Guard.Breaker.create}) — meant for
    [cts serve], where recovery should not wait for traffic. *)

val add_link :
  t -> id:string -> capacity:float -> buffer:float -> target_clr:float -> Link.t
(** Register a link.  Raises [Invalid_argument] if the id is taken. *)

val add_link_msec :
  t ->
  id:string ->
  capacity:float ->
  buffer_msec:float ->
  target_clr:float ->
  Link.t
(** Same, with the buffer given as a maximum drain delay in msec. *)

val remove_link : t -> string -> unit
(** Drop a link, all its connections, and its circuit breakers.  Every
    stale connection is accounted as a release (engine metrics and the
    link's registry series), so active-connection accounting stays
    exact. *)

val link : t -> string -> Link.t
(** Raises [Invalid_argument] on unknown ids. *)

val links : t -> Link.t list

val evaluate : t -> link:string -> cls:Source_class.t -> verdict
(** The admission decision for one more [cls] connection, without
    mutating link or connection state (or instance metrics).  It {e
    does} advance resilience state: breaker counters, and the
    [cac.guard.*] / [cac.fault.*] telemetry. *)

val would_admit : t -> link:string -> cls:Source_class.t -> bool

val admit : t -> link:string -> cls:Source_class.t -> decision
(** Decide, record metrics (including decision latency and degraded
    fallbacks), and on success establish the connection.
    Exception-safe: if anything raises mid-admission the link and
    connection tables are left exactly as before the call. *)

val release : t -> conn:int -> unit
(** Raises [Invalid_argument] for unknown connection ids. *)

val connection : t -> int -> (Link.t * Source_class.t) option

val active_connections : t -> int

val fill : t -> link:string -> cls:Source_class.t -> int
(** Admit [cls] connections until the first rejection; returns how many
    were admitted by this call.  With an empty homogeneous link this
    reproduces {!Core.Admission.max_admissible}. *)

val breaker_state :
  t -> link:string -> cls:Source_class.t -> Resilience.Guard.Breaker.state option
(** The (link, class) circuit breaker's state; [None] until the pair's
    first kernel evaluation. *)

val metrics : t -> Metrics.t
val cache_stats : t -> Decision_cache.stats

(** {2 Durability: journal hook, replay, state transfer} *)

val set_journal : t -> (op -> unit) option -> unit
(** Install (or clear) the journal hook.  The hook is called with each
    completed mutation, after the engine state has moved; it must not
    raise and must not block (see the module preamble). *)

val journaled : t -> bool
(** Whether a journal hook is installed. *)

val apply : t -> op -> unit
(** Re-execute a journaled mutation during recovery: mutates link and
    connection state (and the live-connection gauge) without running
    the admission test or advancing admit/reject telemetry.
    [Op_admit] takes the recorded connection id and bumps the id
    allocator past it.  Raises [Invalid_argument] on an op
    inconsistent with current state — duplicate link or connection id,
    unknown link, class or connection — and when a journal hook is
    armed (replay must target a cold engine; recovery counts such
    skips instead of crashing). *)

type link_state = {
  l_id : string;
  l_capacity : float;  (** cells/frame *)
  l_buffer : float;  (** cells *)
  l_target_clr : float;
}

type conn_state = { c_conn : int; c_link : string; c_class : string }

type breaker_snapshot = { b_link : string; b_class : string; b_state : string }
(** [b_state] is a {!Resilience.Guard.Breaker.state_name}. *)

type state = {
  s_links : link_state list;  (** sorted by id *)
  s_conns : conn_state list;  (** sorted by connection id *)
  s_breakers : breaker_snapshot list;  (** sorted by (link, class) *)
  s_next_conn : int;
}

val export : t -> state
(** Snapshot the full engine state.  All lists are sorted, so equal
    engine states export structurally (and byte-) identically —
    recovery determinism is checked against this. *)

val restore : t -> state -> unit
(** Load an exported state into a cold, empty engine: links first,
    then connections (via {!apply}), then breaker states (via
    {!Resilience.Guard.Breaker.force}, without touching trip
    telemetry).  Raises [Invalid_argument] if the engine already has
    links or connections, has a journal hook armed, or the state is
    internally inconsistent. *)
