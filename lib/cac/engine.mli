(** The online connection-admission-control engine.

    An engine owns a registry of {!Link}s, a table of live connections,
    a {!Decision_cache} shared by every link, and {!Metrics}.  It
    answers admit/release/query requests against live state:

    - {b admit}: would the link still meet its CLR target with one
      more connection of the given class?  If yes, the connection is
      established and a connection id returned.
    - {b release}: tear down a connection by id, restoring the link
      state exactly.
    - {b query}: non-mutating versions of the same decision, plus
      utilisation accounting.

    {2 Decision rule}

    For a link with capacity [C] (cells/frame), buffer [B] (cells) and
    CLR target [clr], a candidate mix is accepted when:

    - the mix is homogeneous (one class, [n] connections): the
      Bahadur–Rao overflow probability of [n] sources at [(C, B)] is
      at most [clr] (exactly {!Core.Admission.max_admissible}'s
      criterion);
    - the mix is heterogeneous: the sum over classes of
      [n_k * eb_k(n_k)] is at most [C], where [eb_k] is the per-source
      effective bandwidth ({!Core.Admission.effective_bandwidth_per_source})
      of [n_k] class-[k] sources alone on [(C, B)] at [clr].  Additive
      effective bandwidths are mildly conservative — each class is
      priced as if it had to meet the target by itself.

    Both primitives are memoised in the decision cache: the
    Bahadur–Rao evaluation under key [(class, b, c-per-source, n)] and
    the effective bandwidth under [(class, B, clr, n)].  Since an
    engine's reachable state space is small and heavily revisited,
    steady-state decisions are O(1) hash lookups.

    Engines are single-domain: share nothing across [Domain.spawn]
    (see {!Sweep}). *)

type t

type reject_reason =
  | Unstable  (** mean load of the candidate mix would reach capacity *)
  | Clr_exceeded  (** the loss estimate for the candidate mix misses the target *)

type decision = Admitted of int  (** connection id *) | Rejected of reject_reason

type verdict = {
  admissible : bool;
  reason : reject_reason option;
  log10_bop : float option;
      (** Bahadur–Rao log10 BOP of the candidate mix (homogeneous path) *)
  required_bw : float option;
      (** total effective bandwidth of the candidate mix, cells/frame
          (heterogeneous path) *)
}

val create : ?cache_capacity:int -> ?clock:(unit -> float) -> unit -> t
(** [cache_capacity] bounds the decision cache (default 4096; 0
    disables caching).  [clock] supplies wall-clock seconds for latency
    metrics (default [Unix.gettimeofday]). *)

val add_link :
  t -> id:string -> capacity:float -> buffer:float -> target_clr:float -> Link.t
(** Register a link.  Raises [Invalid_argument] if the id is taken. *)

val add_link_msec :
  t ->
  id:string ->
  capacity:float ->
  buffer_msec:float ->
  target_clr:float ->
  Link.t
(** Same, with the buffer given as a maximum drain delay in msec. *)

val remove_link : t -> string -> unit
(** Drop a link and all its connections. *)

val link : t -> string -> Link.t
(** Raises [Invalid_argument] on unknown ids. *)

val links : t -> Link.t list

val evaluate : t -> link:string -> cls:Source_class.t -> verdict
(** The admission decision for one more [cls] connection, without
    mutating anything (not even metrics). *)

val would_admit : t -> link:string -> cls:Source_class.t -> bool

val admit : t -> link:string -> cls:Source_class.t -> decision
(** Decide, record metrics (including decision latency), and on
    success establish the connection. *)

val release : t -> conn:int -> unit
(** Raises [Invalid_argument] for unknown connection ids. *)

val connection : t -> int -> (Link.t * Source_class.t) option

val active_connections : t -> int

val fill : t -> link:string -> cls:Source_class.t -> int
(** Admit [cls] connections until the first rejection; returns how many
    were admitted by this call.  With an empty homogeneous link this
    reproduces {!Core.Admission.max_admissible}. *)

val metrics : t -> Metrics.t
val cache_stats : t -> Decision_cache.stats
