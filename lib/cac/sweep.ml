type scenario = {
  class_name : string;
  capacity : float;
  buffer_msec : float;
  target_clr : float;
  requests : int;
  load_factor : float;
  seed : int;
}

type row = {
  scenario : scenario;
  n_max : int;
  eff_bw : float;
  utilization : float;
  blocking : float option;
  cache_hit_rate : float option;
}

type failure = { scenario : scenario; error : string; attempts : int }
type outcome = Row of row | Failed of failure

let grid ?(capacity = 16140.0) ?(requests = 0) ?(load_factor = 1.1)
    ?(seed = 1996) ~class_names ~buffers_msec ~target_clrs () =
  let scenarios = ref [] in
  let index = ref 0 in
  List.iter
    (fun class_name ->
      List.iter
        (fun buffer_msec ->
          List.iter
            (fun target_clr ->
              scenarios :=
                {
                  class_name;
                  capacity;
                  buffer_msec;
                  target_clr;
                  requests;
                  load_factor;
                  (* Per-scenario seeds keep every cell's workload
                     independent of evaluation order. *)
                  seed = seed + (7919 * !index);
                }
                :: !scenarios;
              incr index)
            target_clrs)
        buffers_msec)
    class_names;
  List.rev !scenarios

(* Both instruments are only recorded with a [worker] label, so fix
   the histogram shape without declaring unlabelled zero series. *)
let () =
  Obs.Registry.set_histogram_spec ~lo:0.0 ~hi:2_000_000.0 ~bins:80
    "cac.sweep.task_us";
  Obs.Registry.declare_counter "cac.sweep.task_errors";
  Obs.Registry.declare_counter "cac.sweep.task_retries"

let evaluate scenario =
  (* Everything domain-local: fresh class (private variance-growth
     table), fresh engine (private cache). *)
  let cls =
    match Source_class.fresh scenario.class_name with
    | Some cls -> cls
    | None ->
        invalid_arg
          (Printf.sprintf "Sweep: unknown class %S" scenario.class_name)
  in
  let make_engine () =
    let engine = Engine.create ~clock:(fun () -> 0.0) () in
    let _ =
      Engine.add_link_msec engine ~id:"link" ~capacity:scenario.capacity
        ~buffer_msec:scenario.buffer_msec ~target_clr:scenario.target_clr
    in
    (engine, "link")
  in
  let engine, link = make_engine () in
  let n_max = Engine.fill engine ~link ~cls in
  let utilization =
    float_of_int n_max *. Source_class.mean cls /. scenario.capacity
  in
  let blocking, cache_hit_rate =
    if scenario.requests <= 0 || n_max = 0 then (None, None)
    else begin
      let mean_holding = 60.0 in
      let offered = scenario.load_factor *. float_of_int n_max in
      let spec =
        Workload.spec ~mean_holding
          ~arrival_rate:(offered /. mean_holding)
          ~requests:scenario.requests ~mix:[ (cls, 1.0) ] ()
      in
      let engine, link = make_engine () in
      let result =
        Workload.run engine ~link spec
          (Numerics.Rng.create ~seed:scenario.seed)
      in
      (Some result.Workload.steady_blocking,
       Some result.Workload.steady_cache_hit_rate)
    end
  in
  {
    scenario;
    n_max;
    eff_bw =
      (if n_max = 0 then infinity
       else scenario.capacity /. float_of_int n_max);
    utilization;
    blocking;
    cache_hit_rate;
  }

(* [evaluate] plus per-task telemetry: a [cac.sweep.task] span (which
   inherits the submitting domain's trace id — see [run]), one
   [cac.sweep.tasks] tick and a duration observation, labelled by the
   worker slot (label sets are fixed per worker, so sequential and
   parallel runs export the same instrument names; only the
   per-worker split differs). *)
let evaluate_instrumented ~worker scenario =
  Obs.Span.with_ ~name:"cac.sweep.task" @@ fun () ->
  let labels = Obs.Labels.make [ ("worker", string_of_int worker) ] in
  let t0 = Obs.Clock.monotonic_ns () in
  let row = evaluate scenario in
  Obs.Registry.incr ~labels "cac.sweep.tasks";
  Obs.Registry.observe ~labels "cac.sweep.task_us"
    (Obs.Clock.ns_to_us (Obs.Clock.elapsed_ns ~since:t0));
  row

(* One task, crash-proof: the fault stream is re-armed from the
   scenario seed (so faults are deterministic whatever domain claims
   the task), the [cac.sweep.task] injection point may kill the
   attempt, and any exception — injected or organic — is caught and
   retried up to [task_retries] times before the scenario is returned
   as a [Failed] outcome instead of crashing the worker domain. *)
let evaluate_protected ~task_retries ~worker scenario =
  Resilience.Fault.reseed scenario.seed;
  let rec go attempt =
    match
      Resilience.Fault.inject "cac.sweep.task";
      evaluate_instrumented ~worker scenario
    with
    | row -> Row row
    | exception ((Out_of_memory | Stack_overflow) as exn) -> raise exn
    | exception exn ->
        Obs.Registry.incr "cac.sweep.task_errors";
        if attempt < task_retries then begin
          Obs.Registry.incr "cac.sweep.task_retries";
          go (attempt + 1)
        end
        else
          Failed
            {
              scenario;
              error = Printexc.to_string exn;
              attempts = attempt + 1;
            }
  in
  go 0

let run ?domains ?(task_retries = 1) scenarios =
  Obs.Span.with_ ~name:"cac.sweep.run" @@ fun () ->
  if task_retries < 0 then invalid_arg "Sweep.run: task_retries < 0";
  let scenarios = Array.of_list scenarios in
  let n = Array.length scenarios in
  let domains =
    match domains with
    | Some d ->
        if d < 1 then invalid_arg "Sweep.run: domains < 1";
        Stdlib.min d (Stdlib.max 1 n)
    | None -> Stdlib.min (Domain.recommended_domain_count ()) (Stdlib.max 1 n)
  in
  let rows = Array.make n None in
  (* Trace contexts are per-domain, so a freshly-spawned worker would
     otherwise start traceless and its task spans could not be joined
     to the caller's request.  Capture the submitting domain's
     context once and restore it inside every worker. *)
  let trace = Obs.Trace.current () in
  let with_submitter_trace f =
    match trace with Some t -> Obs.Trace.with_context t f | None -> f ()
  in
  if domains <= 1 then
    Array.iteri
      (fun i s ->
        rows.(i) <- Some (evaluate_protected ~task_retries ~worker:0 s))
      scenarios
  else begin
    let next = Atomic.make 0 in
    let worker slot () =
      with_submitter_trace @@ fun () ->
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          rows.(i) <-
            Some (evaluate_protected ~task_retries ~worker:slot scenarios.(i));
          loop ()
        end
      in
      loop ()
    in
    let spawned =
      List.init (domains - 1) (fun slot -> Domain.spawn (worker (slot + 1)))
    in
    worker 0 ();
    List.iter Domain.join spawned
  end;
  (* Every task is caught above, so every slot is filled; if a worker
     domain nonetheless died, its unclaimed scenarios surface as
     Failed rows rather than an Option.get crash losing the run. *)
  Array.mapi
    (fun i r ->
      match r with
      | Some outcome -> outcome
      | None ->
          Failed
            {
              scenario = scenarios.(i);
              error = "task never completed (worker domain lost)";
              attempts = 0;
            })
    rows

let rows outcomes =
  Array.to_list outcomes
  |> List.filter_map (function Row r -> Some r | Failed _ -> None)
  |> Array.of_list

let failures outcomes =
  Array.to_list outcomes
  |> List.filter_map (function Failed f -> Some f | Row _ -> None)

let print_table outcomes =
  Obs.Sink.printf "%-8s %10s %8s %8s %6s %8s %9s %8s\n" "class" "buf_msec"
    "clr" "n_max" "util" "eff_bw" "blocking" "hit%";
  Array.iter
    (fun outcome ->
      match outcome with
      | Failed f ->
          let s = f.scenario in
          Obs.Sink.printf "%-8s %10g %8.0e %s\n" s.class_name s.buffer_msec
            s.target_clr
            (Printf.sprintf "ERROR after %d attempt%s: %s" f.attempts
               (if f.attempts = 1 then "" else "s")
               f.error)
      | Row row ->
          let s = row.scenario in
          Obs.Sink.printf "%-8s %10g %8.0e %8d %5.1f%% %8s %9s %8s\n"
            s.class_name s.buffer_msec s.target_clr row.n_max
            (100.0 *. row.utilization)
            (* n_max = 0 makes eff_bw meaningless (capacity / 0): render
               a dash, not "inf". *)
            (if row.n_max = 0 then "-" else Printf.sprintf "%.1f" row.eff_bw)
            (match row.blocking with
            | Some b -> Printf.sprintf "%.4f" b
            | None -> "-")
            (match row.cache_hit_rate with
            | Some h -> Printf.sprintf "%.1f" (100.0 *. h)
            | None -> "-"))
    outcomes
