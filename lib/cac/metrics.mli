(** Operational counters and latency accounting for the CAC engine — a
    per-engine view over the same event stream that feeds the global
    {!Obs.Registry}.

    Every recorded event goes to two places: the process-wide
    instruments [cac.engine.{admits,rejects,releases}] and the
    [cac.engine.decision_latency_us] histogram (the source of truth
    for {!Obs.Export} — summed over all engines and domains), and this
    instance's own state, which additionally keeps the raw latency
    samples needed for mean / confidence-interval summaries via
    {!Stats.Ci}. *)

type t

val create : unit -> t

val record_admit : t -> latency:float -> unit
(** [latency] in seconds, as measured around the decision. *)

val record_reject : t -> latency:float -> unit
val record_release : t -> unit

val record_fallback : t -> unit
(** Count one degraded (peak-rate, fail-closed) decision.  Instance
    view only: the process-wide [cac.guard.fallbacks] counter is
    ticked by {!Resilience.Guard} at the decision site. *)

val admits : t -> int
val rejects : t -> int
val releases : t -> int

val fallbacks : t -> int
(** Degraded decisions recorded on this instance. *)

val decisions : t -> int
(** [admits + rejects]. *)

val blocking_probability : t -> float
(** [rejects / decisions]; 0 when no decisions were made. *)

val latency_histogram : t -> Stats.Histogram.t
(** Decision latency in microseconds: 100 equal bins over [0, 500).
    Decisions slower than 500 us are {e not dropped} — they are
    tallied in the histogram's overflow bin ({!latency_overflow},
    included in {!Stats.Histogram.total}); anything below 0 would land
    in the underflow bin.  The registry histogram
    [cac.engine.decision_latency_us] uses the identical bin layout, so
    the merged export buckets agree with this view. *)

val latency_overflow : t -> int
(** Decisions that took 500 us or longer (the overflow bin). *)

val latency_samples : t -> float array
(** All recorded decision latencies, microseconds, in arrival order. *)

val latency_mean_us : t -> float
(** Mean decision latency in microseconds; 0 when empty. *)

val latency_ci_us : t -> Stats.Ci.interval option
(** 95% Student-t interval on the mean latency (needs >= 2 samples). *)

val print : ?sink:Obs.Sink.t -> ?label:string -> t -> unit
(** Human-readable summary, routed through the given sink (default:
    the process {!Obs.Sink.human_sink}, so [--quiet] silences it). *)
