(** Operational counters and latency accounting for the CAC engine.

    Tracks admits, rejects and releases, the derived blocking
    probability, and the wall-clock latency of every decision — both
    as a {!Stats.Histogram.t} (fixed microsecond bins) and as raw
    samples for mean / confidence-interval summaries via
    {!Stats.Ci}. *)

type t

val create : unit -> t

val record_admit : t -> latency:float -> unit
(** [latency] in seconds, as measured around the decision. *)

val record_reject : t -> latency:float -> unit
val record_release : t -> unit

val admits : t -> int
val rejects : t -> int
val releases : t -> int

val decisions : t -> int
(** [admits + rejects]. *)

val blocking_probability : t -> float
(** [rejects / decisions]; 0 when no decisions were made. *)

val latency_histogram : t -> Stats.Histogram.t
(** Decision latency in microseconds, 0–500 us in 100 bins (slower
    decisions land in the overflow bin). *)

val latency_samples : t -> float array
(** All recorded decision latencies, microseconds, in arrival order. *)

val latency_mean_us : t -> float
(** Mean decision latency in microseconds; 0 when empty. *)

val latency_ci_us : t -> Stats.Ci.interval option
(** 95% Student-t interval on the mean latency (needs >= 2 samples). *)

val print : ?label:string -> t -> unit
(** Human-readable summary on stdout. *)
