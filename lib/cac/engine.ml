type key =
  | Bop of { cls : string; b : float; c : float; n : int }
  | Eff_bw of { cls : string; total_buffer : float; target_clr : float; n : int }

(* Per-link registry instruments, bound when the link is added. *)
type link_telemetry = {
  t_admits : Obs.Registry.Counter.t;
  t_rejects : Obs.Registry.Counter.t;
  t_releases : Obs.Registry.Counter.t;
  t_connections : Obs.Registry.Gauge.t;
}

type t = {
  links : (string, Link.t) Hashtbl.t;
  link_telemetry : (string, link_telemetry) Hashtbl.t;
  conns : (int, Link.t * Source_class.t) Hashtbl.t;
  cache : (key, float) Decision_cache.t;
  metrics : Metrics.t;
  clock : unit -> float;
  mutable next_conn : int;
}

type reject_reason = Unstable | Clr_exceeded
type decision = Admitted of int | Rejected of reject_reason

type verdict = {
  admissible : bool;
  reason : reject_reason option;
  log10_bop : float option;
  required_bw : float option;
}

let create ?(cache_capacity = 4096) ?(clock = Obs.Clock.wall) () =
  {
    links = Hashtbl.create 8;
    link_telemetry = Hashtbl.create 8;
    conns = Hashtbl.create 256;
    cache = Decision_cache.create ~capacity:cache_capacity;
    metrics = Metrics.create ();
    clock;
    next_conn = 0;
  }

let add_link t ~id ~capacity ~buffer ~target_clr =
  if Hashtbl.mem t.links id then
    invalid_arg (Printf.sprintf "Engine.add_link: duplicate link id %S" id);
  let link = Link.create ~id ~capacity ~buffer ~target_clr in
  Hashtbl.replace t.links id link;
  let labels = Obs.Labels.make [ ("link", id) ] in
  Hashtbl.replace t.link_telemetry id
    {
      t_admits = Obs.Registry.Counter.v ~labels "cac.engine.link.admits";
      t_rejects = Obs.Registry.Counter.v ~labels "cac.engine.link.rejects";
      t_releases = Obs.Registry.Counter.v ~labels "cac.engine.link.releases";
      t_connections = Obs.Registry.Gauge.v ~labels "cac.engine.link.connections";
    };
  link

let add_link_msec t ~id ~capacity ~buffer_msec ~target_clr =
  let buffer =
    Queueing.Units.buffer_cells_of_msec ~msec:buffer_msec
      ~service_cells_per_frame:capacity ~ts:Traffic.Models.ts
  in
  add_link t ~id ~capacity ~buffer ~target_clr

let link t id =
  match Hashtbl.find_opt t.links id with
  | Some l -> l
  | None -> invalid_arg (Printf.sprintf "Engine: unknown link %S" id)

let links t =
  Hashtbl.fold (fun _ l acc -> l :: acc) t.links []
  |> List.sort (fun a b -> String.compare (Link.id a) (Link.id b))

let link_telemetry t id = Hashtbl.find_opt t.link_telemetry id

let remove_link t id =
  let _ = link t id in
  Hashtbl.remove t.links id;
  Hashtbl.remove t.link_telemetry id;
  let stale =
    Hashtbl.fold
      (fun conn (l, _) acc -> if Link.id l = id then conn :: acc else acc)
      t.conns []
  in
  List.iter (Hashtbl.remove t.conns) stale

(* {2 Decision primitives, memoised} *)

let cached_log10_bop t (cls : Source_class.t) ~b ~c ~n =
  Decision_cache.find_or_add t.cache
    (Bop { cls = cls.Source_class.name; b; c; n })
    ~compute:(fun () ->
      (Core.Bahadur_rao.evaluate cls.Source_class.vg
         ~mu:(Source_class.mean cls) ~c ~b ~n)
        .Core.Bahadur_rao.log10_bop)

let cached_eff_bw t (cls : Source_class.t) ~total_buffer ~target_clr ~n =
  Decision_cache.find_or_add t.cache
    (Eff_bw { cls = cls.Source_class.name; total_buffer; target_clr; n })
    ~compute:(fun () ->
      Core.Admission.effective_bandwidth_per_source cls.Source_class.vg
        ~mu:(Source_class.mean cls) ~n ~total_buffer ~target_clr)

(* The candidate mix: the link's counts with one more [cls]. *)
let candidate_counts link ~cls =
  let bumped = ref false in
  let counts =
    List.map
      (fun (c, n) ->
        if c.Source_class.name = cls.Source_class.name then begin
          bumped := true;
          (c, n + 1)
        end
        else (c, n))
      (Link.counts link)
  in
  if !bumped then counts else (cls, 1) :: counts

let evaluate t ~link:link_id ~cls =
  let link = link t link_id in
  let counts = candidate_counts link ~cls in
  let mean_load =
    List.fold_left
      (fun acc (c, n) -> acc +. (float_of_int n *. Source_class.mean c))
      0.0 counts
  in
  let capacity = Link.capacity link in
  if mean_load >= capacity then
    {
      admissible = false;
      reason = Some Unstable;
      log10_bop = None;
      required_bw = None;
    }
  else begin
    match counts with
    | [ (only, n) ] ->
        let nf = float_of_int n in
        let bop =
          cached_log10_bop t only ~b:(Link.buffer link /. nf)
            ~c:(capacity /. nf) ~n
        in
        let ok = bop <= log10 (Link.target_clr link) in
        {
          admissible = ok;
          reason = (if ok then None else Some Clr_exceeded);
          log10_bop = Some bop;
          required_bw = None;
        }
    | mix ->
        let required =
          List.fold_left
            (fun acc (c, n) ->
              acc
              +. float_of_int n
                 *. cached_eff_bw t c ~total_buffer:(Link.buffer link)
                      ~target_clr:(Link.target_clr link) ~n)
            0.0 mix
        in
        let ok = required <= capacity in
        {
          admissible = ok;
          reason = (if ok then None else Some Clr_exceeded);
          log10_bop = None;
          required_bw = Some required;
        }
  end

let would_admit t ~link ~cls = (evaluate t ~link ~cls).admissible

let admit t ~link:link_id ~cls =
  let started = t.clock () in
  let verdict = evaluate t ~link:link_id ~cls in
  let tel = link_telemetry t link_id in
  if verdict.admissible then begin
    let l = link t link_id in
    Link.add l ~cls;
    let conn = t.next_conn in
    t.next_conn <- conn + 1;
    Hashtbl.replace t.conns conn (l, cls);
    Metrics.record_admit t.metrics ~latency:(t.clock () -. started);
    (match tel with
    | Some tel ->
        Obs.Registry.Counter.incr tel.t_admits;
        Obs.Registry.Gauge.add tel.t_connections 1.0
    | None -> ());
    Admitted conn
  end
  else begin
    Metrics.record_reject t.metrics ~latency:(t.clock () -. started);
    (match tel with
    | Some tel -> Obs.Registry.Counter.incr tel.t_rejects
    | None -> ());
    Rejected (Option.value verdict.reason ~default:Clr_exceeded)
  end

let release t ~conn =
  match Hashtbl.find_opt t.conns conn with
  | None -> invalid_arg (Printf.sprintf "Engine.release: unknown connection %d" conn)
  | Some (l, cls) ->
      Hashtbl.remove t.conns conn;
      Link.remove l ~cls;
      Metrics.record_release t.metrics;
      (match link_telemetry t (Link.id l) with
      | Some tel ->
          Obs.Registry.Counter.incr tel.t_releases;
          Obs.Registry.Gauge.add tel.t_connections (-1.0)
      | None -> ())

let connection t conn = Hashtbl.find_opt t.conns conn
let active_connections t = Hashtbl.length t.conns

let fill t ~link ~cls =
  let rec go admitted =
    match admit t ~link ~cls with
    | Admitted _ -> go (admitted + 1)
    | Rejected _ -> admitted
  in
  go 0

let metrics t = t.metrics
let cache_stats t = Decision_cache.stats t.cache
