module Guard = Resilience.Guard

type key =
  | Bop of { cls : string; b : float; c : float; n : int }
  | Eff_bw of { cls : string; total_buffer : float; target_clr : float; n : int }

(* Per-link registry instruments, bound when the link is added. *)
type link_telemetry = {
  t_admits : Obs.Registry.Counter.t;
  t_rejects : Obs.Registry.Counter.t;
  t_releases : Obs.Registry.Counter.t;
  t_connections : Obs.Registry.Gauge.t;
}

(* Every state mutation, as a value: what the durability journal
   records and what replay re-applies.  Class and link are referenced
   by name — the stable identifiers — so a journal survives process
   restarts. *)
type op =
  | Op_add_link of {
      id : string;
      capacity : float;
      buffer : float;
      target_clr : float;
    }
  | Op_remove_link of string
  | Op_admit of { conn : int; link : string; cls : string }
  | Op_release of int

type t = {
  links : (string, Link.t) Hashtbl.t;
  link_telemetry : (string, link_telemetry) Hashtbl.t;
  conns : (int, Link.t * Source_class.t) Hashtbl.t;
  cache : (key, float) Decision_cache.t;
  metrics : Metrics.t;
  clock : unit -> float;
  (* One circuit breaker per (link, class) pair, created on first
     kernel failure path use; see [breaker]. *)
  breakers : (string, Guard.Breaker.t) Hashtbl.t;
  max_retries : int;
  breaker_threshold : int;
  breaker_cooldown : int;
  breaker_cooldown_s : float option;
      (* Some s: wall-clock breaker mode for long-running servers *)
  mutable next_conn : int;
  (* The durability hook: called with each completed mutation, inside
     whatever critical section the caller runs the engine under.  Must
     not raise and must not block (Persist.Store pushes to an
     in-memory ring; a flusher domain does the I/O). *)
  mutable journal : (op -> unit) option;
}

type reject_reason = Unstable | Clr_exceeded

type decision = Admitted of int | Rejected of reject_reason

type verdict = {
  admissible : bool;
  reason : reject_reason option;
  log10_bop : float option;
  required_bw : float option;
  degraded : bool;
}

let create ?(cache_capacity = 4096) ?(clock = Obs.Clock.wall) ?(max_retries = 1)
    ?(breaker_threshold = 5) ?(breaker_cooldown = 32) ?breaker_cooldown_s () =
  if max_retries < 0 then invalid_arg "Engine.create: max_retries < 0";
  if breaker_threshold < 1 then invalid_arg "Engine.create: breaker_threshold < 1";
  if breaker_cooldown < 0 then invalid_arg "Engine.create: breaker_cooldown < 0";
  (match breaker_cooldown_s with
  | Some s when not (Float.is_finite s && s >= 0.0) ->
      invalid_arg "Engine.create: breaker_cooldown_s must be finite and >= 0"
  | _ -> ());
  {
    links = Hashtbl.create 8;
    link_telemetry = Hashtbl.create 8;
    conns = Hashtbl.create 256;
    cache = Decision_cache.create ~capacity:cache_capacity;
    metrics = Metrics.create ();
    clock;
    breakers = Hashtbl.create 16;
    max_retries;
    breaker_threshold;
    breaker_cooldown;
    breaker_cooldown_s;
    next_conn = 0;
    journal = None;
  }

let set_journal t hook = t.journal <- hook
let journaled t = Option.is_some t.journal
let emit t op = match t.journal with None -> () | Some hook -> hook op

let add_link t ~id ~capacity ~buffer ~target_clr =
  if Hashtbl.mem t.links id then
    invalid_arg (Printf.sprintf "Engine.add_link: duplicate link id %S" id);
  let link = Link.create ~id ~capacity ~buffer ~target_clr in
  Hashtbl.replace t.links id link;
  let labels = Obs.Labels.make [ ("link", id) ] in
  Hashtbl.replace t.link_telemetry id
    {
      t_admits = Obs.Registry.Counter.v ~labels "cac.engine.link.admits";
      t_rejects = Obs.Registry.Counter.v ~labels "cac.engine.link.rejects";
      t_releases = Obs.Registry.Counter.v ~labels "cac.engine.link.releases";
      t_connections = Obs.Registry.Gauge.v ~labels "cac.engine.link.connections";
    };
  emit t (Op_add_link { id; capacity; buffer; target_clr });
  link

let add_link_msec t ~id ~capacity ~buffer_msec ~target_clr =
  let buffer =
    Queueing.Units.buffer_cells_of_msec ~msec:buffer_msec
      ~service_cells_per_frame:capacity ~ts:Traffic.Models.ts
  in
  add_link t ~id ~capacity ~buffer ~target_clr

let link t id =
  match Hashtbl.find_opt t.links id with
  | Some l -> l
  | None -> invalid_arg (Printf.sprintf "Engine: unknown link %S" id)

let links t =
  Hashtbl.fold (fun _ l acc -> l :: acc) t.links []
  |> List.sort (fun a b -> String.compare (Link.id a) (Link.id b))

let link_telemetry t id = Hashtbl.find_opt t.link_telemetry id

let remove_link t id =
  let _ = link t id in
  let stale =
    Hashtbl.fold
      (fun conn (l, _) acc -> if Link.id l = id then conn :: acc else acc)
      t.conns []
  in
  (* Stale connections are torn down, not leaked: each counts as a
     release in the engine metrics and the link's registry series, so
     active-connection accounting stays exact across link removal. *)
  List.iter
    (fun conn ->
      Hashtbl.remove t.conns conn;
      Metrics.record_release t.metrics)
    stale;
  (match Hashtbl.find_opt t.link_telemetry id with
  | Some tel ->
      if stale <> [] then
        Obs.Registry.Counter.incr ~by:(List.length stale) tel.t_releases;
      Obs.Registry.Gauge.set tel.t_connections 0.0
  | None -> ());
  Hashtbl.remove t.links id;
  Hashtbl.remove t.link_telemetry id;
  let prefix = id ^ "/" in
  let dead =
    Hashtbl.fold
      (fun key _ acc ->
        if String.starts_with ~prefix key then key :: acc else acc)
      t.breakers []
  in
  List.iter (Hashtbl.remove t.breakers) dead;
  emit t (Op_remove_link id)

(* {2 Decision primitives, memoised} *)

(* The finiteness check lives {e inside} the compute closure: a kernel
   returning NaN/inf raises before [find_or_add] can insert the entry,
   so numeric corruption can never poison the cache — a retry
   recomputes instead of replaying the bad value. *)
let cached_log10_bop t (cls : Source_class.t) ~b ~c ~n =
  Decision_cache.find_or_add t.cache
    (Bop { cls = cls.Source_class.name; b; c; n })
    ~compute:(fun () ->
      Resilience.Guard.finite ~label:"cac.engine.log10_bop"
        (Core.Bahadur_rao.evaluate cls.Source_class.vg
           ~mu:(Source_class.mean cls) ~c ~b ~n)
          .Core.Bahadur_rao.log10_bop)

let cached_eff_bw t (cls : Source_class.t) ~total_buffer ~target_clr ~n =
  Decision_cache.find_or_add t.cache
    (Eff_bw { cls = cls.Source_class.name; total_buffer; target_clr; n })
    ~compute:(fun () ->
      Resilience.Guard.finite ~label:"cac.engine.eff_bw"
        (Core.Admission.effective_bandwidth_per_source cls.Source_class.vg
           ~mu:(Source_class.mean cls) ~n ~total_buffer ~target_clr))

(* {2 Containment}

   Every kernel evaluation runs behind the (link, class) circuit
   breaker, with bounded retry inside it and a finiteness check on the
   result: a kernel that raises, stalls out its retries, or returns
   NaN/inf registers as a breaker failure, and the decision falls back
   to peak-rate allocation — fail-closed, never fail-open. *)

let breaker t ~link_id ~(cls : Source_class.t) =
  let key = link_id ^ "/" ^ cls.Source_class.name in
  match Hashtbl.find_opt t.breakers key with
  | Some b -> b
  | None ->
      let b =
        Guard.Breaker.create ~threshold:t.breaker_threshold
          ~cooldown:t.breaker_cooldown ?cooldown_s:t.breaker_cooldown_s
          ~label:key ()
      in
      Hashtbl.replace t.breakers key b;
      b

let breaker_state t ~link:link_id ~cls =
  Option.map Guard.Breaker.state
    (Hashtbl.find_opt t.breakers (link_id ^ "/" ^ cls.Source_class.name))

let kernel_value t ~link_id ~cls f =
  Guard.Breaker.call (breaker t ~link_id ~cls) (fun () ->
      Guard.retry ~max_retries:t.max_retries ~label:"cac.engine.kernel"
        (fun () -> Guard.finite ~label:"cac.engine.kernel" (f ())))

(* The fail-closed fallback: price every connection of the candidate
   mix at its class's peak-rate proxy.  Deliberately independent of
   the variance-growth tables and iterative numerics — the degraded
   test must keep working when exactly those are broken. *)
let peak_required counts =
  List.fold_left
    (fun acc (c, n) -> acc +. (float_of_int n *. Source_class.peak c))
    0.0 counts

let degraded_verdict link counts =
  Guard.record_fallback ();
  let required = peak_required counts in
  (* [required] is finite by construction (class means/variances are
     validated at model build time); the comparison direction still
     rejects if it were not. *)
  let ok = required <= Link.capacity link in
  {
    admissible = ok;
    reason = (if ok then None else Some Clr_exceeded);
    log10_bop = None;
    required_bw = Some required;
    degraded = true;
  }

(* The candidate mix: the link's counts with one more [cls]. *)
let candidate_counts link ~cls =
  let bumped = ref false in
  let counts =
    List.map
      (fun (c, n) ->
        if c.Source_class.name = cls.Source_class.name then begin
          bumped := true;
          (c, n + 1)
        end
        else (c, n))
      (Link.counts link)
  in
  if !bumped then counts else (cls, 1) :: counts

let evaluate t ~link:link_id ~cls =
  let link = link t link_id in
  let counts = candidate_counts link ~cls in
  let mean_load =
    List.fold_left
      (fun acc (c, n) -> acc +. (float_of_int n *. Source_class.mean c))
      0.0 counts
  in
  let capacity = Link.capacity link in
  if mean_load >= capacity then
    {
      admissible = false;
      reason = Some Unstable;
      log10_bop = None;
      required_bw = None;
      degraded = false;
    }
  else begin
    match counts with
    | [ (only, n) ] -> (
        let nf = float_of_int n in
        match
          kernel_value t ~link_id ~cls:only (fun () ->
              cached_log10_bop t only ~b:(Link.buffer link /. nf)
                ~c:(capacity /. nf) ~n)
        with
        | Ok bop ->
            let ok = bop <= log10 (Link.target_clr link) in
            {
              admissible = ok;
              reason = (if ok then None else Some Clr_exceeded);
              log10_bop = Some bop;
              required_bw = None;
              degraded = false;
            }
        | Error _ -> degraded_verdict link counts)
    | mix -> (
        let rec total acc = function
          | [] -> Some acc
          | (c, n) :: rest -> (
              match
                kernel_value t ~link_id ~cls:c (fun () ->
                    cached_eff_bw t c ~total_buffer:(Link.buffer link)
                      ~target_clr:(Link.target_clr link) ~n)
              with
              | Ok eb -> total (acc +. (float_of_int n *. eb)) rest
              | Error _ -> None)
        in
        match total 0.0 mix with
        | Some required ->
            let ok = required <= capacity in
            {
              admissible = ok;
              reason = (if ok then None else Some Clr_exceeded);
              log10_bop = None;
              required_bw = Some required;
              degraded = false;
            }
        (* Any class's kernel failing degrades the whole decision:
           pricing part of a mix optimistically would fail open. *)
        | None -> degraded_verdict link counts)
  end

let would_admit t ~link ~cls = (evaluate t ~link ~cls).admissible

let admit t ~link:link_id ~cls =
  let started = t.clock () in
  let verdict = evaluate t ~link:link_id ~cls in
  let tel = link_telemetry t link_id in
  if verdict.degraded then Metrics.record_fallback t.metrics;
  if verdict.admissible then begin
    let l = link t link_id in
    (* Mutations are ordered so any late exception unwinds cleanly:
       the connection table entry goes in last, and a failure after
       [Link.add] rolls the link state back before re-raising — no
       half-admitted connection can survive. *)
    Link.add l ~cls;
    match
      let conn = t.next_conn in
      t.next_conn <- conn + 1;
      Hashtbl.replace t.conns conn (l, cls);
      conn
    with
    | conn ->
        Metrics.record_admit t.metrics ~latency:(t.clock () -. started);
        (match tel with
        | Some tel ->
            Obs.Registry.Counter.incr tel.t_admits;
            Obs.Registry.Gauge.add tel.t_connections 1.0
        | None -> ());
        emit t
          (Op_admit { conn; link = link_id; cls = cls.Source_class.name });
        Admitted conn
    | exception exn ->
        Link.remove l ~cls;
        raise exn
  end
  else begin
    Metrics.record_reject t.metrics ~latency:(t.clock () -. started);
    (match tel with
    | Some tel -> Obs.Registry.Counter.incr tel.t_rejects
    | None -> ());
    Rejected (Option.value verdict.reason ~default:Clr_exceeded)
  end

let release t ~conn =
  match Hashtbl.find_opt t.conns conn with
  | None -> invalid_arg (Printf.sprintf "Engine.release: unknown connection %d" conn)
  | Some (l, cls) ->
      Hashtbl.remove t.conns conn;
      Link.remove l ~cls;
      Metrics.record_release t.metrics;
      (match link_telemetry t (Link.id l) with
      | Some tel ->
          Obs.Registry.Counter.incr tel.t_releases;
          Obs.Registry.Gauge.add tel.t_connections (-1.0)
      | None -> ());
      emit t (Op_release conn)

let connection t conn = Hashtbl.find_opt t.conns conn
let active_connections t = Hashtbl.length t.conns

let fill t ~link ~cls =
  let rec go admitted =
    match admit t ~link ~cls with
    | Admitted _ -> go (admitted + 1)
    | Rejected _ -> admitted
  in
  go 0

let metrics t = t.metrics
let cache_stats t = Decision_cache.stats t.cache

(* {2 Replay and state transfer}

   [apply] re-executes a journaled mutation without re-deciding it: no
   admission test, no admit/reject counters, no decision latency — a
   recovered engine must not double-count traffic it admitted in a
   previous life.  Only the live-connection gauge moves, since it
   describes current state rather than history. *)

let apply t op =
  if journaled t then
    invalid_arg "Engine.apply: journal hook armed (replay needs a cold engine)";
  match op with
  | Op_add_link { id; capacity; buffer; target_clr } ->
      ignore (add_link t ~id ~capacity ~buffer ~target_clr)
  | Op_remove_link id -> remove_link t id
  | Op_admit { conn; link = link_id; cls } ->
      if Hashtbl.mem t.conns conn then
        invalid_arg
          (Printf.sprintf "Engine.apply: duplicate connection %d" conn);
      let l = link t link_id in
      let c = Source_class.of_name_exn cls in
      Link.add l ~cls:c;
      Hashtbl.replace t.conns conn (l, c);
      if conn >= t.next_conn then t.next_conn <- conn + 1;
      (match link_telemetry t link_id with
      | Some tel -> Obs.Registry.Gauge.add tel.t_connections 1.0
      | None -> ())
  | Op_release conn -> (
      match Hashtbl.find_opt t.conns conn with
      | None ->
          invalid_arg
            (Printf.sprintf "Engine.apply: unknown connection %d" conn)
      | Some (l, c) ->
          Hashtbl.remove t.conns conn;
          Link.remove l ~cls:c;
          (match link_telemetry t (Link.id l) with
          | Some tel -> Obs.Registry.Gauge.add tel.t_connections (-1.0)
          | None -> ()))

type link_state = {
  l_id : string;
  l_capacity : float;
  l_buffer : float;
  l_target_clr : float;
}

type conn_state = { c_conn : int; c_link : string; c_class : string }
type breaker_snapshot = { b_link : string; b_class : string; b_state : string }

type state = {
  s_links : link_state list;
  s_conns : conn_state list;
  s_breakers : breaker_snapshot list;
  s_next_conn : int;
}

(* Deterministic ordering everywhere: [export] must encode
   byte-identically for equal engine states, whatever insertion order
   the hash tables saw. *)
let export t =
  let s_links =
    links t
    |> List.map (fun l ->
           {
             l_id = Link.id l;
             l_capacity = Link.capacity l;
             l_buffer = Link.buffer l;
             l_target_clr = Link.target_clr l;
           })
  in
  let s_conns =
    Hashtbl.fold
      (fun conn (l, cls) acc ->
        { c_conn = conn; c_link = Link.id l; c_class = cls.Source_class.name }
        :: acc)
      t.conns []
    |> List.sort (fun a b -> Int.compare a.c_conn b.c_conn)
  in
  let s_breakers =
    Hashtbl.fold
      (fun key b acc ->
        (* Keys are [link_id ^ "/" ^ class_name]; class names never
           contain '/', so split at the last one. *)
        match String.rindex_opt key '/' with
        | None -> acc
        | Some i ->
            {
              b_link = String.sub key 0 i;
              b_class = String.sub key (i + 1) (String.length key - i - 1);
              b_state = Guard.Breaker.state_name (Guard.Breaker.state b);
            }
            :: acc)
      t.breakers []
    |> List.sort (fun a b ->
           match String.compare a.b_link b.b_link with
           | 0 -> String.compare a.b_class b.b_class
           | c -> c)
  in
  { s_links; s_conns; s_breakers; s_next_conn = t.next_conn }

let restore t st =
  if journaled t then
    invalid_arg "Engine.restore: journal hook armed (restore needs a cold engine)";
  if Hashtbl.length t.links > 0 || Hashtbl.length t.conns > 0 then
    invalid_arg "Engine.restore: engine not empty";
  List.iter
    (fun ls ->
      ignore
        (add_link t ~id:ls.l_id ~capacity:ls.l_capacity ~buffer:ls.l_buffer
           ~target_clr:ls.l_target_clr))
    st.s_links;
  List.iter
    (fun cs ->
      apply t (Op_admit { conn = cs.c_conn; link = cs.c_link; cls = cs.c_class }))
    st.s_conns;
  List.iter
    (fun bs ->
      match
        (Guard.Breaker.state_of_name bs.b_state, Source_class.of_name bs.b_class)
      with
      | Some s, Some cls when Hashtbl.mem t.links bs.b_link ->
          Guard.Breaker.force (breaker t ~link_id:bs.b_link ~cls) s
      | _ -> ())
    st.s_breakers;
  if st.s_next_conn > t.next_conn then t.next_conn <- st.s_next_conn
