type t = {
  id : string;
  capacity : float;
  buffer : float;
  target_clr : float;
  by_class : (string, Source_class.t * int) Hashtbl.t;
  mutable total : int;
}

let create ~id ~capacity ~buffer ~target_clr =
  if not (capacity > 0.0) then invalid_arg "Link.create: capacity <= 0";
  if not (buffer >= 0.0) then invalid_arg "Link.create: negative buffer";
  if not (target_clr > 0.0 && target_clr < 1.0) then
    invalid_arg "Link.create: target_clr outside (0, 1)";
  { id; capacity; buffer; target_clr; by_class = Hashtbl.create 8; total = 0 }

let id t = t.id
let capacity t = t.capacity
let buffer t = t.buffer
let target_clr t = t.target_clr

let count t ~cls =
  match Hashtbl.find_opt t.by_class cls.Source_class.name with
  | Some (_, n) -> n
  | None -> 0

let counts t =
  Hashtbl.fold (fun _ (cls, n) acc -> (cls, n) :: acc) t.by_class []
  |> List.sort (fun (a, _) (b, _) ->
         String.compare a.Source_class.name b.Source_class.name)

let connections t = t.total

let mean_load t =
  Hashtbl.fold
    (fun _ (cls, n) acc -> acc +. (float_of_int n *. Source_class.mean cls))
    t.by_class 0.0

let utilization t = mean_load t /. t.capacity

let buffer_msec t =
  Queueing.Units.buffer_msec_of_cells ~cells:t.buffer
    ~service_cells_per_frame:t.capacity ~ts:Traffic.Models.ts

let add t ~cls =
  let n = count t ~cls in
  Hashtbl.replace t.by_class cls.Source_class.name (cls, n + 1);
  t.total <- t.total + 1

let remove t ~cls =
  match Hashtbl.find_opt t.by_class cls.Source_class.name with
  | None | Some (_, 0) ->
      invalid_arg
        (Printf.sprintf "Link.remove: no %s connection admitted on %s"
           cls.Source_class.name t.id)
  | Some (_, 1) ->
      Hashtbl.remove t.by_class cls.Source_class.name;
      t.total <- t.total - 1
  | Some (c, n) ->
      Hashtbl.replace t.by_class cls.Source_class.name (c, n - 1);
      t.total <- t.total - 1
