(* Engine metrics are recorded twice on purpose: every event feeds the
   process-wide Obs registry (the export source of truth, summed over
   all engines), while the instance keeps just enough state — counts
   and raw latency samples — for per-run summaries and confidence
   intervals that a merged registry cannot provide. *)

let latency_lo_us = 0.0
let latency_hi_us = 500.0
let latency_bins = 100

let () =
  Obs.Registry.declare_counter "cac.engine.admits";
  Obs.Registry.declare_counter "cac.engine.rejects";
  Obs.Registry.declare_counter "cac.engine.releases";
  Obs.Registry.declare_histogram ~lo:latency_lo_us ~hi:latency_hi_us
    ~bins:latency_bins "cac.engine.decision_latency_us"

type t = {
  mutable admits : int;
  mutable rejects : int;
  mutable releases : int;
  mutable fallbacks : int;  (* degraded (peak-rate) decisions *)
  histogram : Stats.Histogram.t;  (* microseconds *)
  mutable samples : float array;  (* microseconds *)
  mutable n_samples : int;
  (* registry handles (each domain resolves its own shard cell) *)
  c_admits : Obs.Registry.Counter.t;
  c_rejects : Obs.Registry.Counter.t;
  c_releases : Obs.Registry.Counter.t;
  h_latency : Obs.Registry.Histogram.t;
}

let create () =
  let histogram =
    Stats.Histogram.create ~lo:latency_lo_us ~hi:latency_hi_us ~bins:latency_bins
  in
  (* The registry histogram shares the instance histogram's shape, so
     merged exports and instance views bucket identically. *)
  assert (
    Float.equal (Stats.Histogram.lo histogram) latency_lo_us
    && Float.equal (Stats.Histogram.hi histogram) latency_hi_us
    && Stats.Histogram.bins histogram = latency_bins);
  {
    admits = 0;
    rejects = 0;
    releases = 0;
    fallbacks = 0;
    histogram;
    samples = Array.make 1024 0.0;
    n_samples = 0;
    c_admits = Obs.Registry.Counter.v "cac.engine.admits";
    c_rejects = Obs.Registry.Counter.v "cac.engine.rejects";
    c_releases = Obs.Registry.Counter.v "cac.engine.releases";
    h_latency =
      Obs.Registry.Histogram.v ~lo:latency_lo_us ~hi:latency_hi_us
        ~bins:latency_bins "cac.engine.decision_latency_us";
  }

let record_latency t latency =
  let us = latency *. 1e6 in
  (* Decisions slower than [latency_hi_us] land in the overflow bin of
     both histograms — they are counted, never dropped. *)
  Stats.Histogram.add t.histogram us;
  Obs.Registry.Histogram.observe t.h_latency us;
  if t.n_samples = Array.length t.samples then begin
    let grown = Array.make (2 * t.n_samples) 0.0 in
    Array.blit t.samples 0 grown 0 t.n_samples;
    t.samples <- grown
  end;
  t.samples.(t.n_samples) <- us;
  t.n_samples <- t.n_samples + 1

let record_admit t ~latency =
  t.admits <- t.admits + 1;
  Obs.Registry.Counter.incr t.c_admits;
  record_latency t latency

let record_reject t ~latency =
  t.rejects <- t.rejects + 1;
  Obs.Registry.Counter.incr t.c_rejects;
  record_latency t latency

let record_release t =
  t.releases <- t.releases + 1;
  Obs.Registry.Counter.incr t.c_releases

(* The registry-side tick ([cac.guard.fallbacks]) is recorded by
   Resilience.Guard at the decision site; this keeps only the
   per-instance view. *)
let record_fallback t = t.fallbacks <- t.fallbacks + 1

let admits t = t.admits
let rejects t = t.rejects
let releases t = t.releases
let fallbacks t = t.fallbacks
let decisions t = t.admits + t.rejects

let blocking_probability t =
  let d = decisions t in
  if d = 0 then 0.0 else float_of_int t.rejects /. float_of_int d

let latency_histogram t = t.histogram
let latency_overflow t = Stats.Histogram.overflow t.histogram
let latency_samples t = Array.sub t.samples 0 t.n_samples

let latency_mean_us t =
  if t.n_samples = 0 then 0.0
  else Numerics.Float_array.mean (latency_samples t)

let latency_ci_us t =
  if t.n_samples < 2 then None
  else Some (Stats.Ci.mean_ci (latency_samples t))

let print ?sink ?(label = "cac") t =
  let sink = match sink with Some s -> s | None -> Obs.Sink.human_sink () in
  Obs.Sink.messagef sink "%s: %d admits, %d rejects, %d releases (blocking %.4f)"
    label t.admits t.rejects t.releases (blocking_probability t);
  if t.fallbacks > 0 then
    Obs.Sink.messagef sink
      "%s: %d degraded decisions (peak-rate fallback, fail-closed)" label
      t.fallbacks;
  if t.n_samples > 0 then begin
    match latency_ci_us t with
    | Some ci ->
        Obs.Sink.messagef sink
          "%s: decision latency %.2f us (95%% CI +/- %.2f, n = %d)" label
          ci.Stats.Ci.point ci.Stats.Ci.half_width t.n_samples
    | None ->
        Obs.Sink.messagef sink "%s: decision latency %.2f us (n = %d)" label
          (latency_mean_us t) t.n_samples
  end
