type t = {
  mutable admits : int;
  mutable rejects : int;
  mutable releases : int;
  histogram : Stats.Histogram.t;  (* microseconds *)
  mutable samples : float array;  (* microseconds *)
  mutable n_samples : int;
}

let create () =
  {
    admits = 0;
    rejects = 0;
    releases = 0;
    histogram = Stats.Histogram.create ~lo:0.0 ~hi:500.0 ~bins:100;
    samples = Array.make 1024 0.0;
    n_samples = 0;
  }

let record_latency t latency =
  let us = latency *. 1e6 in
  Stats.Histogram.add t.histogram us;
  if t.n_samples = Array.length t.samples then begin
    let grown = Array.make (2 * t.n_samples) 0.0 in
    Array.blit t.samples 0 grown 0 t.n_samples;
    t.samples <- grown
  end;
  t.samples.(t.n_samples) <- us;
  t.n_samples <- t.n_samples + 1

let record_admit t ~latency =
  t.admits <- t.admits + 1;
  record_latency t latency

let record_reject t ~latency =
  t.rejects <- t.rejects + 1;
  record_latency t latency

let record_release t = t.releases <- t.releases + 1
let admits t = t.admits
let rejects t = t.rejects
let releases t = t.releases
let decisions t = t.admits + t.rejects

let blocking_probability t =
  let d = decisions t in
  if d = 0 then 0.0 else float_of_int t.rejects /. float_of_int d

let latency_histogram t = t.histogram
let latency_samples t = Array.sub t.samples 0 t.n_samples

let latency_mean_us t =
  if t.n_samples = 0 then 0.0
  else Numerics.Float_array.mean (latency_samples t)

let latency_ci_us t =
  if t.n_samples < 2 then None
  else Some (Stats.Ci.mean_ci (latency_samples t))

let print ?(label = "cac") t =
  Printf.printf "%s: %d admits, %d rejects, %d releases (blocking %.4f)\n"
    label t.admits t.rejects t.releases (blocking_probability t);
  if t.n_samples > 0 then begin
    match latency_ci_us t with
    | Some ci ->
        Printf.printf "%s: decision latency %.2f us (95%% CI +/- %.2f, n = %d)\n"
          label ci.Stats.Ci.point ci.Stats.Ci.half_width t.n_samples
    | None ->
        Printf.printf "%s: decision latency %.2f us (n = %d)\n" label
          (latency_mean_us t) t.n_samples
  end
