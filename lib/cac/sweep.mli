(** Domain-parallel capacity-planning sweeps.

    A sweep evaluates a grid of admission scenarios — (source class,
    buffer, CLR target) on a fixed link — and reports, per cell, the
    admissible-region boundary found by filling a fresh engine to its
    first rejection, plus a replayed stochastic workload's blocking
    probability and cache hit rate.

    Scenarios are deterministic functions of their parameters and seed,
    so a parallel run over OCaml 5 domains returns bit-identical rows
    to a sequential one.  Each scenario builds its own engine and
    {!Source_class.fresh} instance: variance-growth tables and decision
    caches mutate on use and must never be shared across domains.

    Sweeps are crash-proof: each task runs under a catch-and-retry
    wrapper (and re-arms the {!Resilience.Fault} stream from its
    scenario seed, so injected faults are deterministic whatever
    domain claims the task).  A task that still fails after its
    retries becomes a {!Failed} outcome carrying the error — one bad
    scenario can no longer take down the whole run, and worker domains
    never die on a task exception. *)

type scenario = {
  class_name : string;  (** resolved per-domain via {!Source_class.fresh} *)
  capacity : float;  (** link capacity, cells/frame *)
  buffer_msec : float;
  target_clr : float;
  requests : int;  (** workload attempts; 0 skips the replay *)
  load_factor : float;
      (** offered load as a fraction of the fill boundary [n_max] *)
  seed : int;
}

type row = {
  scenario : scenario;
  n_max : int;  (** connections admitted before the first rejection *)
  eff_bw : float;
      (** capacity / n_max, cells/frame; [infinity] when [n_max = 0]
          (rendered as ["-"] by {!print_table}) *)
  utilization : float;  (** mean load over capacity at [n_max] *)
  blocking : float option;  (** steady-state, when a workload ran *)
  cache_hit_rate : float option;  (** steady-state, when a workload ran *)
}

type failure = {
  scenario : scenario;
  error : string;  (** [Printexc.to_string] of the last attempt's exception *)
  attempts : int;  (** evaluation attempts made (retries included) *)
}

type outcome = Row of row | Failed of failure
(** Exactly one outcome per input scenario, in input order. *)

val grid :
  ?capacity:float ->
  ?requests:int ->
  ?load_factor:float ->
  ?seed:int ->
  class_names:string list ->
  buffers_msec:float list ->
  target_clrs:float list ->
  unit ->
  scenario list
(** The cartesian product, in row-major (class, buffer, clr) order.
    Defaults: [capacity = 16140] (the paper's OC-3-ish link),
    [requests = 0], [load_factor = 1.1], [seed = 1996].  Seeds are
    derived per scenario from [seed] and the scenario index. *)

val run : ?domains:int -> ?task_retries:int -> scenario list -> outcome array
(** Evaluate every scenario, fanning across [domains] OCaml domains
    (default [Domain.recommended_domain_count], capped by the number
    of scenarios; 1 means fully sequential).  Outcome order matches
    the input order regardless of parallelism.  Each task that raises
    is retried up to [task_retries] times (default 1) before becoming
    a {!Failed} outcome; task errors and retries tick
    [cac.sweep.task_errors] / [cac.sweep.task_retries]. *)

val rows : outcome array -> row array
(** The successful rows, in input order. *)

val failures : outcome array -> failure list
(** The failed scenarios, in input order. *)

val print_table : outcome array -> unit
(** Aligned capacity-planning table on stdout; failed scenarios print
    as [ERROR] rows, and [n_max = 0] cells render eff_bw as ["-"]. *)
