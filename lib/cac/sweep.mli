(** Domain-parallel capacity-planning sweeps.

    A sweep evaluates a grid of admission scenarios — (source class,
    buffer, CLR target) on a fixed link — and reports, per cell, the
    admissible-region boundary found by filling a fresh engine to its
    first rejection, plus a replayed stochastic workload's blocking
    probability and cache hit rate.

    Scenarios are deterministic functions of their parameters and seed,
    so a parallel run over OCaml 5 domains returns bit-identical rows
    to a sequential one.  Each scenario builds its own engine and
    {!Source_class.fresh} instance: variance-growth tables and decision
    caches mutate on use and must never be shared across domains. *)

type scenario = {
  class_name : string;  (** resolved per-domain via {!Source_class.fresh} *)
  capacity : float;  (** link capacity, cells/frame *)
  buffer_msec : float;
  target_clr : float;
  requests : int;  (** workload attempts; 0 skips the replay *)
  load_factor : float;
      (** offered load as a fraction of the fill boundary [n_max] *)
  seed : int;
}

type row = {
  scenario : scenario;
  n_max : int;  (** connections admitted before the first rejection *)
  eff_bw : float;
      (** capacity / n_max, cells/frame; [infinity] when [n_max = 0] *)
  utilization : float;  (** mean load over capacity at [n_max] *)
  blocking : float option;  (** steady-state, when a workload ran *)
  cache_hit_rate : float option;  (** steady-state, when a workload ran *)
}

val grid :
  ?capacity:float ->
  ?requests:int ->
  ?load_factor:float ->
  ?seed:int ->
  class_names:string list ->
  buffers_msec:float list ->
  target_clrs:float list ->
  unit ->
  scenario list
(** The cartesian product, in row-major (class, buffer, clr) order.
    Defaults: [capacity = 16140] (the paper's OC-3-ish link),
    [requests = 0], [load_factor = 1.1], [seed = 1996].  Seeds are
    derived per scenario from [seed] and the scenario index. *)

val run : ?domains:int -> scenario list -> row array
(** Evaluate every scenario, fanning across [domains] OCaml domains
    (default [Domain.recommended_domain_count], capped by the number
    of scenarios; 1 means fully sequential).  Row order matches the
    input order regardless of parallelism. *)

val print_table : row array -> unit
(** Aligned capacity-planning table on stdout. *)
