(* Hashtbl over an intrusive doubly-linked recency list: O(1) lookup,
   insertion, touch and eviction. *)

(* Every cache feeds the process-wide registry counters below (summed
   over all instances and domains); the per-instance [stats] view
   remains for steady-state windows ({!diff}) within one run. *)
let () =
  Obs.Registry.declare_counter "cac.cache.hits";
  Obs.Registry.declare_counter "cac.cache.misses";
  Obs.Registry.declare_counter "cac.cache.evictions"

type ('k, 'v) node = {
  key : 'k;
  value : 'v;
  mutable prev : ('k, 'v) node option;  (* towards MRU *)
  mutable next : ('k, 'v) node option;  (* towards LRU *)
}

type ('k, 'v) t = {
  cap : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;  (* most recently used *)
  mutable tail : ('k, 'v) node option;  (* least recently used *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  (* registry handles (each domain resolves its own shard cell) *)
  c_hits : Obs.Registry.Counter.t;
  c_misses : Obs.Registry.Counter.t;
  c_evictions : Obs.Registry.Counter.t;
}

let create ~capacity =
  assert (capacity >= 0);
  {
    cap = capacity;
    table = Hashtbl.create (Stdlib.max 16 capacity);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    c_hits = Obs.Registry.Counter.v "cac.cache.hits";
    c_misses = Obs.Registry.Counter.v "cac.cache.misses";
    c_evictions = Obs.Registry.Counter.v "cac.cache.evictions";
  }

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table node.key;
      t.evictions <- t.evictions + 1;
      Obs.Registry.Counter.incr t.c_evictions

let find_or_add t key ~compute =
  match Hashtbl.find_opt t.table key with
  | Some node ->
      t.hits <- t.hits + 1;
      Obs.Registry.Counter.incr t.c_hits;
      let is_head = match t.head with Some h -> h == node | None -> false in
      if not is_head then begin
        unlink t node;
        push_front t node
      end;
      node.value
  | None ->
      t.misses <- t.misses + 1;
      Obs.Registry.Counter.incr t.c_misses;
      (* Fault hook, then the real computation.  Either raising leaves
         the cache untouched — the miss is counted but no entry is
         inserted, so a failed compute can never poison the key: the
         next lookup recomputes. *)
      Resilience.Fault.inject "cac.cache.compute";
      let value = compute () in
      if t.cap > 0 then begin
        if Hashtbl.length t.table >= t.cap then evict_lru t;
        let node = { key; value; prev = None; next = None } in
        Hashtbl.replace t.table key node;
        push_front t node
      end;
      value

let mem t key = Hashtbl.mem t.table key
let length t = Hashtbl.length t.table
let capacity t = t.cap

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
}

let stats (t : (_, _) t) =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    entries = Hashtbl.length t.table;
  }

let hit_rate s =
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total

let diff ~before ~after =
  {
    hits = after.hits - before.hits;
    misses = after.misses - before.misses;
    evictions = after.evictions - before.evictions;
    entries = after.entries;
  }

let reset_counters (t : (_, _) t) =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None;
  reset_counters t
