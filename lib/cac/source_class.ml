type t = {
  name : string;
  process : Traffic.Process.t;
  vg : Core.Variance_growth.t;
}

let of_process process =
  {
    name = process.Traffic.Process.name;
    process;
    vg =
      Core.Variance_growth.create ~acf:process.Traffic.Process.acf
        ~variance:process.Traffic.Process.variance;
  }

let names =
  [ "z0.7"; "z0.9"; "z0.975"; "z0.99"; "l"; "dar1"; "dar2"; "dar3"; "mpeg" ]

let process_of_name name =
  match name with
  | "z0.7" -> Some (Traffic.Models.z ~a:0.7).Traffic.Models.process
  | "z0.9" -> Some (Traffic.Models.z ~a:0.9).Traffic.Models.process
  | "z0.975" -> Some (Traffic.Models.z ~a:0.975).Traffic.Models.process
  | "z0.99" -> Some (Traffic.Models.z ~a:0.99).Traffic.Models.process
  | "l" -> Some (Traffic.Models.l ())
  | "dar1" -> Some (Traffic.Models.s ~a:0.975 ~p:1)
  | "dar2" -> Some (Traffic.Models.s ~a:0.975 ~p:2)
  | "dar3" -> Some (Traffic.Models.s ~a:0.975 ~p:3)
  | "mpeg" -> Some (Traffic.Mpeg.process (Traffic.Mpeg.create ~mean:500.0 ()))
  | _ -> None

let fresh name =
  let name = String.lowercase_ascii name in
  Option.map
    (fun process -> { (of_process process) with name })
    (process_of_name name)

(* The class memo: one variance-growth table per class per domain.
   Domain-local (each domain lazily rebuilds its own table) so
   Domain-parallel sweeps never share an unsynchronized Hashtbl —
   lint rule C1 exists to keep it that way. *)
let registry_key : (string, t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let of_name name =
  let registry = Domain.DLS.get registry_key in
  let name = String.lowercase_ascii name in
  match Hashtbl.find_opt registry name with
  | Some cls -> Some cls
  | None ->
      Option.map
        (fun cls ->
          Hashtbl.replace registry name cls;
          cls)
        (fresh name)

let of_name_exn name =
  match of_name name with
  | Some cls -> cls
  | None ->
      invalid_arg
        (Printf.sprintf "Source_class.of_name_exn: unknown class %S (try %s)"
           name (String.concat ", " names))

let mean t = t.process.Traffic.Process.mean

(* The fail-closed allocation unit: mean + 3 sigma of the frame-size
   marginal.  It must not depend on the variance-growth table or any
   iterative numerics — those are exactly what the degraded path
   assumes broken. *)
let peak t =
  t.process.Traffic.Process.mean
  +. (3.0 *. sqrt t.process.Traffic.Process.variance)
