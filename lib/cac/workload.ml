type spec = {
  arrival_rate : float;
  mean_holding : float;
  requests : int;
  mix : (Source_class.t * float) list;
  warmup : float;
}

let spec ?(warmup = 0.2) ?(mean_holding = 60.0) ~arrival_rate ~requests ~mix () =
  if not (arrival_rate > 0.0 && Float.is_finite arrival_rate) then
    invalid_arg "Workload.spec: arrival_rate must be positive and finite";
  if not (mean_holding > 0.0 && Float.is_finite mean_holding) then
    invalid_arg "Workload.spec: mean_holding must be positive and finite";
  if requests < 1 then invalid_arg "Workload.spec: requests < 1";
  if mix = [] || List.exists (fun (_, w) -> not (w > 0.0)) mix then
    invalid_arg "Workload.spec: mix must be non-empty with positive weights";
  if not (warmup >= 0.0 && warmup < 1.0) then
    invalid_arg "Workload.spec: warmup outside [0, 1)";
  { arrival_rate; mean_holding; requests; mix; warmup }

let offered_load s = s.arrival_rate *. s.mean_holding

type result = {
  offered : int;
  admitted : int;
  rejected : int;
  errors : int;
  degraded : int;
  blocking : float;
  steady_blocking : float;
  cache_hit_rate : float;
  steady_cache_hit_rate : float;
  mean_occupancy : float;
  peak_occupancy : int;
  final_occupancy : int;
  mean_latency_us : float;
  duration : float;
}

(* Binary min-heap of pending departures (time, connection id). *)
module Heap = struct
  type t = {
    mutable times : float array;
    mutable conns : int array;
    mutable size : int;
  }

  let create () = { times = Array.make 64 0.0; conns = Array.make 64 0; size = 0 }

  let swap h i j =
    let t = h.times.(i) and c = h.conns.(i) in
    h.times.(i) <- h.times.(j);
    h.conns.(i) <- h.conns.(j);
    h.times.(j) <- t;
    h.conns.(j) <- c

  let push h time conn =
    if h.size = Array.length h.times then begin
      let times = Array.make (2 * h.size) 0.0 in
      let conns = Array.make (2 * h.size) 0 in
      Array.blit h.times 0 times 0 h.size;
      Array.blit h.conns 0 conns 0 h.size;
      h.times <- times;
      h.conns <- conns
    end;
    h.times.(h.size) <- time;
    h.conns.(h.size) <- conn;
    h.size <- h.size + 1;
    let i = ref (h.size - 1) in
    while !i > 0 && h.times.((!i - 1) / 2) > h.times.(!i) do
      swap h ((!i - 1) / 2) !i;
      i := (!i - 1) / 2
    done

  let peek_time h = if h.size = 0 then None else Some h.times.(0)

  let pop h =
    assert (h.size > 0);
    let conn = h.conns.(0) in
    h.size <- h.size - 1;
    h.times.(0) <- h.times.(h.size);
    h.conns.(0) <- h.conns.(h.size);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.size && h.times.(l) < h.times.(!smallest) then smallest := l;
      if r < h.size && h.times.(r) < h.times.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        swap h !i !smallest;
        i := !smallest
      end
    done;
    conn
end

let () =
  Obs.Registry.declare_counter "cac.workload.runs";
  Obs.Registry.declare_counter "cac.workload.requests";
  Obs.Registry.declare_counter "cac.workload.errors"

let pick_class rng mix =
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 mix in
  let u = Numerics.Rng.float rng *. total in
  let rec scan acc = function
    | [] -> assert false
    | [ (cls, _) ] -> cls
    | (cls, w) :: rest ->
        let acc = acc +. w in
        if u < acc then cls else scan acc rest
  in
  scan 0.0 mix

let run engine ~link s rng =
  Obs.Span.with_ ~name:"cac.workload.run" @@ fun () ->
  Obs.Registry.incr "cac.workload.runs";
  Obs.Registry.incr ~by:s.requests "cac.workload.requests";
  let departures = Heap.create () in
  let admitted = ref 0 and rejected = ref 0 and errors = ref 0 in
  let start_fallbacks = Metrics.fallbacks (Engine.metrics engine) in
  let warmup_boundary = int_of_float (s.warmup *. float_of_int s.requests) in
  let warm_rejected = ref 0 and warm_offered = ref 0 in
  let steady_cache_base = ref (Engine.cache_stats engine) in
  let start_cache = Engine.cache_stats engine in
  let start_latency = Metrics.latency_samples (Engine.metrics engine) in
  let occupancy_time = ref 0.0 in
  let peak = ref 0 in
  let now = ref 0.0 in
  let occupancy = ref (Link.connections (Engine.link engine link)) in
  let advance_to time =
    occupancy_time := !occupancy_time +. (float_of_int !occupancy *. (time -. !now));
    now := time
  in
  let drain_until time =
    let rec go () =
      match Heap.peek_time departures with
      | Some td when td <= time ->
          advance_to td;
          Engine.release engine ~conn:(Heap.pop departures);
          decr occupancy;
          go ()
      | _ -> ()
    in
    go ()
  in
  for request = 1 to s.requests do
    if request = warmup_boundary + 1 then
      steady_cache_base := Engine.cache_stats engine;
    let arrival = !now +. Numerics.Dist.exponential rng ~rate:s.arrival_rate in
    drain_until arrival;
    advance_to arrival;
    let cls = pick_class rng s.mix in
    (* Draw the holding time unconditionally so the random stream — and
       hence every later decision — is identical whatever this engine
       decides (sequential/parallel and cached/uncached equivalence). *)
    let holding = Numerics.Dist.exponential rng ~rate:(1.0 /. s.mean_holding) in
    let steady = request > warmup_boundary in
    if steady then incr warm_offered;
    (* An engine failure mid-decision is contained here, fail-closed:
       the request is counted as an error (not an admission), the
       workload keeps draining — one bad decision must never kill a
       million-request replay.  The [cac.workload.admit] point lets
       chaos runs inject exactly that failure mode. *)
    let decision =
      match
        Resilience.Fault.inject "cac.workload.admit";
        Engine.admit engine ~link ~cls
      with
      | d -> Some d
      | exception ((Out_of_memory | Stack_overflow) as exn) -> raise exn
      | exception _ ->
          incr errors;
          Obs.Registry.incr "cac.workload.errors";
          None
    in
    match decision with
    | Some (Engine.Admitted conn) ->
        incr admitted;
        incr occupancy;
        peak := Stdlib.max !peak !occupancy;
        Heap.push departures (!now +. holding) conn
    | Some (Engine.Rejected _) ->
        incr rejected;
        if steady then incr warm_rejected
    | None -> if steady then incr warm_rejected
  done;
  let end_cache = Engine.cache_stats engine in
  let latencies = Metrics.latency_samples (Engine.metrics engine) in
  let new_latencies =
    Array.sub latencies (Array.length start_latency)
      (Array.length latencies - Array.length start_latency)
  in
  {
    offered = s.requests;
    admitted = !admitted;
    rejected = !rejected;
    errors = !errors;
    degraded = Metrics.fallbacks (Engine.metrics engine) - start_fallbacks;
    blocking = float_of_int (!rejected + !errors) /. float_of_int s.requests;
    steady_blocking =
      (if !warm_offered = 0 then 0.0
       else float_of_int !warm_rejected /. float_of_int !warm_offered);
    cache_hit_rate =
      Decision_cache.hit_rate
        (Decision_cache.diff ~before:start_cache ~after:end_cache);
    steady_cache_hit_rate =
      Decision_cache.hit_rate
        (Decision_cache.diff ~before:!steady_cache_base ~after:end_cache);
    mean_occupancy = (if !now > 0.0 then !occupancy_time /. !now else 0.0);
    peak_occupancy = !peak;
    final_occupancy = !occupancy;
    mean_latency_us =
      (if Array.length new_latencies = 0 then 0.0
       else Numerics.Float_array.mean new_latencies);
    duration = !now;
  }

let replicate ~seed ~reps ~make_engine s =
  let results =
    Queueing.Replication.runs ~seed ~reps (fun rng ->
        let engine, link = make_engine () in
        run engine ~link s rng)
  in
  let blocking = Array.map (fun r -> r.steady_blocking) results in
  (results, Stats.Ci.mean_ci blocking)
