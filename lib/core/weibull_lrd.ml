type source = {
  h : float;
  g : float;
  mu : float;
  variance : float;
}

let pi = 4.0 *. atan 1.0
let log10_e = log10 (exp 1.0)

let kappa h =
  assert (h > 0.0 && h < 1.0);
  (h ** h) *. ((1.0 -. h) ** (1.0 -. h))

let check { h; g; variance; _ } =
  assert (h >= 0.5 && h < 1.0);
  assert (g > 0.0 && g <= 1.0);
  assert (variance > 0.0)

let rate src ~c ~b =
  check src;
  assert (c > src.mu && b > 0.0);
  let k = kappa src.h in
  ((c -. src.mu) ** (2.0 *. src.h))
  *. (b ** (2.0 -. (2.0 *. src.h)))
  /. (2.0 *. src.g *. src.variance *. k *. k)

let j src ~c ~b ~n =
  assert (n >= 1);
  float_of_int n *. rate src ~c ~b

let log10_bop src ~c ~b ~n =
  let j = j src ~c ~b ~n in
  assert (j > 0.0);
  ((-.j) -. (0.5 *. log (4.0 *. pi *. j))) *. log10_e

(* 10^x with x <= 0 here: underflows to 0.0 for deep tails, never
   overflows. *)
let[@lint.allow "N2"] bop src ~c ~b ~n = 10.0 ** log10_bop src ~c ~b ~n
