let bop_ok vg ~mu ~total_capacity ~total_buffer ~target_clr ~n =
  assert (n >= 1 && target_clr > 0.0);
  let c = total_capacity /. float_of_int n in
  if c <= mu then false
  else begin
    let b = total_buffer /. float_of_int n in
    let result = Bahadur_rao.evaluate vg ~mu ~c ~b ~n in
    result.Bahadur_rao.log10_bop <= log10 target_clr
  end

let max_admissible vg ~mu ~total_capacity ~total_buffer ~target_clr =
  assert (target_clr > 0.0 && target_clr < 1.0);
  assert (total_capacity > 0.0 && total_buffer >= 0.0 && mu > 0.0);
  let ceiling = int_of_float (ceil (total_capacity /. mu)) - 1 in
  if ceiling < 1 then 0
  else if not (bop_ok vg ~mu ~total_capacity ~total_buffer ~target_clr ~n:1)
  then 0
  else begin
    (* BOP is increasing in n at fixed C, so feasibility is a prefix
       property: binary search for the last feasible n. *)
    let rec bisect lo hi =
      (* invariant: lo feasible, hi + 1 infeasible or hi = ceiling *)
      if lo >= hi then lo
      else begin
        let mid = lo + ((hi - lo + 1) / 2) in
        if bop_ok vg ~mu ~total_capacity ~total_buffer ~target_clr ~n:mid then
          bisect mid hi
        else bisect lo (mid - 1)
      end
    in
    bisect 1 ceiling
  end

let required_capacity vg ~mu ~n ~total_buffer ~target_clr =
  assert (n >= 1 && target_clr > 0.0 && target_clr < 1.0);
  let mean_load = float_of_int n *. mu in
  (* Bracket: BOP decreases as capacity grows. *)
  let ok capacity =
    bop_ok vg ~mu ~total_capacity:capacity ~total_buffer ~target_clr ~n
  in
  let rec upper capacity =
    if ok capacity then capacity else upper (capacity *. 2.0)
  in
  let hi = upper (mean_load *. 1.01) in
  let lo = if Float.equal hi (mean_load *. 1.01) then mean_load else hi /. 2.0 in
  (* Bisection to 0.01 cells/frame on the total capacity. *)
  let rec bisect lo hi =
    if hi -. lo <= 0.01 then hi
    else begin
      let mid = (lo +. hi) /. 2.0 in
      if ok mid then bisect lo mid else bisect mid hi
    end
  in
  bisect lo hi

let effective_bandwidth_per_source vg ~mu ~n ~total_buffer ~target_clr =
  assert (n >= 1);
  required_capacity vg ~mu ~n ~total_buffer ~target_clr /. float_of_int n
