type result = {
  log10_bop : float;
  bop : float;
  cts : Cts.analysis;
}

let log10_e = log10 (exp 1.0)
let pi = 4.0 *. atan 1.0

(* Handles, not keyed calls: this path runs per admission decision and
   per figure point, so the per-call cost must stay at a cached-cell
   increment. *)
let c_evaluations = Obs.Registry.Counter.v "bahadur_rao.evaluations"

let h_eval_us =
  Obs.Registry.Histogram.v ~lo:0.0 ~hi:2000.0 ~bins:100 "bahadur_rao.eval_us"

(* Per-buffer m* series for the heatmap view.  Labelling by the
   per-source buffer [b] would explode cardinality (b = B/n moves with
   every n during a fill); the *total* buffer [b*n] is what a link
   scenario fixes, so the label set stays one value per configured
   link/scenario.  %.4g keeps float formatting stable across the
   b*n = (B/n)*n round trip. *)
let buffer_labels ~b ~n =
  Obs.Labels.make
    [ ("buffer_cells", Printf.sprintf "%.4g" (b *. float_of_int n)) ]

let evaluate vg ~mu ~c ~b ~n =
  assert (n >= 1);
  let t0 = Obs.Clock.monotonic_ns () in
  let cts = Cts.analyze vg ~mu ~c ~b in
  Obs.Registry.Counter.incr c_evaluations;
  Obs.Registry.Histogram.observe h_eval_us
    (Obs.Clock.ns_to_us (Obs.Clock.elapsed_ns ~since:t0));
  Obs.Registry.observe ~labels:(buffer_labels ~b ~n) "cts.m_star"
    (float_of_int cts.Cts.m_star);
  let nf = float_of_int n in
  (* Fault-injection hook: when armed (chaos tests, --fault-spec) this
     point can raise, stall, or corrupt the exponent to NaN — callers
     above the engine boundary must contain all three (see
     Resilience.Guard). *)
  let exponent_nats =
    Resilience.Fault.inject_float "bahadur_rao.evaluate" (fun () ->
        (-.nf *. cts.Cts.rate) -. (0.5 *. log (4.0 *. pi *. nf *. cts.Cts.rate)))
  in
  let log10_bop = exponent_nats *. log10_e in
  { log10_bop; bop = exp exponent_nats; cts }

let evaluate_total vg ~mu ~total_capacity ~total_buffer ~n =
  assert (n >= 1);
  let nf = float_of_int n in
  evaluate vg ~mu ~c:(total_capacity /. nf) ~b:(total_buffer /. nf) ~n

let curve vg ~mu ~c ~n ~buffers =
  Array.map (fun b -> (b, evaluate vg ~mu ~c ~b ~n)) buffers
