type analysis = { m_star : int; rate : float; scanned_up_to : int }

(* Telemetry: the infimum search behind the Bahadur–Rao rate function
   is the numeric hot path of the whole admission stack, so its scan
   lengths and minimisers are exported through the Obs registry. *)
let c_searches = Obs.Registry.Counter.v "bahadur_rao.infimum_searches"
let c_iterations = Obs.Registry.Counter.v "bahadur_rao.infimum_iterations"
let h_m_star = Obs.Registry.Histogram.v ~lo:0.0 ~hi:5000.0 ~bins:50 "cts.m_star"

let objective vg ~mu ~c ~b m =
  assert (m >= 1);
  let drift = b +. (float_of_int m *. (c -. mu)) in
  drift *. drift /. (2.0 *. Variance_growth.v vg m)

let analyze ?(margin = 8) vg ~mu ~c ~b =
  if not (c > mu) then
    invalid_arg
      (Printf.sprintf "Cts.analyze: need c > mu (got c = %g, mu = %g)" c mu);
  if not (b >= 0.0) then invalid_arg "Cts.analyze: negative buffer";
  let argmin_so_far = ref 1 in
  let f m =
    let value = objective vg ~mu ~c ~b m in
    value
  in
  let best_value = ref (f 1) in
  let result =
    Numerics.Optimize.integer_argmin ~f ~lo:1
      ~stop:(fun ~best ~at ~current ->
        if best < !best_value then begin
          best_value := best;
          argmin_so_far := at
        end;
        (* The objective diverges whenever V(m) = o(m^2), so it always
           eventually doubles its minimum; requiring in addition that we
           are well past the running argmin guards against shallow local
           wiggles near the minimum. *)
        current > 2.0 *. best && at > (margin * !argmin_so_far) + 64)
      ()
  in
  Obs.Registry.Counter.incr c_searches;
  Obs.Registry.Counter.incr ~by:result.Numerics.Optimize.scanned_up_to
    c_iterations;
  Obs.Registry.Histogram.observe h_m_star
    (float_of_int result.Numerics.Optimize.argmin);
  {
    m_star = result.Numerics.Optimize.argmin;
    rate = result.Numerics.Optimize.minimum;
    scanned_up_to = result.Numerics.Optimize.scanned_up_to;
  }

let curve ?margin vg ~mu ~c ~buffers =
  Array.map (fun b -> (b, analyze ?margin vg ~mu ~c ~b)) buffers

let lrd_closed_form ~h ~mu ~c ~b =
  assert (h > 0.0 && h < 1.0 && c > mu && b >= 0.0);
  h *. b /. ((1.0 -. h) *. (c -. mu))
