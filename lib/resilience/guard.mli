(** Containment combinators and circuit breakers: the policy half of
    the resilience layer.

    {!Fault} manufactures failures; this module bounds their blast
    radius.  Everything here is deterministic by default — deadlines
    are eval-count budgets, breaker cooldowns are decision counts — so
    guarded runs replay bit-identically from a seed, unlike wall-clock
    timeouts.  Long-running servers can opt a breaker into wall-clock
    cooldowns ({!Breaker.create}'s [cooldown_s]); that mode trades the
    replay guarantee for time-based recovery.

    All counters land in {!Obs.Registry} under [cac.guard.*]:

    - [cac.guard.caught] — exceptions absorbed by {!protect};
    - [cac.guard.fallbacks] — degraded (fail-closed) decisions taken;
    - [cac.guard.retries] — re-attempts made by {!retry};
    - [cac.guard.breaker_trips] — Closed → Open transitions;
    - [cac.guard.breaker_fast_fails] — calls short-circuited while Open;
    - [cac.guard.breaker_probes] — Half-open trial calls;
    - [cac.guard.breaker_recoveries] — Half-open → Closed transitions. *)

exception Budget_exhausted of string
(** Raised by {!Budget.tick} past the limit; payload is the label. *)

exception Non_finite of string
(** Raised by {!finite} on NaN or infinite kernel output, so numeric
    corruption flows through the same containment path as a raise. *)

val finite : label:string -> float -> float
(** Identity on finite floats; raises {!Non_finite} otherwise. *)

val protect : label:string -> fallback:(exn -> 'a) -> (unit -> 'a) -> 'a
(** [protect ~label ~fallback f] runs [f ()], absorbing any exception
    into [fallback exn] (and a [cac.guard.caught] tick).
    [Out_of_memory] and [Stack_overflow] are never absorbed. *)

val retry : ?max_retries:int -> ?backoff_us:float -> label:string -> (unit -> 'a) -> 'a
(** [retry ~max_retries f] runs [f ()], re-running it up to
    [max_retries] more times (default 1) if it raises; the last
    exception propagates.  [backoff_us] (default 0) sleeps
    [backoff_us * 2^attempt] microseconds between attempts — keep it 0
    in deterministic replays. *)

val record_fallback : unit -> unit
(** Tick [cac.guard.fallbacks]; called by whoever takes a degraded
    decision (the engine's fail-closed path). *)

val fallbacks : unit -> int
(** Merged [cac.guard.fallbacks] value across all domains. *)

(** Deterministic deadlines: a budget of evaluation tickets, spent one
    {!Budget.tick} at a time.  Wrap an iterative kernel's inner loop
    with a budget to bound its work without consulting a clock. *)
module Budget : sig
  type t

  val create : ?label:string -> int -> t
  (** [create n] allows [n] ticks; [n < 0] is unlimited. *)

  val tick : t -> unit
  (** Spend one ticket; raises {!Budget_exhausted} when none remain. *)

  val remaining : t -> int
  val exhausted : t -> bool

  val with_budget : ?label:string -> int -> (t -> 'a) -> 'a
  (** [with_budget n f] is [f (create n)]. *)
end

(** A per-resource circuit breaker over a deterministic decision
    counter.

    - {b Closed}: calls run normally; [threshold] {e consecutive}
      failures trip the breaker.
    - {b Open}: calls fail fast ([Error Tripped]) for the cooldown —
      by default the next [cooldown] calls; with [cooldown_s], a
      wall-clock duration — so the caller degrades (fail-closed)
      instead of hammering a broken kernel.
    - {b Half-open}: after the cooldown, one call is let through as a
      probe.  Success closes the breaker; failure re-opens it for
      another cooldown. *)
module Breaker : sig
  type t
  type state = Closed | Open | Half_open
  type error = Tripped | Failed of exn

  val create :
    ?threshold:int ->
    ?cooldown:int ->
    ?cooldown_s:float ->
    ?label:string ->
    unit ->
    t
  (** Defaults: [threshold = 5] consecutive failures, [cooldown = 64]
      fast-failed calls before the first probe.  Passing [cooldown_s]
      switches the breaker to wall-clock cooldowns: once tripped it
      fast-fails until [cooldown_s] seconds have elapsed on
      {!Obs.Clock.monotonic_ns}, then probes — the right mode for
      long-running servers, where a quiet resource should recover by
      time, not by absorbing [cooldown] more calls.  Wall-clock mode
      is {e not} deterministic under replay; the eval-count default
      is.  Raises [Invalid_argument] on a negative or non-finite
      [cooldown_s]. *)

  val call : t -> (unit -> 'a) -> ('a, error) result
  (** Run [f] under the breaker.  [Error Tripped] means the breaker
      short-circuited the call; [Error (Failed exn)] means [f] ran and
      raised (asynchronous exceptions — [Out_of_memory],
      [Stack_overflow] — propagate instead). *)

  val state : t -> state
  val consecutive_failures : t -> int
  val trips : t -> int

  val wall_clock : t -> bool
  (** [true] when the breaker was created with [cooldown_s]. *)

  val cooldown_remaining_s : t -> float option
  (** Seconds until a wall-clock breaker will accept a probe; [Some 0.]
      when due, [None] while not Open or in eval-count mode. *)

  val state_name : state -> string
  (** ["closed"], ["open"] or ["half-open"]. *)

  val state_of_name : string -> state option
  (** Inverse of {!state_name}; [None] on an unknown name. *)

  val force : t -> state -> unit
  (** [force t s] restores a persisted breaker state without touching
      trip counters or telemetry — crash recovery re-arms a breaker
      where the snapshot left it.  Forcing [Open] re-arms the full
      cooldown (eval count, or wall-clock from now). *)
end
