exception Injected of string

type kind = Raise | Nan | Latency_us of float | Short_write | Torn_write
type rule = { point : string; kind : kind; rate : float }

(* Every point the codebase threads a hook through, with the fault
   kinds that make sense there.  [nan] needs a float-valued point;
   [short-write]/[torn-write] need a write-shaped point (one that goes
   through {!write_plan}). *)
let known_points =
  [
    ("bahadur_rao.evaluate", [ "raise"; "nan"; "latency" ]);
    ("cac.cache.compute", [ "raise"; "latency" ]);
    ("cac.workload.admit", [ "raise"; "latency" ]);
    ("cac.sweep.task", [ "raise"; "latency" ]);
    ("queueing.mux.step", [ "raise"; "latency" ]);
    ("srv.http.handler", [ "raise"; "latency" ]);
    ("persist.wal.append", [ "raise"; "latency"; "short-write"; "torn-write" ]);
    ("persist.wal.fsync", [ "raise"; "latency" ]);
    ("persist.snapshot.write",
     [ "raise"; "latency"; "short-write"; "torn-write" ]);
  ]

let kind_name = function
  | Raise -> "raise"
  | Nan -> "nan"
  | Latency_us _ -> "latency"
  | Short_write -> "short-write"
  | Torn_write -> "torn-write"

(* {2 Spec parsing} *)

let parse_rule s =
  match String.index_opt s '=' with
  | None -> Error (Printf.sprintf "fault rule %S: expected point=kind[:rate[:param]]" s)
  | Some i -> (
      let point = String.trim (String.sub s 0 i) in
      let rhs = String.sub s (i + 1) (String.length s - i - 1) in
      let fields = String.split_on_char ':' rhs |> List.map String.trim in
      let kind_s, rate_s, param_s =
        match fields with
        | [ k ] -> (k, None, None)
        | [ k; r ] -> (k, Some r, None)
        | [ k; r; p ] -> (k, Some r, Some p)
        | _ -> ("", None, None)
      in
      match List.assoc_opt point known_points with
      | None ->
          Error
            (Printf.sprintf "fault rule %S: unknown point %S (known: %s)" s point
               (String.concat ", " (List.map fst known_points)))
      | Some supported -> (
          let rate =
            match rate_s with
            | None -> Some 1.0
            | Some r -> (
                match float_of_string_opt r with
                | Some r when r > 0.0 && r <= 1.0 -> Some r
                | _ -> None)
          in
          let kind =
            match kind_s with
            | "raise" -> Some Raise
            | "nan" -> Some Nan
            | "short-write" -> Some Short_write
            | "torn-write" -> Some Torn_write
            | "latency" -> (
                match param_s with
                | None -> Some (Latency_us 1000.0)
                | Some p -> (
                    match float_of_string_opt p with
                    | Some p when p >= 0.0 -> Some (Latency_us p)
                    | _ -> None))
            | _ -> None
          in
          match (kind, rate) with
          | None, _ ->
              Error
                (Printf.sprintf
                   "fault rule %S: bad kind or latency param (kinds: raise, \
                    nan, latency[:rate[:usec]], short-write, torn-write)"
                   s)
          | _, None ->
              Error (Printf.sprintf "fault rule %S: rate must be in (0, 1]" s)
          | Some kind, Some rate ->
              if not (List.mem (kind_name kind) supported) then
                Error
                  (Printf.sprintf "fault rule %S: point %S supports only %s" s
                     point
                     (String.concat ", " supported))
              else if param_s <> None && kind_name kind <> "latency" then
                Error
                  (Printf.sprintf
                     "fault rule %S: only latency takes a parameter" s)
              else Ok { point; kind; rate }))

let parse s =
  let parts =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> (
        match parse_rule p with
        | Ok r -> go (r :: acc) rest
        | Error _ as e -> e)
  in
  go [] parts

let to_string rules =
  rules
  |> List.map (fun r ->
         match r.kind with
         | Latency_us us -> Printf.sprintf "%s=latency:%g:%g" r.point r.rate us
         | k -> Printf.sprintf "%s=%s:%g" r.point (kind_name k) r.rate)
  |> String.concat ","

(* {2 The armed registry}

   The configuration is process-global, written once by [configure]
   before any domain spawns and read (atomically) on every hook.  The
   draw stream is per-domain: each domain lazily (re)creates its RNG
   whenever the configuration version moves, and [reseed] re-arms just
   the calling domain — that is what makes sweep tasks deterministic
   under work stealing. *)

type cfg = { rules : rule list; seed : int; version : int }

(* C1 waiver rationale: this is the sanctioned process-wide fault
   switchboard, set once at startup (like Obs.Sink's human handle) and
   read-only afterwards. *)
let cfg = Atomic.make { rules = []; seed = 1996; version = 0 }

type dstate = { mutable version : int; mutable rng : Numerics.Rng.t }

let dstate_key : dstate Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { version = -1; rng = Numerics.Rng.create ~seed:0 })

let configure ?(seed = 1996) rules =
  let c = Atomic.get cfg in
  Atomic.set cfg { rules; seed; version = c.version + 1 }

let clear () = configure []
let active () = (Atomic.get cfg).rules <> []
let rules () = (Atomic.get cfg).rules

let domain_rng (c : cfg) =
  let d = Domain.DLS.get dstate_key in
  if d.version <> c.version then begin
    d.rng <- Numerics.Rng.create ~seed:c.seed;
    d.version <- c.version
  end;
  d.rng

let reseed seed =
  let c : cfg = Atomic.get cfg in
  let d = Domain.DLS.get dstate_key in
  d.rng <- Numerics.Rng.create ~seed;
  d.version <- c.version

(* {2 Hooks} *)

let () = Obs.Registry.declare_counter "cac.fault.injected"

let count rule =
  Obs.Registry.incr "cac.fault.injected";
  Obs.Registry.incr
    ~labels:
      (Obs.Labels.make
         [ ("point", rule.point); ("kind", kind_name rule.kind) ])
    "cac.fault.injected"

let injected_total () = Obs.Registry.counter_value "cac.fault.injected"

(* Draw once per armed rule for the point — every call consumes the
   same number of draws whatever fires, keeping the stream aligned
   across runs. *)
let fired_rules point =
  let c = Atomic.get cfg in
  match List.filter (fun r -> r.point = point) c.rules with
  | [] -> []
  | rules ->
      let rng = domain_rng c in
      List.filter (fun r -> Numerics.Rng.float rng < r.rate) rules

let apply_latency fired =
  List.iter
    (fun r ->
      match r.kind with
      | Latency_us us ->
          count r;
          Unix.sleepf (us *. 1e-6)
      | Raise | Nan | Short_write | Torn_write -> ())
    fired

let apply_raise point fired =
  List.iter
    (fun r ->
      match r.kind with
      | Raise ->
          count r;
          raise (Injected point)
      | Nan | Latency_us _ | Short_write | Torn_write -> ())
    fired

let inject point =
  match fired_rules point with
  | [] -> ()
  | fired ->
      apply_latency fired;
      apply_raise point fired

(* {2 Write-shaped hooks}

   The persistence layer asks the switchboard what should happen to an
   [len]-byte write *before* issuing it, so a torn write really leaves
   a partial record on disk instead of merely pretending to.  A fired
   torn-write wins over a fired short-write: both truncate, but torn
   additionally severs the record framing mid-frame. *)

type write_outcome = Write_all | Write_short of int | Write_torn of int

let partial_len len = min (len - 1) (max 1 (len / 2))

let write_plan point ~len =
  match fired_rules point with
  | [] -> Write_all
  | fired ->
      apply_latency fired;
      apply_raise point fired;
      if len <= 1 then Write_all
      else
        let has pred =
          List.exists
            (fun r ->
              if pred r.kind then begin
                count r;
                true
              end
              else false)
            fired
        in
        let short = has (function Short_write -> true | _ -> false) in
        let torn = has (function Torn_write -> true | _ -> false) in
        if torn then Write_torn (partial_len len)
        else if short then Write_short (partial_len len)
        else Write_all

let inject_float point f =
  match fired_rules point with
  | [] -> f ()
  | fired ->
      apply_latency fired;
      apply_raise point fired;
      let v = f () in
      let corrupt =
        List.exists (fun r -> match r.kind with Nan -> true | _ -> false) fired
      in
      if corrupt then begin
        List.iter
          (fun r -> match r.kind with Nan -> count r | _ -> ())
          fired;
        Float.nan
      end
      else v
