(** Seeded, deterministic fault injection.

    The admission kernels feeding the CAC engine are numerical code
    driven by fitted traffic models; the resilience layer exists so
    that a kernel raising, returning NaN, or stalling has {e defined}
    behaviour.  This module is how those failures are manufactured on
    demand: a process-wide registry of {b injection points} — named
    call sites threaded through {!Core.Bahadur_rao.evaluate},
    {!Cac.Decision_cache.find_or_add}, {!Cac.Workload.run},
    {!Cac.Sweep.run}, the queueing simulators' per-frame step
    ([queueing.mux.step]), the HTTP serving pool's dispatch path
    ([srv.http.handler]) and the durability layer's write paths
    ([persist.wal.append], [persist.wal.fsync],
    [persist.snapshot.write]) — each of which can be armed with raise,
    NaN, latency or (at write-shaped points) short-write / torn-write
    faults at a given rate.

    {2 Fault-spec grammar}

    A spec is a comma-separated list of rules:

    {v
    spec  ::= rule ("," rule)*
    rule  ::= point "=" kind (":" rate)? (":" param)?
    kind  ::= "raise" | "nan" | "latency" | "short-write" | "torn-write"
    rate  ::= firing probability in (0, 1]      (default 1)
    param ::= latency microseconds, >= 0        (default 1000)
    v}

    For example ["bahadur_rao.evaluate=nan:0.01,cac.sweep.task=raise:0.2"]
    corrupts 1% of kernel evaluations to NaN and kills 20% of sweep
    tasks.  [nan] is only accepted at float-valued points (see
    {!known_points}).

    {2 Determinism}

    Firing decisions are drawn from a per-domain {!Numerics.Rng}
    stream seeded by {!configure} (and re-armed by {!reseed}), so a
    given seed + spec + call sequence reproduces the identical fault
    sequence — and hence the identical decision sequence — run after
    run.  Domain-parallel sweeps {!reseed} per task from the scenario
    seed, making each task's faults independent of which domain claims
    it.

    Injection is disabled (and costs one list lookup on an empty list)
    until {!configure} arms it; production binaries that never call
    [configure] take no faults. *)

exception Injected of string
(** Raised by an armed [raise] fault; the payload is the point name. *)

type kind =
  | Raise  (** raise {!Injected} at the point *)
  | Nan  (** corrupt the point's float result to [nan] *)
  | Latency_us of float  (** stall the point for this many microseconds *)
  | Short_write  (** truncate a write to a prefix (record boundary intact) *)
  | Torn_write  (** truncate a write mid-record, as a crash would *)

type rule = { point : string; kind : kind; rate : float }

val known_points : (string * string list) list
(** Registered injection points, each with the kinds it supports
    (["raise"], ["nan"], ["latency"]).  {!parse} rejects rules naming
    any other point or an unsupported kind. *)

val parse : string -> (rule list, string) result
(** Parse a fault-spec string (grammar above).  The empty string is a
    valid empty spec. *)

val to_string : rule list -> string
(** Render a spec back into the grammar (inverse of {!parse}). *)

val configure : ?seed:int -> rule list -> unit
(** Arm the registry: install the rules and reset every domain's fault
    stream to [seed] (default 1996) on its next draw.  Call before
    spawning domains. *)

val clear : unit -> unit
(** Disarm every fault; equivalent to [configure []]. *)

val active : unit -> bool
(** Whether any rule is armed. *)

val rules : unit -> rule list

val reseed : int -> unit
(** Reset the {e calling domain's} fault stream to [seed], leaving the
    armed rules in place.  Used by {!Cac.Sweep} to make per-task fault
    draws independent of domain scheduling. *)

val inject : string -> unit
(** The hook for unit-valued points: draws once per armed rule for
    this point, then applies the fired faults ([raise] raises
    {!Injected}, [latency] sleeps; [nan] is meaningless here and is
    rejected by {!parse}).  No-op when the point has no armed rules. *)

val inject_float : string -> (unit -> float) -> float
(** The hook for float-valued points: like {!inject}, but a fired
    [nan] fault corrupts the computed result to [Float.nan] (the
    computation still runs, so telemetry counts it). *)

type write_outcome =
  | Write_all  (** write the full buffer *)
  | Write_short of int  (** write only this many bytes, then stop *)
  | Write_torn of int
      (** write only this many bytes {e and} treat the sink as severed
          (the WAL closes the segment, as a crash mid-write would) *)

val write_plan : string -> len:int -> write_outcome
(** The hook for write-shaped points ([persist.wal.append],
    [persist.snapshot.write]): decide the fate of an [len]-byte write
    before it is issued.  Applies fired [latency] and [raise] rules
    first (so those kinds work unchanged at write points); a fired
    [torn-write] wins over a fired [short-write].  Returns
    {!Write_all} when nothing fires or [len <= 1]. *)

val injected_total : unit -> int
(** Merged value of the [cac.fault.injected] counter — total faults
    fired in this process, all points and domains. *)
