exception Budget_exhausted of string
exception Non_finite of string

let () =
  Obs.Registry.declare_counter "cac.guard.caught";
  Obs.Registry.declare_counter "cac.guard.fallbacks";
  Obs.Registry.declare_counter "cac.guard.retries";
  Obs.Registry.declare_counter "cac.guard.breaker_trips";
  Obs.Registry.declare_counter "cac.guard.breaker_fast_fails";
  Obs.Registry.declare_counter "cac.guard.breaker_probes";
  Obs.Registry.declare_counter "cac.guard.breaker_recoveries"

(* Handles are safe to share across domains: each domain resolves its
   own shard cell (see Obs.Registry). *)
let c_caught = Obs.Registry.Counter.v "cac.guard.caught"
let c_fallbacks = Obs.Registry.Counter.v "cac.guard.fallbacks"
let c_retries = Obs.Registry.Counter.v "cac.guard.retries"
let c_trips = Obs.Registry.Counter.v "cac.guard.breaker_trips"
let c_fast_fails = Obs.Registry.Counter.v "cac.guard.breaker_fast_fails"
let c_probes = Obs.Registry.Counter.v "cac.guard.breaker_probes"
let c_recoveries = Obs.Registry.Counter.v "cac.guard.breaker_recoveries"

let finite ~label x = if Float.is_finite x then x else raise (Non_finite label)

(* Never absorb asynchronous/resource exhaustion: containment must not
   turn a dying process into a silently wrong one. *)
let fatal = function Out_of_memory | Stack_overflow -> true | _ -> false

let protect ~label:_ ~fallback f =
  try f ()
  with exn when not (fatal exn) ->
    Obs.Registry.Counter.incr c_caught;
    fallback exn

let retry ?(max_retries = 1) ?(backoff_us = 0.0) ~label f =
  if max_retries < 0 then invalid_arg (label ^ ": max_retries < 0");
  let rec go attempt =
    try f ()
    with exn when (not (fatal exn)) && attempt < max_retries ->
      Obs.Registry.Counter.incr c_retries;
      if backoff_us > 0.0 then
        Unix.sleepf (backoff_us *. (2.0 ** float_of_int attempt) *. 1e-6);
      go (attempt + 1)
  in
  go 0

let record_fallback () = Obs.Registry.Counter.incr c_fallbacks
let fallbacks () = Obs.Registry.counter_value "cac.guard.fallbacks"

module Budget = struct
  type t = { label : string; limit : int; mutable spent : int }

  let create ?(label = "budget") limit = { label; limit; spent = 0 }

  let tick t =
    if t.limit >= 0 && t.spent >= t.limit then raise (Budget_exhausted t.label);
    t.spent <- t.spent + 1

  let remaining t = if t.limit < 0 then max_int else Stdlib.max 0 (t.limit - t.spent)
  let exhausted t = t.limit >= 0 && t.spent >= t.limit
  let with_budget ?label limit f = f (create ?label limit)
end

module Breaker = struct
  type state = Closed | Open | Half_open
  type error = Tripped | Failed of exn

  (* Two cooldown modes.  The default counts fast-failed calls — fully
     deterministic, replays bit-identically.  The optional wall-clock
     mode ([cooldown_s]) holds the breaker open for a duration on
     {!Obs.Clock.monotonic_ns}, which long-running servers want: an
     idle resource should not need [cooldown] incoming calls before it
     is allowed to recover. *)
  type mode = Evals of int | Wall_s of float

  type t = {
    threshold : int;
    mode : mode;
    label : string;
    mutable state : state;
    mutable failures : int;  (* consecutive, while Closed *)
    mutable remaining : int;  (* fast-fails left, while Open (Evals) *)
    mutable reopen_at_ns : int64;  (* probe-allowed time, while Open (Wall_s) *)
    mutable trips : int;
  }

  let create ?(threshold = 5) ?(cooldown = 64) ?cooldown_s ?(label = "breaker")
      () =
    if threshold < 1 then invalid_arg (label ^ ": threshold < 1");
    if cooldown < 0 then invalid_arg (label ^ ": cooldown < 0");
    let mode =
      match cooldown_s with
      | None -> Evals cooldown
      | Some s ->
          if not (Float.is_finite s && s >= 0.0) then
            invalid_arg (label ^ ": cooldown_s must be finite and >= 0");
          Wall_s s
    in
    {
      threshold;
      mode;
      label;
      state = Closed;
      failures = 0;
      remaining = 0;
      reopen_at_ns = 0L;
      trips = 0;
    }

  let state t = t.state
  let consecutive_failures t = t.failures
  let trips t = t.trips
  let wall_clock t = match t.mode with Wall_s _ -> true | Evals _ -> false

  let cooldown_remaining_s t =
    match (t.state, t.mode) with
    | Open, Wall_s _ ->
        let left_ns = Int64.sub t.reopen_at_ns (Obs.Clock.monotonic_ns ()) in
        Some (Float.max 0.0 (Int64.to_float left_ns *. 1e-9))
    | _ -> None

  let state_name = function
    | Closed -> "closed"
    | Open -> "open"
    | Half_open -> "half-open"

  let state_of_name = function
    | "closed" -> Some Closed
    | "open" -> Some Open
    | "half-open" -> Some Half_open
    | _ -> None

  (* Restore a persisted state without telemetry: recovery re-arms a
     breaker exactly where a snapshot left it, but the trip counters
     must only ever reflect live failures. *)
  let force t state =
    t.state <- state;
    t.failures <- 0;
    match (state, t.mode) with
    | Open, Evals cooldown -> t.remaining <- cooldown
    | Open, Wall_s s ->
        t.reopen_at_ns <-
          Int64.add (Obs.Clock.monotonic_ns ()) (Int64.of_float (s *. 1e9))
    | (Closed | Half_open), _ -> ()

  let trip t =
    t.state <- Open;
    (match t.mode with
    | Evals cooldown -> t.remaining <- cooldown
    | Wall_s s ->
        t.reopen_at_ns <-
          Int64.add (Obs.Clock.monotonic_ns ()) (Int64.of_float (s *. 1e9)));
    t.trips <- t.trips + 1;
    Obs.Registry.Counter.incr c_trips

  let run_closed t f =
    match f () with
    | v ->
        t.failures <- 0;
        Ok v
    | exception exn when not (fatal exn) ->
        t.failures <- t.failures + 1;
        if t.failures >= t.threshold then trip t;
        Error (Failed exn)

  let run_probe t f =
    Obs.Registry.Counter.incr c_probes;
    match f () with
    | v ->
        t.state <- Closed;
        t.failures <- 0;
        Obs.Registry.Counter.incr c_recoveries;
        Ok v
    | exception exn when not (fatal exn) ->
        trip t;
        Error (Failed exn)

  let call t f =
    match t.state with
    | Closed -> run_closed t f
    | Half_open -> run_probe t f
    | Open -> (
        match t.mode with
        | Evals _ ->
            if t.remaining > 0 then begin
              t.remaining <- t.remaining - 1;
              Obs.Registry.Counter.incr c_fast_fails;
              (* The cooldown just expired: the *next* call probes. *)
              if t.remaining = 0 then t.state <- Half_open;
              Error Tripped
            end
            else begin
              (* cooldown = 0: probe immediately. *)
              t.state <- Half_open;
              run_probe t f
            end
        | Wall_s _ ->
            if Int64.compare (Obs.Clock.monotonic_ns ()) t.reopen_at_ns >= 0
            then begin
              t.state <- Half_open;
              run_probe t f
            end
            else begin
              Obs.Registry.Counter.incr c_fast_fails;
              Error Tripped
            end)
end
