(* C1 waiver: constant lag grid, written once here and never
   mutated. *)
let[@lint.allow "C1"] lags = Array.init 30 (fun i -> i + 1)

let figure_z () =
  {
    Common.id = "fig1_z";
    title = "Effect of a on the ACF of Z^a (short lags move, tail fixed)";
    xlabel = "lag k";
    ylabel = "r(k)";
    series =
      List.map
        (fun a ->
          Common.acf_series
            ~label:(Printf.sprintf "Z^%g" a)
            (Traffic.Models.z ~a).Traffic.Models.process ~lags)
        [ 0.7; 0.99 ];
  }

let figure_v () =
  {
    Common.id = "fig1_v";
    title = "Effect of v on the ACF of V^v (tail weight moves, short lags fixed)";
    xlabel = "lag k";
    ylabel = "r(k)";
    series =
      List.map
        (fun v ->
          Common.acf_series
            ~label:(Printf.sprintf "V^%g" v)
            (Traffic.Models.v ~v).Traffic.Models.process ~lags)
        [ 0.67; 1.5 ];
  }

let run () =
  Ascii_plot.emit (figure_z ());
  Ascii_plot.emit (figure_v ())
