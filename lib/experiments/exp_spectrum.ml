let pi = 4.0 *. atan 1.0

let spectrum_of a =
  let p = (Traffic.Models.z ~a).Traffic.Models.process in
  Core.Spectrum.create ~acf:p.Traffic.Process.acf
    ~variance:p.Traffic.Process.variance ()

let figure_psd () =
  let freqs = Numerics.Float_array.logspace ~lo:1e-3 ~hi:pi ~n:30 in
  {
    Common.id = "spectrum_psd";
    title = "Power spectral density of Z^a (common LRD pole, split mid-band)";
    xlabel = "angular frequency w";
    ylabel = "log10 S(w)";
    series =
      List.map
        (fun a ->
          let s = spectrum_of a in
          Common.series
            ~label:(Printf.sprintf "Z^%g" a)
            (Array.map
               (fun w -> (w, Common.log10_or_floor (Core.Spectrum.psd s w)))
               freqs))
        Traffic.Models.z_values;
  }

let figure_cutoff () =
  let buffers = Common.practical_buffers_msec in
  {
    Common.id = "spectrum_cutoff";
    title = "Buffer-induced cutoff frequency w_c = pi/m* (N=30, c=538)";
    xlabel = "buffer msec";
    ylabel = "log10 w_c";
    series =
      List.map
        (fun a ->
          let s = spectrum_of a in
          Common.series
            ~label:(Printf.sprintf "Z^%g" a)
            (Array.map
               (fun msec ->
                 let b =
                   Common.buffer_cells_per_source ~msec ~n:Common.n_main
                     ~c:Common.c_main
                 in
                 ( msec,
                   log10
                     (Core.Spectrum.cutoff_frequency s ~mu:Common.mu
                        ~c:Common.c_main ~b) ))
               buffers))
        Traffic.Models.z_values;
  }

let lrd_power_ignored ~a ~buffer_msec =
  let s = spectrum_of a in
  let b =
    Common.buffer_cells_per_source ~msec:buffer_msec ~n:Common.n_main
      ~c:Common.c_main
  in
  let wc = Core.Spectrum.cutoff_frequency s ~mu:Common.mu ~c:Common.c_main ~b in
  Core.Spectrum.low_frequency_power s ~below:wc

let run () =
  Ascii_plot.emit ~logx:true (figure_psd ());
  Ascii_plot.emit (figure_cutoff ());
  Common.printf
    "\nSpectral mass below the cutoff (ignored by the loss estimate):\n";
  List.iter
    (fun buffer_msec ->
      Common.printf "  B = %5.1f msec:" buffer_msec;
      List.iter
        (fun a ->
          Common.printf "  Z^%g: %4.1f%%" a
            (100.0 *. lrd_power_ignored ~a ~buffer_msec))
        [ 0.7; 0.975 ];
      Common.printf "\n")
    [ 2.0; 10.0; 30.0 ];
  Common.printf
    "A large share of the variance - all of it low-frequency, i.e. the\n\
     LRD part - sits below w_c even at 30 msec: the CTS theorem in\n\
     frequency-domain clothing.\n"
