let end_to_end_budget_msec = 200.0
let hops = 3
let frame_msec = Common.ts *. 1000.0
let windows = [| 1; 2; 3; 4; 5 |]

let buffer_msec_at_window w =
  let shaping_delay = float_of_int (w - 1) *. frame_msec in
  (end_to_end_budget_msec -. shaping_delay) /. float_of_int hops

let bop_at_window process w =
  let shaped = Traffic.Shaper.smooth process ~window:w in
  let buffer_msec = buffer_msec_at_window w in
  if buffer_msec <= 0.0 then nan
  else begin
    let vg = Common.variance_growth shaped in
    let b =
      Common.buffer_cells_per_source ~msec:buffer_msec ~n:Common.n_main
        ~c:Common.c_main
    in
    (Core.Bahadur_rao.evaluate vg ~mu:shaped.Traffic.Process.mean
       ~c:Common.c_main ~b ~n:Common.n_main)
      .Core.Bahadur_rao.log10_bop
  end

let figure_fixed_budget () =
  let series_of label process =
    Common.series ~label
      (Array.to_list windows
      |> List.filter (fun w -> buffer_msec_at_window w > 0.0)
      |> List.map (fun w -> (float_of_int w, bop_at_window process w))
      |> Array.of_list)
  in
  {
    Common.id = "shaping";
    title =
      Printf.sprintf
        "Source shaping vs per-hop loss, %g msec end-to-end over %d hops"
        end_to_end_budget_msec hops;
    xlabel = "shaper window (frames)";
    ylabel = "per-hop log10 P(W > B)";
    series =
      [
        series_of "Z^0.975" (Traffic.Models.z ~a:0.975).Traffic.Models.process;
        series_of "Z^0.7" (Traffic.Models.z ~a:0.7).Traffic.Models.process;
        series_of "MPEG"
          (Traffic.Mpeg.process (Traffic.Mpeg.create ~mean:500.0 ()));
      ];
  }

let run () =
  Ascii_plot.emit (figure_fixed_budget ());
  Common.printf
    "\nEvery point spends the same 200 msec end-to-end: window w costs\n\
     (w-1) x 40 msec of source shaping delay and the remainder is split\n\
     into three per-hop buffers.  Whether shaping pays depends on the\n\
     source's short-term correlations - exactly the quantity the CTS\n\
     isolates - while the Hurst parameter never enters.\n"
