type entry = {
  id : string;
  title : string;
  simulated : bool;
  run : unit -> unit;
}

let () =
  Obs.Registry.declare_counter "experiments.runs";
  Obs.Registry.declare_counter "experiments.failures"

(* Every experiment runs inside a span named [experiment.<id>], so a
   trace sink shows per-experiment wall time and the registry grows a
   [span.experiment.<id>.us] histogram. *)
let run_entry e =
  Obs.Span.with_ ~name:("experiment." ^ e.id) (fun () ->
      Obs.Registry.incr "experiments.runs";
      match e.run () with
      | () -> ()
      | exception exn ->
          Obs.Registry.incr "experiments.failures";
          raise exn)

let all =
  [
    {
      id = "table1";
      title = "Model parameters of V^v, Z^a, S, L (derived)";
      simulated = false;
      run = Exp_table1.run;
    };
    {
      id = "fig1";
      title = "ACF shaping by a and v (schematic)";
      simulated = false;
      run = Exp_fig1.run;
    };
    {
      id = "fig2";
      title = "Sample paths: Z^0.7 vs matched DAR(1), N=10";
      simulated = true;
      run = Exp_fig2.run;
    };
    {
      id = "fig3";
      title = "Analytic ACFs of V^v, Z^a, DAR(p), L";
      simulated = false;
      run = Exp_fig3.run;
    };
    {
      id = "fig4";
      title = "Critical time scale vs buffer (N=100, c=526)";
      simulated = false;
      run = Exp_fig4.run;
    };
    {
      id = "fig5";
      title = "B-R BOP: V^v and Z^a (N=30, c=538)";
      simulated = false;
      run = Exp_fig5.run;
    };
    {
      id = "fig6";
      title = "B-R BOP: Z^a vs DAR(p) vs L, practical buffers";
      simulated = false;
      run = Exp_fig6.run;
    };
    {
      id = "fig7";
      title = "B-R BOP over wide buffer range (crossover)";
      simulated = false;
      run = Exp_fig7.run;
    };
    {
      id = "fig8";
      title = "Simulated CLR: V^v and Z^a";
      simulated = true;
      run = Exp_fig8.run;
    };
    {
      id = "fig9";
      title = "Simulated CLR: Z^a vs DAR(p) vs L";
      simulated = true;
      run = Exp_fig9.run;
    };
    {
      id = "fig10";
      title = "B-R vs Large-N vs simulation (DAR(1) ~ Z^0.975)";
      simulated = true;
      run = Exp_fig10.run;
    };
    {
      id = "ablations";
      title = "Weibull closed form, CTS slope, fluid vs cell, marginal";
      simulated = true;
      run = Exp_ablations.run;
    };
    {
      id = "mpeg";
      title = "CTS of an MPEG GOP source (paper sec. 6.2 future work)";
      simulated = false;
      run = Exp_mpeg.run;
    };
    {
      id = "marginals";
      title = "Frame-size marginal sensitivity (paper sec. 6.1)";
      simulated = true;
      run = Exp_marginals.run;
    };
    {
      id = "spectrum";
      title = "PSD and buffer-induced cutoff frequency (paper sec. 6.2)";
      simulated = false;
      run = Exp_spectrum.run;
    };
    {
      id = "admission";
      title = "Admissible connections per model (paper sec. 5.4 remark)";
      simulated = false;
      run = Exp_admission.run;
    };
    {
      id = "cac";
      title = "Online CAC engine: admissible region, Markov vs LRD";
      simulated = true;
      run = Exp_cac.run;
    };
    {
      id = "shaping";
      title = "Shaping window vs loss at fixed delay budget (extension)";
      simulated = false;
      run = Exp_shaping.run;
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let run_all ?(include_simulated = true) ?(quiet = false) () =
  List.iter
    (fun e ->
      if include_simulated || not e.simulated then begin
        if not quiet then
          Common.printf "\n######## %s: %s ########\n%!" e.id e.title;
        run_entry e
      end)
    all
