let params = { Traffic.Dar.rho = 0.821; weights = [| 1.0 |] }

let marginals () =
  [
    ("gaussian", Traffic.Dar.gaussian_marginal ~mean:Common.mu ~variance:Common.sigma2);
    ( "neg-binomial",
      Traffic.Dar.negative_binomial_marginal ~mean:Common.mu
        ~variance:Common.sigma2 );
    ("gamma", Traffic.Dar.gamma_marginal ~mean:Common.mu ~variance:Common.sigma2);
  ]

let figure_clr () =
  let buffers_msec = [| 0.0; 0.5; 1.0; 2.0; 3.0; 5.0; 8.0; 12.0 |] in
  {
    Common.id = "marginal_clr";
    title =
      "Simulated CLR under different frame-size marginals, equal moments \
       and ACF (DAR(1), N=30, c=538)";
    xlabel = "buffer msec";
    ylabel = "log10 CLR";
    series =
      List.map
        (fun (name, marginal) ->
          let process = Traffic.Dar.make ~name marginal params in
          Common.clr_sim_series ~frames_scale:5 ~label:name process
            ~n:Common.n_main ~c:Common.c_main ~buffers_msec)
        (marginals ());
  }

let figure_cts_invariance () =
  {
    Common.id = "marginal_cts";
    title = "CTS depends on the marginal only through (mu, sigma^2)";
    xlabel = "buffer msec";
    ylabel = "m*_b";
    series =
      List.map
        (fun (name, marginal) ->
          let process = Traffic.Dar.make ~name marginal params in
          Common.cts_series ~label:name process ~n:Common.n_main
            ~c:Common.c_main ~buffers_msec:Common.practical_buffers_msec)
        (marginals ());
  }

let run () =
  Ascii_plot.emit (figure_clr ());
  Ascii_plot.emit (figure_cts_invariance ());
  Common.printf
    "\nWith moments and correlations pinned, the marginals agree to a\n\
     fraction of a decade where losses are well observed (small buffers)\n\
     and stay within about one decade out where the estimates run out of\n\
     loss events - second-order structure, not marginal shape, drives\n\
     buffer dimensioning (paper Section 6.1).\n"
