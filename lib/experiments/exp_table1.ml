type row = {
  model : string;
  v : float option;
  alpha : float option;
  a : string;
  lambda : float option;
  t0_msec : float option;
  m : int option;
}

let composite_row name (c : Traffic.Models.composite) =
  {
    model = name;
    v = Some c.Traffic.Models.v;
    alpha = Some c.Traffic.Models.fbndp.Traffic.Fbndp.alpha;
    a = Printf.sprintf "%.6f" c.Traffic.Models.dar_a;
    lambda = Some (Traffic.Fbndp.lambda c.Traffic.Models.fbndp);
    t0_msec =
      Some (Traffic.Fbndp.fractal_onset_time c.Traffic.Models.fbndp *. 1000.0);
    m = Some c.Traffic.Models.fbndp.Traffic.Fbndp.m;
  }

let rows () =
  let v_rows =
    List.map
      (fun v -> composite_row (Printf.sprintf "V^%g" v) (Traffic.Models.v ~v))
      Traffic.Models.v_values
  in
  let z_row =
    let c = Traffic.Models.z ~a:0.7 in
    {
      (composite_row "Z^a" c) with
      a = String.concat ", " (List.map (Printf.sprintf "%g") Traffic.Models.z_values);
    }
  in
  let l_row =
    let p = Traffic.Models.l_params () in
    {
      model = "L";
      v = None;
      alpha = Some p.Traffic.Fbndp.alpha;
      a = "-";
      lambda = Some (Traffic.Fbndp.lambda p);
      t0_msec = Some (Traffic.Fbndp.fractal_onset_time p *. 1000.0);
      m = Some p.Traffic.Fbndp.m;
    }
  in
  v_rows @ [ z_row; l_row ]

type dar_fit_row = {
  target : string;
  p : int;
  rho : float;
  weights : float array;
}

let dar_fits () =
  List.concat_map
    (fun a ->
      List.map
        (fun p ->
          let params = Traffic.Models.s_params ~a ~p in
          {
            target = Printf.sprintf "Z^%g" a;
            p;
            rho = params.Traffic.Dar.rho;
            weights = params.Traffic.Dar.weights;
          })
        [ 1; 2; 3 ])
    [ 0.975; 0.7 ]

let opt_fmt fmt = function None -> "-" | Some x -> Printf.sprintf fmt x

let run () =
  Common.printf "\n== table1: Model parameters (derived, cf. paper Table 1) ==\n";
  Common.printf "%-8s %-6s %-6s %-28s %-10s %-9s %-3s\n" "model" "v" "alpha" "a"
    "lambda" "T0(msec)" "M";
  List.iter
    (fun r ->
      Common.printf "%-8s %-6s %-6s %-28s %-10s %-9s %-3s\n" r.model
        (opt_fmt "%g" r.v) (opt_fmt "%g" r.alpha) r.a
        (opt_fmt "%.0f" r.lambda) (opt_fmt "%.2f" r.t0_msec)
        (match r.m with None -> "-" | Some m -> string_of_int m))
    (rows ());
  Common.printf "\nDAR(p) fits (S models):\n";
  Common.printf "%-10s %-3s %-7s %s\n" "target" "p" "rho" "a_1..a_p";
  List.iter
    (fun f ->
      Common.printf "%-10s %-3d %-7.3f %s\n" f.target f.p f.rho
        (String.concat ", "
           (Array.to_list (Array.map (Printf.sprintf "%.3f") f.weights))))
    (dar_fits ());
  (* CSV export. *)
  let dir = Common.results_dir () in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out (Filename.concat dir "table1.csv") in
  Printf.fprintf oc "model,v,alpha,a,lambda,t0_msec,m\n";
  List.iter
    (fun r ->
      Printf.fprintf oc "%s,%s,%s,\"%s\",%s,%s,%s\n" r.model (opt_fmt "%g" r.v)
        (opt_fmt "%g" r.alpha) r.a (opt_fmt "%.2f" r.lambda)
        (opt_fmt "%.4f" r.t0_msec)
        (match r.m with None -> "" | Some m -> string_of_int m))
    (rows ());
  Printf.fprintf oc "\ntarget,p,rho,weights\n";
  List.iter
    (fun f ->
      Printf.fprintf oc "%s,%d,%.4f,\"%s\"\n" f.target f.p f.rho
        (String.concat " "
           (Array.to_list (Array.map (Printf.sprintf "%.4f") f.weights))))
    (dar_fits ());
  close_out oc
