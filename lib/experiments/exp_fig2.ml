let n_sources = 10
let path_frames = 1000
let stats_frames = 65536

type summary = {
  label : string;
  mean : float;
  std : float;
  hurst_rs : float;
  hurst_var : float;
}

let models () =
  let z = (Traffic.Models.z ~a:0.7).Traffic.Models.process in
  let dar =
    let params = Traffic.Models.s_params ~a:0.7 ~p:1 in
    let marginal =
      Traffic.Dar.gaussian_marginal ~mean:Common.mu ~variance:Common.sigma2
    in
    Traffic.Dar.make ~name:"DAR(1) matched" marginal params
  in
  [ ("Z^0.7 x10", Traffic.Process.replicate z n_sources);
    ("DAR(1) x10", Traffic.Process.replicate dar n_sources) ]

let figure () =
  let rng = Numerics.Rng.create ~seed:(Common.seed ()) in
  let series =
    List.map
      (fun (label, aggregate) ->
        let path =
          Traffic.Process.generate aggregate (Numerics.Rng.split rng) path_frames
        in
        Common.series ~label
          (Array.mapi (fun i x -> (float_of_int i, x)) path))
      (models ())
  in
  {
    Common.id = "fig2";
    title =
      Printf.sprintf "Sample paths, %d multiplexed sources (%d frames)"
        n_sources path_frames;
    xlabel = "frame";
    ylabel = "aggregate cells/frame";
    series;
  }

let summaries () =
  let rng = Numerics.Rng.create ~seed:(Common.seed () + 1) in
  List.map
    (fun (label, aggregate) ->
      let path =
        Traffic.Process.generate aggregate (Numerics.Rng.split rng) stats_frames
      in
      let s = Stats.Descriptive.summarize path in
      let rs = Stats.Hurst.rescaled_range path in
      let av = Stats.Hurst.aggregated_variance path in
      {
        label;
        mean = s.Stats.Descriptive.mean;
        std = s.Stats.Descriptive.std;
        hurst_rs = rs.Stats.Hurst.h;
        hurst_var = av.Stats.Hurst.h;
      })
    (models ())

let run () =
  let fig = figure () in
  (* The raw paths are long; print the summaries, save the full CSV. *)
  Common.save_figure_csv fig;
  Common.printf "\n== fig2: %s (paths in %s/fig2.csv) ==\n" fig.Common.title
    (Common.results_dir ());
  Common.printf "%-14s %-10s %-9s %-9s %-9s\n" "path" "mean" "std" "H(R/S)"
    "H(var)";
  List.iter
    (fun s ->
      Common.printf "%-14s %-10.1f %-9.1f %-9.3f %-9.3f\n" s.label s.mean s.std
        s.hurst_rs s.hurst_var)
    (summaries ())
