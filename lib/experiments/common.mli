(** Shared infrastructure for the paper-reproduction experiments: the
    paper's scenario constants, output formatting, CSV export, and the
    simulation scale knobs.

    Scale environment variables (all optional):
    - [CTS_FRAMES]: frames per replication (default 20_000; the paper
      used 500_000),
    - [CTS_REPS]: replications (default 3; the paper used 60),
    - [CTS_SEED]: master seed (default 1996),
    - [CTS_RESULTS_DIR]: CSV output directory (default [results]). *)

val mu : float
(** Mean frame size: 500 cells/frame. *)

val sigma2 : float
(** Frame-size variance: 5000. *)

val ts : float
(** Frame duration: 0.04 s. *)

val n_fig4 : int
(** Fig. 4 multiplexes 100 sources. *)

val c_fig4 : float
(** Fig. 4 bandwidth per source: 526 cells/frame. *)

val n_main : int
(** Figs. 5–10 multiplex 30 sources. *)

val c_main : float
(** Figs. 5–10 bandwidth per source: 538 cells/frame. *)

val frames : unit -> int
val reps : unit -> int
val seed : unit -> int
val results_dir : unit -> string

val practical_buffers_msec : float array
(** The realistic buffer axis of Figs. 4–6 and 8–10: 0.5 to 30 msec. *)

val wide_buffers_msec : float array
(** The Fig. 7 axis: logarithmic up to 2000 msec. *)

(* {2 Figures as data} *)

type series = {
  label : string;
  points : (float * float) array;
  ci_half_width : float array option;
      (** per-point CI half-widths, when simulated *)
}

type figure = {
  id : string;  (** e.g. "fig6a" *)
  title : string;
  xlabel : string;
  ylabel : string;
  series : series list;
}

val series : label:string -> (float * float) array -> series
val series_ci : label:string -> (float * Stats.Ci.interval) array -> series

val printf : ('a, unit, string, unit) format4 -> 'a
(** Formatted experiment output via {!Obs.Sink.printf} (the human
    sink): respects [--quiet], never touches stdout directly.
    Experiment modules must use this instead of [Printf.printf]
    (lint rule H1). *)

val print_figure : figure -> unit
(** Aligned table on stdout: one row per x value, one column per
    series (series must share their x grid, which all of ours do). *)

val save_figure_csv : figure -> unit
(** Long-format CSV [series,x,y,ci_half_width] at
    [results_dir ^ "/" ^ id ^ ".csv"]. *)

val emit : figure -> unit
(** [print_figure] followed by [save_figure_csv]. *)

(* {2 Analytic helpers} *)

val variance_growth : Traffic.Process.t -> Core.Variance_growth.t

val buffer_cells_per_source : msec:float -> n:int -> c:float -> float
(** Per-source buffer (cells) corresponding to a total buffer drain
    time in msec at total capacity [n * c]. *)

val bop_series :
  label:string ->
  Traffic.Process.t ->
  n:int ->
  c:float ->
  buffers_msec:float array ->
  series
(** Bahadur–Rao log10 BOP vs buffer (msec). *)

val cts_series :
  label:string ->
  Traffic.Process.t ->
  n:int ->
  c:float ->
  buffers_msec:float array ->
  series
(** Critical time scale m*_b vs buffer (msec). *)

val acf_series :
  label:string -> Traffic.Process.t -> lags:int array -> series

val clr_sim_series :
  ?frames_scale:int ->
  label:string ->
  Traffic.Process.t ->
  n:int ->
  c:float ->
  buffers_msec:float array ->
  series
(** Simulated finite-buffer log10 CLR with CIs, at the current scale
    knobs.  Zero-loss points are reported as [neg_infinity].
    [frames_scale] (default 1) multiplies CTS_FRAMES for this series —
    used to push cheap models (DAR) deeper into the tail than the
    event-driven LRD models can afford. *)

val log10_or_floor : float -> float
(** [log10 x], with [neg_infinity] for [x <= 0]. *)
