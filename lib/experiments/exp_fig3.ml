(* C1 waiver: constant lag grid, written once here and never
   mutated. *)
let[@lint.allow "C1"] short_lags = Array.init 20 (fun i -> i + 1)

let long_lags =
  (* log-spaced 1 .. 1000, deduplicated after rounding *)
  Numerics.Float_array.logspace ~lo:1.0 ~hi:1000.0 ~n:25
  |> Array.map (fun x -> int_of_float (Float.round x))
  |> Array.to_list |> List.sort_uniq Int.compare |> Array.of_list

let figure_a () =
  {
    Common.id = "fig3a";
    title = "ACFs of V^v (short-term correlations nearly identical)";
    xlabel = "lag k";
    ylabel = "r(k)";
    series =
      List.map
        (fun v ->
          Common.acf_series
            ~label:(Printf.sprintf "V^%g" v)
            (Traffic.Models.v ~v).Traffic.Models.process ~lags:short_lags)
        Traffic.Models.v_values;
  }

let figure_b () =
  let z_series =
    List.map
      (fun a ->
        Common.acf_series
          ~label:(Printf.sprintf "Z^%g" a)
          (Traffic.Models.z ~a).Traffic.Models.process ~lags:long_lags)
      Traffic.Models.z_values
  in
  let l_series = Common.acf_series ~label:"L" (Traffic.Models.l ()) ~lags:long_lags in
  {
    Common.id = "fig3b";
    title = "ACFs of Z^a and L (long-term correlations agree)";
    xlabel = "lag k";
    ylabel = "r(k)";
    series = z_series @ [ l_series ];
  }

let dar_panel ~id ~a =
  let z = (Traffic.Models.z ~a).Traffic.Models.process in
  let dar_series =
    List.map
      (fun p ->
        Common.acf_series
          ~label:(Printf.sprintf "DAR(%d)" p)
          (Traffic.Models.s ~a ~p) ~lags:short_lags)
      [ 1; 2; 3 ]
  in
  {
    Common.id = id;
    title = Printf.sprintf "DAR(p) matches the first p lags of Z^%g" a;
    xlabel = "lag k";
    ylabel = "r(k)";
    series = Common.acf_series ~label:(Printf.sprintf "Z^%g" a) z ~lags:short_lags :: dar_series;
  }

let figure_c () = dar_panel ~id:"fig3c" ~a:0.975
let figure_d () = dar_panel ~id:"fig3d" ~a:0.7

let run () =
  Ascii_plot.emit (figure_a ());
  Ascii_plot.emit (figure_b ());
  Ascii_plot.emit (figure_c ());
  Ascii_plot.emit (figure_d ())
