(** The experiment registry: maps stable identifiers to runnable
    reproductions, for the CLI and the bench harness. *)

type entry = {
  id : string;
  title : string;
  simulated : bool;  (** true when cost scales with CTS_FRAMES/CTS_REPS *)
  run : unit -> unit;
}

val all : entry list
(** In paper order: table1, fig1 .. fig10, then ablations. *)

val find : string -> entry option

val run_entry : entry -> unit
(** Run one experiment inside an [experiment.<id>] telemetry span,
    ticking [experiments.runs] (and [experiments.failures] when it
    raises — the exception still propagates). *)

val run_all : ?include_simulated:bool -> ?quiet:bool -> unit -> unit
(** [quiet] suppresses the per-experiment banner lines.  Each entry
    runs through {!run_entry}. *)
