let buffers_msec = Common.practical_buffers_msec

let figure_weibull () =
  let n = Common.n_main and c = Common.c_main in
  let fgn_h = 0.86 in
  let fgn =
    Traffic.Fgn.process ~h:fgn_h ~mean:Common.mu ~variance:Common.sigma2 ()
  in
  let l = Traffic.Models.l () in
  let l_params = Traffic.Models.l_params () in
  let weibull_series label source =
    Common.series ~label
      (Array.map
         (fun msec ->
           let b = Common.buffer_cells_per_source ~msec ~n ~c in
           (msec, Core.Weibull_lrd.log10_bop source ~c ~b ~n))
         buffers_msec)
  in
  [
    Common.bop_series ~label:"fGn B-R" fgn ~n ~c ~buffers_msec;
    weibull_series "fGn Weibull"
      { Core.Weibull_lrd.h = fgn_h; g = 1.0; mu = Common.mu; variance = Common.sigma2 };
    Common.bop_series ~label:"L B-R" l ~n ~c ~buffers_msec;
    weibull_series "L Weibull"
      {
        Core.Weibull_lrd.h = Traffic.Fbndp.hurst l_params;
        g = Traffic.Fbndp.g_factor l_params ~ts:Common.ts;
        mu = Common.mu;
        variance = Common.sigma2;
      };
  ]
  |> fun series ->
  {
    Common.id = "ablation_weibull";
    title = "Closed-form Weibull (eq. 6) vs numeric Bahadur-Rao (N=30, c=538)";
    xlabel = "buffer msec";
    ylabel = "log10 P(W > B)";
    series;
  }

let figure_cts_closed_form () =
  let n = Common.n_main and c = Common.c_main in
  let l = Traffic.Models.l () in
  let h = Option.get l.Traffic.Process.hurst in
  let vg = Common.variance_growth l in
  let exact =
    Common.series ~label:"exact m*"
      (Array.map
         (fun msec ->
           let b = Common.buffer_cells_per_source ~msec ~n ~c in
           let a = Core.Cts.analyze vg ~mu:Common.mu ~c ~b in
           (msec, float_of_int a.Core.Cts.m_star))
         buffers_msec)
  in
  let closed =
    Common.series ~label:"H b/((1-H)(c-mu))"
      (Array.map
         (fun msec ->
           let b = Common.buffer_cells_per_source ~msec ~n ~c in
           (msec, Core.Cts.lrd_closed_form ~h ~mu:Common.mu ~c ~b))
         buffers_msec)
  in
  {
    Common.id = "ablation_cts_closed_form";
    title = "CTS of L: integer minimiser vs Appendix closed form";
    xlabel = "buffer msec";
    ylabel = "m*";
    series = [ exact; closed ];
  }

let fluid_vs_cell () =
  (* A small, loss-heavy scenario so the exact cell simulator finishes
     quickly: 10 DAR(1) sources at 93% utilisation. *)
  let model = Traffic.Models.s ~a:0.975 ~p:1 in
  let n = 10 and c = 538.0 in
  let frames = Stdlib.min (Common.frames ()) 20_000 in
  let service = float_of_int n *. c in
  let buffers = [| 1.0; 4.0; 10.0; 20.0 |] in
  Array.map
    (fun msec ->
      let total_cells =
        Queueing.Units.buffer_cells_of_msec ~msec
          ~service_cells_per_frame:service ~ts:Common.ts
      in
      let rng = Numerics.Rng.create ~seed:(Common.seed ()) in
      let aggregate =
        (Traffic.Process.replicate model n).Traffic.Process.spawn
          (Numerics.Rng.jump_to_substream rng 0)
      in
      let fluid =
        Queueing.Fluid_mux.clr ~next_frame:aggregate ~service
          ~buffer:total_cells ~frames ()
      in
      let rng = Numerics.Rng.create ~seed:(Common.seed ()) in
      let sources =
        Array.init n (fun i ->
            model.Traffic.Process.spawn
              (Numerics.Rng.jump_to_substream
                 (Numerics.Rng.jump_to_substream rng 0)
                 i))
      in
      let cell =
        Queueing.Cell_mux.clr ~sources ~service_cells_per_frame:service
          ~buffer_cells:(int_of_float total_cells)
          ~ts:Common.ts ~frames ()
      in
      (msec, fluid.Queueing.Fluid_mux.clr, cell.Queueing.Cell_mux.clr))
    buffers

let figure_marginal () =
  let n = Common.n_main and c = Common.c_main in
  let base = (Traffic.Models.z ~a:0.975).Traffic.Models.process in
  let scaled_variance factor =
    (* Same ACF, scaled variance: emulates a heavier marginal while
       keeping second-order structure. *)
    {
      base with
      Traffic.Process.name = Printf.sprintf "var x%g" factor;
      variance = base.Traffic.Process.variance *. factor;
    }
  in
  let series factor =
    let p = scaled_variance factor in
    Common.cts_series
      ~label:(Printf.sprintf "sigma^2 x%g" factor)
      p ~n ~c ~buffers_msec
  in
  {
    Common.id = "ablation_marginal";
    title = "CTS sensitivity to marginal variance (Z^0.975 ACF held fixed)";
    xlabel = "buffer msec";
    ylabel = "m*";
    series = [ series 0.5; series 1.0; series 2.0 ];
  }

let run () =
  Ascii_plot.emit (figure_weibull ());
  Ascii_plot.emit (figure_cts_closed_form ());
  Common.printf "\n== ablation_fluid_vs_cell: fluid vs exact cell-level CLR ==\n";
  Common.printf "%-12s %-14s %-14s\n" "buffer msec" "fluid CLR" "cell CLR";
  Array.iter
    (fun (b, f, c) -> Common.printf "%-12g %-14.3e %-14.3e\n" b f c)
    (fluid_vs_cell ());
  Ascii_plot.emit (figure_marginal ())
