let buffers_msec = Common.wide_buffers_msec

let bop label process =
  Common.bop_series ~label process ~n:Common.n_main ~c:Common.c_main
    ~buffers_msec

let figure_a () =
  {
    Common.id = "fig7a";
    title = "B-R BOP, wide buffer range: Z^0.975 vs DAR(p) vs L";
    xlabel = "buffer msec";
    ylabel = "log10 P(W > B)";
    series =
      bop "Z^0.975" (Traffic.Models.z ~a:0.975).Traffic.Models.process
      :: List.map
           (fun p ->
             bop (Printf.sprintf "DAR(%d)" p) (Traffic.Models.s ~a:0.975 ~p))
           [ 1; 2; 3 ]
      @ [ bop "L" (Traffic.Models.l ()) ];
  }

let figure_b () =
  {
    Common.id = "fig7b";
    title = "B-R BOP, wide buffer range: Z^0.7 vs DAR(p) vs L";
    xlabel = "buffer msec";
    ylabel = "log10 P(W > B)";
    series =
      bop "Z^0.7" (Traffic.Models.z ~a:0.7).Traffic.Models.process
      :: List.map
           (fun p ->
             bop (Printf.sprintf "DAR(%d)" p) (Traffic.Models.s ~a:0.7 ~p))
           [ 1; 2; 3 ]
      @ [ bop "L" (Traffic.Models.l ()) ];
  }

let crossover_msec ~a ~p =
  let z = bop "z" (Traffic.Models.z ~a).Traffic.Models.process in
  let dar = bop "dar" (Traffic.Models.s ~a ~p) in
  let l = bop "l" (Traffic.Models.l ()) in
  let n = Array.length buffers_msec in
  let rec scan i =
    if i >= n then None
    else begin
      let _, zv = z.Common.points.(i) in
      let _, dv = dar.Common.points.(i) in
      let _, lv = l.Common.points.(i) in
      if Float.abs (lv -. zv) < Float.abs (dv -. zv) then
        Some buffers_msec.(i)
      else scan (i + 1)
    end
  in
  scan 0

let run () =
  Ascii_plot.emit ~logx:true (figure_a ());
  Ascii_plot.emit ~logx:true (figure_b ());
  List.iter
    (fun a ->
      List.iter
        (fun p ->
          match crossover_msec ~a ~p with
          | Some b ->
              Common.printf
                "crossover: L beats DAR(%d) for Z^%g from B ~ %.0f msec\n" p a b
          | None ->
              Common.printf
                "crossover: L never beats DAR(%d) for Z^%g on this grid\n" p a)
        [ 1; 2; 3 ])
    [ 0.975; 0.7 ]
