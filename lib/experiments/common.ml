let mu = 500.0
let sigma2 = 5000.0
let ts = Traffic.Models.ts
let n_fig4 = 100
let c_fig4 = 526.0
let n_main = 30
let c_main = 538.0

let env_int name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v when v > 0 -> v
      | _ ->
          Printf.eprintf "warning: ignoring invalid %s=%S\n%!" name s;
          default)

let frames () = env_int "CTS_FRAMES" 20_000
let reps () = env_int "CTS_REPS" 3
let seed () = env_int "CTS_SEED" 1996

let results_dir () =
  match Sys.getenv_opt "CTS_RESULTS_DIR" with
  | Some d when String.trim d <> "" -> d
  | _ -> "results"

let practical_buffers_msec =
  [| 0.5; 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 8.0; 10.0; 12.0; 15.0; 20.0; 25.0; 30.0 |]

let wide_buffers_msec =
  Numerics.Float_array.logspace ~lo:1.0 ~hi:2000.0 ~n:24

type series = {
  label : string;
  points : (float * float) array;
  ci_half_width : float array option;
}

type figure = {
  id : string;
  title : string;
  xlabel : string;
  ylabel : string;
  series : series list;
}

let series ~label points = { label; points; ci_half_width = None }

let series_ci ~label points =
  {
    label;
    points = Array.map (fun (x, ci) -> (x, ci.Stats.Ci.point)) points;
    ci_half_width = Some (Array.map (fun (_, ci) -> ci.Stats.Ci.half_width) points);
  }

(* All experiment text goes through the process-wide human sink so
   [--quiet] silences it and a Jsonl sink captures it; lint rule H1
   keeps stdout printers out of library code. *)
let printf fmt = Obs.Sink.printf fmt

let format_value v =
  match Float.classify_float v with
  | Float.FP_infinite -> if v > 0.0 then "+inf" else "-inf"
  | Float.FP_nan -> "nan"
  | _ when Float.abs v >= 1e6 || (Float.abs v < 1e-4 && not (Float.equal v 0.0))
    ->
      Printf.sprintf "%.4e" v
  | _ -> Printf.sprintf "%.4f" v

let print_figure fig =
  printf "\n== %s: %s ==\n" fig.id fig.title;
  match fig.series with
  | [] -> printf "(empty figure)\n"
  | first :: _ ->
      let xs = Array.map fst first.points in
      let aligned =
        List.for_all
          (fun s ->
            Array.length s.points = Array.length xs
            && Array.for_all2 (fun (x, _) x' -> Float.equal x x') s.points xs)
          fig.series
      in
      if aligned then begin
        let width = 14 in
        printf "%-12s" fig.xlabel;
        List.iter (fun s -> printf " %*s" width s.label) fig.series;
        printf "\n";
        Array.iteri
          (fun i x ->
            printf "%-12s" (format_value x);
            List.iter
              (fun s -> printf " %*s" width (format_value (snd s.points.(i))))
              fig.series;
            printf "\n")
          xs;
        printf "(y: %s)\n" fig.ylabel
      end
      else
        List.iter
          (fun s ->
            printf "-- %s --\n" s.label;
            Array.iter
              (fun (x, y) -> printf "  %s  %s\n" (format_value x) (format_value y))
              s.points)
          fig.series

let figure_rows fig =
  List.fold_left (fun acc s -> acc + Array.length s.points) 0 fig.series

let ensure_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let save_figure_csv fig =
  let dir = results_dir () in
  ensure_dir dir;
  let path = Filename.concat dir (fig.id ^ ".csv") in
  let oc = open_out path in
  (try
     Printf.fprintf oc "# %s: %s\n# x: %s; y: %s\nseries,x,y,ci_half_width\n"
       fig.id fig.title fig.xlabel fig.ylabel;
     List.iter
       (fun s ->
         Array.iteri
           (fun i (x, y) ->
             let hw =
               match s.ci_half_width with
               | Some h -> Printf.sprintf "%.8g" h.(i)
               | None -> ""
             in
             Printf.fprintf oc "%s,%.8g,%.8g,%s\n" s.label x y hw)
           s.points)
       fig.series
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc

let () =
  Obs.Registry.declare_counter "experiments.figures";
  Obs.Registry.declare_counter "experiments.rows"

let emit fig =
  Obs.Registry.incr "experiments.figures";
  Obs.Registry.incr ~by:(figure_rows fig) "experiments.rows";
  print_figure fig;
  save_figure_csv fig

let variance_growth (p : Traffic.Process.t) =
  Core.Variance_growth.create ~acf:p.Traffic.Process.acf
    ~variance:p.Traffic.Process.variance

let buffer_cells_per_source ~msec ~n ~c =
  let total =
    Queueing.Units.buffer_cells_of_msec ~msec
      ~service_cells_per_frame:(float_of_int n *. c)
      ~ts
  in
  total /. float_of_int n

let log10_or_floor x = if x > 0.0 then log10 x else neg_infinity

let bop_series ~label process ~n ~c ~buffers_msec =
  let vg = variance_growth process in
  let points =
    Array.map
      (fun msec ->
        let b = buffer_cells_per_source ~msec ~n ~c in
        let r = Core.Bahadur_rao.evaluate vg ~mu:process.Traffic.Process.mean ~c ~b ~n in
        (msec, r.Core.Bahadur_rao.log10_bop))
      buffers_msec
  in
  series ~label points

let cts_series ~label process ~n ~c ~buffers_msec =
  let vg = variance_growth process in
  let points =
    Array.map
      (fun msec ->
        let b = buffer_cells_per_source ~msec ~n ~c in
        let a = Core.Cts.analyze vg ~mu:process.Traffic.Process.mean ~c ~b in
        (msec, float_of_int a.Core.Cts.m_star))
      buffers_msec
  in
  series ~label points

let acf_series ~label (process : Traffic.Process.t) ~lags =
  series ~label
    (Array.map
       (fun k -> (float_of_int k, process.Traffic.Process.acf k))
       lags)

let clr_sim_series ?(frames_scale = 1) ~label process ~n ~c ~buffers_msec =
  assert (frames_scale >= 1);
  let scenario = Queueing.Scenario.make ~model:process ~n ~c ~ts in
  let intervals =
    Queueing.Scenario.clr_curve scenario ~buffers_msec
      ~frames:(frames () * frames_scale)
      ~reps:(reps ()) ~seed:(seed ())
  in
  let points =
    Array.mapi
      (fun i ci -> (buffers_msec.(i), log10_or_floor ci.Stats.Ci.point))
      intervals
  in
  {
    label;
    points;
    (* Half-width reported in CLR units (not log10) for transparency. *)
    ci_half_width = Some (Array.map (fun ci -> ci.Stats.Ci.half_width) intervals);
  }
