(* The online-CAC view of the paper's Section 5.4 remark: how many VBR
   video connections does a switch admit under Markov (DAR) vs LRD
   models of the same traffic, at practical buffer sizes — answered by
   the live engine instead of the offline calculator, with a stochastic
   connection workload replayed on top to exercise the decision
   cache. *)

let capacity = 16140.0
let buffers_msec = [ 10.0; 20.0; 30.0 ]
let class_names = [ "z0.975"; "dar1"; "dar3"; "l" ]
let target_clr = 1e-6

let requests () = Stdlib.min 10_000 (Common.frames ())

let outcomes () =
  Cac.Sweep.run
    (Cac.Sweep.grid ~capacity ~requests:(requests ()) ~seed:(Common.seed ())
       ~class_names ~buffers_msec ~target_clrs:[ target_clr ] ())

let figure rows =
  {
    Common.id = "cac_region";
    title =
      Printf.sprintf
        "Engine-admitted connections on a %.0f cells/frame link, CLR <= %g"
        capacity target_clr;
    xlabel = "buffer msec";
    ylabel = "admitted connections";
    series =
      List.map
        (fun name ->
          Common.series ~label:name
            (Array.of_list
               (List.filter_map
                  (fun (row : Cac.Sweep.row) ->
                    if row.Cac.Sweep.scenario.Cac.Sweep.class_name = name then
                      Some
                        ( row.Cac.Sweep.scenario.Cac.Sweep.buffer_msec,
                          float_of_int row.Cac.Sweep.n_max )
                    else None)
                  (Array.to_list rows))))
        class_names;
  }

let run () =
  let outcomes = outcomes () in
  (* Without armed faults every scenario must produce a row; surface a
     failed cell as a failed experiment rather than a silent gap. *)
  (match Cac.Sweep.failures outcomes with
  | [] -> ()
  | f :: _ ->
      failwith
        (Printf.sprintf "cac sweep: scenario %s/%gms failed: %s"
           f.Cac.Sweep.scenario.Cac.Sweep.class_name
           f.Cac.Sweep.scenario.Cac.Sweep.buffer_msec f.Cac.Sweep.error));
  let rows = Cac.Sweep.rows outcomes in
  Ascii_plot.emit (figure rows);
  Common.printf
    "\ncapacity-planning sweep (replayed %d connection attempts per cell):\n"
    (requests ());
  Cac.Sweep.print_table outcomes;
  (* The paper's point, restated at the connection level: the Markov
     model prices LRD traffic correctly at practical buffers. *)
  let n_at name buffer =
    Array.to_list rows
    |> List.find_map (fun (row : Cac.Sweep.row) ->
           let s = row.Cac.Sweep.scenario in
           if
             s.Cac.Sweep.class_name = name
             && Float.equal s.Cac.Sweep.buffer_msec buffer
           then Some row.Cac.Sweep.n_max
           else None)
    |> Option.get
  in
  List.iter
    (fun buffer ->
      Common.printf
        "buffer %2g msec: Z^0.975 admits %d, DAR(3) %d (gap %d), L %d\n" buffer
        (n_at "z0.975" buffer) (n_at "dar3" buffer)
        (abs ((n_at "z0.975" buffer) - n_at "dar3" buffer))
        (n_at "l" buffer))
    buffers_msec
