(** Admissible region through the online CAC engine: Markov vs LRD
    source models at 10/20/30 msec buffers (paper sec. 5.4 remark),
    with a replayed connection workload per grid cell. *)

val outcomes : unit -> Cac.Sweep.outcome array
(** The sweep behind the figure, at the current scale knobs. *)

val run : unit -> unit
