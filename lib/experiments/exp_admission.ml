let link_capacity = 16140.0
let buffers_msec = [| 2.0; 5.0; 10.0; 15.0; 20.0; 25.0; 30.0 |]

let models () =
  ("Z^0.975", (Traffic.Models.z ~a:0.975).Traffic.Models.process)
  :: List.map
       (fun p -> (Printf.sprintf "DAR(%d)" p, Traffic.Models.s ~a:0.975 ~p))
       [ 1; 2; 3 ]
  @ [ ("L", Traffic.Models.l ()) ]

let admissible process ~buffer_msec ~target_clr =
  let vg = Common.variance_growth process in
  let total_buffer =
    Queueing.Units.buffer_cells_of_msec ~msec:buffer_msec
      ~service_cells_per_frame:link_capacity ~ts:Common.ts
  in
  Core.Admission.max_admissible vg ~mu:process.Traffic.Process.mean
    ~total_capacity:link_capacity ~total_buffer ~target_clr

let figure ~target_clr =
  {
    Common.id = Printf.sprintf "admission_%g" (-.log10 target_clr);
    title =
      Printf.sprintf
        "Admissible connections on a %.0f cells/frame link, CLR <= %g"
        link_capacity target_clr;
    xlabel = "buffer msec";
    ylabel = "max connections";
    series =
      List.map
        (fun (label, process) ->
          Common.series ~label
            (Array.map
               (fun buffer_msec ->
                 ( buffer_msec,
                   float_of_int (admissible process ~buffer_msec ~target_clr) ))
               buffers_msec))
        (models ());
  }

let max_count_gap ~target_clr =
  let z = (Traffic.Models.z ~a:0.975).Traffic.Models.process in
  let gap = ref 0 in
  List.iter
    (fun p ->
      let dar = Traffic.Models.s ~a:0.975 ~p in
      Array.iter
        (fun buffer_msec ->
          let nz = admissible z ~buffer_msec ~target_clr in
          let nd = admissible dar ~buffer_msec ~target_clr in
          gap := Stdlib.max !gap (abs (nz - nd)))
        buffers_msec)
    [ 1; 2; 3 ];
  !gap

let run () =
  List.iter
    (fun target_clr ->
      Ascii_plot.emit (figure ~target_clr);
      Common.printf
        "largest DAR(p) vs Z^0.975 admission gap at CLR %g: %d connections\n"
        target_clr
        (max_count_gap ~target_clr))
    [ 1e-6; 1e-9 ]
