(** Exact cell-level ATM multiplexer: a G/D/1/B queue fed by the merged
    cell streams of [N] frame-synchronised sources, each emitting its
    per-frame cells equispaced over the frame (deterministic
    smoothing), served at a deterministic rate.

    This is the paper's literal simulation model.  It costs O(cells log
    cells) per frame, so it is used to validate the fluid approximation
    ({!Fluid_mux}) at moderate scale rather than to run the full
    experiment grid.  Like {!Fluid_mux}, every simulated frame draws
    the [queueing.mux.step] fault point once. *)

type result = {
  clr : float;
  offered_cells : int;
  lost_cells : int;
  frames : int;
}

val clr :
  sources:(unit -> float) array ->
  service_cells_per_frame:float ->
  buffer_cells:int ->
  ts:float ->
  frames:int ->
  ?warmup:int ->
  unit ->
  result
(** [sources] yield per-frame cell counts (rounded to integers >= 0);
    an arriving cell is dropped when [buffer_cells] cells are already
    waiting (the cell in service occupies no buffer slot). *)
