type result = {
  clr : float;
  offered_cells : int;
  lost_cells : int;
  frames : int;
}

(* Queue state threaded across frames. *)
type state = {
  mutable queue : int;  (** cells waiting, excluding the one in service *)
  mutable in_service : bool;
  mutable next_departure : float;  (** absolute time, meaningful when in_service *)
}

let simulate_frame state ~arrivals ~service_time ~buffer_cells =
  (* arrivals: sorted absolute times within this frame. *)
  let lost = ref 0 in
  let serve_until t =
    while state.in_service && state.next_departure <= t do
      if state.queue > 0 then begin
        state.queue <- state.queue - 1;
        state.next_departure <- state.next_departure +. service_time
      end
      else state.in_service <- false
    done
  in
  Array.iter
    (fun ta ->
      serve_until ta;
      if not state.in_service then begin
        state.in_service <- true;
        state.next_departure <- ta +. service_time
      end
      else if state.queue >= buffer_cells then incr lost
      else state.queue <- state.queue + 1)
    arrivals;
  (* Departures after the last arrival are caught by the serve_until
     call at the next frame's first arrival. *)
  !lost

let clr ~sources ~service_cells_per_frame ~buffer_cells ~ts ~frames ?warmup () =
  assert (frames > 0 && service_cells_per_frame > 0.0 && buffer_cells >= 0);
  let warmup = match warmup with Some w -> w | None -> frames / 20 in
  let service_time = ts /. service_cells_per_frame in
  let state = { queue = 0; in_service = false; next_departure = 0.0 } in
  let offered = ref 0 and lost = ref 0 in
  let run_frame n ~count =
    (* Same chaos hook as the fluid model: one draw per frame. *)
    Resilience.Fault.inject "queueing.mux.step";
    let frame_start = float_of_int n *. ts in
    (* Gather this frame's arrivals from every source, equispaced with
       a half-slot offset so arrivals avoid the frame boundary. *)
    let arrivals = ref [] in
    Array.iter
      (fun source ->
        let cells = Stdlib.max 0 (int_of_float (Float.round (source ()))) in
        if count then offered := !offered + cells;
        if cells > 0 then begin
          let spacing = ts /. float_of_int cells in
          for i = 0 to cells - 1 do
            arrivals :=
              (frame_start +. ((float_of_int i +. 0.5) *. spacing)) :: !arrivals
          done
        end)
      sources;
    let arrivals = Array.of_list !arrivals in
    Array.sort Float.compare arrivals;
    let l = simulate_frame state ~arrivals ~service_time ~buffer_cells in
    if count then lost := !lost + l
  in
  for n = 0 to warmup - 1 do
    run_frame n ~count:false
  done;
  for n = warmup to warmup + frames - 1 do
    run_frame n ~count:true
  done;
  {
    clr =
      (if !offered > 0 then float_of_int !lost /. float_of_int !offered
       else 0.0);
    offered_cells = !offered;
    lost_cells = !lost;
    frames;
  }
