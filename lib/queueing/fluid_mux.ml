type finite_result = {
  clr : float;
  offered_cells : float;
  lost_cells : float;
  frames : int;
}

let finite_buffer_step ~w ~arrivals ~service ~buffer =
  assert (buffer >= 0.0);
  let net = w +. arrivals -. service in
  let lost = Stdlib.max 0.0 (net -. buffer) in
  let w' = Stdlib.min (Stdlib.max net 0.0) buffer in
  (w', lost)

let default_warmup frames = frames / 20

let clr_multi ~next_frame ~service ~buffers ~frames ?warmup () =
  assert (frames > 0 && service > 0.0);
  let warmup = match warmup with Some w -> w | None -> default_warmup frames in
  let k = Array.length buffers in
  let w = Array.make k 0.0 in
  let lost = Array.make k 0.0 in
  let offered = ref 0.0 in
  for _ = 1 to warmup do
    (* Chaos runs cover the offline validation path too: one armed
       [queueing.mux.step] draw per simulated frame (no-op while the
       fault registry is disarmed). *)
    Resilience.Fault.inject "queueing.mux.step";
    let a = next_frame () in
    for i = 0 to k - 1 do
      let w', _ = finite_buffer_step ~w:w.(i) ~arrivals:a ~service ~buffer:buffers.(i) in
      w.(i) <- w'
    done
  done;
  for _ = 1 to frames do
    Resilience.Fault.inject "queueing.mux.step";
    let a = next_frame () in
    offered := !offered +. a;
    for i = 0 to k - 1 do
      let w', l = finite_buffer_step ~w:w.(i) ~arrivals:a ~service ~buffer:buffers.(i) in
      w.(i) <- w';
      lost.(i) <- lost.(i) +. l
    done
  done;
  Array.init k (fun i ->
      {
        clr = (if !offered > 0.0 then lost.(i) /. !offered else 0.0);
        offered_cells = !offered;
        lost_cells = lost.(i);
        frames;
      })

let clr ~next_frame ~service ~buffer ~frames ?warmup () =
  (clr_multi ~next_frame ~service ~buffers:[| buffer |] ~frames ?warmup ()).(0)

type workload_stats = {
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
  frames : int;
}

let workload_stats ~next_frame ~service ~frames ?warmup () =
  assert (frames > 0 && service > 0.0);
  let warmup = match warmup with Some w -> w | None -> default_warmup frames in
  let w = ref 0.0 in
  for _ = 1 to warmup do
    w := Stdlib.max 0.0 (!w +. next_frame () -. service)
  done;
  let samples = Array.make frames 0.0 in
  for i = 0 to frames - 1 do
    w := Stdlib.max 0.0 (!w +. next_frame () -. service);
    samples.(i) <- !w
  done;
  let quantile = Numerics.Float_array.quantile samples in
  {
    mean = Numerics.Float_array.mean samples;
    p50 = quantile 0.5;
    p95 = quantile 0.95;
    p99 = quantile 0.99;
    max = Numerics.Float_array.max samples;
    frames;
  }

let workload_tail ~next_frame ~service ~thresholds ~frames ?warmup () =
  assert (frames > 0 && service > 0.0);
  let warmup = match warmup with Some w -> w | None -> default_warmup frames in
  let k = Array.length thresholds in
  let exceed = Array.make k 0 in
  let w = ref 0.0 in
  for _ = 1 to warmup do
    w := Stdlib.max 0.0 (!w +. next_frame () -. service)
  done;
  for _ = 1 to frames do
    w := Stdlib.max 0.0 (!w +. next_frame () -. service);
    for i = 0 to k - 1 do
      if !w > thresholds.(i) then exceed.(i) <- exceed.(i) + 1
    done
  done;
  Array.init k (fun i ->
      (thresholds.(i), float_of_int exceed.(i) /. float_of_int frames))
