(** Frame-level fluid model of an ATM multiplexer.

    Within one frame of duration [T_s], each source emits its cells
    equispaced (the paper's deterministic smoothing) and the server
    drains at the constant rate [C] cells/frame, so both the aggregate
    input and the output are constant-rate fluids inside the frame.
    The buffer content therefore evolves piecewise linearly and each
    frame admits a closed form for both the end-of-frame workload and
    the overflow volume:

    {v
      W' = min(max(W + A - C, 0), B)
      loss = max(0, W + A - C - B)
    v}

    where [A] is the aggregate number of cells in the frame.  This is
    exact for the fluid dynamics because the net rate [A - C] has a
    constant sign within the frame, so the trajectory can only hit one
    boundary.  The cell-level granularity error is bounded by one cell
    per source per frame and is validated against {!Cell_mux} in the
    test suite. *)

type finite_result = {
  clr : float;  (** lost cells / offered cells *)
  offered_cells : float;
  lost_cells : float;
  frames : int;
}

val finite_buffer_step :
  w:float -> arrivals:float -> service:float -> buffer:float -> float * float
(** [finite_buffer_step ~w ~arrivals ~service ~buffer] is
    [(w', lost)] for one frame. *)

val clr :
  next_frame:(unit -> float) ->
  service:float ->
  buffer:float ->
  frames:int ->
  ?warmup:int ->
  unit ->
  finite_result
(** Cell loss rate of a finite-buffer multiplexer fed by
    [next_frame] aggregate frame sizes, after discarding [warmup]
    frames (default [frames / 20]).  Each simulated frame draws the
    [queueing.mux.step] fault point once, so chaos specs cover the
    offline validation path (a no-op while {!Resilience.Fault} is
    disarmed). *)

val clr_multi :
  next_frame:(unit -> float) ->
  service:float ->
  buffers:float array ->
  frames:int ->
  ?warmup:int ->
  unit ->
  finite_result array
(** Same arrival stream applied to several buffer sizes in one pass —
    both faster and variance-reducing when sweeping buffer sizes
    (common random numbers). *)

type workload_stats = {
  mean : float;  (** stationary mean workload, cells *)
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
  frames : int;
}

val workload_stats :
  next_frame:(unit -> float) ->
  service:float ->
  frames:int ->
  ?warmup:int ->
  unit ->
  workload_stats
(** Summary statistics of the stationary frame-start workload in the
    infinite-buffer system — mean and quantiles translate directly into
    queueing-delay statistics via {!Units.buffer_msec_of_cells}. *)

val workload_tail :
  next_frame:(unit -> float) ->
  service:float ->
  thresholds:float array ->
  frames:int ->
  ?warmup:int ->
  unit ->
  (float * float) array
(** Infinite-buffer Lindley recursion; returns
    [(x, P(W > x))] estimates for each threshold, where [W] is the
    stationary frame-start workload — the empirical buffer overflow
    probability (BOP) curve. *)
