/* Real CLOCK_MONOTONIC binding for Obs.Clock.

   The OCaml side falls back to a clamped Unix.gettimeofday when the
   platform offers no monotonic clock (cts_clock_monotonic_available
   returns false), so these stubs must be safe to call anywhere. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

#if defined(CLOCK_MONOTONIC)
#define CTS_HAVE_MONOTONIC 1
#else
#define CTS_HAVE_MONOTONIC 0
#endif

CAMLprim value cts_clock_monotonic_available(value unit)
{
  (void)unit;
#if CTS_HAVE_MONOTONIC
  struct timespec ts;
  return Val_bool(clock_gettime(CLOCK_MONOTONIC, &ts) == 0);
#else
  return Val_false;
#endif
}

CAMLprim value cts_clock_monotonic_ns(value unit)
{
  (void)unit;
#if CTS_HAVE_MONOTONIC
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec);
#endif
  return caml_copy_int64(0);
}
