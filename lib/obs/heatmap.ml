(* CTS heatmaps: the per-buffer m*_b histograms in the registry
   rendered as a 2-D grid — one row per buffer size (a label value),
   one column per histogram bin.  Renderers return strings (ASCII,
   CSV, self-contained HTML); serving them is the daemon's job. *)

type row = {
  label : string;  (* raw label value, e.g. "16140" *)
  sort : float;  (* numeric sort key parsed from [label]; nan sorts last *)
  snap : Registry.histogram_snapshot;
}

type t = {
  name : string;
  label_key : string;
  lo : float;
  hi : float;
  bins : int;
  rows : row list;  (* ascending by [sort] *)
}

let default_name = "cts.m_star"
let default_label_key = "buffer_cells"

let of_snapshot ?(name = default_name) ?(label_key = default_label_key)
    (snap : Registry.snapshot) =
  let rows =
    List.filter_map
      (fun ((n, labels), h) ->
        if String.equal n name then
          match List.assoc_opt label_key (Labels.to_list labels) with
          | Some v ->
              let sort =
                match float_of_string_opt v with Some f -> f | None -> Float.nan
              in
              Some { label = v; sort; snap = h }
          | None -> None
        else None)
      snap.Registry.histograms
  in
  match rows with
  | [] -> None
  | first :: _ ->
      (* All series of one name share a bin layout (first-spec-wins in
         the registry); drop any stragglers that disagree. *)
      let bins = Array.length first.snap.Registry.counts in
      let same r =
        Array.length r.snap.Registry.counts = bins
        && Float.equal r.snap.Registry.hlo first.snap.Registry.hlo
        && Float.equal r.snap.Registry.hhi first.snap.Registry.hhi
      in
      let rows =
        List.filter same rows
        |> List.sort (fun a b ->
               match (Float.is_nan a.sort, Float.is_nan b.sort) with
               | false, false -> Float.compare a.sort b.sort
               | true, true -> String.compare a.label b.label
               | true, false -> 1
               | false, true -> -1)
      in
      Some
        {
          name;
          label_key;
          lo = first.snap.Registry.hlo;
          hi = first.snap.Registry.hhi;
          bins;
          rows;
        }

let bin_width t = (t.hi -. t.lo) /. float_of_int t.bins

let row_max (r : row) =
  Array.fold_left Stdlib.max 0 r.snap.Registry.counts

(* {2 ASCII} *)

let shades = " .:-=+*#%@"

let shade_char ~max_count c =
  if c = 0 || max_count = 0 then shades.[0]
  else
    let levels = String.length shades - 1 in
    (* counts 1..max map onto shades 1..levels *)
    let idx = 1 + ((c - 1) * (levels - 1) / Stdlib.max 1 (max_count - 1)) in
    shades.[Stdlib.min levels idx]

let to_ascii t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%s by %s — %d bins over [%g, %g), width %g\n" t.name
       t.label_key t.bins t.lo t.hi (bin_width t));
  let label_w =
    List.fold_left (fun w r -> Stdlib.max w (String.length r.label)) 8 t.rows
  in
  Buffer.add_string buf
    (Printf.sprintf "%*s | %s | %s\n" label_w t.label_key
       (String.make t.bins '-') "n (under/over)");
  List.iter
    (fun r ->
      let m = row_max r in
      Buffer.add_string buf (Printf.sprintf "%*s | " label_w r.label);
      Array.iter
        (fun c -> Buffer.add_char buf (shade_char ~max_count:m c))
        r.snap.Registry.counts;
      Buffer.add_string buf
        (Printf.sprintf " | %d (%d/%d)\n" r.snap.Registry.count
           r.snap.Registry.underflow r.snap.Registry.overflow))
    t.rows;
  Buffer.add_string buf
    (Printf.sprintf "scale: '%c' (empty) … '%c' (row max), normalized per row\n"
       shades.[0]
       shades.[String.length shades - 1]);
  Buffer.contents buf

(* {2 CSV (long format, one line per cell)} *)

let to_csv t =
  let buf = Buffer.create 1024 in
  let w = bin_width t in
  Buffer.add_string buf (Printf.sprintf "%s,bin_lo,bin_hi,count\n" t.label_key);
  List.iter
    (fun r ->
      Array.iteri
        (fun i c ->
          let blo = t.lo +. (w *. float_of_int i) in
          Buffer.add_string buf
            (Printf.sprintf "%s,%g,%g,%d\n" r.label blo (blo +. w) c))
        r.snap.Registry.counts)
    t.rows;
  Buffer.contents buf

(* {2 Self-contained HTML} *)

let html_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_html t =
  let buf = Buffer.create 4096 in
  let w = bin_width t in
  Buffer.add_string buf
    (Printf.sprintf
       {|<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta http-equiv="refresh" content="5">
<title>%s heatmap</title>
<style>
  body { font-family: ui-monospace, monospace; background: #14161a; color: #d8dce2; margin: 2rem; }
  h1 { font-size: 1.1rem; font-weight: 600; }
  p.sub { color: #8a919c; font-size: 0.85rem; }
  table { border-collapse: collapse; }
  td, th { padding: 0; }
  th { color: #8a919c; font-weight: 400; font-size: 0.75rem; padding: 0 0.5rem; text-align: right; }
  td.cell { width: 11px; height: 22px; }
  td.n { color: #8a919c; font-size: 0.75rem; padding-left: 0.6rem; }
</style>
</head>
<body>
<h1>%s by %s</h1>
<p class="sub">%d bins over [%g, %g), bin width %g; intensity normalized per row; auto-refreshes every 5&thinsp;s.</p>
<table>
|}
       (html_escape t.name) (html_escape t.name) (html_escape t.label_key)
       t.bins t.lo t.hi w);
  List.iter
    (fun r ->
      let m = row_max r in
      Buffer.add_string buf
        (Printf.sprintf "<tr><th>%s</th>" (html_escape r.label));
      Array.iteri
        (fun i c ->
          let intensity =
            if m = 0 then 0.0 else float_of_int c /. float_of_int m
          in
          let blo = t.lo +. (w *. float_of_int i) in
          Buffer.add_string buf
            (Printf.sprintf
               "<td class=\"cell\" style=\"background:rgba(97,175,239,%.3f)\" \
                title=\"%s=%s m*∈[%g,%g) n=%d\"></td>"
               intensity (html_escape t.label_key) (html_escape r.label) blo
               (blo +. w) c))
        r.snap.Registry.counts;
      Buffer.add_string buf
        (Printf.sprintf "<td class=\"n\">n=%d</td></tr>\n" r.snap.Registry.count))
    t.rows;
  Buffer.add_string buf "</table>\n</body>\n</html>\n";
  Buffer.contents buf

let row_count t = List.length t.rows
