let wall = Unix.gettimeofday

(* The stdlib exposes no monotonic clock on 5.1, so we derive one from
   the wall clock, clamped non-decreasing per domain.  Good enough for
   span durations (microsecond resolution, immune to small backwards
   steps); a real CLOCK_MONOTONIC binding is an open roadmap item. *)
let last_ns : int64 Domain.DLS.key = Domain.DLS.new_key (fun () -> 0L)

let monotonic_ns () =
  let now = Int64.of_float (Unix.gettimeofday () *. 1e9) in
  let prev = Domain.DLS.get last_ns in
  let now = if Int64.compare now prev < 0 then prev else now in
  Domain.DLS.set last_ns now;
  now

let elapsed_ns ~since = Int64.sub (monotonic_ns ()) since
let ns_to_us ns = Int64.to_float ns /. 1e3
