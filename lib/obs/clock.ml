let wall = Unix.gettimeofday

(* Real CLOCK_MONOTONIC via a C stub (clock_stubs.c).  Platforms
   without it fall back to the wall clock clamped non-decreasing per
   domain — good enough for span durations (microsecond resolution,
   immune to small backwards steps), but not immune to large NTP
   slews the way the real monotonic clock is. *)
external monotonic_available_stub : unit -> bool = "cts_clock_monotonic_available"
external monotonic_ns_stub : unit -> int64 = "cts_clock_monotonic_ns"

let have_monotonic = monotonic_available_stub ()

let source () =
  if have_monotonic then "clock_gettime(CLOCK_MONOTONIC)"
  else "gettimeofday(clamped)"

let last_ns : int64 Domain.DLS.key = Domain.DLS.new_key (fun () -> 0L)

let fallback_ns () =
  let now = Int64.of_float (Unix.gettimeofday () *. 1e9) in
  let prev = Domain.DLS.get last_ns in
  let now = if Int64.compare now prev < 0 then prev else now in
  Domain.DLS.set last_ns now;
  now

let monotonic_ns () = if have_monotonic then monotonic_ns_stub () else fallback_ns ()

let elapsed_ns ~since = Int64.sub (monotonic_ns ()) since
let ns_to_us ns = Int64.to_float ns /. 1e3
