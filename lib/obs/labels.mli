(** Label sets attached to instruments: sorted, deduplicated
    [(key, value)] pairs, so two label sets with the same bindings are
    structurally equal regardless of construction order. *)

type t

val empty : t

val make : (string * string) list -> t
(** Keys must match [[A-Za-z0-9_]+] and be distinct; values are free
    text.  Raises [Invalid_argument] otherwise. *)

val is_empty : t -> bool
val to_list : t -> (string * string) list
val compare : t -> t -> int
val equal : t -> t -> bool

val to_string : t -> string
(** Prometheus-style rendering: [{key="value",...}], [""] when empty.
    Values are escaped (backslash, double quote, newline). *)

val escape_value : string -> string
(** The label-value escaping used by {!to_string}, exposed for the
    exposition writer. *)
