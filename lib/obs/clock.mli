(** Time sources for the telemetry layer.

    [wall] is the civil timestamp stamped on events.  [monotonic_ns]
    is a per-domain non-decreasing nanosecond counter used for span
    durations: the real [CLOCK_MONOTONIC] where the platform provides
    one (via a C stub), otherwise the wall clock clamped so it never
    runs backwards within a domain. *)

val wall : unit -> float
(** Seconds since the epoch ([Unix.gettimeofday]). *)

val monotonic_ns : unit -> int64
(** Nanoseconds, non-decreasing within the calling domain.  Backed by
    [clock_gettime(CLOCK_MONOTONIC)] when available ({!source}); the
    epoch is unspecified — only differences are meaningful. *)

val source : unit -> string
(** Which backend [monotonic_ns] uses:
    ["clock_gettime(CLOCK_MONOTONIC)"] or ["gettimeofday(clamped)"]. *)

val elapsed_ns : since:int64 -> int64
(** [monotonic_ns () - since]. *)

val ns_to_us : int64 -> float
