(** Time sources for the telemetry layer.

    [wall] is the civil timestamp stamped on events.  [monotonic_ns]
    is a per-domain non-decreasing nanosecond counter used for span
    durations: derived from the wall clock but clamped so it never
    runs backwards within a domain. *)

val wall : unit -> float
(** Seconds since the epoch ([Unix.gettimeofday]). *)

val monotonic_ns : unit -> int64
(** Nanoseconds, non-decreasing within the calling domain. *)

val elapsed_ns : since:int64 -> int64
(** [monotonic_ns () - since]. *)

val ns_to_us : int64 -> float
