(** Runtime introspection: OCaml GC and heap figures as registry
    gauges and raw values for [/debug/vars].

    {b Single-writer discipline}: registry gauges merge across domain
    shards by summation, so {!sample} must only ever be called from
    one domain per process (the serving pool's accept loop, or the CLI
    main domain).  Everything else reads via {!read} / {!last}, which
    touch no registry state. *)

type stats = {
  minor_collections : int;
  major_collections : int;
  compactions : int;
  minor_words : float;
  promoted_words : float;
  major_words : float;
  heap_words : int;  (** current major-heap size, words *)
  top_heap_words : int;  (** high-water mark, words *)
  stack_size : int;  (** current stack depth, words *)
}

val read : unit -> stats
(** One [Gc.quick_stat] poll.  No side effects — safe from any
    domain.  On OCaml 5 the figures are aggregated from per-domain
    samples refreshed at stop-the-world points, so they can lag the
    true totals (by minutes on an idle multi-domain process); they are
    never ahead. *)

val sample : unit -> stats
(** Polls and mirrors the figures into the [runtime.gc.*] /
    [runtime.heap_words] / [runtime.top_heap_words] gauges, and
    records the sample for {!last} / {!sample_age_s}.  If the poll
    reads an unflushed zero heap (possible before the first
    stop-the-world point after worker domains spawn), it forces one
    minor collection so the published gauges are never the zero
    block.  Single writer only — see the module note. *)

val last : unit -> (float * stats) option
(** Wall time and value of the most recent {!sample}, if any. *)

val sample_age_s : unit -> float option
(** Seconds since the last {!sample}; [None] if the collector never
    ran.  [/healthz] uses this as the collector-liveness signal. *)

val json_of_stats : stats -> Json.t
