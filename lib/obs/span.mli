(** Nested span tracing.

    [with_ ~name fn] times [fn ()] (monotonic for the duration, wall
    clock for the timestamp), maintains a per-domain parent/child
    stack, feeds the duration into the registry histogram
    [span.<name>.us] (0–1 s range in microseconds, 60 bins), and — when
    a trace sink is installed — emits one completion event per span
    carrying its id, parent id, nesting depth, durations, and the
    {!Trace} id active when the span was entered (so every span of one
    served request shares a [trace] field in the JSONL sink).

    With the default [Null] trace sink the cost is two clock reads and
    one histogram update per span. *)

val with_ : name:string -> (unit -> 'a) -> 'a
(** Exceptions propagate; the span is closed (with [ok=false]) first. *)

val set_trace_sink : Sink.t -> unit
(** Install the destination for span-completion events (default
    [Null]).  Shared by all domains. *)

val current_trace_sink : unit -> Sink.t

val set_ring_bridge : (string -> bool -> unit) option -> unit
(** Install (or remove, with [None]) the runtime-events ring bridge:
    [f name true] fires on every span enter, [f name false] on every
    exit, from the span's own domain.  Installed by
    [Obs.Events.start ~bridge:true]; with [None] (the default) the
    cost is one atomic read per transition. *)

(** {1 Sampling}

    Rate-limits {e trace emission} per span name so [--trace] stays
    usable on million-request replays and under the serving daemon.
    Registry histograms are unaffected — every span is still timed and
    recorded; sampling only decides which completions reach the trace
    sink.  Dropped completions tick [obs.span.sampled_out]. *)

type sampling =
  | Always
  | One_in of int
      (** emit the 1st, (n+1)th, (2n+1)th … completion of each span
          name, counted per domain *)
  | Token_bucket of { capacity : int; refill_per_s : float }
      (** emit while tokens remain; one token per event, refilled at
          [refill_per_s] against the monotonic clock, per domain *)

val set_sampling : ?name:string -> sampling -> unit
(** [set_sampling ~name policy] overrides the policy for one span
    name; without [name] it replaces the default applied to
    unlisted names.  Raises [Invalid_argument] on [One_in n < 1], a
    negative capacity or a non-finite/negative refill rate.  Any
    change resets every domain's sampling counters. *)

val reset_sampling : unit -> unit
(** Back to emit-everything (the default), clearing per-name
    overrides. *)

val sampling_for : string -> sampling
(** The policy that applies to a span name. *)

val current_depth : unit -> int
(** Number of open spans on the calling domain's stack. *)

val current_name : unit -> string option
(** Name of the innermost open span, if any. *)
