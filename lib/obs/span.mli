(** Nested span tracing.

    [with_ ~name fn] times [fn ()] (monotonic for the duration, wall
    clock for the timestamp), maintains a per-domain parent/child
    stack, feeds the duration into the registry histogram
    [span.<name>.us] (0–1 s range in microseconds, 60 bins), and — when
    a trace sink is installed — emits one completion event per span
    carrying its id, parent id, nesting depth and durations.

    With the default [Null] trace sink the cost is two clock reads and
    one histogram update per span. *)

val with_ : name:string -> (unit -> 'a) -> 'a
(** Exceptions propagate; the span is closed (with [ok=false]) first. *)

val set_trace_sink : Sink.t -> unit
(** Install the destination for span-completion events (default
    [Null]).  Shared by all domains. *)

val current_trace_sink : unit -> Sink.t

val current_depth : unit -> int
(** Number of open spans on the calling domain's stack. *)

val current_name : unit -> string option
(** Name of the innermost open span, if any. *)
