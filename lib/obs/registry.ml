(* One registry per process.  Every mutation touches only the calling
   domain's shard (a plain Hashtbl reached through Domain.DLS), so
   instrument updates are contention-free; readers merge the shards.
   The only lock protects the shard list and the instrument
   declarations, both of which change rarely. *)

type key = string * Labels.t

type exemplar = { ex_trace : string; ex_value : float; ex_wall : float }

type hist = {
  h : Stats.Histogram.t;
  mutable sum : float;
  mutable exemplar : exemplar option;
}

type shard = {
  counters : (key, int ref) Hashtbl.t;
  gauges : (key, float ref) Hashtbl.t;
  hists : (key, hist) Hashtbl.t;
}

type hist_spec = { lo : float; hi : float; bins : int }

let mutex = Mutex.create ()
let shards : shard list ref = ref []

(* Declared instruments appear in snapshots even before their first
   update, so exports always carry a stable schema. *)
let declared_counters : (string, unit) Hashtbl.t = Hashtbl.create 16
let declared_gauges : (string, unit) Hashtbl.t = Hashtbl.create 16
let declared_hists : (string, unit) Hashtbl.t = Hashtbl.create 16

(* Bin layouts, shared by every shard and label set of a name; kept
   separate from [declared_hists] so creating a *labelled* histogram
   does not force a spurious unlabelled zero series into exports. *)
let hist_specs : (string, hist_spec) Hashtbl.t = Hashtbl.create 16

let default_spec = { lo = 0.0; hi = 1000.0; bins = 50 }

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let valid_name n =
  String.length n > 0
  && n.[0] <> '.'
  && n.[String.length n - 1] <> '.'
  && String.for_all
       (function 'a' .. 'z' | '0' .. '9' | '_' | '.' -> true | _ -> false)
       n

let check_name n =
  if not (valid_name n) then
    invalid_arg
      (Printf.sprintf
         "Obs.Registry: instrument name %S (want dotted lowercase, e.g. \
          \"cac.cache.hits\")"
         n)

let shard_key : shard Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let s =
        {
          counters = Hashtbl.create 32;
          gauges = Hashtbl.create 8;
          hists = Hashtbl.create 8;
        }
      in
      locked (fun () -> shards := s :: !shards);
      s)

let my_shard () = Domain.DLS.get shard_key

(* {2 Declarations} *)

let declare_counter name =
  check_name name;
  locked (fun () -> Hashtbl.replace declared_counters name ())

let declare_gauge name =
  check_name name;
  locked (fun () -> Hashtbl.replace declared_gauges name ())

let ensure_spec ?(lo = default_spec.lo) ?(hi = default_spec.hi)
    ?(bins = default_spec.bins) name =
  check_name name;
  if not (hi > lo && bins > 0) then
    invalid_arg "Obs.Registry: histogram needs hi > lo and bins > 0";
  locked (fun () ->
      (* First spec wins, so every shard agrees on the shape. *)
      if not (Hashtbl.mem hist_specs name) then
        Hashtbl.replace hist_specs name { lo; hi; bins })

let declare_histogram ?lo ?hi ?bins name =
  ensure_spec ?lo ?hi ?bins name;
  locked (fun () -> Hashtbl.replace declared_hists name ())

let set_histogram_spec = ensure_spec

let spec_of name =
  locked (fun () ->
      match Hashtbl.find_opt hist_specs name with
      | Some s -> s
      | None ->
          Hashtbl.replace hist_specs name default_spec;
          default_spec)

(* {2 Shard-local cells} *)

let counter_cell shard key =
  match Hashtbl.find_opt shard.counters key with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.replace shard.counters key r;
      r

let gauge_cell shard key =
  match Hashtbl.find_opt shard.gauges key with
  | Some r -> r
  | None ->
      let r = ref 0.0 in
      Hashtbl.replace shard.gauges key r;
      r

let hist_cell shard ((name, _) as key) =
  match Hashtbl.find_opt shard.hists key with
  | Some h -> h
  | None ->
      let { lo; hi; bins } = spec_of name in
      let h =
        { h = Stats.Histogram.create ~lo ~hi ~bins; sum = 0.0; exemplar = None }
      in
      Hashtbl.replace shard.hists key h;
      h

(* {2 Keyed updates (race-free from any domain)} *)

let incr ?(labels = Labels.empty) ?(by = 1) name =
  if by < 0 then invalid_arg "Obs.Registry.incr: counters are monotonic (by < 0)";
  let r = counter_cell (my_shard ()) (name, labels) in
  r := !r + by

let set_gauge ?(labels = Labels.empty) name v =
  let r = gauge_cell (my_shard ()) (name, labels) in
  r := v

let add_gauge ?(labels = Labels.empty) name v =
  let r = gauge_cell (my_shard ()) (name, labels) in
  r := !r +. v

(* Attach the current trace id (if the domain is inside a traced
   request) as an OpenMetrics exemplar.  The untraced path is a single
   option read — no allocation. *)
let stamp_exemplar cell x =
  match Trace.current () with
  | None -> ()
  | Some ctx ->
      cell.exemplar <-
        Some { ex_trace = ctx.Trace.trace_id; ex_value = x; ex_wall = Clock.wall () }

let observe ?(labels = Labels.empty) name x =
  let cell = hist_cell (my_shard ()) (name, labels) in
  Stats.Histogram.add cell.h x;
  cell.sum <- cell.sum +. x;
  stamp_exemplar cell x

(* {2 Handles: cache the (domain, cell) pair, re-resolve on domain
   change}

   The cache field holds an immutable pair, read once per update.  A
   domain only ever updates a cell it resolved from its {e own} shard,
   so even when two domains share one handle there is no write-write
   race on any cell — the worst case is a ping-pong of cache
   re-resolutions, each of which is a single (atomic-by-runtime)
   pointer store.  This stays allocation- and slot-free per update,
   unlike a [Domain.DLS] key per handle, which would leak a slot for
   every handle ever created (engines create handles per instance). *)

let domain_id () = (Domain.self () :> int)

module Counter = struct
  type t = {
    name : string;
    labels : Labels.t;
    mutable cache : int * int ref;  (* (domain, cell in that domain's shard) *)
  }

  let v ?(labels = Labels.empty) name =
    check_name name;
    if Labels.is_empty labels then declare_counter name;
    { name; labels; cache = (domain_id (), counter_cell (my_shard ()) (name, labels)) }

  let resolve t =
    let d = domain_id () in
    let (cached_d, cell) = t.cache in
    if cached_d = d then cell
    else begin
      let cell = counter_cell (my_shard ()) (t.name, t.labels) in
      t.cache <- (d, cell);
      cell
    end

  let incr ?(by = 1) t =
    if by < 0 then invalid_arg "Obs.Counter.incr: counters are monotonic (by < 0)";
    let r = resolve t in
    r := !r + by

  let name t = t.name
  let labels t = t.labels
end

module Gauge = struct
  type t = {
    name : string;
    labels : Labels.t;
    mutable cache : int * float ref;
  }

  let v ?(labels = Labels.empty) name =
    check_name name;
    if Labels.is_empty labels then declare_gauge name;
    { name; labels; cache = (domain_id (), gauge_cell (my_shard ()) (name, labels)) }

  let resolve t =
    let d = domain_id () in
    let (cached_d, cell) = t.cache in
    if cached_d = d then cell
    else begin
      let cell = gauge_cell (my_shard ()) (t.name, t.labels) in
      t.cache <- (d, cell);
      cell
    end

  let set t v = resolve t := v

  let add t v =
    let r = resolve t in
    r := !r +. v

  let name t = t.name
  let labels t = t.labels
end

module Histogram = struct
  type t = {
    name : string;
    labels : Labels.t;
    mutable cache : int * hist;
  }

  let v ?(labels = Labels.empty) ?lo ?hi ?bins name =
    check_name name;
    if Labels.is_empty labels then declare_histogram ?lo ?hi ?bins name
    else ensure_spec ?lo ?hi ?bins name;
    { name; labels; cache = (domain_id (), hist_cell (my_shard ()) (name, labels)) }

  let resolve t =
    let d = domain_id () in
    let (cached_d, cell) = t.cache in
    if cached_d = d then cell
    else begin
      let cell = hist_cell (my_shard ()) (t.name, t.labels) in
      t.cache <- (d, cell);
      cell
    end

  let observe t x =
    let cell = resolve t in
    Stats.Histogram.add cell.h x;
    cell.sum <- cell.sum +. x;
    stamp_exemplar cell x

  let name t = t.name
  let labels t = t.labels
end

(* {2 Snapshots} *)

type histogram_snapshot = {
  hlo : float;
  hhi : float;
  counts : int array;
  underflow : int;
  overflow : int;
  sum : float;
  count : int;
  exemplar : exemplar option;
}

type snapshot = {
  counters : (key * int) list;
  gauges : (key * float) list;
  histograms : (key * histogram_snapshot) list;
}

let snapshot_of_hist cell =
  {
    hlo = Stats.Histogram.lo cell.h;
    hhi = Stats.Histogram.hi cell.h;
    counts = Stats.Histogram.counts cell.h;
    underflow = Stats.Histogram.underflow cell.h;
    overflow = Stats.Histogram.overflow cell.h;
    sum = cell.sum;
    count = Stats.Histogram.total cell.h;
    exemplar = cell.exemplar;
  }

(* The freshest exemplar across shards represents the series. *)
let merge_exemplars a b =
  match (a, b) with
  | None, e | e, None -> e
  | Some ea, Some eb -> if eb.ex_wall >= ea.ex_wall then Some eb else Some ea

let merge_hist_snapshots a b =
  if (not (Float.equal a.hlo b.hlo)) || (not (Float.equal a.hhi b.hhi)) || Array.length a.counts <> Array.length b.counts
  then invalid_arg "Obs.Registry: histogram shards with incompatible shapes";
  {
    a with
    counts = Array.init (Array.length a.counts) (fun i -> a.counts.(i) + b.counts.(i));
    underflow = a.underflow + b.underflow;
    overflow = a.overflow + b.overflow;
    sum = a.sum +. b.sum;
    count = a.count + b.count;
    exemplar = merge_exemplars a.exemplar b.exemplar;
  }

let compare_key ((na, la) : key) ((nb, lb) : key) =
  match String.compare na nb with 0 -> Labels.compare la lb | c -> c

let sorted_bindings merge tbl_of_shard declared zero shard_list =
  let acc : (key, 'v) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun shard ->
      Hashtbl.iter
        (fun key v ->
          match Hashtbl.find_opt acc key with
          | None -> Hashtbl.replace acc key v
          | Some prior -> Hashtbl.replace acc key (merge prior v))
        (tbl_of_shard shard))
    shard_list;
  Hashtbl.iter
    (fun name () ->
      let key = (name, Labels.empty) in
      if not (Hashtbl.mem acc key) then Hashtbl.replace acc key (zero name))
    declared;
  Hashtbl.fold (fun k v l -> (k, v) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> compare_key a b)

(* Wall time of the last completed [snapshot]; negative = never.
   Lets /healthz report how stale the exported view is. *)
let last_snapshot_wall = Atomic.make (-1.0)

let snapshot_age_s () =
  let last = Atomic.get last_snapshot_wall in
  if last < 0.0 then None else Some (Float.max 0.0 (Clock.wall () -. last))

let snapshot () =
  (* Snapshots are intended between or after parallel sections: value
     reads are atomic per cell, but racing with instrument *creation*
     on another domain is undefined (Hashtbl resize). *)
  let shard_list, declared_c, declared_g, declared_h, specs =
    locked (fun () ->
        ( !shards,
          Hashtbl.copy declared_counters,
          Hashtbl.copy declared_gauges,
          Hashtbl.copy declared_hists,
          Hashtbl.copy hist_specs ))
  in
  let counters =
    sorted_bindings ( + )
      (fun (s : shard) ->
        let out = Hashtbl.create (Hashtbl.length s.counters) in
        Hashtbl.iter (fun k r -> Hashtbl.replace out k !r) s.counters;
        out)
      declared_c (fun _ -> 0) shard_list
  in
  let gauges =
    sorted_bindings ( +. )
      (fun (s : shard) ->
        let out = Hashtbl.create (Hashtbl.length s.gauges) in
        Hashtbl.iter (fun k r -> Hashtbl.replace out k !r) s.gauges;
        out)
      declared_g (fun _ -> 0.0) shard_list
  in
  let zero_hist name =
    let { lo; hi; bins } =
      match Hashtbl.find_opt specs name with Some s -> s | None -> default_spec
    in
    {
      hlo = lo;
      hhi = hi;
      counts = Array.make bins 0;
      underflow = 0;
      overflow = 0;
      sum = 0.0;
      count = 0;
      exemplar = None;
    }
  in
  let histograms =
    sorted_bindings merge_hist_snapshots
      (fun (s : shard) ->
        let out = Hashtbl.create (Hashtbl.length s.hists) in
        Hashtbl.iter (fun k cell -> Hashtbl.replace out k (snapshot_of_hist cell)) s.hists;
        out)
      declared_h zero_hist shard_list
  in
  Atomic.set last_snapshot_wall (Clock.wall ());
  { counters; gauges; histograms }

(* Linear interpolation inside the bin holding the q-th observation.
   Out-of-range mass clamps to the histogram edges: the bins don't
   know where underflow/overflow observations actually landed, so the
   edge is the tightest honest bound. *)
let histogram_quantile (h : histogram_snapshot) ~q =
  if not (Float.is_finite q && q >= 0.0 && q <= 1.0) then
    invalid_arg "Obs.Registry.histogram_quantile: q outside [0, 1]";
  if h.count = 0 then None
  else begin
    let target = q *. float_of_int h.count in
    let bins = Array.length h.counts in
    let width = (h.hhi -. h.hlo) /. float_of_int bins in
    let rec walk i cum =
      if i >= bins then Some h.hhi (* target sits in the overflow mass *)
      else begin
        let c = h.counts.(i) in
        let cum' = cum + c in
        if c > 0 && float_of_int cum' >= target then begin
          let frac =
            Float.max 0.0
              (Float.min 1.0 ((target -. float_of_int cum) /. float_of_int c))
          in
          Some (h.hlo +. (width *. (float_of_int i +. frac)))
        end
        else walk (i + 1) cum'
      end
    in
    if h.underflow > 0 && float_of_int h.underflow >= target then Some h.hlo
    else walk 0 h.underflow
  end

let counter_value ?(labels = Labels.empty) name =
  let snap = snapshot () in
  match List.assoc_opt (name, labels) snap.counters with Some v -> v | None -> 0

let histogram_snapshot ?(labels = Labels.empty) name =
  let snap = snapshot () in
  List.assoc_opt (name, labels) snap.histograms

let reset_for_testing () =
  locked (fun () ->
      List.iter
        (fun (s : shard) ->
          Hashtbl.reset s.counters;
          Hashtbl.reset s.gauges;
          Hashtbl.reset s.hists)
        !shards)
