(** A minimal JSON tree, encoder and parser — just enough for the
    telemetry sinks and exporters, with no external dependencies.

    Encoding notes: non-finite floats become [null] (JSON has no
    literal for them); floats print with the shortest representation
    that round-trips through [float_of_string]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

val of_string : string -> t option
(** Parses one complete JSON value (surrounding whitespace allowed);
    [None] on malformed input or trailing garbage.  Numbers parse as
    [Int] when exactly integral, [Float] otherwise. *)

val member : string -> t -> t option
(** [member key (Obj fields)] is the value bound to [key]; [None] on
    missing keys and non-objects. *)
