let key_string (name, labels) = name ^ Labels.to_string labels

(* {2 Prometheus text exposition}

   Dots are not legal in Prometheus metric names, so dotted registry
   names map 1:1 onto underscored exposition names.  Counters get the
   conventional [_total] suffix; histograms expose cumulative
   [_bucket{le=...}] series plus [_sum] and [_count]. *)

let prom_name name = String.map (fun c -> if c = '.' then '_' else c) name

let prom_float x =
  if Float.is_nan x then "NaN"
  else if Float.equal x infinity then "+Inf"
  else if Float.equal x neg_infinity then "-Inf"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.12g" x

let prom_labels ?extra labels =
  let pairs = Labels.to_list labels in
  let pairs = match extra with None -> pairs | Some kv -> pairs @ [ kv ] in
  match pairs with
  | [] -> ""
  | pairs ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (Labels.escape_value v))
             pairs)
      ^ "}"

let prometheus (snap : Registry.snapshot) =
  let buf = Buffer.create 1024 in
  let typed = Hashtbl.create 16 in
  let type_line name kind =
    if not (Hashtbl.mem typed (name, kind)) then begin
      Hashtbl.replace typed (name, kind) ();
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (fun ((name, labels), v) ->
      let pname = prom_name name ^ "_total" in
      type_line pname "counter";
      Buffer.add_string buf
        (Printf.sprintf "%s%s %d\n" pname (prom_labels labels) v))
    snap.Registry.counters;
  List.iter
    (fun ((name, labels), v) ->
      let pname = prom_name name in
      type_line pname "gauge";
      Buffer.add_string buf
        (Printf.sprintf "%s%s %s\n" pname (prom_labels labels) (prom_float v)))
    snap.Registry.gauges;
  List.iter
    (fun ((name, labels), h) ->
      let pname = prom_name name in
      type_line pname "histogram";
      let bins = Array.length h.Registry.counts in
      let width = (h.Registry.hhi -. h.Registry.hlo) /. float_of_int bins in
      (* Cumulative buckets; observations below [lo] belong in every
         bucket, observations at or above [hi] only in +Inf. *)
      let cumulative = ref h.Registry.underflow in
      for i = 0 to bins - 1 do
        cumulative := !cumulative + h.Registry.counts.(i);
        let le = h.Registry.hlo +. (width *. float_of_int (i + 1)) in
        Buffer.add_string buf
          (Printf.sprintf "%s_bucket%s %d\n" pname
             (prom_labels ~extra:("le", prom_float le) labels)
             !cumulative)
      done;
      (* OpenMetrics exemplar: the freshest traced observation rides
         on the +Inf bucket (which every observation lands in). *)
      let exemplar_suffix =
        match h.Registry.exemplar with
        | None -> ""
        | Some e ->
            Printf.sprintf " # {trace_id=\"%s\"} %s %s"
              (Labels.escape_value e.Registry.ex_trace)
              (prom_float e.Registry.ex_value)
              (prom_float e.Registry.ex_wall)
      in
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket%s %d%s\n" pname
           (prom_labels ~extra:("le", "+Inf") labels)
           h.Registry.count exemplar_suffix);
      Buffer.add_string buf
        (Printf.sprintf "%s_sum%s %s\n" pname (prom_labels labels)
           (prom_float h.Registry.sum));
      Buffer.add_string buf
        (Printf.sprintf "%s_count%s %d\n" pname (prom_labels labels)
           h.Registry.count))
    snap.Registry.histograms;
  (* OpenMetrics end-of-exposition marker; a comment to plain-0.0.4
     parsers, the required terminator for strict scrapers. *)
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

(* {2 JSON document} *)

let json_of_histogram (h : Registry.histogram_snapshot) =
  Json.Obj
    [
      ("lo", Json.Float h.Registry.hlo);
      ("hi", Json.Float h.Registry.hhi);
      ("count", Json.Int h.Registry.count);
      ("sum", Json.Float h.Registry.sum);
      ( "mean",
        if h.Registry.count = 0 then Json.Null
        else Json.Float (h.Registry.sum /. float_of_int h.Registry.count) );
      ("underflow", Json.Int h.Registry.underflow);
      ("overflow", Json.Int h.Registry.overflow);
      ("buckets", Json.List (Array.to_list (Array.map (fun c -> Json.Int c) h.Registry.counts)));
      ( "exemplar",
        match h.Registry.exemplar with
        | None -> Json.Null
        | Some e ->
            Json.Obj
              [
                ("trace_id", Json.String e.Registry.ex_trace);
                ("value", Json.Float e.Registry.ex_value);
                ("wall", Json.Float e.Registry.ex_wall);
              ] );
    ]

let json (snap : Registry.snapshot) =
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (List.map
             (fun (key, v) -> (key_string key, Json.Int v))
             snap.Registry.counters) );
      ( "gauges",
        Json.Obj
          (List.map
             (fun (key, v) -> (key_string key, Json.Float v))
             snap.Registry.gauges) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun (key, h) -> (key_string key, json_of_histogram h))
             snap.Registry.histograms) );
    ]

let json_string snap = Json.to_string (json snap)

(* {2 Human-readable text} *)

let text (snap : Registry.snapshot) =
  let buf = Buffer.create 1024 in
  if snap.Registry.counters <> [] then begin
    Buffer.add_string buf "counters:\n";
    List.iter
      (fun (key, v) ->
        Buffer.add_string buf (Printf.sprintf "  %-48s %d\n" (key_string key) v))
      snap.Registry.counters
  end;
  if snap.Registry.gauges <> [] then begin
    Buffer.add_string buf "gauges:\n";
    List.iter
      (fun (key, v) ->
        Buffer.add_string buf (Printf.sprintf "  %-48s %g\n" (key_string key) v))
      snap.Registry.gauges
  end;
  if snap.Registry.histograms <> [] then begin
    Buffer.add_string buf "histograms:\n";
    List.iter
      (fun (key, h) ->
        let mean =
          if h.Registry.count = 0 then "-"
          else Printf.sprintf "%.2f" (h.Registry.sum /. float_of_int h.Registry.count)
        in
        let quantiles =
          if h.Registry.count = 0 then ""
          else
            let q p =
              match Registry.histogram_quantile h ~q:p with
              | Some v -> Printf.sprintf "%.2f" v
              | None -> "-"
            in
            Printf.sprintf " p50=%s p95=%s p99=%s" (q 0.5) (q 0.95) (q 0.99)
        in
        Buffer.add_string buf
          (Printf.sprintf "  %-48s n=%d mean=%s%s range=[%g,%g) over=%d\n"
             (key_string key) h.Registry.count mean quantiles h.Registry.hlo
             h.Registry.hhi h.Registry.overflow))
      snap.Registry.histograms
  end;
  Buffer.contents buf

type format = Text | Json_doc | Prometheus

let format_of_string = function
  | "text" -> Some Text
  | "json" -> Some Json_doc
  | "prom" | "prometheus" -> Some Prometheus
  | _ -> None

let render fmt snap =
  match fmt with
  | Text -> text snap
  | Json_doc -> json_string snap
  | Prometheus -> prometheus snap
