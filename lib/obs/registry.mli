(** The process-wide registry of typed instruments.

    Instruments are addressed by a dotted lowercase name (e.g.
    ["cac.cache.hits"]) plus an optional {!Labels.t}.  Three kinds:

    - {b counters}: monotonic integers ([incr ~by] with [by >= 0]);
    - {b gauges}: floats with set/add semantics;
    - {b histograms}: fixed-bin {!Stats.Histogram.t}s plus a running
      sum (for mean and Prometheus [_sum] exposition).

    {2 Sharding}

    Every update touches only the calling domain's shard, reached
    through [Domain.DLS] — no locks, no cross-domain cache traffic on
    the hot path.  {!snapshot} merges the shards: counters and gauges
    by summation, histograms bin-wise (associative and commutative, so
    the merged view is independent of domain count and scheduling).
    Snapshots are meant to be taken between or after parallel
    sections; racing a snapshot against instrument {e creation} on
    another domain is not supported.

    {2 Handles vs keyed updates}

    The keyed functions ({!incr}, {!observe}, …) hash the
    (name, labels) key on every call — fine off the hot path.  The
    handle modules ({!Counter}, {!Gauge}, {!Histogram}) cache the
    calling domain's shard cell and re-resolve when the domain
    changes; since a domain only ever updates cells of its own shard,
    a handle — including a shared module-level one — is safe from any
    domain.  Prefer handles on hot paths (one field read and compare
    per update). *)

type key = string * Labels.t

type exemplar = {
  ex_trace : string;  (** trace id active when the value was observed *)
  ex_value : float;
  ex_wall : float;  (** wall-clock seconds of the observation *)
}
(** Histogram observations made while a {!Trace} context is installed
    on the observing domain stamp the series with an exemplar — the
    most recent traced value — which the Prometheus exporter emits in
    OpenMetrics [# {trace_id="…"}] form. *)

(** {1 Declarations}

    Declared instruments appear in every {!snapshot} (zero-valued if
    never updated), giving exports a stable schema.  Declaring is
    idempotent; for histograms the first declaration fixes the bin
    layout. *)

val declare_counter : string -> unit
val declare_gauge : string -> unit
val declare_histogram : ?lo:float -> ?hi:float -> ?bins:int -> string -> unit
(** Defaults: 50 bins over [0, 1000). *)

val set_histogram_spec : ?lo:float -> ?hi:float -> ?bins:int -> string -> unit
(** Fixes the bin layout of a histogram name {e without} declaring an
    unlabelled series — use this for instruments that are only ever
    recorded with labels, so exports don't grow a spurious zero row.
    Like {!declare_histogram}, the first layout wins. *)

(** {1 Keyed updates} *)

val incr : ?labels:Labels.t -> ?by:int -> string -> unit
(** Raises [Invalid_argument] on negative [by]. *)

val set_gauge : ?labels:Labels.t -> string -> float -> unit
val add_gauge : ?labels:Labels.t -> string -> float -> unit

val observe : ?labels:Labels.t -> string -> float -> unit
(** Records into the named histogram, creating it with the declared
    (or default) bin layout on first use in this domain. *)

(** {1 Handles} *)

module Counter : sig
  type t

  val v : ?labels:Labels.t -> string -> t
  (** Binds a handle for the calling domain.  With empty labels this
      also declares the counter (stable zero in exports); labelled
      handles don't, so label sets only appear once recorded. *)

  val incr : ?by:int -> t -> unit
  val name : t -> string
  val labels : t -> Labels.t
end

module Gauge : sig
  type t

  val v : ?labels:Labels.t -> string -> t
  val set : t -> float -> unit
  val add : t -> float -> unit
  val name : t -> string
  val labels : t -> Labels.t
end

module Histogram : sig
  type t

  val v : ?labels:Labels.t -> ?lo:float -> ?hi:float -> ?bins:int -> string -> t
  val observe : t -> float -> unit
  val name : t -> string
  val labels : t -> Labels.t
end

(** {1 Reading} *)

type histogram_snapshot = {
  hlo : float;
  hhi : float;
  counts : int array;  (** in-range counts, one per bin *)
  underflow : int;
  overflow : int;
  sum : float;  (** sum of all observed values, including out-of-range *)
  count : int;  (** total observations, including out-of-range *)
  exemplar : exemplar option;  (** freshest traced observation, if any *)
}

type snapshot = {
  counters : (key * int) list;
  gauges : (key * float) list;
  histograms : (key * histogram_snapshot) list;
}
(** All lists sorted by (name, labels) for deterministic exports. *)

val snapshot : unit -> snapshot

val snapshot_age_s : unit -> float option
(** Seconds since the last completed {!snapshot} anywhere in the
    process, or [None] if one was never taken.  [/healthz] uses this
    to report how stale the exported view is. *)

val histogram_quantile : histogram_snapshot -> q:float -> float option
(** The [q]-quantile of a binned histogram by linear interpolation
    inside the bin holding the [q]-th observation ([q] in [[0, 1]],
    else [Invalid_argument]; [None] on an empty histogram).
    Out-of-range mass clamps to the nearest edge: underflow reports
    [hlo], overflow reports [hhi] — the tightest bound the bins can
    honestly give. *)

val counter_value : ?labels:Labels.t -> string -> int
(** Merged value across all shards; 0 if never updated. *)

val histogram_snapshot : ?labels:Labels.t -> string -> histogram_snapshot option

val reset_for_testing : unit -> unit
(** Zero every shard (declarations are kept).  Only call when no other
    domain is updating instruments. *)
