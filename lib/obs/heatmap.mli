(** Per-buffer CTS heatmaps.

    Collects every labelled series of one histogram name (by default
    [cts.m_star] keyed by [buffer_cells], the per-link total buffer
    recorded by [Core.Bahadur_rao]) out of a registry snapshot and
    renders the m*_b distribution grid: one row per buffer size,
    one column per histogram bin.  All renderers are pure — they
    return strings; the daemon and CLI decide where they go. *)

type t

val of_snapshot :
  ?name:string -> ?label_key:string -> Registry.snapshot -> t option
(** [of_snapshot snap] gathers the [?name] (default ["cts.m_star"])
    histograms labelled with [?label_key] (default ["buffer_cells"]),
    sorted numerically by label value.  [None] when no labelled series
    exist yet (e.g. before any evaluation ran). *)

val row_count : t -> int
(** Number of distinct label values (heatmap rows). *)

val to_ascii : t -> string
(** Shade-character grid ([" .:-=+*#%@"]), intensity normalized per
    row, with per-row totals and under/overflow counts. *)

val to_csv : t -> string
(** Long format, one line per cell:
    [<label_key>,bin_lo,bin_hi,count] with a header line. *)

val to_html : t -> string
(** Self-contained page (inline CSS, no external assets) with an
    intensity-colored table and a 5-second meta refresh — the body of
    [GET /heatmap]. *)
