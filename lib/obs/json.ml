type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr x =
  (* Shortest representation that round-trips; JSON has no non-finite
     literals, so those become null at the call site. *)
  let s = Printf.sprintf "%.17g" x in
  let shorter = Printf.sprintf "%.12g" x in
  if Float.equal (float_of_string shorter) x then shorter else s

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x ->
      if Float.is_finite x then Buffer.add_string buf (float_repr x)
      else Buffer.add_string buf "null"
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf

(* {2 A minimal recursive-descent parser}

   Enough JSON to read back what {!to_string} writes (and what jq
   accepts): no surrogate-pair decoding, numbers via [float_of_string]
   with integers recovered when exact. *)

exception Parse_error of string

type state = { input : string; mutable pos : int }

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  while
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance st;
        true
    | _ -> false
  do
    ()
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> raise (Parse_error (Printf.sprintf "expected %C at %d" c st.pos))

let parse_literal st word value =
  if
    st.pos + String.length word <= String.length st.input
    && String.sub st.input st.pos (String.length word) = word
  then begin
    st.pos <- st.pos + String.length word;
    value
  end
  else raise (Parse_error (Printf.sprintf "bad literal at %d" st.pos))

let parse_string_body st =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> raise (Parse_error "unterminated string")
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some 'n' -> advance st; Buffer.add_char buf '\n'; go ()
        | Some 't' -> advance st; Buffer.add_char buf '\t'; go ()
        | Some 'r' -> advance st; Buffer.add_char buf '\r'; go ()
        | Some 'b' -> advance st; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance st; Buffer.add_char buf '\012'; go ()
        | Some '/' -> advance st; Buffer.add_char buf '/'; go ()
        | Some '"' -> advance st; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance st; Buffer.add_char buf '\\'; go ()
        | Some 'u' ->
            advance st;
            if st.pos + 4 > String.length st.input then
              raise (Parse_error "bad \\u escape");
            let hex = String.sub st.input st.pos 4 in
            st.pos <- st.pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> raise (Parse_error "bad \\u escape")
            in
            (* Encode the code point as UTF-8 (BMP only). *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            go ()
        | _ -> raise (Parse_error "bad escape"))
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> is_num_char c | None -> false) do
    advance st
  done;
  let text = String.sub st.input start (st.pos - start) in
  match int_of_string_opt text with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt text with
      | Some x -> Float x
      | None -> raise (Parse_error (Printf.sprintf "bad number %S" text)))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> raise (Parse_error "unexpected end of input")
  | Some 'n' -> parse_literal st "null" Null
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some '"' ->
      advance st;
      String (parse_string_body st)
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              items (v :: acc)
          | Some ']' ->
              advance st;
              List.rev (v :: acc)
          | _ -> raise (Parse_error "expected ',' or ']'")
        in
        List (items [])
      end
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let field () =
          skip_ws st;
          expect st '"';
          let k = parse_string_body st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              fields (kv :: acc)
          | Some '}' ->
              advance st;
              List.rev (kv :: acc)
          | _ -> raise (Parse_error "expected ',' or '}'")
        in
        Obj (fields [])
      end
  | Some c -> if is_number_start c then parse_number st
              else raise (Parse_error (Printf.sprintf "unexpected %C" c))

and is_number_start = function '0' .. '9' | '-' -> true | _ -> false

let of_string s =
  let st = { input = s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos = String.length s then Some v else None
  | exception Parse_error _ -> None

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
