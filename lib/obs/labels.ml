type t = (string * string) list

let empty = []

let valid_key k =
  String.length k > 0
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       k

let make pairs =
  List.iter
    (fun (k, _) ->
      if not (valid_key k) then
        invalid_arg (Printf.sprintf "Obs.Labels.make: bad label key %S" k))
    pairs;
  let sorted = List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) pairs in
  if List.length sorted <> List.length pairs then
    invalid_arg "Obs.Labels.make: duplicate label keys";
  sorted

let is_empty t = t = []
let to_list t = t

let compare_pair (ka, va) (kb, vb) =
  match String.compare ka kb with 0 -> String.compare va vb | c -> c

let compare a b = List.compare compare_pair a b
let equal a b = compare a b = 0

let escape_value v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let to_string = function
  | [] -> ""
  | pairs ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_value v)) pairs)
      ^ "}"
