type frame = {
  id : string;
  name : string;
  parent : string option;
  depth : int;
  start_wall : float;
  start_mono : int64;
  trace : string option;
      (* trace id active at [enter] — correlates the span tree of one
         served request across domains and with its exemplars *)
}

(* Per-domain span stack and id sequence; ids are "d<domain>:<seq>" so
   traces from parallel sweeps interleave without colliding. *)
let stack : frame list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])
let seq : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let trace_sink = Atomic.make Sink.Null
let set_trace_sink s = Atomic.set trace_sink s
let current_trace_sink () = Atomic.get trace_sink

(* Ring bridge: when installed (by Obs.Events with the span bridge
   enabled), every span enter/exit is re-emitted as a runtime_events
   user event so external eventring tools see our spans.  The default
   costs one atomic read and a match per transition. *)
let ring_bridge : (string -> bool -> unit) option Atomic.t = Atomic.make None
let set_ring_bridge f = Atomic.set ring_bridge f

(* {2 Sampling}

   Trace emission can be rate-limited per span name so [--trace] stays
   usable on million-request replays: registry histograms always see
   every span; sampling only gates the per-span trace event.  The
   policy is process-wide (an Atomic, like the sink); the counters and
   bucket levels it drives are per-domain DLS state, re-initialized
   whenever the policy version moves — same scheme as
   [Resilience.Fault]'s per-domain streams. *)

type sampling =
  | Always
  | One_in of int
  | Token_bucket of { capacity : int; refill_per_s : float }

type sample_cfg = {
  default_policy : sampling;
  per_name : (string * sampling) list;
  cfg_version : int;
}

let sample_cfg =
  Atomic.make { default_policy = Always; per_name = []; cfg_version = 0 }

let validate_sampling = function
  | Always -> ()
  | One_in n -> if n < 1 then invalid_arg "Span.set_sampling: One_in n < 1"
  | Token_bucket { capacity; refill_per_s } ->
      if capacity < 0 then
        invalid_arg "Span.set_sampling: Token_bucket capacity < 0";
      if not (Float.is_finite refill_per_s && refill_per_s >= 0.0) then
        invalid_arg "Span.set_sampling: Token_bucket refill_per_s < 0"

let set_sampling ?name policy =
  validate_sampling policy;
  let c = Atomic.get sample_cfg in
  let next =
    match name with
    | None -> { c with default_policy = policy; cfg_version = c.cfg_version + 1 }
    | Some n ->
        {
          c with
          per_name = (n, policy) :: List.remove_assoc n c.per_name;
          cfg_version = c.cfg_version + 1;
        }
  in
  Atomic.set sample_cfg next

let reset_sampling () =
  let c = Atomic.get sample_cfg in
  Atomic.set sample_cfg
    { default_policy = Always; per_name = []; cfg_version = c.cfg_version + 1 }

let sampling_for name =
  let c = Atomic.get sample_cfg in
  match List.assoc_opt name c.per_name with
  | Some p -> p
  | None -> c.default_policy

let () = Registry.declare_counter "obs.span.sampled_out"

(* Per-domain sampler state, keyed by span name. *)
type sample_state = {
  mutable emitted_count : int;  (** completions seen (One_in) *)
  mutable tokens : float;
  mutable last_refill_ns : int64;
}

type sampler = {
  mutable seen_version : int;
  table : (string, sample_state) Hashtbl.t;
}

let sampler_key : sampler Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { seen_version = -1; table = Hashtbl.create 16 })

(* Decide whether this completion's trace event is emitted; advances
   the calling domain's sampler state.  Only consulted when a trace
   sink is installed, so sampling costs nothing otherwise. *)
let should_emit name =
  let c = Atomic.get sample_cfg in
  match
    match List.assoc_opt name c.per_name with
    | Some p -> p
    | None -> c.default_policy
  with
  | Always -> true
  | policy -> (
      let s = Domain.DLS.get sampler_key in
      if s.seen_version <> c.cfg_version then begin
        Hashtbl.reset s.table;
        s.seen_version <- c.cfg_version
      end;
      let st =
        match Hashtbl.find_opt s.table name with
        | Some st -> st
        | None ->
            let st =
              {
                emitted_count = 0;
                tokens =
                  (match policy with
                  | Token_bucket { capacity; _ } -> float_of_int capacity
                  | _ -> 0.0);
                last_refill_ns = Clock.monotonic_ns ();
              }
            in
            Hashtbl.replace s.table name st;
            st
      in
      let emit =
        match policy with
        | Always -> true
        | One_in n ->
            let k = st.emitted_count in
            st.emitted_count <- k + 1;
            k mod n = 0
        | Token_bucket { capacity; refill_per_s } ->
            let now = Clock.monotonic_ns () in
            let dt_s = Int64.to_float (Int64.sub now st.last_refill_ns) *. 1e-9 in
            st.last_refill_ns <- now;
            st.tokens <-
              Stdlib.min (float_of_int capacity)
                (st.tokens +. (dt_s *. refill_per_s));
            if st.tokens >= 1.0 then begin
              st.tokens <- st.tokens -. 1.0;
              true
            end
            else false
      in
      if not emit then Registry.incr "obs.span.sampled_out";
      emit)

let current_depth () = List.length !(Domain.DLS.get stack)
let current () = match !(Domain.DLS.get stack) with [] -> None | f :: _ -> Some f
let current_name () = Option.map (fun f -> f.name) (current ())

let duration_histogram_bins = (0.0, 1_000_000.0, 60)
(* span durations: 0–1 s in µs, 60 bins; slower spans overflow. *)

let enter name =
  let st = Domain.DLS.get stack in
  let sq = Domain.DLS.get seq in
  incr sq;
  let parent, depth =
    match !st with [] -> (None, 0) | p :: _ -> (Some p.id, p.depth + 1)
  in
  let frame =
    {
      id = Printf.sprintf "d%d:%d" (Domain.self () :> int) !sq;
      name;
      parent;
      depth;
      start_wall = Clock.wall ();
      start_mono = Clock.monotonic_ns ();
      trace = Trace.current_trace_id ();
    }
  in
  st := frame :: !st;
  (match Atomic.get ring_bridge with None -> () | Some f -> f name true);
  frame

let exit_ frame ~ok =
  let st = Domain.DLS.get stack in
  (match !st with
  | top :: rest when top == frame -> st := rest
  | _ ->
      (* Unbalanced exit (an inner span escaped): just remove the frame. *)
      st := List.filter (fun f -> not (f == frame)) !st);
  (match Atomic.get ring_bridge with
  | None -> ()
  | Some f -> f frame.name false);
  let dur_us = Clock.ns_to_us (Clock.elapsed_ns ~since:frame.start_mono) in
  let wall_dur = Clock.wall () -. frame.start_wall in
  let lo, hi, bins = duration_histogram_bins in
  Registry.declare_histogram ~lo ~hi ~bins ("span." ^ frame.name ^ ".us");
  Registry.observe ("span." ^ frame.name ^ ".us") dur_us;
  match Atomic.get trace_sink with
  | Sink.Null -> ()
  | sink when not (should_emit frame.name) -> ignore sink
  | sink ->
      Sink.emit sink
        (Sink.event ~time:frame.start_wall ~kind:"span" ~name:frame.name
           [
             ("id", Json.String frame.id);
             ( "parent",
               match frame.parent with
               | Some p -> Json.String p
               | None -> Json.Null );
             ("depth", Json.Int frame.depth);
             ( "trace",
               match frame.trace with
               | Some tid -> Json.String tid
               | None -> Json.Null );
             ("dur_us", Json.Float dur_us);
             ("wall_dur_s", Json.Float wall_dur);
             ("ok", Json.Bool ok);
           ])

let with_ ~name fn =
  let frame = enter name in
  match fn () with
  | v ->
      exit_ frame ~ok:true;
      v
  | exception e ->
      exit_ frame ~ok:false;
      raise e
