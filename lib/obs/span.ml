type frame = {
  id : string;
  name : string;
  parent : string option;
  depth : int;
  start_wall : float;
  start_mono : int64;
}

(* Per-domain span stack and id sequence; ids are "d<domain>:<seq>" so
   traces from parallel sweeps interleave without colliding. *)
let stack : frame list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])
let seq : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let trace_sink = Atomic.make Sink.Null
let set_trace_sink s = Atomic.set trace_sink s
let current_trace_sink () = Atomic.get trace_sink

let current_depth () = List.length !(Domain.DLS.get stack)
let current () = match !(Domain.DLS.get stack) with [] -> None | f :: _ -> Some f
let current_name () = Option.map (fun f -> f.name) (current ())

let duration_histogram_bins = (0.0, 1_000_000.0, 60)
(* span durations: 0–1 s in µs, 60 bins; slower spans overflow. *)

let enter name =
  let st = Domain.DLS.get stack in
  let sq = Domain.DLS.get seq in
  incr sq;
  let parent, depth =
    match !st with [] -> (None, 0) | p :: _ -> (Some p.id, p.depth + 1)
  in
  let frame =
    {
      id = Printf.sprintf "d%d:%d" (Domain.self () :> int) !sq;
      name;
      parent;
      depth;
      start_wall = Clock.wall ();
      start_mono = Clock.monotonic_ns ();
    }
  in
  st := frame :: !st;
  frame

let exit_ frame ~ok =
  let st = Domain.DLS.get stack in
  (match !st with
  | top :: rest when top == frame -> st := rest
  | _ ->
      (* Unbalanced exit (an inner span escaped): just remove the frame. *)
      st := List.filter (fun f -> not (f == frame)) !st);
  let dur_us = Clock.ns_to_us (Clock.elapsed_ns ~since:frame.start_mono) in
  let wall_dur = Clock.wall () -. frame.start_wall in
  let lo, hi, bins = duration_histogram_bins in
  Registry.declare_histogram ~lo ~hi ~bins ("span." ^ frame.name ^ ".us");
  Registry.observe ("span." ^ frame.name ^ ".us") dur_us;
  match Atomic.get trace_sink with
  | Sink.Null -> ()
  | sink ->
      Sink.emit sink
        (Sink.event ~time:frame.start_wall ~kind:"span" ~name:frame.name
           [
             ("id", Json.String frame.id);
             ( "parent",
               match frame.parent with
               | Some p -> Json.String p
               | None -> Json.Null );
             ("depth", Json.Int frame.depth);
             ("dur_us", Json.Float dur_us);
             ("wall_dur_s", Json.Float wall_dur);
             ("ok", Json.Bool ok);
           ])

let with_ ~name fn =
  let frame = enter name in
  match fn () with
  | v ->
      exit_ frame ~ok:true;
      v
  | exception e ->
      exit_ frame ~ok:false;
      raise e
