(* GC-pause profiling over OCaml 5's runtime_events ring.

   [Obs.Runtime] samples [Gc.quick_stat] gauges — heap size, counts —
   but cannot say how long any collection stopped a domain, which is
   exactly what shapes the serving daemon's p99.  This module turns
   the ring into that profiler: a dedicated consumer domain subscribes
   to runtime phase begin/end pairs, folds each domain's outermost
   phase interval into a pause, and feeds per-domain pause histograms
   and counters into the registry.  Workers read the cumulative pause
   clock around a request to attribute tail latency to the collector
   (see Srv.Pool).

   One consumer per process (the [current] atomic); everything the
   consumer writes goes through the registry's own sharding, so no
   state here is shared except the per-ring atomics that workers poll. *)

module Re = Runtime_events

(* {2 Pause classification}

   A pause is the outermost runtime-phase interval on one ring
   (= domain): nested phases (EV_MINOR_LOCAL_ROOTS inside EV_MINOR,
   ...) ride inside it.  The label keeps cardinality at three. *)

type phase = Minor | Major | Other

let phase_name = function Minor -> "minor" | Major -> "major" | Other -> "other"

(* [None] = not pause time at all.  EV_DOMAIN_CONDITION_WAIT is the
   runtime's condvar wait — a worker blocked on an empty work queue
   sits in it for wall-clock stretches, which is idleness, not a GC
   pause; counting it would attribute a domain's entire idle time to
   the collector.  Likewise heap-reservation resizing is mmap
   bookkeeping, not collection. *)
let classify = function
  | Re.EV_MINOR | Re.EV_MINOR_LOCAL_ROOTS | Re.EV_MINOR_FINALIZED
  | Re.EV_MINOR_CLEAR | Re.EV_MINOR_FINALIZERS_OLDIFY
  | Re.EV_MINOR_GLOBAL_ROOTS | Re.EV_MINOR_LEAVE_BARRIER
  | Re.EV_MINOR_FINALIZERS_ADMIN | Re.EV_MINOR_REMEMBERED_SET
  | Re.EV_MINOR_REMEMBERED_SET_PROMOTE | Re.EV_MINOR_LOCAL_ROOTS_PROMOTE
  | Re.EV_EXPLICIT_GC_MINOR ->
      Some Minor
  | Re.EV_MAJOR | Re.EV_MAJOR_SWEEP | Re.EV_MAJOR_MARK_ROOTS
  | Re.EV_MAJOR_MARK | Re.EV_MAJOR_EPHE_MARK | Re.EV_MAJOR_EPHE_SWEEP
  | Re.EV_MAJOR_FINISH_MARKING | Re.EV_MAJOR_GC_CYCLE_DOMAINS
  | Re.EV_MAJOR_GC_PHASE_CHANGE | Re.EV_MAJOR_GC_STW
  | Re.EV_MAJOR_MARK_OPPORTUNISTIC | Re.EV_MAJOR_SLICE
  | Re.EV_MAJOR_FINISH_CYCLE | Re.EV_MAJOR_FINISH_SWEEPING
  | Re.EV_EXPLICIT_GC_MAJOR | Re.EV_EXPLICIT_GC_FULL_MAJOR
  | Re.EV_EXPLICIT_GC_COMPACT | Re.EV_EXPLICIT_GC_MAJOR_SLICE ->
      Some Major
  | Re.EV_DOMAIN_CONDITION_WAIT | Re.EV_DOMAIN_RESIZE_HEAP_RESERVATION
  | Re.EV_EXPLICIT_GC_SET | Re.EV_EXPLICIT_GC_STAT ->
      None
  | _ -> Some Other

(* Minor/Major are more informative than the STW scaffolding that
   wraps them (a minor collection runs {e inside} EV_STW_HANDLER, so
   the outermost interval alone would always read "other"). *)
let more_specific outer inner =
  match (outer, inner) with Other, (Minor | Major) -> inner | _ -> outer

type pause = {
  p_domain : int;  (* ring buffer index ≈ domain id; see the mli *)
  p_phase : phase;
  p_dur_ns : int64;
  p_wall : float;  (* consumer wall clock at completion *)
}

let pause_json p =
  Json.Obj
    [
      ("domain", Json.Int p.p_domain);
      ("phase", Json.String (phase_name p.p_phase));
      ("dur_us", Json.Float (Int64.to_float p.p_dur_ns /. 1e3));
      ("wall", Json.Float p.p_wall);
    ]

(* {2 The span bridge}

   One registered user event, "cts.span", carrying (phase, name) so
   every span name shares a single slot of the ring's 8192-event user
   registry.  External viewers that link this library decode it by
   name; foreign tools still see begin/end byte payloads. *)

type span_event = { sp_enter : bool; sp_name : string }

let encode_span buf { sp_enter; sp_name } =
  let n = Stdlib.min (String.length sp_name) 255 in
  Bytes.set buf 0 (if sp_enter then 'B' else 'E');
  Bytes.blit_string sp_name 0 buf 1 n;
  n + 1

let decode_span buf len =
  {
    sp_enter = len > 0 && Bytes.get buf 0 = 'B';
    sp_name = (if len <= 1 then "" else Bytes.sub_string buf 1 (len - 1));
  }

let span_type : span_event Re.Type.t =
  Re.Type.register ~encode:encode_span ~decode:decode_span

type Re.User.tag += Cts_span

let span_user : span_event Re.User.t =
  Re.User.register "cts.span" Cts_span span_type

let write_span ~name ~enter =
  Re.User.write span_user { sp_enter = enter; sp_name = name }

(* {2 Ring resolution}

   Events are keyed by ring buffer index, and the runtime recycles
   ring slots when domains die while [Domain.self] ids are never
   reused — so in a process that has ever joined a domain, a worker's
   id and its ring index diverge and "read my own ring's pause clock"
   needs a real mapping.  The handshake: an unresolved domain writes
   the "cts.ring" user event carrying its id; the event necessarily
   lands on that domain's own ring, so the consumer observes (ring,
   id) together and records the mapping.  Resolution costs one poll
   interval once per domain; until then the identity fallback serves
   (exact for processes that never join domains, like the daemon). *)

let ring_id_type : int Re.Type.t =
  Re.Type.register
    ~encode:(fun buf id ->
      Bytes.set_int64_le buf 0 (Int64.of_int id);
      8)
    ~decode:(fun buf len ->
      if len >= 8 then Int64.to_int (Bytes.get_int64_le buf 0) else -1)

type Re.User.tag += Cts_ring

let ring_user : int Re.User.t = Re.User.register "cts.ring" Cts_ring ring_id_type

(* domain id -> ring index, an immutable assoc list swapped by CAS.
   Entries never go stale (a live domain's ring never changes, dead
   domains' ids are never asked for again) and each domain looks its
   id up at most a handful of times before DLS-caching the answer, so
   list lookup is fine. *)
let ring_of_domain : (int * int) list Atomic.t = Atomic.make []

let rec resolve_ring ~ring ~id =
  if id >= 0 then begin
    let cur = Atomic.get ring_of_domain in
    if not (List.mem_assoc id cur) then
      if not (Atomic.compare_and_set ring_of_domain cur ((id, ring) :: cur))
      then resolve_ring ~ring ~id
  end

let resolved_ring : int option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

(* The calling domain's ring index: DLS-cached once resolved; before
   that, (re)send the handshake and fall back to the identity map. *)
let my_ring () =
  let cache = Domain.DLS.get resolved_ring in
  match !cache with
  | Some r -> r
  | None -> (
      let id = (Domain.self () :> int) in
      match List.assoc_opt id (Atomic.get ring_of_domain) with
      | Some r ->
          cache := Some r;
          r
      | None ->
          (try Re.User.write ring_user id with _ -> ());
          id)

(* {2 Pause tracking}

   Shared by the in-process consumer and the cross-process CLI
   tooling: per-ring nesting depth, outermost begin timestamp, and
   the classification of the phase that opened it.  A consumer that
   attaches mid-phase sees an unmatched end; depth stays at zero and
   the partial interval is dropped rather than mis-measured. *)

module Tracker = struct
  type ring_state = {
    mutable depth : int;
    mutable t0 : int64;
    mutable outer : phase;
  }

  type t = { states : (int, ring_state) Hashtbl.t; on_pause : pause -> unit }

  let create ~on_pause () = { states = Hashtbl.create 8; on_pause }

  let state t ring =
    match Hashtbl.find_opt t.states ring with
    | Some s -> s
    | None ->
        let s = { depth = 0; t0 = 0L; outer = Other } in
        Hashtbl.replace t.states ring s;
        s

  (* Ignored phases skip depth accounting on both sides (the same
     constructor is ignored at begin and end, so nesting stays
     balanced). *)
  let phase_begin t ring ts ph =
    match classify ph with
    | None -> ()
    | Some cls ->
        let s = state t ring in
        if s.depth = 0 then begin
          s.t0 <- Re.Timestamp.to_int64 ts;
          s.outer <- cls
        end
        else s.outer <- more_specific s.outer cls;
        s.depth <- s.depth + 1

  let phase_end t ring ts ph =
    match classify ph with
    | None -> ()
    | Some _ ->
        let s = state t ring in
        if s.depth > 0 then begin
          s.depth <- s.depth - 1;
          if s.depth = 0 then begin
            let dur = Int64.sub (Re.Timestamp.to_int64 ts) s.t0 in
            if Int64.compare dur 0L > 0 then
              t.on_pause
                {
                  p_domain = ring;
                  p_phase = s.outer;
                  p_dur_ns = dur;
                  p_wall = Clock.wall ();
                }
          end
        end

  let callbacks ?on_span ?on_lost t =
    let base =
      Re.Callbacks.create ~runtime_begin:(phase_begin t)
        ~runtime_end:(phase_end t)
        ?lost_events:on_lost ()
    in
    match on_span with
    | None -> base
    | Some f ->
        Re.Callbacks.add_user_event span_type
          (fun ring _ts _ev payload ->
            f ~ring ~name:payload.sp_name ~enter:payload.sp_enter)
          base
end

(* {2 Registry schema}

   Declared at module load so /metrics carries the names before the
   first pause.  The histogram covers 0–50 ms in µs: anything longer
   than a major slice budget overflows, which is itself the signal. *)

let () =
  Registry.declare_histogram ~lo:0.0 ~hi:50_000.0 ~bins:50
    "runtime.ev.gc.pause.us";
  Registry.declare_counter "runtime.ev.gc.pauses";
  Registry.declare_counter "runtime.ev.gc.pause_ns";
  Registry.declare_counter "runtime.ev.lost_events"

(* {2 The in-process consumer} *)

(* OCaml's runtime supports at most 128 live domains; ring indices
   stay below that. *)
let max_rings = 128

type t = {
  c_stop : bool Atomic.t;
  c_domain : unit Domain.t;
  c_pause_ns : int Atomic.t array;  (* cumulative, per ring *)
  c_pause_count : int Atomic.t array;
  c_top : pause list ref;  (* guarded by c_top_mutex, length <= top_capacity *)
  c_top_mutex : Mutex.t;
  c_poll_interval_s : float;
  c_bridge : bool;
}

let top_capacity = 32

let current : t option Atomic.t = Atomic.make None

let running () = Atomic.get current <> None

(* Record one pause: per-ring atomics for request attribution, the
   registry for exports, the bounded top list for /profile.  Runs on
   the consumer domain only. *)
let record ~pause_ns ~pause_count ~top ~top_mutex p =
  if p.p_domain >= 0 && p.p_domain < max_rings then begin
    ignore
      (Atomic.fetch_and_add pause_ns.(p.p_domain)
         (Int64.to_int p.p_dur_ns));
    ignore (Atomic.fetch_and_add pause_count.(p.p_domain) 1)
  end;
  let labels =
    Labels.make
      [
        ("domain", string_of_int p.p_domain);
        ("phase", phase_name p.p_phase);
      ]
  in
  let us = Int64.to_float p.p_dur_ns /. 1e3 in
  if Float.is_finite us then
    Registry.observe ~labels "runtime.ev.gc.pause.us" us;
  Registry.incr ~labels "runtime.ev.gc.pauses";
  Registry.incr
    ~labels:(Labels.make [ ("domain", string_of_int p.p_domain) ])
    ~by:(Stdlib.max 0 (Int64.to_int p.p_dur_ns))
    "runtime.ev.gc.pause_ns";
  Mutex.protect top_mutex (fun () ->
      let merged =
        List.sort
          (fun a b -> Int64.compare b.p_dur_ns a.p_dur_ns)
          (p :: !top)
      in
      top := List.filteri (fun i _ -> i < top_capacity) merged)

let default_poll_interval_s = 0.005

let start ?(poll_interval_s = default_poll_interval_s) ?(bridge = false) () =
  if not (Float.is_finite poll_interval_s && poll_interval_s > 0.0) then
    invalid_arg "Obs.Events.start: poll_interval_s must be finite and > 0";
  match Atomic.get current with
  | Some t -> t
  | None ->
      Re.start ();
      Re.resume ();
      let stop_flag = Atomic.make false in
      let pause_ns = Array.init max_rings (fun _ -> Atomic.make 0) in
      let pause_count = Array.init max_rings (fun _ -> Atomic.make 0) in
      let top = ref [] in
      let top_mutex = Mutex.create () in
      let domain =
        Domain.spawn (fun () ->
            (* An escaping exception would strand [stop] in
               [Domain.join]-after-death confusion; the consumer dies
               quietly and [stop] still joins it.  (This library sits
               below Resilience, so no Guard here.) *)
            try
              (* The cursor lives and dies on the consumer domain. *)
              let cursor = Re.create_cursor None in
              let tracker =
                Tracker.create
                  ~on_pause:(record ~pause_ns ~pause_count ~top ~top_mutex)
                  ()
              in
              let callbacks =
                Re.Callbacks.add_user_event ring_id_type
                  (fun ring _ts _ev id -> resolve_ring ~ring ~id)
                  (Tracker.callbacks
                     ~on_lost:(fun _ring n ->
                       Registry.incr ~by:(Stdlib.max 0 n)
                         "runtime.ev.lost_events")
                     tracker)
              in
              (* No condition variables: the stop flag is polled
                 between sleeps, so a stop can never be a lost wakeup
                 — worst case it waits one poll interval. *)
              let rec loop () =
                ignore (Re.read_poll cursor callbacks None);
                if not (Atomic.get stop_flag) then begin
                  Unix.sleepf poll_interval_s;
                  loop ()
                end
              in
              loop ();
              (* Final drain so pauses completed before [stop] are
                 never lost. *)
              ignore (Re.read_poll cursor callbacks None);
              Re.free_cursor cursor
            with _ -> ())
      in
      let t =
        {
          c_stop = stop_flag;
          c_domain = domain;
          c_pause_ns = pause_ns;
          c_pause_count = pause_count;
          c_top = top;
          c_top_mutex = top_mutex;
          c_poll_interval_s = poll_interval_s;
          c_bridge = bridge;
        }
      in
      if bridge then
        Span.set_ring_bridge (Some (fun name enter -> write_span ~name ~enter));
      Atomic.set current (Some t);
      t

let stop t =
  if not (Atomic.exchange t.c_stop true) then begin
    if t.c_bridge then Span.set_ring_bridge None;
    Domain.join t.c_domain;
    Atomic.set current None;
    (* Leave the ring allocated (start is sticky in the runtime) but
       stop paying for event generation until the next [start]. *)
    Re.pause ()
  end

let with_consumer f default =
  match Atomic.get current with None -> default | Some t -> f t

let domain_pause_ns ~domain =
  with_consumer
    (fun t ->
      if domain >= 0 && domain < max_rings then
        Atomic.get t.c_pause_ns.(domain)
      else 0)
    0

(* Short-circuit before [my_ring]: with no consumer there is nobody
   to answer the handshake, and the off path should cost one atomic
   load, not a DLS lookup plus a dead ring write. *)
let cumulative_pause_ns () =
  with_consumer (fun _ -> domain_pause_ns ~domain:(my_ring ())) 0

let domain_stats () =
  with_consumer
    (fun t ->
      let out = ref [] in
      for d = max_rings - 1 downto 0 do
        let n = Atomic.get t.c_pause_count.(d) in
        if n > 0 then
          out := (d, n, Atomic.get t.c_pause_ns.(d)) :: !out
      done;
      !out)
    []

let top_pauses () =
  with_consumer
    (fun t -> Mutex.protect t.c_top_mutex (fun () -> !(t.c_top)))
    []

(* The runtime snapshots OCAML_RUNTIME_EVENTS_DIR at process startup
   — a later [Unix.putenv] changes what [Sys.getenv] answers but not
   where the ring went.  Prefer whichever candidate actually exists
   so the reported path matches the file on disk. *)
let ring_file () =
  let name = string_of_int (Unix.getpid ()) ^ ".events" in
  let candidates =
    (match Sys.getenv_opt "OCAML_RUNTIME_EVENTS_DIR" with
    | Some d when d <> "" -> [ Filename.concat d name ]
    | _ -> [])
    @ [ Filename.concat Filename.current_dir_name name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> path
  | None -> List.hd candidates

let debug_json () =
  with_consumer
    (fun t ->
      Json.Obj
        [
          ("running", Json.Bool true);
          ("poll_interval_s", Json.Float t.c_poll_interval_s);
          ("span_bridge", Json.Bool t.c_bridge);
          ("ring_file", Json.String (ring_file ()));
          ( "domains",
            Json.List
              (List.map
                 (fun (d, n, ns) ->
                   Json.Obj
                     [
                       ("domain", Json.Int d);
                       ("pauses", Json.Int n);
                       ("pause_ns", Json.Int ns);
                     ])
                 (domain_stats ())) );
        ])
    (Json.Obj [ ("running", Json.Bool false) ])

(* {2 Cross-process attachment}

   [cts events tail|stat] consume a live daemon's [PID.events] file
   without restarting it: same tracker, a cursor over someone else's
   ring.  The CLI owns pacing and printing; this module owns decoding. *)

type remote = { r_cursor : Re.cursor; r_callbacks : Re.Callbacks.t }

let attach ~dir ~pid ?on_pause ?on_span ?on_lost () =
  let on_pause = match on_pause with Some f -> f | None -> fun _ -> () in
  match Re.create_cursor (Some (dir, pid)) with
  | cursor ->
      let tracker = Tracker.create ~on_pause () in
      Ok
        {
          r_cursor = cursor;
          r_callbacks = Tracker.callbacks ?on_span ?on_lost tracker;
        }
  | exception e ->
      Error
        (Printf.sprintf "cannot attach to %s/%d.events: %s" dir pid
           (Printexc.to_string e))

let poll remote = Re.read_poll remote.r_cursor remote.r_callbacks None

let detach remote = Re.free_cursor remote.r_cursor
