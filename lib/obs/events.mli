(** GC-pause profiling over OCaml 5's [runtime_events] ring.

    {!start} spawns one dedicated consumer domain that subscribes to
    runtime phase begin/end pairs and folds each domain's {e
    outermost} phase interval into a pause:

    - [runtime.ev.gc.pause.us{domain=…,phase=minor|major|other}] —
      per-domain pause-duration histograms (µs, 0–50 ms);
    - [runtime.ev.gc.pauses{domain,phase}] /
      [runtime.ev.gc.pause_ns{domain}] — pause count and cumulative
      pause time counters;
    - [runtime.ev.lost_events] — ring overwrites the consumer missed.

    A per-ring cumulative pause clock backs request attribution:
    {!cumulative_pause_ns} read at request start and end bounds how
    much of that request's latency the collector ate (see
    [Srv.Pool]'s [srv.http.gc_pause.us]).

    {b Ring index vs domain id.}  Events are keyed by ring buffer
    index: the runtime hands ring [i] to the domain occupying its
    internal slot [i], and recycles slots after a domain terminates —
    while [Domain.self] ids are never reused.  In a process that has
    ever joined a domain the two diverge, so a domain resolves its own
    ring through a handshake: it writes the ["cts.ring"] user event
    (carrying its id), which lands on its own ring, and the consumer
    records the (id, ring) pair.  Resolution takes at most one poll
    interval once per domain; until then the identity mapping serves —
    exact for processes whose domains all live to exit (the daemon
    spawns its workers once, up front).  Per-domain series labels
    ([domain=…]) remain ring-indexed: for long-lived domains that is
    the domain id; under domain churn a ring's history may span
    successive occupants.

    Pause timestamps come from the runtime's own event clock, so
    pauses are measured exactly — but they reach the registry with up
    to one [poll_interval_s] of delay (the consumer's cadence), which
    bounds the attribution error of a single request.

    The optional {b span bridge} ({!start}[ ~bridge:true]) re-emits
    every {!Span} begin/end as the ["cts.span"] user event, so
    external eventring tools ([olly], custom viewers, [cts events
    tail]) see this process's spans interleaved with the GC phases. *)

type phase = Minor | Major | Other

val phase_name : phase -> string

type pause = {
  p_domain : int;  (** ring buffer index (≈ domain id, see above) *)
  p_phase : phase;  (** classification of the outermost runtime phase *)
  p_dur_ns : int64;
  p_wall : float;  (** consumer wall clock when the pause completed *)
}

val pause_json : pause -> Json.t

(** {1 Lifecycle} *)

type t

val start : ?poll_interval_s:float -> ?bridge:bool -> unit -> t
(** Start event collection ([Runtime_events.start]) and spawn the
    consumer domain.  [poll_interval_s] (default 5 ms) is the
    consumer's read cadence; [bridge] (default [false]) additionally
    installs the {!Span} ring bridge.  Idempotent: if a consumer is
    already running, returns it unchanged.  Raises [Invalid_argument]
    on a non-positive or non-finite interval. *)

val stop : t -> unit
(** Flag the consumer, join its domain (it drains the ring once more
    on the way out, so completed pauses are never lost), uninstall
    the span bridge, and pause runtime event generation.  The stop
    flag is polled between sleeps — no condition variable, so no lost
    wakeup; worst case [stop] waits one poll interval.  Idempotent. *)

val running : unit -> bool

(** {1 Reading} *)

val cumulative_pause_ns : unit -> int
(** Total pause nanoseconds the consumer has attributed to the {e
    calling} domain's ring so far; [0] when no consumer runs.  Two
    reads bracketing a request bound its GC overlap (late by at most
    one poll interval).  A freshly spawned domain's first bracket may
    straddle its ring-handshake resolution and over-attribute once;
    callers clamp deltas to [>= 0]. *)

val domain_pause_ns : domain:int -> int
(** Same, for an explicit ring index. *)

val domain_stats : unit -> (int * int * int) list
(** [(domain, pauses, cumulative_pause_ns)] for every ring that has
    recorded at least one pause, sorted by ring index. *)

val top_pauses : unit -> pause list
(** The longest pauses seen since {!start} (at most 32), longest
    first. *)

val debug_json : unit -> Json.t
(** The [/debug/vars] section: running flag, poll interval, bridge
    flag, ring file path, per-domain totals. *)

val ring_file : unit -> string
(** Where this process's ring lives:
    [$OCAML_RUNTIME_EVENTS_DIR/<pid>.events] or [./<pid>.events] —
    whichever exists (the runtime snapshots the variable at process
    startup, so a post-startup [putenv] cannot move the ring) — what
    to hand to [cts events tail PID DIR]. *)

(** {1 The span bridge event}

    Exposed so a second in-process consumer (tests) or an external
    tool linking this library can decode ["cts.span"] events. *)

type span_event = { sp_enter : bool; sp_name : string }

val span_type : span_event Runtime_events.Type.t

val write_span : name:string -> enter:bool -> unit
(** Emit one bridge event directly (the {!Span} hook uses this). *)

(** {1 Cross-process attachment}

    Consume another process's ring — a live daemon started with
    [--events] — without restarting it. *)

type remote

val attach :
  dir:string ->
  pid:int ->
  ?on_pause:(pause -> unit) ->
  ?on_span:(ring:int -> name:string -> enter:bool -> unit) ->
  ?on_lost:(int -> int -> unit) ->
  unit ->
  (remote, string) result
(** Open a cursor over [dir/pid.events].  [on_pause] fires per
    completed outermost phase interval, [on_span] per decoded
    ["cts.span"] bridge event, [on_lost] when the ring overwrote
    unread events.  [Error] (with the reason) when the file does not
    exist or is not a ring. *)

val poll : remote -> int
(** Drain available events through the attach callbacks; returns how
    many were consumed.  The caller owns pacing (sleep between
    polls). *)

val detach : remote -> unit

(** {1 Pause tracking (exposed for tooling and tests)} *)

module Tracker : sig
  type t

  val create : on_pause:(pause -> unit) -> unit -> t

  val callbacks :
    ?on_span:(ring:int -> name:string -> enter:bool -> unit) ->
    ?on_lost:(int -> int -> unit) ->
    t ->
    Runtime_events.Callbacks.t
  (** Callbacks folding phase begin/end pairs into outermost-interval
      pauses; attaching mid-phase drops the partial interval instead
      of mis-measuring it. *)
end
