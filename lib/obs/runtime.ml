(* Runtime introspection: GC and heap figures from [Gc.quick_stat]
   mirrored into registry gauges and exposed raw for /debug/vars.

   Gauges merge across domain shards by SUMMATION, so [sample] must
   have a single writer — the serving pool calls it from the accept
   loop only; the CLI calls it from the main domain.  Read-only
   consumers ([/debug/vars], tests) use [read], which touches no
   registry state. *)

type stats = {
  minor_collections : int;
  major_collections : int;
  compactions : int;
  minor_words : float;
  promoted_words : float;
  major_words : float;
  heap_words : int;
  top_heap_words : int;
  stack_size : int;
}

let read () =
  let g = Gc.quick_stat () in
  {
    minor_collections = g.Gc.minor_collections;
    major_collections = g.Gc.major_collections;
    compactions = g.Gc.compactions;
    minor_words = g.Gc.minor_words;
    promoted_words = g.Gc.promoted_words;
    major_words = g.Gc.major_words;
    heap_words = g.Gc.heap_words;
    top_heap_words = g.Gc.top_heap_words;
    stack_size = g.Gc.stack_size;
  }

(* Declared up front so /metrics carries the schema even before the
   first [sample]. *)
let g_minor = Registry.Gauge.v "runtime.gc.minor_collections"
let g_major = Registry.Gauge.v "runtime.gc.major_collections"
let g_compactions = Registry.Gauge.v "runtime.gc.compactions"
let g_minor_words = Registry.Gauge.v "runtime.gc.minor_words"
let g_promoted_words = Registry.Gauge.v "runtime.gc.promoted_words"
let g_major_words = Registry.Gauge.v "runtime.gc.major_words"
let g_heap_words = Registry.Gauge.v "runtime.heap_words"
let g_top_heap_words = Registry.Gauge.v "runtime.top_heap_words"

(* (wall time, stats) of the last [sample]; None = collector never
   ran, which /healthz reports as [never]. *)
let last_sample : (float * stats) option Atomic.t = Atomic.make None

let sample () =
  let s0 = read () in
  (* OCaml 5 [Gc.quick_stat] aggregates per-domain figures that are
     only refreshed at stop-the-world points.  A daemon whose worker
     domains sit blocked in [select]/[accept] may never reach one, so
     the aggregate stays frozen at its pre-spawn value — observable as
     an all-zero heap on /metrics and /debug/vars.  When the sampler
     sees that unflushed state it forces one minor collection (~1 ms,
     STW) to flush every domain's counters; once flushed, heap_words
     never reads zero again, so this fires at most a handful of times
     at startup. *)
  let s = if s0.heap_words = 0 then ( Gc.minor (); read () ) else s0 in
  Registry.Gauge.set g_minor (float_of_int s.minor_collections);
  Registry.Gauge.set g_major (float_of_int s.major_collections);
  Registry.Gauge.set g_compactions (float_of_int s.compactions);
  Registry.Gauge.set g_minor_words s.minor_words;
  Registry.Gauge.set g_promoted_words s.promoted_words;
  Registry.Gauge.set g_major_words s.major_words;
  Registry.Gauge.set g_heap_words (float_of_int s.heap_words);
  Registry.Gauge.set g_top_heap_words (float_of_int s.top_heap_words);
  Atomic.set last_sample (Some (Clock.wall (), s));
  s

let last () = Atomic.get last_sample

let sample_age_s () =
  match Atomic.get last_sample with
  | None -> None
  | Some (wall, _) -> Some (Float.max 0.0 (Clock.wall () -. wall))

let json_of_stats s =
  Json.Obj
    [
      ("minor_collections", Json.Int s.minor_collections);
      ("major_collections", Json.Int s.major_collections);
      ("compactions", Json.Int s.compactions);
      ("minor_words", Json.Float s.minor_words);
      ("promoted_words", Json.Float s.promoted_words);
      ("major_words", Json.Float s.major_words);
      ("heap_words", Json.Int s.heap_words);
      ("top_heap_words", Json.Int s.top_heap_words);
      ("stack_size", Json.Int s.stack_size);
    ]
