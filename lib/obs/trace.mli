(** W3C trace-context propagation.

    A trace context is a (trace id, span id) pair carried in the
    [traceparent] HTTP header.  The current context is Domain-local
    (set around request dispatch by [Srv.Pool]), so spans and
    histogram exemplars recorded anywhere on the same domain pick it
    up without explicit plumbing. *)

type t = {
  trace_id : string;  (** 32 lowercase hex chars, never all-zero. *)
  span_id : string;  (** 16 lowercase hex chars, never all-zero. *)
}

val generate : unit -> t
(** Fresh random context from a per-domain splitmix64 stream seeded
    with the domain id and the monotonic clock. *)

val parse_traceparent : string -> t option
(** Parse a [traceparent] header value
    ([00-<32 hex>-<16 hex>-<2 hex>]).  Returns [None] on malformed
    input, all-zero ids, or version [ff].  Unknown versions with
    trailing fields are accepted per the W3C spec. *)

val to_traceparent : t -> string
(** Render as a version-00 header value with the sampled flag set. *)

val current : unit -> t option
(** The calling domain's current context, if any. *)

val current_trace_id : unit -> string option
(** [current]'s trace id alone — the exemplar/span hot path. *)

val set : t option -> unit
(** Overwrite the calling domain's context.  Prefer [with_context]
    for scoped use. *)

val with_context : t -> (unit -> 'a) -> 'a
(** [with_context ctx f] runs [f] with [ctx] installed on the calling
    domain, restoring the previous context afterwards (also on
    exceptions). *)
