(** Pluggable telemetry outputs.

    A sink consumes discrete events (span completions, notes) and
    free-form summary lines.  [Null] drops everything at near-zero
    cost; [Text] writes aligned human-readable lines; [Jsonl] writes
    one JSON object per line (machine-readable event log). *)

type event = {
  time : float;  (** wall-clock seconds since the epoch *)
  kind : string;  (** event class, e.g. ["span"] *)
  name : string;
  fields : (string * Json.t) list;
}

type t = Null | Text of out_channel | Jsonl of out_channel

val event :
  ?time:float -> kind:string -> name:string -> (string * Json.t) list -> event
(** [time] defaults to {!Clock.wall}[ ()]. *)

val json_of_event : event -> Json.t
(** The JSON-lines encoding: [{"ts":..., "kind":..., "name":..., <fields>}]. *)

val emit : t -> event -> unit

val message : t -> string -> unit
(** A human-readable summary line: printed verbatim on [Text], wrapped
    as a ["message"] event on [Jsonl], dropped on [Null]. *)

val messagef : t -> ('a, unit, string, unit) format4 -> 'a

val output : t -> string -> unit
(** Raw chunk, no implicit newline — for rendering aligned tables
    cell by cell.  [Jsonl] buffers partial lines and emits one
    ["message"] event per completed line; [Null] drops everything. *)

val set_human : t -> unit
(** Replace the process-wide sink for operational summaries (default:
    [Text stdout]).  The CLI's [--quiet] installs [Null] here. *)

val human_sink : unit -> t

val printf : ('a, unit, string, unit) format4 -> 'a
(** [Printf.printf]-shaped formatting onto the process-wide human
    sink via {!output}.  This is the sanctioned way for library code
    to produce operator-facing text: it respects [--quiet] (a [Null]
    human sink drops the output) and never touches [stdout]
    directly.  Lint rule H1 rejects [Printf.printf] and friends in
    [lib/] for exactly this reason. *)
