(** Pluggable telemetry outputs.

    A sink consumes discrete events (span completions, notes) and
    free-form summary lines.  [Null] drops everything at near-zero
    cost; [Text] writes aligned human-readable lines; [Jsonl] writes
    one JSON object per line (machine-readable event log). *)

type event = {
  time : float;  (** wall-clock seconds since the epoch *)
  kind : string;  (** event class, e.g. ["span"] *)
  name : string;
  fields : (string * Json.t) list;
}

type t = Null | Text of out_channel | Jsonl of out_channel

val event :
  ?time:float -> kind:string -> name:string -> (string * Json.t) list -> event
(** [time] defaults to {!Clock.wall}[ ()]. *)

val json_of_event : event -> Json.t
(** The JSON-lines encoding: [{"ts":..., "kind":..., "name":..., <fields>}]. *)

val emit : t -> event -> unit

val message : t -> string -> unit
(** A human-readable summary line: printed verbatim on [Text], wrapped
    as a ["message"] event on [Jsonl], dropped on [Null]. *)

val messagef : t -> ('a, unit, string, unit) format4 -> 'a

val set_human : t -> unit
(** Replace the process-wide sink for operational summaries (default:
    [Text stdout]).  The CLI's [--quiet] installs [Null] here. *)

val human_sink : unit -> t
