(** Renderers for registry snapshots. *)

val key_string : Registry.key -> string
(** ["name"] or ["name{k=\"v\",...}"] — the key format used by the JSON
    document's object keys. *)

val prometheus : Registry.snapshot -> string
(** Prometheus text exposition (version 0.0.4): dotted names become
    underscored, counters gain [_total], histograms expose cumulative
    [_bucket{le="..."}] series plus [_sum] and [_count].  Observations
    at or above a histogram's upper bound count only towards the
    [+Inf] bucket. *)

val json : Registry.snapshot -> Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {...}}] keyed
    by {!key_string}. *)

val json_string : Registry.snapshot -> string

val text : Registry.snapshot -> string
(** Aligned human-readable summary. *)

type format = Text | Json_doc | Prometheus

val format_of_string : string -> format option
(** ["text"], ["json"], ["prom"]/["prometheus"]. *)

val render : format -> Registry.snapshot -> string
