(* W3C trace-context propagation.

   A context is a (trace id, span id) pair in the `traceparent` wire
   format: version 00, 16-byte trace id and 8-byte parent id as
   lowercase hex.  The current context lives in Domain.DLS, so it
   flows implicitly from the serving pool through the engine into
   every span completion and histogram exemplar recorded on the same
   domain — no plumbing through call signatures. *)

type t = { trace_id : string; span_id : string }

(* {2 Id generation}

   splitmix64 with per-domain state, seeded from the domain id and the
   monotonic clock.  Not cryptographic — trace ids only need to be
   unique enough that two requests' traces never collide in practice.
   Domain.DLS keeps the stream per-domain, so parallel workers never
   contend (same scheme as the span id sequence in Obs.Span). *)

let golden = 0x9e3779b97f4a7c15L

let rng_state : int64 ref Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      ref
        (Int64.add
           (Int64.mul golden (Int64.of_int (((Domain.self () :> int) + 1) * 2654435761)))
           (Clock.monotonic_ns ())))

let next64 () =
  let s = Domain.DLS.get rng_state in
  s := Int64.add !s golden;
  let z = !s in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let hex_digits = "0123456789abcdef"

let hex16_of_int64 v =
  let b = Bytes.create 16 in
  for i = 0 to 15 do
    let nib =
      Int64.to_int (Int64.logand (Int64.shift_right_logical v (4 * (15 - i))) 0xFL)
    in
    Bytes.set b i hex_digits.[nib]
  done;
  Bytes.unsafe_to_string b

(* The all-zero trace/span id is invalid on the wire. *)
let rec nonzero64 () =
  let v = next64 () in
  if Int64.equal v 0L then nonzero64 () else v

let generate () =
  {
    trace_id = hex16_of_int64 (nonzero64 ()) ^ hex16_of_int64 (next64 ());
    span_id = hex16_of_int64 (nonzero64 ());
  }

(* {2 The wire format}

   traceparent: <2 hex version>-<32 hex trace-id>-<16 hex parent-id>-<2
   hex flags>.  Version 00 must be exactly that shape; unknown (but
   well-formed, non-ff) versions may append "-..." fields, which we
   accept and ignore. *)

let is_lower_hex = function '0' .. '9' | 'a' .. 'f' -> true | _ -> false
let all_hex s = s <> "" && String.for_all is_lower_hex s
let all_zero s = String.for_all (Char.equal '0') s

let parse_traceparent raw =
  let s = String.trim raw in
  let n = String.length s in
  if n < 55 then None
  else
    let version = String.sub s 0 2
    and trace_id = String.sub s 3 32
    and span_id = String.sub s 36 16
    and flags = String.sub s 53 2 in
    let dashes = s.[2] = '-' && s.[35] = '-' && s.[52] = '-' in
    let well_formed =
      dashes && all_hex version && all_hex trace_id && all_hex span_id
      && all_hex flags
      && (not (all_zero trace_id))
      && (not (all_zero span_id))
      && version <> "ff"
    in
    let length_ok =
      if version = "00" then n = 55 else n = 55 || (n > 55 && s.[55] = '-')
    in
    if well_formed && length_ok then Some { trace_id; span_id } else None

let to_traceparent t = "00-" ^ t.trace_id ^ "-" ^ t.span_id ^ "-01"

(* {2 The per-domain current context} *)

let context : t option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let current () = !(Domain.DLS.get context)

let current_trace_id () =
  match current () with Some c -> Some c.trace_id | None -> None

let set ctx = Domain.DLS.get context := ctx

let with_context ctx f =
  let cell = Domain.DLS.get context in
  let saved = !cell in
  cell := Some ctx;
  Fun.protect ~finally:(fun () -> cell := saved) f
