type event = {
  time : float;
  kind : string;
  name : string;
  fields : (string * Json.t) list;
}

type t = Null | Text of out_channel | Jsonl of out_channel

let event ?time ~kind ~name fields =
  let time = match time with Some t -> t | None -> Clock.wall () in
  { time; kind; name; fields }

let json_of_event e =
  Json.Obj
    (("ts", Json.Float e.time)
    :: ("kind", Json.String e.kind)
    :: ("name", Json.String e.name)
    :: e.fields)

let text_of_field (k, v) =
  Printf.sprintf "%s=%s"
    k
    (match v with
    | Json.String s -> s
    | Json.Int i -> string_of_int i
    | Json.Float x -> Printf.sprintf "%g" x
    | Json.Bool b -> string_of_bool b
    | Json.Null -> "null"
    | v -> Json.to_string v)

let emit t e =
  match t with
  | Null -> ()
  | Text oc ->
      Printf.fprintf oc "[%s] %s %s\n%!" e.kind e.name
        (String.concat " " (List.map text_of_field e.fields))
  | Jsonl oc ->
      output_string oc (Json.to_string (json_of_event e));
      output_char oc '\n';
      flush oc

let message t line =
  match t with
  | Null -> ()
  | Text oc ->
      output_string oc line;
      output_char oc '\n';
      flush oc
  | Jsonl oc ->
      output_string oc
        (Json.to_string (json_of_event (event ~kind:"message" ~name:"message"
                                          [ ("text", Json.String line) ])));
      output_char oc '\n';
      flush oc

let messagef t fmt = Printf.ksprintf (message t) fmt

(* Raw chunk onto a sink, no implicit newline: library code renders
   aligned tables cell by cell through this.  A [Jsonl] sink cannot
   carry partial lines, so chunks buffer until a '\n' and each
   completed line becomes one "message" event. *)
let jsonl_partial = Buffer.create 256

let output t s =
  match t with
  | Null -> ()
  | Text oc ->
      output_string oc s;
      flush oc
  | Jsonl _ ->
      Buffer.add_string jsonl_partial s;
      let rec drain () =
        let pending = Buffer.contents jsonl_partial in
        match String.index_opt pending '\n' with
        | None -> ()
        | Some i ->
            Buffer.clear jsonl_partial;
            Buffer.add_substring jsonl_partial pending (i + 1)
              (String.length pending - i - 1);
            message t (String.sub pending 0 i);
            drain ()
      in
      drain ()

(* The process-wide sink for human-readable operational summaries
   (engine metric reports and the like).  [--quiet] swaps in [Null]. *)
let human = ref (Text stdout)
let set_human t = human := t
let human_sink () = !human
let printf fmt = Printf.ksprintf (fun s -> output !human s) fmt
