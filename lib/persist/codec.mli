(** JSON wire format for journal records and snapshot state.

    Encoding is deterministic: equal values produce equal bytes
    (Obs.Json floats use the shortest round-tripping representation),
    which is what makes snapshot/replay byte-determinism testable. *)

val encode_op : Cac.Engine.op -> string
(** One journal record payload (a single-line JSON object). *)

val decode_op : string -> (Cac.Engine.op, string) result
(** Inverse of {!encode_op}; [Error] names the missing or mistyped
    field. *)

val json_of_state : Cac.Engine.state -> Obs.Json.t
(** The snapshot body ([links]/[conns]/[breakers]/[next_conn]);
    {!Snapshot} wraps it with schema and coverage metadata. *)

val state_of_json : Obs.Json.t -> (Cac.Engine.state, string) result
