(* Boot-time state reconstruction: newest snapshot, then replay of
   every journal segment beyond it, in sequence order.

   The posture mirrors the WAL reader's two failure shapes.  Torn
   tails are truncated with a warning — they are what a crash leaves
   behind and recovering past them is the whole point.  Interior
   corruption (CRC mismatch, implausible length, undecodable op, or a
   snapshot that fails to parse) fails closed with an error naming the
   file and offset: an admission controller that guesses at its
   connection table over-admits, which is exactly the failure the
   Bahadur-Rao machinery exists to prevent.

   Replay is idempotent at the op level: an op inconsistent with
   current state (duplicate admit, unknown release) is *counted* as
   skipped, not fatal, because a torn-write self-rotation can leave a
   snapshot and the following segment covering overlapping records. *)

let () =
  Obs.Registry.declare_counter "persist.recovery.applied";
  Obs.Registry.declare_counter "persist.recovery.skipped";
  Obs.Registry.declare_counter "persist.recovery.torn_tails"

type segment_report = {
  sr_seq : int;
  sr_file : string;
  sr_records : int;
  sr_applied : int;
  sr_skipped : int;
  sr_bytes : int;
  sr_torn : int option;
}

type report = {
  r_dir : string;
  r_snapshot : (int * string) option;
  r_snapshot_conns : int;
  r_segments : segment_report list;
  r_records : int;
  r_applied : int;
  r_skipped : int;
  r_torn : int;
  r_next_seq : int;
  r_conns : int;
  r_links : int;
}

let empty_report dir =
  {
    r_dir = dir;
    r_snapshot = None;
    r_snapshot_conns = 0;
    r_segments = [];
    r_records = 0;
    r_applied = 0;
    r_skipped = 0;
    r_torn = 0;
    r_next_seq = 0;
    r_conns = 0;
    r_links = 0;
  }

let file_size path =
  match Unix.stat path with
  | { Unix.st_size; _ } -> st_size
  | exception Unix.Unix_error _ -> 0

let replay_segment engine (seq, path) =
  match Wal.read_file path with
  | exception Sys_error e -> Error (Printf.sprintf "%s: unreadable: %s" path e)
  | Error { Wal.offset; reason } ->
      Error
        (Printf.sprintf "%s: corrupt record at offset %d: %s" path offset
           reason)
  | Ok (records, tail) ->
      let applied = ref 0 and skipped = ref 0 in
      let rec go = function
        | [] ->
            let torn =
              match tail with
              | Wal.Tail_clean -> None
              | Wal.Tail_torn off ->
                  Obs.Registry.incr "persist.recovery.torn_tails";
                  Some off
            in
            Obs.Registry.incr ~by:!applied "persist.recovery.applied";
            Obs.Registry.incr ~by:!skipped "persist.recovery.skipped";
            Ok
              {
                sr_seq = seq;
                sr_file = Filename.basename path;
                sr_records = List.length records;
                sr_applied = !applied;
                sr_skipped = !skipped;
                sr_bytes = file_size path;
                sr_torn = torn;
              }
        | r :: rest -> (
            match Codec.decode_op r with
            | Error e ->
                Error (Printf.sprintf "%s: undecodable record: %s" path e)
            | Ok op ->
                (match Cac.Engine.apply engine op with
                | () -> incr applied
                | exception Invalid_argument _ -> incr skipped);
                go rest)
      in
      go records

let recover ~dir engine =
  if not (Sys.file_exists dir) then Ok (empty_report dir)
  else begin
    let snapshot = Snapshot.latest ~dir in
    let restored =
      match snapshot with
      | None -> Ok (-1, 0)
      | Some (_, path) -> (
          match Snapshot.load path with
          | Error e -> Error (Printf.sprintf "%s: %s" path e)
          | Ok (c, st) -> (
              match Cac.Engine.restore engine st with
              | () -> Ok (c, List.length st.Cac.Engine.s_conns)
              | exception Invalid_argument e ->
                  Error (Printf.sprintf "%s: inconsistent snapshot: %s" path e)
              ))
    in
    match restored with
    | Error e -> Error e
    | Ok (covers, snapshot_conns) -> (
        let all_segments = Wal.segments dir in
        let to_replay =
          List.filter (fun (seq, _) -> seq > covers) all_segments
        in
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | seg :: rest -> (
              match replay_segment engine seg with
              | Ok sr -> go (sr :: acc) rest
              | Error _ as e -> e)
        in
        match go [] to_replay with
        | Error e -> Error e
        | Ok segs ->
            let sum f = List.fold_left (fun a s -> a + f s) 0 segs in
            let max_seq =
              List.fold_left
                (fun a (seq, _) -> Stdlib.max a seq)
                covers all_segments
            in
            Ok
              {
                r_dir = dir;
                r_snapshot = snapshot;
                r_snapshot_conns = snapshot_conns;
                r_segments = segs;
                r_records = sum (fun s -> s.sr_records);
                r_applied = sum (fun s -> s.sr_applied);
                r_skipped = sum (fun s -> s.sr_skipped);
                r_torn =
                  sum (fun s -> match s.sr_torn with Some _ -> 1 | None -> 0);
                r_next_seq = max_seq + 1;
                r_conns = Cac.Engine.active_connections engine;
                r_links = List.length (Cac.Engine.links engine);
              })
  end

let verify ~dir = recover ~dir (Cac.Engine.create ())

let report_json r =
  let open Obs.Json in
  Obj
    [
      ("dir", String r.r_dir);
      ( "snapshot",
        match r.r_snapshot with
        | None -> Null
        | Some (covers, path) ->
            Obj
              [
                ("file", String (Filename.basename path));
                ("covers", Int covers);
                ("connections", Int r.r_snapshot_conns);
              ] );
      ( "segments",
        List
          (List.map
             (fun s ->
               Obj
                 [
                   ("seq", Int s.sr_seq);
                   ("file", String s.sr_file);
                   ("records", Int s.sr_records);
                   ("applied", Int s.sr_applied);
                   ("skipped", Int s.sr_skipped);
                   ("bytes", Int s.sr_bytes);
                   ( "torn_at",
                     match s.sr_torn with None -> Null | Some o -> Int o );
                 ])
             r.r_segments) );
      ("records", Int r.r_records);
      ("applied", Int r.r_applied);
      ("skipped", Int r.r_skipped);
      ("torn_tails", Int r.r_torn);
      ("next_seq", Int r.r_next_seq);
      ("links", Int r.r_links);
      ("connections", Int r.r_conns);
    ]
