(* Checkpoint files: the full engine state as one JSON document,
   written to a temp file, fsynced, then atomically renamed into
   place.  A snapshot names the journal segment it covers; recovery
   replays only segments beyond it. *)

let () =
  Obs.Registry.declare_counter "persist.snapshot.writes";
  Obs.Registry.declare_counter "persist.snapshot.errors";
  Obs.Registry.declare_gauge "persist.snapshot.age_s"

let schema = "cts.persist.snapshot.v1"
let name covers = Printf.sprintf "snapshot-%08d.json" covers

let seq_of_name n =
  if
    String.length n = 22
    && String.starts_with ~prefix:"snapshot-" n
    && String.ends_with ~suffix:".json" n
  then int_of_string_opt (String.sub n 9 8)
  else None

let list ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter_map (fun n ->
             Option.map (fun c -> (c, Filename.concat dir n)) (seq_of_name n))
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let latest ~dir =
  match List.rev (list ~dir) with [] -> None | newest :: _ -> Some newest

let encode ~covers st =
  Obs.Json.to_string
    (Obs.Json.Obj
       [
         ("schema", Obs.Json.String schema);
         ("covers", Obs.Json.Int covers);
         ("state", Codec.json_of_state st);
       ])
  ^ "\n"

let decode s =
  match Obs.Json.of_string s with
  | None -> Error "unparseable JSON"
  | Some j -> (
      match Obs.Json.member "schema" j with
      | Some (Obs.Json.String sc) when sc = schema -> (
          match (Obs.Json.member "covers" j, Obs.Json.member "state" j) with
          | Some (Obs.Json.Int covers), Some stj -> (
              match Codec.state_of_json stj with
              | Ok st -> Ok (covers, st)
              | Error e -> Error e)
          | _ -> Error "missing covers or state")
      | _ -> Error (Printf.sprintf "unknown snapshot schema (expected %s)" schema))

(* The [persist.snapshot.write] fault point decides the write's fate
   before it is issued: a torn write leaves a partial temp file that
   is never renamed (benign residue — the previous snapshot stays
   authoritative), while a short write renames a truncated document
   into place — the corrupt-newest-snapshot case recovery must fail
   closed on. *)
let write ~dir ~covers st =
  let payload = encode ~covers st in
  let len = String.length payload in
  let plan = Resilience.Fault.write_plan "persist.snapshot.write" ~len in
  let final = Filename.concat dir (name covers) in
  let tmp = final ^ ".tmp" in
  let n =
    match plan with
    | Resilience.Fault.Write_all -> len
    | Resilience.Fault.Write_short n | Resilience.Fault.Write_torn n -> n
  in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Ioutil.write_all fd payload 0 n;
      Unix.fsync fd);
  (match plan with
  | Resilience.Fault.Write_torn _ ->
      failwith "persist.snapshot.write: torn write (temp file abandoned)"
  | Resilience.Fault.Write_all | Resilience.Fault.Write_short _ ->
      Unix.rename tmp final;
      Ioutil.fsync_dir dir);
  Obs.Registry.incr "persist.snapshot.writes"

let load path =
  match Ioutil.read_string path with
  | exception Sys_error e -> Error e
  | s -> decode s
