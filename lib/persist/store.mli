(** The daemon-facing durability façade: one state directory, one
    journal hook, one barrier, checkpointing and compaction.

    Wiring (see [cts serve]): recover with {!Recovery.recover}, open
    the store with the recovery's [r_next_seq], install {!journal} as
    the engine's hook ({!Cac.Engine.set_journal}), call {!barrier}
    after each acked mutation, {!maybe_snapshot} from the pool's
    housekeeping tick, {!snapshot} + {!close} on graceful drain —
    {e after} the worker domains have joined, so an admit racing the
    drain is either fully journaled and snapshotted or was refused. *)

type t

val open_ :
  dir:string -> policy:Wal.policy -> snapshot_every:int -> next_seq:int -> t
(** Create the directory if needed, take an exclusive kernel lock on
    [DIR/LOCK], and start the WAL on segment [next_seq] (use
    {!Recovery.recover}'s [r_next_seq]).  [snapshot_every] = 0
    disables automatic checkpoints (shutdown still writes one).

    The lock makes the directory single-owner: a second opener gets a
    [Sys_error] instead of silently compacting away the segment the
    first store is appending to.  Kernel locks die with the process,
    so a SIGKILLed owner leaves the directory immediately
    reopenable.  Raises [Sys_error] when the directory is already
    owned. *)

val journal : t -> Cac.Engine.op -> unit
(** The engine journal hook: encode, push to the WAL ring, return.
    Never raises, never blocks — safe inside the engine critical
    section. *)

val barrier : t -> unit
(** Block until the fsync policy's durability watermark covers every
    op journaled before this call.  Call {e outside} the engine lock,
    after a successful mutation, before acking the client. *)

val snapshot :
  t ->
  with_engine:((Cac.Engine.t -> Cac.Engine.state * int) -> Cac.Engine.state * int) ->
  (int, string) result
(** Checkpoint now.  [with_engine] must run its argument under the
    engine's critical section (e.g. [Srv.Cac_api.with_engine api]);
    state export and journal rotation happen atomically inside it, the
    file write outside.  On success returns the covered segment and
    compacts everything it subsumes; on failure counts
    [persist.snapshot.errors] and leaves the journal authoritative. *)

val snapshot_due : t -> bool

val maybe_snapshot :
  t ->
  with_engine:((Cac.Engine.t -> Cac.Engine.state * int) -> Cac.Engine.state * int) ->
  (int, string) result option
(** Housekeeping-tick entry point: refresh [persist.snapshot.age_s]
    and checkpoint iff [snapshot_every] journaled ops have accumulated
    since the last cut. *)

val close : t -> unit
(** Drain and close the WAL (final fsync, flusher joined).  Does not
    snapshot — callers decide whether a shutdown checkpoint is wanted
    first. *)

val dir : t -> string
val policy : t -> Wal.policy
val wal_stats : t -> Wal.stats

val debug_json : t -> Obs.Json.t
(** Live store figures for the [/debug/vars] persist section. *)
