(* JSON wire format for journal records and snapshot state.  One op
   per WAL record payload; floats render with Obs.Json's
   shortest-round-trip encoder, so encoding is deterministic — equal
   values always produce equal bytes (recovery determinism leans on
   this). *)

module J = Obs.Json
module E = Cac.Engine

let json_of_op (op : E.op) =
  match op with
  | E.Op_add_link { id; capacity; buffer; target_clr } ->
      J.Obj
        [
          ("op", J.String "add_link");
          ("id", J.String id);
          ("capacity", J.Float capacity);
          ("buffer", J.Float buffer);
          ("target_clr", J.Float target_clr);
        ]
  | E.Op_remove_link id ->
      J.Obj [ ("op", J.String "remove_link"); ("id", J.String id) ]
  | E.Op_admit { conn; link; cls } ->
      J.Obj
        [
          ("op", J.String "admit");
          ("conn", J.Int conn);
          ("link", J.String link);
          ("class", J.String cls);
        ]
  | E.Op_release conn ->
      J.Obj [ ("op", J.String "release"); ("conn", J.Int conn) ]

let encode_op op = J.to_string (json_of_op op)

(* Obs.Json parses exactly-integral numbers as [Int], so every float
   field decoder must accept both shapes. *)
let float_member key j =
  match J.member key j with
  | Some (J.Float f) -> Some f
  | Some (J.Int i) -> Some (float_of_int i)
  | _ -> None

let string_member key j =
  match J.member key j with Some (J.String s) -> Some s | _ -> None

let int_member key j =
  match J.member key j with Some (J.Int i) -> Some i | _ -> None

let op_of_json j =
  match string_member "op" j with
  | Some "add_link" -> (
      match
        ( string_member "id" j,
          float_member "capacity" j,
          float_member "buffer" j,
          float_member "target_clr" j )
      with
      | Some id, Some capacity, Some buffer, Some target_clr ->
          Ok (E.Op_add_link { id; capacity; buffer; target_clr })
      | _ -> Error "add_link: missing or mistyped field")
  | Some "remove_link" -> (
      match string_member "id" j with
      | Some id -> Ok (E.Op_remove_link id)
      | None -> Error "remove_link: missing id")
  | Some "admit" -> (
      match
        (int_member "conn" j, string_member "link" j, string_member "class" j)
      with
      | Some conn, Some link, Some cls -> Ok (E.Op_admit { conn; link; cls })
      | _ -> Error "admit: missing or mistyped field")
  | Some "release" -> (
      match int_member "conn" j with
      | Some conn -> Ok (E.Op_release conn)
      | None -> Error "release: missing conn")
  | Some other -> Error (Printf.sprintf "unknown op %S" other)
  | None -> Error "missing op field"

let decode_op s =
  match J.of_string s with
  | None -> Error "unparseable JSON"
  | Some j -> op_of_json j

let json_of_state (st : E.state) =
  J.Obj
    [
      ("next_conn", J.Int st.E.s_next_conn);
      ( "links",
        J.List
          (List.map
             (fun (ls : E.link_state) ->
               J.Obj
                 [
                   ("id", J.String ls.E.l_id);
                   ("capacity", J.Float ls.E.l_capacity);
                   ("buffer", J.Float ls.E.l_buffer);
                   ("target_clr", J.Float ls.E.l_target_clr);
                 ])
             st.E.s_links) );
      ( "conns",
        J.List
          (List.map
             (fun (cs : E.conn_state) ->
               J.Obj
                 [
                   ("conn", J.Int cs.E.c_conn);
                   ("link", J.String cs.E.c_link);
                   ("class", J.String cs.E.c_class);
                 ])
             st.E.s_conns) );
      ( "breakers",
        J.List
          (List.map
             (fun (bs : E.breaker_snapshot) ->
               J.Obj
                 [
                   ("link", J.String bs.E.b_link);
                   ("class", J.String bs.E.b_class);
                   ("state", J.String bs.E.b_state);
                 ])
             st.E.s_breakers) );
    ]

(* Decoding goes through a local exception to keep the field plumbing
   readable; the boundary re-packages it as a result. *)
exception Bad of string

let need what = function Some v -> v | None -> raise (Bad what)

let list_member key j =
  match J.member key j with
  | Some (J.List l) -> l
  | _ -> raise (Bad (key ^ ": expected a list"))

let state_of_json j =
  match
    let links =
      List.map
        (fun lj ->
          {
            E.l_id = need "link id" (string_member "id" lj);
            l_capacity = need "link capacity" (float_member "capacity" lj);
            l_buffer = need "link buffer" (float_member "buffer" lj);
            l_target_clr = need "link target_clr" (float_member "target_clr" lj);
          })
        (list_member "links" j)
    in
    let conns =
      List.map
        (fun cj ->
          {
            E.c_conn = need "conn id" (int_member "conn" cj);
            c_link = need "conn link" (string_member "link" cj);
            c_class = need "conn class" (string_member "class" cj);
          })
        (list_member "conns" j)
    in
    let breakers =
      List.map
        (fun bj ->
          {
            E.b_link = need "breaker link" (string_member "link" bj);
            b_class = need "breaker class" (string_member "class" bj);
            b_state = need "breaker state" (string_member "state" bj);
          })
        (list_member "breakers" j)
    in
    {
      E.s_links = links;
      s_conns = conns;
      s_breakers = breakers;
      s_next_conn = need "next_conn" (int_member "next_conn" j);
    }
  with
  | st -> Ok st
  | exception Bad what -> Error what
