(** File-I/O helpers for the persistence layer.  Every function here
    may block; never call one while holding a lock. *)

val write_all : Unix.file_descr -> string -> int -> int -> unit
(** [write_all fd s pos len] writes [s.[pos .. pos+len-1]] fully,
    looping over short writes.  Raises [Unix.Unix_error] on I/O
    failure. *)

val fsync_dir : string -> unit
(** Fsync a directory so a just-created or just-renamed name survives
    a crash.  Best-effort: errors are swallowed. *)

val read_string : string -> string
(** Read a whole file.  Raises [Sys_error] on open/read failure. *)

val mkdir_p : string -> unit
(** Create a directory and any missing parents (mode 0o755). *)
