(** Engine checkpoints: the full {!Cac.Engine.state} as one JSON
    document ([cts.persist.snapshot.v1]), written temp-file-first with
    an fsync and an atomic rename, so a crash mid-checkpoint can never
    destroy the previous snapshot.  Each snapshot records [covers],
    the highest journal segment whose records it subsumes; compaction
    deletes segments at or below it. *)

val name : int -> string
(** [snapshot-%08d.json], keyed by the covered segment. *)

val seq_of_name : string -> int option

val list : dir:string -> (int * string) list
(** All snapshots in a directory as [(covers, path)], ascending. *)

val latest : dir:string -> (int * string) option

val encode : covers:int -> Cac.Engine.state -> string
(** Deterministic: equal states encode byte-identically. *)

val decode : string -> (int * Cac.Engine.state, string) result

val write : dir:string -> covers:int -> Cac.Engine.state -> unit
(** Write a checkpoint (temp file, fsync, rename, directory fsync).
    The [persist.snapshot.write] fault point can raise, truncate the
    document (short-write: the corrupt result {e is} renamed into
    place) or tear it (torn-write: the temp file is abandoned and this
    raises — the previous snapshot stays authoritative).  Raises on
    I/O failure; callers count [persist.snapshot.errors]. *)

val load : string -> (int * Cac.Engine.state, string) result
