(* CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320): the framing
   checksum behind WAL records and snapshot files.  Table-driven; the
   table is immutable after initialisation (C1 waiver in .ctslint,
   same rationale as the registry's shard table). *)

let table =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
      done;
      !c)

let digest ?(crc = 0) s =
  let c = ref (crc lxor 0xffffffff) in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xffffffff
