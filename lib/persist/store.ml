(* The durability façade the daemon wires in: one state directory
   holding WAL segments and snapshots, one journal hook for the
   engine, one barrier for request handlers, and checkpoint/compaction
   plumbing for the pool's housekeeping tick.

   Locking contract: [journal] runs inside the caller's engine
   critical section and only does ring work; [snapshot] takes the
   engine lock just long enough to export state and cut the journal
   (via the caller-supplied [with_engine]), then writes the checkpoint
   outside any lock. *)

let () =
  Obs.Registry.declare_counter "persist.store.journaled";
  Obs.Registry.declare_counter "persist.snapshot.compacted"

type t = {
  dir : string;
  lock : Unix.file_descr;  (* exclusive lockf on DIR/LOCK, held for life *)
  wal : Wal.t;
  snapshot_every : int;
  appended : int Atomic.t;  (* journaled ops since the last snapshot cut *)
  last_snapshot : float Atomic.t;  (* wall seconds; 0 = never *)
}

(* Two stores on one directory silently destroy each other: the second
   opener's boot snapshot compacts away the segment the first is still
   appending to, so the first keeps journaling — durably — into an
   unlinked inode.  The kernel lock makes ownership exclusive and
   drops with the process, so a SIGKILLed owner never wedges the
   directory.

   POSIX trap: lockf is an fcntl record lock, and the kernel drops a
   process's record locks on a file when the process closes *any* fd
   referring to it.  Nothing in this process may therefore open
   DIR/LOCK again while the store is live — read it from another
   process (it holds the owner pid) or not at all. *)
let acquire_lock dir =
  let path = Filename.concat dir "LOCK" in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  match Unix.lockf fd Unix.F_TLOCK 0 with
  | () ->
      (* The pid is advisory, for post-mortem reads; the kernel lock is
         the actual mutex. *)
      (try
         Unix.ftruncate fd 0;
         let pid = string_of_int (Unix.getpid ()) ^ "\n" in
         ignore (Unix.write_substring fd pid 0 (String.length pid))
       with Unix.Unix_error _ -> ());
      fd
  | exception Unix.Unix_error ((EAGAIN | EACCES | EDEADLK), _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise
        (Sys_error
           (Printf.sprintf
              "state dir %s is locked by another process (%s names its pid)"
              dir path))

let open_ ~dir ~policy ~snapshot_every ~next_seq =
  if snapshot_every < 0 then invalid_arg "Store.open_: snapshot_every < 0";
  Ioutil.mkdir_p dir;
  let lock = acquire_lock dir in
  match Wal.create ~dir ~policy ~seq:next_seq () with
  | wal ->
      {
        dir;
        lock;
        wal;
        snapshot_every;
        appended = Atomic.make 0;
        last_snapshot = Atomic.make 0.0;
      }
  | exception exn ->
      (try Unix.close lock with Unix.Unix_error _ -> ());
      raise exn

let dir t = t.dir
let policy t = Wal.policy t.wal
let wal_stats t = Wal.stats t.wal

(* The engine hook.  Must never raise (the engine has already
   mutated); must never block (it runs under the engine mutex). *)
let journal t op =
  Resilience.Guard.protect ~label:"persist.store.journal"
    ~fallback:(fun _ -> ())
    (fun () ->
      if Wal.append t.wal (Codec.encode_op op) then begin
        Atomic.incr t.appended;
        Obs.Registry.incr "persist.store.journaled"
      end)

let barrier t = Wal.barrier t.wal

let update_age t =
  let last = Atomic.get t.last_snapshot in
  if last > 0.0 then
    Obs.Registry.set_gauge "persist.snapshot.age_s" (Obs.Clock.wall () -. last)

(* Retire everything the new snapshot subsumes: journal segments at or
   below [covers], and any older snapshot.  Best-effort — a leftover
   file is re-collected by the next compaction. *)
let compact t ~covers =
  let removed = ref 0 in
  List.iter
    (fun (seq, path) ->
      if seq <= covers then (
        (try Sys.remove path with Sys_error _ -> ());
        incr removed))
    (Wal.segments t.dir);
  List.iter
    (fun (c, path) ->
      if c < covers then (
        (try Sys.remove path with Sys_error _ -> ());
        incr removed))
    (Snapshot.list ~dir:t.dir);
  (try Sys.remove (Filename.concat t.dir (Snapshot.name covers) ^ ".tmp")
   with Sys_error _ -> ());
  if !removed > 0 then
    Obs.Registry.incr ~by:!removed "persist.snapshot.compacted"

let snapshot t ~with_engine =
  (* Atomic cut: export and rotation happen under the engine lock, so
     the snapshot covers exactly the records journaled before it and
     the new segment holds exactly those after. *)
  let st, covers =
    with_engine (fun e ->
        let st = Cac.Engine.export e in
        let covers = Wal.rotate t.wal in
        Atomic.set t.appended 0;
        (st, covers))
  in
  match Snapshot.write ~dir:t.dir ~covers st with
  | () ->
      Atomic.set t.last_snapshot (Obs.Clock.wall ());
      update_age t;
      compact t ~covers;
      Ok covers
  | exception exn ->
      Obs.Registry.incr "persist.snapshot.errors";
      Error (Printexc.to_string exn)

let snapshot_due t =
  t.snapshot_every > 0 && Atomic.get t.appended >= t.snapshot_every

let maybe_snapshot t ~with_engine =
  update_age t;
  if snapshot_due t then Some (snapshot t ~with_engine) else None

let close t =
  Wal.close t.wal;
  (* Closing the fd releases the lockf lock. *)
  try Unix.close t.lock with Unix.Unix_error _ -> ()

let debug_json t =
  let s = Wal.stats t.wal in
  let last = Atomic.get t.last_snapshot in
  let open Obs.Json in
  Obj
    [
      ("dir", String t.dir);
      ("fsync_policy", String (Wal.policy_name (Wal.policy t.wal)));
      ("snapshot_every", Int t.snapshot_every);
      ("journaled_since_snapshot", Int (Atomic.get t.appended));
      ("wal_appended", Int s.Wal.appended);
      ("wal_written", Int s.Wal.written);
      ("wal_synced", Int s.Wal.synced);
      ("wal_segment", Int s.Wal.segment);
      ( "snapshot_age_s",
        if last > 0.0 then Float (Obs.Clock.wall () -. last) else Null );
    ]
