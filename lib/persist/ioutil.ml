(* Small file-I/O helpers shared by the WAL writer and the snapshot
   writer.  Everything here blocks; callers must never hold a lock
   (ctslint L1 — the flusher domain and the snapshot path both run
   lock-free). *)

let write_all fd s pos len =
  let b = Bytes.unsafe_of_string s in
  let rec go pos len =
    if len > 0 then begin
      let n = Unix.single_write fd b pos len in
      go (pos + n) (len - n)
    end
  in
  go pos len

(* Durability of the *name*: after creating or renaming a file, the
   directory entry itself must survive a crash.  Best-effort — some
   filesystems refuse directory fsync. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | dfd ->
      (try Unix.fsync dfd with Unix.Unix_error _ -> ());
      (try Unix.close dfd with Unix.Unix_error _ -> ())

let read_string path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end
