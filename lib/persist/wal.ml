(* Append-only journal of engine mutations.

   {2 Record framing}

   Each record is [len:4 LE][crc32(payload):4 LE][payload].  The
   reader walks frames sequentially: a final frame cut off by EOF is a
   {e torn tail} — the expected residue of a crash mid-write, reported
   and ignored — while a complete frame whose CRC does not match is
   {e interior corruption}, which fails closed (the journal cannot be
   trusted past that point).

   {2 Threading}

   [append] / [rotate] / [barrier] are called under the caller's
   critical section (the server runs the engine under a mutex) and do
   ring work only: frame, push, signal.  A dedicated flusher domain
   owns the segment fd and performs every [write]/[fsync], so no
   blocking I/O ever runs under a lock — ctslint's L1 rule, with
   [Unix.fsync]/[Unix.single_write] in its blocking vocabulary, checks
   exactly this split.

   {2 Watermarks}

   Records get dense ids at append time.  The flusher publishes two
   watermarks: [written_id] (handed to the OS — survives SIGKILL via
   the page cache) and [synced_id] (fsynced — survives power loss).
   [barrier] maps the fsync policy onto them: [Always] waits for
   synced, [Every _] for written, [Never] returns immediately.  A
   record lost to an injected fault still advances the watermarks
   (counted in [persist.wal.lost]) so barriers can never deadlock on a
   record that will never hit the disk. *)

let () =
  Obs.Registry.declare_counter "persist.wal.records";
  Obs.Registry.declare_counter "persist.wal.dropped";
  Obs.Registry.declare_counter "persist.wal.lost";
  Obs.Registry.declare_counter "persist.wal.fsyncs";
  Obs.Registry.declare_counter "persist.wal.fsync_errors";
  Obs.Registry.declare_counter "persist.wal.rotations";
  Obs.Registry.declare_gauge "persist.wal.bytes";
  Obs.Registry.set_histogram_spec ~lo:0.0 ~hi:100_000.0 ~bins:40
    "persist.wal.append.us";
  Obs.Registry.set_histogram_spec ~lo:0.0 ~hi:100_000.0 ~bins:40
    "persist.fsync.us"

(* {2 Fsync policy} *)

type policy = Always | Every of int | Never

let policy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "always" -> Ok Always
  | "never" -> Ok Never
  | s -> (
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "every" -> (
          let n = String.sub s (i + 1) (String.length s - i - 1) in
          match int_of_string_opt n with
          | Some n when n >= 1 -> Ok (Every n)
          | _ ->
              Error
                (Printf.sprintf "fsync policy %S: every:N needs an N >= 1" s))
      | _ ->
          Error
            (Printf.sprintf
               "unknown fsync policy %S (expected always, every:N or never)" s))

let policy_name = function
  | Always -> "always"
  | Never -> "never"
  | Every n -> Printf.sprintf "every:%d" n

(* {2 Framing} *)

let max_record_len = 1 lsl 20

let frame payload =
  let len = String.length payload in
  if len = 0 || len > max_record_len then
    invalid_arg "Wal.frame: record length out of range";
  let b = Bytes.create (8 + len) in
  Bytes.set_int32_le b 0 (Int32.of_int len);
  Bytes.set_int32_le b 4 (Int32.of_int (Crc32.digest payload));
  Bytes.blit_string payload 0 b 8 len;
  Bytes.unsafe_to_string b

type tail = Tail_clean | Tail_torn of int
type corrupt = { offset : int; reason : string }

let parse data =
  let n = String.length data in
  let rec go off acc =
    if off = n then Ok (List.rev acc, Tail_clean)
    else if n - off < 8 then Ok (List.rev acc, Tail_torn off)
    else
      let len = Int32.to_int (String.get_int32_le data off) in
      if len <= 0 || len > max_record_len then
        Error { offset = off; reason = Printf.sprintf "implausible record length %d" len }
      else if off + 8 + len > n then Ok (List.rev acc, Tail_torn off)
      else
        let crc = Int32.to_int (String.get_int32_le data (off + 4)) land 0xffffffff in
        let payload = String.sub data (off + 8) len in
        if Crc32.digest payload <> crc then
          Error { offset = off; reason = "crc mismatch" }
        else go (off + 8 + len) (payload :: acc)
  in
  go 0 []

let read_file path = parse (Ioutil.read_string path)

(* {2 Segment naming} *)

let segment_name seq = Printf.sprintf "wal-%08d.log" seq

let segment_seq name =
  if
    String.length name = 16
    && String.starts_with ~prefix:"wal-" name
    && String.ends_with ~suffix:".log" name
  then int_of_string_opt (String.sub name 4 8)
  else None

let segments dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter_map (fun n ->
             Option.map
               (fun seq -> (seq, Filename.concat dir n))
               (segment_seq n))
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

(* {2 The writer} *)

type item = Rec of { id : int; frame : string } | Rotate of int | Quit

type t = {
  dir : string;
  policy : policy;
  capacity : int;
  mutex : Mutex.t;
  work : Condition.t;  (* flusher waits for queue items *)
  flushed : Condition.t;  (* barrier waiters wait for watermarks *)
  queue : item Queue.t;
  mutable next_id : int;
  mutable written_id : int;
  mutable synced_id : int;
  mutable seq : int;  (* segment that new appends target *)
  mutable closed : bool;
  mutable flusher : unit Domain.t option;
}

type stats = { appended : int; written : int; synced : int; segment : int }

let stats t =
  Mutex.protect t.mutex (fun () ->
      {
        appended = t.next_id;
        written = t.written_id + 1;
        synced = t.synced_id + 1;
        segment = t.seq;
      })

let policy t = t.policy
let dir t = t.dir

let open_segment t seq =
  let path = Filename.concat t.dir (segment_name seq) in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
  Ioutil.fsync_dir t.dir;
  fd

type wrote = Wrote_all | Wrote_torn | Wrote_lost

(* Issue one record's write, letting the fault switchboard decide its
   fate.  A short write is deliberately left *unnoticed* — later
   records land after the partial frame, manufacturing the
   interior-corruption failure mode recovery must fail closed on.  A
   torn write severs the segment (the caller rotates), as a crash
   mid-write would. *)
let write_record fd frame_s =
  let t0 = Obs.Clock.monotonic_ns () in
  let len = String.length frame_s in
  let outcome =
    match Resilience.Fault.write_plan "persist.wal.append" ~len with
    | exception Resilience.Fault.Injected _ -> Wrote_lost
    | plan -> (
        let n, wrote =
          match plan with
          | Resilience.Fault.Write_all -> (len, Wrote_all)
          | Resilience.Fault.Write_short n -> (n, Wrote_lost)
          | Resilience.Fault.Write_torn n -> (n, Wrote_torn)
        in
        match Ioutil.write_all fd frame_s 0 n with
        | () ->
            Obs.Registry.add_gauge "persist.wal.bytes" (float_of_int n);
            wrote
        | exception Unix.Unix_error _ -> Wrote_lost)
  in
  Obs.Registry.observe "persist.wal.append.us"
    (Obs.Clock.ns_to_us (Obs.Clock.elapsed_ns ~since:t0));
  outcome

let flusher_main t seq0 =
  let fd = ref (open_segment t seq0) in
  let cur_seq = ref seq0 in
  let unsynced = ref 0 in
  let last_written = ref (-1) in
  let last_synced = ref (-1) in
  let quit = ref false in
  let fsync_now () =
    let t0 = Obs.Clock.monotonic_ns () in
    (match
       Resilience.Fault.inject "persist.wal.fsync";
       Unix.fsync !fd
     with
    | () ->
        Obs.Registry.incr "persist.wal.fsyncs";
        last_synced := !last_written;
        unsynced := 0
    | exception (Resilience.Fault.Injected _ | Unix.Unix_error _) -> (
        Obs.Registry.incr "persist.wal.fsync_errors";
        (* The injected failure is counted; the data still reaches the
           platter so an acked record is never silently volatile. *)
        try
          Unix.fsync !fd;
          Obs.Registry.incr "persist.wal.fsyncs";
          last_synced := !last_written;
          unsynced := 0
        with Unix.Unix_error _ -> ()));
    Obs.Registry.observe "persist.fsync.us"
      (Obs.Clock.ns_to_us (Obs.Clock.elapsed_ns ~since:t0))
  in
  let close_fd () = try Unix.close !fd with Unix.Unix_error _ -> () in
  let move_to seq =
    (match t.policy with Never -> () | Always | Every _ -> fsync_now ());
    close_fd ();
    cur_seq := seq;
    fd := open_segment t seq;
    Obs.Registry.incr "persist.wal.rotations"
  in
  let process = function
    | Quit -> quit := true
    | Rotate target -> if target > !cur_seq then move_to target
    | Rec { id; frame } ->
        (match write_record !fd frame with
        | Wrote_all -> ()
        | Wrote_lost -> Obs.Registry.incr "persist.wal.lost"
        | Wrote_torn ->
            (* Sever the segment as a crash would, then give the record
               a clean copy at the head of the next one; the torn tail
               is what recovery's truncation path digests. *)
            let next =
              Mutex.protect t.mutex (fun () ->
                  t.seq <- t.seq + 1;
                  t.seq)
            in
            move_to next;
            (try
               Ioutil.write_all !fd frame 0 (String.length frame);
               Obs.Registry.add_gauge "persist.wal.bytes"
                 (float_of_int (String.length frame))
             with Unix.Unix_error _ -> Obs.Registry.incr "persist.wal.lost"));
        last_written := id;
        incr unsynced
  in
  let rec loop () =
    let batch =
      Mutex.protect t.mutex (fun () ->
          while Queue.is_empty t.queue do
            Condition.wait t.work t.mutex
          done;
          let items = ref [] in
          while not (Queue.is_empty t.queue) do
            items := Queue.pop t.queue :: !items
          done;
          List.rev !items)
    in
    List.iter process batch;
    let need_sync =
      match t.policy with
      | Always -> !unsynced > 0
      | Every n -> !unsynced >= n
      | Never -> false
    in
    (* Graceful shutdown always syncs, whatever the policy: a clean
       drain must leave nothing volatile. *)
    if need_sync || (!quit && !unsynced > 0) then fsync_now ();
    Mutex.protect t.mutex (fun () ->
        if !last_written > t.written_id then t.written_id <- !last_written;
        if !last_synced > t.synced_id then t.synced_id <- !last_synced;
        Condition.broadcast t.flushed);
    if !quit then close_fd () else loop ()
  in
  loop ()

let create ?(capacity = 65536) ~dir ~policy ~seq () =
  if capacity < 1 then invalid_arg "Wal.create: capacity < 1";
  if seq < 0 then invalid_arg "Wal.create: seq < 0";
  Ioutil.mkdir_p dir;
  let t =
    {
      dir;
      policy;
      capacity;
      mutex = Mutex.create ();
      work = Condition.create ();
      flushed = Condition.create ();
      queue = Queue.create ();
      next_id = 0;
      written_id = -1;
      synced_id = -1;
      seq;
      closed = false;
      flusher = None;
    }
  in
  let d =
    Domain.spawn (fun () ->
        (* A dying flusher must release barrier waiters, not strand
           them: mark the journal closed and broadcast. *)
        Resilience.Guard.protect ~label:"persist.wal.flusher"
          ~fallback:(fun _ ->
            Mutex.protect t.mutex (fun () ->
                t.closed <- true;
                Condition.broadcast t.flushed))
          (fun () -> flusher_main t seq))
  in
  t.flusher <- Some d;
  t

let append t payload =
  let fr = frame payload in
  Mutex.protect t.mutex (fun () ->
      if t.closed then false
      else if Queue.length t.queue >= t.capacity then begin
        Obs.Registry.incr "persist.wal.dropped";
        false
      end
      else begin
        Queue.push (Rec { id = t.next_id; frame = fr }) t.queue;
        t.next_id <- t.next_id + 1;
        Obs.Registry.incr "persist.wal.records";
        Condition.signal t.work;
        true
      end)

let rotate t =
  Mutex.protect t.mutex (fun () ->
      if t.closed then t.seq
      else begin
        let covered = t.seq in
        t.seq <- t.seq + 1;
        Queue.push (Rotate t.seq) t.queue;
        Condition.signal t.work;
        covered
      end)

let barrier t =
  match t.policy with
  | Never -> ()
  | Always ->
      Mutex.protect t.mutex (fun () ->
          let target = t.next_id - 1 in
          while t.synced_id < target && not t.closed do
            Condition.wait t.flushed t.mutex
          done)
  | Every _ ->
      Mutex.protect t.mutex (fun () ->
          let target = t.next_id - 1 in
          while t.written_id < target && not t.closed do
            Condition.wait t.flushed t.mutex
          done)

let close t =
  let flusher =
    Mutex.protect t.mutex (fun () ->
        if t.closed then None
        else begin
          t.closed <- true;
          Queue.push Quit t.queue;
          Condition.signal t.work;
          let d = t.flusher in
          t.flusher <- None;
          d
        end)
  in
  (match flusher with None -> () | Some d -> Domain.join d);
  Mutex.protect t.mutex (fun () -> Condition.broadcast t.flushed)
