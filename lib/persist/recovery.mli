(** Boot-time state reconstruction: newest snapshot, then replay of
    every journal segment beyond it.

    Deterministic — recovering the same state directory always yields
    the same engine state ({!Cac.Engine.export} of two recoveries
    encodes byte-identically).  Failure posture: torn final records
    are truncated with a warning (crash residue is expected); interior
    corruption — a CRC mismatch, an implausible length, an
    undecodable op, or an unloadable snapshot — fails closed with an
    error naming the file and byte offset, because an admission
    controller guessing at its connection table over-admits. *)

type segment_report = {
  sr_seq : int;
  sr_file : string;
  sr_records : int;  (** complete, CRC-valid records *)
  sr_applied : int;
  sr_skipped : int;  (** ops inconsistent with state (overlap residue) *)
  sr_bytes : int;
  sr_torn : int option;  (** byte offset of a truncated torn tail *)
}

type report = {
  r_dir : string;
  r_snapshot : (int * string) option;  (** (covers, path) restored from *)
  r_snapshot_conns : int;
  r_segments : segment_report list;
  r_records : int;
  r_applied : int;
  r_skipped : int;
  r_torn : int;  (** segments ending in a torn tail *)
  r_next_seq : int;  (** first unused segment number — feed to Wal/Store *)
  r_conns : int;  (** live connections after recovery *)
  r_links : int;
}

val recover : dir:string -> Cac.Engine.t -> (report, string) result
(** Restore into a cold engine.  A missing directory is an empty
    (successful) recovery; corruption is [Error].  On [Error] the
    engine may be partially populated and must be discarded. *)

val verify : dir:string -> (report, string) result
(** {!recover} onto a scratch engine: the integrity check behind
    [cts cac verify-state]. *)

val report_json : report -> Obs.Json.t
(** The [/debug/vars] persist-section rendering of a report. *)
