(** CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the
    integrity checksum for WAL record framing and snapshot files.
    Matches zlib's [crc32]: [digest "123456789" = 0xCBF43926]. *)

val digest : ?crc:int -> string -> int
(** [digest s] is the CRC-32 of [s], a non-negative int in [0, 2^32).
    [crc] chains partial digests: [digest ~crc:(digest a) b] equals
    [digest (a ^ b)]. *)
