(** The write-ahead log: an append-only journal of engine mutations.

    {2 Record format}

    A segment file ([wal-%08d.log]) is a sequence of frames:

    {v
    +-----------+-----------------+------------------+
    | len: 4 LE | crc32: 4 LE     | payload: len     |
    +-----------+-----------------+------------------+
    v}

    [crc32] is {!Crc32.digest} of the payload.  The reader
    distinguishes two failure shapes: a final frame cut off by EOF is
    a {e torn tail} (the residue of a crash mid-write — reported,
    truncated, recovered past), while a complete frame with a CRC
    mismatch or an implausible length is {e interior corruption},
    which fails closed.

    {2 Write path}

    {!append} is non-blocking and safe to call under a lock: it frames
    the payload and pushes it onto a bounded in-memory ring.  A
    dedicated flusher domain drains the ring and performs every
    [write]/[fsync] — no blocking I/O ever runs under the caller's
    critical section (ctslint L1 checks this, with
    [Unix.fsync]/[Unix.single_write] in its blocking vocabulary).  A
    full ring {e drops} the record (counted in [persist.wal.dropped])
    rather than block the engine.

    {2 Durability barrier}

    Records take dense ids; the flusher publishes how far the journal
    has {e written} (handed to the OS — survives SIGKILL) and {e
    synced} (fsynced — survives power loss).  {!barrier} blocks until
    the policy's watermark covers every append issued before the call:
    [Always] waits for synced, [Every _] for written, [Never] returns
    immediately.  Loss windows on SIGKILL: 0 records for [Always] and
    [Every _] (acked writes are at least in the page cache), unbounded
    for [Never]; on power loss [Every n] may lose up to [n] acked
    records and [Never] is unbounded.

    Fault points: [persist.wal.append] (raise / latency / short-write
    / torn-write) decides each record write's fate; [persist.wal.fsync]
    (raise / latency) fires before each fsync.  A fired torn-write
    severs the current segment exactly as a crash would — the WAL
    rotates and re-appends the record cleanly, leaving a real torn
    tail behind for recovery to digest. *)

type policy = Always | Every of int | Never

val policy_of_string : string -> (policy, string) result
(** ["always"], ["never"], or ["every:N"] with [N >= 1]. *)

val policy_name : policy -> string

type t

val create : ?capacity:int -> dir:string -> policy:policy -> seq:int -> unit -> t
(** Open a journal writing segment [seq] (always a fresh file — the
    writer never appends to a previous process's segment; recovery
    supplies a [seq] past every existing one).  [capacity] (default
    65536) bounds the in-memory ring.  Spawns the flusher domain. *)

val append : t -> string -> bool
(** Queue one record.  Non-blocking; returns [false] (and counts a
    drop) when the ring is full or the journal is closed.  Safe to
    call under a lock. *)

val barrier : t -> unit
(** Block until the policy's durability watermark covers every record
    appended before this call.  Returns immediately under [Never] and
    whenever the journal is closed. *)

val rotate : t -> int
(** Close the current segment (after an fsync, policy permitting) and
    start the next; returns the sequence number of the {e covered}
    segment — a snapshot taken atomically with this call covers every
    record up to and including that segment.  Non-blocking. *)

val close : t -> unit
(** Drain the ring, fsync whatever the policy left unsynced (a clean
    shutdown leaves nothing volatile, even under [Never]), close the
    segment and join the flusher domain. *)

type stats = {
  appended : int;  (** records accepted by {!append} *)
  written : int;  (** records handed to the OS *)
  synced : int;  (** records fsynced *)
  segment : int;  (** sequence number new appends target *)
}

val stats : t -> stats
val policy : t -> policy
val dir : t -> string

(** {2 Reading} *)

type tail =
  | Tail_clean
  | Tail_torn of int  (** byte offset of the partial final record *)

type corrupt = { offset : int; reason : string }

val read_file : string -> (string list * tail, corrupt) result
(** Parse one segment into record payloads.  [Tail_torn] is benign
    (crash residue); [Error] is interior corruption and must fail
    closed.  Raises [Sys_error] if the file cannot be read. *)

val frame : string -> string
(** Frame one payload ([len][crc][payload]); exposed for tests.
    Raises [Invalid_argument] on empty or oversized payloads. *)

val segment_name : int -> string
val segment_seq : string -> int option

val segments : string -> (int * string) list
(** The [(seq, path)] of every segment in a directory, ascending; []
    if the directory is unreadable. *)
