let sum x =
  (* Kahan compensation keeps the long simulation averages accurate. *)
  let total = ref 0.0 and comp = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    let y = x.(i) -. !comp in
    let t = !total +. y in
    comp := t -. !total -. y;
    total := t
  done;
  !total

let mean x =
  let n = Array.length x in
  assert (n > 0);
  sum x /. float_of_int n

let variance_population x =
  let n = Array.length x in
  assert (n >= 1);
  let m = mean x in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let d = x.(i) -. m in
    acc := !acc +. (d *. d)
  done;
  !acc /. float_of_int n

let variance x =
  let n = Array.length x in
  assert (n >= 2);
  variance_population x *. float_of_int n /. float_of_int (n - 1)

let std x = sqrt (variance x)

let min x =
  assert (Array.length x > 0);
  Array.fold_left Stdlib.min x.(0) x

let max x =
  assert (Array.length x > 0);
  Array.fold_left Stdlib.max x.(0) x

let dot a b =
  let n = Array.length a in
  assert (Array.length b = n);
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let prefix_sums x =
  let n = Array.length x in
  let out = Array.make (n + 1) 0.0 in
  for i = 0 to n - 1 do
    out.(i + 1) <- out.(i) +. x.(i)
  done;
  out

let linspace ~lo ~hi ~n =
  assert (n >= 2);
  let step = (hi -. lo) /. float_of_int (n - 1) in
  Array.init n (fun i -> lo +. (step *. float_of_int i))

let logspace ~lo ~hi ~n =
  assert (n >= 2 && lo > 0.0 && hi > lo);
  let llo = log lo and lhi = log hi in
  Array.init n (fun i ->
      exp (llo +. ((lhi -. llo) *. float_of_int i /. float_of_int (n - 1))))

let quantile x p =
  assert (p >= 0.0 && p <= 1.0);
  let n = Array.length x in
  assert (n > 0);
  let sorted = Array.copy x in
  Array.sort Float.compare sorted;
  let pos = p *. float_of_int (n - 1) in
  let i = int_of_float (floor pos) in
  if i >= n - 1 then sorted.(n - 1)
  else begin
    let frac = pos -. float_of_int i in
    (sorted.(i) *. (1.0 -. frac)) +. (sorted.(i + 1) *. frac)
  end

let map2 f a b =
  let n = Array.length a in
  assert (Array.length b = n);
  Array.init n (fun i -> f a.(i) b.(i))

(* N2 waiver: the division sits under the [total > 0.0] branch; a
   zero-sum array is left untouched by design. *)
let[@lint.allow "N2"] normalize_in_place x =
  let total = sum x in
  if total > 0.0 then
    for i = 0 to Array.length x - 1 do
      x.(i) <- x.(i) /. total
    done

let aggregate x ~block =
  assert (block >= 1);
  let n = Array.length x / block in
  Array.init n (fun i ->
      let acc = ref 0.0 in
      for j = i * block to ((i + 1) * block) - 1 do
        acc := !acc +. x.(j)
      done;
      !acc /. float_of_int block)
