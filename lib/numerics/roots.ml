let bisect ~f ~lo ~hi ~tol =
  assert (hi > lo && tol > 0.0);
  let flo = f lo and fhi = f hi in
  if Float.equal flo 0.0 then lo
  else if Float.equal fhi 0.0 then hi
  else begin
    assert (flo *. fhi < 0.0);
    let rec loop lo hi flo =
      if hi -. lo <= tol then (lo +. hi) /. 2.0
      else begin
        let mid = (lo +. hi) /. 2.0 in
        let fmid = f mid in
        if Float.equal fmid 0.0 then mid
        else if flo *. fmid < 0.0 then loop lo mid flo
        else loop mid hi fmid
      end
    in
    loop lo hi flo
  end

let newton ~f ~df ~x0 ~tol =
  assert (tol > 0.0);
  let rec loop x iter =
    if iter > 100 then x
    else begin
      let fx = f x in
      let dfx = df x in
      let step =
        if Float.abs dfx < 1e-300 then (if fx > 0.0 then tol else -.tol)
        else fx /. dfx
      in
      let x' = x -. step in
      if Float.abs (x' -. x) < tol then x' else loop x' (iter + 1)
    end
  in
  loop x0 0

(* Brent–Dekker, standard formulation. *)
let brent ~f ~lo ~hi ~tol =
  assert (hi > lo && tol > 0.0);
  let a = ref lo and b = ref hi in
  let fa = ref (f !a) and fb = ref (f !b) in
  if Float.equal !fa 0.0 then !a
  else if Float.equal !fb 0.0 then !b
  else begin
    assert (!fa *. !fb < 0.0);
    if Float.abs !fa < Float.abs !fb then begin
      let t = !a in
      a := !b;
      b := t;
      let t = !fa in
      fa := !fb;
      fb := t
    end;
    let c = ref !a and fc = ref !fa in
    let d = ref (!b -. !a) in
    let mflag = ref true in
    let result = ref None in
    let iter = ref 0 in
    while !result = None && !iter < 200 do
      incr iter;
      if Float.abs (!b -. !a) < tol || Float.equal !fb 0.0 then result := Some !b
      else begin
        let s =
          if !fa <> !fc && !fb <> !fc then
            (* Inverse quadratic interpolation. *)
            (!a *. !fb *. !fc /. ((!fa -. !fb) *. (!fa -. !fc)))
            +. (!b *. !fa *. !fc /. ((!fb -. !fa) *. (!fb -. !fc)))
            +. (!c *. !fa *. !fb /. ((!fc -. !fa) *. (!fc -. !fb)))
          else !b -. (!fb *. (!b -. !a) /. (!fb -. !fa))
        in
        let lo_bound = ((3.0 *. !a) +. !b) /. 4.0 in
        let use_bisect =
          (s < min lo_bound !b || s > max lo_bound !b)
          || (!mflag && Float.abs (s -. !b) >= Float.abs (!b -. !c) /. 2.0)
          || ((not !mflag) && Float.abs (s -. !b) >= Float.abs (!c -. !d) /. 2.0)
          || (!mflag && Float.abs (!b -. !c) < tol)
          || ((not !mflag) && Float.abs (!c -. !d) < tol)
        in
        let s = if use_bisect then (!a +. !b) /. 2.0 else s in
        mflag := use_bisect;
        let fs = f s in
        d := !c;
        c := !b;
        fc := !fb;
        if !fa *. fs < 0.0 then begin
          b := s;
          fb := fs
        end
        else begin
          a := s;
          fa := fs
        end;
        if Float.abs !fa < Float.abs !fb then begin
          let t = !a in
          a := !b;
          b := t;
          let t = !fa in
          fa := !fb;
          fb := t
        end
      end
    done;
    match !result with Some x -> x | None -> !b
  end
