let golden_ratio = (sqrt 5.0 -. 1.0) /. 2.0

let golden_section ~f ~lo ~hi ~tol =
  assert (hi > lo && tol > 0.0);
  let rec loop a b x1 x2 f1 f2 =
    if b -. a <= tol then (a +. b) /. 2.0
    else if f1 < f2 then begin
      let b = x2 and x2 = x1 and f2 = f1 in
      let x1 = b -. (golden_ratio *. (b -. a)) in
      loop a b x1 x2 (f x1) f2
    end
    else begin
      let a = x1 and x1 = x2 and f1 = f2 in
      let x2 = a +. (golden_ratio *. (b -. a)) in
      loop a b x1 x2 f1 (f x2)
    end
  in
  let x1 = hi -. (golden_ratio *. (hi -. lo)) in
  let x2 = lo +. (golden_ratio *. (hi -. lo)) in
  loop lo hi x1 x2 (f x1) (f x2)

(* Brent's minimisation, following the classical Numerical-Recipes-style
   formulation. *)
let brent ~f ~lo ~hi ~tol =
  assert (hi > lo && tol > 0.0);
  let cgold = 0.3819660 in
  let zeps = 1e-12 in
  let a = ref lo and b = ref hi in
  let x = ref (lo +. (cgold *. (hi -. lo))) in
  let w = ref !x and v = ref !x in
  let fx = ref (f !x) in
  let fw = ref !fx and fv = ref !fx in
  let e = ref 0.0 and d = ref 0.0 in
  let answer = ref None in
  let iter = ref 0 in
  while !answer = None && !iter < 200 do
    incr iter;
    let xm = 0.5 *. (!a +. !b) in
    let tol1 = (tol *. Float.abs !x) +. zeps in
    let tol2 = 2.0 *. tol1 in
    if Float.abs (!x -. xm) <= tol2 -. (0.5 *. (!b -. !a)) then answer := Some !x
    else begin
      if Float.abs !e > tol1 then begin
        (* Attempt a parabolic step through x, w, v. *)
        let r = (!x -. !w) *. (!fx -. !fv) in
        let q = (!x -. !v) *. (!fx -. !fw) in
        let p = ((!x -. !v) *. q) -. ((!x -. !w) *. r) in
        let q = 2.0 *. (q -. r) in
        let p = if q > 0.0 then -.p else p in
        let q = Float.abs q in
        let etemp = !e in
        e := !d;
        if
          Float.abs p >= Float.abs (0.5 *. q *. etemp)
          || p <= q *. (!a -. !x)
          || p >= q *. (!b -. !x)
        then begin
          e := (if !x >= xm then !a -. !x else !b -. !x);
          d := cgold *. !e
        end
        else begin
          d := p /. q;
          let u = !x +. !d in
          if u -. !a < tol2 || !b -. u < tol2 then
            d := (if xm -. !x >= 0.0 then tol1 else -.tol1)
        end
      end
      else begin
        e := (if !x >= xm then !a -. !x else !b -. !x);
        d := cgold *. !e
      end;
      let u =
        if Float.abs !d >= tol1 then !x +. !d
        else !x +. (if !d >= 0.0 then tol1 else -.tol1)
      in
      let fu = f u in
      if fu <= !fx then begin
        if u >= !x then a := !x else b := !x;
        v := !w;
        w := !x;
        x := u;
        fv := !fw;
        fw := !fx;
        fx := fu
      end
      else begin
        if u < !x then a := u else b := u;
        if fu <= !fw || Float.equal !w !x then begin
          v := !w;
          fv := !fw;
          w := u;
          fw := fu
        end
        else if fu <= !fv || Float.equal !v !x || Float.equal !v !w then begin
          v := u;
          fv := fu
        end
      end
    end
  done;
  match !answer with Some x -> x | None -> !x

type integer_argmin = { argmin : int; minimum : float; scanned_up_to : int }

let integer_argmin ~f ~lo ?(hard_cap = 2_000_000) ~stop () =
  assert (lo <= hard_cap);
  let best = ref (f lo) in
  let best_at = ref lo in
  let m = ref lo in
  let stopped = ref false in
  while (not !stopped) && !m < hard_cap do
    incr m;
    let value = f !m in
    if value < !best then begin
      best := value;
      best_at := !m
    end;
    if stop ~best:!best ~at:!m ~current:value then stopped := true
  done;
  { argmin = !best_at; minimum = !best; scanned_up_to = !m }
