let pi = 4.0 *. atan 1.0

let is_pow2 n = n > 0 && n land (n - 1) = 0

let next_pow2 n =
  let rec grow p = if p >= n then p else grow (p * 2) in
  grow 1

(* Iterative Cooley-Tukey with bit-reversal permutation. *)
let transform ~re ~im ~sign =
  let n = Array.length re in
  assert (Array.length im = n);
  assert (is_pow2 n);
  (* Bit reversal. *)
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let tr = re.(i) in
      re.(i) <- re.(!j);
      re.(!j) <- tr;
      let ti = im.(i) in
      im.(i) <- im.(!j);
      im.(!j) <- ti
    end;
    let rec carry m =
      if m land !j <> 0 then begin
        j := !j lxor m;
        carry (m lsr 1)
      end
      else j := !j lor m
    in
    carry (n lsr 1)
  done;
  (* Butterflies. *)
  let len = ref 2 in
  while !len <= n do
    let half = !len / 2 in
    let angle = sign *. 2.0 *. pi /. float_of_int !len in
    let wr = cos angle and wi = sin angle in
    let i = ref 0 in
    while !i < n do
      let cr = ref 1.0 and ci = ref 0.0 in
      for k = 0 to half - 1 do
        let a = !i + k and b = !i + k + half in
        let tr = (re.(b) *. !cr) -. (im.(b) *. !ci) in
        let ti = (re.(b) *. !ci) +. (im.(b) *. !cr) in
        re.(b) <- re.(a) -. tr;
        im.(b) <- im.(a) -. ti;
        re.(a) <- re.(a) +. tr;
        im.(a) <- im.(a) +. ti;
        let nr = (!cr *. wr) -. (!ci *. wi) in
        ci := (!cr *. wi) +. (!ci *. wr);
        cr := nr
      done;
      i := !i + !len
    done;
    len := !len * 2
  done

let forward ~re ~im = transform ~re ~im ~sign:(-1.0)

(* N2 waiver: the scaling loop runs zero times on an empty array, so
   every division that executes has n >= 1. *)
let[@lint.allow "N2"] inverse ~re ~im =
  transform ~re ~im ~sign:1.0;
  let n = float_of_int (Array.length re) in
  for i = 0 to Array.length re - 1 do
    re.(i) <- re.(i) /. n;
    im.(i) <- im.(i) /. n
  done

let periodogram x =
  let n = Array.length x in
  assert (n > 1);
  let mean = Array.fold_left ( +. ) 0.0 x /. float_of_int n in
  let m = next_pow2 n in
  let re = Array.make m 0.0 and im = Array.make m 0.0 in
  for i = 0 to n - 1 do
    re.(i) <- x.(i) -. mean
  done;
  forward ~re ~im;
  let half = m / 2 in
  Array.init half (fun j ->
      let k = j + 1 in
      let w = 2.0 *. pi *. float_of_int k /. float_of_int m in
      let power =
        ((re.(k) *. re.(k)) +. (im.(k) *. im.(k)))
        /. (2.0 *. pi *. float_of_int n)
      in
      (w, power))

let convolve a b =
  let la = Array.length a and lb = Array.length b in
  assert (la > 0 && lb > 0);
  let n = next_pow2 (la + lb - 1) in
  let re1 = Array.make n 0.0 and im1 = Array.make n 0.0 in
  let re2 = Array.make n 0.0 and im2 = Array.make n 0.0 in
  Array.blit a 0 re1 0 la;
  Array.blit b 0 re2 0 lb;
  forward ~re:re1 ~im:im1;
  forward ~re:re2 ~im:im2;
  for i = 0 to n - 1 do
    let r = (re1.(i) *. re2.(i)) -. (im1.(i) *. im2.(i)) in
    let im' = (re1.(i) *. im2.(i)) +. (im1.(i) *. re2.(i)) in
    re1.(i) <- r;
    im1.(i) <- im'
  done;
  inverse ~re:re1 ~im:im1;
  Array.sub re1 0 (la + lb - 1)
