let pi = 4.0 *. atan 1.0

(* Lanczos coefficients (g = 7, n = 9), standard double-precision set. *)
let lanczos_g = 7.0

let lanczos_coefficients =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
     771.32342877765313; -176.61502916214059; 12.507343278686905;
     -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]

let rec log_gamma x =
  assert (x > 0.0 || not (Float.equal (Float.rem x 1.0) 0.0));
  if x < 0.5 then
    (* Reflection keeps the Lanczos sum in its accurate region. *)
    log (pi /. Float.abs (sin (pi *. x))) -. log_gamma (1.0 -. x)
  else begin
    let x = x -. 1.0 in
    let acc = ref lanczos_coefficients.(0) in
    for i = 1 to Array.length lanczos_coefficients - 1 do
      acc := !acc +. (lanczos_coefficients.(i) /. (x +. float_of_int i))
    done;
    let t = x +. lanczos_g +. 0.5 in
    (0.5 *. log (2.0 *. pi)) +. ((x +. 0.5) *. log t) -. t +. log !acc
  end

let gamma x =
  if x > 0.0 then exp (log_gamma x)
  else begin
    (* Reflection formula: Gamma(x) Gamma(1-x) = pi / sin(pi x). *)
    assert (not (Float.equal (Float.rem x 1.0) 0.0));
    pi /. (sin (pi *. x) *. exp (log_gamma (1.0 -. x)))
  end

(* N2 waiver: built once at module init; the loop bounds pin the log
   argument to n >= 2. *)
let[@lint.allow "N2"] log_factorial_table =
  let table = Array.make 128 0.0 in
  for n = 2 to 127 do
    table.(n) <- table.(n - 1) +. log (float_of_int n)
  done;
  table

let log_factorial n =
  assert (n >= 0);
  if n < 128 then log_factorial_table.(n)
  else log_gamma (float_of_int n +. 1.0)

(* Abramowitz & Stegun 7.1.26; |error| <= 1.5e-7, adequate for CDF
   evaluation in tests and histograms. *)
(* N2 waiver: exp's argument is -x^2 <= 0 (no overflow; underflow is
   the correct tail behaviour) and the divisor is 1 + 0.33|x| >= 1. *)
let[@lint.allow "N2"] erf x =
  let sign = if x < 0.0 then -1.0 else 1.0 in
  let x = Float.abs x in
  let t = 1.0 /. (1.0 +. (0.3275911 *. x)) in
  let poly =
    ((((1.061405429 *. t -. 1.453152027) *. t +. 1.421413741) *. t
     -. 0.284496736)
       *. t
    +. 0.254829592)
    *. t
  in
  sign *. (1.0 -. (poly *. exp (-.x *. x)))

let erfc x = 1.0 -. erf x

let normal_cdf x = 0.5 *. erfc (-.x /. sqrt 2.0)

(* Acklam's inverse normal CDF: central rational approximation plus a
   tail approximation applied by symmetry. *)
let acklam_a =
  [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
     1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]

let acklam_b =
  [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
     6.680131188771972e+01; -1.328068155288572e+01 |]

let acklam_c =
  [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
     -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]

let acklam_d =
  [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
     3.754408661907416e+00 |]

let acklam_tail p =
  assert (p > 0.0 && p < 1.0);
  let c = acklam_c and d = acklam_d in
  let q = sqrt (-2.0 *. log p) in
  (((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q
  +. c.(5))
  /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)

let normal_quantile p =
  assert (p > 0.0 && p < 1.0);
  let p_low = 0.02425 in
  if p < p_low then acklam_tail p
  else if p > 1.0 -. p_low then -.acklam_tail (1.0 -. p)
  else begin
    let a = acklam_a and b = acklam_b in
    let q = p -. 0.5 in
    let r = q *. q in
    (((((a.(0) *. r +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4)) *. r
    +. a.(5))
    *. q
    /. (((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4))
          *. r
       +. 1.0)
  end

(* Hill's (1970) expansion of the t quantile in terms of the normal
   quantile; accurate to ~1e-4 for df >= 2 which is plenty for CI
   half-widths. *)
let student_t_quantile ~df p =
  assert (df > 0);
  assert (p > 0.0 && p < 1.0);
  let n = float_of_int df in
  if df = 1 then tan (pi *. (p -. 0.5))
  else if df = 2 then begin
    let s = 2.0 *. p -. 1.0 in
    s *. sqrt (2.0 /. (1.0 -. (s *. s)))
  end
  else begin
    let z = normal_quantile p in
    let g1 = (z ** 3.0 +. z) /. 4.0 in
    let g2 = ((5.0 *. (z ** 5.0)) +. (16.0 *. (z ** 3.0)) +. (3.0 *. z)) /. 96.0 in
    let g3 =
      ((3.0 *. (z ** 7.0)) +. (19.0 *. (z ** 5.0)) +. (17.0 *. (z ** 3.0))
      -. (15.0 *. z))
      /. 384.0
    in
    let g4 =
      ((79.0 *. (z ** 9.0)) +. (776.0 *. (z ** 7.0)) +. (1482.0 *. (z ** 5.0))
      -. (1920.0 *. (z ** 3.0))
      -. (945.0 *. z))
      /. 92160.0
    in
    z +. (g1 /. n) +. (g2 /. (n *. n)) +. (g3 /. (n ** 3.0)) +. (g4 /. (n ** 4.0))
  end

let log1p = Float.log1p
let expm1 = Float.expm1

let pow x y =
  assert (x >= 0.0);
  if Float.equal y 0.0 then 1.0 else if Float.equal x 0.0 then 0.0 else exp (y *. log x)
