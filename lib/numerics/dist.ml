let uniform rng ~lo ~hi = Rng.float_range rng ~lo ~hi

let exponential rng ~rate =
  assert (rate > 0.0);
  -.log (Rng.float rng) /. rate

(* N2 waiver: the rejection test pins s to (0, 1) before the log and
   the division ever run. *)
let[@lint.allow "N2"] standard_gaussian rng =
  (* Marsaglia polar method; no state is cached so successive draws on
     the same generator stay independent of call sites. *)
  let rec loop () =
    let u = (2.0 *. Rng.float rng) -. 1.0 in
    let v = (2.0 *. Rng.float rng) -. 1.0 in
    let s = (u *. u) +. (v *. v) in
    if s >= 1.0 || Float.equal s 0.0 then loop ()
    else u *. sqrt (-2.0 *. log s /. s)
  in
  loop ()

let gaussian rng ~mean ~std =
  assert (std >= 0.0);
  mean +. (std *. standard_gaussian rng)

(* Poisson via inversion-by-multiplication: valid for small means. *)
let poisson_small rng mean =
  assert (mean >= 0.0);
  let limit = exp (-.mean) in
  let rec loop k prod =
    let prod = prod *. Rng.float rng in
    if prod <= limit then k else loop (k + 1) prod
  in
  loop 0 1.0

(* PTRD: W. Hörmann, "The transformed rejection method for generating
   Poisson random variables", Insurance: Mathematics and Economics 12
   (1993).  O(1) expected time for mean >= ~10. *)
let poisson_ptrd rng mu =
  (* The transformed-rejection constants below assume the mean is well
     into the PTRD regime. *)
  assert (mu >= 10.0);
  let smu = sqrt mu in
  let b = 0.931 +. (2.53 *. smu) in
  let a = -0.059 +. (0.02483 *. b) in
  let inv_alpha = 1.1239 +. (1.1328 /. (b -. 3.4)) in
  let v_r = 0.9277 -. (3.6224 /. (b -. 2.0)) in
  let log_mu = log mu in
  let rec loop () =
    let u = Rng.float rng -. 0.5 in
    let v = Rng.float rng in
    let us = 0.5 -. Float.abs u in
    let k = Float.to_int (floor ((((2.0 *. a) /. us) +. b) *. u +. mu +. 0.43)) in
    if us >= 0.07 && v <= v_r then k
    else if k < 0 || (us < 0.013 && v > us) then loop ()
    else begin
      let log_v =
        log (v *. inv_alpha /. ((a /. (us *. us)) +. b))
      in
      let fk = float_of_int k in
      let log_p = (fk *. log_mu) -. mu -. Special.log_factorial k in
      if log_v <= log_p then k else loop ()
    end
  in
  loop ()

let poisson rng ~mean =
  assert (mean >= 0.0);
  if Float.equal mean 0.0 then 0
  else if mean < 12.0 then poisson_small rng mean
  else poisson_ptrd rng mean

let pareto rng ~shape ~scale =
  assert (shape > 0.0 && scale > 0.0);
  scale /. (Rng.float rng ** (1.0 /. shape))

let bernoulli rng ~p =
  assert (p >= 0.0 && p <= 1.0);
  Rng.float rng < p

let binomial rng ~n ~p =
  assert (n >= 0);
  assert (p >= 0.0 && p <= 1.0);
  if Float.equal p 0.0 || n = 0 then 0
  else if Float.equal p 1.0 then n
  else if float_of_int n *. p < 30.0 then begin
    (* Inversion over the geometric number of failures between
       successes: O(n p) expected. *)
    let log_q = log (1.0 -. p) in
    let rec loop count pos =
      let jump = Float.to_int (floor (log (Rng.float rng) /. log_q)) in
      let pos = pos + jump + 1 in
      if pos > n then count else loop (count + 1) pos
    in
    loop 0 0
  end
  else begin
    let count = ref 0 in
    for _ = 1 to n do
      if Rng.float rng < p then incr count
    done;
    !count
  end

let geometric rng ~p =
  assert (p > 0.0 && p <= 1.0);
  if Float.equal p 1.0 then 0
  else Float.to_int (floor (log (Rng.float rng) /. log (1.0 -. p)))

(* Marsaglia & Tsang (2000): rejection from a squeezed Gaussian; a
   couple of iterations on average for any shape >= 1. *)
let rec gamma rng ~shape ~scale =
  assert (shape > 0.0 && scale > 0.0);
  if shape < 1.0 then begin
    (* Boost: Gamma(a) = Gamma(a+1) * U^(1/a). *)
    let boost = Rng.float rng ** (1.0 /. shape) in
    gamma rng ~shape:(shape +. 1.0) ~scale *. boost
  end
  else begin
    let d = shape -. (1.0 /. 3.0) in
    let c = 1.0 /. sqrt (9.0 *. d) in
    let rec loop () =
      let x = standard_gaussian rng in
      let v = 1.0 +. (c *. x) in
      if v <= 0.0 then loop ()
      else begin
        let v = v *. v *. v in
        let u = Rng.float rng in
        let x2 = x *. x in
        if u < 1.0 -. (0.0331 *. x2 *. x2) then d *. v
        else if log u < (0.5 *. x2) +. (d *. (1.0 -. v +. log v)) then d *. v
        else loop ()
      end
    in
    scale *. loop ()
  end

let negative_binomial rng ~r ~p =
  assert (r > 0.0 && p > 0.0 && p <= 1.0);
  if Float.equal p 1.0 then 0
  else begin
    (* Gamma-Poisson mixture: lambda ~ Gamma(r, (1-p)/p), X ~ Poisson(lambda). *)
    let lambda = gamma rng ~shape:r ~scale:((1.0 -. p) /. p) in
    poisson rng ~mean:lambda
  end

let negative_binomial_of_moments rng ~mean ~variance =
  assert (mean > 0.0 && variance > mean);
  let p = mean /. variance in
  let r = mean *. p /. (1.0 -. p) in
  negative_binomial rng ~r ~p

let categorical rng ~weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  assert (total > 0.0);
  let u = Rng.float rng *. total in
  let n = Array.length weights in
  let rec scan i acc =
    if i = n - 1 then i
    else begin
      let acc = acc +. weights.(i) in
      if u < acc then i else scan (i + 1) acc
    end
  in
  scan 0 0.0

let discrete_cdf_sample rng ~cdf =
  let u = Rng.float rng in
  let n = Array.length cdf in
  assert (n > 0);
  (* Smallest index with cdf.(i) >= u. *)
  let rec bisect lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if cdf.(mid) >= u then bisect lo mid else bisect (mid + 1) hi
    end
  in
  bisect 0 (n - 1)
