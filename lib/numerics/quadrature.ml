let simpson a b fa fm fb = (b -. a) /. 6.0 *. (fa +. (4.0 *. fm) +. fb)

let adaptive_simpson ~f ~lo ~hi ~tol =
  assert (hi >= lo && tol > 0.0);
  if Float.equal hi lo then 0.0
  else begin
    (* Each recursion level compares the two-panel estimate against the
       single-panel one; the factor 15 is the Richardson constant for
       Simpson's rule. *)
    let rec refine a b fa fm fb whole tol depth =
      let m = (a +. b) /. 2.0 in
      let lm = (a +. m) /. 2.0 and rm = (m +. b) /. 2.0 in
      let flm = f lm and frm = f rm in
      let left = simpson a m fa flm fm in
      let right = simpson m b fm frm fb in
      if depth > 40 || Float.abs (left +. right -. whole) <= 15.0 *. tol then
        left +. right +. ((left +. right -. whole) /. 15.0)
      else
        refine a m fa flm fm left (tol /. 2.0) (depth + 1)
        +. refine m b fm frm fb right (tol /. 2.0) (depth + 1)
    in
    let fa = f lo and fb = f hi in
    let m = (lo +. hi) /. 2.0 in
    let fm = f m in
    refine lo hi fa fm fb (simpson lo hi fa fm fb) tol 0
  end

(* Nodes and weights for 16-point Gauss-Legendre on [-1, 1] (symmetric;
   only the positive half is stored). *)
let gl16_nodes =
  [| 0.0950125098376374; 0.2816035507792589; 0.4580167776572274;
     0.6178762444026438; 0.7554044083550030; 0.8656312023878318;
     0.9445750230732326; 0.9894009349916499 |]

let gl16_weights =
  [| 0.1894506104550685; 0.1826034150449236; 0.1691565193950025;
     0.1495959888165767; 0.1246289712555339; 0.0951585116824928;
     0.0622535239386479; 0.0271524594117541 |]

let gauss_legendre_16 ~f ~lo ~hi =
  assert (hi >= lo);
  let half = (hi -. lo) /. 2.0 in
  let mid = (hi +. lo) /. 2.0 in
  let acc = ref 0.0 in
  for i = 0 to 7 do
    let dx = half *. gl16_nodes.(i) in
    acc := !acc +. (gl16_weights.(i) *. (f (mid -. dx) +. f (mid +. dx)))
  done;
  half *. !acc

let tail_integral ~f ~lo ~decay ~tol =
  assert (decay > 1.0 && tol > 0.0 && lo > 0.0);
  (* Geometric panels [lo*2^k, lo*2^(k+1)]: for an x^-decay integrand
     panel contributions shrink by 2^(1-decay), so a small-last-panel
     stopping rule is sound. *)
  let rec loop a acc k =
    let b = 2.0 *. a in
    let panel = gauss_legendre_16 ~f ~lo:a ~hi:b in
    let acc = acc +. panel in
    if (Float.abs panel < tol && k > 2) || k > 200 then acc
    else loop b acc (k + 1)
  in
  loop lo 0.0 0
