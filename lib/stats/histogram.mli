(** Fixed-width histograms, used for marginal-distribution checks. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** [create ~lo ~hi ~bins] covers [lo, hi) with [bins] equal cells;
    out-of-range observations are tallied separately. *)

val add : t -> float -> unit
val add_array : t -> float array -> unit

val counts : t -> int array
(** In-range counts, one per bin. *)

val underflow : t -> int
val overflow : t -> int
val total : t -> int

val lo : t -> float
val hi : t -> float
val bins : t -> int

val copy : t -> t

val same_shape : t -> t -> bool
(** Same [lo], [hi] and bin count — the precondition for merging. *)

val merge_into : into:t -> t -> unit
(** Add [t]'s counts (including under/overflow) into [into].  Raises
    [Invalid_argument] unless {!same_shape}.  Merging is associative
    and commutative, so per-domain shards can be combined in any
    order. *)

val merge : t -> t -> t
(** Fresh histogram with the summed counts of both arguments. *)

val bin_centers : t -> float array

val density : t -> float array
(** Counts normalised to a probability density over [lo, hi): each
    entry is [count / (total * width)] where [total] includes
    out-of-range observations. *)

val chi_square_vs : t -> cdf:(float -> float) -> float
(** [chi_square_vs t ~cdf] is the Pearson chi-square statistic of the
    histogram against the continuous distribution with the given CDF
    (expected mass from CDF differences; under/overflow folded into the
    edge bins).  Degrees of freedom are [bins - 1] when the reference
    distribution is fully specified. *)
