type t = { sorted : float array }

let of_samples x =
  assert (Array.length x > 0);
  let sorted = Array.copy x in
  Array.sort Float.compare sorted;
  { sorted }

let size t = Array.length t.sorted

(* Number of elements <= x, by binary search for the upper bound. *)
let count_le t x =
  let n = Array.length t.sorted in
  let rec bisect lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if t.sorted.(mid) <= x then bisect (mid + 1) hi else bisect lo mid
    end
  in
  bisect 0 n

let cdf t x = float_of_int (count_le t x) /. float_of_int (size t)
let tail t x = 1.0 -. cdf t x

let quantile t p =
  assert (p >= 0.0 && p <= 1.0);
  Numerics.Float_array.quantile t.sorted p

let tail_curve t ~thresholds =
  Array.map (fun x -> (x, tail t x)) thresholds
