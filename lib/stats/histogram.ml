type t = {
  lo : float;
  hi : float;
  width : float;
  counts : int array;
  mutable underflow : int;
  mutable overflow : int;
}

let create ~lo ~hi ~bins =
  assert (hi > lo && bins > 0);
  {
    lo;
    hi;
    width = (hi -. lo) /. float_of_int bins;
    counts = Array.make bins 0;
    underflow = 0;
    overflow = 0;
  }

let add t x =
  if x < t.lo then t.underflow <- t.underflow + 1
  else if x >= t.hi then t.overflow <- t.overflow + 1
  else begin
    let i = int_of_float ((x -. t.lo) /. t.width) in
    let i = Stdlib.min i (Array.length t.counts - 1) in
    t.counts.(i) <- t.counts.(i) + 1
  end

let add_array t x = Array.iter (add t) x
let counts t = Array.copy t.counts
let underflow t = t.underflow
let overflow t = t.overflow
let lo t = t.lo
let hi t = t.hi
let bins t = Array.length t.counts

let copy t =
  {
    t with
    counts = Array.copy t.counts;
    underflow = t.underflow;
    overflow = t.overflow;
  }

let same_shape a b =
  Float.equal a.lo b.lo && Float.equal a.hi b.hi && Array.length a.counts = Array.length b.counts

let merge_into ~into t =
  if not (same_shape into t) then
    invalid_arg "Histogram.merge_into: incompatible bounds or bin counts";
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) t.counts;
  into.underflow <- into.underflow + t.underflow;
  into.overflow <- into.overflow + t.overflow

let merge a b =
  let m = copy a in
  merge_into ~into:m b;
  m

let total t =
  Array.fold_left ( + ) 0 t.counts + t.underflow + t.overflow

let bin_centers t =
  Array.init (Array.length t.counts) (fun i ->
      t.lo +. (t.width *. (float_of_int i +. 0.5)))

let density t =
  let n = total t in
  if n = 0 then Array.make (Array.length t.counts) 0.0
  else
    Array.map
      (fun c -> float_of_int c /. (float_of_int n *. t.width))
      t.counts

let chi_square_vs t ~cdf =
  let n = total t in
  assert (n > 0);
  let nf = float_of_int n in
  let bins = Array.length t.counts in
  let stat = ref 0.0 in
  for i = 0 to bins - 1 do
    let a = t.lo +. (t.width *. float_of_int i) in
    let b = a +. t.width in
    (* Edge bins absorb the corresponding tails so expected masses sum
       to one. *)
    let p_lo = if i = 0 then 0.0 else cdf a in
    let p_hi = if i = bins - 1 then 1.0 else cdf b in
    let expected = nf *. (p_hi -. p_lo) in
    let observed =
      float_of_int
        (t.counts.(i)
        + (if i = 0 then t.underflow else 0)
        + if i = bins - 1 then t.overflow else 0)
    in
    if expected > 0.0 then begin
      let d = observed -. expected in
      stat := !stat +. (d *. d /. expected)
    end
  done;
  !stat
