type estimate = {
  h : float;
  r_squared : float;
  points : (float * float) array;
}

let geometric_blocks ~min_block ~max_block ~num_scales =
  assert (min_block >= 2 && max_block > min_block && num_scales >= 3);
  let sizes =
    Numerics.Float_array.logspace ~lo:(float_of_int min_block)
      ~hi:(float_of_int max_block) ~n:num_scales
    |> Array.map (fun s -> int_of_float (Float.round s))
  in
  (* Deduplicate after rounding. *)
  let unique = List.sort_uniq Int.compare (Array.to_list sizes) in
  Array.of_list unique

let fit_of_points points =
  let x = Array.map fst points and y = Array.map snd points in
  Regression.log_log ~x ~y

let rescaled_range ?(min_block = 8) ?(num_scales = 12) series =
  let n = Array.length series in
  assert (n >= 8 * min_block);
  let blocks = geometric_blocks ~min_block ~max_block:(n / 4) ~num_scales in
  let rs_of_block m =
    let num_blocks = n / m in
    let acc = ref 0.0 and used = ref 0 in
    for b = 0 to num_blocks - 1 do
      let offset = b * m in
      let mean = ref 0.0 in
      for i = 0 to m - 1 do
        mean := !mean +. series.(offset + i)
      done;
      let mean = !mean /. float_of_int m in
      (* Range of the mean-adjusted partial sums, and the block std. *)
      let partial = ref 0.0 in
      let lo = ref 0.0 and hi = ref 0.0 and ss = ref 0.0 in
      for i = 0 to m - 1 do
        let d = series.(offset + i) -. mean in
        partial := !partial +. d;
        ss := !ss +. (d *. d);
        if !partial < !lo then lo := !partial;
        if !partial > !hi then hi := !partial
      done;
      let s = sqrt (!ss /. float_of_int m) in
      if s > 0.0 then begin
        acc := !acc +. ((!hi -. !lo) /. s);
        incr used
      end
    done;
    if !used = 0 then None else Some (!acc /. float_of_int !used)
  in
  let points =
    Array.to_list blocks
    |> List.filter_map (fun m ->
           match rs_of_block m with
           | Some rs -> Some (float_of_int m, rs)
           | None -> None)
    |> Array.of_list
  in
  let fit = fit_of_points points in
  { h = fit.Regression.slope; r_squared = fit.Regression.r_squared; points }

let aggregated_variance ?(min_block = 4) ?(num_scales = 12) series =
  let n = Array.length series in
  assert (n >= 16 * min_block);
  let blocks = geometric_blocks ~min_block ~max_block:(n / 8) ~num_scales in
  let points =
    Array.map
      (fun m ->
        let agg = Numerics.Float_array.aggregate series ~block:m in
        (float_of_int m, Numerics.Float_array.variance_population agg))
      blocks
  in
  let fit = fit_of_points points in
  {
    h = 1.0 +. (fit.Regression.slope /. 2.0);
    r_squared = fit.Regression.r_squared;
    points;
  }

let variance_of_sums ?(min_block = 2) ?(num_scales = 14) series =
  let n = Array.length series in
  assert (n >= 16 * min_block);
  let blocks = geometric_blocks ~min_block ~max_block:(n / 8) ~num_scales in
  let points =
    Array.map
      (fun m ->
        let agg = Numerics.Float_array.aggregate series ~block:m in
        (* aggregate averages, so multiply back to block sums. *)
        let sums = Array.map (fun v -> v *. float_of_int m) agg in
        (float_of_int m, Numerics.Float_array.variance_population sums))
      blocks
  in
  let fit = fit_of_points points in
  {
    h = fit.Regression.slope /. 2.0;
    r_squared = fit.Regression.r_squared;
    points;
  }

let local_whittle ?(fraction = 0.1) series =
  assert (fraction > 0.0 && fraction <= 1.0);
  let spectrum = Numerics.Fft.periodogram series in
  let m =
    Stdlib.max 8 (int_of_float (fraction *. float_of_int (Array.length spectrum)))
  in
  let m = Stdlib.min m (Array.length spectrum) in
  let points = Array.sub spectrum 0 m in
  let mf = float_of_int m in
  let mean_log_w =
    Array.fold_left (fun acc (w, _) -> acc +. log w) 0.0 points /. mf
  in
  (* Robinson's objective; unimodal in H on (0, 1) for LRD-like data. *)
  let objective h =
    let exponent = (2.0 *. h) -. 1.0 in
    let avg =
      Array.fold_left
        (fun acc (w, i) -> acc +. ((w ** exponent) *. i))
        0.0 points
      /. mf
    in
    log avg -. (exponent *. mean_log_w)
  in
  let h =
    Numerics.Optimize.brent ~f:objective ~lo:0.01 ~hi:0.99 ~tol:1e-8
  in
  { h; r_squared = 1.0; points }

let periodogram ?(fraction = 0.1) series =
  assert (fraction > 0.0 && fraction <= 1.0);
  let spectrum = Numerics.Fft.periodogram series in
  let keep = Stdlib.max 8 (int_of_float (fraction *. float_of_int (Array.length spectrum))) in
  let keep = Stdlib.min keep (Array.length spectrum) in
  let points = Array.sub spectrum 0 keep in
  let fit = fit_of_points points in
  {
    h = (1.0 -. fit.Regression.slope) /. 2.0;
    r_squared = fit.Regression.r_squared;
    points;
  }
