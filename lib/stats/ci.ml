type interval = { point : float; half_width : float; level : float }

let mean_ci ?(level = 0.95) x =
  let n = Array.length x in
  assert (n >= 2);
  assert (level > 0.0 && level < 1.0);
  let mean = Numerics.Float_array.mean x in
  let s = Numerics.Float_array.std x in
  let t =
    Numerics.Special.student_t_quantile ~df:(n - 1) (1.0 -. ((1.0 -. level) /. 2.0))
  in
  { point = mean; half_width = t *. s /. sqrt (float_of_int n); level }

let batch_means_ci ?(level = 0.95) ?(batches = 20) x =
  assert (batches >= 2);
  assert (Array.length x >= 2 * batches);
  let batch_size = Array.length x / batches in
  let means =
    Array.init batches (fun b ->
        let acc = ref 0.0 in
        for i = b * batch_size to ((b + 1) * batch_size) - 1 do
          acc := !acc +. x.(i)
        done;
        !acc /. float_of_int batch_size)
  in
  mean_ci ~level means

let contains { point; half_width; _ } x =
  x >= point -. half_width && x <= point +. half_width

let relative_half_width { point; half_width; _ } =
  if Float.equal point 0.0 then infinity else half_width /. Float.abs point

let log10_interval { point; half_width; _ } =
  let tiny = 1e-300 in
  let lo = Stdlib.max tiny (point -. half_width) in
  let hi = Stdlib.max tiny (point +. half_width) in
  (log10 lo, log10 hi)
