let autocovariance x ~max_lag =
  let n = Array.length x in
  assert (n > max_lag && max_lag >= 0);
  let mean = Numerics.Float_array.mean x in
  let nf = float_of_int n in
  Array.init (max_lag + 1) (fun k ->
      let acc = ref 0.0 in
      for t = 0 to n - 1 - k do
        acc := !acc +. ((x.(t) -. mean) *. (x.(t + k) -. mean))
      done;
      !acc /. nf)

let normalize gamma =
  assert (Array.length gamma > 0);
  let g0 = gamma.(0) in
  if Float.equal g0 0.0 then Array.map (fun _ -> 0.0) gamma
  else Array.map (fun g -> g /. g0) gamma

let autocorrelation x ~max_lag =
  let r = normalize (autocovariance x ~max_lag) in
  if Array.length r > 0 && Float.equal r.(0) 0.0 then r.(0) <- 1.0;
  r

let autocovariance_fft x ~max_lag =
  let n = Array.length x in
  assert (n > max_lag && max_lag >= 0);
  let mean = Numerics.Float_array.mean x in
  (* Zero-pad to 2n to make circular convolution linear. *)
  let m = Numerics.Fft.next_pow2 (2 * n) in
  let re = Array.make m 0.0 and im = Array.make m 0.0 in
  for i = 0 to n - 1 do
    re.(i) <- x.(i) -. mean
  done;
  Numerics.Fft.forward ~re ~im;
  for i = 0 to m - 1 do
    re.(i) <- (re.(i) *. re.(i)) +. (im.(i) *. im.(i));
    im.(i) <- 0.0
  done;
  Numerics.Fft.inverse ~re ~im;
  Array.init (max_lag + 1) (fun k -> re.(k) /. float_of_int n)

let autocorrelation_fft x ~max_lag =
  let r = normalize (autocovariance_fft x ~max_lag) in
  if Array.length r > 0 && Float.equal r.(0) 0.0 then r.(0) <- 1.0;
  r

let partial_autocorrelation x ~max_lag =
  let r = autocorrelation x ~max_lag in
  let pacf = Array.make (max_lag + 1) 0.0 in
  pacf.(0) <- 1.0;
  if max_lag >= 1 then begin
    (* Durbin-Levinson: phi.(k) holds phi_{m,k} at the current order m. *)
    let phi = Array.make (max_lag + 1) 0.0 in
    let prev = Array.make (max_lag + 1) 0.0 in
    phi.(1) <- r.(1);
    pacf.(1) <- r.(1);
    let v = ref (1.0 -. (r.(1) *. r.(1))) in
    for m = 2 to max_lag do
      Array.blit phi 0 prev 0 (max_lag + 1);
      let num = ref r.(m) in
      for k = 1 to m - 1 do
        num := !num -. (prev.(k) *. r.(m - k))
      done;
      let phi_mm = if !v > 0.0 then !num /. !v else 0.0 in
      phi.(m) <- phi_mm;
      for k = 1 to m - 1 do
        phi.(k) <- prev.(k) -. (phi_mm *. prev.(m - k))
      done;
      v := !v *. (1.0 -. (phi_mm *. phi_mm));
      pacf.(m) <- phi_mm
    done
  end;
  pacf
