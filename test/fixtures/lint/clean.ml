(* Representative clean kernel code: guarded division, Float.equal /
   Float.compare instead of structural comparison. *)
let mean xs =
  let n = Array.length xs in
  assert (n > 0);
  Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let close a b = Float.abs (a -. b) <= 1e-9
let order xs = List.sort Float.compare xs
let is_zero v = Float.equal v 0.0
