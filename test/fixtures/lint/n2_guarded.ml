(* N2 negatives: a guard in the enclosing binding, a waiver, and a
   compile-time-constant argument each silence the rule. *)
let bop x =
  assert (x > 0.0);
  exp (-.x)

let[@lint.allow "N2"] tail x = log x

let log10_e = log10 (exp 1.0)
