(* Same shapes as n1_float_eq.ml, each suppressed by a waiver form the
   linter supports: expression attribute, binding attribute, and the
   floating file-scope attribute. *)
let eq_lit x = ((x = 1.0) [@lint.allow "N1"])

let[@lint.allow "N1"] ne_lit x = x <> 0.5

[@@@lint.allow "N1"]

let cmp_poly a b = compare a b < 0
