(* C1 negative: waived with a justification comment, the sanctioned
   escape hatch for genuinely write-once module state. *)
(* Written once at module init, read-only afterwards. *)
let[@lint.allow "C1"] cache = Hashtbl.create 16
