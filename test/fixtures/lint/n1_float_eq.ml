(* N1 positives: structural comparison with float-smelling operands. *)
let eq_lit x = x = 1.0
let ne_lit x = x <> 0.5
let cmp_poly a b = compare a b < 0
