(* L1 positives: blocking work under the engine mutex (directly and
   through a lock-wrapper closure) and a spawn mutating bare state. *)
let hits = ref 0

let with_engine t f = Mutex.protect t (fun () -> f t)

let slow_eval engine =
  Unix.sleepf 0.25;
  ignore engine

let serve t = with_engine t (fun engine -> slow_eval engine)

let direct t = Mutex.protect t (fun () -> Unix.sleepf 0.1)

let fan_out () = Domain.spawn (fun () -> hits := !hits + 1)
