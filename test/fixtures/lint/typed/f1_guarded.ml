(* F1 negatives: every flow below is cleansed, dominated by a
   finiteness test, or explicitly waived. *)
let guarded req =
  let v = exp req in
  if Float.is_finite v then Obs.Registry.observe "m" v

let cleansed req =
  let v = Resilience.Guard.finite ~label:"m" (exp req) in
  Obs.Registry.observe "m" v

let asserted req =
  let v = exp req in
  assert (Float.is_finite v);
  Obs.Registry.observe "m" v

let rebound req =
  (* Rebinding through a guarded default clears the taint. *)
  let v = exp req in
  let v = if Float.is_finite v then v else 0.0 in
  Obs.Registry.observe "m" v

let waived req =
  let v = exp req in
  (Obs.Registry.observe "m" v [@lint.allow "F1"])
