(* E1 negatives: the raise is caught locally, fenced by a guard
   combinator, or explicitly waived. *)
let parse_class name =
  if name = "" then invalid_arg "class" else name

let handler req =
  try parse_class req with Invalid_argument _ -> "default"

let register router = Router.route router "/classify" handler

let fenced req =
  Resilience.Guard.protect ~label:"fixture" ~fallback:(fun _ -> "d")
    (fun () -> parse_class req)

let register_fenced router = Router.route router "/fenced" fenced

let waived router =
  (Router.route router "/raw" parse_class [@lint.allow "E1"])
