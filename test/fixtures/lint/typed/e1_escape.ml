(* E1 positives: a route handler and a spawned task that can raise
   with no catcher on the path. *)
let parse_class name =
  if name = "" then invalid_arg "class" else name

let handler req = parse_class req

let register router = Router.route router "/classify" handler

let background () = Domain.spawn (fun () -> failwith "boom")
