(* F1 positives: NaN producers reaching decision sinks unguarded. *)
let handler req =
  let v = exp req in
  Obs.Registry.observe "kernel.output" v

let parse_and_serve s =
  let x = float_of_string s in
  Http.json x
