(* L1 negatives: pure work under the lock, Atomic state from spawns,
   and a justified waiver on a deliberate injection point. *)
let counter = Atomic.make 0

let with_engine t f = Mutex.protect t (fun () -> f t)

let serve t = with_engine t (fun engine -> 1 + engine)

let fan_out () = Domain.spawn (fun () -> Atomic.incr counter)

let chaos t =
  (Mutex.protect t (fun () -> Unix.sleepf 0.1) [@lint.allow "L1"])
