(* C2 positives outside the sanctioned modules: raw wall-clock reads
   and Domain.spawn.  The same file linted as lib/cac/sweep.ml or
   lib/obs/clock.ml loses the corresponding finding. *)
let now () = Unix.gettimeofday ()

let par f g =
  let d = Domain.spawn f in
  let y = g () in
  (Domain.join d, y)
