(* N2 positives when linted as a kernel path (lib/core): exp and (/.)
   with no finiteness guard in the enclosing binding. *)
let bop x = exp (-.x)
let ratio a b = a /. b
