(* C1 positives: module-level mutable state, unsynchronized under
   Domain-parallel sweeps. *)
let cache = Hashtbl.create 16
let count = ref 0
