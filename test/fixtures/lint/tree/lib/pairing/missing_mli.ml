(* H1 pairing fixture: deliberately lacks a .mli. *)
let y = 2
