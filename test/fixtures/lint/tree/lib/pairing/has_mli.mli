val x : int
