(* H1 pairing fixture: has a matching .mli. *)
let x = 1
