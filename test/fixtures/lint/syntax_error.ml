(* Deliberately unparseable: the linter must report a single P0
   finding instead of crashing. *)
let = bad (
