(* H1 positives in library code: direct stdout printing bypasses
   Obs.Sink and ignores --quiet. *)
let greet name = Printf.printf "hello %s\n" name
let bye () = print_endline "bye"
