open Helpers

(* The registry is process-global and other suites tick instruments
   through the modules they exercise, so every test here uses names
   under "test." that nothing else touches. *)

(* {2 Counters} *)

let test_counter_monotonic () =
  let c = Obs.Registry.Counter.v "test.obs.mono" in
  Obs.Registry.Counter.incr c;
  Obs.Registry.Counter.incr ~by:41 c;
  check_int "handle increments accumulate" 42
    (Obs.Registry.counter_value "test.obs.mono");
  (match Obs.Registry.Counter.incr ~by:(-1) c with
  | () -> Alcotest.fail "negative by accepted by handle"
  | exception Invalid_argument _ -> ());
  (match Obs.Registry.incr ~by:(-5) "test.obs.mono" with
  | () -> Alcotest.fail "negative by accepted by keyed incr"
  | exception Invalid_argument _ -> ());
  check_int "rejected updates left no trace" 42
    (Obs.Registry.counter_value "test.obs.mono")

let test_counter_labels_merge () =
  let labels = Obs.Labels.make [ ("k", "a") ] in
  let labels' = Obs.Labels.make [ ("k", "b") ] in
  Obs.Registry.incr ~labels ~by:3 "test.obs.labelled";
  Obs.Registry.incr ~labels:labels' ~by:4 "test.obs.labelled";
  check_int "label sets are distinct series" 3
    (Obs.Registry.counter_value ~labels "test.obs.labelled");
  check_int "label sets are distinct series" 4
    (Obs.Registry.counter_value ~labels:labels' "test.obs.labelled");
  check_int "unlabelled series untouched" 0
    (Obs.Registry.counter_value "test.obs.labelled")

let test_declared_zero_in_snapshot () =
  Obs.Registry.declare_counter "test.obs.declared_only";
  let snap = Obs.Registry.snapshot () in
  check_true "declared counter exports as zero"
    (List.assoc_opt ("test.obs.declared_only", Obs.Labels.empty) snap.counters
    = Some 0)

(* {2 Histogram merging across domains} *)

(* The merged view must equal a sequential run: bin-wise merging is
   associative and commutative, so totals are independent of which
   domain observed what. *)
let test_histogram_domain_merge () =
  Obs.Registry.declare_histogram ~lo:0.0 ~hi:100.0 ~bins:10
    "test.obs.sharded";
  let observe_range lo_i =
    for i = lo_i to lo_i + 49 do
      Obs.Registry.observe "test.obs.sharded"
        (float_of_int (i mod 120))
    done
  in
  let domains =
    List.map (fun k -> Domain.spawn (fun () -> observe_range (50 * k))) [ 1; 2; 3 ]
  in
  observe_range 0;
  List.iter Domain.join domains;
  match Obs.Registry.histogram_snapshot "test.obs.sharded" with
  | None -> Alcotest.fail "histogram missing from snapshot"
  | Some merged ->
      check_int "every observation counted" 200 merged.count;
      (* Sequential reference on a plain Stats histogram. *)
      let ref_h = Stats.Histogram.create ~lo:0.0 ~hi:100.0 ~bins:10 in
      let ref_sum = ref 0.0 in
      List.iter
        (fun lo_i ->
          for i = lo_i to lo_i + 49 do
            let x = float_of_int (i mod 120) in
            Stats.Histogram.add ref_h x;
            ref_sum := !ref_sum +. x
          done)
        [ 50; 100; 150; 0 ];
      Array.iteri
        (fun i c ->
          check_int (Printf.sprintf "bin %d matches sequential run" i) c
            merged.counts.(i))
        (Stats.Histogram.counts ref_h);
      check_int "overflow matches" (Stats.Histogram.overflow ref_h)
        merged.overflow;
      check_close ~tol:1e-6 "sum matches" !ref_sum merged.sum

let test_stats_merge_associative () =
  let mk obs =
    let h = Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
    List.iter (Stats.Histogram.add h) obs;
    h
  in
  let a () = mk [ 0.5; 3.0; 9.9 ]
  and b () = mk [ -1.0; 4.2; 4.3 ]
  and c () = mk [ 11.0; 0.1 ] in
  let left = Stats.Histogram.merge (Stats.Histogram.merge (a ()) (b ())) (c ())
  and right =
    Stats.Histogram.merge (a ()) (Stats.Histogram.merge (b ()) (c ()))
  in
  check_true "merge associative (bin counts)"
    (Stats.Histogram.counts left = Stats.Histogram.counts right);
  check_int "merge associative (underflow)"
    (Stats.Histogram.underflow left)
    (Stats.Histogram.underflow right);
  check_int "merge associative (overflow)"
    (Stats.Histogram.overflow left)
    (Stats.Histogram.overflow right)

let test_handle_shared_across_domains () =
  (* One module-style handle used by four domains: each domain updates
     its own shard's cell, so nothing is lost in the merge. *)
  let c = Obs.Registry.Counter.v "test.obs.shared_handle" in
  let h =
    Obs.Registry.Histogram.v ~lo:0.0 ~hi:10.0 ~bins:5 "test.obs.shared_hist"
  in
  let work () =
    for i = 1 to 500 do
      Obs.Registry.Counter.incr c;
      Obs.Registry.Histogram.observe h (float_of_int (i mod 10))
    done
  in
  let domains = List.init 3 (fun _ -> Domain.spawn work) in
  work ();
  List.iter Domain.join domains;
  check_int "no increment lost across domains" 2000
    (Obs.Registry.counter_value "test.obs.shared_handle");
  match Obs.Registry.histogram_snapshot "test.obs.shared_hist" with
  | Some s -> check_int "no observation lost across domains" 2000 s.count
  | None -> Alcotest.fail "shared histogram missing"

(* {2 Spans} *)

let test_span_nesting () =
  check_int "no open span initially" 0 (Obs.Span.current_depth ());
  let seen = ref [] in
  Obs.Span.with_ ~name:"test.outer" (fun () ->
      seen := (Obs.Span.current_depth (), Obs.Span.current_name ()) :: !seen;
      Obs.Span.with_ ~name:"test.inner" (fun () ->
          seen := (Obs.Span.current_depth (), Obs.Span.current_name ()) :: !seen));
  check_int "stack drained" 0 (Obs.Span.current_depth ());
  (match !seen with
  | [ (2, Some "test.inner"); (1, Some "test.outer") ] -> ()
  | _ -> Alcotest.fail "span stack did not nest as outer > inner");
  match Obs.Registry.histogram_snapshot "span.test.outer.us" with
  | Some s -> check_true "outer span recorded a duration" (s.count >= 1)
  | None -> Alcotest.fail "span histogram missing"

let test_span_exception_closes () =
  (match
     Obs.Span.with_ ~name:"test.raising" (fun () -> failwith "boom")
   with
  | () -> Alcotest.fail "exception swallowed"
  | exception Failure _ -> ());
  check_int "span closed on exception" 0 (Obs.Span.current_depth ())

let with_temp_jsonl f =
  let path = Filename.temp_file "obs_test" ".jsonl" in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () ->
      close_out_noerr oc;
      Sys.remove path)
    (fun () ->
      f (Obs.Sink.Jsonl oc);
      close_out oc;
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let lines = ref [] in
          (try
             while true do
               lines := input_line ic :: !lines
             done
           with End_of_file -> ());
          List.rev !lines))

let test_span_trace_events () =
  let lines =
    with_temp_jsonl (fun sink ->
        Obs.Span.set_trace_sink sink;
        Fun.protect
          ~finally:(fun () -> Obs.Span.set_trace_sink Obs.Sink.Null)
          (fun () ->
            Obs.Span.with_ ~name:"test.traced_outer" (fun () ->
                Obs.Span.with_ ~name:"test.traced_inner" ignore)))
  in
  check_int "one event per span" 2 (List.length lines);
  let parsed =
    List.map
      (fun line ->
        match Obs.Json.of_string line with
        | Some j -> j
        | None -> Alcotest.failf "unparseable trace line: %s" line)
      lines
  in
  let field name j =
    match Obs.Json.member name j with
    | Some v -> v
    | None -> Alcotest.failf "trace event missing %S" name
  in
  (* Inner completes first; its parent id is the outer's id. *)
  match parsed with
  | [ inner; outer ] ->
      check_true "inner named" (field "name" inner = String "test.traced_inner");
      check_true "outer named" (field "name" outer = String "test.traced_outer");
      check_true "outer is a root span" (field "parent" outer = Null);
      check_true "inner's parent is outer"
        (field "parent" inner = field "id" outer);
      check_true "depths recorded"
        (field "depth" inner = Int 1 && field "depth" outer = Int 0);
      check_true "both spans ok"
        (field "ok" inner = Bool true && field "ok" outer = Bool true)
  | _ -> Alcotest.fail "expected exactly two parsed events"

(* {2 Trace sampling} *)

(* Run [spans] completions of [name] under [policy] with a Jsonl trace
   sink installed; returns how many trace lines were emitted. *)
let emitted_under policy ~name ~spans =
  let lines =
    with_temp_jsonl (fun sink ->
        Obs.Span.set_trace_sink sink;
        Obs.Span.set_sampling ~name policy;
        Fun.protect
          ~finally:(fun () ->
            Obs.Span.set_trace_sink Obs.Sink.Null;
            Obs.Span.reset_sampling ())
          (fun () ->
            for _ = 1 to spans do
              Obs.Span.with_ ~name ignore
            done))
  in
  List.length lines

let test_span_sampling_one_in () =
  let dropped_before = Obs.Registry.counter_value "obs.span.sampled_out" in
  check_int "1-in-3 over 9 completions" 3
    (emitted_under (Obs.Span.One_in 3) ~name:"test.sampled_one_in" ~spans:9);
  check_int "six completions dropped" (dropped_before + 6)
    (Obs.Registry.counter_value "obs.span.sampled_out");
  (* sampling gates the trace sink only: every span is still timed *)
  match Obs.Registry.histogram_snapshot "span.test.sampled_one_in.us" with
  | Some s -> check_true "histogram saw all 9 spans" (s.count >= 9)
  | None -> Alcotest.fail "sampled span histogram missing"

let test_span_sampling_token_bucket () =
  check_int "bucket of 2 with no refill" 2
    (emitted_under
       (Obs.Span.Token_bucket { capacity = 2; refill_per_s = 0.0 })
       ~name:"test.sampled_bucket" ~spans:40)

let test_span_sampling_scoping () =
  Obs.Span.set_sampling ~name:"test.scoped" (Obs.Span.One_in 5);
  Fun.protect
    ~finally:(fun () -> Obs.Span.reset_sampling ())
    (fun () ->
      check_true "named override applies"
        (Obs.Span.sampling_for "test.scoped" = Obs.Span.One_in 5);
      check_true "other names keep the default"
        (Obs.Span.sampling_for "test.other" = Obs.Span.Always));
  check_true "reset restores emit-everything"
    (Obs.Span.sampling_for "test.scoped" = Obs.Span.Always);
  (* spans with no sink installed never consult the sampler *)
  let before = Obs.Registry.counter_value "obs.span.sampled_out" in
  Obs.Span.set_sampling ~name:"test.scoped" (Obs.Span.One_in 2);
  Fun.protect
    ~finally:(fun () -> Obs.Span.reset_sampling ())
    (fun () ->
      for _ = 1 to 8 do
        Obs.Span.with_ ~name:"test.scoped" ignore
      done);
  check_int "no sink: sampler never consulted" before
    (Obs.Registry.counter_value "obs.span.sampled_out")

let test_span_sampling_validation () =
  let rejected policy =
    match Obs.Span.set_sampling ~name:"test.invalid" policy with
    | exception Invalid_argument _ -> ()
    | () -> Alcotest.fail "invalid sampling policy accepted"
  in
  rejected (Obs.Span.One_in 0);
  rejected (Obs.Span.Token_bucket { capacity = -1; refill_per_s = 1.0 });
  rejected (Obs.Span.Token_bucket { capacity = 1; refill_per_s = Float.nan })

(* {2 Trace context} *)

let test_trace_parse_roundtrip () =
  let tp = "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01" in
  (match Obs.Trace.parse_traceparent tp with
  | Some ctx ->
      check_true "trace id extracted"
        (ctx.Obs.Trace.trace_id = "0123456789abcdef0123456789abcdef");
      check_true "span id extracted"
        (ctx.Obs.Trace.span_id = "00f067aa0ba902b7");
      check_true "renders back to the same header"
        (Obs.Trace.to_traceparent ctx = tp)
  | None -> Alcotest.fail "valid traceparent rejected");
  check_true "surrounding whitespace tolerated"
    (Obs.Trace.parse_traceparent ("  " ^ tp ^ " ") <> None);
  check_true "future version with trailing fields accepted"
    (Obs.Trace.parse_traceparent
       "cc-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01-extra"
    <> None);
  List.iter
    (fun s ->
      check_true
        (Printf.sprintf "rejects %S" s)
        (Obs.Trace.parse_traceparent s = None))
    [
      "";
      "garbage";
      (* short trace id *)
      "00-0123-00f067aa0ba902b7-01";
      (* all-zero ids are invalid on the wire *)
      "00-00000000000000000000000000000000-00f067aa0ba902b7-01";
      "00-0123456789abcdef0123456789abcdef-0000000000000000-01";
      (* version ff is reserved-invalid *)
      "ff-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01";
      (* hex must be lowercase *)
      "00-0123456789ABCDEF0123456789abcdef-00f067aa0ba902b7-01";
      (* version 00 admits no trailing fields *)
      "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01-extra";
      (* misplaced separator *)
      "00_0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01";
    ]

let test_trace_generate () =
  let all_hex s =
    String.for_all
      (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
      s
  in
  let a = Obs.Trace.generate () and b = Obs.Trace.generate () in
  check_int "trace id width" 32 (String.length a.Obs.Trace.trace_id);
  check_int "span id width" 16 (String.length a.Obs.Trace.span_id);
  check_true "lowercase hex only"
    (all_hex a.Obs.Trace.trace_id && all_hex a.Obs.Trace.span_id);
  check_true "never all-zero"
    (String.exists (fun c -> c <> '0') a.Obs.Trace.trace_id);
  check_true "consecutive ids differ"
    (a.Obs.Trace.trace_id <> b.Obs.Trace.trace_id);
  check_true "generated context round-trips through the header"
    (Obs.Trace.parse_traceparent (Obs.Trace.to_traceparent a) = Some a)

let test_trace_context_scoping () =
  check_true "no ambient context" (Obs.Trace.current () = None);
  let ctx = Obs.Trace.generate () in
  check_true "context visible inside with_context"
    (Obs.Trace.with_context ctx (fun () -> Obs.Trace.current ()) = Some ctx);
  check_true "restored after" (Obs.Trace.current () = None);
  (match Obs.Trace.with_context ctx (fun () -> failwith "boom") with
  | () -> Alcotest.fail "exception swallowed"
  | exception Failure _ -> ());
  check_true "restored on exception" (Obs.Trace.current () = None);
  check_true "current_trace_id matches"
    (Obs.Trace.with_context ctx Obs.Trace.current_trace_id
    = Some ctx.Obs.Trace.trace_id)

(* The context is Domain-local: a worker domain neither sees the
   parent's context nor leaks its own back — the property the serving
   pool relies on to keep concurrent requests' traces separate. *)
let test_trace_domain_isolation () =
  let ctx = Obs.Trace.generate () in
  Obs.Trace.with_context ctx (fun () ->
      let child_saw =
        Domain.join (Domain.spawn (fun () -> Obs.Trace.current ()))
      in
      check_true "fresh domain starts without a context" (child_saw = None);
      let child_ctx = Obs.Trace.generate () in
      Domain.join
        (Domain.spawn (fun () ->
             Obs.Trace.with_context child_ctx (fun () ->
                 check_true "child sees its own context"
                   (Obs.Trace.current () = Some child_ctx))));
      check_true "child's context never leaks to the parent"
        (Obs.Trace.current () = Some ctx))

let test_span_event_trace_field () =
  let ctx = Obs.Trace.generate () in
  let lines =
    with_temp_jsonl (fun sink ->
        Obs.Span.set_trace_sink sink;
        Fun.protect
          ~finally:(fun () -> Obs.Span.set_trace_sink Obs.Sink.Null)
          (fun () ->
            Obs.Span.with_ ~name:"test.untraced_span" ignore;
            Obs.Trace.with_context ctx (fun () ->
                Obs.Span.with_ ~name:"test.traced_span" ignore)))
  in
  match List.filter_map Obs.Json.of_string lines with
  | [ untraced; traced ] ->
      check_true "untraced span has a null trace field"
        (Obs.Json.member "trace" untraced = Some Null);
      check_true "traced span carries the trace id"
        (Obs.Json.member "trace" traced
        = Some (String ctx.Obs.Trace.trace_id))
  | parsed -> Alcotest.failf "expected two events, got %d" (List.length parsed)

(* {2 Exemplars} *)

let test_exemplar_stamping () =
  Obs.Registry.declare_histogram ~lo:0.0 ~hi:10.0 ~bins:5 "test.obs.exemplar";
  Obs.Registry.observe "test.obs.exemplar" 1.0;
  (match Obs.Registry.histogram_snapshot "test.obs.exemplar" with
  | Some s ->
      check_true "untraced observations leave no exemplar" (s.exemplar = None)
  | None -> Alcotest.fail "histogram missing");
  let ctx = Obs.Trace.generate () in
  Obs.Trace.with_context ctx (fun () ->
      Obs.Registry.observe "test.obs.exemplar" 4.5);
  match Obs.Registry.histogram_snapshot "test.obs.exemplar" with
  | None -> Alcotest.fail "histogram missing"
  | Some s -> (
      match s.exemplar with
      | None -> Alcotest.fail "traced observation left no exemplar"
      | Some e ->
          check_true "exemplar carries the trace id"
            (e.Obs.Registry.ex_trace = ctx.Obs.Trace.trace_id);
          check_close "exemplar keeps the observed value" 4.5
            e.Obs.Registry.ex_value;
          check_true "exemplar is wall-stamped" (e.Obs.Registry.ex_wall > 0.0))

let test_prometheus_exemplar () =
  (* Hand-built snapshot: the exemplar must render OpenMetrics-style
     on the +Inf bucket only. *)
  let snap =
    {
      Obs.Registry.counters = [];
      gauges = [];
      histograms =
        [
          ( ("test.ex.us", Obs.Labels.empty),
            {
              Obs.Registry.hlo = 0.0;
              hhi = 10.0;
              counts = [| 1 |];
              underflow = 0;
              overflow = 0;
              sum = 2.0;
              count = 1;
              exemplar =
                Some
                  {
                    Obs.Registry.ex_trace = "4bf92f3577b34da6";
                    ex_value = 2.0;
                    ex_wall = 1.5;
                  };
            } );
        ];
    }
  in
  let out = Obs.Export.prometheus snap in
  check_true "+Inf bucket carries the exemplar"
    (contains_substring out
       "test_ex_us_bucket{le=\"+Inf\"} 1 # {trace_id=\"4bf92f3577b34da6\"} 2 1.5");
  check_true "finite buckets stay exemplar-free"
    (contains_substring out "test_ex_us_bucket{le=\"10\"} 1\n")

(* {2 Runtime collector} *)

let test_runtime_read_monotonic () =
  let a = Obs.Runtime.read () in
  (* allocate enough boxed values to move the GC counters *)
  let junk = ref [] in
  for i = 1 to 10_000 do
    junk := string_of_int i :: !junk
  done;
  Gc.minor ();
  check_true "allocation kept" (List.length !junk = 10_000);
  let b = Obs.Runtime.read () in
  check_true "minor_words grows with allocation"
    (b.Obs.Runtime.minor_words > a.Obs.Runtime.minor_words);
  check_true "minor_collections never decreases"
    (b.Obs.Runtime.minor_collections >= a.Obs.Runtime.minor_collections);
  check_true "major_words never decreases"
    (b.Obs.Runtime.major_words >= a.Obs.Runtime.major_words);
  check_true "heap is non-empty" (b.Obs.Runtime.heap_words > 0);
  check_true "high-water mark bounds the heap"
    (b.Obs.Runtime.top_heap_words >= b.Obs.Runtime.heap_words)

let test_runtime_sample () =
  let s = Obs.Runtime.sample () in
  (match Obs.Runtime.last () with
  | Some (_, s') -> check_true "last returns the sampled stats" (s' = s)
  | None -> Alcotest.fail "sample did not record itself");
  (match Obs.Runtime.sample_age_s () with
  | Some age -> check_true "age is non-negative" (age >= 0.0)
  | None -> Alcotest.fail "sample_age_s empty after a sample");
  let s' = Obs.Runtime.sample () in
  check_true "counters are monotone across samples"
    (s'.Obs.Runtime.minor_collections >= s.Obs.Runtime.minor_collections
    && s'.Obs.Runtime.minor_words >= s.Obs.Runtime.minor_words);
  (* sample never publishes the unflushed zero block (it forces a
     minor collection if quick_stat has not seen a stop-the-world
     point since worker domains spawned) *)
  check_true "sampled heap is never zero" (s'.Obs.Runtime.heap_words > 0);
  let snap = Obs.Registry.snapshot () in
  List.iter
    (fun name ->
      check_true
        (Printf.sprintf "%s gauge exported" name)
        (List.mem_assoc (name, Obs.Labels.empty) snap.gauges))
    [
      "runtime.gc.minor_collections";
      "runtime.gc.major_collections";
      "runtime.gc.minor_words";
      "runtime.heap_words";
      "runtime.top_heap_words";
    ];
  (* json encoding carries every field *)
  let doc = Obs.Runtime.json_of_stats s' in
  List.iter
    (fun f ->
      check_true (Printf.sprintf "json has %s" f) (Obs.Json.member f doc <> None))
    [ "minor_collections"; "major_collections"; "minor_words"; "heap_words" ]

(* {2 Heatmaps} *)

(* Seed two labelled series of a private histogram name and check every
   renderer against the known layout: 5 bins over [0, 50). *)
(* Lazy: the registry is global and cumulative, so the three renderer
   tests must share one seeding pass. *)
let seeded_heatmap =
  lazy
    (Obs.Registry.set_histogram_spec ~lo:0.0 ~hi:50.0 ~bins:5 "test.heat";
     let observe cells xs =
       let labels = Obs.Labels.make [ ("buffer_cells", cells) ] in
       List.iter (Obs.Registry.observe ~labels "test.heat") xs
     in
     observe "2000" [ 25.0; 35.0; 45.0; 60.0 ] (* 60 overflows *);
     observe "100" [ 5.0; 5.0; 5.0; 15.0 ];
     match
       Obs.Heatmap.of_snapshot ~name:"test.heat" (Obs.Registry.snapshot ())
     with
     | Some hm -> hm
     | None -> Alcotest.fail "seeded heatmap missing from snapshot")

let seed_heatmap () = Lazy.force seeded_heatmap

let index_of hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec scan i =
    if i + nl > hl then None
    else if String.sub hay i nl = needle then Some i
    else scan (i + 1)
  in
  scan 0

let test_heatmap_ascii () =
  let hm = seed_heatmap () in
  check_int "one row per buffer size" 2 (Obs.Heatmap.row_count hm);
  let ascii = Obs.Heatmap.to_ascii hm in
  check_true "header names metric, key and layout"
    (contains_substring ascii
       "test.heat by buffer_cells — 5 bins over [0, 50), width 10");
  (match (index_of ascii "     100 | ", index_of ascii "    2000 | ") with
  | Some small, Some large ->
      check_true "rows sorted numerically, not lexically" (small < large)
  | _ -> Alcotest.fail "expected one grid row per label");
  check_true "row totals with under/overflow"
    (contains_substring ascii "4 (0/1)");
  check_true "scale legend present" (contains_substring ascii "row max")

let test_heatmap_csv () =
  let hm = seed_heatmap () in
  let expected =
    String.concat "\n"
      [
        "buffer_cells,bin_lo,bin_hi,count";
        "100,0,10,3";
        "100,10,20,1";
        "100,20,30,0";
        "100,30,40,0";
        "100,40,50,0";
        "2000,0,10,0";
        "2000,10,20,0";
        "2000,20,30,1";
        "2000,30,40,1";
        "2000,40,50,1";
        "";
      ]
  in
  Alcotest.(check string) "csv long-format golden" expected
    (Obs.Heatmap.to_csv hm)

let test_heatmap_html () =
  let hm = seed_heatmap () in
  let html = Obs.Heatmap.to_html hm in
  check_true "self-contained document"
    (contains_substring html "<!DOCTYPE html>");
  check_true "auto-refresh wired"
    (contains_substring html "http-equiv=\"refresh\"");
  check_true "rows labelled" (contains_substring html "<th>2000</th>");
  check_true "full cells are opaque"
    (contains_substring html "rgba(97,175,239,1.000)");
  check_true "empty cells are transparent"
    (contains_substring html "rgba(97,175,239,0.000)")

(* {2 JSON round-trip} *)

let test_json_roundtrip () =
  let doc =
    Obs.Json.Obj
      [
        ("s", Obs.Json.String "with \"quotes\" and \\ and \n newline");
        ("i", Obs.Json.Int (-42));
        ("f", Obs.Json.Float 1.5e-3);
        ("b", Obs.Json.Bool false);
        ("n", Obs.Json.Null);
        ("l", Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Float 0.25 ]);
        ("o", Obs.Json.Obj [ ("nested", Obs.Json.Bool true) ]);
      ]
  in
  match Obs.Json.of_string (Obs.Json.to_string doc) with
  | Some parsed -> check_true "round-trips structurally" (parsed = doc)
  | None -> Alcotest.fail "encoder output did not parse"

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      check_true
        (Printf.sprintf "rejects %S" s)
        (Obs.Json.of_string s = None))
    [ ""; "{"; "[1,]"; "{\"a\":1} trailing"; "nul"; "\"unterminated" ]

let test_jsonl_message_roundtrip () =
  let lines =
    with_temp_jsonl (fun sink -> Obs.Sink.message sink "hello from the sink")
  in
  match lines with
  | [ line ] -> (
      match Obs.Json.of_string line with
      | Some j ->
          check_true "message preserved"
            (Obs.Json.member "text" j = Some (String "hello from the sink"));
          check_true "kind is message"
            (Obs.Json.member "kind" j = Some (String "message"))
      | None -> Alcotest.failf "unparseable message line: %s" line)
  | _ -> Alcotest.fail "expected one JSON line"

(* {2 Prometheus exposition} *)

let test_prometheus_golden () =
  (* A hand-built snapshot keeps the golden text independent of the
     global registry's contents. *)
  let labels = Obs.Labels.make [ ("link", "l0") ] in
  let snap =
    {
      Obs.Registry.counters =
        [ (("test.hits", Obs.Labels.empty), 7); (("test.hits", labels), 2) ];
      gauges = [ (("test.load", Obs.Labels.empty), 0.5) ];
      histograms =
        [
          ( ("test.lat.us", Obs.Labels.empty),
            {
              Obs.Registry.hlo = 0.0;
              hhi = 30.0;
              counts = [| 2; 1; 0 |];
              underflow = 0;
              overflow = 1;
              sum = 48.0;
              count = 4;
              exemplar = None;
            } );
        ];
    }
  in
  let expected =
    String.concat "\n"
      [
        "# TYPE test_hits_total counter";
        "test_hits_total 7";
        "test_hits_total{link=\"l0\"} 2";
        "# TYPE test_load gauge";
        "test_load 0.5";
        "# TYPE test_lat_us histogram";
        "test_lat_us_bucket{le=\"10\"} 2";
        "test_lat_us_bucket{le=\"20\"} 3";
        "test_lat_us_bucket{le=\"30\"} 3";
        "test_lat_us_bucket{le=\"+Inf\"} 4";
        "test_lat_us_sum 48";
        "test_lat_us_count 4";
        "# EOF";
        "";
      ]
  in
  Alcotest.(check string) "exposition matches" expected
    (Obs.Export.prometheus snap)

(* {2 Histogram quantiles} *)

let quantile_fixture ?(underflow = 0) ?(overflow = 0) counts =
  let count =
    underflow + overflow + Array.fold_left ( + ) 0 counts
  in
  {
    Obs.Registry.hlo = 0.0;
    hhi = float_of_int (Array.length counts * 10);
    counts;
    underflow;
    overflow;
    sum = 0.0;
    count;
    exemplar = None;
  }

let quantile h q =
  match Obs.Registry.histogram_quantile h ~q with
  | Some v -> v
  | None -> Alcotest.fail "quantile on non-empty histogram returned None"

let test_quantile_interpolation () =
  (* 10 observations spread uniformly in one bin [10, 20): the median
     interpolates to the bin midpoint's position. *)
  let h = quantile_fixture [| 0; 10; 0 |] in
  check_close "p50 interpolates inside the bin" 15.0 (quantile h 0.5);
  check_close "p10 sits near the bin's left edge" 11.0 (quantile h 0.1);
  check_close "p100 is the bin's right edge" 20.0 (quantile h 1.0);
  (* Mass split across bins: 4 in [0,10), 4 in [10,20), 2 in [20,30). *)
  let h = quantile_fixture [| 4; 4; 2 |] in
  check_close "p25 lands mid first bin" 6.25 (quantile h 0.25);
  check_close "p50 is the first-bin boundary" 12.5 (quantile h 0.5);
  check_close "p90 reaches the last bin" 25.0 (quantile h 0.9)

let test_quantile_edges () =
  (match
     Obs.Registry.histogram_quantile (quantile_fixture [| 0; 0 |]) ~q:0.5
   with
  | None -> ()
  | Some _ -> Alcotest.fail "empty histogram must yield None");
  (* Out-of-range mass clamps to the nearest representable edge. *)
  let h = quantile_fixture ~underflow:6 [| 2; 2 |] in
  check_close "underflow mass reports lo" 0.0 (quantile h 0.5);
  let h = quantile_fixture ~overflow:6 [| 2; 2 |] in
  check_close "overflow mass reports hi" 20.0 (quantile h 0.9);
  List.iter
    (fun q ->
      match Obs.Registry.histogram_quantile (quantile_fixture [| 1 |]) ~q with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "q=%g must raise Invalid_argument" q)
    [ -0.1; 1.5; Float.nan ]

let test_text_export_quantiles () =
  let name = "test.obs.quantile_text.us" in
  Obs.Registry.declare_histogram ~lo:0.0 ~hi:100.0 ~bins:10 name;
  for _ = 1 to 10 do
    Obs.Registry.observe name 15.0
  done;
  let out = Obs.Export.text (Obs.Registry.snapshot ()) in
  check_true "text export carries p50/p95/p99"
    (contains_substring out "p50=" && contains_substring out "p95="
   && contains_substring out "p99=")

let test_export_json_keys () =
  Obs.Registry.incr ~by:5 "test.obs.export_key";
  let doc = Obs.Export.json (Obs.Registry.snapshot ()) in
  match Obs.Json.member "counters" doc with
  | Some counters ->
      check_true "counter exported under dotted name"
        (Obs.Json.member "test.obs.export_key" counters = Some (Int 5))
  | None -> Alcotest.fail "no counters object in JSON export"

let suite =
  [
    case "counter: monotonic, rejects negative" test_counter_monotonic;
    case "counter: labelled series are distinct" test_counter_labels_merge;
    case "declared counter exports as zero" test_declared_zero_in_snapshot;
    case "histogram: domain shards merge = sequential" test_histogram_domain_merge;
    case "handles shared across domains" test_handle_shared_across_domains;
    case "histogram: merge is associative" test_stats_merge_associative;
    case "span: nesting depth and names" test_span_nesting;
    case "span: closed on exception" test_span_exception_closes;
    case "span: JSON-lines trace events" test_span_trace_events;
    case "span: 1-in-N trace sampling" test_span_sampling_one_in;
    case "span: token-bucket trace sampling" test_span_sampling_token_bucket;
    case "span: sampling scoping and reset" test_span_sampling_scoping;
    case "span: sampling validation" test_span_sampling_validation;
    case "trace: traceparent parse and round-trip" test_trace_parse_roundtrip;
    case "trace: generated ids are well-formed" test_trace_generate;
    case "trace: context scoping" test_trace_context_scoping;
    case "trace: contexts are domain-local" test_trace_domain_isolation;
    case "trace: span events carry the trace id" test_span_event_trace_field;
    case "exemplar: traced observations stamp histograms"
      test_exemplar_stamping;
    case "exemplar: prometheus +Inf rendering" test_prometheus_exemplar;
    case "runtime: GC counters are monotone" test_runtime_read_monotonic;
    case "runtime: sample mirrors into gauges" test_runtime_sample;
    case "heatmap: ascii grid" test_heatmap_ascii;
    case "heatmap: csv golden" test_heatmap_csv;
    case "heatmap: self-contained html" test_heatmap_html;
    case "json: encode/parse round-trip" test_json_roundtrip;
    case "json: rejects malformed input" test_json_rejects_garbage;
    case "sink: jsonl message round-trip" test_jsonl_message_roundtrip;
    case "prometheus: golden exposition" test_prometheus_golden;
    case "export: json document keys" test_export_json_keys;
    case "quantile: linear interpolation" test_quantile_interpolation;
    case "quantile: empty, clamps, domain errors" test_quantile_edges;
    case "export: text mode carries quantiles" test_text_export_quantiles;
  ]
