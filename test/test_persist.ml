open Helpers

(* {2 Plumbing}

   WAL and snapshot tests work on throwaway directories; the crash
   harness and CLI tests exec the real binary (a declared test dep, so
   [../bin/cts_cli.exe] relative to the test's cwd). *)

let exe =
  lazy
    (match
       List.find_opt Sys.file_exists
         [
           "../bin/cts_cli.exe";
           "_build/default/bin/cts_cli.exe";
           "bin/cts_cli.exe";
         ]
     with
    | Some path -> path
    | None -> Alcotest.fail "cts_cli.exe not built")

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error _ -> ()

let with_tmp_dir f =
  let dir = Filename.temp_file "cts_persist" "" in
  Unix.unlink dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let check_str msg expected actual = Alcotest.(check string) msg expected actual

let spin ?(tries = 2000) cond msg =
  let rec go n =
    if cond () then ()
    else if n <= 0 then Alcotest.fail msg
    else begin
      Unix.sleepf 0.005;
      go (n - 1)
    end
  in
  go tries

let read_whole path = In_channel.with_open_bin path In_channel.input_all

let z0975 = Cac.Source_class.of_name_exn "z0.975"

let admit_or_fail engine ~link =
  match Cac.Engine.admit engine ~link ~cls:z0975 with
  | Cac.Engine.Admitted conn -> conn
  | Cac.Engine.Rejected _ -> Alcotest.fail "admission unexpectedly rejected"

(* {2 CRC32} *)

let test_crc32 () =
  (* The standard IEEE 802.3 check vector. *)
  check_int "crc32(\"123456789\")" 0xCBF43926 (Persist.Crc32.digest "123456789");
  check_int "chained digest"
    (Persist.Crc32.digest "123456789")
    (Persist.Crc32.digest ~crc:(Persist.Crc32.digest "12345") "6789");
  check_int "empty string" 0 (Persist.Crc32.digest "")

(* {2 WAL framing, torn tails, interior corruption} *)

let test_wal_round_trip () =
  with_tmp_dir @@ fun dir ->
  let wal = Persist.Wal.create ~dir ~policy:Persist.Wal.Always ~seq:0 () in
  let payloads = List.init 20 (fun i -> Printf.sprintf "record-%d" i) in
  List.iter
    (fun p -> check_true "append accepted" (Persist.Wal.append wal p))
    payloads;
  Persist.Wal.barrier wal;
  let stats = Persist.Wal.stats wal in
  check_int "all records appended" 20 stats.Persist.Wal.appended;
  check_int "always: synced = appended after barrier" 20
    stats.Persist.Wal.synced;
  Persist.Wal.close wal;
  match Persist.Wal.segments dir with
  | [ (0, path) ] -> (
      match Persist.Wal.read_file path with
      | Ok (records, Persist.Wal.Tail_clean) ->
          Alcotest.(check (list string)) "payloads round trip" payloads records
      | Ok (_, Persist.Wal.Tail_torn off) ->
          Alcotest.failf "unexpected torn tail at %d" off
      | Error { Persist.Wal.offset; reason } ->
          Alcotest.failf "corrupt at %d: %s" offset reason)
  | segs -> Alcotest.failf "expected one segment, found %d" (List.length segs)

let write_segment dir seq chunks =
  let path = Filename.concat dir (Persist.Wal.segment_name seq) in
  Out_channel.with_open_bin path (fun oc ->
      List.iter (Out_channel.output_string oc) chunks);
  path

let test_torn_tail_truncates () =
  with_tmp_dir @@ fun dir ->
  let fa = Persist.Wal.frame "alpha" and fb = Persist.Wal.frame "beta" in
  let torn = Persist.Wal.frame "gamma" in
  let path =
    write_segment dir 0
      [ fa; fb; String.sub torn 0 (String.length torn - 3) ]
  in
  (match Persist.Wal.read_file path with
  | Ok (records, Persist.Wal.Tail_torn off) ->
      Alcotest.(check (list string))
        "complete records survive" [ "alpha"; "beta" ] records;
      check_int "torn offset points at the partial frame"
        (String.length fa + String.length fb)
        off
  | Ok (_, Persist.Wal.Tail_clean) -> Alcotest.fail "missed the torn tail"
  | Error { Persist.Wal.offset; reason } ->
      Alcotest.failf "torn tail misread as corruption at %d: %s" offset reason);
  (* A sub-header residue (< 8 bytes) is torn too. *)
  let path = write_segment dir 1 [ fa; "\x05\x00\x00" ] in
  match Persist.Wal.read_file path with
  | Ok ([ "alpha" ], Persist.Wal.Tail_torn off) ->
      check_int "short header residue" (String.length fa) off
  | _ -> Alcotest.fail "short header residue must read as a torn tail"

let flip_byte path pos =
  let s = Bytes.of_string (read_whole path) in
  Bytes.set s pos (Char.chr (Char.code (Bytes.get s pos) lxor 0x41));
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_bytes oc s)

let test_interior_corruption_fails_closed () =
  with_tmp_dir @@ fun dir ->
  (* Real op frames, so the recovery path sees the failure too. *)
  let ops =
    [
      Persist.Codec.encode_op
        (Cac.Engine.Op_add_link
           {
             id = "oc3";
             capacity = 16140.0;
             buffer = 1000.0;
             target_clr = 1e-6;
           });
      Persist.Codec.encode_op
        (Cac.Engine.Op_admit { conn = 1; link = "oc3"; cls = "z0.975" });
      Persist.Codec.encode_op (Cac.Engine.Op_release 1);
    ]
  in
  let frames = List.map Persist.Wal.frame ops in
  let path = write_segment dir 0 frames in
  let second_off = String.length (List.nth frames 0) in
  (* Flip one payload byte inside the complete second record. *)
  flip_byte path (second_off + 8 + 2);
  (match Persist.Wal.read_file path with
  | Error { Persist.Wal.offset; reason } ->
      check_int "corruption names the record's offset" second_off offset;
      check_true "reason names the crc" (contains_substring reason "crc")
  | Ok _ -> Alcotest.fail "interior corruption must not parse");
  (match Persist.Recovery.verify ~dir with
  | Error e ->
      check_true "recovery fails closed naming the offset"
        (contains_substring e
           (Printf.sprintf "corrupt record at offset %d" second_off))
  | Ok _ -> Alcotest.fail "recovery must fail closed on interior corruption");
  (* An implausible length field is interior corruption as well. *)
  let path2 = write_segment dir 1 frames in
  let s = Bytes.of_string (read_whole path2) in
  Bytes.set_int32_le s second_off 0x7fffffffl;
  Out_channel.with_open_bin path2 (fun oc -> Out_channel.output_bytes oc s);
  match Persist.Wal.read_file path2 with
  | Error { Persist.Wal.offset; reason } ->
      check_int "length corruption names the offset" second_off offset;
      check_true "reason names the length"
        (contains_substring reason "length")
  | Ok _ -> Alcotest.fail "implausible length must not parse"

(* {2 Codec} *)

let test_codec_round_trip () =
  List.iter
    (fun op ->
      match Persist.Codec.decode_op (Persist.Codec.encode_op op) with
      | Ok op' -> check_true "op round trips" (op = op')
      | Error e -> Alcotest.failf "decode failed: %s" e)
    [
      Cac.Engine.Op_add_link
        { id = "oc3"; capacity = 16140.0; buffer = 807.0; target_clr = 1e-6 };
      Cac.Engine.Op_remove_link "oc3";
      Cac.Engine.Op_admit { conn = 42; link = "oc3"; cls = "dar1" };
      Cac.Engine.Op_release 42;
    ];
  (match Persist.Codec.decode_op "{\"op\":\"warp\"}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown op accepted");
  match Persist.Codec.decode_op "not json at all" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted"

(* {2 Snapshots} *)

let test_snapshot_round_trip () =
  with_tmp_dir @@ fun dir ->
  let engine = Cac.Engine.create () in
  ignore
    (Cac.Engine.add_link_msec engine ~id:"oc3" ~capacity:16140.0
       ~buffer_msec:20.0 ~target_clr:1e-6);
  let c1 = admit_or_fail engine ~link:"oc3" in
  let _c2 = admit_or_fail engine ~link:"oc3" in
  Cac.Engine.release engine ~conn:c1;
  let st = Cac.Engine.export engine in
  Persist.Snapshot.write ~dir ~covers:3 st;
  match Persist.Snapshot.latest ~dir with
  | None -> Alcotest.fail "snapshot not found"
  | Some (covers, path) -> (
      check_int "keyed by covered segment" 3 covers;
      match Persist.Snapshot.load path with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok (covers', st') ->
          check_int "covers round trips" 3 covers';
          let fresh = Cac.Engine.create () in
          Cac.Engine.restore fresh st';
          check_str "restore re-exports byte-identically"
            (Persist.Snapshot.encode ~covers:3 st)
            (Persist.Snapshot.encode ~covers:3 (Cac.Engine.export fresh));
          check_int "connections restored" 1
            (Cac.Engine.active_connections fresh))

let test_snapshot_crash_safety () =
  with_tmp_dir @@ fun dir ->
  let engine = Cac.Engine.create () in
  ignore
    (Cac.Engine.add_link_msec engine ~id:"oc3" ~capacity:16140.0
       ~buffer_msec:20.0 ~target_clr:1e-6);
  Persist.Snapshot.write ~dir ~covers:1 (Cac.Engine.export engine);
  (* A torn snapshot write abandons the temp file and raises; the
     previous snapshot must stay authoritative. *)
  (match Resilience.Fault.parse "persist.snapshot.write=torn-write:1" with
  | Ok rules -> Resilience.Fault.configure ~seed:3 rules
  | Error e -> Alcotest.failf "fault spec: %s" e);
  Fun.protect ~finally:Resilience.Fault.clear (fun () ->
      ignore (admit_or_fail engine ~link:"oc3");
      match Persist.Snapshot.write ~dir ~covers:2 (Cac.Engine.export engine) with
      | () -> Alcotest.fail "torn snapshot write must raise"
      | exception Failure _ -> ());
  (match Persist.Snapshot.latest ~dir with
  | Some (1, path) -> (
      match Persist.Snapshot.load path with
      | Ok (1, _) -> ()
      | _ -> Alcotest.fail "previous snapshot no longer loads")
  | _ -> Alcotest.fail "previous snapshot must survive a torn checkpoint");
  (* A truncated (short-write) snapshot is renamed into place — the
     corrupt-newest shape — and must fail closed on load. *)
  (match Resilience.Fault.parse "persist.snapshot.write=short-write:1" with
  | Ok rules -> Resilience.Fault.configure ~seed:3 rules
  | Error e -> Alcotest.failf "fault spec: %s" e);
  Fun.protect ~finally:Resilience.Fault.clear (fun () ->
      Persist.Snapshot.write ~dir ~covers:2 (Cac.Engine.export engine));
  match Persist.Recovery.verify ~dir with
  | Error e -> check_true "names the snapshot" (contains_substring e "snapshot")
  | Ok _ -> Alcotest.fail "truncated snapshot must fail recovery closed"

(* {2 Store + recovery} *)

let journaled_engine dir ~policy =
  let engine = Cac.Engine.create () in
  let store =
    Persist.Store.open_ ~dir ~policy ~snapshot_every:0 ~next_seq:0
  in
  Cac.Engine.set_journal engine (Some (Persist.Store.journal store));
  (engine, store)

let test_recovery_determinism () =
  with_tmp_dir @@ fun dir ->
  let engine, store = journaled_engine dir ~policy:Persist.Wal.Always in
  ignore
    (Cac.Engine.add_link_msec engine ~id:"oc3" ~capacity:16140.0
       ~buffer_msec:20.0 ~target_clr:1e-6);
  let conns = List.init 5 (fun _ -> admit_or_fail engine ~link:"oc3") in
  Cac.Engine.release engine ~conn:(List.hd conns);
  Persist.Store.barrier store;
  Persist.Store.close store;
  let recover () =
    let e = Cac.Engine.create () in
    match Persist.Recovery.recover ~dir e with
    | Ok r -> (e, r)
    | Error e -> Alcotest.failf "recovery failed: %s" e
  in
  let e1, r1 = recover () in
  let e2, _ = recover () in
  check_int "1 link + 5 admits + 1 release applied" 7
    r1.Persist.Recovery.r_applied;
  check_int "nothing skipped" 0 r1.Persist.Recovery.r_skipped;
  check_int "four live connections" 4 (Cac.Engine.active_connections e1);
  check_str "replay is byte-deterministic"
    (Persist.Snapshot.encode ~covers:0 (Cac.Engine.export e1))
    (Persist.Snapshot.encode ~covers:0 (Cac.Engine.export e2));
  (* New admissions must not collide with recovered connection ids. *)
  let fresh_conn = admit_or_fail e1 ~link:"oc3" in
  check_true "id allocator advanced past the journal"
    (List.for_all (fun c -> fresh_conn > c) conns)

let test_recovery_skips_inconsistent_ops () =
  with_tmp_dir @@ fun dir ->
  let ops =
    [
      Cac.Engine.Op_add_link
        { id = "oc3"; capacity = 16140.0; buffer = 807.0; target_clr = 1e-6 };
      Cac.Engine.Op_admit { conn = 1; link = "oc3"; cls = "z0.975" };
      Cac.Engine.Op_admit { conn = 1; link = "oc3"; cls = "z0.975" };
      Cac.Engine.Op_release 99;
    ]
  in
  ignore
    (write_segment dir 0
       (List.map (fun op -> Persist.Wal.frame (Persist.Codec.encode_op op)) ops));
  match Persist.Recovery.verify ~dir with
  | Error e -> Alcotest.failf "idempotent replay must not fail: %s" e
  | Ok r ->
      check_int "consistent ops applied" 2 r.Persist.Recovery.r_applied;
      check_int "duplicate admit and unknown release skipped" 2
        r.Persist.Recovery.r_skipped;
      check_int "one connection" 1 r.Persist.Recovery.r_conns

let test_store_snapshot_compacts () =
  with_tmp_dir @@ fun dir ->
  let engine = Cac.Engine.create () in
  let store =
    Persist.Store.open_ ~dir ~policy:Persist.Wal.Always ~snapshot_every:3
      ~next_seq:0
  in
  Cac.Engine.set_journal engine (Some (Persist.Store.journal store));
  ignore
    (Cac.Engine.add_link_msec engine ~id:"oc3" ~capacity:16140.0
       ~buffer_msec:20.0 ~target_clr:1e-6);
  ignore (admit_or_fail engine ~link:"oc3");
  ignore (admit_or_fail engine ~link:"oc3");
  Persist.Store.barrier store;
  check_true "3 journaled ops make a snapshot due"
    (Persist.Store.snapshot_due store);
  (match
     Persist.Store.maybe_snapshot store ~with_engine:(fun f -> f engine)
   with
  | Some (Ok covers) -> check_int "covers the first segment" 0 covers
  | Some (Error e) -> Alcotest.failf "snapshot failed: %s" e
  | None -> Alcotest.fail "due snapshot did not run");
  check_true "counter reset" (not (Persist.Store.snapshot_due store));
  ignore (admit_or_fail engine ~link:"oc3");
  Persist.Store.barrier store;
  Persist.Store.close store;
  (* The snapshot subsumed segment 0: only newer segments remain. *)
  check_true "covered segment compacted away"
    (List.for_all (fun (seq, _) -> seq > 0) (Persist.Wal.segments dir));
  let e = Cac.Engine.create () in
  match Persist.Recovery.recover ~dir e with
  | Error e -> Alcotest.failf "recovery failed: %s" e
  | Ok r ->
      check_true "recovery starts from the snapshot"
        (r.Persist.Recovery.r_snapshot <> None);
      check_int "snapshot + tail replay" 3 (Cac.Engine.active_connections e)

(* {2 Fsync policies: the declared loss windows} *)

let test_fsync_policy_windows () =
  (* always: nothing acked is unsynced after a barrier (window 0). *)
  with_tmp_dir (fun dir ->
      let wal = Persist.Wal.create ~dir ~policy:Persist.Wal.Always ~seq:0 () in
      for i = 1 to 13 do
        ignore (Persist.Wal.append wal (Printf.sprintf "r%d" i))
      done;
      Persist.Wal.barrier wal;
      let s = Persist.Wal.stats wal in
      check_int "always: appended - synced = 0" 0
        (s.Persist.Wal.appended - s.Persist.Wal.synced);
      Persist.Wal.close wal);
  (* every:n — written (page cache, survives SIGKILL) covers every
     ack; the fsync lag stays under n. *)
  with_tmp_dir (fun dir ->
      let n = 4 in
      let wal =
        Persist.Wal.create ~dir ~policy:(Persist.Wal.Every n) ~seq:0 ()
      in
      for i = 1 to 13 do
        ignore (Persist.Wal.append wal (Printf.sprintf "r%d" i))
      done;
      Persist.Wal.barrier wal;
      let s = Persist.Wal.stats wal in
      check_int "every:n barrier waits for written" s.Persist.Wal.appended
        s.Persist.Wal.written;
      check_true "every:n fsync lag < n"
        (s.Persist.Wal.written - s.Persist.Wal.synced < n);
      Persist.Wal.close wal;
      let s = Persist.Wal.stats wal in
      check_int "clean close leaves nothing volatile" s.Persist.Wal.appended
        s.Persist.Wal.synced);
  (* never: the barrier is a no-op (returns with records still
     unwritten is legal), but a clean close still lands everything. *)
  with_tmp_dir (fun dir ->
      let wal = Persist.Wal.create ~dir ~policy:Persist.Wal.Never ~seq:0 () in
      for i = 1 to 13 do
        ignore (Persist.Wal.append wal (Printf.sprintf "r%d" i))
      done;
      Persist.Wal.barrier wal;
      Persist.Wal.close wal;
      match Persist.Wal.segments dir with
      | [ (_, path) ] -> (
          match Persist.Wal.read_file path with
          | Ok (records, Persist.Wal.Tail_clean) ->
              check_int "all records on disk after close" 13
                (List.length records)
          | _ -> Alcotest.fail "close left a dirty segment")
      | _ -> Alcotest.fail "expected one segment")

let test_policy_of_string () =
  check_true "always"
    (Persist.Wal.policy_of_string "always" = Ok Persist.Wal.Always);
  check_true "never"
    (Persist.Wal.policy_of_string "never" = Ok Persist.Wal.Never);
  check_true "every:16"
    (Persist.Wal.policy_of_string "every:16" = Ok (Persist.Wal.Every 16));
  List.iter
    (fun s ->
      match Persist.Wal.policy_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" s)
    [ "every:0"; "every:x"; "sometimes"; "" ]

(* {2 Fault injection on the write path} *)

let test_torn_write_fault_severs_segment () =
  with_tmp_dir @@ fun dir ->
  (match Resilience.Fault.parse "persist.wal.append=torn-write:1" with
  | Ok rules -> Resilience.Fault.configure ~seed:11 rules
  | Error e -> Alcotest.failf "fault spec: %s" e);
  let engine, store =
    Fun.protect ~finally:ignore (fun () ->
        journaled_engine dir ~policy:Persist.Wal.Always)
  in
  Fun.protect ~finally:Resilience.Fault.clear (fun () ->
      ignore
        (Cac.Engine.add_link_msec engine ~id:"oc3" ~capacity:16140.0
           ~buffer_msec:20.0 ~target_clr:1e-6);
      ignore (admit_or_fail engine ~link:"oc3");
      ignore (admit_or_fail engine ~link:"oc3");
      Persist.Store.barrier store;
      Persist.Store.close store);
  (* Every record was torn mid-write: the WAL severed the segment and
     re-appended cleanly each time, leaving real torn tails behind. *)
  let e = Cac.Engine.create () in
  match Persist.Recovery.recover ~dir e with
  | Error err -> Alcotest.failf "torn-write residue must recover: %s" err
  | Ok r ->
      check_true "torn tails digested" (r.Persist.Recovery.r_torn >= 1);
      check_int "no op lost to the tearing" 3 r.Persist.Recovery.r_applied;
      check_int "both connections recovered" 2
        (Cac.Engine.active_connections e)

let test_short_write_fault_is_interior_corruption () =
  with_tmp_dir @@ fun dir ->
  let wal = Persist.Wal.create ~dir ~policy:Persist.Wal.Always ~seq:0 () in
  (match Resilience.Fault.parse "persist.wal.append=short-write:1" with
  | Ok rules -> Resilience.Fault.configure ~seed:11 rules
  | Error e -> Alcotest.failf "fault spec: %s" e);
  Fun.protect ~finally:Resilience.Fault.clear (fun () ->
      ignore (Persist.Wal.append wal "first-record-goes-missing");
      Persist.Wal.barrier wal);
  (* The short write went unnoticed (that is the failure being
     modelled); a later healthy record lands after the partial frame. *)
  ignore (Persist.Wal.append wal "second-record");
  Persist.Wal.barrier wal;
  Persist.Wal.close wal;
  match Persist.Wal.segments dir with
  | [ (_, path) ] -> (
      match Persist.Wal.read_file path with
      | Error { Persist.Wal.offset = 0; _ } -> ()
      | Error { Persist.Wal.offset; _ } ->
          Alcotest.failf "corruption at %d, expected offset 0" offset
      | Ok _ ->
          Alcotest.fail "a buried partial frame must fail closed, not parse")
  | _ -> Alcotest.fail "expected one segment"

let test_fsync_fault_keeps_barrier_honest () =
  with_tmp_dir @@ fun dir ->
  (match Resilience.Fault.parse "persist.wal.fsync=raise:1" with
  | Ok rules -> Resilience.Fault.configure ~seed:11 rules
  | Error e -> Alcotest.failf "fault spec: %s" e);
  Fun.protect ~finally:Resilience.Fault.clear (fun () ->
      let wal = Persist.Wal.create ~dir ~policy:Persist.Wal.Always ~seq:0 () in
      ignore (Persist.Wal.append wal "must-still-sync");
      (* The injected fsync failure is counted and retried for real —
         the barrier must neither hang nor ack volatile data. *)
      Persist.Wal.barrier wal;
      let s = Persist.Wal.stats wal in
      check_int "record synced despite injected fsync failure" 1
        s.Persist.Wal.synced;
      Persist.Wal.close wal);
  check_true "fsync errors counted"
    (Obs.Registry.counter_value "persist.wal.fsync_errors" >= 1)

(* {2 The API recovery gate} *)

let req_for ?(body = "") meth path =
  {
    Srv.Http.meth;
    target = path;
    path;
    query = [];
    version = Srv.Http.Http_1_1;
    headers = [];
    body;
  }

let test_api_recovering_gate () =
  let engine = Cac.Engine.create () in
  ignore
    (Cac.Engine.add_link_msec engine ~id:"oc3" ~capacity:16140.0
       ~buffer_msec:20.0 ~target_clr:1e-6);
  let api = Srv.Cac_api.create ~recovering:true engine in
  let router = Srv.Cac_api.router api in
  let decide () =
    let _, resp =
      Srv.Router.dispatch router
        (req_for ~body:{|{"link":"oc3","class":"z0.975"}|} Srv.Http.POST
           "/v1/decide")
    in
    Srv.Http.status resp
  in
  let healthz () =
    let _, resp = Srv.Router.dispatch router (req_for Srv.Http.GET "/healthz") in
    Srv.Http.to_string ~keep_alive:false resp
  in
  check_int "decide answers 503 while recovering" 503 (decide ());
  check_true "healthz reports recovering"
    (contains_substring (healthz ()) {|"state":"recovering"|});
  check_true "not ready" (not (Srv.Cac_api.ready api));
  Srv.Cac_api.set_ready api;
  check_int "decide serves once ready" 200 (decide ());
  check_true "healthz reports ready"
    (contains_substring (healthz ()) {|"state":"ready"|})

(* {2 The admit-racing-drain regression}

   An admit in flight while the pool drains must either be fully
   journaled (its ack implies durability) or refused — never acked and
   lost.  The drain snapshot runs strictly after [Pool.serve] returns,
   i.e. after every worker domain has joined. *)

let read_response reader =
  let dl = Srv.Io.deadline_in 10.0 in
  let status =
    match Srv.Io.read_line reader ~max:8192 dl with
    | None -> None
    | Some line -> (
        match String.split_on_char ' ' line with
        | _ :: code :: _ -> int_of_string_opt code
        | _ -> None)
  in
  match status with
  | None -> None
  | Some status ->
      let rec headers len =
        match Srv.Io.read_line reader ~max:8192 dl with
        | None -> None
        | Some "" -> Some len
        | Some line ->
            let lower = String.lowercase_ascii line in
            if String.length lower > 15 && String.sub lower 0 15 = "content-length:"
            then
              headers
                (String.trim
                   (String.sub lower 15 (String.length lower - 15))
                |> int_of_string)
            else headers len
      in
      (match headers 0 with
      | None -> None
      | Some len -> Some (status, Srv.Io.read_exact reader len dl))

let conn_of_body body =
  match String.index_opt body ':' with
  | _ when not (contains_substring body {|"admitted":true|}) -> None
  | _ ->
      let marker = {|"conn":|} in
      let rec find i =
        if i + String.length marker > String.length body then None
        else if String.sub body i (String.length marker) = marker then
          let j = ref (i + String.length marker) in
          let start = !j in
          while
            !j < String.length body
            && body.[!j] >= '0'
            && body.[!j] <= '9'
          do
            incr j
          done;
          int_of_string_opt (String.sub body start (!j - start))
        else find (i + 1)
      in
      find 0

let admit_request =
  let body = {|{"link":"big","class":"z0.975"}|} in
  Printf.sprintf
    "POST /v1/admit HTTP/1.1\r\ncontent-length: %d\r\n\r\n%s"
    (String.length body) body

let test_admit_racing_drain () =
  with_tmp_dir @@ fun dir ->
  let engine = Cac.Engine.create () in
  let api = Srv.Cac_api.create engine in
  let store =
    Persist.Store.open_ ~dir ~policy:(Persist.Wal.Every 8) ~snapshot_every:0
      ~next_seq:0
  in
  Cac.Engine.set_journal engine (Some (Persist.Store.journal store));
  ignore
    (Cac.Engine.add_link_msec engine ~id:"big" ~capacity:1_000_000.0
       ~buffer_msec:50.0 ~target_clr:1e-6);
  Srv.Cac_api.set_barrier api (fun () -> Persist.Store.barrier store);
  let pool =
    Srv.Pool.create
      ~config:{ Srv.Pool.default_config with domains = 2 }
      (Srv.Cac_api.router api)
  in
  let listen_fd = Srv.Pool.listen ~host:"127.0.0.1" ~port:0 () in
  let port = Srv.Pool.bound_port listen_fd in
  let server = Domain.spawn (fun () -> Srv.Pool.serve pool listen_fd) in
  spin (fun () -> Srv.Pool.accepting pool) "accept loop never came up";
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let reader = Srv.Io.reader fd in
  let acked = ref [] in
  let fire () =
    match
      Srv.Io.write_string fd admit_request;
      read_response reader
    with
    | Some (200, body) -> (
        match conn_of_body body with
        | Some conn -> acked := conn :: !acked
        | None -> ())
    | Some _ | None -> ()
    | exception (Unix.Unix_error _ | Sys_error _) -> ()
  in
  for _ = 1 to 10 do
    fire ()
  done;
  (* Stop the pool and keep firing: these admits race the drain. *)
  Srv.Pool.stop pool;
  for _ = 1 to 10 do
    fire ()
  done;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Domain.join server;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (* Workers have joined: cut the drain snapshot, then recover. *)
  (match Persist.Store.snapshot store ~with_engine:(fun f -> f engine) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "drain snapshot failed: %s" e);
  Persist.Store.close store;
  check_true "the race produced acked admits" (List.length !acked >= 10);
  let recovered = Cac.Engine.create () in
  (match Persist.Recovery.recover ~dir recovered with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "recovery failed: %s" e);
  let live = Cac.Engine.export recovered in
  let recovered_ids =
    List.map (fun c -> c.Cac.Engine.c_conn) live.Cac.Engine.s_conns
  in
  List.iter
    (fun conn ->
      check_true
        (Printf.sprintf "acked conn %d survived the drain race" conn)
        (List.mem conn recovered_ids))
    !acked

(* {2 The kill -9 crash harness}

   Boot the real daemon, admit over real HTTP, SIGKILL it, recover the
   state directory in-process and check the fsync policy's loss
   window: with [always], every acked connection must be recovered. *)

let wait_for_pattern ?(tries = 2000) path pattern =
  spin ~tries
    (fun () ->
      Sys.file_exists path && contains_substring (read_whole path) pattern)
    (Printf.sprintf "%S never appeared in %s" pattern path)

let bound_port_of_log path =
  let log = read_whole path in
  let marker = "listening on 127.0.0.1:" in
  let rec find i =
    if i + String.length marker > String.length log then
      Alcotest.failf "no port line in %s" path
    else if String.sub log i (String.length marker) = marker then begin
      let j = ref (i + String.length marker) in
      let start = !j in
      while
        !j < String.length log && log.[!j] >= '0' && log.[!j] <= '9'
      do
        incr j
      done;
      int_of_string (String.sub log start (!j - start))
    end
    else find (i + 1)
  in
  find 0

let spawn_daemon args =
  let log = Filename.temp_file "cts_crash" ".log" in
  let fd = Unix.openfile log [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 in
  let pid =
    Unix.create_process (Lazy.force exe)
      (Array.of_list (Lazy.force exe :: args))
      Unix.stdin fd fd
  in
  Unix.close fd;
  (pid, log)

let crash_cycle ~dir ~extra_args ~admits =
  let pid, log =
    spawn_daemon
      ([
         "serve"; "--port"; "0"; "--domains"; "2"; "--state-dir"; dir;
         "--fsync-policy"; "always"; "--snapshot-every"; "25"; "--link";
         "big=1000000:50:1e-6";
       ]
      @ extra_args)
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
      try Sys.remove log with Sys_error _ -> ())
    (fun () ->
      wait_for_pattern log "listening on";
      let port = bound_port_of_log log in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let reader = Srv.Io.reader fd in
      let acked = ref [] in
      for _ = 1 to admits do
        Srv.Io.write_string fd admit_request;
        match read_response reader with
        | Some (200, body) -> (
            match conn_of_body body with
            | Some conn -> acked := conn :: !acked
            | None -> ())
        | Some (st, body) ->
            Alcotest.failf "admit answered %d: %s" st body
        | None -> Alcotest.fail "daemon hung up mid-admit"
      done;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (* The whole point: no drain, no snapshot — SIGKILL. *)
      Unix.kill pid Sys.sigkill;
      ignore (Unix.waitpid [] pid);
      !acked)

let assert_recovers ~dir acked =
  let engine = Cac.Engine.create () in
  match Persist.Recovery.recover ~dir engine with
  | Error e -> Alcotest.failf "post-crash recovery failed: %s" e
  | Ok _ ->
      let live = Cac.Engine.export engine in
      let ids =
        List.map (fun c -> c.Cac.Engine.c_conn) live.Cac.Engine.s_conns
      in
      check_int "every acked admit recovered (fsync window 0)"
        (List.length acked)
        (List.length (List.filter (fun c -> List.mem c ids) acked));
      check_true "nothing invented"
        (List.length ids <= List.length acked + 1)

let test_crash_recovery_harness () =
  with_tmp_dir @@ fun dir ->
  let acked = crash_cycle ~dir ~extra_args:[] ~admits:60 in
  check_int "all admits acked" 60 (List.length acked);
  assert_recovers ~dir acked;
  (* Crash again on the recovered directory: recovery must stack. *)
  let acked2 = crash_cycle ~dir ~extra_args:[] ~admits:40 in
  let engine = Cac.Engine.create () in
  (match Persist.Recovery.recover ~dir engine with
  | Error e -> Alcotest.failf "second recovery failed: %s" e
  | Ok _ ->
      check_int "both generations recovered"
        (List.length acked + List.length acked2)
        (Cac.Engine.active_connections engine));
  check_true "ids never collide across crashes"
    (List.for_all (fun c -> not (List.mem c acked)) acked2)

let test_crash_recovery_under_faults () =
  with_tmp_dir @@ fun dir ->
  (* Torn writes on 10% of journal appends: the WAL severs and
     re-appends, so the ack guarantee must hold regardless. *)
  let acked =
    crash_cycle ~dir
      ~extra_args:
        [ "--fault-spec"; "persist.wal.append=torn-write:0.1"; "--fault-seed";
          "42" ]
      ~admits:50
  in
  check_int "all admits acked under faults" 50 (List.length acked);
  assert_recovers ~dir acked

(* {2 The verify-state CLI} *)

let run_cli args =
  let out = Filename.temp_file "cts_cli" ".out" in
  let fd = Unix.openfile out [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 in
  let pid =
    Unix.create_process (Lazy.force exe)
      (Array.of_list (Lazy.force exe :: args))
      Unix.stdin fd fd
  in
  Unix.close fd;
  let _, status = Unix.waitpid [] pid in
  let text = read_whole out in
  (try Sys.remove out with Sys_error _ -> ());
  match status with
  | Unix.WEXITED code -> (code, text)
  | Unix.WSIGNALED _ | Unix.WSTOPPED _ ->
      Alcotest.failf "cli killed by signal: %s" text

(* Two stores on one directory would compact each other's live
   segments (each journaling durably into an unlinked inode), so
   [Store.open_] holds an exclusive kernel lock on DIR/LOCK.  lockf
   locks are per-process (and [Unix.fork] is off-limits once domains
   exist), so the exclusion is probed through the real CLI: a second
   daemon on the locked dir must refuse to boot.  The probe polls with
   WNOHANG instead of a blocking wait — if the lock ever regresses the
   probed daemon *serves*, and the failure must be a named assert, not
   a hung suite.  POSIX trap the test must respect: the owner process
   may not reopen+close LOCK itself (fcntl record locks drop when any
   fd on the file is closed by the owner), so the pid-content check
   waits until after [Store.close]. *)
let test_store_lock_single_owner () =
  with_tmp_dir @@ fun dir ->
  let store =
    Persist.Store.open_ ~dir ~policy:Persist.Wal.Never ~snapshot_every:0
      ~next_seq:0
  in
  let log = Filename.temp_file "cts_lock" ".out" in
  let fd = Unix.openfile log [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 in
  let pid =
    Unix.create_process (Lazy.force exe)
      [|
        Lazy.force exe; "serve"; "--port"; "0"; "--state-dir"; dir;
        "--link"; "big=1000000:50:1e-6";
      |]
      Unix.stdin fd fd
  in
  Unix.close fd;
  let rec wait_exit tries =
    if tries = 0 then begin
      Unix.kill pid Sys.sigkill;
      ignore (Unix.waitpid [] pid);
      Alcotest.fail "second opener is serving: the state-dir lock failed"
    end
    else
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ ->
          Unix.sleepf 0.01;
          wait_exit (tries - 1)
      | _, Unix.WEXITED code -> code
      | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) ->
          Alcotest.fail "lock probe died on a signal"
  in
  let code = wait_exit 2000 in
  let out = read_whole log in
  (try Sys.remove log with Sys_error _ -> ());
  check_true "second opener exits non-zero" (code <> 0);
  check_true "second opener names the lock"
    (contains_substring out "locked by another process");
  Persist.Store.close store;
  check_true "LOCK recorded the owning pid"
    (contains_substring
       (read_whole (Filename.concat dir "LOCK"))
       (string_of_int (Unix.getpid ())));
  (* Close released the lock: the directory is reopenable. *)
  let again =
    Persist.Store.open_ ~dir ~policy:Persist.Wal.Never ~snapshot_every:0
      ~next_seq:1
  in
  Persist.Store.close again

let test_verify_state_cli () =
  with_tmp_dir @@ fun dir ->
  let engine, store = journaled_engine dir ~policy:Persist.Wal.Always in
  ignore
    (Cac.Engine.add_link_msec engine ~id:"oc3" ~capacity:16140.0
       ~buffer_msec:20.0 ~target_clr:1e-6);
  ignore (admit_or_fail engine ~link:"oc3");
  ignore (admit_or_fail engine ~link:"oc3");
  Persist.Store.barrier store;
  Persist.Store.close store;
  let code, out = run_cli [ "cac"; "verify-state"; dir ] in
  check_int "clean state verifies" 0 code;
  check_true "reports the connections" (contains_substring out "2 connections");
  let code, out = run_cli [ "cac"; "verify-state"; "--json"; dir ] in
  check_int "json mode verifies" 0 code;
  check_true "json report" (contains_substring out {|"connections":2|});
  (* Interior corruption must flip the exit code and name the offset. *)
  (match Persist.Wal.segments dir with
  | (_, path) :: _ -> flip_byte path 10
  | [] -> Alcotest.fail "no segment to corrupt");
  let code, out = run_cli [ "cac"; "verify-state"; dir ] in
  check_true "corruption fails the verify" (code <> 0);
  check_true "error names the offset"
    (contains_substring out "corrupt record at offset")

(* {2 SIGHUP: sink rotation on the live daemon} *)

let test_sighup_reopens_access_log () =
  with_tmp_dir @@ fun dir ->
  let access = Filename.concat dir "access.jsonl" in
  let pid, log =
    spawn_daemon
      [
        "serve"; "--port"; "0"; "--domains"; "1"; "--link";
        "oc3=16140:20:1e-6"; "--access-log"; access;
      ]
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
      try Sys.remove log with Sys_error _ -> ())
    (fun () ->
      wait_for_pattern log "listening on";
      let port = bound_port_of_log log in
      let get () =
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        Srv.Io.write_string fd "GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n";
        ignore (read_response (Srv.Io.reader fd));
        try Unix.close fd with Unix.Unix_error _ -> ()
      in
      get ();
      wait_for_pattern access "/healthz";
      (* Rotate the way logrotate does: rename, signal, wait for the
         reopened file to collect the next request. *)
      let rotated = access ^ ".1" in
      Sys.rename access rotated;
      Unix.kill pid Sys.sighup;
      wait_for_pattern log "reopening log sinks";
      spin
        (fun () -> Sys.file_exists access)
        "SIGHUP never reopened the access log";
      get ();
      wait_for_pattern access "/healthz";
      check_true "old lines stayed in the rotated file"
        (contains_substring (read_whole rotated) "/healthz"))

let suite =
  [
    case "crc32 check vector and chaining" test_crc32;
    case "wal append/read round trip" test_wal_round_trip;
    case "torn tail truncates with a warning" test_torn_tail_truncates;
    case "interior corruption fails closed" test_interior_corruption_fails_closed;
    case "op codec round trip" test_codec_round_trip;
    case "snapshot export/restore round trip" test_snapshot_round_trip;
    case "snapshot crash safety under faults" test_snapshot_crash_safety;
    case "recovery is byte-deterministic" test_recovery_determinism;
    case "recovery skips inconsistent ops" test_recovery_skips_inconsistent_ops;
    case "store snapshots compact the journal" test_store_snapshot_compacts;
    case "fsync policies bound the loss window" test_fsync_policy_windows;
    case "fsync policy grammar" test_policy_of_string;
    case "torn-write fault severs the segment" test_torn_write_fault_severs_segment;
    case "short-write fault is interior corruption"
      test_short_write_fault_is_interior_corruption;
    case "injected fsync failure retries for real"
      test_fsync_fault_keeps_barrier_honest;
    case "api answers 503 while recovering" test_api_recovering_gate;
    slow_case "admit racing drain is never lost" test_admit_racing_drain;
    slow_case "kill -9 crash recovery harness" test_crash_recovery_harness;
    slow_case "crash recovery under torn-write faults"
      test_crash_recovery_under_faults;
    slow_case "verify-state CLI exit codes" test_verify_state_cli;
    slow_case "state dir is single-owner (kernel lock)"
      test_store_lock_single_owner;
    slow_case "SIGHUP reopens the access log" test_sighup_reopens_access_log;
  ]
