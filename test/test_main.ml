let () =
  Alcotest.run "cts"
    [
      ("rng", Test_rng.suite);
      ("special", Test_special.suite);
      ("dist", Test_dist.suite);
      ("optimize", Test_optimize.suite);
      ("quadrature", Test_quadrature.suite);
      ("fft", Test_fft.suite);
      ("float_array", Test_float_array.suite);
      ("stats", Test_stats.suite);
      ("hurst", Test_hurst.suite);
      ("dar", Test_dar.suite);
      ("onoff", Test_onoff.suite);
      ("fbndp", Test_fbndp.suite);
      ("fgn", Test_fgn.suite);
      ("farima+mg", Test_farima_mg.suite);
      ("process", Test_process.suite);
      ("queueing", Test_queueing.suite);
      ("core", Test_core.suite);
      ("models", Test_models.suite);
      ("trace", Test_trace.suite);
      ("new_dist", Test_new_dist.suite);
      ("mpeg", Test_mpeg.suite);
      ("spectrum", Test_spectrum.suite);
      ("ascii_plot", Test_ascii_plot.suite);
      ("shaper", Test_shaper.suite);
      ("misc", Test_misc.suite);
      ("obs", Test_obs.suite);
      ("cac", Test_cac.suite);
      ("resilience", Test_resilience.suite);
      ("server", Test_server.suite);
      ("events", Test_events.suite);
      ("persist", Test_persist.suite);
      ("experiments", Test_experiments.suite);
      ("lint", Test_lint.suite);
    ]
