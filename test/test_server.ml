open Helpers
open Srv

(* {2 Plumbing}

   Parser tests drive [Http.read_request] through a Unix-domain
   socketpair — real fds, no network.  [Pool.serve_connection] closes
   its own end, so double-closes here are absorbed. *)

let check_str msg expected actual = Alcotest.(check string) msg expected actual

let with_socketpair f =
  let client, server = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close client with Unix.Unix_error _ -> ());
      (try Unix.close server with Unix.Unix_error _ -> ()))
    (fun () -> f client server)

(* Feed [bytes] to the parser and return the result; the client end is
   closed after writing so truncated inputs terminate with EOF. *)
let parse ?limits bytes =
  with_socketpair (fun client server ->
      Io.write_string client bytes;
      Unix.close client;
      Http.read_request ?limits (Io.reader server) (Io.deadline_in 5.0))

let parse_error_status ?limits bytes =
  match parse ?limits bytes with
  | Http.Error { status; _ } -> status
  | Http.Request _ -> Alcotest.failf "parsed %S as a request" bytes
  | Http.Eof -> Alcotest.failf "parsed %S as EOF" bytes

(* Minimal HTTP client: read one response off [reader]. *)
let read_response reader =
  let dl = Io.deadline_in 10.0 in
  let status =
    match Io.read_line reader ~max:8192 dl with
    | None -> Alcotest.fail "eof before status line"
    | Some line -> (
        match String.split_on_char ' ' line with
        | _ :: code :: _ -> int_of_string code
        | _ -> Alcotest.failf "bad status line %S" line)
  in
  let rec headers acc =
    match Io.read_line reader ~max:8192 dl with
    | None -> Alcotest.fail "eof in headers"
    | Some "" -> List.rev acc
    | Some line -> (
        match String.index_opt line ':' with
        | None -> Alcotest.failf "bad header line %S" line
        | Some i ->
            headers
              (( String.lowercase_ascii (String.sub line 0 i),
                 String.trim
                   (String.sub line (i + 1) (String.length line - i - 1)) )
              :: acc))
  in
  let hs = headers [] in
  let len =
    match List.assoc_opt "content-length" hs with
    | Some v -> int_of_string v
    | None -> 0
  in
  (status, hs, Io.read_exact reader len dl)

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let spin ?(tries = 2000) cond msg =
  let rec go n =
    if cond () then ()
    else if n <= 0 then Alcotest.fail msg
    else begin
      Unix.sleepf 0.005;
      go (n - 1)
    end
  in
  go tries

(* {2 Parser goldens} *)

let test_parse_get () =
  match
    parse
      "GET /healthz?q=long%20range&n=3 HTTP/1.1\r\n\
       Host: cts\r\n\
       X-Trace: on \r\n\
       \r\n"
  with
  | Http.Request req ->
      check_true "method" (Http.meth_equal req.Http.meth Http.GET);
      check_str "path" "/healthz" req.Http.path;
      check_str "raw target kept" "/healthz?q=long%20range&n=3" req.Http.target;
      check_true "query decoded"
        (req.Http.query = [ ("q", "long range"); ("n", "3") ]);
      check_str "header lowercased" "cts"
        (Option.value ~default:"?" (Http.header req "HOST"));
      check_str "header value trimmed" "on"
        (Option.value ~default:"?" (Http.header req "x-trace"));
      check_str "no body" "" req.Http.body;
      check_true "HTTP/1.1 defaults to keep-alive" (Http.keep_alive req)
  | _ -> Alcotest.fail "valid GET did not parse"

let test_parse_post_body () =
  match
    parse "POST /v1/decide HTTP/1.1\r\ncontent-length: 5\r\n\r\nhello"
  with
  | Http.Request req ->
      check_true "method" (Http.meth_equal req.Http.meth Http.POST);
      check_str "body" "hello" req.Http.body
  | _ -> Alcotest.fail "POST with body did not parse"

let test_parse_eof () =
  match parse "" with
  | Http.Eof -> ()
  | _ -> Alcotest.fail "clean close should be Eof"

let test_parse_malformed () =
  check_int "garbage request line" 400 (parse_error_status "GARBAGE\r\n\r\n");
  check_int "unsupported version" 505
    (parse_error_status "GET /x HTTP/2.0\r\n\r\n");
  check_int "bad content-length" 400
    (parse_error_status "GET /x HTTP/1.1\r\ncontent-length: nope\r\n\r\n");
  check_int "negative content-length" 400
    (parse_error_status "GET /x HTTP/1.1\r\ncontent-length: -4\r\n\r\n");
  check_int "chunked rejected" 501
    (parse_error_status
       "POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n")

let test_parse_truncated () =
  check_int "cut mid-headers" 400
    (parse_error_status "GET /x HTTP/1.1\r\nHost: cts");
  check_int "cut mid-body" 400
    (parse_error_status "POST /x HTTP/1.1\r\ncontent-length: 10\r\n\r\nhi")

let test_parse_oversized () =
  let limits = { Http.max_line = 48; max_headers = 2; max_body = 64 } in
  let long = String.make 100 'a' in
  check_int "request line too long" 414
    (parse_error_status ~limits (Printf.sprintf "GET /%s HTTP/1.1\r\n\r\n" long));
  check_int "header line too long" 431
    (parse_error_status ~limits
       (Printf.sprintf "GET /x HTTP/1.1\r\nx: %s\r\n\r\n" long));
  check_int "too many headers" 431
    (parse_error_status ~limits
       "GET /x HTTP/1.1\r\na: 1\r\nb: 2\r\nc: 3\r\n\r\n");
  check_int "body over cap refused before reading it" 413
    (parse_error_status ~limits
       "POST /x HTTP/1.1\r\ncontent-length: 65\r\n\r\n")

let test_parse_timeout () =
  with_socketpair (fun client server ->
      Io.write_string client "GET /slow HTTP/1.1\r\nHost:";
      (* client neither finishes nor closes: the deadline must fire *)
      match Http.read_request (Io.reader server) (Io.deadline_in 0.2) with
      | Http.Error { status = 408; _ } -> ()
      | _ -> Alcotest.fail "trickling peer should time out as 408")

let test_keep_alive_semantics () =
  let ka bytes =
    match parse bytes with
    | Http.Request req -> Http.keep_alive req
    | _ -> Alcotest.failf "unparseable %S" bytes
  in
  check_true "1.0 defaults to close" (not (ka "GET /x HTTP/1.0\r\n\r\n"));
  check_true "1.0 opts into keep-alive"
    (ka "GET /x HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n");
  check_true "1.1 opts out with close"
    (not (ka "GET /x HTTP/1.1\r\nconnection: close\r\n\r\n"))

(* {2 Router} *)

let make_router () =
  Router.create
    [
      Router.route Http.GET "/ping" (fun _ -> Http.text "pong");
      Router.route Http.POST "/echo" (fun req -> Http.text req.Http.body);
    ]

let req_for meth path =
  {
    Http.meth;
    target = path;
    path;
    query = [];
    version = Http.Http_1_1;
    headers = [];
    body = "";
  }

let test_router_dispatch () =
  let r = make_router () in
  let label, resp = Router.dispatch r (req_for Http.GET "/ping") in
  check_str "matched label" "/ping" label;
  check_int "matched status" 200 (Http.status resp);
  let label, resp = Router.dispatch r (req_for Http.GET "/nope") in
  check_str "404s share one label" Router.unmatched_label label;
  check_int "unknown path" 404 (Http.status resp);
  let label, resp = Router.dispatch r (req_for Http.DELETE "/ping") in
  check_str "405 keeps the path label" "/ping" label;
  check_int "wrong method" 405 (Http.status resp);
  check_true "allow header lists the supported method"
    (contains_substring
       (Http.to_string ~keep_alive:false resp)
       "allow: GET")

let test_router_rejects_duplicates () =
  match
    Router.create
      [
        Router.route Http.GET "/a" (fun _ -> Http.text "1");
        Router.route Http.GET "/a" (fun _ -> Http.text "2");
      ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate routes accepted"

let test_pool_config_validation () =
  let bad config =
    match Pool.create ~config (make_router ()) with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "invalid pool config accepted"
  in
  bad { Pool.default_config with domains = 0 };
  bad { Pool.default_config with queue_capacity = 0 };
  bad { Pool.default_config with read_timeout_s = Some 0.0 }

(* {2 Socketpair round-trips through the worker body} *)

let test_round_trip_keep_alive () =
  let config = { Pool.default_config with domains = 1 } in
  let pool = Pool.create ~config (make_router ()) in
  with_socketpair (fun client server ->
      let worker = Domain.spawn (fun () -> Pool.serve_connection pool ~queue_wait_us:0.0 server) in
      Fun.protect
        ~finally:(fun () -> ignore (Domain.join worker))
        (fun () ->
          let reader = Io.reader client in
          Io.write_string client "GET /ping HTTP/1.1\r\n\r\n";
          let st, hdrs, body = read_response reader in
          check_int "first response" 200 st;
          check_str "body" "pong" body;
          check_str "keep-alive advertised" "keep-alive"
            (Option.value ~default:"?" (List.assoc_opt "connection" hdrs));
          (* second request on the same connection *)
          Io.write_string client
            "POST /echo HTTP/1.1\r\ncontent-length: 5\r\n\r\nhello";
          let st, _, body = read_response reader in
          check_int "reused connection" 200 st;
          check_str "echoed body" "hello" body;
          (* 404 is a routed answer, not a connection error *)
          Io.write_string client "GET /missing HTTP/1.1\r\n\r\n";
          let st, _, _ = read_response reader in
          check_int "404 keeps the session" 404 st;
          (* connection: close ends the session *)
          Io.write_string client
            "GET /ping HTTP/1.1\r\nconnection: close\r\n\r\n";
          let st, hdrs, _ = read_response reader in
          check_int "final response" 200 st;
          check_str "close advertised" "close"
            (Option.value ~default:"?" (List.assoc_opt "connection" hdrs));
          match Io.read_line reader ~max:64 (Io.deadline_in 5.0) with
          | None -> ()
          | Some _ -> Alcotest.fail "connection survived connection: close"))

let test_connection_answers_parse_error () =
  let pool = Pool.create ~config:{ Pool.default_config with domains = 1 }
      (make_router ())
  in
  let errors_before = Obs.Registry.counter_value "srv.http.parse_errors" in
  with_socketpair (fun client server ->
      let worker = Domain.spawn (fun () -> Pool.serve_connection pool ~queue_wait_us:0.0 server) in
      Fun.protect
        ~finally:(fun () -> ignore (Domain.join worker))
        (fun () ->
          let reader = Io.reader client in
          Io.write_string client "NOT-HTTP\r\n\r\n";
          let st, _, body = read_response reader in
          check_int "malformed input answered" 400 st;
          check_true "json error body" (contains_substring body "error");
          (match Io.read_line reader ~max:64 (Io.deadline_in 5.0) with
          | None -> ()
          | Some _ -> Alcotest.fail "connection survived a parse error");
          check_true "parse_errors ticked"
            (Obs.Registry.counter_value "srv.http.parse_errors" > errors_before)))

let test_handler_exception_contained () =
  let router =
    Router.create
      [
        Router.route Http.GET "/boom" (fun _ -> failwith "handler bug");
        Router.route Http.GET "/ok" (fun _ -> Http.text "fine");
      ]
  in
  let pool = Pool.create ~config:{ Pool.default_config with domains = 1 } router in
  with_socketpair (fun client server ->
      let worker = Domain.spawn (fun () -> Pool.serve_connection pool ~queue_wait_us:0.0 server) in
      Fun.protect
        ~finally:(fun () -> ignore (Domain.join worker))
        (fun () ->
          let reader = Io.reader client in
          Io.write_string client "GET /boom HTTP/1.1\r\n\r\n";
          let st, _, _ = read_response reader in
          check_int "exception degraded to 500" 500 st;
          (* the worker survived: same connection still serves *)
          Io.write_string client
            "GET /ok HTTP/1.1\r\nconnection: close\r\n\r\n";
          let st, _, body = read_response reader in
          check_int "worker survived the exception" 200 st;
          check_str "subsequent handler ran" "fine" body))

(* {2 Overload: full queue sheds with 503} *)

let test_overload_sheds_503 () =
  let m = Mutex.create () in
  let cv = Condition.create () in
  let started = ref 0 in
  let release = ref false in
  let block_handler _req =
    Mutex.protect m (fun () ->
        incr started;
        Condition.broadcast cv;
        while not !release do
          Condition.wait cv m
        done);
    Http.text "unblocked"
  in
  let router =
    Router.create [ Router.route Http.GET "/block" block_handler ]
  in
  let config =
    {
      Pool.default_config with
      domains = 1;
      queue_capacity = 1;
      max_conn_requests = 1;
    }
  in
  let pool = Pool.create ~config router in
  let listen_fd = Pool.listen ~host:"127.0.0.1" ~port:0 () in
  let port = Pool.bound_port listen_fd in
  let server = Domain.spawn (fun () -> Pool.serve pool listen_fd) in
  Fun.protect
    ~finally:(fun () ->
      Mutex.protect m (fun () ->
          release := true;
          Condition.broadcast cv);
      Pool.stop pool;
      ignore (Domain.join server);
      close_quietly listen_fd)
    (fun () ->
      spin (fun () -> Pool.accepting pool) "accept loop never came up";
      let shed_before = Obs.Registry.counter_value "srv.http.shed" in
      (* c1 occupies the single worker... *)
      let c1 = connect port in
      Io.write_string c1 "GET /block HTTP/1.1\r\n\r\n";
      spin
        (fun () -> Mutex.protect m (fun () -> !started) >= 1)
        "worker never picked up the blocking request";
      (* ...c2 fills the one queue slot... *)
      let c2 = connect port in
      Io.write_string c2 "GET /block HTTP/1.1\r\n\r\n";
      spin
        (fun () -> Pool.queue_length pool = 1)
        "second connection never queued";
      (* ...so c3 must be shed straight from the accept loop. *)
      let c3 = connect port in
      Fun.protect
        ~finally:(fun () -> List.iter close_quietly [ c1; c2; c3 ])
        (fun () ->
          let st, hdrs, body = read_response (Io.reader c3) in
          check_int "overflow sheds 503, not a hang" 503 st;
          check_str "retry-after set" "1"
            (Option.value ~default:"?" (List.assoc_opt "retry-after" hdrs));
          check_true "overload body says so"
            (contains_substring body "overloaded");
          check_true "shed counter ticked"
            (Obs.Registry.counter_value "srv.http.shed" > shed_before);
          (* unblock: both accepted requests must still be answered *)
          Mutex.protect m (fun () ->
              release := true;
              Condition.broadcast cv);
          let st, _, _ = read_response (Io.reader c1) in
          check_int "blocked request answered" 200 st;
          let st, _, _ = read_response (Io.reader c2) in
          check_int "queued request answered after drain" 200 st))

(* {2 Trace correlation and introspection} *)

let with_api ?(links = [ ("oc3", 16140.0, 20.0) ]) f =
  let engine = Cac.Engine.create () in
  List.iter
    (fun (id, capacity, buffer_msec) ->
      let (_ : Cac.Link.t) =
        Cac.Engine.add_link_msec engine ~id ~capacity ~buffer_msec
          ~target_clr:1e-6
      in
      ())
    links;
  f (Cac_api.create engine)

(* Run one connection's worth of raw bytes through the worker body and
   hand each response back through [read_response]. *)
let serve_bytes router ~requests =
  let pool = Pool.create ~config:{ Pool.default_config with domains = 1 } router in
  with_socketpair (fun client server ->
      let worker = Domain.spawn (fun () -> Pool.serve_connection pool ~queue_wait_us:0.0 server) in
      Fun.protect
        ~finally:(fun () -> ignore (Domain.join worker))
        (fun () ->
          let reader = Io.reader client in
          List.map
            (fun bytes ->
              Io.write_string client bytes;
              read_response reader)
            requests))

let response_body resp =
  let s = Http.to_string ~keep_alive:false resp in
  let rec scan i =
    if i + 4 > String.length s then Alcotest.fail "response without header end"
    else if String.sub s i 4 = "\r\n\r\n" then
      String.sub s (i + 4) (String.length s - i - 4)
    else scan (i + 1)
  in
  scan 0

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      List.rev !lines)

let test_traceparent_round_trip () =
  let supplied = "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01" in
  match
    serve_bytes (make_router ())
      ~requests:
        [
          Printf.sprintf "GET /ping HTTP/1.1\r\ntraceparent: %s\r\n\r\n"
            supplied;
          "GET /ping HTTP/1.1\r\n\
           traceparent: garbage\r\n\
           connection: close\r\n\
           \r\n";
        ]
  with
  | [ (st1, hdrs1, _); (st2, hdrs2, _) ] -> (
      check_int "traced request served" 200 st1;
      check_str "supplied context echoed verbatim" supplied
        (Option.value ~default:"?" (List.assoc_opt "traceparent" hdrs1));
      check_int "malformed header still served" 200 st2;
      match List.assoc_opt "traceparent" hdrs2 with
      | None -> Alcotest.fail "no traceparent on the response"
      | Some tp ->
          check_true "generated replacement is well-formed"
            (Obs.Trace.parse_traceparent tp <> None);
          check_true "generated trace differs from the malformed input"
            (not (contains_substring tp "garbage")))
  | _ -> Alcotest.fail "expected two responses"

(* The acceptance criterion for trace correlation: one decide request
   against the real API router yields span events (request root + api
   handler) all stamped with the peer's trace id. *)
let test_trace_correlation_jsonl () =
  let tid = "4bf92f3577b34da6a3ce929d0e0e4736" in
  let path = Filename.temp_file "srv_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          Obs.Span.set_trace_sink (Obs.Sink.Jsonl oc);
          Fun.protect
            ~finally:(fun () -> Obs.Span.set_trace_sink Obs.Sink.Null)
            (fun () ->
              with_api (fun api ->
                  let body = {|{"link": "oc3", "class": "dar1"}|} in
                  match
                    serve_bytes (Cac_api.router api)
                      ~requests:
                        [
                          Printf.sprintf
                            "POST /v1/decide HTTP/1.1\r\n\
                             traceparent: 00-%s-00f067aa0ba902b7-01\r\n\
                             content-length: %d\r\n\
                             connection: close\r\n\
                             \r\n\
                             %s"
                            tid (String.length body) body;
                        ]
                  with
                  | [ (st, _, resp) ] ->
                      check_int "decide succeeded" 200 st;
                      check_true "verdict answered"
                        (contains_substring resp "admissible")
                  | _ -> Alcotest.fail "expected one response")));
      let events = List.filter_map Obs.Json.of_string (read_lines path) in
      let span_traced name =
        List.exists
          (fun j ->
            Obs.Json.member "name" j = Some (String name)
            && Obs.Json.member "trace" j = Some (String tid))
          events
      in
      check_true "request root span carries the peer's trace id"
        (span_traced "srv.http.request");
      check_true "api handler span carries the same trace id"
        (span_traced "cac.api.decide"))

let test_access_log () =
  let path = Filename.temp_file "srv_access" ".log" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let prev = Obs.Sink.human_sink () in
      Obs.Sink.set_human (Obs.Sink.Text oc);
      Fun.protect
        ~finally:(fun () ->
          Obs.Sink.set_human prev;
          close_out_noerr oc)
        (fun () ->
          let config =
            { Pool.default_config with domains = 1; access_log = true }
          in
          let pool = Pool.create ~config (make_router ()) in
          with_socketpair (fun client server ->
              let worker =
                Domain.spawn (fun () -> Pool.serve_connection pool ~queue_wait_us:0.0 server)
              in
              Fun.protect
                ~finally:(fun () -> ignore (Domain.join worker))
                (fun () ->
                  Io.write_string client
                    "GET /ping HTTP/1.1\r\nconnection: close\r\n\r\n";
                  let st, _, _ = read_response (Io.reader client) in
                  check_int "request served" 200 st)));
      match List.filter_map Obs.Json.of_string (read_lines path) with
      | [ line ] ->
          let f name = Obs.Json.member name line in
          check_true "kind tagged" (f "kind" = Some (String "access"));
          check_true "method logged" (f "method" = Some (String "GET"));
          check_true "path logged" (f "path" = Some (String "/ping"));
          check_true "status logged" (f "status" = Some (Int 200));
          check_true "latency logged"
            (match f "us" with Some (Float us) -> us >= 0.0 | _ -> false);
          check_true "trace id logged"
            (match f "trace" with
            | Some (String tid) -> String.length tid = 32
            | _ -> false);
          (* JSON integral floats parse back as Int — accept both. *)
          let non_negative = function
            | Some (Obs.Json.Float us) -> us >= 0.0
            | Some (Obs.Json.Int us) -> us >= 0
            | _ -> false
          in
          check_true "queue wait logged" (non_negative (f "queue_wait_us"));
          check_true "gc pause logged" (non_negative (f "gc_pause_us"))
      | lines ->
          Alcotest.failf "expected one access line, got %d" (List.length lines))

(* The per-request GC attribution loop: a handler that provokes a full
   major and then outlives the consumer's poll interval must see its
   own pause land in [srv.http.gc_pause.us{route}].  Attribution lags
   by at most one poll interval, hence the in-handler sleep and the
   retry loop for the nonzero-sum half. *)
let test_gc_attribution () =
  let ev = Obs.Events.start ~poll_interval_s:0.001 () in
  Fun.protect
    ~finally:(fun () -> Obs.Events.stop ev)
    (fun () ->
      let router =
        Router.create
          [
            Router.route Http.GET "/gcburn" (fun _ ->
                let junk = ref [] in
                for i = 1 to 200_000 do
                  junk := float_of_int i :: !junk
                done;
                ignore (Sys.opaque_identity !junk);
                junk := [];
                Gc.full_major ();
                Unix.sleepf 0.01;
                Http.text "burned");
          ]
      in
      let config = { Pool.default_config with domains = 1 } in
      let pool = Pool.create ~config router in
      let labels = Obs.Labels.make [ ("route", "/gcburn") ] in
      let snap () =
        Obs.Registry.histogram_snapshot ~labels "srv.http.gc_pause.us"
      in
      let before =
        match snap () with Some h -> h.Obs.Registry.count | None -> 0
      in
      let fire () =
        with_socketpair (fun client server ->
            let worker =
              Domain.spawn (fun () ->
                  Pool.serve_connection pool ~queue_wait_us:0.0 server)
            in
            Fun.protect
              ~finally:(fun () -> ignore (Domain.join worker))
              (fun () ->
                Io.write_string client
                  "GET /gcburn HTTP/1.1\r\nconnection: close\r\n\r\n";
                let st, _, _ = read_response (Io.reader client) in
                check_int "request served" 200 st))
      in
      fire ();
      (match snap () with
      | Some h ->
          check_true "gc_pause observed for every request with events on"
            (h.Obs.Registry.count > before)
      | None -> Alcotest.fail "srv.http.gc_pause.us never created");
      let rec until_nonzero n =
        if n <= 0 then
          Alcotest.fail "attributed gc pause time stayed zero across 20 requests"
        else
          match snap () with
          | Some h when h.Obs.Registry.sum > 0.0 -> ()
          | _ ->
              fire ();
              until_nonzero (n - 1)
      in
      until_nonzero 20)

let test_debug_vars () =
  with_api @@ fun api ->
  let api =
    Cac_api.add_debug_provider api ~name:"test_section" (fun () ->
        Obs.Json.Obj [ ("answer", Obs.Json.Int 42) ])
  in
  let api =
    Cac_api.add_debug_provider api ~name:"test_broken" (fun () ->
        failwith "provider bug")
  in
  let router = Cac_api.router api in
  let _, resp = Router.dispatch router (req_for Http.GET "/debug/vars") in
  check_int "debug vars answers" 200 (Http.status resp);
  match Obs.Json.of_string (response_body resp) with
  | None -> Alcotest.fail "unparseable /debug/vars body"
  | Some doc ->
      let f name = Obs.Json.member name doc in
      check_true "uptime present"
        (match f "uptime_s" with Some (Float u) -> u >= 0.0 | _ -> false);
      check_true "clock source named"
        (match f "clock_source" with
        | Some (String s) -> String.length s > 0
        | _ -> false);
      (match f "gc" with
      | Some gc ->
          check_true "gc stats carry collection counts"
            (match Obs.Json.member "minor_collections" gc with
            | Some (Int n) -> n >= 0
            | _ -> false)
      | None -> Alcotest.fail "no gc section");
      check_true "collector status reported"
        (match f "runtime_collector" with
        | Some (String s) -> List.mem s [ "never"; "live"; "stale" ]
        | _ -> false);
      check_true "registered provider rendered"
        (match f "test_section" with
        | Some s -> Obs.Json.member "answer" s = Some (Obs.Json.Int 42)
        | None -> false);
      check_true "throwing provider degrades, not 500s"
        (f "test_broken" = Some (String "<provider error>"))

let test_healthz_liveness_fields () =
  with_api @@ fun api ->
  (* A snapshot has certainly been taken by now (metrics tests above),
     so the age must be a number, not null. *)
  ignore (Obs.Registry.snapshot ());
  let _, resp = Router.dispatch (Cac_api.router api) (req_for Http.GET "/healthz") in
  check_int "healthz answers" 200 (Http.status resp);
  match Obs.Json.of_string (response_body resp) with
  | None -> Alcotest.fail "unparseable /healthz body"
  | Some doc ->
      let f name = Obs.Json.member name doc in
      check_true "still reports ok" (f "status" = Some (String "ok"));
      check_true "snapshot age reported"
        (match f "snapshot_age_s" with Some (Float a) -> a >= 0.0 | _ -> false);
      check_true "collector liveness reported"
        (match f "runtime_collector" with
        | Some (String s) -> List.mem s [ "never"; "live"; "stale" ]
        | _ -> false);
      check_true "collector age key present" (f "runtime_sample_age_s" <> None)

let test_heatmap_endpoints () =
  with_api ~links:[ ("oc3", 16140.0, 20.0); ("oc12", 64560.0, 120.0) ]
  @@ fun api ->
  let router = Cac_api.router api in
  let decide link =
    let req =
      {
        (req_for Http.POST "/v1/decide") with
        Http.body = Printf.sprintf {|{"link": %S, "class": "dar1"}|} link;
      }
    in
    let _, resp = Router.dispatch router req in
    check_int (link ^ " decided") 200 (Http.status resp)
  in
  decide "oc3";
  decide "oc12";
  let _, resp = Router.dispatch router (req_for Http.GET "/heatmap") in
  check_int "heatmap answers" 200 (Http.status resp);
  let html = response_body resp in
  check_true "self-contained html" (contains_substring html "<!DOCTYPE html>");
  check_true "renders the m* metric" (contains_substring html "cts.m_star");
  let _, resp = Router.dispatch router (req_for Http.GET "/heatmap.csv") in
  check_int "csv answers" 200 (Http.status resp);
  let csv = response_body resp in
  check_true "csv header"
    (contains_substring csv "buffer_cells,bin_lo,bin_hi,count");
  (* two links with different total buffers → at least two distinct rows *)
  let labels =
    List.fold_left
      (fun acc line ->
        match String.index_opt line ',' with
        | Some i ->
            let label = String.sub line 0 i in
            if label = "buffer_cells" || List.mem label acc then acc
            else label :: acc
        | None -> acc)
      []
      (String.split_on_char '\n' csv)
  in
  check_true "both buffer sizes render as rows" (List.length labels >= 2)

(* {2 Loopback soak: the acceptance criterion}

   10k sequential decides over one keep-alive connection against the
   real daemon surface (Cac_api router + Pool over TCP), then a
   /metrics scrape that must carry the per-route telemetry. *)

let test_soak_10k_decides () =
  let engine = Cac.Engine.create () in
  let (_ : Cac.Link.t) =
    Cac.Engine.add_link_msec engine ~id:"oc3" ~capacity:16140.0
      ~buffer_msec:20.0 ~target_clr:1e-6
  in
  let api = Cac_api.create engine in
  let config = { Pool.default_config with domains = 2; queue_capacity = 64 } in
  let pool = Pool.create ~config (Cac_api.router api) in
  let listen_fd = Pool.listen ~host:"127.0.0.1" ~port:0 () in
  let port = Pool.bound_port listen_fd in
  let server = Domain.spawn (fun () -> Pool.serve pool listen_fd) in
  Fun.protect
    ~finally:(fun () ->
      Pool.stop pool;
      ignore (Domain.join server);
      close_quietly listen_fd)
    (fun () ->
      spin (fun () -> Pool.accepting pool) "accept loop never came up";
      let fd = connect port in
      Fun.protect
        ~finally:(fun () -> close_quietly fd)
        (fun () ->
          let reader = Io.reader fd in
          let body = {|{"link": "oc3", "class": "dar1"}|} in
          let request =
            Printf.sprintf
              "POST /v1/decide HTTP/1.1\r\n\
               content-type: application/json\r\n\
               content-length: %d\r\n\
               \r\n\
               %s"
              (String.length body) body
          in
          let ok = ref 0 in
          for _ = 1 to 10_000 do
            Io.write_string fd request;
            let st, _, resp = read_response reader in
            if st = 200 && contains_substring resp "admissible" then incr ok
          done;
          check_int "10k keep-alive decides, zero transport errors" 10_000
            !ok;
          (* the scrape endpoint reports what just happened *)
          Io.write_string fd "GET /metrics HTTP/1.1\r\n\r\n";
          let st, hdrs, metrics = read_response reader in
          check_int "metrics scrape" 200 st;
          check_true "prometheus content type"
            (contains_substring
               (Option.value ~default:"?"
                  (List.assoc_opt "content-type" hdrs))
               "text/plain");
          check_true "request counter exported"
            (contains_substring metrics "srv_http_requests_total");
          check_true "per-route series exported"
            (contains_substring metrics "route=\"/v1/decide\"");
          check_true "per-route latency histogram exported"
            (contains_substring metrics "srv_http_latency_us");
          check_true "engine counters exported alongside"
            (contains_substring metrics "cac_cache_hits_total")))

let suite =
  [
    case "parser: GET with query and headers" test_parse_get;
    case "parser: POST body via content-length" test_parse_post_body;
    case "parser: clean EOF" test_parse_eof;
    case "parser: malformed inputs" test_parse_malformed;
    case "parser: truncated inputs" test_parse_truncated;
    case "parser: oversized inputs" test_parse_oversized;
    case "parser: trickling peer times out" test_parse_timeout;
    case "parser: keep-alive semantics" test_keep_alive_semantics;
    case "router: dispatch, 404, 405" test_router_dispatch;
    case "router: duplicate routes rejected" test_router_rejects_duplicates;
    case "pool: config validation" test_pool_config_validation;
    case "pool: keep-alive round-trips over a socketpair"
      test_round_trip_keep_alive;
    case "pool: parse errors answered then closed"
      test_connection_answers_parse_error;
    case "pool: handler exceptions contained to a 500"
      test_handler_exception_contained;
    slow_case "pool: overload sheds 503 from the accept loop"
      test_overload_sheds_503;
    case "trace: traceparent echoed and generated"
      test_traceparent_round_trip;
    case "trace: one decide, one correlated span tree"
      test_trace_correlation_jsonl;
    case "access log: one JSON line per request" test_access_log;
    case "gc attribution: handler pauses land in srv.http.gc_pause.us"
      test_gc_attribution;
    case "debug vars: gc, clock and providers" test_debug_vars;
    case "healthz: snapshot age and collector liveness"
      test_healthz_liveness_fields;
    case "heatmap: per-buffer rows from live decides"
      test_heatmap_endpoints;
    slow_case "daemon: 10k-request loopback soak + metrics scrape"
      test_soak_10k_decides;
  ]
