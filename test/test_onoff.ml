open Helpers

let dist = Traffic.Onoff_dist.create ~gamma:1.2 ~a:0.0018

let test_pdf_normalised () =
  let v =
    Numerics.Quadrature.adaptive_simpson
      ~f:(Traffic.Onoff_dist.pdf dist)
      ~lo:0.0 ~hi:dist.Traffic.Onoff_dist.a ~tol:1e-12
    +. Numerics.Quadrature.tail_integral
         ~f:(Traffic.Onoff_dist.pdf dist)
         ~lo:dist.Traffic.Onoff_dist.a ~decay:2.2 ~tol:1e-14
  in
  check_close ~tol:1e-5 "pdf integrates to 1" 1.0 v

let test_pdf_continuous_at_breakpoint () =
  let a = dist.Traffic.Onoff_dist.a in
  let left = Traffic.Onoff_dist.pdf dist (a *. (1.0 -. 1e-9)) in
  let right = Traffic.Onoff_dist.pdf dist (a *. (1.0 +. 1e-9)) in
  check_close_rel ~tol:1e-6 "pdf continuous at A" left right

let test_survival_cdf () =
  List.iter
    (fun x ->
      check_close ~tol:1e-12 "cdf + survival = 1" 1.0
        (Traffic.Onoff_dist.cdf dist x +. Traffic.Onoff_dist.survival dist x))
    [ 0.0001; 0.001; 0.0018; 0.01; 1.0 ]

let test_mean_matches_integral () =
  (* mean = integral of survival *)
  let numeric =
    Numerics.Quadrature.adaptive_simpson
      ~f:(Traffic.Onoff_dist.survival dist)
      ~lo:0.0 ~hi:dist.Traffic.Onoff_dist.a ~tol:1e-14
    +. Numerics.Quadrature.tail_integral
         ~f:(Traffic.Onoff_dist.survival dist)
         ~lo:dist.Traffic.Onoff_dist.a ~decay:1.2 ~tol:1e-15
  in
  check_close_rel ~tol:1e-4 "closed-form mean" numeric dist.Traffic.Onoff_dist.mean

let test_sample_distribution () =
  let a = rng ~seed:81 () in
  let n = 200_000 in
  let below_a = ref 0 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    let t = Traffic.Onoff_dist.sample dist a in
    check_true "sample positive" (t > 0.0);
    if t <= dist.Traffic.Onoff_dist.a then incr below_a;
    acc := !acc +. t
  done;
  (* P(T <= A) = 1 - e^-gamma *)
  check_close ~tol:0.005 "body mass"
    (1.0 -. exp (-1.2))
    (float_of_int !below_a /. float_of_int n);
  (* Heavy tail (gamma = 1.2): the sample mean converges slowly, so
     only a loose check is meaningful. *)
  check_close_rel ~tol:0.25 "sample mean near E[T]"
    dist.Traffic.Onoff_dist.mean
    (!acc /. float_of_int n)

let test_sample_quantiles () =
  (* Exact inversion means empirical quantiles track the CDF tightly
     in the body. *)
  let a = rng ~seed:83 () in
  let samples =
    Array.init 100_000 (fun _ -> Traffic.Onoff_dist.sample dist a)
  in
  Array.sort Float.compare samples;
  List.iter
    (fun q ->
      let x = samples.(int_of_float (q *. 100_000.0)) in
      check_close ~tol:0.01
        (Printf.sprintf "cdf at empirical quantile %g" q)
        q
        (Traffic.Onoff_dist.cdf dist x))
    [ 0.1; 0.25; 0.5; 0.75; 0.9; 0.99 ]

let test_equilibrium_cdf_shape () =
  check_close "starts at 0" 0.0 (Traffic.Onoff_dist.equilibrium_cdf dist 0.0);
  let prev = ref 0.0 in
  List.iter
    (fun x ->
      let v = Traffic.Onoff_dist.equilibrium_cdf dist x in
      check_true "monotone" (v >= !prev);
      check_true "bounded" (v <= 1.0);
      prev := v)
    [ 0.0001; 0.001; 0.0018; 0.005; 0.05; 0.5; 5.0; 500.0 ];
  check_true "approaches 1 slowly (infinite-mean residual)"
    (Traffic.Onoff_dist.equilibrium_cdf dist 500.0 > 0.9)

let test_equilibrium_sample_matches_cdf () =
  let a = rng ~seed:85 () in
  let n = 100_000 in
  List.iter
    (fun x ->
      let below = ref 0 in
      let a = Numerics.Rng.copy a in
      for _ = 1 to n do
        if Traffic.Onoff_dist.equilibrium_sample dist a <= x then incr below
      done;
      check_close ~tol:0.01
        (Printf.sprintf "equilibrium empirical cdf at %g" x)
        (Traffic.Onoff_dist.equilibrium_cdf dist x)
        (float_of_int !below /. float_of_int n))
    [ 0.001; 0.0018; 0.01; 0.1 ]

let test_invalid_args () =
  Alcotest.check_raises "gamma too large"
    (Invalid_argument "Onoff_dist: gamma = 2 outside (1, 2)") (fun () ->
      ignore (Traffic.Onoff_dist.create ~gamma:2.0 ~a:1.0));
  Alcotest.check_raises "alpha out of range"
    (Invalid_argument "Onoff_dist: alpha = 1.5 outside (0, 1)") (fun () ->
      ignore (Traffic.Onoff_dist.of_alpha ~alpha:1.5 ~a:1.0))

let test_fractal_onoff_stationarity () =
  (* The stationary ON fraction is 1/2; check the time average. *)
  let a = rng ~seed:87 () in
  let total = ref 0.0 in
  let reps = 200 in
  let horizon = 200 in
  for _ = 1 to reps do
    let p = Traffic.Fractal_onoff.create dist (Numerics.Rng.split a) in
    for _ = 1 to horizon do
      total := !total +. Traffic.Fractal_onoff.on_time p ~dt:0.04
    done
  done;
  let fraction = !total /. (float_of_int (reps * horizon) *. 0.04) in
  check_close ~tol:0.05 "long-run ON fraction 1/2" 0.5 fraction

let test_fractal_onoff_bounds () =
  let a = rng ~seed:89 () in
  let p = Traffic.Fractal_onoff.create dist a in
  for _ = 1 to 10_000 do
    let t = Traffic.Fractal_onoff.on_time p ~dt:0.04 in
    check_true "on time within [0, dt]" (t >= 0.0 && t <= 0.04 +. 1e-12)
  done

let suite =
  [
    case "pdf integrates to 1" test_pdf_normalised;
    case "pdf continuous at breakpoint" test_pdf_continuous_at_breakpoint;
    case "cdf + survival = 1" test_survival_cdf;
    case "closed-form mean" test_mean_matches_integral;
    case "sampling matches distribution" test_sample_distribution;
    case "sample quantiles" test_sample_quantiles;
    case "equilibrium cdf shape" test_equilibrium_cdf_shape;
    slow_case "equilibrium sampling" test_equilibrium_sample_matches_cdf;
    case "invalid arguments" test_invalid_args;
    case "fractal on/off stationary fraction" test_fractal_onoff_stationarity;
    case "on_time bounds" test_fractal_onoff_bounds;
    qcheck "survival decreasing" QCheck2.Gen.(pair (float_range 0.0001 10.0) (float_range 0.0001 10.0))
      (fun (x1, x2) ->
        let lo = Stdlib.min x1 x2 and hi = Stdlib.max x1 x2 in
        Traffic.Onoff_dist.survival dist lo >= Traffic.Onoff_dist.survival dist hi);
  ]
