(* Golden tests for ctslint over the fixtures in fixtures/lint/.
   Every rule gets a positive fixture and a waived (or otherwise
   sanctioned) negative.  [~as_path] relocates a fixture so the
   path-scoped rules (N2 kernels, C2 sanctioned modules, C1 allowlist,
   H1 library code) see the layout they key on. *)

open Ctslint_lib

let cfg = Lint_config.default

(* dune runtest runs us from test/'s build dir; a manual
   [dune exec test/test_main.exe] runs from the workspace root. *)
let fixture_root =
  if Sys.file_exists "fixtures" then "fixtures/lint"
  else Filename.concat "test" "fixtures/lint"

let fixture name = Filename.concat fixture_root name

(* Compact golden form: "line:col RULE", path-independent. *)
let lint ?(config = cfg) ~as_path name =
  Lint_driver.lint_file ~cfg:config ~as_path (fixture name)
  |> List.map (fun f ->
         Printf.sprintf "%d:%d %s" f.Lint_finding.line f.Lint_finding.col
           f.Lint_finding.rule)

let check = Alcotest.(check (list string))

(* {2 N1: structural comparison on floats} *)

let test_n1_positive () =
  check "float (=), (<>) and polymorphic compare are flagged"
    [ "2:15 N1"; "3:15 N1"; "4:19 N1" ]
    (lint ~as_path:"lib/misc/n1_float_eq.ml" "n1_float_eq.ml")

let test_n1_waived () =
  check "expression, binding and file-scope waivers all suppress N1" []
    (lint ~as_path:"lib/misc/n1_waived.ml" "n1_waived.ml")

let test_n1_message () =
  let actual =
    Lint_driver.lint_file ~cfg ~as_path:"lib/misc/n1_float_eq.ml"
      (fixture "n1_float_eq.ml")
    |> List.map Lint_finding.to_string
  in
  check "full finding lines are stable"
    [
      "lib/misc/n1_float_eq.ml:2:15 N1 structural (=) on a float operand; \
       use Float.equal or an epsilon helper";
      "lib/misc/n1_float_eq.ml:3:15 N1 structural (<>) on a float operand; \
       use Float.equal or an epsilon helper";
      "lib/misc/n1_float_eq.ml:4:19 N1 polymorphic compare; use a typed \
       comparator (Float.compare, String.compare, Int.compare)";
    ]
    actual

(* {2 N2: unguarded transcendentals/divisions in kernels} *)

let test_n2_kernel_positive () =
  check "unguarded exp and (/.) flagged inside a kernel path"
    [ "3:12 N2"; "4:16 N2" ]
    (lint ~as_path:"lib/core/n2_unguarded.ml" "n2_unguarded.ml")

let test_n2_outside_kernel () =
  check "the same code outside kernel paths is not N2's business" []
    (lint ~as_path:"lib/misc/n2_unguarded.ml" "n2_unguarded.ml")

let test_n2_guarded () =
  check "assert guard, waiver and constant folding each silence N2" []
    (lint ~as_path:"lib/core/n2_guarded.ml" "n2_guarded.ml")

(* {2 C1: toplevel mutable state} *)

let test_c1_positive () =
  check "toplevel Hashtbl.create and ref are flagged"
    [ "3:0 C1"; "4:0 C1" ]
    (lint ~as_path:"lib/misc/c1_toplevel.ml" "c1_toplevel.ml")

let test_c1_waived () =
  check "binding-level waiver suppresses C1" []
    (lint ~as_path:"lib/misc/c1_waived.ml" "c1_waived.ml")

let test_c1_allowlisted () =
  check "the registry allowlist exempts the same code" []
    (lint ~as_path:"lib/obs/registry.ml" "c1_toplevel.ml")

(* {2 C2: Domain.spawn / wall-clock discipline} *)

let test_c2_positive () =
  check "gettimeofday and Domain.spawn flagged in ordinary lib code"
    [ "4:13 C2"; "7:10 C2" ]
    (lint ~as_path:"lib/misc/c2_effects.ml" "c2_effects.ml")

let test_c2_sweep () =
  check "Cac.Sweep may spawn domains but still may not read the clock"
    [ "4:13 C2" ]
    (lint ~as_path:"lib/cac/sweep.ml" "c2_effects.ml")

let test_c2_clock () =
  check "Obs.Clock may read the clock but still may not spawn domains"
    [ "7:10 C2" ]
    (lint ~as_path:"lib/obs/clock.ml" "c2_effects.ml")

(* {2 H1: hygiene} *)

let test_h1_positive () =
  check "Printf.printf and print_endline flagged in library code"
    [ "3:17 H1"; "4:13 H1" ]
    (lint ~as_path:"lib/misc/h1_printf.ml" "h1_printf.ml")

let test_h1_sink () =
  check "Obs.Sink is the sanctioned printer" []
    (lint ~as_path:"lib/obs/sink.ml" "h1_printf.ml")

let test_h1_bin () =
  check "executables may print; H1 is library-only" []
    (lint ~as_path:"bin/h1_printf.ml" "h1_printf.ml")

let test_h1_mli_pairing () =
  let report = Lint_driver.run ~cfg [ fixture "tree" ] in
  Alcotest.(check int) "both modules scanned" 2 report.Lint_driver.files_scanned;
  check "exactly the .mli-less module is flagged"
    [
      Filename.concat fixture_root "tree/lib/pairing/missing_mli.ml"
      ^ ":1:0 H1 missing interface missing_mli.mli for library module";
    ]
    (List.map Lint_finding.to_string report.Lint_driver.findings)

(* {2 Clean file and parse failure} *)

let test_clean () =
  check "representative clean kernel code produces zero findings" []
    (lint ~as_path:"lib/core/clean.ml" "clean.ml")

let test_syntax_error () =
  match lint ~as_path:"lib/misc/syntax_error.ml" "syntax_error.ml" with
  | [ one ] ->
      Alcotest.(check bool)
        "parse failure is a P0 finding, not a crash" true
        (String.length one >= 2
        && String.sub one (String.length one - 2) 2 = "P0")
  | fs ->
      Alcotest.failf "expected exactly one P0 finding, got %d: %s"
        (List.length fs) (String.concat "; " fs)

(* {2 Config: parsing and path matching} *)

let test_config_parse () =
  let c =
    Lint_config.of_string
      "# policy\nfloat-field lo\nexclude vendor\nkernel-path lib/fast\n"
  in
  Alcotest.(check bool) "float-field appended" true
    (List.mem "lo" c.Lint_config.float_fields);
  Alcotest.(check bool) "exclude appended after defaults" true
    (Lint_config.excluded c "vendor/dep.ml");
  Alcotest.(check bool) "kernel-path extends the built-in kernel set" true
    (Lint_config.kernel c "lib/fast/kernel.ml"
    && Lint_config.kernel c "lib/core/cts.ml");
  (match Lint_config.of_string "no-such-directive x\n" with
  | _ -> Alcotest.fail "unknown directive accepted"
  | exception Failure msg ->
      Alcotest.(check bool) "error carries the line number" true
        (String.length msg > 0 && msg.[String.length msg - 1] <> '\n'));
  match Lint_config.of_string "exclude\n" with
  | _ -> Alcotest.fail "valueless directive accepted"
  | exception Failure _ -> ()

let test_path_matching () =
  let m = Lint_config.matches in
  Alcotest.(check bool) "direct prefix" true (m "lib/core/cts.ml" "lib/core");
  Alcotest.(check bool) "infix under a fixture tree" true
    (m "test/fixtures/lint/lib/core/bad.ml" "lib/core");
  Alcotest.(check bool) "components must match exactly" false
    (m "lib/core_ext/cts.ml" "lib/core");
  Alcotest.(check bool) "sequence must be contiguous" false
    (m "lib/misc/core/x.ml" "lib/core");
  Alcotest.(check bool) "./ and duplicate slashes are normalized" true
    (m "./lib//core/cts.ml" "lib/core")

let suite =
  [
    Alcotest.test_case "n1 positive" `Quick test_n1_positive;
    Alcotest.test_case "n1 waived" `Quick test_n1_waived;
    Alcotest.test_case "n1 message golden" `Quick test_n1_message;
    Alcotest.test_case "n2 kernel positive" `Quick test_n2_kernel_positive;
    Alcotest.test_case "n2 outside kernel" `Quick test_n2_outside_kernel;
    Alcotest.test_case "n2 guarded/waived" `Quick test_n2_guarded;
    Alcotest.test_case "c1 positive" `Quick test_c1_positive;
    Alcotest.test_case "c1 waived" `Quick test_c1_waived;
    Alcotest.test_case "c1 allowlisted" `Quick test_c1_allowlisted;
    Alcotest.test_case "c2 positive" `Quick test_c2_positive;
    Alcotest.test_case "c2 sweep exemption" `Quick test_c2_sweep;
    Alcotest.test_case "c2 clock exemption" `Quick test_c2_clock;
    Alcotest.test_case "h1 positive" `Quick test_h1_positive;
    Alcotest.test_case "h1 sink exemption" `Quick test_h1_sink;
    Alcotest.test_case "h1 bin exemption" `Quick test_h1_bin;
    Alcotest.test_case "h1 mli pairing" `Quick test_h1_mli_pairing;
    Alcotest.test_case "clean file" `Quick test_clean;
    Alcotest.test_case "syntax error -> P0" `Quick test_syntax_error;
    Alcotest.test_case "config parsing" `Quick test_config_parse;
    Alcotest.test_case "path matching" `Quick test_path_matching;
  ]
