(* Golden tests for ctslint over the fixtures in fixtures/lint/.
   Every rule gets a positive fixture and a waived (or otherwise
   sanctioned) negative.  [~as_path] relocates a fixture so the
   path-scoped rules (N2 kernels, C2 sanctioned modules, C1 allowlist,
   H1 library code) see the layout they key on. *)

open Ctslint_lib

let cfg = Lint_config.default

(* dune runtest runs us from test/'s build dir; a manual
   [dune exec test/test_main.exe] runs from the workspace root. *)
let fixture_root =
  if Sys.file_exists "fixtures" then "fixtures/lint"
  else Filename.concat "test" "fixtures/lint"

let fixture name = Filename.concat fixture_root name

(* Compact golden form: "line:col RULE", path-independent. *)
let lint ?(config = cfg) ~as_path name =
  Lint_driver.lint_file ~cfg:config ~as_path (fixture name)
  |> List.map (fun f ->
         Printf.sprintf "%d:%d %s" f.Lint_finding.line f.Lint_finding.col
           f.Lint_finding.rule)

let check = Alcotest.(check (list string))

(* {2 N1: structural comparison on floats} *)

let test_n1_positive () =
  check "float (=), (<>) and polymorphic compare are flagged"
    [ "2:15 N1"; "3:15 N1"; "4:19 N1" ]
    (lint ~as_path:"lib/misc/n1_float_eq.ml" "n1_float_eq.ml")

let test_n1_waived () =
  check "expression, binding and file-scope waivers all suppress N1" []
    (lint ~as_path:"lib/misc/n1_waived.ml" "n1_waived.ml")

let test_n1_message () =
  let actual =
    Lint_driver.lint_file ~cfg ~as_path:"lib/misc/n1_float_eq.ml"
      (fixture "n1_float_eq.ml")
    |> List.map Lint_finding.to_string
  in
  check "full finding lines are stable"
    [
      "lib/misc/n1_float_eq.ml:2:15 N1 structural (=) on a float operand; \
       use Float.equal or an epsilon helper";
      "lib/misc/n1_float_eq.ml:3:15 N1 structural (<>) on a float operand; \
       use Float.equal or an epsilon helper";
      "lib/misc/n1_float_eq.ml:4:19 N1 polymorphic compare; use a typed \
       comparator (Float.compare, String.compare, Int.compare)";
    ]
    actual

(* {2 N2: unguarded transcendentals/divisions in kernels} *)

let test_n2_kernel_positive () =
  check "unguarded exp and (/.) flagged inside a kernel path"
    [ "3:12 N2"; "4:16 N2" ]
    (lint ~as_path:"lib/core/n2_unguarded.ml" "n2_unguarded.ml")

let test_n2_outside_kernel () =
  check "the same code outside kernel paths is not N2's business" []
    (lint ~as_path:"lib/misc/n2_unguarded.ml" "n2_unguarded.ml")

let test_n2_guarded () =
  check "assert guard, waiver and constant folding each silence N2" []
    (lint ~as_path:"lib/core/n2_guarded.ml" "n2_guarded.ml")

(* {2 C1: toplevel mutable state} *)

let test_c1_positive () =
  check "toplevel Hashtbl.create and ref are flagged"
    [ "3:0 C1"; "4:0 C1" ]
    (lint ~as_path:"lib/misc/c1_toplevel.ml" "c1_toplevel.ml")

let test_c1_waived () =
  check "binding-level waiver suppresses C1" []
    (lint ~as_path:"lib/misc/c1_waived.ml" "c1_waived.ml")

let test_c1_allowlisted () =
  check "the registry allowlist exempts the same code" []
    (lint ~as_path:"lib/obs/registry.ml" "c1_toplevel.ml")

(* {2 C2: Domain.spawn / wall-clock discipline} *)

let test_c2_positive () =
  check "gettimeofday and Domain.spawn flagged in ordinary lib code"
    [ "4:13 C2"; "7:10 C2" ]
    (lint ~as_path:"lib/misc/c2_effects.ml" "c2_effects.ml")

let test_c2_sweep () =
  check "Cac.Sweep may spawn domains but still may not read the clock"
    [ "4:13 C2" ]
    (lint ~as_path:"lib/cac/sweep.ml" "c2_effects.ml")

let test_c2_clock () =
  check "Obs.Clock may read the clock but still may not spawn domains"
    [ "7:10 C2" ]
    (lint ~as_path:"lib/obs/clock.ml" "c2_effects.ml")

(* {2 H1: hygiene} *)

let test_h1_positive () =
  check "Printf.printf and print_endline flagged in library code"
    [ "3:17 H1"; "4:13 H1" ]
    (lint ~as_path:"lib/misc/h1_printf.ml" "h1_printf.ml")

let test_h1_sink () =
  check "Obs.Sink is the sanctioned printer" []
    (lint ~as_path:"lib/obs/sink.ml" "h1_printf.ml")

let test_h1_bin () =
  check "executables may print; H1 is library-only" []
    (lint ~as_path:"bin/h1_printf.ml" "h1_printf.ml")

let test_h1_mli_pairing () =
  let report = Lint_driver.run ~cfg [ fixture "tree" ] in
  Alcotest.(check int) "both modules scanned" 2 report.Lint_driver.files_scanned;
  check "exactly the .mli-less module is flagged"
    [
      Filename.concat fixture_root "tree/lib/pairing/missing_mli.ml"
      ^ ":1:0 H1 missing interface missing_mli.mli for library module";
    ]
    (List.map Lint_finding.to_string report.Lint_driver.findings)

(* {2 Clean file and parse failure} *)

let test_clean () =
  check "representative clean kernel code produces zero findings" []
    (lint ~as_path:"lib/core/clean.ml" "clean.ml")

let test_syntax_error () =
  match lint ~as_path:"lib/misc/syntax_error.ml" "syntax_error.ml" with
  | [ one ] ->
      Alcotest.(check bool)
        "parse failure is a P0 finding, not a crash" true
        (String.length one >= 2
        && String.sub one (String.length one - 2) 2 = "P0")
  | fs ->
      Alcotest.failf "expected exactly one P0 finding, got %d: %s"
        (List.length fs) (String.concat "; " fs)

(* {2 Config: parsing and path matching} *)

let test_config_parse () =
  let c =
    Lint_config.of_string
      "# policy\nfloat-field lo\nexclude vendor\nkernel-path lib/fast\n"
  in
  Alcotest.(check bool) "float-field appended" true
    (List.mem "lo" c.Lint_config.float_fields);
  Alcotest.(check bool) "exclude appended after defaults" true
    (Lint_config.excluded c "vendor/dep.ml");
  Alcotest.(check bool) "kernel-path extends the built-in kernel set" true
    (Lint_config.kernel c "lib/fast/kernel.ml"
    && Lint_config.kernel c "lib/core/cts.ml");
  (match Lint_config.of_string "no-such-directive x\n" with
  | _ -> Alcotest.fail "unknown directive accepted"
  | exception Failure msg ->
      Alcotest.(check bool) "error carries the line number" true
        (String.length msg > 0 && msg.[String.length msg - 1] <> '\n'));
  match Lint_config.of_string "exclude\n" with
  | _ -> Alcotest.fail "valueless directive accepted"
  | exception Failure _ -> ()

let has_sub sub s =
  let ls = String.length s and lu = String.length sub in
  let rec go i = i + lu <= ls && (String.sub s i lu = sub || go (i + 1)) in
  lu = 0 || go 0

let test_path_matching () =
  let m = Lint_config.matches in
  Alcotest.(check bool) "direct prefix" true (m "lib/core/cts.ml" "lib/core");
  Alcotest.(check bool) "infix under a fixture tree" true
    (m "test/fixtures/lint/lib/core/bad.ml" "lib/core");
  Alcotest.(check bool) "components must match exactly" false
    (m "lib/core_ext/cts.ml" "lib/core");
  Alcotest.(check bool) "sequence must be contiguous" false
    (m "lib/misc/core/x.ml" "lib/core");
  Alcotest.(check bool) "./ and duplicate slashes are normalized" true
    (m "./lib//core/cts.ml" "lib/core")

let test_normalize () =
  let n = Lint_config.normalize in
  let c = Alcotest.(check (list string)) in
  c "trailing slash dropped" [ "lib"; "core" ] (n "lib/core/");
  c "doubled separator collapsed" [ "lib"; "core" ] (n "lib//core");
  c "leading ./ stripped" [ "lib" ] (n "./lib");
  c "dot segments vanish" [ "lib"; "core" ] (n "lib/./core");
  c "degenerate patterns normalize to nothing" [] (n "/");
  c "bare dot too" [] (n ".");
  match Lint_config.of_string "# policy\nexclude /\n" with
  | _ -> Alcotest.fail "pattern that can never match was accepted"
  | exception Failure msg ->
      Alcotest.(check bool) "rejection says why, with the line number" true
        (has_sub "normalizes to nothing" msg && has_sub "line 2" msg)

(* {2 F1 / L1 / E1: flow rules over the typed fixture set} *)

let flow ~as_path name =
  Lint_driver.flow_file ~cfg ~as_path (fixture (Filename.concat "typed" name))
  |> List.map (fun f ->
         Printf.sprintf "%d:%d %s" f.Lint_finding.line f.Lint_finding.col
           f.Lint_finding.rule)

let test_f1_positive () =
  check "NaN sources reaching registry and HTTP sinks are flagged"
    [ "4:2 F1"; "8:2 F1" ]
    (flow ~as_path:"lib/misc/f1_nan_flow.ml" "f1_nan_flow.ml")

let test_f1_guarded () =
  check "guard test, Guard.finite, assert, rebind and waiver all pass" []
    (flow ~as_path:"lib/misc/f1_guarded.ml" "f1_guarded.ml")

let test_l1_positive () =
  check
    "blocking under the lock (direct and through a wrapper closure) and a \
     spawn mutating bare toplevel state"
    [ "11:14 L1"; "13:15 L1"; "15:17 L1" ]
    (flow ~as_path:"lib/misc/l1_lock.ml" "l1_lock.ml")

let test_l1_negative () =
  check "pure critical sections, Atomic state and waivers stay quiet" []
    (flow ~as_path:"lib/misc/l1_negative.ml" "l1_negative.ml")

let test_e1_positive () =
  check "route handlers and spawned tasks that can raise uncaught"
    [ "8:22 E1"; "10:20 E1" ]
    (flow ~as_path:"lib/misc/e1_escape.ml" "e1_escape.ml")

let test_e1_chain () =
  let msgs =
    Lint_driver.flow_file ~cfg ~as_path:"lib/misc/e1_escape.ml"
      (fixture "typed/e1_escape.ml")
    |> List.map (fun f -> f.Lint_finding.msg)
  in
  Alcotest.(check bool) "the handler finding spells out the call chain" true
    (List.exists
       (fun m -> has_sub "via" m && has_sub "parse_class" m)
       msgs)

let test_e1_guarded () =
  check "local try, a Guard.protect fence and a waiver keep E1 quiet" []
    (flow ~as_path:"lib/misc/e1_guarded.ml" "e1_guarded.ml")

(* {2 Typed backend: .cmt loading, precision and cross-backend dedup}

   The suite cannot assume a dune build of itself, so it makes its own
   typedtrees: write a module to a scratch directory, compile it with
   [ocamlc -bin-annot] (artifacts land beside the source, and
   [cmt_sourcefile] records the absolute path we scan by) and point
   the loader's [build_root] at the directory. *)

let temp_dir () =
  let stamp = Filename.temp_file "ctslint_typed" ".d" in
  Sys.remove stamp;
  if Sys.command (Printf.sprintf "mkdir -p %s" (Filename.quote stamp)) <> 0
  then Alcotest.fail "cannot create scratch directory";
  stamp

let write_module dir name src =
  let path = Filename.concat dir name in
  let oc = open_out path in
  output_string oc src;
  close_out oc;
  path

let compile_with_cmt dir name src =
  let path = write_module dir name src in
  let cmd =
    Printf.sprintf "ocamlc -bin-annot -c %s 2>/dev/null" (Filename.quote path)
  in
  if Sys.command cmd <> 0 then Alcotest.failf "ocamlc failed on %s" name;
  path

let test_typed_precision () =
  let dir = temp_dir () in
  let path = compile_with_cmt dir "precision.ml" "let eq (a : float) b = a = b\n" in
  let syntactic = Lint_driver.run ~cfg [ path ] in
  Alcotest.(check int) "no literal in sight: the syntactic backend is blind" 0
    (List.length syntactic.Lint_driver.findings);
  let typed =
    Lint_driver.run ~backend:Lint_driver.Typed ~build_root:dir ~cfg [ path ]
  in
  match typed.Lint_driver.findings with
  | [ f ] ->
      Alcotest.(check string) "the typedtree knows (=) compares floats" "N1"
        f.Lint_finding.rule
  | fs ->
      Alcotest.failf "expected exactly one typed finding, got %d"
        (List.length fs)

let test_backend_both_dedup () =
  let dir = temp_dir () in
  let path = compile_with_cmt dir "bad.ml" "let bad x = x = 1.0\n" in
  let report =
    Lint_driver.run ~backend:Lint_driver.Both ~build_root:dir ~cfg [ path ]
  in
  match report.Lint_driver.findings with
  | [ f ] ->
      Alcotest.(check string)
        "both backends fire at the same spot; dedup keeps one" "N1"
        f.Lint_finding.rule
  | fs ->
      Alcotest.failf "expected one deduplicated finding, got %d: %s"
        (List.length fs)
        (String.concat "; " (List.map Lint_finding.to_string fs))

let test_typed_missing_cmt () =
  let dir = temp_dir () in
  let path = write_module dir "orphan.ml" "let x = 1\n" in
  let report =
    Lint_driver.run ~backend:Lint_driver.Typed ~build_root:dir ~cfg [ path ]
  in
  match report.Lint_driver.findings with
  | [ f ] ->
      Alcotest.(check string) "a missing .cmt is a T0 finding, not silence"
        "T0" f.Lint_finding.rule
  | fs ->
      Alcotest.failf "expected exactly one T0 finding, got %d"
        (List.length fs)

(* {2 SARIF export} *)

let test_sarif_shape () =
  let findings =
    Lint_driver.flow_file ~cfg ~as_path:"lib/misc/f1_nan_flow.ml"
      (fixture "typed/f1_nan_flow.ml")
  in
  Alcotest.(check int) "fixture premise: two findings" 2 (List.length findings);
  let sarif = Lint_sarif.of_findings ~tool_version:"0-test" findings in
  Alcotest.(check bool) "serialized SARIF round-trips through the parser" true
    (Obs.Json.of_string (Lint_sarif.to_string ~tool_version:"0-test" findings)
    = Some sarif);
  let mem k j =
    match Obs.Json.member k j with
    | Some v -> v
    | None -> Alcotest.failf "SARIF object is missing %S" k
  in
  let str j = match j with Obs.Json.String s -> s | _ -> "" in
  let int_ j = match j with Obs.Json.Int i -> i | _ -> -1 in
  Alcotest.(check string) "schema version" "2.1.0" (str (mem "version" sarif));
  Alcotest.(check bool) "$schema points at sarif-2.1.0" true
    (has_sub "sarif" (str (mem "$schema" sarif)));
  let run0 =
    match mem "runs" sarif with
    | Obs.Json.List [ r ] -> r
    | _ -> Alcotest.fail "expected exactly one run"
  in
  let driver = mem "driver" (mem "tool" run0) in
  Alcotest.(check string) "driver name" "ctslint" (str (mem "name" driver));
  Alcotest.(check string) "driver version" "0-test"
    (str (mem "version" driver));
  (match mem "rules" driver with
  | Obs.Json.List rules ->
      Alcotest.(check (list string)) "only fired rules are declared" [ "F1" ]
        (List.map (fun r -> str (mem "id" r)) rules)
  | _ -> Alcotest.fail "driver.rules is not a list");
  match mem "results" run0 with
  | Obs.Json.List (first :: _ as results) ->
      Alcotest.(check int) "one result per finding" (List.length findings)
        (List.length results);
      Alcotest.(check string) "ruleId" "F1" (str (mem "ruleId" first));
      let region =
        mem "region"
          (mem "physicalLocation"
             (match mem "locations" first with
             | Obs.Json.List [ l ] -> l
             | _ -> Alcotest.fail "expected one location"))
      in
      Alcotest.(check int) "startLine is as reported" 4
        (int_ (mem "startLine" region));
      Alcotest.(check int) "startColumn is 1-based" 3
        (int_ (mem "startColumn" region))
  | _ -> Alcotest.fail "run.results is not a non-empty list"

let suite =
  [
    Alcotest.test_case "n1 positive" `Quick test_n1_positive;
    Alcotest.test_case "n1 waived" `Quick test_n1_waived;
    Alcotest.test_case "n1 message golden" `Quick test_n1_message;
    Alcotest.test_case "n2 kernel positive" `Quick test_n2_kernel_positive;
    Alcotest.test_case "n2 outside kernel" `Quick test_n2_outside_kernel;
    Alcotest.test_case "n2 guarded/waived" `Quick test_n2_guarded;
    Alcotest.test_case "c1 positive" `Quick test_c1_positive;
    Alcotest.test_case "c1 waived" `Quick test_c1_waived;
    Alcotest.test_case "c1 allowlisted" `Quick test_c1_allowlisted;
    Alcotest.test_case "c2 positive" `Quick test_c2_positive;
    Alcotest.test_case "c2 sweep exemption" `Quick test_c2_sweep;
    Alcotest.test_case "c2 clock exemption" `Quick test_c2_clock;
    Alcotest.test_case "h1 positive" `Quick test_h1_positive;
    Alcotest.test_case "h1 sink exemption" `Quick test_h1_sink;
    Alcotest.test_case "h1 bin exemption" `Quick test_h1_bin;
    Alcotest.test_case "h1 mli pairing" `Quick test_h1_mli_pairing;
    Alcotest.test_case "clean file" `Quick test_clean;
    Alcotest.test_case "syntax error -> P0" `Quick test_syntax_error;
    Alcotest.test_case "config parsing" `Quick test_config_parse;
    Alcotest.test_case "path matching" `Quick test_path_matching;
    Alcotest.test_case "path normalization" `Quick test_normalize;
    Alcotest.test_case "f1 positive" `Quick test_f1_positive;
    Alcotest.test_case "f1 guarded/waived" `Quick test_f1_guarded;
    Alcotest.test_case "l1 positive" `Quick test_l1_positive;
    Alcotest.test_case "l1 negative/waived" `Quick test_l1_negative;
    Alcotest.test_case "e1 positive" `Quick test_e1_positive;
    Alcotest.test_case "e1 chain message" `Quick test_e1_chain;
    Alcotest.test_case "e1 guarded/waived" `Quick test_e1_guarded;
    Alcotest.test_case "typed precision" `Quick test_typed_precision;
    Alcotest.test_case "both backends dedup" `Quick test_backend_both_dedup;
    Alcotest.test_case "typed missing cmt -> T0" `Quick test_typed_missing_cmt;
    Alcotest.test_case "sarif shape" `Quick test_sarif_shape;
  ]
