open Helpers

(* The runtime-events profiler: pause histograms fill under
   allocation pressure, the span bridge round-trips through a second
   in-process cursor, and the consumer stops cleanly (no lost-wakeup
   hang).  All tests stop the consumer they start — other suites must
   not inherit a running one. *)

let spin ?(tries = 400) cond msg =
  let rec go n =
    if cond () then ()
    else if n <= 0 then Alcotest.fail msg
    else begin
      Unix.sleepf 0.005;
      go (n - 1)
    end
  in
  go tries

(* Allocation pressure that must cross minor-heap and major-slice
   boundaries: boxed floats plus an explicit full major, which shows
   up as an EV_EXPLICIT_GC_FULL_MAJOR pause on this ring. *)
let churn () =
  let junk = ref [] in
  for i = 1 to 50_000 do
    junk := float_of_int i :: !junk;
    if i mod 10_000 = 0 then junk := []
  done;
  Gc.full_major ()

let gc_pause_observations () =
  let snap = Obs.Registry.snapshot () in
  List.fold_left
    (fun acc ((name, _), h) ->
      if String.equal name "runtime.ev.gc.pause.us" then
        acc + h.Obs.Registry.count
      else acc)
    0 snap.Obs.Registry.histograms

let test_pause_soak () =
  let before = gc_pause_observations () in
  let t = Obs.Events.start ~poll_interval_s:0.001 () in
  check_true "consumer reports running" (Obs.Events.running ());
  churn ();
  (* The consumer attributes pauses within a poll interval; spin
     rather than assume one sleep suffices. *)
  spin
    (fun () ->
      churn ();
      Obs.Events.cumulative_pause_ns () > 0)
    "allocation-heavy soak produced no pauses on this domain's ring";
  spin
    (fun () -> gc_pause_observations () > before)
    "pause histograms never populated";
  check_true "top pauses recorded" (Obs.Events.top_pauses () <> []);
  check_true "top list is bounded" (List.length (Obs.Events.top_pauses ()) <= 32);
  (match Obs.Events.top_pauses () with
  | p :: _ ->
      check_true "top pause has positive duration"
        (Int64.compare p.Obs.Events.p_dur_ns 0L > 0)
  | [] -> ());
  let stats = Obs.Events.domain_stats () in
  check_true "domain stats cover this domain"
    (List.exists
       (fun (d, n, ns) -> d = (Domain.self () :> int) && n > 0 && ns > 0)
       stats);
  Obs.Events.stop t;
  check_true "stopped consumer reports not running"
    (not (Obs.Events.running ()))

let test_bridge_roundtrip () =
  let t = Obs.Events.start ~poll_interval_s:0.001 ~bridge:true () in
  let seen = ref [] in
  let tracker = Obs.Events.Tracker.create ~on_pause:(fun _ -> ()) () in
  let callbacks =
    Obs.Events.Tracker.callbacks
      ~on_span:(fun ~ring:_ ~name ~enter -> seen := (name, enter) :: !seen)
      tracker
  in
  (* A second cursor over our own ring: each cursor has its own read
     position, so this coexists with the running consumer domain. *)
  let cursor = Runtime_events.create_cursor None in
  Fun.protect
    ~finally:(fun () ->
      Runtime_events.free_cursor cursor;
      Obs.Events.stop t)
    (fun () ->
      Obs.Span.with_ ~name:"events.bridge.probe" (fun () ->
          ignore (Sys.opaque_identity (List.init 10 Fun.id)));
      spin
        (fun () ->
          ignore (Runtime_events.read_poll cursor callbacks None);
          List.mem ("events.bridge.probe", true) !seen
          && List.mem ("events.bridge.probe", false) !seen)
        "bridged span begin/end never reached the second cursor";
      (* Ring order: begin before end (list is accumulated reversed). *)
      let probe =
        List.rev
          (List.filter (fun (n, _) -> n = "events.bridge.probe") !seen)
      in
      match probe with
      | (_, true) :: rest ->
          check_true "exit follows enter" (List.mem ("events.bridge.probe", false) rest)
      | _ -> Alcotest.fail "span enter did not arrive first");
  (* Bridge uninstalled with the consumer: spans no longer reach the
     ring (write_span would need a live Runtime_events session; the
     hook must be gone regardless). *)
  Obs.Span.with_ ~name:"events.bridge.after" (fun () -> ());
  check_true "consumer stopped" (not (Obs.Events.running ()))

let test_stop_is_prompt_and_idempotent () =
  let t = Obs.Events.start ~poll_interval_s:0.05 () in
  churn ();
  let t0 = Obs.Clock.monotonic_ns () in
  Obs.Events.stop t;
  let stop_s = Obs.Clock.ns_to_us (Obs.Clock.elapsed_ns ~since:t0) /. 1e6 in
  (* Worst case is one poll interval plus the final drain; 2 s means a
     lost wakeup. *)
  check_true
    (Printf.sprintf "stop returned promptly (%.3f s)" stop_s)
    (stop_s < 2.0);
  check_true "not running after stop" (not (Obs.Events.running ()));
  (* Second stop of the same handle is a no-op. *)
  Obs.Events.stop t;
  (* The profiler restarts after a stop (fresh consumer, fresh
     per-ring clocks). *)
  let t2 = Obs.Events.start ~poll_interval_s:0.001 () in
  check_true "restart yields a running consumer" (Obs.Events.running ());
  spin
    (fun () ->
      churn ();
      Obs.Events.cumulative_pause_ns () > 0)
    "restarted consumer attributes pauses";
  Obs.Events.stop t2

let test_start_validation_and_idempotency () =
  (match Obs.Events.start ~poll_interval_s:0.0 () with
  | exception Invalid_argument _ -> ()
  | t ->
      Obs.Events.stop t;
      Alcotest.fail "non-positive poll interval accepted");
  let a = Obs.Events.start ~poll_interval_s:0.01 () in
  let b = Obs.Events.start ~poll_interval_s:0.02 () in
  check_true "second start returns the running consumer" (a == b);
  Obs.Events.stop a;
  check_true "shared handle stops both" (not (Obs.Events.running ()))

let test_ring_file_and_debug_json () =
  let file = Obs.Events.ring_file () in
  check_true "ring file is pid-named"
    (contains_substring file (string_of_int (Unix.getpid ()) ^ ".events"));
  (match Obs.Events.debug_json () with
  | Obs.Json.Obj fields ->
      check_true "idle debug json reports not running"
        (List.assoc_opt "running" fields = Some (Obs.Json.Bool false))
  | _ -> Alcotest.fail "debug_json is not an object");
  let t = Obs.Events.start () in
  (match Obs.Events.debug_json () with
  | Obs.Json.Obj fields ->
      check_true "live debug json reports running"
        (List.assoc_opt "running" fields = Some (Obs.Json.Bool true));
      check_true "live debug json names the ring file"
        (match List.assoc_opt "ring_file" fields with
        | Some (Obs.Json.String s) -> s = file
        | _ -> false)
  | _ -> Alcotest.fail "debug_json is not an object");
  Obs.Events.stop t

let suite =
  [
    case "pauses: histograms fill under allocation soak" test_pause_soak;
    case "bridge: spans round-trip through a second cursor"
      test_bridge_roundtrip;
    case "stop: prompt, idempotent, restartable"
      test_stop_is_prompt_and_idempotent;
    case "start: validation and idempotency"
      test_start_validation_and_idempotency;
    case "introspection: ring file and debug json"
      test_ring_file_and_debug_json;
  ]
