open Helpers

let ar1_vg rho variance =
  Core.Variance_growth.create ~variance ~acf:(fun k -> rho ** float_of_int k)

(* {2 Core.Admission edge cases} *)

let test_max_admissible_zero () =
  (* Capacity barely above the mean and no buffer: even one source
     misses a 1e-9 target, so the admissible region is empty. *)
  let vg = ar1_vg 0.9 5000.0 in
  check_int "empty admissible region" 0
    (Core.Admission.max_admissible vg ~mu:500.0 ~total_capacity:505.0
       ~total_buffer:0.0 ~target_clr:1e-9)

let test_max_admissible_monotone_in_buffer () =
  let vg = ar1_vg 0.9 5000.0 in
  let admissible total_buffer =
    Core.Admission.max_admissible vg ~mu:500.0 ~total_capacity:16140.0
      ~total_buffer ~target_clr:1e-6
  in
  let prev = ref 0 in
  List.iter
    (fun b ->
      let n = admissible b in
      check_true
        (Printf.sprintf "admissible N non-decreasing at B = %g" b)
        (n >= !prev);
      prev := n)
    [ 0.0; 500.0; 2000.0; 8000.0; 32000.0 ]

let test_effective_bandwidth_bounds () =
  let mu = 500.0 and variance = 5000.0 in
  let vg = ar1_vg 0.8 variance in
  let eb n =
    Core.Admission.effective_bandwidth_per_source vg ~mu ~n
      ~total_buffer:4035.0 ~target_clr:1e-6
  in
  let peak = mu +. (5.0 *. sqrt variance) in
  List.iter
    (fun n ->
      let e = eb n in
      check_true (Printf.sprintf "eb(%d) above mean" n) (e > mu);
      check_true (Printf.sprintf "eb(%d) below peak" n) (e < peak))
    [ 1; 5; 30 ];
  check_true "multiplexing gain: eb decreasing in n" (eb 30 <= eb 5 +. 1e-9)

(* {2 Decision cache} *)

let test_cache_memoises () =
  let cache = Cac.Decision_cache.create ~capacity:8 in
  let computed = ref 0 in
  let compute () =
    incr computed;
    42
  in
  check_int "first lookup computes" 42
    (Cac.Decision_cache.find_or_add cache "k" ~compute);
  check_int "second lookup cached" 42
    (Cac.Decision_cache.find_or_add cache "k" ~compute);
  check_int "computed once" 1 !computed;
  let stats = Cac.Decision_cache.stats cache in
  check_int "one hit" 1 stats.Cac.Decision_cache.hits;
  check_int "one miss" 1 stats.Cac.Decision_cache.misses

let test_cache_lru_eviction () =
  let cache = Cac.Decision_cache.create ~capacity:2 in
  let add k = ignore (Cac.Decision_cache.find_or_add cache k ~compute:(fun () -> k)) in
  add 1;
  add 2;
  add 1;
  (* touch 1: 2 becomes LRU *)
  add 3;
  check_true "evicted the LRU entry" (not (Cac.Decision_cache.mem cache 2));
  check_true "recently-used entry kept" (Cac.Decision_cache.mem cache 1);
  check_int "bounded size" 2 (Cac.Decision_cache.length cache);
  check_int "one eviction" 1
    (Cac.Decision_cache.stats cache).Cac.Decision_cache.evictions

let test_cache_capacity_zero_disables () =
  let cache = Cac.Decision_cache.create ~capacity:0 in
  let computed = ref 0 in
  for _ = 1 to 3 do
    ignore
      (Cac.Decision_cache.find_or_add cache "k" ~compute:(fun () ->
           incr computed;
           0))
  done;
  check_int "always recomputes" 3 !computed;
  check_int "stores nothing" 0 (Cac.Decision_cache.length cache)

(* {2 Engine invariants} *)

let zero_clock () = 0.0

let fresh_engine ?(cache_capacity = 4096) ?(buffer_msec = 10.0)
    ?(target_clr = 1e-6) () =
  let engine = Cac.Engine.create ~cache_capacity ~clock:zero_clock () in
  let _ =
    Cac.Engine.add_link_msec engine ~id:"oc3" ~capacity:16140.0 ~buffer_msec
      ~target_clr
  in
  engine

let test_engine_fill_matches_max_admissible () =
  let cls = Cac.Source_class.of_name_exn "dar2" in
  let engine = fresh_engine () in
  let n = Cac.Engine.fill engine ~link:"oc3" ~cls in
  let total_buffer =
    Queueing.Units.buffer_cells_of_msec ~msec:10.0
      ~service_cells_per_frame:16140.0 ~ts:Traffic.Models.ts
  in
  let expected =
    Core.Admission.max_admissible cls.Cac.Source_class.vg
      ~mu:(Cac.Source_class.mean cls) ~total_capacity:16140.0 ~total_buffer
      ~target_clr:1e-6
  in
  check_int "fill reproduces max_admissible" expected n;
  check_true "something admitted" (n > 0)

let test_engine_never_exceeds_capacity () =
  let cls = Cac.Source_class.of_name_exn "dar1" in
  let engine = fresh_engine () in
  let _ = Cac.Engine.fill engine ~link:"oc3" ~cls in
  let link = Cac.Engine.link engine "oc3" in
  check_true "mean load strictly below capacity"
    (Cac.Link.mean_load link < Cac.Link.capacity link);
  check_true "utilization below 1" (Cac.Link.utilization link < 1.0);
  (* Saturated: one more of the same class must be rejected. *)
  (match Cac.Engine.admit engine ~link:"oc3" ~cls with
  | Cac.Engine.Rejected _ -> ()
  | Cac.Engine.Admitted _ -> Alcotest.fail "admitted past the boundary")

let test_engine_release_restores_state () =
  let cls = Cac.Source_class.of_name_exn "dar2" in
  let engine = fresh_engine () in
  let conns = ref [] in
  let rec fill () =
    match Cac.Engine.admit engine ~link:"oc3" ~cls with
    | Cac.Engine.Admitted conn ->
        conns := conn :: !conns;
        fill ()
    | Cac.Engine.Rejected _ -> ()
  in
  fill ();
  let n_max = List.length !conns in
  let link = Cac.Engine.link engine "oc3" in
  check_int "bookkeeping matches" n_max (Cac.Link.connections link);
  check_true "saturated" (not (Cac.Engine.would_admit engine ~link:"oc3" ~cls));
  (* Release one connection: exactly one slot reopens. *)
  Cac.Engine.release engine ~conn:(List.hd !conns);
  check_int "one slot freed" (n_max - 1) (Cac.Link.connections link);
  check_true "admissible again" (Cac.Engine.would_admit engine ~link:"oc3" ~cls);
  (match Cac.Engine.admit engine ~link:"oc3" ~cls with
  | Cac.Engine.Admitted _ -> ()
  | Cac.Engine.Rejected _ -> Alcotest.fail "slot not reopened");
  check_true "saturated again"
    (not (Cac.Engine.would_admit engine ~link:"oc3" ~cls));
  (* Release everything: the link is exactly empty. *)
  List.iter
    (fun conn ->
      match Cac.Engine.connection engine conn with
      | Some _ -> Cac.Engine.release engine ~conn
      | None -> ())
    (List.tl !conns);
  (* The replacement connection is still up. *)
  check_int "one connection left" 1 (Cac.Link.connections link)

let test_engine_cached_equals_uncached () =
  (* The decision must not depend on whether it was computed or
     recalled: replay the same workload through a caching and a
     cache-disabled engine and compare every outcome. *)
  let mix =
    [
      (Cac.Source_class.of_name_exn "dar1", 2.0);
      (Cac.Source_class.of_name_exn "dar3", 1.0);
    ]
  in
  let spec =
    Cac.Workload.spec ~arrival_rate:0.5 ~mean_holding:50.0 ~requests:800 ~mix ()
  in
  let replay ~cache_capacity =
    let engine = fresh_engine ~cache_capacity () in
    Cac.Workload.run engine ~link:"oc3" spec (Numerics.Rng.create ~seed:11)
  in
  let cached = replay ~cache_capacity:4096 in
  let uncached = replay ~cache_capacity:0 in
  check_int "same admits" cached.Cac.Workload.admitted
    uncached.Cac.Workload.admitted;
  check_int "same rejects" cached.Cac.Workload.rejected
    uncached.Cac.Workload.rejected;
  check_int "same final occupancy" cached.Cac.Workload.final_occupancy
    uncached.Cac.Workload.final_occupancy;
  check_close ~tol:0.0 "same mean occupancy"
    cached.Cac.Workload.mean_occupancy uncached.Cac.Workload.mean_occupancy;
  check_true "cache was exercised" (cached.Cac.Workload.cache_hit_rate > 0.5);
  check_close ~tol:0.0 "uncached path never hits" 0.0
    uncached.Cac.Workload.cache_hit_rate

let test_engine_verdict_stable_across_repeats () =
  let cls = Cac.Source_class.of_name_exn "dar1" in
  let engine = fresh_engine () in
  let v1 = Cac.Engine.evaluate engine ~link:"oc3" ~cls in
  let v2 = Cac.Engine.evaluate engine ~link:"oc3" ~cls in
  check_true "hit and miss verdicts identical" (v1 = v2)

let test_engine_heterogeneous_mix () =
  let dar1 = Cac.Source_class.of_name_exn "dar1" in
  let dar2 = Cac.Source_class.of_name_exn "dar2" in
  let engine = fresh_engine () in
  (match Cac.Engine.admit engine ~link:"oc3" ~cls:dar1 with
  | Cac.Engine.Admitted _ -> ()
  | Cac.Engine.Rejected _ -> Alcotest.fail "first connection rejected");
  (match Cac.Engine.admit engine ~link:"oc3" ~cls:dar2 with
  | Cac.Engine.Admitted _ -> ()
  | Cac.Engine.Rejected _ -> Alcotest.fail "second class rejected");
  let verdict = Cac.Engine.evaluate engine ~link:"oc3" ~cls:dar2 in
  check_true "mixed links use the effective-bandwidth path"
    (verdict.Cac.Engine.required_bw <> None);
  let link = Cac.Engine.link engine "oc3" in
  check_int "two classes tracked" 2 (List.length (Cac.Link.counts link));
  check_int "two connections" 2 (Cac.Link.connections link);
  check_close ~tol:1e-9 "mean load adds up"
    (Cac.Source_class.mean dar1 +. Cac.Source_class.mean dar2)
    (Cac.Link.mean_load link)

let test_engine_metrics_consistency () =
  let cls = Cac.Source_class.of_name_exn "dar1" in
  let engine = fresh_engine () in
  let spec =
    Cac.Workload.spec ~arrival_rate:0.6 ~mean_holding:50.0 ~requests:500
      ~mix:[ (cls, 1.0) ] ()
  in
  let result =
    Cac.Workload.run engine ~link:"oc3" spec (Numerics.Rng.create ~seed:3)
  in
  let m = Cac.Engine.metrics engine in
  check_int "metrics admits" result.Cac.Workload.admitted (Cac.Metrics.admits m);
  check_int "metrics rejects" result.Cac.Workload.rejected
    (Cac.Metrics.rejects m);
  check_int "every request decided" 500 (Cac.Metrics.decisions m);
  check_close ~tol:1e-12 "blocking probability"
    result.Cac.Workload.blocking
    (Cac.Metrics.blocking_probability m);
  check_int "latency histogram complete" 500
    (Stats.Histogram.total (Cac.Metrics.latency_histogram m))

let test_workload_deterministic () =
  let cls = Cac.Source_class.of_name_exn "dar2" in
  let spec =
    Cac.Workload.spec ~arrival_rate:0.6 ~mean_holding:40.0 ~requests:1000
      ~mix:[ (cls, 1.0) ] ()
  in
  let replay seed =
    let engine = fresh_engine () in
    Cac.Workload.run engine ~link:"oc3" spec (Numerics.Rng.create ~seed)
  in
  let a = replay 5 and b = replay 5 and c = replay 6 in
  check_true "same seed, same replay"
    (a.Cac.Workload.admitted = b.Cac.Workload.admitted
    && a.Cac.Workload.mean_occupancy = b.Cac.Workload.mean_occupancy
    && a.Cac.Workload.duration = b.Cac.Workload.duration);
  check_true "different seed, different replay"
    (a.Cac.Workload.duration <> c.Cac.Workload.duration)

let test_workload_steady_state_cache_hits () =
  let cls = Cac.Source_class.of_name_exn "dar1" in
  let engine = fresh_engine () in
  let spec =
    Cac.Workload.spec ~arrival_rate:0.6 ~mean_holding:50.0 ~requests:3000
      ~mix:[ (cls, 1.0) ] ()
  in
  let result =
    Cac.Workload.run engine ~link:"oc3" spec (Numerics.Rng.create ~seed:17)
  in
  check_true "steady-state cache hit rate >= 90%"
    (result.Cac.Workload.steady_cache_hit_rate >= 0.9);
  check_true "blocking in [0, 1]"
    (result.Cac.Workload.blocking >= 0.0 && result.Cac.Workload.blocking <= 1.0)

let test_sweep_parallel_equals_sequential () =
  let scenarios =
    Cac.Sweep.grid ~requests:400 ~class_names:[ "dar1"; "dar2" ]
      ~buffers_msec:[ 5.0; 10.0 ] ~target_clrs:[ 1e-6 ] ()
  in
  let sequential = Cac.Sweep.run ~domains:1 scenarios in
  let parallel = Cac.Sweep.run ~domains:4 scenarios in
  check_int "same row count" (Array.length sequential) (Array.length parallel);
  Array.iteri
    (fun i seq ->
      check_true
        (Printf.sprintf "row %d identical under parallelism" i)
        (seq = parallel.(i)))
    sequential;
  Array.iter
    (fun row ->
      check_true "sweep admitted something" (row.Cac.Sweep.n_max > 0);
      match row.Cac.Sweep.cache_hit_rate with
      | Some h -> check_true "sweep replay hit rate sane" (h >= 0.0 && h <= 1.0)
      | None -> Alcotest.fail "sweep replay missing")
    (Cac.Sweep.rows sequential);
  check_int "no failed scenarios" 0
    (List.length (Cac.Sweep.failures sequential))

(* Worker domains must restore the submitting domain's trace context:
   every [cac.sweep.task] span emitted by a parallel run carries the
   caller's trace id in the JSONL sink. *)
let test_sweep_trace_inheritance () =
  let scenarios =
    Cac.Sweep.grid ~class_names:[ "dar1" ] ~buffers_msec:[ 5.0; 10.0 ]
      ~target_clrs:[ 1e-6; 1e-9 ] ()
  in
  let trace = Obs.Trace.generate () in
  let path = Filename.temp_file "sweep_trace" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () ->
      Obs.Span.set_trace_sink Obs.Sink.Null;
      close_out_noerr oc)
    (fun () ->
      Obs.Span.set_trace_sink (Obs.Sink.Jsonl oc);
      Obs.Trace.with_context trace (fun () ->
          ignore (Cac.Sweep.run ~domains:3 scenarios)));
  let lines = ref [] in
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      try
        while true do
          lines := input_line ic :: !lines
        done
      with End_of_file -> ());
  let task_spans =
    List.filter_map
      (fun line ->
        match Obs.Json.of_string line with
        | Some j
          when Obs.Json.member "name" j
               = Some (Obs.Json.String "cac.sweep.task") ->
            Some j
        | _ -> None)
      !lines
  in
  check_int "one task span per scenario" (List.length scenarios)
    (List.length task_spans);
  List.iter
    (fun span ->
      check_true "task span carries the submitter's trace id"
        (Obs.Json.member "trace" span
        = Some (Obs.Json.String trace.Obs.Trace.trace_id)))
    task_spans

let test_sweep_grid_shape () =
  let scenarios =
    Cac.Sweep.grid ~class_names:[ "dar1"; "l" ] ~buffers_msec:[ 10.0; 20.0; 30.0 ]
      ~target_clrs:[ 1e-6; 1e-9 ] ()
  in
  check_int "cartesian product" 12 (List.length scenarios);
  let seeds = List.map (fun s -> s.Cac.Sweep.seed) scenarios in
  check_int "per-scenario seeds distinct"
    (List.length seeds)
    (List.length (List.sort_uniq Int.compare seeds))

let suite =
  [
    case "max_admissible empty region" test_max_admissible_zero;
    case "max_admissible monotone in buffer" test_max_admissible_monotone_in_buffer;
    case "effective bandwidth bounds" test_effective_bandwidth_bounds;
    case "cache memoises" test_cache_memoises;
    case "cache LRU eviction" test_cache_lru_eviction;
    case "cache capacity 0 disables" test_cache_capacity_zero_disables;
    case "fill matches max_admissible" test_engine_fill_matches_max_admissible;
    case "never exceeds capacity" test_engine_never_exceeds_capacity;
    case "release restores state" test_engine_release_restores_state;
    case "cached = uncached decisions" test_engine_cached_equals_uncached;
    case "verdict stable across repeats" test_engine_verdict_stable_across_repeats;
    case "heterogeneous mix" test_engine_heterogeneous_mix;
    case "metrics consistency" test_engine_metrics_consistency;
    case "workload deterministic" test_workload_deterministic;
    case "steady-state cache hits" test_workload_steady_state_cache_hits;
    case "sweep parallel = sequential" test_sweep_parallel_equals_sequential;
    case "sweep trace inheritance" test_sweep_trace_inheritance;
    case "sweep grid shape" test_sweep_grid_shape;
  ]
