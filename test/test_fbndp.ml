open Helpers

let ts = 0.04

let test_of_target_roundtrip () =
  let p = Traffic.Fbndp.of_target ~alpha:0.8 ~lambda:6250.0 ~t0:0.002566 ~m:15 in
  check_close_rel ~tol:1e-9 "lambda recovered" 6250.0 (Traffic.Fbndp.lambda p);
  check_close_rel ~tol:1e-9 "T0 recovered" 0.002566
    (Traffic.Fbndp.fractal_onset_time p);
  check_close ~tol:1e-12 "hurst" 0.9 (Traffic.Fbndp.hurst p)

let test_of_moments () =
  let p =
    Traffic.Fbndp.of_moments ~alpha:0.8 ~mean:250.0 ~variance:2500.0 ~m:15 ~ts
  in
  check_close_rel ~tol:1e-9 "frame mean" 250.0 (Traffic.Fbndp.frame_mean p ~ts);
  check_close_rel ~tol:1e-9 "frame variance" 2500.0
    (Traffic.Fbndp.frame_variance p ~ts)

let test_table1_z_anchor () =
  (* Paper Table 1: Z^a FBNDP component has lambda 6250 cells/s and
     T0 = 2.57 msec at alpha = 0.8, M = 15. *)
  let p =
    Traffic.Fbndp.of_moments ~alpha:0.8 ~mean:250.0 ~variance:2500.0 ~m:15 ~ts
  in
  check_close_rel ~tol:1e-6 "lambda = 6250" 6250.0 (Traffic.Fbndp.lambda p);
  check_close ~tol:0.01 "T0 = 2.57 msec" 2.57
    (Traffic.Fbndp.fractal_onset_time p *. 1000.0)

let test_table1_v_anchor () =
  (* V^1: alpha = 0.9, T0 = 3.48 msec. *)
  let p =
    Traffic.Fbndp.of_moments ~alpha:0.9 ~mean:250.0 ~variance:2500.0 ~m:15 ~ts
  in
  check_close ~tol:0.01 "T0 = 3.48 msec" 3.48
    (Traffic.Fbndp.fractal_onset_time p *. 1000.0)

let test_acf_form () =
  let p =
    Traffic.Fbndp.of_moments ~alpha:0.8 ~mean:250.0 ~variance:2500.0 ~m:15 ~ts
  in
  check_close ~tol:1e-12 "r(0) = 1" 1.0 (Traffic.Fbndp.frame_acf p ~ts 0);
  (* r(k) = g * (1/2) nabla^2 k^(alpha+1), exact-LRD form. *)
  let g = Traffic.Fbndp.g_factor p ~ts in
  let expected k =
    let e = 1.8 in
    let kf = float_of_int k in
    g *. 0.5 *. (((kf +. 1.0) ** e) -. (2.0 *. (kf ** e)) +. ((kf -. 1.0) ** e))
  in
  for k = 1 to 50 do
    check_close ~tol:1e-12
      (Printf.sprintf "acf lag %d" k)
      (expected k)
      (Traffic.Fbndp.frame_acf p ~ts k)
  done;
  (* g = (var/mean - 1) / (var/mean) = 9/10 here. *)
  check_close ~tol:1e-9 "g factor" 0.9 g

let test_acf_powerlaw_tail () =
  let p =
    Traffic.Fbndp.of_moments ~alpha:0.8 ~mean:250.0 ~variance:2500.0 ~m:15 ~ts
  in
  (* r(k) ~ g H (2H-1) k^(2H-2): ratio r(2k)/r(k) -> 2^(alpha-1). *)
  let r = Traffic.Fbndp.frame_acf p ~ts in
  let ratio = r 2000 /. r 1000 in
  check_close ~tol:1e-3 "tail decay exponent" (2.0 ** (0.8 -. 1.0)) ratio

let test_simulated_moments () =
  let p =
    Traffic.Fbndp.of_moments ~alpha:0.8 ~mean:250.0 ~variance:2500.0 ~m:15 ~ts
  in
  let process = Traffic.Fbndp.process p ~ts in
  let x = Traffic.Process.generate process (rng ~seed:91 ()) 60_000 in
  let s = Stats.Descriptive.summarize x in
  (* LRD series: sample means converge like n^(H-1), so tolerances are
     necessarily loose. *)
  check_close_rel ~tol:0.12 "simulated mean" 250.0 s.Stats.Descriptive.mean;
  check_close_rel ~tol:0.3 "simulated variance" 2500.0
    s.Stats.Descriptive.variance

let test_simulated_short_acf () =
  let p =
    Traffic.Fbndp.of_moments ~alpha:0.8 ~mean:250.0 ~variance:2500.0 ~m:15 ~ts
  in
  let process = Traffic.Fbndp.process p ~ts in
  let x = Traffic.Process.generate process (rng ~seed:93 ()) 120_000 in
  let sample = Stats.Acf.autocorrelation_fft x ~max_lag:3 in
  for k = 1 to 3 do
    check_close ~tol:0.05
      (Printf.sprintf "simulated acf lag %d" k)
      (Traffic.Fbndp.frame_acf p ~ts k)
      sample.(k)
  done

let test_counts_nonnegative_integers () =
  let p =
    Traffic.Fbndp.of_moments ~alpha:0.7 ~mean:100.0 ~variance:900.0 ~m:10 ~ts
  in
  let process = Traffic.Fbndp.process p ~ts in
  let next = process.Traffic.Process.spawn (rng ~seed:95 ()) in
  for _ = 1 to 5_000 do
    let v = next () in
    check_true "integer count" (Float.equal (Float.rem v 1.0) 0.0);
    check_true "non-negative" (v >= 0.0)
  done

let test_invalid () =
  Alcotest.check_raises "variance below poisson floor"
    (Invalid_argument
       "Fbndp: frame variance must exceed the Poisson floor (mean)")
    (fun () ->
      ignore
        (Traffic.Fbndp.of_moments ~alpha:0.8 ~mean:100.0 ~variance:50.0 ~m:5 ~ts))

let suite =
  [
    case "of_target roundtrip" test_of_target_roundtrip;
    case "of_moments" test_of_moments;
    case "Table 1 anchor: Z component" test_table1_z_anchor;
    case "Table 1 anchor: V component" test_table1_v_anchor;
    case "exact-LRD acf form" test_acf_form;
    case "power-law tail exponent" test_acf_powerlaw_tail;
    slow_case "simulated moments" test_simulated_moments;
    slow_case "simulated short-lag acf" test_simulated_short_acf;
    case "counts are non-negative integers" test_counts_nonnegative_integers;
    case "invalid moments rejected" test_invalid;
    qcheck ~count:30 "acf decreasing and positive"
      QCheck2.Gen.(float_range 0.55 0.95)
      (fun alpha ->
        let p =
          Traffic.Fbndp.of_moments ~alpha ~mean:250.0 ~variance:2500.0 ~m:15 ~ts
        in
        let r = Traffic.Fbndp.frame_acf p ~ts in
        let ok = ref true in
        for k = 1 to 100 do
          if not (r k > 0.0 && r k <= r (Stdlib.max 1 (k - 1)) +. 1e-12) then
            ok := false
        done;
        !ok);
  ]
