open Helpers

(* Every test leaves the process-wide fault registry disarmed: the
   suites after this one must run fault-free. *)
let with_faults ?seed rules f =
  (match Resilience.Fault.parse rules with
  | Ok rs -> Resilience.Fault.configure ?seed rs
  | Error msg -> Alcotest.failf "bad fault spec %S: %s" rules msg);
  Fun.protect ~finally:Resilience.Fault.clear f

(* {2 Fault specs} *)

let test_fault_parse_roundtrip () =
  let spec = "bahadur_rao.evaluate=nan:0.01,cac.sweep.task=raise:0.2" in
  match Resilience.Fault.parse spec with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok rules ->
      check_int "two rules" 2 (List.length rules);
      check_true "roundtrip"
        (Resilience.Fault.to_string rules = spec);
      (match Resilience.Fault.parse "" with
      | Ok [] -> ()
      | _ -> Alcotest.fail "empty spec should parse to no rules");
      (match
         Resilience.Fault.parse "bahadur_rao.evaluate=latency:1:250"
       with
      | Ok [ { Resilience.Fault.kind = Latency_us us; rate; _ } ] ->
          check_close "latency param" 250.0 us;
          check_close "rate" 1.0 rate
      | Ok _ -> Alcotest.fail "expected one latency rule"
      | Error msg -> Alcotest.failf "latency rule rejected: %s" msg)

let test_fault_parse_rejects () =
  let rejected s =
    match Resilience.Fault.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "spec %S should be rejected" s
  in
  rejected "no_such.point=raise";
  rejected "bahadur_rao.evaluate=frobnicate";
  (* nan only makes sense at float-valued points *)
  rejected "cac.sweep.task=nan";
  rejected "bahadur_rao.evaluate=raise:0";
  rejected "bahadur_rao.evaluate=raise:1.5";
  rejected "bahadur_rao.evaluate"

let test_fault_deterministic_stream () =
  let fire_pattern () =
    Resilience.Fault.reseed 2024;
    List.init 64 (fun _ ->
        match Resilience.Fault.inject "cac.workload.admit" with
        | () -> false
        | exception Resilience.Fault.Injected _ -> true)
  in
  with_faults ~seed:2024 "cac.workload.admit=raise:0.4" @@ fun () ->
  let first = fire_pattern () in
  let second = fire_pattern () in
  check_true "some faults fired" (List.mem true first);
  check_true "some calls survived" (List.mem false first);
  check_true "same seed, same firing sequence" (first = second)

let test_fault_disarmed_is_noop () =
  Resilience.Fault.clear ();
  check_true "inactive" (not (Resilience.Fault.active ()));
  Resilience.Fault.inject "cac.workload.admit";
  check_close "inject_float passes through" 3.5
    (Resilience.Fault.inject_float "bahadur_rao.evaluate" (fun () -> 3.5))

(* {2 Guard combinators} *)

let test_guard_finite () =
  check_close "finite passes" 1.5 (Resilience.Guard.finite ~label:"t" 1.5);
  let non_finite x =
    match Resilience.Guard.finite ~label:"t" x with
    | _ -> Alcotest.failf "%g should raise Non_finite" x
    | exception Resilience.Guard.Non_finite _ -> ()
  in
  non_finite Float.nan;
  non_finite Float.infinity;
  non_finite Float.neg_infinity

let test_guard_protect () =
  check_int "protect passes results" 7
    (Resilience.Guard.protect ~label:"t"
       ~fallback:(fun _ -> -1)
       (fun () -> 7));
  check_int "protect absorbs into fallback" (-1)
    (Resilience.Guard.protect ~label:"t"
       ~fallback:(fun _ -> -1)
       (fun () -> failwith "boom"))

let test_guard_retry () =
  let attempts = ref 0 in
  let flaky fail_times () =
    incr attempts;
    if !attempts <= fail_times then failwith "flaky";
    !attempts
  in
  attempts := 0;
  check_int "retry covers two failures" 3
    (Resilience.Guard.retry ~max_retries:2 ~label:"t" (flaky 2));
  attempts := 0;
  (match Resilience.Guard.retry ~max_retries:1 ~label:"t" (flaky 2) with
  | _ -> Alcotest.fail "should exhaust retries"
  | exception Failure _ -> ());
  check_int "retry stops after max_retries + 1 attempts" 2 !attempts

let test_guard_budget () =
  let b = Resilience.Guard.Budget.create ~label:"t" 3 in
  Resilience.Guard.Budget.tick b;
  Resilience.Guard.Budget.tick b;
  check_int "one ticket left" 1 (Resilience.Guard.Budget.remaining b);
  Resilience.Guard.Budget.tick b;
  check_true "exhausted" (Resilience.Guard.Budget.exhausted b);
  (match Resilience.Guard.Budget.tick b with
  | () -> Alcotest.fail "tick past the budget should raise"
  | exception Resilience.Guard.Budget_exhausted _ -> ());
  let unlimited = Resilience.Guard.Budget.create (-1) in
  for _ = 1 to 1000 do
    Resilience.Guard.Budget.tick unlimited
  done;
  check_true "negative limit is unlimited"
    (not (Resilience.Guard.Budget.exhausted unlimited))

let test_breaker_lifecycle () =
  let open Resilience.Guard.Breaker in
  let b = create ~threshold:2 ~cooldown:3 ~label:"t" () in
  let ok () = call b (fun () -> 1) in
  let boom () = call b (fun () -> failwith "kernel") in
  check_true "starts closed" (state b = Closed);
  check_true "healthy call passes" (ok () = Ok 1);
  (* Two consecutive failures trip it. *)
  (match boom () with
  | Error (Failed (Failure _)) -> ()
  | _ -> Alcotest.fail "first failure should surface the exception");
  check_true "one failure is not a trip" (state b = Closed);
  ignore (boom ());
  check_true "threshold consecutive failures open it" (state b = Open);
  check_int "one trip recorded" 1 (trips b);
  (* The cooldown fast-fails without running the thunk. *)
  let ran = ref false in
  for _ = 1 to 3 do
    match
      call b (fun () ->
          ran := true;
          0)
    with
    | Error Tripped -> ()
    | _ -> Alcotest.fail "cooldown call should fast-fail"
  done;
  check_true "fast-fails never ran the thunk" (not !ran);
  check_true "cooldown spent: half-open" (state b = Half_open);
  (* Failed probe re-opens; successful probe recovers. *)
  ignore (boom ());
  check_true "failed probe re-trips" (state b = Open);
  check_int "second trip recorded" 2 (trips b);
  for _ = 1 to 3 do
    ignore (call b (fun () -> 0))
  done;
  check_true "half-open again" (state b = Half_open);
  check_true "successful probe closes" (ok () = Ok 1);
  check_true "recovered" (state b = Closed);
  check_int "failure streak reset" 0 (consecutive_failures b);
  (* A success between failures resets the streak: no trip. *)
  ignore (boom ());
  ignore (ok ());
  ignore (boom ());
  check_true "streak interrupted, still closed" (state b = Closed)

(* Wall-clock mode: the cooldown elapses by time, not by absorbed
   calls — the long-running-server configuration.  Not replay-
   deterministic, so the sleeps here are real (and kept tiny). *)
let test_breaker_wall_clock () =
  let open Resilience.Guard.Breaker in
  (match create ~cooldown_s:(-1.0) () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative cooldown_s accepted");
  (match create ~cooldown_s:Float.nan () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "nan cooldown_s accepted");
  let b = create ~threshold:1 ~cooldown_s:0.05 ~label:"t" () in
  check_true "created in wall-clock mode" (wall_clock b);
  check_true "eval-count breakers report no wall cooldown"
    (not (wall_clock (create ())));
  check_true "no cooldown while closed" (cooldown_remaining_s b = None);
  (match call b (fun () -> failwith "kernel") with
  | Error (Failed (Failure _)) -> ()
  | _ -> Alcotest.fail "first failure should surface the exception");
  check_true "threshold 1: a single failure trips" (state b = Open);
  (match cooldown_remaining_s b with
  | Some r -> check_true "cooldown counting down" (r >= 0.0 && r <= 0.05)
  | None -> Alcotest.fail "open wall-clock breaker must report remaining");
  (* inside the cooldown window: fast-fail, thunk never runs *)
  let ran = ref false in
  (match
     call b (fun () ->
         ran := true;
         0)
   with
  | Error Tripped -> ()
  | _ -> Alcotest.fail "call inside the cooldown should fast-fail");
  check_true "fast-fail never ran the thunk" (not !ran);
  check_true "still open" (state b = Open);
  (* past the window: the next call is the probe, and it recovers *)
  Unix.sleepf 0.06;
  check_true "cooldown spent" (cooldown_remaining_s b = Some 0.0);
  check_true "probe runs and closes" (call b (fun () -> 1) = Ok 1);
  check_true "recovered" (state b = Closed);
  check_true "closed again: no cooldown" (cooldown_remaining_s b = None);
  (* a failing probe re-trips and restarts the clock *)
  ignore (call b (fun () -> failwith "kernel"));
  check_true "re-tripped" (state b = Open);
  Unix.sleepf 0.06;
  (match call b (fun () -> failwith "kernel") with
  | Error (Failed (Failure _)) -> ()
  | _ -> Alcotest.fail "due probe should run (and here, fail)");
  check_true "failed probe re-opens" (state b = Open);
  (match cooldown_remaining_s b with
  | Some r -> check_true "fresh cooldown restarted" (r > 0.0)
  | None -> Alcotest.fail "re-opened breaker must report remaining")

(* {2 Fail-closed engine degradation} *)

let engine_with_link ?(capacity = 16140.0) ?max_retries ?breaker_threshold
    ?breaker_cooldown () =
  let engine =
    Cac.Engine.create ?max_retries ?breaker_threshold ?breaker_cooldown
      ~clock:(fun () -> 0.0)
      ()
  in
  ignore
    (Cac.Engine.add_link_msec engine ~id:"link" ~capacity ~buffer_msec:20.0
       ~target_clr:1e-6);
  engine

let test_engine_degrades_on_nan () =
  let cls = Cac.Source_class.of_name_exn "dar3" in
  let engine = engine_with_link () in
  with_faults ~seed:5 "bahadur_rao.evaluate=nan" @@ fun () ->
  let v = Cac.Engine.evaluate engine ~link:"link" ~cls in
  check_true "degraded" v.Cac.Engine.degraded;
  check_true "peak-rate admit for one connection" v.Cac.Engine.admissible;
  (match v.Cac.Engine.required_bw with
  | Some bw -> check_close ~tol:1e-9 "allocates the class peak rate"
      (Cac.Source_class.peak cls) bw
  | None -> Alcotest.fail "degraded verdict must report its allocation");
  check_true "no BOP from a degraded decision"
    (Option.is_none v.Cac.Engine.log10_bop)

let test_engine_degraded_never_fails_open () =
  (* The chaos invariant: under total kernel failure the engine admits
     exactly what peak-rate allocation affords, never more. *)
  let cls = Cac.Source_class.of_name_exn "z0.975" in
  let capacity = 16140.0 in
  let peak_limit = int_of_float (capacity /. Cac.Source_class.peak cls) in
  let degraded_n =
    with_faults ~seed:5 "bahadur_rao.evaluate=raise" @@ fun () ->
    let engine = engine_with_link ~capacity () in
    Cac.Engine.fill engine ~link:"link" ~cls
  in
  check_int "degraded fill = peak-rate boundary" peak_limit degraded_n;
  let clean_n =
    let engine = engine_with_link ~capacity () in
    Cac.Engine.fill engine ~link:"link" ~cls
  in
  check_true "fail-closed: degraded admits no more than the healthy test"
    (degraded_n <= clean_n)

let test_engine_breaker_opens_and_recovers () =
  let cls = Cac.Source_class.of_name_exn "dar1" in
  let engine = engine_with_link ~breaker_threshold:2 ~breaker_cooldown:2 () in
  with_faults ~seed:5 "bahadur_rao.evaluate=raise" @@ fun () ->
  (* Each evaluate is one breaker failure (retries happen inside). *)
  ignore (Cac.Engine.evaluate engine ~link:"link" ~cls);
  ignore (Cac.Engine.evaluate engine ~link:"link" ~cls);
  check_true "breaker open after threshold failures"
    (Cac.Engine.breaker_state engine ~link:"link" ~cls
    = Some Resilience.Guard.Breaker.Open);
  (* Open: decisions still answer (degraded), without touching the
     kernel; spend the cooldown. *)
  ignore (Cac.Engine.evaluate engine ~link:"link" ~cls);
  ignore (Cac.Engine.evaluate engine ~link:"link" ~cls);
  check_true "half-open after the cooldown"
    (Cac.Engine.breaker_state engine ~link:"link" ~cls
    = Some Resilience.Guard.Breaker.Half_open);
  Resilience.Fault.clear ();
  let v = Cac.Engine.evaluate engine ~link:"link" ~cls in
  check_true "healthy probe yields a clean verdict"
    (not v.Cac.Engine.degraded);
  check_true "breaker recovered"
    (Cac.Engine.breaker_state engine ~link:"link" ~cls
    = Some Resilience.Guard.Breaker.Closed)

let test_engine_deterministic_replay () =
  let run () =
    with_faults ~seed:99 "bahadur_rao.evaluate=raise:0.3" @@ fun () ->
    Resilience.Fault.reseed 99;
    let cls = Cac.Source_class.of_name_exn "dar3" in
    let engine = engine_with_link ~max_retries:0 () in
    (* Admit after each verdict so every decision sees fresh state (a
       fresh cache key) and stays exposed to the armed fault. *)
    let verdicts =
      List.init 40 (fun _ ->
          let v = Cac.Engine.evaluate engine ~link:"link" ~cls in
          ignore (Cac.Engine.admit engine ~link:"link" ~cls);
          (v.Cac.Engine.admissible, v.Cac.Engine.degraded))
    in
    (verdicts, Cac.Engine.active_connections engine)
  in
  let first = run () in
  let second = run () in
  check_true "same seed + spec reproduce identical decisions"
    (first = second);
  check_true "faults actually degraded something"
    (List.exists snd (fst first))

let test_cache_not_poisoned () =
  (* A raising compute must leave no entry behind... *)
  let cache = Cac.Decision_cache.create ~capacity:8 in
  (match
     Cac.Decision_cache.find_or_add cache "k" ~compute:(fun () ->
         failwith "compute died")
   with
  | _ -> Alcotest.fail "failing compute should raise"
  | exception Failure _ -> ());
  check_true "no entry cached for the failed compute"
    (not (Cac.Decision_cache.mem cache "k"));
  check_int "recovered compute lands" 42
    (Cac.Decision_cache.find_or_add cache "k" ~compute:(fun () -> 42));
  (* ...and at the engine level, a NaN-corrupted kernel value must not
     be replayed from the cache once the fault clears. *)
  let cls = Cac.Source_class.of_name_exn "dar3" in
  let engine = engine_with_link () in
  (with_faults ~seed:5 "bahadur_rao.evaluate=nan" @@ fun () ->
   let v = Cac.Engine.evaluate engine ~link:"link" ~cls in
   check_true "corrupted evaluation degraded" v.Cac.Engine.degraded);
  let v = Cac.Engine.evaluate engine ~link:"link" ~cls in
  check_true "post-fault verdict is clean" (not v.Cac.Engine.degraded);
  (match v.Cac.Engine.log10_bop with
  | Some bop -> check_true "clean BOP is finite" (Float.is_finite bop)
  | None -> Alcotest.fail "healthy homogeneous verdict must carry a BOP")

(* {2 Crash-proof workload and sweep} *)

let test_workload_counts_errors () =
  let cls = Cac.Source_class.of_name_exn "dar1" in
  let spec =
    Cac.Workload.spec ~arrival_rate:0.2 ~requests:400 ~mix:[ (cls, 1.0) ] ()
  in
  with_faults ~seed:11 "cac.workload.admit=raise:0.2" @@ fun () ->
  let engine = engine_with_link () in
  let result =
    Cac.Workload.run engine ~link:"link" spec (Numerics.Rng.create ~seed:11)
  in
  check_true "errors counted" (result.Cac.Workload.errors > 0);
  check_int "every request accounted" 400
    (result.Cac.Workload.admitted + result.Cac.Workload.rejected
    + result.Cac.Workload.errors);
  check_true "errors are fail-closed: they count as blocking"
    (result.Cac.Workload.blocking
    >= float_of_int result.Cac.Workload.errors /. 400.0)

let test_workload_spec_validation () =
  let cls = Cac.Source_class.of_name_exn "dar1" in
  let rejected label f =
    match f () with
    | _ -> Alcotest.failf "%s should be rejected" label
    | exception Invalid_argument _ -> ()
  in
  rejected "nan arrival rate" (fun () ->
      Cac.Workload.spec ~arrival_rate:Float.nan ~requests:10
        ~mix:[ (cls, 1.0) ] ());
  rejected "zero arrival rate" (fun () ->
      Cac.Workload.spec ~arrival_rate:0.0 ~requests:10 ~mix:[ (cls, 1.0) ] ());
  rejected "infinite holding time" (fun () ->
      Cac.Workload.spec ~mean_holding:Float.infinity ~arrival_rate:1.0
        ~requests:10 ~mix:[ (cls, 1.0) ] ())

let sweep_scenarios () =
  Cac.Sweep.grid ~requests:0 ~seed:31
    ~class_names:[ "dar1"; "l" ]
    ~buffers_msec:[ 10.0; 20.0 ]
    ~target_clrs:[ 1e-6 ] ()

let test_sweep_survives_faults () =
  with_faults ~seed:31 "cac.sweep.task=raise:0.5" @@ fun () ->
  let outcomes = Cac.Sweep.run ~domains:2 ~task_retries:0 (sweep_scenarios ()) in
  check_int "one outcome per scenario" 4 (Array.length outcomes);
  let failed = Cac.Sweep.failures outcomes in
  check_true "the armed faults killed at least one task" (failed <> []);
  check_true "and not all of them"
    (Array.length (Cac.Sweep.rows outcomes) > 0);
  List.iter
    (fun f ->
      check_true "failure names the injected fault"
        (contains_substring f.Cac.Sweep.error "cac.sweep.task");
      check_int "retries were disabled" 1 f.Cac.Sweep.attempts)
    failed;
  (* Determinism across domain counts: per-task reseeding makes the
     fault pattern a function of the scenario, not the scheduler. *)
  let sequential =
    Cac.Sweep.run ~domains:1 ~task_retries:0 (sweep_scenarios ())
  in
  check_true "parallel chaos run equals sequential" (outcomes = sequential)

let test_sweep_retry_recovers () =
  (* At rate 1 every attempt dies: retries are spent and every row
     fails with the right attempt count. *)
  with_faults ~seed:31 "cac.sweep.task=raise" @@ fun () ->
  let outcomes = Cac.Sweep.run ~domains:1 ~task_retries:2 (sweep_scenarios ()) in
  check_int "all scenarios failed" 4
    (List.length (Cac.Sweep.failures outcomes));
  List.iter
    (fun f -> check_int "three attempts each" 3 f.Cac.Sweep.attempts)
    (Cac.Sweep.failures outcomes)

let test_sweep_table_renders_failures () =
  let outcomes =
    with_faults ~seed:31 "cac.sweep.task=raise:0.5" @@ fun () ->
    Cac.Sweep.run ~domains:1 ~task_retries:0 (sweep_scenarios ())
  in
  let path = Filename.temp_file "cts_sweep" ".txt" in
  let oc = open_out path in
  Obs.Sink.set_human (Obs.Sink.Text oc);
  Fun.protect ~finally:(fun () ->
      Obs.Sink.set_human (Obs.Sink.Text stdout);
      close_out_noerr oc;
      Sys.remove path)
  @@ fun () ->
  Cac.Sweep.print_table outcomes;
  flush oc;
  let ic = open_in path in
  let table = really_input_string ic (in_channel_length ic) in
  close_in ic;
  check_true "failed scenarios render as ERROR rows"
    (contains_substring table "ERROR");
  check_true "no raw inf leaks into the table"
    (not (contains_substring table "inf"))

(* {2 Engine bookkeeping under faults} *)

let test_remove_link_accounting () =
  let cls = Cac.Source_class.of_name_exn "dar1" in
  let engine = engine_with_link () in
  let admitted = Cac.Engine.fill engine ~link:"link" ~cls in
  check_true "fixture admits something" (admitted > 0);
  Cac.Engine.remove_link engine "link";
  check_int "no connections survive the link" 0
    (Cac.Engine.active_connections engine);
  let m = Cac.Engine.metrics engine in
  check_int "every stale connection accounted as a release"
    (Cac.Metrics.admits m) (Cac.Metrics.releases m)

(* {2 Queueing simulator fault point}

   Both multiplexer simulators draw [queueing.mux.step] once per
   frame.  With a fixed seed, the frame on which the first fault fires
   must be identical run after run — the chaos experiments over the
   offline validation path are replayable. *)

let test_mux_step_fault_deterministic () =
  with_faults ~seed:42 "queueing.mux.step=raise:0.05" (fun () ->
      let fluid_run () =
        Resilience.Fault.reseed 42;
        let frames_fed = ref 0 in
        let next_frame () =
          incr frames_fed;
          if !frames_fed mod 7 = 0 then 120.0 else 95.0
        in
        match
          Queueing.Fluid_mux.clr ~next_frame ~service:100.0 ~buffer:50.0
            ~frames:500 ~warmup:0 ()
        with
        | _ -> (!frames_fed, "completed")
        | exception Resilience.Fault.Injected point -> (!frames_fed, point)
      in
      let a = fluid_run () in
      let b = fluid_run () in
      check_true "fluid mux drew the fault point"
        (snd a = "queueing.mux.step");
      check_true "first fault fires on the same frame both runs" (a = b);
      let cell_run () =
        Resilience.Fault.reseed 42;
        let frames_fed = ref 0 in
        let source () =
          incr frames_fed;
          10.0
        in
        match
          Queueing.Cell_mux.clr ~sources:[| source |]
            ~service_cells_per_frame:9.0 ~buffer_cells:20 ~ts:0.01 ~frames:500
            ~warmup:0 ()
        with
        | _ -> (!frames_fed, "completed")
        | exception Resilience.Fault.Injected point -> (!frames_fed, point)
      in
      let c = cell_run () in
      let d = cell_run () in
      check_true "cell mux drew the fault point" (snd c = "queueing.mux.step");
      check_true "cell mux replays identically" (c = d));
  (* disarmed, the hook must cost nothing and change nothing *)
  let r =
    let n = ref 0 in
    Queueing.Fluid_mux.clr
      ~next_frame:(fun () ->
        incr n;
        if !n mod 7 = 0 then 120.0 else 95.0)
      ~service:100.0 ~buffer:50.0 ~frames:500 ~warmup:0 ()
  in
  check_true "disarmed run completes with a sane CLR"
    (Float.is_finite r.Queueing.Fluid_mux.clr && r.Queueing.Fluid_mux.clr >= 0.0)

(* {2 Monotonic clock} *)

let test_clock_monotonic () =
  check_true "clock source is one of the two backends"
    (List.mem
       (Obs.Clock.source ())
       [ "clock_gettime(CLOCK_MONOTONIC)"; "gettimeofday(clamped)" ]);
  let prev = ref (Obs.Clock.monotonic_ns ()) in
  for _ = 1 to 1000 do
    let now = Obs.Clock.monotonic_ns () in
    check_true "monotonic_ns never runs backwards" (Int64.compare now !prev >= 0);
    prev := now
  done

let suite =
  [
    case "fault spec roundtrip" test_fault_parse_roundtrip;
    case "fault spec rejects bad rules" test_fault_parse_rejects;
    case "fault stream is seed-deterministic" test_fault_deterministic_stream;
    case "disarmed faults are no-ops" test_fault_disarmed_is_noop;
    case "finite guard" test_guard_finite;
    case "protect absorbs into fallback" test_guard_protect;
    case "bounded retry" test_guard_retry;
    case "deterministic budgets" test_guard_budget;
    case "breaker trip, half-open, recovery" test_breaker_lifecycle;
    case "breaker wall-clock cooldowns" test_breaker_wall_clock;
    case "NaN kernel degrades fail-closed" test_engine_degrades_on_nan;
    case "degraded fill stops at the peak-rate boundary"
      test_engine_degraded_never_fails_open;
    case "engine breaker opens and recovers" test_engine_breaker_opens_and_recovers;
    case "chaos decisions replay deterministically"
      test_engine_deterministic_replay;
    case "failed computes never poison the cache" test_cache_not_poisoned;
    case "workload survives admit faults" test_workload_counts_errors;
    case "workload spec validation" test_workload_spec_validation;
    case "sweep survives task faults" test_sweep_survives_faults;
    case "sweep retries are bounded and counted" test_sweep_retry_recovers;
    case "sweep table renders failures and no inf" test_sweep_table_renders_failures;
    case "remove_link keeps release accounting exact"
      test_remove_link_accounting;
    case "mux step faults replay deterministically"
      test_mux_step_fault_deterministic;
    case "monotonic clock" test_clock_monotonic;
  ]
