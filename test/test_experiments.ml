open Helpers

(* Route experiment CSV output to a temp dir so tests don't litter. *)
let with_tmp_results f =
  let dir = Filename.temp_file "cts_results" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Unix.putenv "CTS_RESULTS_DIR" dir;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir;
      Unix.putenv "CTS_RESULTS_DIR" "results")
    (fun () -> f dir)

let series_values (s : Experiments.Common.series) = Array.map snd s.points

let test_registry_unique_ids () =
  let ids = List.map (fun e -> e.Experiments.Registry.id) Experiments.Registry.all in
  check_int "no duplicate ids" (List.length ids)
    (List.length (List.sort_uniq String.compare ids));
  check_true "find works" (Experiments.Registry.find "fig4" <> None);
  check_true "find rejects junk" (Experiments.Registry.find "nope" = None)

let test_table1_rows () =
  let rows = Experiments.Exp_table1.rows () in
  check_int "5 model rows" 5 (List.length rows);
  let fits = Experiments.Exp_table1.dar_fits () in
  check_int "6 fits" 6 (List.length fits)

let test_fig3_alignment () =
  let fig = Experiments.Exp_fig3.figure_a () in
  check_int "three series" 3 (List.length fig.Experiments.Common.series);
  let lag1 =
    List.map (fun s -> snd s.Experiments.Common.points.(0)) fig.Experiments.Common.series
  in
  match lag1 with
  | [ a; b; c ] ->
      check_close ~tol:1e-9 "V lag-1 equal (a=b)" a b;
      check_close ~tol:1e-9 "V lag-1 equal (b=c)" b c
  | _ -> Alcotest.fail "expected three series"

let test_fig4_monotone_cts () =
  List.iter
    (fun fig ->
      List.iter
        (fun s ->
          let v = series_values s in
          for i = 1 to Array.length v - 1 do
            check_true
              (Printf.sprintf "%s CTS non-decreasing" s.Experiments.Common.label)
              (v.(i) >= v.(i - 1))
          done)
        fig.Experiments.Common.series)
    [ Experiments.Exp_fig4.figure_a (); Experiments.Exp_fig4.figure_b () ]

let test_fig4_short_term_dominates () =
  (* The paper's headline for Fig 4: Z^a curves split wide; V^v curves
     stay close at small buffers. *)
  let spread fig i =
    let values =
      List.map (fun s -> (series_values s).(i)) fig.Experiments.Common.series
    in
    List.fold_left Stdlib.max neg_infinity values
    -. List.fold_left Stdlib.min infinity values
  in
  let va = Experiments.Exp_fig4.figure_a () in
  let zb = Experiments.Exp_fig4.figure_b () in
  (* index 3 is B = 2 msec on the fig4 grid *)
  check_true "V^v spread small at 2 msec" (spread va 3 <= 3.0);
  check_true "Z^a spread large at 2 msec (>= 10 lags)" (spread zb 3 >= 10.0)

let test_fig5_bop_decreasing () =
  List.iter
    (fun fig ->
      List.iter
        (fun s ->
          let v = series_values s in
          for i = 1 to Array.length v - 1 do
            check_true "BOP decreasing in buffer" (v.(i) < v.(i - 1))
          done)
        fig.Experiments.Common.series)
    [ Experiments.Exp_fig5.figure_a (); Experiments.Exp_fig5.figure_b () ]

let test_fig5_z_ordering () =
  (* Stronger short-term correlations -> slower BOP decay: at every
     buffer, Z^0.99 sits above Z^0.7. *)
  let fig = Experiments.Exp_fig5.figure_b () in
  match fig.Experiments.Common.series with
  | z07 :: _ :: _ :: z99 :: _ ->
      let v07 = series_values z07 and v99 = series_values z99 in
      for i = 1 to Array.length v07 - 1 do
        check_true "Z^0.99 above Z^0.7" (v99.(i) > v07.(i))
      done
  | _ -> Alcotest.fail "expected four series"

let test_fig6_dar_converges_to_z () =
  (* |DAR(p) - Z| at 10 msec shrinks as p grows, and DAR(1) beats L. *)
  let fig = Experiments.Exp_fig6.figure_a () in
  let by_label label =
    List.find
      (fun s -> s.Experiments.Common.label = label)
      fig.Experiments.Common.series
  in
  let idx = 8 (* 10 msec on the practical grid *) in
  let z = (series_values (by_label "Z^0.975")).(idx) in
  let err label = Float.abs ((series_values (by_label label)).(idx) -. z) in
  check_true "DAR(2) closer than DAR(1)" (err "DAR(2)" <= err "DAR(1)");
  check_true "DAR(3) closer than DAR(2)" (err "DAR(3)" <= err "DAR(2)");
  check_true "DAR(1) beats L over practical buffers" (err "DAR(1)" < err "L")

let test_fig7_crossover () =
  (* The second claim's origin: L eventually out-predicts the Markov
     fits, but only at large buffers, and matching more short-term lags
     pushes the crossover out further. *)
  let crossover p =
    match Experiments.Exp_fig7.crossover_msec ~a:0.975 ~p with
    | None -> infinity
    | Some b -> b
  in
  let c1 = crossover 1 and c3 = crossover 3 in
  check_true
    (Printf.sprintf "DAR(1) crossover at %.0f msec is not at small buffers" c1)
    (c1 >= 10.0);
  check_true
    (Printf.sprintf "DAR(3) crossover (%.0f) beyond DAR(1)'s (%.0f)" c3 c1)
    (c3 >= c1);
  check_true "DAR(3) holds through the practical range" (c3 >= 20.0)

let test_admission_gap_small () =
  (* Section 5.4: BOP differences translate to about one connection. *)
  check_true "DAR admission within 2 connections of Z"
    (Experiments.Exp_admission.max_count_gap ~target_clr:1e-6 <= 2)

let test_spectrum_ignored_power () =
  (* At 10 msec the loss estimate ignores a large low-frequency share
     of Z^0.975's variance - the LRD part. *)
  let ignored =
    Experiments.Exp_spectrum.lrd_power_ignored ~a:0.975 ~buffer_msec:10.0
  in
  check_true
    (Printf.sprintf "ignored power %.2f in (0.3, 1)" ignored)
    (ignored > 0.3 && ignored < 1.0)

let test_emit_csv () =
  with_tmp_results (fun dir ->
      let fig = Experiments.Exp_fig1.figure_z () in
      Experiments.Common.save_figure_csv fig;
      let path = Filename.concat dir "fig1_z.csv" in
      check_true "csv written" (Sys.file_exists path);
      let ic = open_in path in
      let lines = ref 0 in
      (try
         while true do
           ignore (input_line ic);
           incr lines
         done
       with End_of_file -> ());
      close_in ic;
      (* header(3) + 2 series x 30 lags *)
      check_int "csv rows" 63 !lines)

let test_scale_env () =
  Unix.putenv "CTS_FRAMES" "123";
  check_int "frames honours env" 123 (Experiments.Common.frames ());
  Unix.putenv "CTS_FRAMES" "bogus";
  check_int "invalid env falls back" 20_000 (Experiments.Common.frames ());
  Unix.putenv "CTS_FRAMES" "";
  check_int "empty env falls back" 20_000 (Experiments.Common.frames ())

let test_buffer_cells_per_source () =
  (* 10 msec at N = 30, c = 538: total 4035 cells, 134.5 per source. *)
  check_close_rel ~tol:1e-12 "per-source buffer" 134.5
    (Experiments.Common.buffer_cells_per_source ~msec:10.0 ~n:30 ~c:538.0)

let test_sim_smoke () =
  (* A tiny end-to-end simulated series: finite values at zero buffer,
     decreasing CLR, CIs present. *)
  Unix.putenv "CTS_FRAMES" "4000";
  Unix.putenv "CTS_REPS" "2";
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "CTS_FRAMES" "";
      Unix.putenv "CTS_REPS" "")
    (fun () ->
      let s =
        Experiments.Common.clr_sim_series ~label:"smoke"
          (Traffic.Models.s ~a:0.975 ~p:1)
          ~n:30 ~c:538.0 ~buffers_msec:[| 0.0; 1.0 |]
      in
      let v = series_values s in
      check_true "zero-buffer CLR observed" (v.(0) > neg_infinity);
      check_true "CLR decreases with buffer" (v.(1) <= v.(0));
      check_true "CI attached" (s.Experiments.Common.ci_half_width <> None))

let test_analytic_experiments_smoke () =
  (* Every non-simulated experiment must run end to end (stdout output
     is fine in test logs; CSVs go to a temp dir). *)
  with_tmp_results (fun _ ->
      List.iter
        (fun e ->
          if not e.Experiments.Registry.simulated then
            e.Experiments.Registry.run ())
        Experiments.Registry.all)

let test_mpeg_experiment_figures () =
  let acf_fig = Experiments.Exp_mpeg.figure_acf () in
  check_int "two ACF series" 2 (List.length acf_fig.Experiments.Common.series);
  let bop_fig = Experiments.Exp_mpeg.figure_bop () in
  check_int "MPEG BOP: source + scene model + smoothed source" 3
    (List.length bop_fig.Experiments.Common.series);
  (* DAR cannot represent the negative intra-GOP correlations - that is
     a structural property worth pinning down. *)
  let mpeg_acf =
    (Traffic.Mpeg.process (Traffic.Mpeg.create ~mean:500.0 ()))
      .Traffic.Process.acf
  in
  check_true "MPEG has negative short-lag correlation" (mpeg_acf 1 < 0.0);
  check_true "DAR fit rejects it"
    (match Traffic.Dar.fit ~target_acf:mpeg_acf ~p:1 with
    | (_ : Traffic.Dar.params) -> false
    | exception Invalid_argument _ -> true)

let suite =
  [
    case "registry ids" test_registry_unique_ids;
    slow_case "analytic experiments smoke" test_analytic_experiments_smoke;
    case "mpeg experiment figures" test_mpeg_experiment_figures;
    case "table1 shape" test_table1_rows;
    case "fig3a: V lag-1 alignment" test_fig3_alignment;
    case "fig4: CTS monotone" test_fig4_monotone_cts;
    case "fig4: short-term correlations dominate CTS" test_fig4_short_term_dominates;
    case "fig5: BOP decreasing" test_fig5_bop_decreasing;
    case "fig5: Z ordering by short-term strength" test_fig5_z_ordering;
    case "fig6: DAR(p) converges, beats L" test_fig6_dar_converges_to_z;
    case "fig7: crossover beyond practical range" test_fig7_crossover;
    case "admission gap small" test_admission_gap_small;
    case "spectrum ignored power" test_spectrum_ignored_power;
    case "csv export" test_emit_csv;
    case "scale env vars" test_scale_env;
    case "buffer conversion" test_buffer_cells_per_source;
    slow_case "simulated series smoke" test_sim_smoke;
  ]
