(* A miniature admission-control "server": the online CAC engine
   serving a day in the life of two ATM links.

   An OC-3-class link carries a heterogeneous mix of LRD video (Z^0.975)
   and its cheap DAR(3) Markov fit; a smaller access link carries pure
   DAR(1) traffic.  Poisson call attempts with exponential holding
   times stream through the engine, whose decision cache turns the
   steady-state Bahadur-Rao admission test into a hash lookup.

   Set CAC_FAULT_SPEC (e.g. "bahadur_rao.evaluate=raise:0.01") to run
   the same day under injected kernel faults and watch the engine
   degrade fail-closed instead of crashing; CAC_FAULT_SEED fixes the
   injection stream (default 7).

   Run with: dune exec examples/cac_server.exe *)

let () =
  (match Sys.getenv_opt "CAC_FAULT_SPEC" with
  | None -> ()
  | Some spec -> (
      let seed =
        Option.bind (Sys.getenv_opt "CAC_FAULT_SEED") int_of_string_opt
        |> Option.value ~default:7
      in
      match Resilience.Fault.parse spec with
      | Ok rules ->
          Resilience.Fault.configure ~seed rules;
          Printf.printf "fault injection armed: %s (seed %d)\n\n"
            (Resilience.Fault.to_string rules)
            seed
      | Error msg ->
          Printf.eprintf "bad CAC_FAULT_SPEC: %s\n%!" msg;
          exit 2));
  let engine = Cac.Engine.create ~cache_capacity:4096 () in
  ignore
    (Cac.Engine.add_link_msec engine ~id:"oc3" ~capacity:16140.0
       ~buffer_msec:20.0 ~target_clr:1e-6);
  ignore
    (Cac.Engine.add_link_msec engine ~id:"access" ~capacity:5380.0
       ~buffer_msec:10.0 ~target_clr:1e-6);

  let z = Cac.Source_class.of_name_exn "z0.975" in
  let dar3 = Cac.Source_class.of_name_exn "dar3" in
  let dar1 = Cac.Source_class.of_name_exn "dar1" in

  Printf.printf "links:\n";
  List.iter
    (fun link ->
      Printf.printf "  %-7s %.0f cells/frame, buffer %.0f cells (%.1f msec), CLR <= %g\n"
        (Cac.Link.id link) (Cac.Link.capacity link) (Cac.Link.buffer link)
        (Cac.Link.buffer_msec link) (Cac.Link.target_clr link))
    (Cac.Engine.links engine);

  (* Backbone: mixed LRD + Markov video calls, ~29 circuits' worth of
     offered load.  Access: light homogeneous load. *)
  let rng = Numerics.Rng.create ~seed:2024 in
  let backbone =
    Cac.Workload.spec ~mean_holding:90.0
      ~arrival_rate:(32.0 /. 90.0)
      ~requests:20_000
      ~mix:[ (z, 2.0); (dar3, 1.0) ]
      ()
  in
  let access =
    Cac.Workload.spec ~mean_holding:60.0
      ~arrival_rate:(9.0 /. 60.0)
      ~requests:5_000
      ~mix:[ (dar1, 1.0) ]
      ()
  in
  let report link spec (r : Cac.Workload.result) =
    Printf.printf
      "\n%s: %d attempts over %.0f simulated hours (%.1f Erlangs offered)\n"
      link r.offered (r.duration /. 3600.0)
      (Cac.Workload.offered_load spec);
    Printf.printf "  admitted %d, rejected %d -> blocking %.4f (steady %.4f)\n"
      r.admitted r.rejected r.blocking r.steady_blocking;
    Printf.printf "  occupancy: %.1f mean / %d peak connections\n"
      r.mean_occupancy r.peak_occupancy;
    Printf.printf "  decision cache: %.1f%% hits (%.1f%% steady-state)\n"
      (100.0 *. r.cache_hit_rate)
      (100.0 *. r.steady_cache_hit_rate);
    Printf.printf "  mean decision latency: %.2f us\n" r.mean_latency_us;
    if r.errors > 0 || r.degraded > 0 then
      Printf.printf
        "  resilience: %d engine errors (fail-closed), %d degraded peak-rate \
         decisions\n"
        r.errors r.degraded
  in
  report "oc3" backbone
    (Cac.Workload.run engine ~link:"oc3" backbone (Numerics.Rng.split rng));
  report "access" access
    (Cac.Workload.run engine ~link:"access" access (Numerics.Rng.split rng));

  print_newline ();
  Cac.Metrics.print ~label:"engine" (Cac.Engine.metrics engine);
  let stats = Cac.Engine.cache_stats engine in
  Printf.printf "engine: cache %d entries, %d hits / %d misses (%.1f%% hit rate)\n"
    stats.Cac.Decision_cache.entries stats.Cac.Decision_cache.hits
    stats.Cac.Decision_cache.misses
    (100.0 *. Cac.Decision_cache.hit_rate stats);
  if Resilience.Fault.active () then begin
    Printf.printf
      "guard:  %d faults injected, %d retries, %d peak-rate fallbacks, %d \
       breaker trips\n"
      (Resilience.Fault.injected_total ())
      (Obs.Registry.counter_value "cac.guard.retries")
      (Resilience.Guard.fallbacks ())
      (Obs.Registry.counter_value "cac.guard.breaker_trips");
    List.iter
      (fun link ->
        List.iter
          (fun cls ->
            match
              Cac.Engine.breaker_state engine ~link:(Cac.Link.id link) ~cls
            with
            | None -> ()
            | Some state ->
                Printf.printf "guard:  breaker %s/%s: %s\n" (Cac.Link.id link)
                  cls.Cac.Source_class.name
                  (Resilience.Guard.Breaker.state_name state))
          [ z; dar3; dar1 ])
      (Cac.Engine.links engine)
  end
