(* The benchmark harness does two jobs:

   1. Regenerates every table and figure of the paper (Table 1,
      Figs. 1-10) plus the ablation studies, printing the series and
      writing CSVs to ./results.  Simulation scale is controlled with
      CTS_FRAMES / CTS_REPS / CTS_SEED (defaults: 20000 / 3 / 1996; the
      paper used 500000 / 60).

   2. Runs Bechamel micro-benchmarks of the library's hot paths - one
      per table/figure-generating computation plus the core generators -
      so performance regressions in the machinery itself are visible.

   Skip the (slow) simulated figures with CTS_BENCH_ANALYTIC_ONLY=1;
   skip the micro-benchmarks with CTS_BENCH_NO_MICRO=1. *)

open Bechamel
open Toolkit

let env_flag name = Sys.getenv_opt name = Some "1"

(* {2 Micro-benchmarks} *)

(* A pair of CAC engines on identical links with identical mixed load
   (10 x z0.975 + 10 x dar3), one with the decision cache enabled and
   one with it disabled — the cached and uncached admission paths. *)
let cac_engine ~cache_capacity =
  let engine = Cac.Engine.create ~cache_capacity () in
  ignore
    (Cac.Engine.add_link_msec engine ~id:"link" ~capacity:16140.0
       ~buffer_msec:10.0 ~target_clr:1e-6);
  let z = Cac.Source_class.of_name_exn "z0.975" in
  let dar3 = Cac.Source_class.of_name_exn "dar3" in
  List.iter
    (fun cls ->
      for _ = 1 to 10 do
        ignore (Cac.Engine.admit engine ~link:"link" ~cls)
      done)
    [ z; dar3 ];
  (* Warm: the next decision's keys are now resident (cache on) or
     recomputed every time (cache off). *)
  ignore (Cac.Engine.evaluate engine ~link:"link" ~cls:z);
  (engine, z)

let report_cac_speedup () =
  let cached, z_cached = cac_engine ~cache_capacity:4096 in
  let uncached, z_uncached = cac_engine ~cache_capacity:0 in
  let mean_time iters f =
    let t0 = Obs.Clock.wall () in
    for _ = 1 to iters do
      ignore (f ())
    done;
    1e6 *. (Obs.Clock.wall () -. t0) /. float_of_int iters
  in
  let cached_us =
    mean_time 20_000 (fun () ->
        Cac.Engine.evaluate cached ~link:"link" ~cls:z_cached)
  in
  let uncached_us =
    mean_time 200 (fun () ->
        Cac.Engine.evaluate uncached ~link:"link" ~cls:z_uncached)
  in
  Printf.printf
    "\ncac admission decision: %.2f us cached, %.2f us uncached -> %.0fx \
     speedup\n%!"
    cached_us uncached_us (uncached_us /. cached_us)

let micro_tests () =
  let z = (Traffic.Models.z ~a:0.975).Traffic.Models.process in
  let dar3 = Traffic.Models.s ~a:0.975 ~p:3 in
  let vg =
    Core.Variance_growth.create ~acf:z.Traffic.Process.acf
      ~variance:z.Traffic.Process.variance
  in
  let b_10ms = 134.5 in
  let rng = Numerics.Rng.create ~seed:9 in
  let dar_gen = dar3.Traffic.Process.spawn (Numerics.Rng.split rng) in
  let fbndp_gen = z.Traffic.Process.spawn (Numerics.Rng.split rng) in
  let fgn_rng = Numerics.Rng.split rng in
  let acf_z = z.Traffic.Process.acf in
  [
    Test.make ~name:"cts_analyze_fresh_b10ms"
      (Staged.stage (fun () ->
           (* fresh variance-growth cache so the scan cost is measured *)
           let vg' =
             Core.Variance_growth.create ~acf:acf_z
               ~variance:z.Traffic.Process.variance
           in
           Core.Cts.analyze vg' ~mu:500.0 ~c:538.0 ~b:b_10ms));
    Test.make ~name:"cts_analyze_memoized"
      (Staged.stage (fun () -> Core.Cts.analyze vg ~mu:500.0 ~c:538.0 ~b:b_10ms));
    Test.make ~name:"bahadur_rao_n30"
      (Staged.stage (fun () ->
           Core.Bahadur_rao.evaluate vg ~mu:500.0 ~c:538.0 ~b:b_10ms ~n:30));
    Test.make ~name:"dar_fit_p3"
      (Staged.stage (fun () -> Traffic.Dar.fit ~target_acf:acf_z ~p:3));
    Test.make ~name:"dar3_frame" (Staged.stage dar_gen);
    Test.make ~name:"fbndp_frame" (Staged.stage fbndp_gen);
    Test.make ~name:"fgn_block_4096"
      (Staged.stage (fun () ->
           Traffic.Fgn.sample_davies_harte fgn_rng ~h:0.9 ~n:4096));
    Test.make ~name:"fluid_step"
      (Staged.stage (fun () ->
           Queueing.Fluid_mux.finite_buffer_step ~w:100.0 ~arrivals:520.0
             ~service:538.0 ~buffer:4035.0));
    (let engine, z = cac_engine ~cache_capacity:4096 in
     Test.make ~name:"cac_decide_cached"
       (Staged.stage (fun () -> Cac.Engine.evaluate engine ~link:"link" ~cls:z)));
    (let engine, z = cac_engine ~cache_capacity:0 in
     Test.make ~name:"cac_decide_uncached"
       (Staged.stage (fun () -> Cac.Engine.evaluate engine ~link:"link" ~cls:z)));
    (* Obs primitives: the per-event costs every instrumented hot path
       pays, so the null-sink overhead is auditable from this table
       (events per op x cost per event). *)
    (let c = Obs.Registry.Counter.v "bench.obs.counter" in
     Test.make ~name:"obs_counter_incr"
       (Staged.stage (fun () -> Obs.Registry.Counter.incr c)));
    (let h = Obs.Registry.Histogram.v "bench.obs.hist" in
     Test.make ~name:"obs_histogram_observe"
       (Staged.stage (fun () -> Obs.Registry.Histogram.observe h 42.0)));
    Test.make ~name:"obs_keyed_incr"
      (Staged.stage (fun () -> Obs.Registry.incr "bench.obs.keyed"));
    Test.make ~name:"obs_clock_monotonic_ns"
      (Staged.stage Obs.Clock.monotonic_ns);
    Test.make ~name:"obs_span_null_sink"
      (Staged.stage (fun () -> Obs.Span.with_ ~name:"bench.obs.span" Fun.id));
    (* The GC-attribution read Srv.Pool brackets every request with —
       benched with no consumer running (the events-off fast path;
       with --events it adds one atomic load).  Starting the consumer
       here would flip the whole bench process into multi-domain STW
       mode and contaminate every other row. *)
    Test.make ~name:"obs_events_pause_clock_off"
      (Staged.stage (fun () ->
           ignore (Sys.opaque_identity (Obs.Events.cumulative_pause_ns ()))));
    (* Serving layer: the per-request costs of the HTTP daemon.  The
       parse bench round-trips one request through a socketpair per op
       (write + buffered parse — the worker's actual read path); the
       other two are the pure serialize and route steps. *)
    (let client, server = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
     let reader = Srv.Io.reader server in
     let body = "{\"link\": \"oc3\", \"class\": \"dar1\"}" in
     let raw =
       Printf.sprintf "POST /v1/decide HTTP/1.1\r\ncontent-length: %d\r\n\r\n%s"
         (String.length body) body
     in
     Test.make ~name:"srv_http_parse_roundtrip"
       (Staged.stage (fun () ->
            Srv.Io.write_string client raw;
            match Srv.Http.read_request reader None with
            | Srv.Http.Request _ -> ()
            | _ -> failwith "bench request did not parse")));
    (let resp =
       Srv.Http.json
         (Obs.Json.Obj
            [
              ("admissible", Obs.Json.Bool true);
              ("log10_bop", Obs.Json.Float (-9.2));
            ])
     in
     Test.make ~name:"srv_http_serialize"
       (Staged.stage (fun () ->
            ignore (Srv.Http.to_string ~keep_alive:true resp))));
    (let router =
       Srv.Router.create
         [
           Srv.Router.route Srv.Http.GET "/healthz" (fun _ ->
               Srv.Http.text "ok");
         ]
     in
     let req =
       {
         Srv.Http.meth = Srv.Http.GET;
         target = "/healthz";
         path = "/healthz";
         query = [];
         version = Srv.Http.Http_1_1;
         headers = [];
         body = "";
       }
     in
     Test.make ~name:"srv_router_dispatch"
       (Staged.stage (fun () -> ignore (Srv.Router.dispatch router req))));
  ]

let run_micro () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  Printf.printf "\n######## micro-benchmarks (ns/op) ########\n%!";
  List.concat_map
    (fun test ->
      List.map
        (fun sub ->
          let name = Test.Elt.name sub in
          let raw = Benchmark.run cfg instances sub in
          let runs = raw.Benchmark.stats.Benchmark.samples in
          let ns_per_run =
            match
              Analyze.OLS.estimates
                (Analyze.one ols Instance.monotonic_clock raw)
            with
            | Some [ time ] -> Some time
            | _ -> None
          in
          (match ns_per_run with
          | Some time -> Printf.printf "%-28s %12.1f\n%!" name time
          | None -> Printf.printf "%-28s (no estimate)\n%!" name);
          (name, ns_per_run, runs))
        (Test.elements test))
    (micro_tests ())

(* Machine-readable results for CI trend tracking and the overhead
   checks in docs/observability.md. *)
let write_json_results path results =
  let open Obs.Json in
  let doc =
    Obj
      [
        ("schema", String "cts.bench.v1");
        ( "results",
          List
            (List.map
               (fun (name, ns_per_run, runs) ->
                 Obj
                   [
                     ("name", String name);
                     ( "ns_per_run",
                       match ns_per_run with
                       | Some t -> Float t
                       | None -> Null );
                     ("runs", Int runs);
                   ])
               results) );
      ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_string doc);
      output_char oc '\n');
  Printf.printf "\nmicro-benchmark results written to %s\n%!" path

(* Minimal flag scan: the harness predates cmdliner here and the only
   option is [--json PATH] (or [--json=PATH]). *)
let parse_json_path () =
  let argv = Sys.argv in
  let path = ref None in
  let i = ref 1 in
  let n = Array.length argv in
  while !i < n do
    let arg = argv.(!i) in
    if arg = "--json" then begin
      if !i + 1 >= n then begin
        prerr_endline "bench: --json needs a PATH argument";
        exit 2
      end;
      path := Some argv.(!i + 1);
      i := !i + 2
    end
    else if String.length arg > 7 && String.sub arg 0 7 = "--json=" then begin
      path := Some (String.sub arg 7 (String.length arg - 7));
      incr i
    end
    else begin
      Printf.eprintf "bench: unknown argument %S (only --json PATH)\n" arg;
      exit 2
    end
  done;
  !path

let () =
  let json_path = parse_json_path () in
  Printf.printf "CTS reproduction bench harness\n";
  Printf.printf "scale: CTS_FRAMES=%d CTS_REPS=%d CTS_SEED=%d\n%!"
    (Experiments.Common.frames ()) (Experiments.Common.reps ())
    (Experiments.Common.seed ());
  let t0 = Obs.Clock.wall () in
  if env_flag "CTS_BENCH_ANALYTIC_ONLY" then
    Experiments.Registry.run_all ~include_simulated:false ()
  else Experiments.Registry.run_all ();
  Printf.printf "\nexperiments completed in %.1f s\n%!"
    (Obs.Clock.wall () -. t0);
  if not (env_flag "CTS_BENCH_NO_MICRO") then begin
    let results = run_micro () in
    report_cac_speedup ();
    Option.iter (fun path -> write_json_results path results) json_path
  end
