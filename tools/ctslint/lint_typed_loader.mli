(** Typed-backend front-end over dune's [.cmt] artifacts.

    [index ~build_root] scans the build tree once and maps
    context-relative source paths ("lib/cac/engine.ml") to their
    [.cmt]; [load] reads one, harvests {!Lint_facts} from the
    typedtree and untypes it back to a parsetree so the shared rule
    walkers run unchanged — with real types this time. *)

type loaded = {
  source : string;
  structure : Parsetree.structure;
  facts : Lint_facts.t;
  modname : string;  (** unmangled, e.g. ["Cac.Engine"] *)
}

val unmangle : string -> string
(** Undo dune's module-name mangling: ["Cac__Engine"] is
    ["Cac.Engine"], ["Dune__exe__Cts_cli"] is ["Cts_cli"]. *)

val default_build_root : unit -> string
(** ["_build/default"] when visible from the current directory (repo
    root), ["."] otherwise (inside the dune context). *)

val index : build_root:string -> (string, string) Hashtbl.t
(** Source path -> cmt path, for every implementation [.cmt] under
    [build_root].  Generated [.ml-gen] alias modules are skipped. *)

val load :
  index:(string, string) Hashtbl.t ->
  source:string ->
  (loaded, string) result

val load_cmt : source:string -> string -> (loaded, string) result
(** Load one [.cmt] directly (tests). *)
