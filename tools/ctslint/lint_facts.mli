(** Type facts harvested from a typedtree, keyed by character offset.

    The typed backend loads a [.cmt], walks its typedtree recording
    per-expression type information and resolved identifier paths,
    then untypes it back to a parsetree for the shared rule walkers.
    Locations are preserved by [Untypeast], so offset-keyed facts
    line up exactly with the parsetree nodes the rules inspect. *)

type t

val create : unit -> t

val record_type : t -> offset:int -> is_float:bool -> unit
(** Record whether the outermost expression starting at [offset] has
    type [float].  The first record at an offset wins. *)

val record_resolved : t -> offset:int -> string -> unit
(** Record the fully-resolved dotted path of the identifier expression
    at [offset] (dune's [Lib__Module] wrapping already unmangled). *)

val float_typed : t -> int -> bool option
(** [Some true] float, [Some false] known non-float, [None] no type
    information at this offset. *)

val resolve : t -> int -> string option
