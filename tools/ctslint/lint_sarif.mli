(** SARIF 2.1.0 export for GitHub code scanning.

    One run with tool driver ["ctslint"]; every distinct rule that
    fired gets an entry in [driver.rules]; regions are 1-based per
    the SARIF spec (the linter's own columns are 0-based). *)

val of_findings : ?tool_version:string -> Lint_finding.t list -> Obs.Json.t

val to_string : ?tool_version:string -> Lint_finding.t list -> string

val write : ?tool_version:string -> path:string -> Lint_finding.t list -> unit
(** Serialize to [path], trailing newline included. *)
