type backend = Syntactic | Typed | Both

type report = {
  findings : Lint_finding.t list;
  files_scanned : int;
}

(* -- filesystem ---------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  src

let rec collect_ml cfg path acc =
  if Lint_config.excluded cfg path then acc
  else if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc entry -> collect_ml cfg (Filename.concat path entry) acc)
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let collect cfg paths =
  List.fold_left (fun acc p -> collect_ml cfg p acc) [] paths
  |> List.sort_uniq String.compare

(* -- per-file lint ------------------------------------------------- *)

let parse_implementation ~file src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf file;
  Parse.implementation lexbuf

(* [Ok structure] or the single [P0] finding standing in for it, so a
   broken file cannot hide other findings or crash CI. *)
let parse_result ~file src =
  match parse_implementation ~file src with
  | structure -> Ok structure
  | exception exn ->
      let line, col, detail =
        match exn with
        | Syntaxerr.Error err ->
            let loc = Syntaxerr.location_of_error err in
            ( loc.loc_start.pos_lnum,
              loc.loc_start.pos_cnum - loc.loc_start.pos_bol,
              "syntax error" )
        | Lexer.Error (_, loc) ->
            ( loc.loc_start.pos_lnum,
              loc.loc_start.pos_cnum - loc.loc_start.pos_bol,
              "lexer error" )
        | exn -> (1, 0, Printexc.to_string exn)
      in
      Error
        (Lint_finding.at ~file ~line ~col ~rule:"P0"
           (Printf.sprintf "cannot parse: %s" detail))

let lint_source ~cfg ~file src =
  match parse_result ~file src with
  | Ok structure -> Lint_rules.run ~cfg ~file structure
  | Error finding -> [ finding ]

let lint_file ~cfg ?as_path path =
  let file = match as_path with Some p -> p | None -> path in
  lint_source ~cfg ~file (read_file path)

(* One file through the flow rules alone (F1 intraprocedural, L1/E1
   on a single-module call graph) — the fixture-test entry point. *)
let flow_file ~cfg ?as_path path =
  let file = match as_path with Some p -> p | None -> path in
  match parse_result ~file (read_file path) with
  | Error finding -> [ finding ]
  | Ok structure ->
      let input =
        {
          Lint_callgraph.file;
          modname = Lint_callgraph.modname_of_path file;
          structure;
          facts = None;
        }
      in
      List.sort Lint_finding.order
        (Lint_dataflow.run ~file structure
        @ Lint_callgraph.run ~cfg [ input ])

(* Every library implementation needs a matching interface: the .mli
   is where invariants on the numeric API live, and an absent one
   leaks representation details the rest of the checks assume are
   private. *)
let check_mli_pairing ~cfg files =
  List.filter_map
    (fun file ->
      if
        Lint_config.lib_code cfg file
        && (not (Lint_config.mli_exempted cfg file))
        && not (Sys.file_exists (file ^ "i"))
      then
        Some
          (Lint_finding.at ~file ~line:1 ~col:0 ~rule:"H1"
             (Printf.sprintf "missing interface %s for library module"
                (Filename.basename file ^ "i")))
      else None)
    files

(* -- backends ------------------------------------------------------ *)

(* Flow passes (F1 intraprocedural, L1/E1 whole-program) over a set
   of parsed inputs.  They run on parsetrees, so the syntactic
   backend can host them too ([flow:true]) — without facts they see
   source spellings only. *)
let flow_findings ~cfg inputs =
  List.concat_map
    (fun (i : Lint_callgraph.input) ->
      Lint_dataflow.run ?facts:i.facts ~file:i.file i.structure)
    inputs
  @ Lint_callgraph.run ~cfg inputs

let syntactic_pass ~flow ~cfg files =
  let inputs, parse_failures =
    List.fold_left
      (fun (inputs, failures) file ->
        match parse_result ~file (read_file file) with
        | Ok structure ->
            ( {
                Lint_callgraph.file;
                modname = Lint_callgraph.modname_of_path file;
                structure;
                facts = None;
              }
              :: inputs,
              failures )
        | Error f -> (inputs, f :: failures))
      ([], []) files
  in
  let inputs = List.rev inputs in
  parse_failures
  @ List.concat_map
      (fun (i : Lint_callgraph.input) ->
        Lint_rules.run ~cfg ~file:i.file i.structure)
      inputs
  @ (if flow then flow_findings ~cfg inputs else [])

(* The typed backend refuses to silently degrade: a source with no
   loadable .cmt gets a T0 finding instead of a quiet fallback, so
   "typed clean" always means every module was actually typechecked
   (`dune build @check` produces the artifacts). *)
let typed_pass ~cfg ~build_root files =
  let index = Lint_typed_loader.index ~build_root in
  let inputs, load_failures =
    List.fold_left
      (fun (inputs, failures) file ->
        match Lint_typed_loader.load ~index ~source:file with
        | Ok loaded ->
            ( {
                Lint_callgraph.file;
                modname = loaded.Lint_typed_loader.modname;
                structure = loaded.Lint_typed_loader.structure;
                facts = Some loaded.Lint_typed_loader.facts;
              }
              :: inputs,
              failures )
        | Error msg ->
            ( inputs,
              Lint_finding.at ~file ~line:1 ~col:0 ~rule:"T0"
                (Printf.sprintf
                   "typed backend: %s (run `dune build @check` first)" msg)
              :: failures ))
      ([], []) files
  in
  let inputs = List.rev inputs in
  load_failures
  @ List.concat_map
      (fun (i : Lint_callgraph.input) ->
        Lint_rules.run ?facts:i.facts ~cfg ~file:i.file i.structure)
      inputs
  @ flow_findings ~cfg inputs

(* Two backends over the same tree report the same defect at the same
   position under the same rule; keep one (the earlier in the stable
   order, i.e. the syntactic spelling) and drop the echo. *)
let dedup findings =
  let key (f : Lint_finding.t) = (f.file, f.line, f.col, f.rule) in
  let rec keep_first = function
    | a :: b :: tl when key a = key b -> keep_first (a :: tl)
    | a :: tl -> a :: keep_first tl
    | [] -> []
  in
  keep_first (List.stable_sort Lint_finding.order findings)

let run ?(backend = Syntactic) ?(flow = false) ?build_root ~cfg paths =
  let build_root =
    match build_root with
    | Some r -> r
    | None -> Lint_typed_loader.default_build_root ()
  in
  let files = collect cfg paths in
  let findings =
    (match backend with
    | Syntactic -> syntactic_pass ~flow ~cfg files
    | Typed -> typed_pass ~cfg ~build_root files
    | Both ->
        syntactic_pass ~flow ~cfg files @ typed_pass ~cfg ~build_root files)
    @ check_mli_pairing ~cfg files
  in
  { findings = dedup findings; files_scanned = List.length files }

(* -- reporting ----------------------------------------------------- *)

let counts_by_rule findings =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun f ->
      let r = f.Lint_finding.rule in
      Hashtbl.replace tbl r (1 + Option.value ~default:0 (Hashtbl.find_opt tbl r)))
    findings;
  Hashtbl.fold (fun r n acc -> (r, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let report_to_json t =
  Obs.Json.Obj
    [
      ("tool", Obs.Json.String "ctslint");
      ("version", Obs.Json.Int 2);
      ("files_scanned", Obs.Json.Int t.files_scanned);
      ( "counts",
        Obs.Json.Obj
          (List.map
             (fun (r, n) -> (r, Obs.Json.Int n))
             (counts_by_rule t.findings)) );
      ("findings", Obs.Json.List (List.map Lint_finding.to_json t.findings));
    ]

let print_report ?(oc = stdout) t =
  List.iter
    (fun f -> output_string oc (Lint_finding.to_string f ^ "\n"))
    t.findings;
  if t.findings = [] then
    Printf.fprintf oc "ctslint: %d file(s) clean\n" t.files_scanned
  else
    Printf.fprintf oc "ctslint: %d finding(s) in %d file(s) scanned (%s)\n"
      (List.length t.findings) t.files_scanned
      (counts_by_rule t.findings
      |> List.map (fun (r, n) -> Printf.sprintf "%s:%d" r n)
      |> String.concat " ")
