type report = {
  findings : Lint_finding.t list;
  files_scanned : int;
}

(* -- filesystem ---------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  src

let rec collect_ml cfg path acc =
  if Lint_config.excluded cfg path then acc
  else if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc entry -> collect_ml cfg (Filename.concat path entry) acc)
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let collect cfg paths =
  List.fold_left (fun acc p -> collect_ml cfg p acc) [] paths
  |> List.sort_uniq String.compare

(* -- per-file lint ------------------------------------------------- *)

let parse_implementation ~file src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf file;
  Parse.implementation lexbuf

let lint_source ~cfg ~file src =
  match parse_implementation ~file src with
  | structure -> Lint_rules.run ~cfg ~file structure
  | exception exn ->
      let line, col, detail =
        match exn with
        | Syntaxerr.Error err ->
            let loc = Syntaxerr.location_of_error err in
            ( loc.loc_start.pos_lnum,
              loc.loc_start.pos_cnum - loc.loc_start.pos_bol,
              "syntax error" )
        | Lexer.Error (_, loc) ->
            ( loc.loc_start.pos_lnum,
              loc.loc_start.pos_cnum - loc.loc_start.pos_bol,
              "lexer error" )
        | exn -> (1, 0, Printexc.to_string exn)
      in
      [
        Lint_finding.at ~file ~line ~col ~rule:"P0"
          (Printf.sprintf "cannot parse: %s" detail);
      ]

let lint_file ~cfg ?as_path path =
  let file = match as_path with Some p -> p | None -> path in
  lint_source ~cfg ~file (read_file path)

(* Every library implementation needs a matching interface: the .mli
   is where invariants on the numeric API live, and an absent one
   leaks representation details the rest of the checks assume are
   private. *)
let check_mli_pairing ~cfg files =
  List.filter_map
    (fun file ->
      if
        Lint_config.lib_code cfg file
        && (not (Lint_config.mli_exempted cfg file))
        && not (Sys.file_exists (file ^ "i"))
      then
        Some
          (Lint_finding.at ~file ~line:1 ~col:0 ~rule:"H1"
             (Printf.sprintf "missing interface %s for library module"
                (Filename.basename file ^ "i")))
      else None)
    files

let run ~cfg paths =
  let files = collect cfg paths in
  let findings =
    List.concat_map (fun file -> lint_file ~cfg file) files
    @ check_mli_pairing ~cfg files
  in
  { findings = List.sort Lint_finding.order findings;
    files_scanned = List.length files }

(* -- reporting ----------------------------------------------------- *)

let counts_by_rule findings =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun f ->
      let r = f.Lint_finding.rule in
      Hashtbl.replace tbl r (1 + Option.value ~default:0 (Hashtbl.find_opt tbl r)))
    findings;
  Hashtbl.fold (fun r n acc -> (r, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let report_to_json t =
  Obs.Json.Obj
    [
      ("tool", Obs.Json.String "ctslint");
      ("version", Obs.Json.Int 1);
      ("files_scanned", Obs.Json.Int t.files_scanned);
      ( "counts",
        Obs.Json.Obj
          (List.map
             (fun (r, n) -> (r, Obs.Json.Int n))
             (counts_by_rule t.findings)) );
      ("findings", Obs.Json.List (List.map Lint_finding.to_json t.findings));
    ]

let print_report ?(oc = stdout) t =
  List.iter
    (fun f -> output_string oc (Lint_finding.to_string f ^ "\n"))
    t.findings;
  if t.findings = [] then
    Printf.fprintf oc "ctslint: %d file(s) clean\n" t.files_scanned
  else
    Printf.fprintf oc "ctslint: %d finding(s) in %d file(s) scanned (%s)\n"
      (List.length t.findings) t.files_scanned
      (counts_by_rule t.findings
      |> List.map (fun (r, n) -> Printf.sprintf "%s:%d" r n)
      |> String.concat " ")
