(** Project lint policy: which paths each rule applies to, plus the
    project-specific type knowledge a parsetree walker cannot infer
    (names of float-carrying record fields and float bindings).

    Loaded from a [.ctslint] file of [directive value] lines ([#]
    comments allowed); every directive appends to the built-in
    defaults. *)

type t = {
  excludes : string list;  (** skipped entirely *)
  allow_toplevel_state : string list;  (** C1 exemptions *)
  float_fields : string list;  (** record fields known to hold floats *)
  float_idents : string list;  (** identifiers known to hold floats *)
  kernel_paths : string list;  (** N2 scope *)
  domain_spawn_paths : string list;  (** C2: Domain.spawn allowed here *)
  clock_paths : string list;  (** C2: Unix.gettimeofday allowed here *)
  printf_allow : string list;  (** H1: stdout printers allowed here *)
  mli_exempt : string list;  (** H1: .mli pairing exemptions *)
  lib_prefixes : string list;  (** what counts as library code *)
}

val default : t

val of_string : string -> t
(** Raises [Failure] with a line-numbered message on a malformed
    directive. *)

val load : string -> t

(** Path predicates.  Patterns match when their [/]-separated
    components appear contiguously anywhere in the path, so
    [lib/core] matches both [lib/core/cts.ml] and
    [test/fixtures/lint/lib/core/bad.ml].  Both sides normalize
    first: a trailing [/], a doubled separator ([lib//core]) or [./]
    segments change nothing.  A pattern that normalizes to nothing is
    rejected at config-parse time (it could never match). *)

val normalize : string -> string list
(** [/]-separated components with empty and ["."] segments dropped
    and a leading ["./"] stripped. *)

val matches : string -> string -> bool
val excluded : t -> string -> bool
val toplevel_state_allowed : t -> string -> bool
val kernel : t -> string -> bool
val domain_spawn_allowed : t -> string -> bool
val clock_allowed : t -> string -> bool
val printf_allowed : t -> string -> bool
val mli_exempted : t -> string -> bool
val lib_code : t -> string -> bool
