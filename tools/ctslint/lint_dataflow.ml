(* F1 — intraprocedural NaN dataflow.

   Forward taint from NaN-producing sources (transcendentals, float
   division/power, float-of-string, numbers destructured out of
   parsed JSON) to decision sinks (Cac.Engine calls, Obs.Registry
   observations, serialized HTTP responses).  A path is reported only
   when no finiteness guard dominates the sink in source order:
   binding the value through [Guard.finite] cleanses it at the
   expression level, and a test ([Float.is_finite v], [Float.is_nan
   v], [classify_float v], an [assert] over one of those) cleanses
   the tested variable from that point on.

   The analysis is deliberately linear — one pass per toplevel
   binding in source order, variables keyed by name — which
   approximates dominance well for the let-chain style of this
   codebase and keeps every reported path short enough to act on. *)

open Parsetree

let lid_name = Lint_rules.lid_name

type state = {
  facts : Lint_facts.t option;
  file : string;
  (* var name -> description of the NaN source that tainted it *)
  tainted : (string, string) Hashtbl.t;
  mutable findings : (int * Lint_finding.t) list;
}

(* -- name resolution ------------------------------------------------ *)

let strip_stdlib n =
  if String.length n > 7 && String.sub n 0 7 = "Stdlib." then
    String.sub n 7 (String.length n - 7)
  else n

let callee st e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match st.facts with
      | Some facts -> (
          match
            Lint_facts.resolve facts e.pexp_loc.Location.loc_start.pos_cnum
          with
          | Some n -> Some (strip_stdlib n)
          | None -> Some (lid_name txt))
      | None -> Some (lid_name txt))
  | _ -> None

(* Does [name]'s component list contain [pat]'s components as a
   contiguous run?  Lets one pattern cover both source spellings
   ("Engine.evaluate") and resolved paths ("Cac.Engine.evaluate"). *)
let contains_run name pat =
  let n = String.split_on_char '.' name
  and p = String.split_on_char '.' pat in
  let narr = Array.of_list n and parr = Array.of_list p in
  let nn = Array.length narr and np = Array.length parr in
  if np = 0 || np > nn then false
  else begin
    let hit = ref false in
    for i = 0 to nn - np do
      if not !hit then begin
        let ok = ref true in
        for j = 0 to np - 1 do
          if narr.(i + j) <> parr.(j) then ok := false
        done;
        if !ok then hit := true
      end
    done;
    !hit
  end

(* -- rule vocabulary ------------------------------------------------ *)

(* NaN producers.  [/.] and [**] make NaN from 0/0, inf-inf exponent
   corners; exp/log overflow or domain-error; of_string trusts its
   input. *)
let nan_sources =
  [
    "exp"; "expm1"; "log"; "log10"; "log1p"; "**"; "/."; "Float.exp";
    "Float.expm1"; "Float.log"; "Float.log10"; "Float.log1p"; "Float.pow";
    "Float.of_string"; "float_of_string"; "Float.of_string_opt";
  ]

(* Passing a value through one of these yields a finite float (or
   raises): expression-level cleansing. *)
let cleansers = [ "Guard.finite"; "Resilience.Guard.finite" ]

(* Testing a variable with one of these counts as a dominating guard
   for every later use of that variable. *)
let guard_tests =
  [
    "Float.is_finite"; "Float.is_nan"; "is_finite"; "is_nan";
    "classify_float"; "Float.classify_float"; "Guard.finite";
    "Resilience.Guard.finite";
  ]

(* Decision sinks: a NaN crossing one of these corrupts an admissible
   region, a metric series, or a serialized response. *)
let sink_patterns =
  [
    "Cac.Engine"; "Engine.evaluate"; "Engine.admit"; "Engine.fill";
    "Engine.decide"; "Registry.observe"; "Registry.set_gauge";
    "Http.json"; "Http.response";
  ]

let is_source n = List.mem n nan_sources
let is_cleanser n = List.exists (contains_run n) cleansers
let is_guard_test n = List.mem n guard_tests
let is_sink n = List.exists (fun p -> contains_run n p) sink_patterns

(* -- taint of an expression ---------------------------------------- *)

let rec first_some f = function
  | [] -> None
  | x :: tl -> ( match f x with Some _ as s -> s | None -> first_some f tl)

(* [Some description] when evaluating [e] may produce NaN under the
   current taint state. *)
let rec taint st e =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident v; _ } -> Hashtbl.find_opt st.tainted v
  | Pexp_apply (fn, args) -> (
      match callee st fn with
      | Some n when is_cleanser n -> None
      | Some n when is_source n ->
          Some
            (Printf.sprintf "%s at line %d" n
               e.pexp_loc.Location.loc_start.pos_lnum)
      | _ -> first_some (fun (_, a) -> taint st a) args)
  | Pexp_construct (_, Some a) | Pexp_variant (_, Some a) -> taint st a
  | Pexp_tuple es -> first_some (taint st) es
  | Pexp_constraint (a, _) -> taint st a
  | Pexp_field (a, _) -> taint st a
  | Pexp_ifthenelse (_, t, None) -> taint st t
  | Pexp_ifthenelse (_, t, Some e_) ->
      first_some (taint st) [ t; e_ ]
  | Pexp_sequence (_, b) -> taint st b
  | Pexp_let (_, _, body) -> taint st body
  | Pexp_match (_, cases) | Pexp_try (_, cases) ->
      first_some (fun c -> taint st c.pc_rhs) cases
  | Pexp_record (fields, base) -> (
      match first_some (fun (_, v) -> taint st v) fields with
      | Some _ as s -> s
      | None -> Option.bind base (taint st))
  | _ -> None

(* -- guards --------------------------------------------------------- *)

(* Clear every variable [cond] visibly tests for finiteness. *)
let apply_guard st cond =
  let open Ast_iterator in
  let it =
    {
      default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_apply (fn, args) when
              (match callee st fn with
              | Some n -> is_guard_test n
              | None -> false) ->
              List.iter
                (fun (_, a) ->
                  match a.pexp_desc with
                  | Pexp_ident { txt = Longident.Lident v; _ } ->
                      Hashtbl.remove st.tainted v
                  | _ -> ())
                args
          | _ -> ());
          default_iterator.expr it e);
    }
  in
  it.expr it cond

(* -- main walk ------------------------------------------------------ *)

let rec bound_var pat =
  match pat.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (p, _) -> bound_var p
  | _ -> None

(* A JSON float destructuring ([Obs.Json.Float x]) taints [x]: the
   number came off the wire. *)
let rec taint_json_patterns st pat =
  match pat.ppat_desc with
  | Ppat_construct ({ txt; _ }, Some (_, arg)) ->
      let n = lid_name txt in
      (if contains_run n "Json.Float" then
         match bound_var arg with
         | Some v ->
             Hashtbl.replace st.tainted v
               (Printf.sprintf "JSON number destructured at line %d"
                  pat.ppat_loc.Location.loc_start.pos_lnum)
         | None -> ());
      taint_json_patterns st arg
  | Ppat_tuple ps -> List.iter (taint_json_patterns st) ps
  | Ppat_or (a, b) ->
      taint_json_patterns st a;
      taint_json_patterns st b
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> taint_json_patterns st p
  | _ -> ()

let report st loc ~sink ~source =
  let f =
    Lint_finding.v ~file:st.file ~loc ~rule:"F1"
      (Printf.sprintf
         "possible NaN reaches %s: value influenced by %s with no \
          dominating finiteness guard; pass it through \
          Resilience.Guard.finite or test Float.is_finite first"
         sink source)
  in
  st.findings <- (loc.Location.loc_start.pos_cnum, f) :: st.findings

let rec walk st e =
  match e.pexp_desc with
  | Pexp_let (_, vbs, body) ->
      List.iter
        (fun vb ->
          walk st vb.pvb_expr;
          match bound_var vb.pvb_pat with
          | Some v -> (
              match taint st vb.pvb_expr with
              | Some src -> Hashtbl.replace st.tainted v src
              | None -> Hashtbl.remove st.tainted v)
          | None -> ())
        vbs;
      walk st body
  | Pexp_sequence (a, b) ->
      walk st a;
      walk st b
  | Pexp_assert cond ->
      walk st cond;
      apply_guard st cond
  | Pexp_ifthenelse (c, t, e_) ->
      walk st c;
      (* A finiteness test dominating the branches also dominates
         everything after the conditional in this linear model —
         faithful for the early-exit style the codebase uses. *)
      apply_guard st c;
      walk st t;
      Option.iter (walk st) e_
  | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
      walk st scrut;
      apply_guard st scrut;
      List.iter
        (fun c ->
          taint_json_patterns st c.pc_lhs;
          Option.iter (walk st) c.pc_guard;
          walk st c.pc_rhs)
        cases
  | Pexp_apply (fn, args) ->
      (match callee st fn with
      | Some n when is_sink n -> (
          match first_some (fun (_, a) -> taint st a) args with
          | Some source -> report st e.pexp_loc ~sink:n ~source
          | None -> ())
      | Some n when is_guard_test n ->
          (* e.g. a bare [Guard.finite ~label x] statement *)
          apply_guard st e
      | _ -> ());
      walk st fn;
      List.iter (fun (_, a) -> walk st a) args
  | Pexp_fun (_, default, _, body) ->
      Option.iter (walk st) default;
      walk st body
  | Pexp_function cases ->
      List.iter
        (fun c ->
          taint_json_patterns st c.pc_lhs;
          Option.iter (walk st) c.pc_guard;
          walk st c.pc_rhs)
        cases
  | Pexp_construct (_, Some a) | Pexp_variant (_, Some a) -> walk st a
  | Pexp_tuple es -> List.iter (walk st) es
  | Pexp_constraint (a, _) | Pexp_coerce (a, _, _) -> walk st a
  | Pexp_field (a, _) -> walk st a
  | Pexp_setfield (a, _, b) ->
      walk st a;
      walk st b
  | Pexp_record (fields, base) ->
      List.iter (fun (_, v) -> walk st v) fields;
      Option.iter (walk st) base
  | Pexp_array es -> List.iter (walk st) es
  | Pexp_while (c, b) ->
      walk st c;
      walk st b
  | Pexp_for (_, lo, hi, _, b) ->
      walk st lo;
      walk st hi;
      walk st b
  | Pexp_open (_, b) | Pexp_letmodule (_, _, b) | Pexp_letexception (_, b)
  | Pexp_lazy b | Pexp_newtype (_, b) ->
      walk st b
  | _ -> ()

let run ?facts ~file structure =
  let waivers = Lint_rules.collect_waivers structure in
  let findings = ref [] in
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              let st =
                { facts; file; tainted = Hashtbl.create 8; findings = [] }
              in
              walk st vb.pvb_expr;
              findings := st.findings @ !findings)
            vbs
      | _ -> ())
    structure;
  !findings
  |> List.filter (fun (offset, _) ->
         not (Lint_rules.span_waived waivers ~rule:"F1" offset))
  |> List.map snd
  |> List.sort Lint_finding.order
