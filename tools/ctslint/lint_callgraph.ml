(* L1/E1 — whole-program passes over a lightweight call graph.

   One harvest walk per toplevel binding collects, per function:
   outgoing calls (with an "inside a catcher" flag), direct blocking
   operations, direct raise sites, and direct mutations of the
   module's toplevel mutable state.  Two analyses then run over the
   graph:

   - L1 (lock/Domain discipline): blocking operations and
     fault-injection points must not be reachable from a
     [Mutex.protect] critical section (the [Srv.Cac_api] engine mutex
     serializes the decision hot path — a sleep inside it stalls
     every worker domain), and toplevel mutable state must not be
     mutated by code reachable from a [Domain.spawn] site (Atomic and
     DLS state never matches because only the C1 allocator vocabulary
     defines "toplevel mutable state").  Critical sections travel
     through lock wrappers: a function whose [Mutex.protect] thunk
     calls one of its own parameters (the [with_engine] pattern)
     makes every closure passed at its call sites a critical section.

   - E1 (exception escape): a handler registered with [Router.route]
     or a task handed to [Domain.spawn] must not have an escaping
     raise in its call graph — exceptions there surface as blanket
     500s or are lost until [Domain.join].  [try], [match ... with
     exception], [Guard.protect], [Guard.retry] and [Breaker.call]
     count as catchers; calls to [*_exn] functions count as raise
     sites; [assert] does not (it is the N2 guard idiom).

   Resolution is name-based: a qualified call resolves to every known
   function whose dotted name ends with the called path (preferring a
   same-module match); an unqualified call resolves only within its
   own module.  The same analysis therefore runs from source
   spellings (syntactic backend, fixtures) and from resolved
   typedtree paths (typed backend). *)

open Parsetree

type input = {
  file : string;
  modname : string;
  structure : Parsetree.structure;
  facts : Lint_facts.t option;
}

(* -- vocabulary ----------------------------------------------------- *)

let blocking_patterns =
  [
    "Unix.sleepf"; "Unix.sleep"; "Unix.select"; "Unix.accept"; "Unix.connect";
    "Unix.recv"; "Unix.send"; "Unix.read"; "Unix.write"; "Thread.delay";
    "Domain.join"; "Fault.inject"; "Fault.inject_float"; "Io.read_line";
    "Io.read_exactly"; "Unix.fsync"; "Unix.single_write";
  ]

let mutator_patterns =
  [
    "Hashtbl.replace"; "Hashtbl.add"; "Hashtbl.remove"; "Hashtbl.reset";
    "Hashtbl.clear"; "Queue.push"; "Queue.add"; "Queue.pop"; "Queue.take";
    "Queue.clear"; "Stack.push"; "Stack.pop"; "Buffer.add_string";
    "Buffer.add_char"; "Buffer.clear"; "Buffer.reset"; "Array.set";
    "Bytes.set"; "Array.fill"; "Array.blit";
  ]

let raiser_names = [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ]

(* Calling through one of these catches whatever the thunk raises. *)
let catcher_patterns = [ "Guard.protect"; "Guard.retry"; "Breaker.call" ]

let lock_patterns = [ "Mutex.protect" ]

let allocator_names =
  [
    "ref"; "Hashtbl.create"; "Buffer.create"; "Queue.create"; "Stack.create";
    "Array.make"; "Array.create_float"; "Bytes.create"; "Bytes.make";
  ]

let contains_run name pat =
  let narr = Array.of_list (String.split_on_char '.' name)
  and parr = Array.of_list (String.split_on_char '.' pat) in
  let nn = Array.length narr and np = Array.length parr in
  if np = 0 || np > nn then false
  else begin
    let hit = ref false in
    for i = 0 to nn - np do
      if not !hit then begin
        let ok = ref true in
        for j = 0 to np - 1 do
          if narr.(i + j) <> parr.(j) then ok := false
        done;
        if !ok then hit := true
      end
    done;
    !hit
  end

let matches_any name pats = List.exists (contains_run name) pats

(* Last component ends in "_exn": the project convention for a
   raising variant, treated as a direct raise site. *)
let exn_suffixed name =
  match List.rev (String.split_on_char '.' name) with
  | last :: _ ->
      let n = String.length last in
      n > 4 && String.sub last (n - 4) 4 = "_exn"
  | [] -> false

let strip_stdlib n =
  if String.length n > 7 && String.sub n 0 7 = "Stdlib." then
    String.sub n 7 (String.length n - 7)
  else n

(* -- harvested shapes ----------------------------------------------- *)

type call = { callee : string; caught : bool }

type fn_info = {
  qname : string;  (** e.g. "Cac.Engine.evaluate" *)
  fn_file : string;
  params : string list;
  mutable calls : call list;
  mutable blocking : (string * Location.t) list;
  mutable raise_site : (string * Location.t) option;  (** outside catchers *)
  mutable mutations : (string * Location.t) list;
  mutable lock_wrapper : bool;
}

(* A critical section or entry-point site: function names to resolve
   plus inline closures already harvested. *)
type site = {
  site_file : string;
  site_mod : string;
  site_loc : Location.t;
  site_desc : string;
  site_targets : string list;
  site_inline : fn_info list;
}

type harvest_ctx = {
  facts : Lint_facts.t option;
  file : string;
  modname : string;
  toplevel_mutable : string list;
  spawns : site list ref;
  regions : site list ref;  (** Mutex.protect critical sections *)
  routes : site list ref;
  hof_sites : site list ref;
      (** applications passing a closure argument; become critical
          sections when the callee turns out to be a lock wrapper *)
}

let fresh_info ?(params = []) ~qname ~file () =
  {
    qname;
    fn_file = file;
    params;
    calls = [];
    blocking = [];
    raise_site = None;
    mutations = [];
    lock_wrapper = false;
  }

let site ctx ~loc ~desc ~targets ~inline =
  {
    site_file = ctx.file;
    site_mod = ctx.modname;
    site_loc = loc;
    site_desc = desc;
    site_targets = targets;
    site_inline = inline;
  }

(* -- harvest walk ---------------------------------------------------- *)

let callee_name ~facts e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match facts with
      | Some facts -> (
          match
            Lint_facts.resolve facts e.pexp_loc.Location.loc_start.pos_cnum
          with
          | Some n -> Some (strip_stdlib n)
          | None -> Some (Lint_rules.lid_name txt))
      | None -> Some (Lint_rules.lid_name txt))
  | _ -> None

let rec bound_var pat =
  match pat.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (p, _) -> bound_var p
  | _ -> None

let rec peel_funs params e =
  match e.pexp_desc with
  | Pexp_fun (_, _, pat, body) ->
      let params =
        match bound_var pat with Some v -> v :: params | None -> params
      in
      peel_funs params body
  | _ -> (List.rev params, e)

let has_exception_case cases =
  List.exists
    (fun c ->
      let rec exn p =
        match p.ppat_desc with
        | Ppat_exception _ -> true
        | Ppat_or (a, b) -> exn a || exn b
        | Ppat_alias (p, _) | Ppat_constraint (p, _) -> exn p
        | _ -> false
      in
      exn c.pc_lhs)
    cases

(* Closure-shaped argument of an entry-point call: names to resolve
   plus a harvested inline lambda. *)
let rec closure_target ctx info a =
  match a.pexp_desc with
  | Pexp_fun _ | Pexp_function _ ->
      let sub =
        fresh_info
          ~qname:
            (Printf.sprintf "%s.<fun@%d>" info.qname
               a.pexp_loc.Location.loc_start.pos_lnum)
          ~file:ctx.file ()
      in
      harvest ctx sub ~caught:false a;
      ([], [ sub ])
  | Pexp_ident _ -> (
      match callee_name ~facts:ctx.facts a with
      | Some t -> ([ t ], [])
      | None -> ([], []))
  | Pexp_apply (f, _) -> (
      (* Partial application: the task is whatever [f] names. *)
      match callee_name ~facts:ctx.facts f with
      | Some t -> ([ t ], [])
      | None -> ([], []))
  | Pexp_constraint (a, _) -> closure_target ctx info a
  | _ -> ([], [])

and harvest ctx info ~caught e =
  let name_of e = callee_name ~facts:ctx.facts e in
  let walk = harvest ctx info in
  let walk_cases ~caught cases =
    List.iter
      (fun c ->
        Option.iter (walk ~caught) c.pc_guard;
        walk ~caught c.pc_rhs)
      cases
  in
  match e.pexp_desc with
  | Pexp_ident _ -> (
      match name_of e with
      | Some n ->
          if matches_any n blocking_patterns then
            info.blocking <- (n, e.pexp_loc) :: info.blocking;
          if
            (not caught)
            && (List.mem n raiser_names || exn_suffixed n)
            && info.raise_site = None
          then info.raise_site <- Some (n, e.pexp_loc);
          info.calls <- { callee = n; caught } :: info.calls
      | None -> ())
  | Pexp_apply (fn, args) ->
      let n = Option.value ~default:"" (name_of fn) in
      (* Mutation of toplevel state. *)
      (let mutated target desc =
         match name_of target with
         | Some v when List.mem v ctx.toplevel_mutable ->
             info.mutations <- (desc v, e.pexp_loc) :: info.mutations
         | _ -> ()
       in
       if n = ":=" then (
         match args with
         | (_, lhs) :: _ -> mutated lhs (fun v -> v ^ " := ...")
         | [] -> ())
       else if matches_any n mutator_patterns then
         match args with
         | (_, target) :: _ ->
             mutated target (fun v -> Printf.sprintf "%s on %s" n v)
         | [] -> ());
      (* Domain.spawn: harvest the task. *)
      (if contains_run n "Domain.spawn" then
         let targets, inline =
           List.fold_left
             (fun (ts, is_) (_, a) ->
               let t, i = closure_target ctx info a in
               (t @ ts, i @ is_))
             ([], []) args
         in
         ctx.spawns :=
           site ctx ~loc:e.pexp_loc ~desc:"Domain.spawn task" ~targets ~inline
           :: !(ctx.spawns));
      (* Router.route registration: the handler is the last argument. *)
      (if contains_run n "Router.route" then
         let path =
           List.fold_left
             (fun acc (_, a) ->
               match a.pexp_desc with
               | Pexp_constant (Pconst_string (s, _, _)) -> Some s
               | _ -> acc)
             None args
         in
         match List.rev args with
         | (_, h) :: _ ->
             let targets, inline = closure_target ctx info h in
             ctx.routes :=
               site ctx ~loc:e.pexp_loc
                 ~desc:
                   (match path with
                   | Some p -> Printf.sprintf "handler for %S" p
                   | None -> "route handler")
                 ~targets ~inline
               :: !(ctx.routes)
         | [] -> ());
      (* Mutex.protect: the thunk is a critical section. *)
      (if matches_any n lock_patterns then
         match List.rev args with
         | (_, thunk) :: _ -> (
             match thunk.pexp_desc with
             | Pexp_fun _ | Pexp_function _ ->
                 let sub =
                   fresh_info ~qname:(info.qname ^ ".<critical>")
                     ~file:ctx.file ()
                 in
                 harvest ctx sub ~caught:false thunk;
                 (* A thunk calling the enclosing function's own
                    parameters makes that function a lock wrapper. *)
                 let param_calls, own_calls =
                   List.partition
                     (fun c -> List.mem c.callee info.params)
                     sub.calls
                 in
                 if param_calls <> [] then info.lock_wrapper <- true;
                 sub.calls <- own_calls;
                 ctx.regions :=
                   site ctx ~loc:e.pexp_loc
                     ~desc:(Printf.sprintf "%s in %s" n info.qname)
                     ~targets:[] ~inline:[ sub ]
                   :: !(ctx.regions)
             | _ -> ())
         | [] -> ());
      (* Any call passing a closure argument: a critical section if
         the callee turns out to be a lock wrapper. *)
      (if
         n <> ""
         && (not (matches_any n lock_patterns))
         && List.exists
              (fun (_, a) ->
                match a.pexp_desc with
                | Pexp_fun _ | Pexp_function _ -> true
                | _ -> false)
              args
       then
         let inline =
           List.filter_map
             (fun (_, a) ->
               match a.pexp_desc with
               | Pexp_fun _ | Pexp_function _ ->
                   let sub =
                     fresh_info
                       ~qname:
                         (Printf.sprintf "%s.<fun@%d>" info.qname
                            a.pexp_loc.Location.loc_start.pos_lnum)
                       ~file:ctx.file ()
                   in
                   harvest ctx sub ~caught:false a;
                   Some sub
               | _ -> None)
             args
         in
         ctx.hof_sites :=
           site ctx ~loc:e.pexp_loc
             ~desc:(Printf.sprintf "closure passed to %s" n)
             ~targets:[ n ] ~inline
           :: !(ctx.hof_sites));
      (* Calls through a catcher contain the thunk's raises. *)
      let catcher = matches_any n catcher_patterns in
      walk ~caught fn;
      List.iter (fun (_, a) -> walk ~caught:(caught || catcher) a) args
  | Pexp_setfield (target, _, v) ->
      (match name_of target with
      | Some tv when List.mem tv ctx.toplevel_mutable ->
          info.mutations <-
            (tv ^ ".<field> <- ...", e.pexp_loc) :: info.mutations
      | _ -> ());
      walk ~caught target;
      walk ~caught v
  | Pexp_try (b, cases) ->
      walk ~caught:true b;
      walk_cases ~caught cases
  | Pexp_match (scrut, cases) ->
      walk ~caught:(caught || has_exception_case cases) scrut;
      walk_cases ~caught cases
  | Pexp_function cases -> walk_cases ~caught cases
  | Pexp_fun (_, default, _, b) ->
      Option.iter (walk ~caught) default;
      walk ~caught b
  | Pexp_let (_, vbs, b) ->
      List.iter (fun vb -> walk ~caught vb.pvb_expr) vbs;
      walk ~caught b
  | Pexp_letop { let_; ands; body } ->
      walk ~caught let_.pbop_exp;
      List.iter (fun a -> walk ~caught a.pbop_exp) ands;
      walk ~caught body
  | Pexp_sequence (a, b) ->
      walk ~caught a;
      walk ~caught b
  | Pexp_ifthenelse (c, t, e_) ->
      walk ~caught c;
      walk ~caught t;
      Option.iter (walk ~caught) e_
  | Pexp_construct (_, Some a) | Pexp_variant (_, Some a) -> walk ~caught a
  | Pexp_tuple es | Pexp_array es -> List.iter (walk ~caught) es
  | Pexp_constraint (a, _) | Pexp_coerce (a, _, _) -> walk ~caught a
  | Pexp_field (a, _) -> walk ~caught a
  | Pexp_record (fields, base) ->
      List.iter (fun (_, v) -> walk ~caught v) fields;
      Option.iter (walk ~caught) base
  | Pexp_while (c, b) ->
      walk ~caught c;
      walk ~caught b
  | Pexp_for (_, lo, hi, _, b) ->
      walk ~caught lo;
      walk ~caught hi;
      walk ~caught b
  | Pexp_assert a -> walk ~caught:true a
  | Pexp_lazy b
  | Pexp_open (_, b)
  | Pexp_letmodule (_, _, b)
  | Pexp_letexception (_, b)
  | Pexp_newtype (_, b) ->
      walk ~caught b
  | _ -> ()

(* -- toplevel mutable state (C1 vocabulary) ------------------------- *)

let rec peel_constraints e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) -> peel_constraints e
  | _ -> e

let toplevel_mutable_names ~facts structure =
  List.concat_map
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.filter_map
            (fun vb ->
              match bound_var vb.pvb_pat with
              | None -> None
              | Some v -> (
                  match (peel_constraints vb.pvb_expr).pexp_desc with
                  | Pexp_apply (fn, _) -> (
                      match callee_name ~facts fn with
                      | Some n when List.mem n allocator_names -> Some v
                      | _ -> None)
                  | _ -> None))
            vbs
      | _ -> [])
    structure

(* -- resolution and reachability ------------------------------------ *)

let parent_mod qname =
  match List.rev (String.split_on_char '.' qname) with
  | _ :: (_ :: _ as rev_mods) -> String.concat "." (List.rev rev_mods)
  | _ -> ""

let rec is_suffix suf l =
  if List.length suf > List.length l then false
  else if List.length suf = List.length l then suf = l
  else match l with [] -> false | _ :: tl -> is_suffix suf tl

(* Qualified names may resolve across modules (matching a qualified
   suffix); bare names only within their own module — matching a bare
   [create] against every module's [create] would invent edges. *)
let resolve tbl ~self_mod name =
  let self_key = self_mod ^ "." ^ name in
  if Hashtbl.mem tbl self_key then [ self_key ]
  else
    let comps = String.split_on_char '.' name in
    if List.length comps < 2 then []
    else
      Hashtbl.fold
        (fun k _ acc ->
          if is_suffix comps (String.split_on_char '.' k) then k :: acc
          else acc)
        tbl []

(* Breadth-first search from a site over the call graph.  [stop]
   inspects each function; the first payload found is returned with
   the chain of qualified names that led there.  [edges] selects
   which calls propagate (all of them for L1 — catching an exception
   does not unblock a sleep — uncaught only for E1). *)
let search tbl ~edges ~stop st =
  let visited = Hashtbl.create 32 in
  let queue = Queue.create () in
  let seed_calls self_mod info chain =
    List.iter
      (fun c ->
        if edges c then
          List.iter
            (fun q ->
              if not (Hashtbl.mem visited q) then begin
                Hashtbl.replace visited q ();
                Queue.add (q, chain) queue
              end)
            (resolve tbl ~self_mod c.callee))
      info.calls
  in
  let result = ref None in
  List.iter
    (fun info ->
      if !result = None then
        match stop info with
        | Some payload -> result := Some ([], payload)
        | None -> seed_calls st.site_mod info [])
    st.site_inline;
  List.iter
    (fun t ->
      List.iter
        (fun q ->
          if not (Hashtbl.mem visited q) then begin
            Hashtbl.replace visited q ();
            Queue.add (q, []) queue
          end)
        (resolve tbl ~self_mod:st.site_mod t))
    st.site_targets;
  while !result = None && not (Queue.is_empty queue) do
    let q, chain = Queue.pop queue in
    match Hashtbl.find_opt tbl q with
    | None -> ()
    | Some info -> (
        let chain = chain @ [ q ] in
        match stop info with
        | Some payload -> result := Some (chain, payload)
        | None -> seed_calls (parent_mod q) info chain)
  done;
  !result

let pp_loc (loc : Location.t) =
  Printf.sprintf "%s:%d" loc.loc_start.pos_fname loc.loc_start.pos_lnum

let pp_chain = function
  | [] -> ""
  | chain -> Printf.sprintf " (via %s)" (String.concat " -> " chain)

(* -- the passes ------------------------------------------------------ *)

type acc = { mutable found : (string * int * Lint_finding.t) list }

let add acc ~file ~(loc : Location.t) ~rule msg =
  acc.found <-
    (file, loc.loc_start.pos_cnum, Lint_finding.v ~file ~loc ~rule msg)
    :: acc.found

let l1_blocking tbl acc sites =
  List.iter
    (fun st ->
      match
        search tbl
          ~edges:(fun _ -> true)
          ~stop:(fun info ->
            match info.blocking with
            | (op, loc) :: _ -> Some (op, loc)
            | [] -> None)
          st
      with
      | Some (chain, (op, loc)) ->
          add acc ~file:st.site_file ~loc:st.site_loc ~rule:"L1"
            (Printf.sprintf
               "blocking operation %s (%s) reachable from %s%s while the \
                lock is held; move it outside the critical section"
               op (pp_loc loc) st.site_desc (pp_chain chain))
      | None -> ())
    sites

let l1_spawn_mutations tbl acc spawns =
  List.iter
    (fun st ->
      match
        search tbl
          ~edges:(fun _ -> true)
          ~stop:(fun info ->
            match info.mutations with
            | (what, loc) :: _ -> Some (what, loc)
            | [] -> None)
          st
      with
      | Some (chain, (what, loc)) ->
          add acc ~file:st.site_file ~loc:st.site_loc ~rule:"L1"
            (Printf.sprintf
               "%s reaches a mutation of toplevel state [%s] (%s)%s; use \
                Atomic, Domain.DLS, or pass the state explicitly"
               st.site_desc what (pp_loc loc) (pp_chain chain))
      | None -> ())
    spawns

let e1_escapes tbl acc entries =
  List.iter
    (fun st ->
      match
        search tbl
          ~edges:(fun c ->
            (* A catcher is a boundary: do not descend into its own
               implementation looking for re-raises. *)
            (not c.caught) && not (matches_any c.callee catcher_patterns))
          ~stop:(fun info ->
            match info.raise_site with
            | Some (n, loc) -> Some (n, loc)
            | None -> None)
          st
      with
      | Some (chain, (n, loc)) ->
          add acc ~file:st.site_file ~loc:st.site_loc ~rule:"E1"
            (Printf.sprintf
               "%s can raise: %s at %s escapes%s; wrap the boundary in \
                Guard.protect or map the failure to a response"
               st.site_desc n (pp_loc loc) (pp_chain chain))
      | None -> ())
    entries

(* -- entry point ----------------------------------------------------- *)

let modname_of_path file =
  let base = Filename.remove_extension (Filename.basename file) in
  let m = String.capitalize_ascii base in
  match List.rev (String.split_on_char '/' (Filename.dirname file)) with
  | dir :: "lib" :: _ ->
      let prefix =
        match dir with "server" -> "Srv" | d -> String.capitalize_ascii d
      in
      prefix ^ "." ^ m
  | _ -> m

let run ~cfg inputs =
  let tbl : (string, fn_info) Hashtbl.t = Hashtbl.create 256 in
  let spawns = ref [] and regions = ref [] in
  let routes = ref [] and hof_sites = ref [] in
  let waivers_by_file = Hashtbl.create 16 in
  (* Harvest every toplevel binding of every input. *)
  List.iter
    (fun (input : input) ->
      Hashtbl.replace waivers_by_file input.file
        (Lint_rules.collect_waivers input.structure);
      let toplevel_mutable =
        if Lint_config.toplevel_state_allowed cfg input.file then []
        else toplevel_mutable_names ~facts:input.facts input.structure
      in
      let ctx =
        {
          facts = input.facts;
          file = input.file;
          modname = input.modname;
          toplevel_mutable;
          spawns;
          regions;
          routes;
          hof_sites;
        }
      in
      List.iter
        (fun item ->
          match item.pstr_desc with
          | Pstr_value (_, vbs) ->
              List.iter
                (fun vb ->
                  match bound_var vb.pvb_pat with
                  | None -> ()
                  | Some name ->
                      let params, _ = peel_funs [] vb.pvb_expr in
                      let info =
                        fresh_info ~params
                          ~qname:(input.modname ^ "." ^ name)
                          ~file:input.file ()
                      in
                      harvest ctx info ~caught:false vb.pvb_expr;
                      Hashtbl.replace tbl info.qname info)
                vbs
          | _ -> ())
        input.structure)
    inputs;
  (* Closures handed to lock wrappers are critical sections too. *)
  let wrapper_regions =
    List.filter
      (fun st ->
        List.exists
          (fun t ->
            List.exists
              (fun q ->
                match Hashtbl.find_opt tbl q with
                | Some info -> info.lock_wrapper
                | None -> false)
              (resolve tbl ~self_mod:st.site_mod t))
          st.site_targets)
      !hof_sites
  in
  let acc = { found = [] } in
  l1_blocking tbl acc (!regions @ wrapper_regions);
  l1_spawn_mutations tbl acc !spawns;
  e1_escapes tbl acc (!routes @ !spawns);
  acc.found
  |> List.filter (fun (file, offset, f) ->
         match Hashtbl.find_opt waivers_by_file file with
         | Some waivers ->
             not (Lint_rules.span_waived waivers ~rule:f.Lint_finding.rule offset)
         | None -> true)
  |> List.map (fun (_, _, f) -> f)
  |> List.sort_uniq Lint_finding.order
