(* Type facts harvested from a .cmt typedtree, keyed by the character
   offset of the expression they describe.  Locations survive
   [Untypeast] unchanged, so a fact recorded against a typedtree node
   applies verbatim to the corresponding parsetree node the rule
   walkers see: the rules stay written once, against the parsetree,
   and consult this table when the typed backend produced one. *)

type t = {
  (* offset -> "this expression has type float" (true) or "has a
     known non-float type" (false).  Offsets absent from the table
     carry no type information (e.g. synthesized nodes). *)
  floats : (int, bool) Hashtbl.t;
  (* offset of an identifier expression -> fully-resolved dotted path
     ("Stdlib.exp", "Cac.Engine.evaluate"), dune wrapping unmangled. *)
  resolved : (int, string) Hashtbl.t;
}

let create () = { floats = Hashtbl.create 256; resolved = Hashtbl.create 256 }

let record_type t ~offset ~is_float =
  (* First write wins: the outermost node at an offset is recorded
     first by the top-down iterator and is the one the parsetree
     walker asks about. *)
  if not (Hashtbl.mem t.floats offset) then
    Hashtbl.replace t.floats offset is_float

let record_resolved t ~offset name =
  if not (Hashtbl.mem t.resolved offset) then
    Hashtbl.replace t.resolved offset name

let float_typed t offset = Hashtbl.find_opt t.floats offset
let resolve t offset = Hashtbl.find_opt t.resolved offset
