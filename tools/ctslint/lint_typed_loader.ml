(* Typed-backend front-end: find the .cmt dune left for a source
   file, harvest type facts from its typedtree, and untype it back to
   a parsetree for the shared rule walkers.

   dune writes .cmt files under <build>/<dir>/.<lib>.objs/byte/ with
   [cmt_sourcefile] holding the context-relative source path
   ("lib/cac/engine.ml"), which is exactly the path the driver scans
   — the index below is keyed on it directly.  Generated alias
   modules ("core.ml-gen") are skipped. *)

type loaded = {
  source : string;
  structure : Parsetree.structure;
  facts : Lint_facts.t;
  modname : string;  (** unmangled, e.g. ["Cac.Engine"] *)
}

(* -- dune module-name mangling ------------------------------------- *)

let drop_prefix ~prefix s =
  let np = String.length prefix in
  if String.length s >= np && String.sub s 0 np = prefix then
    String.sub s np (String.length s - np)
  else s

(* "Cac__Engine" -> "Cac.Engine"; "Dune__exe__Cts_cli" -> "Cts_cli". *)
let unmangle name =
  let name = drop_prefix ~prefix:"Dune__exe__" name in
  let buf = Buffer.create (String.length name) in
  let n = String.length name in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && name.[!i] = '_' && name.[!i + 1] = '_' then begin
      Buffer.add_char buf '.';
      i := !i + 2
    end
    else begin
      Buffer.add_char buf name.[!i];
      incr i
    end
  done;
  Buffer.contents buf

(* -- build-dir scan ------------------------------------------------- *)

let rec scan_cmts dir acc =
  match Sys.readdir dir with
  | entries ->
      Array.fold_left
        (fun acc entry ->
          let path = Filename.concat dir entry in
          if Sys.is_directory path then scan_cmts path acc
          else if Filename.check_suffix path ".cmt" then path :: acc
          else acc)
        acc entries
  | exception Sys_error _ -> acc

(* source path (as scanned by the driver) -> cmt path *)
let index ~build_root =
  let tbl = Hashtbl.create 128 in
  List.iter
    (fun cmt_path ->
      match Cmt_format.read_cmt cmt_path with
      | { Cmt_format.cmt_sourcefile = Some src; _ }
        when Filename.check_suffix src ".ml" ->
          if not (Hashtbl.mem tbl src) then Hashtbl.replace tbl src cmt_path
      | _ -> ()
      | exception _ -> ())
    (scan_cmts build_root []);
  tbl

(* The default build root: the dune context when run from the
   workspace root, the current directory when already inside it (the
   @lint-typed alias runs there). *)
let default_build_root () =
  if Sys.file_exists "_build/default" && Sys.is_directory "_build/default" then
    "_build/default"
  else "."

(* -- fact harvesting ------------------------------------------------ *)

let rec float_typed ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, [], _) ->
      if Path.same p Predef.path_float then Some true else Some false
  | Types.Tconstr (_, _, _) -> Some false
  | Types.Tpoly (ty, _) -> float_typed ty
  | _ -> None

let harvest_facts (str : Typedtree.structure) =
  let facts = Lint_facts.create () in
  let expr sub (e : Typedtree.expression) =
    let offset = e.Typedtree.exp_loc.Location.loc_start.Lexing.pos_cnum in
    (match float_typed e.Typedtree.exp_type with
    | Some is_float -> Lint_facts.record_type facts ~offset ~is_float
    | None -> ());
    (match e.Typedtree.exp_desc with
    | Typedtree.Texp_ident (path, _, _) ->
        Lint_facts.record_resolved facts ~offset (unmangle (Path.name path))
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.Tast_iterator.structure it str;
  facts

(* -- entry points --------------------------------------------------- *)

let load_cmt ~source cmt_path =
  match Cmt_format.read_cmt cmt_path with
  | { Cmt_format.cmt_annots = Cmt_format.Implementation str;
      cmt_modname;
      _ } ->
      let facts = harvest_facts str in
      let structure = Untypeast.untype_structure str in
      Ok { source; structure; facts; modname = unmangle cmt_modname }
  | _ -> Error "cmt carries no implementation typedtree"
  | exception exn ->
      Error (Printf.sprintf "cannot read cmt: %s" (Printexc.to_string exn))

let load ~index ~source =
  match Hashtbl.find_opt index source with
  | None ->
      Error
        "no .cmt found for this module (is it part of a dune library or \
         executable? run `dune build @check` first)"
  | Some cmt_path -> load_cmt ~source cmt_path
