type t = {
  excludes : string list;
  allow_toplevel_state : string list;
  float_fields : string list;
  float_idents : string list;
  kernel_paths : string list;
  domain_spawn_paths : string list;
  clock_paths : string list;
  printf_allow : string list;
  mli_exempt : string list;
  lib_prefixes : string list;
}

let default =
  {
    excludes = [ "_build"; ".git" ];
    allow_toplevel_state = [ "lib/obs/registry.ml" ];
    float_fields = [];
    float_idents = [];
    kernel_paths = [ "lib/core"; "lib/numerics" ];
    domain_spawn_paths = [ "lib/cac/sweep.ml" ];
    clock_paths = [ "lib/obs/clock.ml" ];
    printf_allow = [ "lib/obs/sink.ml"; "lib/experiments/ascii_plot.ml" ];
    mli_exempt = [];
    lib_prefixes = [ "lib" ];
  }

(* -- path matching ------------------------------------------------- *)

let normalize path =
  let path =
    if String.length path > 1 && String.sub path 0 2 = "./" then
      String.sub path 2 (String.length path - 2)
    else path
  in
  String.split_on_char '/' path |> List.filter (fun c -> c <> "" && c <> ".")

(* A pattern matches a path when its component sequence appears as a
   contiguous run anywhere in the path's components.  Infix (rather
   than prefix) matching lets the same config drive both repo-root
   runs ([lib/core/cts.ml]) and fixture trees that embed the layout
   ([test/fixtures/lint/lib/core/bad.ml]). *)
let matches path pattern =
  let p = normalize path and q = normalize pattern in
  let np = List.length p and nq = List.length q in
  if nq = 0 || nq > np then false
  else
    let parr = Array.of_list p and qarr = Array.of_list q in
    let rec at i j = j >= nq || (parr.(i + j) = qarr.(j) && at i (j + 1)) in
    let rec scan i = i + nq <= np && (at i 0 || scan (i + 1)) in
    scan 0

let matches_any path patterns = List.exists (matches path) patterns

let excluded t path = matches_any path t.excludes
let toplevel_state_allowed t path = matches_any path t.allow_toplevel_state
let kernel t path = matches_any path t.kernel_paths
let domain_spawn_allowed t path = matches_any path t.domain_spawn_paths
let clock_allowed t path = matches_any path t.clock_paths
let printf_allowed t path = matches_any path t.printf_allow
let mli_exempted t path = matches_any path t.mli_exempt
let lib_code t path = matches_any path t.lib_prefixes

(* -- config file --------------------------------------------------- *)

let strip s = String.trim s

let parse_line t lineno line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let line = strip line in
  if line = "" then t
  else
    let key, value =
      match String.index_opt line ' ' with
      | Some i ->
          ( String.sub line 0 i,
            strip (String.sub line i (String.length line - i)) )
      | None -> (line, "")
    in
    if value = "" then
      failwith (Printf.sprintf "line %d: directive %S needs a value" lineno key)
    else
      (* Path patterns normalize before matching ([lib//core] and
         [lib/core/] both mean [lib/core]); one that normalizes to
         nothing ([/], [./], [.]) would never match anything, so
         reject it here instead of silently ignoring the directive. *)
      let path_pattern v =
        if normalize v = [] then
          failwith
            (Printf.sprintf
               "line %d: path pattern %S normalizes to nothing and would \
                never match"
               lineno v)
        else v
      in
      match key with
      | "exclude" -> { t with excludes = t.excludes @ [ path_pattern value ] }
      | "allow-toplevel-state" ->
          {
            t with
            allow_toplevel_state =
              t.allow_toplevel_state @ [ path_pattern value ];
          }
      | "float-field" -> { t with float_fields = t.float_fields @ [ value ] }
      | "float-ident" -> { t with float_idents = t.float_idents @ [ value ] }
      | "kernel-path" ->
          { t with kernel_paths = t.kernel_paths @ [ path_pattern value ] }
      | "domain-spawn-path" ->
          {
            t with
            domain_spawn_paths = t.domain_spawn_paths @ [ path_pattern value ];
          }
      | "clock-path" ->
          { t with clock_paths = t.clock_paths @ [ path_pattern value ] }
      | "printf-allow" ->
          { t with printf_allow = t.printf_allow @ [ path_pattern value ] }
      | "mli-exempt" ->
          { t with mli_exempt = t.mli_exempt @ [ path_pattern value ] }
      | "lib-prefix" ->
          { t with lib_prefixes = t.lib_prefixes @ [ path_pattern value ] }
      | _ -> failwith (Printf.sprintf "line %d: unknown directive %S" lineno key)

let of_string src =
  let lines = String.split_on_char '\n' src in
  let t, _ =
    List.fold_left
      (fun (t, lineno) line -> (parse_line t lineno line, lineno + 1))
      (default, 1) lines
  in
  t

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  try of_string src
  with Failure msg -> failwith (Printf.sprintf "%s: %s" path msg)
