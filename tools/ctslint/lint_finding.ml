type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  msg : string;
}

let v ~file ~loc ~rule msg =
  let p = loc.Location.loc_start in
  {
    file;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    rule;
    msg;
  }

let at ~file ~line ~col ~rule msg = { file; line; col; rule; msg }

let order a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> String.compare a.rule b.rule
          | c -> c)
      | c -> c)
  | c -> c

let to_string f =
  Printf.sprintf "%s:%d:%d %s %s" f.file f.line f.col f.rule f.msg

let to_json f =
  Obs.Json.Obj
    [
      ("file", Obs.Json.String f.file);
      ("line", Obs.Json.Int f.line);
      ("col", Obs.Json.Int f.col);
      ("rule", Obs.Json.String f.rule);
      ("message", Obs.Json.String f.msg);
    ]
