(** File discovery, parsing and report assembly around
    {!Lint_rules}. *)

type report = {
  findings : Lint_finding.t list;
  files_scanned : int;
}

val lint_source :
  cfg:Lint_config.t -> file:string -> string -> Lint_finding.t list
(** Lint one implementation given as a string.  Unparseable input
    yields a single [P0] finding rather than an exception, so a broken
    file cannot hide other findings or crash CI. *)

val lint_file :
  cfg:Lint_config.t -> ?as_path:string -> string -> Lint_finding.t list
(** Lint a file on disk.  [as_path] overrides the path used for
    findings and path-scoped rules — tests use it to lint fixtures as
    if they lived under [lib/]. *)

val run : cfg:Lint_config.t -> string list -> report
(** Recursively lint every [.ml] under the given files/directories
    (skipping [exclude]d paths) and check the H1 [.mli] pairing for
    library modules.  Findings come back in report order. *)

val report_to_json : report -> Obs.Json.t

val print_report : ?oc:out_channel -> report -> unit
(** One [file:line:col rule-id message] line per finding plus a
    trailing summary line. *)
