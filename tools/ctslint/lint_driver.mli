(** File discovery, backend selection and report assembly around
    {!Lint_rules}, {!Lint_dataflow} and {!Lint_callgraph}. *)

type backend =
  | Syntactic  (** parse sources directly; zero build required *)
  | Typed
      (** load dune's [.cmt] typedtrees — real float types for N1/N2,
          resolved names for the flow rules; a missing [.cmt] is a
          [T0] finding, never a silent fallback *)
  | Both  (** union of the two, deduplicated per rule and position *)

type report = {
  findings : Lint_finding.t list;
  files_scanned : int;
}

val lint_source :
  cfg:Lint_config.t -> file:string -> string -> Lint_finding.t list
(** Syntactically lint one implementation given as a string.
    Unparseable input yields a single [P0] finding rather than an
    exception, so a broken file cannot hide other findings or crash
    CI. *)

val lint_file :
  cfg:Lint_config.t -> ?as_path:string -> string -> Lint_finding.t list
(** Lint a file on disk.  [as_path] overrides the path used for
    findings and path-scoped rules — tests use it to lint fixtures as
    if they lived under [lib/]. *)

val flow_file :
  cfg:Lint_config.t -> ?as_path:string -> string -> Lint_finding.t list
(** Run only the flow rules (F1, and L1/E1 over the file's own
    single-module call graph) on one file — how the fixture tests
    exercise them without a build. *)

val run :
  ?backend:backend ->
  ?flow:bool ->
  ?build_root:string ->
  cfg:Lint_config.t ->
  string list ->
  report
(** Recursively lint every [.ml] under the given files/directories
    (skipping [exclude]d paths) and check the H1 [.mli] pairing for
    library modules.  Findings come back in report order,
    deduplicated by (file, line, column, rule).

    [backend] defaults to [Syntactic].  [flow] additionally runs the
    F1/L1/E1 flow rules under the syntactic backend (they always run
    under the typed one).  [build_root] is where the typed backend
    looks for [.cmt]s, default {!Lint_typed_loader.default_build_root}. *)

val report_to_json : report -> Obs.Json.t

val print_report : ?oc:out_channel -> report -> unit
(** One [file:line:col rule-id message] line per finding plus a
    trailing summary line. *)
