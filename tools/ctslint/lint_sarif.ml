(* SARIF 2.1.0 export — the static-analysis interchange shape GitHub
   code scanning ingests.  One run, one driver, one result per
   finding; rule metadata is collected from whichever rules actually
   fired so the log stays small.  SARIF regions are 1-based while the
   linter's columns are 0-based (compiler convention), hence the +1
   on startColumn. *)

let schema_uri =
  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

let rule_help = function
  | "N1" -> "Structural equality on floats; use Float.equal/Float.compare."
  | "N2" -> "Unguarded exp/log//. in a numeric kernel; guard inputs."
  | "C1" -> "Toplevel mutable state outside the allowlist."
  | "C2" -> "Domain.spawn or wall-clock call outside its sanctioned module."
  | "H1" -> "Hygiene: stdout printing from library code or missing .mli."
  | "F1" -> "Possible NaN flows to a decision sink with no finiteness guard."
  | "L1" -> "Blocking call under a lock, or spawned task mutating shared state."
  | "E1" -> "Exception can escape a request handler or spawned task."
  | "P0" -> "Source failed to parse."
  | "T0" -> "Typed backend could not load a .cmt for this source."
  | r -> r

(* Everything the linter reports is a correctness hazard, not a style
   nit; P0/T0 are analysis failures.  Both map to SARIF "error" so CI
   treats any result as actionable, except hygiene which is
   "warning". *)
let rule_level = function "H1" -> "warning" | _ -> "error"

let result_of_finding (f : Lint_finding.t) =
  Obs.Json.Obj
    [
      ("ruleId", Obs.Json.String f.rule);
      ("level", Obs.Json.String (rule_level f.rule));
      ("message", Obs.Json.Obj [ ("text", Obs.Json.String f.msg) ]);
      ( "locations",
        Obs.Json.List
          [
            Obs.Json.Obj
              [
                ( "physicalLocation",
                  Obs.Json.Obj
                    [
                      ( "artifactLocation",
                        Obs.Json.Obj
                          [
                            ("uri", Obs.Json.String f.file);
                            ("uriBaseId", Obs.Json.String "SRCROOT");
                          ] );
                      ( "region",
                        Obs.Json.Obj
                          [
                            ("startLine", Obs.Json.Int (max 1 f.line));
                            ("startColumn", Obs.Json.Int (f.col + 1));
                          ] );
                    ] );
              ];
          ] );
    ]

let rules_of_findings findings =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun (f : Lint_finding.t) ->
      if Hashtbl.mem seen f.rule then None
      else begin
        Hashtbl.replace seen f.rule ();
        Some
          (Obs.Json.Obj
             [
               ("id", Obs.Json.String f.rule);
               ( "shortDescription",
                 Obs.Json.Obj
                   [ ("text", Obs.Json.String (rule_help f.rule)) ] );
               ( "defaultConfiguration",
                 Obs.Json.Obj
                   [ ("level", Obs.Json.String (rule_level f.rule)) ] );
             ])
      end)
    findings

let of_findings ?(tool_version = "2") findings =
  let findings = List.sort Lint_finding.order findings in
  Obs.Json.Obj
    [
      ("$schema", Obs.Json.String schema_uri);
      ("version", Obs.Json.String "2.1.0");
      ( "runs",
        Obs.Json.List
          [
            Obs.Json.Obj
              [
                ( "tool",
                  Obs.Json.Obj
                    [
                      ( "driver",
                        Obs.Json.Obj
                          [
                            ("name", Obs.Json.String "ctslint");
                            ( "informationUri",
                              Obs.Json.String
                                "https://example.invalid/ctslint" );
                            ("version", Obs.Json.String tool_version);
                            ( "rules",
                              Obs.Json.List (rules_of_findings findings) );
                          ] );
                    ] );
                ( "results",
                  Obs.Json.List (List.map result_of_finding findings) );
              ];
          ] );
    ]

let to_string ?tool_version findings =
  Obs.Json.to_string (of_findings ?tool_version findings)

let write ?tool_version ~path findings =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string ?tool_version findings);
      output_char oc '\n')
