(* ctslint — project-specific static analysis for numeric safety and
   Domain-parallelism discipline.  See docs/static-analysis.md for the
   rule catalogue and rationale.

   Exit codes: 0 clean, 1 findings, 2 usage/internal error. *)

open Ctslint_lib

let usage =
  "ctslint [--backend typed|syntactic|both] [--config FILE] [--json FILE]\n\
  \        [--sarif FILE] [--flow] [--quiet] [PATH...]\n\
   Lints every .ml under the given paths (default: lib bin bench)\n\
   against the project rules N1 N2 C1 C2 H1 F1 L1 E1; exits 1 on\n\
   findings.  The typed backend reads dune's .cmt artifacts (build\n\
   them with `dune build @check`) and refuses to degrade silently —\n\
   a source with no .cmt is a T0 finding."

let () =
  let config_path = ref None in
  let json_path = ref None in
  let sarif_path = ref None in
  let backend = ref Lint_driver.Syntactic in
  let flow = ref false in
  let quiet = ref false in
  let paths = ref [] in
  let set_backend = function
    | "syntactic" -> backend := Lint_driver.Syntactic
    | "typed" -> backend := Lint_driver.Typed
    | "both" -> backend := Lint_driver.Both
    | other ->
        Printf.eprintf
          "ctslint: unknown backend %S (expected typed|syntactic|both)\n"
          other;
        exit 2
  in
  let spec =
    [
      ( "--backend",
        Arg.String set_backend,
        "WHICH analysis backend: syntactic (default), typed, or both" );
      ( "--config",
        Arg.String (fun s -> config_path := Some s),
        "FILE read policy from FILE (default: .ctslint if present)" );
      ( "--json",
        Arg.String (fun s -> json_path := Some s),
        "FILE also write a machine-readable report to FILE" );
      ( "--sarif",
        Arg.String (fun s -> sarif_path := Some s),
        "FILE also write a SARIF 2.1.0 log to FILE (code scanning)" );
      ( "--flow",
        Arg.Set flow,
        " run the F1/L1/E1 flow rules under the syntactic backend too" );
      ("--quiet", Arg.Set quiet, " suppress the human-readable report");
    ]
  in
  (try Arg.parse spec (fun p -> paths := p :: !paths) usage
   with exn ->
     prerr_endline (Printexc.to_string exn);
     exit 2);
  let cfg =
    match !config_path with
    | Some path -> (
        try Lint_config.load path
        with Failure msg | Sys_error msg ->
          Printf.eprintf "ctslint: bad config: %s\n" msg;
          exit 2)
    | None ->
        if Sys.file_exists ".ctslint" then Lint_config.load ".ctslint"
        else Lint_config.default
  in
  let paths =
    match List.rev !paths with
    | [] ->
        List.filter Sys.file_exists [ "lib"; "bin"; "bench" ]
    | ps -> ps
  in
  let missing = List.filter (fun p -> not (Sys.file_exists p)) paths in
  if missing <> [] then begin
    Printf.eprintf "ctslint: no such path: %s\n" (String.concat ", " missing);
    exit 2
  end;
  let report = Lint_driver.run ~backend:!backend ~flow:!flow ~cfg paths in
  if not !quiet then Lint_driver.print_report report;
  (match !json_path with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Obs.Json.to_string (Lint_driver.report_to_json report));
      output_char oc '\n';
      close_out oc);
  (match !sarif_path with
  | None -> ()
  | Some path -> Lint_sarif.write ~path report.Lint_driver.findings);
  exit (if report.Lint_driver.findings = [] then 0 else 1)
