(* ctslint — project-specific static analysis for numeric safety and
   Domain-parallelism discipline.  See docs/static-analysis.md for the
   rule catalogue and rationale.

   Exit codes: 0 clean, 1 findings, 2 usage/internal error. *)

open Ctslint_lib

let usage =
  "ctslint [--config FILE] [--json FILE] [--quiet] [PATH...]\n\
   Lints every .ml under the given paths (default: lib bin bench)\n\
   against the project rules N1 N2 C1 C2 H1; exits 1 on findings."

let () =
  let config_path = ref None in
  let json_path = ref None in
  let quiet = ref false in
  let paths = ref [] in
  let spec =
    [
      ( "--config",
        Arg.String (fun s -> config_path := Some s),
        "FILE read policy from FILE (default: .ctslint if present)" );
      ( "--json",
        Arg.String (fun s -> json_path := Some s),
        "FILE also write a machine-readable report to FILE" );
      ("--quiet", Arg.Set quiet, " suppress the human-readable report");
    ]
  in
  (try Arg.parse spec (fun p -> paths := p :: !paths) usage
   with exn ->
     prerr_endline (Printexc.to_string exn);
     exit 2);
  let cfg =
    match !config_path with
    | Some path -> (
        try Lint_config.load path
        with Failure msg | Sys_error msg ->
          Printf.eprintf "ctslint: bad config: %s\n" msg;
          exit 2)
    | None ->
        if Sys.file_exists ".ctslint" then Lint_config.load ".ctslint"
        else Lint_config.default
  in
  let paths =
    match List.rev !paths with
    | [] ->
        List.filter Sys.file_exists [ "lib"; "bin"; "bench" ]
    | ps -> ps
  in
  let missing = List.filter (fun p -> not (Sys.file_exists p)) paths in
  if missing <> [] then begin
    Printf.eprintf "ctslint: no such path: %s\n" (String.concat ", " missing);
    exit 2
  end;
  let report = Lint_driver.run ~cfg paths in
  if not !quiet then Lint_driver.print_report report;
  (match !json_path with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Obs.Json.to_string (Lint_driver.report_to_json report));
      output_char oc '\n';
      close_out oc);
  exit (if report.Lint_driver.findings = [] then 0 else 1)
