(** F1 — intraprocedural NaN dataflow.

    Forward taint from NaN-producing sources ([exp]/[log]/[( /. )]/
    [( ** )], [Float.of_string], numbers destructured out of parsed
    JSON) to decision sinks ([Cac.Engine] calls, [Obs.Registry]
    observations, serialized HTTP responses), reporting only flows
    with no dominating finiteness guard ([Guard.finite],
    [Float.is_finite], [classify_float], or an [assert] over one).

    Runs on any parsetree; with [facts] (typed backend) callee names
    resolve through typedtree paths, so aliased or [open]ed sinks and
    sources are still seen.  [[@lint.allow "F1"]] waivers apply. *)

val run :
  ?facts:Lint_facts.t -> file:string -> Parsetree.structure ->
  Lint_finding.t list
