(** A single linter diagnostic: position, rule id and message. *)

type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  msg : string;
}

val v : file:string -> loc:Location.t -> rule:string -> string -> t
(** Position taken from [loc]'s start; columns are 0-based like the
    compiler's own diagnostics. *)

val at : file:string -> line:int -> col:int -> rule:string -> string -> t
(** For findings with no parsetree location (missing [.mli], parse
    errors at a known point). *)

val order : t -> t -> int
(** Report order: file, then line, then column, then rule id. *)

val to_string : t -> string
(** [file:line:col rule-id message] — one finding per line, the format
    editors and CI log scrapers already understand. *)

val to_json : t -> Obs.Json.t
