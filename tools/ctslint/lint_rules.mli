(** Parsetree-level rule checks.

    Rules (ids appear in findings and in [@lint.allow] payloads):

    - [N1] — no structural [=]/[<>] with a float-smelling operand and
      no polymorphic [compare] anywhere; floats need [Float.equal]/
      [Float.compare] or an epsilon helper (NaN breaks structural
      equality silently).
    - [N2] — in numeric kernels ([kernel-path]s), [exp]/[log]-family
      calls and [(/.)]  must sit inside a toplevel binding that
      visibly guards its inputs (assert / invalid_arg /
      [Float.is_finite] / [classify_float] ...), or carry a waiver.
    - [C1] — no toplevel mutable state ([ref], [Hashtbl.create],
      [Buffer.create], [Array.make], ...) at module level outside the
      [allow-toplevel-state] list.
    - [C2] — [Domain.spawn] only in the sanctioned parallel driver;
      [Unix.gettimeofday] only in [Obs.Clock].
    - [H1] — no direct stdout printing from library code outside the
      [printf-allow] list (the missing-[.mli] half of H1 lives in
      {!Lint_driver}).

    Waivers: [[@lint.allow "N1"]] on an expression or value binding
    suppresses the named rules (space/comma separated; no payload
    means all rules) within that node; [[@@@lint.allow "..."]] waives
    from its position to end of file. *)

val run :
  ?facts:Lint_facts.t -> cfg:Lint_config.t -> file:string ->
  Parsetree.structure -> Lint_finding.t list
(** Walk one implementation and return its unwaived findings in
    report order.  [file] is the repo-relative path used both for
    findings and for path-scoped rule applicability.  With [facts]
    (the typed backend), N1 consults the typechecker's float verdicts
    and callee names resolve through typedtree paths instead of
    source spellings. *)

val lid_name : Longident.t -> string
(** Dotted rendering of a longident, shared by the flow passes. *)

(** {2 Waivers, shared with the flow passes} *)

type waivers = (string list * int * int) list
(** [(rules, start-offset, end-offset)] character spans; an empty
    rule list waives everything in the span. *)

val collect_waivers : Parsetree.structure -> waivers
(** Harvest every [[@lint.allow]]/[[@@@lint.allow]] span. *)

val span_waived : waivers -> rule:string -> int -> bool
