(* Parsetree-level rule checks.  Everything here is syntactic: we see
   the program before typing, so "is this a float?" is answered by a
   conservative smell test (literals, float operators, known
   float-returning functions, configured field/ident names) rather
   than by the type checker.  False negatives are acceptable — the
   rules exist to catch the patterns that have actually bitten this
   codebase — but anything flagged is precise enough to act on. *)

open Parsetree

type ctx = {
  cfg : Lint_config.t;
  file : string;
  (* Typed facts from the .cmt backend; [None] on the syntactic
     backend.  When present, N1 asks the typechecker's answer instead
     of the float smell, and callee names resolve through the
     typedtree paths. *)
  facts : Lint_facts.t option;
  (* Findings paired with their start character offset, so waiver
     spans (also character offsets) can be applied after the walk. *)
  mutable findings : (int * Lint_finding.t) list;
  (* Waivers as [rules, start-offset, end-offset] character spans.  An
     empty rule list waives everything in the span. *)
  mutable waivers : (string list * int * int) list;
  (* Whether the enclosing toplevel binding contains a finiteness or
     argument-validation guard (N2). *)
  mutable guarded : bool;
  (* The module defines its own [compare] (e.g. Labels.compare), so
     later bare [compare] references are the typed local one, not the
     polymorphic Stdlib one. *)
  mutable local_compare : bool;
}

let add ctx loc rule msg =
  ctx.findings <-
    (loc.Location.loc_start.pos_cnum, Lint_finding.v ~file:ctx.file ~loc ~rule msg)
    :: ctx.findings

(* -- names --------------------------------------------------------- *)

let rec lid_name = function
  | Longident.Lident s -> s
  | Longident.Ldot (l, s) -> lid_name l ^ "." ^ s
  | Longident.Lapply (a, b) -> lid_name a ^ "(" ^ lid_name b ^ ")"

let ident_name e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (lid_name txt)
  | _ -> None

(* "Stdlib.exp" -> "exp", "Stdlib.Float.pow" -> "Float.pow": resolved
   paths are spelled the way the syntactic name lists expect. *)
let strip_stdlib n =
  if String.length n > 7 && String.sub n 0 7 = "Stdlib." then
    String.sub n 7 (String.length n - 7)
  else n

(* The full path an identifier resolves to (typed facts), or its
   source spelling. *)
let resolved_name ctx e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match ctx.facts with
      | Some facts -> (
          match
            Lint_facts.resolve facts e.pexp_loc.Location.loc_start.pos_cnum
          with
          | Some n -> Some n
          | None -> Some (lid_name txt))
      | None -> Some (lid_name txt))
  | _ -> None

(* The name an applied identifier actually denotes, spelled the way
   the syntactic name lists expect ([Stdlib.] stripped): with facts,
   aliases and [open]s cannot hide a kernel call. *)
let called_name ctx e = Option.map strip_stdlib (resolved_name ctx e)

let float_ops = [ "+."; "-."; "*."; "/."; "**"; "~-."; "~+." ]

let float_fns =
  [
    "exp"; "expm1"; "log"; "log10"; "log1p"; "sqrt"; "cbrt"; "sin"; "cos";
    "tan"; "asin"; "acos"; "atan"; "atan2"; "sinh"; "cosh"; "tanh";
    "abs_float"; "mod_float"; "float_of_int"; "float_of_string"; "float";
    "floor"; "ceil"; "ldexp"; "copysign"; "hypot";
  ]

(* Identifiers that are floats regardless of configuration. *)
let builtin_float_idents =
  [
    "infinity"; "neg_infinity"; "nan"; "max_float"; "min_float";
    "epsilon_float"; "Float.infinity"; "Float.neg_infinity"; "Float.nan";
    "Float.pi"; "Float.max_float"; "Float.min_float"; "Float.epsilon";
  ]

(* [Float.*] returns a float except for the predicates/conversions. *)
let float_module_nonfloat =
  [
    "Float.equal"; "Float.compare"; "Float.is_nan"; "Float.is_finite";
    "Float.is_integer"; "Float.sign_bit"; "Float.to_int"; "Float.to_string";
  ]

let exp_log_fns =
  [
    "exp"; "expm1"; "log"; "log10"; "log1p"; "Float.exp"; "Float.expm1";
    "Float.log"; "Float.log10"; "Float.log1p"; "Float.pow"; "**";
  ]

let stdout_printers =
  [
    "Printf.printf"; "print_string"; "print_endline"; "print_newline";
    "print_float"; "print_int"; "print_char"; "print_bytes";
    "Format.printf"; "Format.print_string"; "Format.print_newline";
  ]

let toplevel_allocators =
  [
    "ref"; "Hashtbl.create"; "Buffer.create"; "Array.make"; "Array.create";
    "Array.create_float"; "Array.init"; "Array.make_matrix"; "Queue.create";
    "Stack.create"; "Bytes.create"; "Bytes.make"; "Weak.create";
  ]

(* Tokens whose presence in a binding counts as "this code thought
   about bad inputs": explicit finiteness tests, float classification,
   or argument validation that rejects the degenerate cases before the
   transcendental call. *)
let guard_idents =
  [
    "Float.is_finite"; "Float.is_nan"; "is_finite"; "is_nan";
    "classify_float"; "Float.classify_float"; "infinity"; "neg_infinity";
    "nan"; "Float.infinity"; "Float.nan"; "invalid_arg"; "failwith";
    "Invalid_argument";
  ]

(* -- waivers ------------------------------------------------------- *)

let waiver_of_attribute (attr : attribute) =
  if attr.attr_name.txt <> "lint.allow" then None
  else
    match attr.attr_payload with
    | PStr [] -> Some []
    | PStr
        [
          {
            pstr_desc =
              Pstr_eval
                ( { pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ },
                  _ );
            _;
          };
        ] ->
        Some
          (String.split_on_char ' ' s
          |> List.concat_map (String.split_on_char ',')
          |> List.filter (fun r -> r <> ""))
    | _ -> None

let record_waivers ctx (loc : Location.t) attrs =
  List.iter
    (fun attr ->
      match waiver_of_attribute attr with
      | None -> ()
      | Some rules ->
          ctx.waivers <-
            (rules, loc.loc_start.pos_cnum, loc.loc_end.pos_cnum)
            :: ctx.waivers)
    attrs

let record_floating_waiver ctx (attr : attribute) =
  match waiver_of_attribute attr with
  | None -> ()
  | Some rules ->
      (* [@@@lint.allow "..."] waives from here to end of file. *)
      ctx.waivers <- (rules, attr.attr_loc.loc_start.pos_cnum, max_int)
      :: ctx.waivers

type waivers = (string list * int * int) list

let span_waived waivers ~rule offset =
  List.exists
    (fun (rules, lo, hi) ->
      offset >= lo && offset <= hi && (rules = [] || List.mem rule rules))
    waivers

let waived ctx rule offset = span_waived ctx.waivers ~rule offset

(* Standalone waiver harvest for the flow passes (F1/L1/E1 run
   outside this module's iterator but honor the same [@lint.allow]
   spans). *)
let collect_waivers structure =
  let acc = ref [] in
  let record (loc : Location.t) attrs =
    List.iter
      (fun attr ->
        match waiver_of_attribute attr with
        | None -> ()
        | Some rules ->
            acc := (rules, loc.loc_start.pos_cnum, loc.loc_end.pos_cnum) :: !acc)
      attrs
  in
  let open Ast_iterator in
  let it =
    {
      default_iterator with
      expr =
        (fun it e ->
          record e.pexp_loc e.pexp_attributes;
          default_iterator.expr it e);
      value_binding =
        (fun it vb ->
          record vb.pvb_loc vb.pvb_attributes;
          default_iterator.value_binding it vb);
      structure_item =
        (fun it item ->
          match item.pstr_desc with
          | Pstr_attribute attr -> (
              match waiver_of_attribute attr with
              | Some rules ->
                  acc :=
                    (rules, attr.attr_loc.loc_start.pos_cnum, max_int) :: !acc
              | None -> ())
          | Pstr_eval (_, attrs) ->
              record item.pstr_loc attrs;
              default_iterator.structure_item it item
          | _ -> default_iterator.structure_item it item);
    }
  in
  it.structure it structure;
  !acc

(* -- float smell (N1) ---------------------------------------------- *)

let rec smells_float_syntactic ctx e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_field (_, { txt; _ }) ->
      List.mem (Longident.last txt) ctx.cfg.Lint_config.float_fields
  | Pexp_ident { txt; _ } ->
      let n = lid_name txt in
      List.mem n builtin_float_idents
      || List.mem n ctx.cfg.Lint_config.float_idents
      || List.mem (Longident.last txt) ctx.cfg.Lint_config.float_idents
  | Pexp_constraint (inner, ty) -> (
      smells_float_syntactic ctx inner
      ||
      match ty.ptyp_desc with
      | Ptyp_constr ({ txt = Longident.Lident "float"; _ }, []) -> true
      | _ -> false)
  | Pexp_apply (fn, args) -> (
      match ident_name fn with
      | Some n when List.mem n float_ops -> true
      | Some n when List.mem n float_fns -> true
      | Some n
        when String.length n > 6
             && String.sub n 0 6 = "Float."
             && not (List.mem n float_module_nonfloat) ->
          true
      | Some ("~-" | "~+") -> (
          (* Unary minus is polymorphic-looking in the parsetree;
             recurse into the operand. *)
          match args with
          | [ (_, a) ] -> smells_float_syntactic ctx a
          | _ -> false)
      | _ -> false)
  | _ -> false

(* [smells_float_syntactic], upgraded by typed facts when available:
   the typechecker's verdict at the operand's offset overrides the
   smell in both directions (real floats the heuristics missed are
   caught; int/string operands that merely smelled floaty are
   cleared). *)
let smells_float ctx e =
  match ctx.facts with
  | Some facts -> (
      match
        Lint_facts.float_typed facts e.pexp_loc.Location.loc_start.pos_cnum
      with
      | Some verdict -> verdict
      | None -> smells_float_syntactic ctx e)
  | None -> smells_float_syntactic ctx e

(* -- N2 helpers ---------------------------------------------------- *)

(* Constant-foldable: literals and pure float functions of literals
   ([log10 (exp 1.0)], [4.0 *. atan 1.0]).  These evaluate once at
   module init to a value known finite, so N2 leaves them alone. *)
let rec constantish e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _ | Pconst_integer _) -> true
  | Pexp_apply (fn, args) -> (
      match ident_name fn with
      | Some ("~-" | "~-." | "~+" | "~+." | "float_of_int") -> (
          match args with [ (_, a) ] -> constantish a | _ -> false)
      | Some n when List.mem n float_fns || List.mem n float_ops ->
          List.for_all (fun (_, a) -> constantish a) args
      | _ -> false)
  | _ -> false

let has_guard expr =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_assert _ -> found := true
          | Pexp_ident { txt; _ } ->
              if List.mem (lid_name txt) guard_idents then found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it expr;
  !found

(* -- per-expression checks ----------------------------------------- *)

let check_expr ctx e =
  let loc = e.pexp_loc in
  (match e.pexp_desc with
  (* N1: structural equality with a float-smelling operand. *)
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Longident.Lident (("=" | "<>") as op); _ }; _ },
        [ (_, a); (_, b) ] )
    when smells_float ctx a || smells_float ctx b ->
      add ctx loc "N1"
        (Printf.sprintf
           "structural (%s) on a float operand; use Float.equal or an \
            epsilon helper"
           op)
  | _ -> ());
  (match e.pexp_desc with
  (* N1: polymorphic compare anywhere in linted code — it is
     structural on floats (NaN-hostile) and boxes on every call.
     A module that defines its own typed [compare] may keep using the
     short name afterwards. *)
  | Pexp_ident
      { txt = Longident.Lident "compare" | Longident.Ldot (Longident.Lident "Stdlib", "compare");
        _ }
    when (match ctx.facts with
         (* Typed: flag exactly when the name resolves to the
            polymorphic Stdlib.compare — a module-local typed
            [compare] resolves to a bare or dotted non-Stdlib path
            and needs no heuristic. *)
         | Some _ -> resolved_name ctx e = Some "Stdlib.compare"
         | None -> not ctx.local_compare) ->
      add ctx loc "N1"
        "polymorphic compare; use a typed comparator (Float.compare, \
         String.compare, Int.compare)"
  | _ -> ());
  (* N2: unguarded transcendental calls / divisions in numeric kernels. *)
  (if Lint_config.kernel ctx.cfg ctx.file && not ctx.guarded then
     match e.pexp_desc with
     | Pexp_apply (fn, args) -> (
         match called_name ctx fn with
         | Some n when List.mem n exp_log_fns ->
             let arg_constant =
               match args with [ (_, a) ] -> constantish a | _ -> false
             in
             if not arg_constant then
               add ctx loc "N2"
                 (Printf.sprintf
                    "unguarded %s in a numeric kernel: the enclosing \
                     toplevel binding has no finiteness check or argument \
                     validation (assert/invalid_arg/Float.is_finite); add \
                     one or waive with [@lint.allow \"N2\"]"
                    n)
         | Some "/." -> (
             match args with
             | [ _; (_, divisor) ] when not (constantish divisor) ->
                 add ctx loc "N2"
                   "unguarded (/.) in a numeric kernel: the enclosing \
                    toplevel binding has no finiteness check or argument \
                    validation; add one or waive with [@lint.allow \"N2\"]"
             | _ -> ())
         | _ -> ())
     | _ -> ());
  (* C2: concurrency and clock discipline. *)
  (match e.pexp_desc with
  | Pexp_ident _ -> (
      match Option.value ~default:"" (called_name ctx e) with
      | "Domain.spawn" when not (Lint_config.domain_spawn_allowed ctx.cfg ctx.file)
        ->
          add ctx loc "C2"
            "Domain.spawn outside the sanctioned parallel driver \
             (Cac.Sweep); route parallelism through it"
      | "Unix.gettimeofday"
        when not (Lint_config.clock_allowed ctx.cfg ctx.file) ->
          add ctx loc "C2"
            "Unix.gettimeofday outside Obs.Clock; use Obs.Clock.wall so \
             time is mockable and monotonic-clamped"
      | _ -> ())
  | _ -> ());
  (* H1: no direct stdout printing from library code. *)
  match called_name ctx e with
  | Some n
    when Lint_config.lib_code ctx.cfg ctx.file
         && (not (Lint_config.printf_allowed ctx.cfg ctx.file))
         && List.mem n stdout_printers ->
      add ctx loc "H1"
        (Printf.sprintf
           "%s in library code; route output through Obs.Sink (the human \
            sink respects --quiet) or Experiments.Ascii_plot"
           n)
  | _ -> ()

(* -- toplevel state (C1) ------------------------------------------- *)

let rec peel_constraint e =
  match e.pexp_desc with
  | Pexp_constraint (inner, _) -> peel_constraint inner
  | _ -> e

let check_toplevel_binding ctx (vb : value_binding) =
  if not (Lint_config.toplevel_state_allowed ctx.cfg ctx.file) then
    let rhs = peel_constraint vb.pvb_expr in
    match rhs.pexp_desc with
    | Pexp_apply (fn, _) -> (
        match ident_name fn with
        | Some n when List.mem n toplevel_allocators ->
            add ctx vb.pvb_loc "C1"
              (Printf.sprintf
                 "toplevel mutable state (%s) at module level: shared \
                  mutable toplevel state is unsynchronized under \
                  Domain-parallel sweeps; move it into Obs.Registry, pass \
                  it explicitly, or waive with a justification"
                 n)
        | _ -> ())
    | _ -> ()

(* -- driver -------------------------------------------------------- *)

let iterator ctx =
  let open Ast_iterator in
  {
    default_iterator with
    expr =
      (fun it e ->
        record_waivers ctx e.pexp_loc e.pexp_attributes;
        check_expr ctx e;
        default_iterator.expr it e);
    value_binding =
      (fun it vb ->
        record_waivers ctx vb.pvb_loc vb.pvb_attributes;
        default_iterator.value_binding it vb);
    structure_item =
      (fun it item ->
        match item.pstr_desc with
        | Pstr_attribute attr -> record_floating_waiver ctx attr
        | Pstr_eval (_, attrs) ->
            record_waivers ctx item.pstr_loc attrs;
            default_iterator.structure_item it item
        | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                check_toplevel_binding ctx vb;
                let saved = ctx.guarded in
                ctx.guarded <- has_guard vb.pvb_expr;
                it.value_binding it vb;
                ctx.guarded <- saved;
                match vb.pvb_pat.ppat_desc with
                | Ppat_var { txt = "compare"; _ } -> ctx.local_compare <- true
                | _ -> ())
              vbs
        | _ -> default_iterator.structure_item it item);
  }

let run ?facts ~cfg ~file structure =
  let ctx =
    { cfg; file; facts; findings = []; waivers = []; guarded = false;
      local_compare = false }
  in
  let it = iterator ctx in
  it.Ast_iterator.structure it structure;
  ctx.findings
  |> List.filter (fun (offset, f) ->
         not (waived ctx f.Lint_finding.rule offset))
  |> List.map snd
  |> List.sort Lint_finding.order
