(** L1/E1 — lock/Domain discipline and exception-escape checking over
    a lightweight, name-resolved call graph.

    - [L1] — blocking operations ([Unix.sleepf], socket reads,
      [Domain.join], [Resilience.Fault] injection points) must not be
      reachable from a [Mutex.protect] critical section, including
      closures handed to lock wrappers (the [with_engine] pattern);
      and toplevel mutable state must not be mutated by code
      reachable from a [Domain.spawn] site.
    - [E1] — handlers registered with [Router.route] and tasks handed
      to [Domain.spawn] must not have an escaping raise in their call
      graph; [try], [match ... with exception], [Guard.protect],
      [Guard.retry] and [Breaker.call] count as catchers.

    Analyses are whole-input: pass every module of interest in one
    [run] call so cross-module calls resolve.  [[@lint.allow
    "L1"/"E1"]] waivers in the file containing the reported site
    apply. *)

type input = {
  file : string;  (** repo-relative path, used in findings *)
  modname : string;  (** dotted module name, e.g. ["Cac.Engine"] *)
  structure : Parsetree.structure;
  facts : Lint_facts.t option;  (** typed backend's resolved names *)
}

val modname_of_path : string -> string
(** Conventional module name for a source path:
    ["lib/cac/engine.ml"] is ["Cac.Engine"] (with the [lib/server] →
    [Srv] renaming), anything else capitalizes the basename. *)

val run : cfg:Lint_config.t -> input list -> Lint_finding.t list
(** Harvest every input, then run both analyses and return unwaived
    findings in report order.  [cfg]'s [allow-toplevel-state] paths
    keep their module state out of the L1 mutation check. *)
