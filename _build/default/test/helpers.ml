(* Shared assertions and generators for the test suite. *)

let check_close ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g (tol %g)" msg expected actual
      tol

let check_close_rel ?(tol = 1e-9) msg expected actual =
  let scale = Stdlib.max 1e-12 (Float.abs expected) in
  if Float.abs (expected -. actual) /. scale > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g (rel tol %g)" msg expected
      actual tol

let check_true msg cond = Alcotest.(check bool) msg true cond

let check_int msg expected actual = Alcotest.(check int) msg expected actual

let rng ?(seed = 7) () = Numerics.Rng.create ~seed

(* Register a QCheck property as an alcotest case. *)
let qcheck ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f

(* Naive substring search, sufficient for test assertions. *)
let contains_substring haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  if nl = 0 then true
  else begin
    let rec scan i =
      if i + nl > hl then false
      else if String.sub haystack i nl = needle then true
      else scan (i + 1)
    in
    scan 0
  end
