open Helpers

let test_acf_values () =
  (* H = 0.5 is white noise. *)
  for k = 1 to 10 do
    check_close ~tol:1e-12
      (Printf.sprintf "H=0.5 lag %d" k)
      0.0
      (Traffic.Fgn.acf ~h:0.5 k)
  done;
  check_close "lag 0" 1.0 (Traffic.Fgn.acf ~h:0.8 0);
  (* r(1) = (2^2H - 2) / 2 = 2^(2H-1) - 1 *)
  check_close ~tol:1e-12 "H=0.9 lag 1"
    (0.5 *. ((2.0 ** 1.8) -. 2.0))
    (Traffic.Fgn.acf ~h:0.9 1)

let test_acf_tail () =
  (* r(k) ~ H(2H-1) k^(2H-2) *)
  let h = 0.85 in
  let k = 5000 in
  let exact = Traffic.Fgn.acf ~h k in
  let asymptotic =
    h *. ((2.0 *. h) -. 1.0) *. (float_of_int k ** ((2.0 *. h) -. 2.0))
  in
  check_close_rel ~tol:1e-4 "asymptotic tail" asymptotic exact

let test_davies_harte_moments () =
  let x = Traffic.Fgn.sample_davies_harte (rng ~seed:101 ()) ~h:0.8 ~n:65536 in
  (* LRD sample mean has standard error ~ n^(H-1) ~ 0.11 here; allow 3
     sigma. *)
  check_close ~tol:0.35 "mean 0" 0.0 (Numerics.Float_array.mean x);
  check_close ~tol:0.1 "variance 1" 1.0 (Numerics.Float_array.variance x)

let test_davies_harte_acf () =
  let h = 0.75 in
  let x = Traffic.Fgn.sample_davies_harte (rng ~seed:103 ()) ~h ~n:131072 in
  let sample = Stats.Acf.autocorrelation_fft x ~max_lag:5 in
  for k = 1 to 5 do
    check_close ~tol:0.02
      (Printf.sprintf "lag %d" k)
      (Traffic.Fgn.acf ~h k)
      sample.(k)
  done

let test_hosking_acf () =
  let h = 0.8 in
  (* Hosking is O(n^2); keep n modest and average replicates. *)
  let reps = 40 and n = 512 in
  let acc = Array.make 4 0.0 in
  let master = rng ~seed:105 () in
  for _ = 1 to reps do
    let x = Traffic.Fgn.sample_hosking (Numerics.Rng.split master) ~h ~n in
    let r = Stats.Acf.autocorrelation x ~max_lag:3 in
    for k = 0 to 3 do
      acc.(k) <- acc.(k) +. r.(k)
    done
  done;
  for k = 1 to 3 do
    check_close ~tol:0.05
      (Printf.sprintf "hosking mean acf lag %d" k)
      (Traffic.Fgn.acf ~h k)
      (acc.(k) /. float_of_int reps)
  done

let test_methods_agree () =
  (* Same H: the two exact methods must produce statistically equal
     variance of partial sums at small aggregate sizes. *)
  let h = 0.7 in
  let dh = Traffic.Fgn.sample_davies_harte (rng ~seed:107 ()) ~h ~n:16384 in
  let sums_var m x =
    let agg = Numerics.Float_array.aggregate x ~block:m in
    Numerics.Float_array.variance_population agg *. float_of_int (m * m)
  in
  let hos_reps = 30 in
  let master = rng ~seed:109 () in
  let hos_var =
    let acc = ref 0.0 in
    for _ = 1 to hos_reps do
      let x = Traffic.Fgn.sample_hosking (Numerics.Rng.split master) ~h ~n:1024 in
      acc := !acc +. sums_var 8 x
    done;
    !acc /. float_of_int hos_reps
  in
  check_close_rel ~tol:0.15 "V(8) agreement between methods" hos_var
    (sums_var 8 dh)

let test_process_wrapper () =
  let p = Traffic.Fgn.process ~block:4096 ~h:0.9 ~mean:500.0 ~variance:5000.0 () in
  check_close "mean metadata" 500.0 p.Traffic.Process.mean;
  check_true "hurst metadata" (p.Traffic.Process.hurst = Some 0.9);
  let x = Traffic.Process.generate p (rng ~seed:111 ()) 20_000 in
  let s = Stats.Descriptive.summarize x in
  (* H = 0.9 at n = 20k: both moments converge slowly (SE ~ n^(H-1)). *)
  check_close_rel ~tol:0.06 "generated mean" 500.0 s.Stats.Descriptive.mean;
  check_close_rel ~tol:0.3 "generated variance" 5000.0 s.Stats.Descriptive.variance

let suite =
  [
    case "acf known values" test_acf_values;
    case "acf asymptotic tail" test_acf_tail;
    case "davies-harte moments" test_davies_harte_moments;
    slow_case "davies-harte acf" test_davies_harte_acf;
    slow_case "hosking acf" test_hosking_acf;
    slow_case "methods agree on variance growth" test_methods_agree;
    case "process wrapper" test_process_wrapper;
    qcheck ~count:30 "acf positive and decreasing for H > 1/2"
      QCheck2.Gen.(float_range 0.55 0.95)
      (fun h ->
        let ok = ref true in
        for k = 1 to 50 do
          let r = Traffic.Fgn.acf ~h k in
          if not (r > 0.0 && r <= Traffic.Fgn.acf ~h (Stdlib.max 1 (k - 1)) +. 1e-12)
          then ok := false
        done;
        !ok);
  ]
