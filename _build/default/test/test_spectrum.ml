open Helpers

let pi = 4.0 *. atan 1.0

let ar1_spectrum rho variance =
  Core.Spectrum.create
    ~acf:(fun k -> rho ** float_of_int k)
    ~variance ()

let test_white_noise_flat () =
  let s = Core.Spectrum.create ~acf:(fun _ -> 0.0) ~variance:3.0 () in
  List.iter
    (fun w -> check_close ~tol:1e-9 "flat spectrum" 3.0 (Core.Spectrum.psd s w))
    [ 0.01; 0.5; 1.0; 2.0; pi ]

let test_ar1_closed_form () =
  (* AR(1) PSD: sigma^2 (1 - rho^2) / (1 - 2 rho cos w + rho^2). *)
  let rho = 0.7 and variance = 2.0 in
  let s = ar1_spectrum rho variance in
  List.iter
    (fun w ->
      let expected =
        variance *. (1.0 -. (rho *. rho))
        /. (1.0 -. (2.0 *. rho *. cos w) +. (rho *. rho))
      in
      check_close_rel ~tol:1e-6
        (Printf.sprintf "AR(1) psd at %g" w)
        expected
        (Core.Spectrum.psd s w))
    [ 0.05; 0.3; 1.0; 2.0; 3.0 ]

let test_total_power () =
  let s = ar1_spectrum 0.5 7.0 in
  check_close "total power is the variance" 7.0 (Core.Spectrum.total_power s)

let test_power_partition () =
  (* Low + high frequency mass = 1. *)
  let s = ar1_spectrum 0.8 1.0 in
  let low = Core.Spectrum.low_frequency_power s ~below:0.5 in
  let all = Core.Spectrum.low_frequency_power s ~below:pi in
  check_true "partial below total" (low < all);
  check_close ~tol:0.01 "full band carries all variance" 1.0 all;
  check_true "strong positive correlation concentrates power at low f"
    (low > 0.5)

let test_lrd_low_frequency_blowup () =
  (* An LRD source concentrates power at low frequency much harder than
     an SRD source with the same lag-1 correlation. *)
  let z = (Traffic.Models.z ~a:0.7).Traffic.Models.process in
  let lrd =
    Core.Spectrum.create ~acf:z.Traffic.Process.acf
      ~variance:z.Traffic.Process.variance ()
  in
  let srd = ar1_spectrum (z.Traffic.Process.acf 1) z.Traffic.Process.variance in
  check_true "LRD psd dominates at low frequency"
    (Core.Spectrum.psd lrd 0.005 > 2.0 *. Core.Spectrum.psd srd 0.005)

let test_cutoff_frequency () =
  check_close "m* = 1 -> pi" pi (Core.Spectrum.cutoff_frequency_of_cts ~m_star:1);
  check_close "m* = 10 -> pi/10" (pi /. 10.0)
    (Core.Spectrum.cutoff_frequency_of_cts ~m_star:10);
  let s = ar1_spectrum 0.821 5000.0 in
  let wc_small = Core.Spectrum.cutoff_frequency s ~mu:500.0 ~c:538.0 ~b:10.0 in
  let wc_large = Core.Spectrum.cutoff_frequency s ~mu:500.0 ~c:538.0 ~b:300.0 in
  check_true "bigger buffer, lower cutoff" (wc_large < wc_small)

let suite =
  [
    case "white noise is flat" test_white_noise_flat;
    case "AR(1) closed form" test_ar1_closed_form;
    case "total power" test_total_power;
    case "power partition" test_power_partition;
    case "LRD low-frequency dominance" test_lrd_low_frequency_blowup;
    case "cutoff frequency" test_cutoff_frequency;
    qcheck ~count:30 "psd non-negative for AR(1)"
      QCheck2.Gen.(pair (float_range 0.0 0.95) (float_range 0.05 3.1))
      (fun (rho, w) ->
        let s = ar1_spectrum rho 1.0 in
        Core.Spectrum.psd s w >= -1e-6);
  ]
