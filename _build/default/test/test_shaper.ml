open Helpers

let dar rho =
  Traffic.Dar.make
    (Traffic.Dar.gaussian_marginal ~mean:500.0 ~variance:5000.0)
    { Traffic.Dar.rho; weights = [| 1.0 |] }

let test_window_one_identity () =
  let p = dar 0.8 in
  let s = Traffic.Shaper.smooth p ~window:1 in
  check_close "same variance" p.Traffic.Process.variance s.Traffic.Process.variance;
  check_close ~tol:1e-12 "same acf" (p.Traffic.Process.acf 3) (s.Traffic.Process.acf 3)

let test_mean_preserved_variance_reduced () =
  let p = dar 0.5 in
  let s = Traffic.Shaper.smooth p ~window:4 in
  check_close "mean preserved" 500.0 s.Traffic.Process.mean;
  check_true "variance reduced"
    (s.Traffic.Process.variance < p.Traffic.Process.variance);
  check_close_rel ~tol:1e-12 "reduction factor consistent"
    (Traffic.Shaper.variance_reduction p ~window:4)
    (s.Traffic.Process.variance /. p.Traffic.Process.variance)

let test_iid_variance_reduction () =
  (* For iid input, MA(w) variance is sigma^2 / w and
     acf(k) = (w - k)/w for k < w. *)
  let p = dar 0.0 in
  let w = 5 in
  let s = Traffic.Shaper.smooth p ~window:w in
  check_close_rel ~tol:1e-12 "iid variance / w"
    (5000.0 /. float_of_int w)
    s.Traffic.Process.variance;
  for k = 1 to w - 1 do
    check_close ~tol:1e-12
      (Printf.sprintf "triangular acf at %d" k)
      (float_of_int (w - k) /. float_of_int w)
      (s.Traffic.Process.acf k)
  done;
  check_close ~tol:1e-12 "acf zero beyond window" 0.0 (s.Traffic.Process.acf w)

let test_simulation_matches_analytics () =
  let p = dar 0.7 in
  let s = Traffic.Shaper.smooth p ~window:3 in
  let x = Traffic.Process.generate s (rng ~seed:211 ()) 150_000 in
  let st = Stats.Descriptive.summarize x in
  check_close_rel ~tol:0.01 "simulated mean" 500.0 st.Stats.Descriptive.mean;
  check_close_rel ~tol:0.05 "simulated variance" s.Traffic.Process.variance
    st.Stats.Descriptive.variance;
  let sample = Stats.Acf.autocorrelation_fft x ~max_lag:5 in
  for k = 1 to 5 do
    check_close ~tol:0.02
      (Printf.sprintf "simulated acf lag %d" k)
      (s.Traffic.Process.acf k)
      sample.(k)
  done

let test_hurst_preserved () =
  (* Smoothing must not remove LRD: the ACF tail exponent survives. *)
  let z = (Traffic.Models.z ~a:0.975).Traffic.Models.process in
  let s = Traffic.Shaper.smooth z ~window:12 in
  check_true "hurst metadata preserved"
    (s.Traffic.Process.hurst = z.Traffic.Process.hurst);
  let ratio_original = z.Traffic.Process.acf 2000 /. z.Traffic.Process.acf 1000 in
  let ratio_smoothed = s.Traffic.Process.acf 2000 /. s.Traffic.Process.acf 1000 in
  check_close ~tol:0.01 "tail decay exponent untouched" ratio_original
    ratio_smoothed

let test_cts_of_smoothed_source () =
  (* Smoothing reduces short-term variability, so the smoothed source
     should admit a strictly better (smaller) loss estimate at equal
     buffer. *)
  let z = (Traffic.Models.z ~a:0.975).Traffic.Models.process in
  let s = Traffic.Shaper.smooth z ~window:6 in
  let bop p =
    let vg =
      Core.Variance_growth.create ~acf:p.Traffic.Process.acf
        ~variance:p.Traffic.Process.variance
    in
    (Core.Bahadur_rao.evaluate vg ~mu:500.0 ~c:538.0 ~b:134.5 ~n:30)
      .Core.Bahadur_rao.log10_bop
  in
  check_true "smoothing lowers the loss estimate" (bop s < bop z)

let test_delay_accounting () =
  check_close "no delay at w=1" 0.0 (Traffic.Shaper.added_delay_frames ~window:1);
  check_close "w-1 frames" 11.0 (Traffic.Shaper.added_delay_frames ~window:12)

let suite =
  [
    case "window 1 is identity" test_window_one_identity;
    case "mean preserved, variance reduced" test_mean_preserved_variance_reduced;
    case "iid triangular acf" test_iid_variance_reduction;
    slow_case "simulation matches analytics" test_simulation_matches_analytics;
    case "hurst preserved" test_hurst_preserved;
    case "CTS of smoothed source" test_cts_of_smoothed_source;
    case "delay accounting" test_delay_accounting;
    qcheck ~count:30 "variance reduction in (0, 1] and decreasing in w"
      QCheck2.Gen.(pair (float_range 0.0 0.95) (int_range 2 16))
      (fun (rho, w) ->
        let p = dar rho in
        let r1 = Traffic.Shaper.variance_reduction p ~window:w in
        let r2 = Traffic.Shaper.variance_reduction p ~window:(w + 1) in
        r1 > 0.0 && r1 <= 1.0 && r2 <= r1 +. 1e-12);
  ]
