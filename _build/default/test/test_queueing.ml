open Helpers

let test_units_roundtrip () =
  let cells =
    Queueing.Units.buffer_cells_of_msec ~msec:10.0
      ~service_cells_per_frame:16140.0 ~ts:0.04
  in
  check_close_rel ~tol:1e-12 "10 msec at 30x538" 4035.0 cells;
  let back =
    Queueing.Units.buffer_msec_of_cells ~cells ~service_cells_per_frame:16140.0
      ~ts:0.04
  in
  check_close ~tol:1e-9 "roundtrip" 10.0 back

let test_utilization () =
  check_close ~tol:1e-12 "rho = mu/c" (500.0 /. 538.0)
    (Queueing.Units.utilization ~mean_cells_per_frame:500.0
       ~service_cells_per_frame:538.0)

let test_cells_per_second () =
  check_close "cells/s" 13450.0
    (Queueing.Units.cells_per_second ~cells_per_frame:538.0 ~ts:0.04);
  check_close_rel ~tol:1e-9 "OC-ish line rate"
    (13450.0 *. 424.0 /. 1e6)
    (Queueing.Units.mbps_of_cells_per_second 13450.0)

let test_fluid_step_cases () =
  (* Below service: drains, no loss. *)
  let w, lost =
    Queueing.Fluid_mux.finite_buffer_step ~w:10.0 ~arrivals:5.0 ~service:8.0
      ~buffer:100.0
  in
  check_close "drain" 7.0 w;
  check_close "no loss" 0.0 lost;
  (* Empties completely. *)
  let w, lost =
    Queueing.Fluid_mux.finite_buffer_step ~w:2.0 ~arrivals:1.0 ~service:8.0
      ~buffer:100.0
  in
  check_close "empty" 0.0 w;
  check_close "no loss when emptying" 0.0 lost;
  (* Overflow. *)
  let w, lost =
    Queueing.Fluid_mux.finite_buffer_step ~w:95.0 ~arrivals:20.0 ~service:8.0
      ~buffer:100.0
  in
  check_close "capped at buffer" 100.0 w;
  check_close "overflow volume" 7.0 lost

let test_fluid_no_loss_when_underloaded () =
  let a = rng ~seed:141 () in
  let next_frame () = Numerics.Rng.float_range a ~lo:0.0 ~hi:7.9 in
  let r =
    Queueing.Fluid_mux.clr ~next_frame ~service:8.0 ~buffer:50.0 ~frames:10_000 ()
  in
  check_close "no loss below capacity" 0.0 r.Queueing.Fluid_mux.clr

let test_fluid_dd1_exact () =
  (* Deterministic arrivals above service with zero buffer: the loss
     rate is exactly (a - c)/a after the first frame fills nothing. *)
  let next_frame () = 10.0 in
  let r =
    Queueing.Fluid_mux.clr ~next_frame ~service:8.0 ~buffer:0.0 ~frames:5_000
      ~warmup:10 ()
  in
  check_close ~tol:1e-12 "deterministic overload" 0.2 r.Queueing.Fluid_mux.clr

let test_fluid_multi_matches_single () =
  let model = Traffic.Models.s ~a:0.975 ~p:1 in
  let run buffers =
    let gen =
      (Traffic.Process.replicate model 5).Traffic.Process.spawn
        (rng ~seed:143 ())
    in
    Queueing.Fluid_mux.clr_multi ~next_frame:gen ~service:2690.0 ~buffers
      ~frames:20_000 ()
  in
  let multi = run [| 100.0; 500.0 |] in
  let single0 = (run [| 100.0 |]).(0) in
  check_close ~tol:1e-12 "multi-buffer equals single run"
    single0.Queueing.Fluid_mux.clr multi.(0).Queueing.Fluid_mux.clr;
  check_true "bigger buffer loses less"
    (multi.(1).Queueing.Fluid_mux.clr <= multi.(0).Queueing.Fluid_mux.clr)

let test_workload_tail_monotone () =
  let model = Traffic.Models.s ~a:0.9 ~p:1 in
  let gen =
    (Traffic.Process.replicate model 5).Traffic.Process.spawn (rng ~seed:145 ())
  in
  let curve =
    Queueing.Fluid_mux.workload_tail ~next_frame:gen ~service:2600.0
      ~thresholds:[| 0.0; 100.0; 500.0; 2000.0 |] ~frames:30_000 ()
  in
  let prev = ref 1.1 in
  Array.iter
    (fun (_, p) ->
      check_true "tail decreasing" (p <= !prev);
      check_true "probability" (p >= 0.0 && p <= 1.0);
      prev := p)
    curve

let test_cell_mux_underload () =
  (* Constant 5 cells per frame per source, service 100 > 3*5. *)
  let sources = Array.init 3 (fun _ () -> 5.0) in
  let r =
    Queueing.Cell_mux.clr ~sources ~service_cells_per_frame:100.0
      ~buffer_cells:10 ~ts:0.04 ~frames:200 ()
  in
  check_int "no cells lost" 0 r.Queueing.Cell_mux.lost_cells;
  check_int "offered counted" (3 * 5 * 200) r.Queueing.Cell_mux.offered_cells

let test_cell_mux_deterministic_overload () =
  (* One source sends 20 cells/frame; service 10 cells/frame, buffer 0:
     arrivals come at spacing ts/20, departures every ts/10, so half
     the cells are dropped asymptotically. *)
  let sources = [| (fun () -> 20.0) |] in
  let r =
    Queueing.Cell_mux.clr ~sources ~service_cells_per_frame:10.0 ~buffer_cells:0
      ~ts:0.04 ~frames:2_000 ()
  in
  (* Floating-point ties between departure and arrival instants move a
     few percent of cells either way; the fluid answer is exactly 1/2. *)
  check_close ~tol:0.1 "about half lost" 0.5 r.Queueing.Cell_mux.clr

let test_fluid_vs_cell_agree () =
  (* Stochastic scenario with sizable losses: the two models must agree
     to within a few percent of offered load. *)
  let model = Traffic.Models.s ~a:0.9 ~p:1 in
  let n = 5 in
  let service = float_of_int n *. 520.0 in
  let buffer = 200.0 in
  let frames = 20_000 in
  let master = rng ~seed:147 () in
  let gen =
    (Traffic.Process.replicate model n).Traffic.Process.spawn
      (Numerics.Rng.jump_to_substream master 0)
  in
  let fluid =
    Queueing.Fluid_mux.clr ~next_frame:gen ~service ~buffer ~frames ()
  in
  let sources =
    Array.init n (fun i ->
        model.Traffic.Process.spawn
          (Numerics.Rng.jump_to_substream
             (Numerics.Rng.jump_to_substream master 0)
             i))
  in
  let cell =
    Queueing.Cell_mux.clr ~sources ~service_cells_per_frame:service
      ~buffer_cells:(int_of_float buffer) ~ts:0.04 ~frames ()
  in
  (* Same random numbers feed both models, so the comparison is paired. *)
  check_close ~tol:0.1
    (Printf.sprintf "fluid %.4f vs cell %.4f" fluid.Queueing.Fluid_mux.clr
       cell.Queueing.Cell_mux.clr)
    1.0
    ((fluid.Queueing.Fluid_mux.clr +. 1e-4)
    /. (cell.Queueing.Cell_mux.clr +. 1e-4))

let test_workload_stats () =
  let model = Traffic.Models.s ~a:0.9 ~p:1 in
  let gen utilization =
    let service = 5.0 *. 500.0 /. utilization in
    let g =
      (Traffic.Process.replicate model 5).Traffic.Process.spawn (rng ~seed:149 ())
    in
    (service, g)
  in
  let service, next_frame = gen 0.9 in
  let s = Queueing.Fluid_mux.workload_stats ~next_frame ~service ~frames:30_000 () in
  check_true "quantiles ordered"
    (s.Queueing.Fluid_mux.p50 <= s.Queueing.Fluid_mux.p95
    && s.Queueing.Fluid_mux.p95 <= s.Queueing.Fluid_mux.p99
    && s.Queueing.Fluid_mux.p99 <= s.Queueing.Fluid_mux.max);
  check_true "mean positive" (s.Queueing.Fluid_mux.mean >= 0.0);
  (* Heavier load means more queueing. *)
  let service_hi, next_hi = gen 0.97 in
  let s_hi =
    Queueing.Fluid_mux.workload_stats ~next_frame:next_hi ~service:service_hi
      ~frames:30_000 ()
  in
  check_true "workload grows with utilisation"
    (s_hi.Queueing.Fluid_mux.mean > s.Queueing.Fluid_mux.mean)

let test_replication_ci () =
  let ci =
    Queueing.Replication.mean_ci ~seed:7 ~reps:20 (fun rng ->
        Numerics.Dist.gaussian rng ~mean:10.0 ~std:2.0)
  in
  check_close ~tol:1.5 "replicated mean near truth" 10.0 ci.Stats.Ci.point;
  check_true "nonzero width" (ci.Stats.Ci.half_width > 0.0)

let test_replication_deterministic () =
  let f rng = Numerics.Rng.float rng in
  let a = Queueing.Replication.runs ~seed:3 ~reps:5 f in
  let b = Queueing.Replication.runs ~seed:3 ~reps:5 f in
  check_true "same seed, same replications" (a = b);
  let c = Queueing.Replication.runs ~seed:4 ~reps:5 f in
  check_true "different seed differs" (a <> c)

let test_scenario () =
  let model = Traffic.Models.s ~a:0.9 ~p:1 in
  let s = Queueing.Scenario.make ~model ~n:30 ~c:538.0 ~ts:0.04 in
  check_close "service" 16140.0 (Queueing.Scenario.service s);
  check_close_rel ~tol:1e-12 "utilization" (500.0 /. 538.0)
    (Queueing.Scenario.utilization s);
  let buffers = Queueing.Scenario.buffers_of_msec s [| 10.0 |] in
  check_close_rel ~tol:1e-12 "buffer msec conversion" 4035.0 buffers.(0)

let suite =
  [
    case "units roundtrip" test_units_roundtrip;
    case "utilization" test_utilization;
    case "cells per second and Mbps" test_cells_per_second;
    case "fluid step cases" test_fluid_step_cases;
    case "fluid: no loss when underloaded" test_fluid_no_loss_when_underloaded;
    case "fluid: deterministic overload exact" test_fluid_dd1_exact;
    case "fluid: multi-buffer pass" test_fluid_multi_matches_single;
    case "workload tail monotone" test_workload_tail_monotone;
    case "cell mux: underload" test_cell_mux_underload;
    case "cell mux: deterministic overload" test_cell_mux_deterministic_overload;
    slow_case "fluid vs cell-level agreement" test_fluid_vs_cell_agree;
    case "workload stats" test_workload_stats;
    case "replication CI" test_replication_ci;
    case "replication determinism" test_replication_deterministic;
    case "scenario wiring" test_scenario;
    qcheck ~count:50 "CLR decreasing in service rate"
      QCheck2.Gen.(int_range 0 10_000)
      (fun seed_offset ->
        let model = Traffic.Models.s ~a:0.9 ~p:1 in
        let run service =
          let gen =
            (Traffic.Process.replicate model 5).Traffic.Process.spawn
              (rng ~seed:(1000 + seed_offset) ())
          in
          (Queueing.Fluid_mux.clr ~next_frame:gen ~service ~buffer:100.0
             ~frames:2_000 ())
            .Queueing.Fluid_mux.clr
        in
        (* Common random numbers make the comparison monotone surely. *)
        run 2700.0 <= run 2600.0 +. 1e-12);
    qcheck "fluid step conserves volume"
      QCheck2.Gen.(
        quad (float_range 0.0 100.0) (float_range 0.0 50.0)
          (float_range 1.0 30.0) (float_range 0.0 100.0))
      (fun (w, arrivals, service, buffer) ->
        let w = Stdlib.min w buffer in
        let w', lost =
          Queueing.Fluid_mux.finite_buffer_step ~w ~arrivals ~service ~buffer
        in
        (* What entered either left, stayed, or was dropped; served
           volume is capped by service. *)
        let served = w +. arrivals -. w' -. lost in
        w' >= 0.0 && w' <= buffer && lost >= 0.0
        && served >= -1e-9
        && served <= service +. 1e-9);
  ]
