open Helpers

let pi = 4.0 *. atan 1.0

let test_log_gamma_known () =
  check_close ~tol:1e-10 "lgamma(1) = 0" 0.0 (Numerics.Special.log_gamma 1.0);
  check_close ~tol:1e-10 "lgamma(2) = 0" 0.0 (Numerics.Special.log_gamma 2.0);
  check_close ~tol:1e-10 "lgamma(5) = ln 24" (log 24.0)
    (Numerics.Special.log_gamma 5.0);
  check_close ~tol:1e-10 "lgamma(0.5) = ln sqrt(pi)"
    (0.5 *. log pi)
    (Numerics.Special.log_gamma 0.5)

let test_gamma_reflection () =
  (* Gamma(x) Gamma(1-x) = pi / sin(pi x) *)
  List.iter
    (fun x ->
      let product = Numerics.Special.gamma x *. Numerics.Special.gamma (1.0 -. x) in
      check_close_rel ~tol:1e-8
        (Printf.sprintf "reflection at %g" x)
        (pi /. sin (pi *. x))
        product)
    [ 0.1; 0.25; 0.3; 0.6; 0.9 ]

let test_log_factorial () =
  check_close "0! = 1" 0.0 (Numerics.Special.log_factorial 0);
  check_close "1! = 1" 0.0 (Numerics.Special.log_factorial 1);
  check_close ~tol:1e-10 "10!" (log 3628800.0) (Numerics.Special.log_factorial 10);
  check_close_rel ~tol:1e-10 "200! via lgamma"
    (Numerics.Special.log_gamma 201.0)
    (Numerics.Special.log_factorial 200)

let test_erf_known () =
  check_close ~tol:1e-7 "erf 0" 0.0 (Numerics.Special.erf 0.0);
  check_close ~tol:2e-7 "erf 1" 0.8427007929 (Numerics.Special.erf 1.0);
  check_close ~tol:2e-7 "erf 2" 0.9953222650 (Numerics.Special.erf 2.0);
  check_close ~tol:2e-7 "erf -1" (-0.8427007929) (Numerics.Special.erf (-1.0));
  check_close ~tol:1e-7 "erf large" 1.0 (Numerics.Special.erf 6.0)

let test_normal_cdf () =
  check_close ~tol:1e-7 "Phi(0)" 0.5 (Numerics.Special.normal_cdf 0.0);
  check_close ~tol:1e-6 "Phi(1.96)" 0.9750021 (Numerics.Special.normal_cdf 1.96);
  check_close ~tol:1e-6 "Phi(-1.96)" 0.0249979
    (Numerics.Special.normal_cdf (-1.96))

let test_normal_quantile_known () =
  check_close ~tol:1e-6 "probit(0.5)" 0.0 (Numerics.Special.normal_quantile 0.5);
  check_close ~tol:1e-5 "probit(0.975)" 1.959964
    (Numerics.Special.normal_quantile 0.975);
  check_close ~tol:1e-5 "probit(0.995)" 2.575829
    (Numerics.Special.normal_quantile 0.995);
  check_close ~tol:1e-4 "probit(1e-6)" (-4.753424)
    (Numerics.Special.normal_quantile 1e-6)

let test_student_t () =
  (* Classical t-table values (two-sided 95%). *)
  check_close ~tol:0.02 "t(0.975; df=1)" 12.706
    (Numerics.Special.student_t_quantile ~df:1 0.975);
  check_close ~tol:0.005 "t(0.975; df=2)" 4.3027
    (Numerics.Special.student_t_quantile ~df:2 0.975);
  check_close ~tol:0.01 "t(0.975; df=5)" 2.5706
    (Numerics.Special.student_t_quantile ~df:5 0.975);
  check_close ~tol:0.005 "t(0.975; df=30)" 2.0423
    (Numerics.Special.student_t_quantile ~df:30 0.975);
  check_close ~tol:0.01 "t approaches normal" 1.9600
    (Numerics.Special.student_t_quantile ~df:100000 0.975)

let suite =
  [
    case "log_gamma known values" test_log_gamma_known;
    case "gamma reflection formula" test_gamma_reflection;
    case "log_factorial" test_log_factorial;
    case "erf known values" test_erf_known;
    case "normal cdf" test_normal_cdf;
    case "normal quantile" test_normal_quantile_known;
    case "student t quantiles" test_student_t;
    qcheck "lgamma recurrence lgamma(x+1) = lgamma(x) + ln x"
      QCheck2.Gen.(float_range 0.1 50.0)
      (fun x ->
        let lhs = Numerics.Special.log_gamma (x +. 1.0) in
        let rhs = Numerics.Special.log_gamma x +. log x in
        Float.abs (lhs -. rhs) < 1e-8 *. (1.0 +. Float.abs lhs));
    qcheck "erf is odd" QCheck2.Gen.(float_range 0.0 5.0) (fun x ->
        Float.abs (Numerics.Special.erf x +. Numerics.Special.erf (-.x)) < 1e-12);
    qcheck "quantile inverts cdf" QCheck2.Gen.(float_range 0.001 0.999)
      (fun p ->
        let x = Numerics.Special.normal_quantile p in
        Float.abs (Numerics.Special.normal_cdf x -. p) < 1e-5);
    qcheck "pow matches **" QCheck2.Gen.(pair (float_range 0.001 100.) (float_range (-3.) 3.))
      (fun (x, y) ->
        Float.abs (Numerics.Special.pow x y -. (x ** y))
        < 1e-9 *. (1.0 +. (x ** y)));
  ]
