open Helpers

let simple_series =
  [
    ("up", Array.init 10 (fun i -> (float_of_int i, float_of_int i)));
    ("down", Array.init 10 (fun i -> (float_of_int i, float_of_int (9 - i))));
  ]

let test_render_basics () =
  let out =
    Experiments.Ascii_plot.render ~series:simple_series ~xlabel:"x" ~ylabel:"y" ()
  in
  check_true "mentions ylabel" (String.length out > 0);
  check_true "legend has both series"
    (contains_substring out "a = up" && contains_substring out "b = down")

let test_marker_presence () =
  let out =
    Experiments.Ascii_plot.render ~width:20 ~height:6 ~series:simple_series
      ~xlabel:"x" ~ylabel:"y" ()
  in
  check_true "marker a drawn" (String.contains out 'a');
  check_true "marker b drawn" (String.contains out 'b')

let test_empty_and_nonfinite () =
  let out =
    Experiments.Ascii_plot.render
      ~series:[ ("nan", [| (1.0, nan); (2.0, neg_infinity) |]) ]
      ~xlabel:"x" ~ylabel:"y" ()
  in
  check_true "degenerate input handled" (String.length out > 0)

let test_logx () =
  let series =
    [ ("pow", Array.init 8 (fun i -> (10.0 ** float_of_int i, float_of_int i))) ]
  in
  let out =
    Experiments.Ascii_plot.render ~logx:true ~series ~xlabel:"x" ~ylabel:"y" ()
  in
  check_true "log axis noted" (contains_substring out "log axis")

let test_render_figure () =
  let fig = Experiments.Exp_fig1.figure_z () in
  let out = Experiments.Ascii_plot.render_figure fig in
  check_true "figure renders" (String.length out > 200)

let suite =
  [
    case "render basics" test_render_basics;
    case "marker presence" test_marker_presence;
    case "non-finite input" test_empty_and_nonfinite;
    case "log x axis" test_logx;
    case "render a real figure" test_render_figure;
  ]
