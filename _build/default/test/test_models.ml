open Helpers

let test_shared_marginal () =
  (* The crucial design property: all four models have the identical
     Gaussian marginal, so queueing differences are pure correlation
     effects. *)
  let models =
    List.map (fun a -> (Traffic.Models.z ~a).Traffic.Models.process)
      Traffic.Models.z_values
    @ List.map (fun v -> (Traffic.Models.v ~v).Traffic.Models.process)
        Traffic.Models.v_values
    @ [ Traffic.Models.l () ]
    @ List.map (fun p -> Traffic.Models.s ~a:0.975 ~p) [ 1; 2; 3 ]
  in
  List.iter
    (fun m ->
      check_close ~tol:1e-9
        (m.Traffic.Process.name ^ " mean")
        500.0 m.Traffic.Process.mean;
      check_close ~tol:1e-6
        (m.Traffic.Process.name ^ " variance")
        5000.0 m.Traffic.Process.variance)
    models

let test_z_t0_anchor () =
  let z = Traffic.Models.z ~a:0.7 in
  check_close ~tol:0.01 "Z component T0 = 2.57 msec" 2.57
    (Traffic.Fbndp.fractal_onset_time z.Traffic.Models.fbndp *. 1000.0);
  check_close_rel ~tol:1e-9 "Z component lambda = 6250" 6250.0
    (Traffic.Fbndp.lambda z.Traffic.Models.fbndp)

let test_z_hurst () =
  List.iter
    (fun a ->
      let z = (Traffic.Models.z ~a).Traffic.Models.process in
      check_true
        (Printf.sprintf "Z^%g has H = 0.9" a)
        (z.Traffic.Process.hurst = Some 0.9))
    Traffic.Models.z_values

let test_z_lag1 () =
  (* r(1) = (r_X(1) + a) / 2 with r_X(1) = 0.9 * (2^0.8 - 1). *)
  let r_x1 = 0.9 *. ((2.0 ** 0.8) -. 1.0) in
  List.iter
    (fun a ->
      let z = (Traffic.Models.z ~a).Traffic.Models.process in
      check_close ~tol:1e-9
        (Printf.sprintf "Z^%g lag 1" a)
        ((r_x1 +. a) /. 2.0)
        (z.Traffic.Process.acf 1))
    Traffic.Models.z_values

let test_v_equal_lag1 () =
  let reference = (Traffic.Models.v ~v:1.0).Traffic.Models.process in
  let target = reference.Traffic.Process.acf 1 in
  List.iter
    (fun v ->
      let m = (Traffic.Models.v ~v).Traffic.Models.process in
      check_close ~tol:1e-9
        (Printf.sprintf "V^%g lag-1 pinned" v)
        target
        (m.Traffic.Process.acf 1))
    Traffic.Models.v_values

let test_v_tail_ordering () =
  (* Larger v puts more weight on the LRD component: bigger tail. *)
  let at k v = ((Traffic.Models.v ~v).Traffic.Models.process).Traffic.Process.acf k in
  check_true "tail ordering at lag 100" (at 100 1.5 > at 100 0.67);
  check_true "tail ordering at lag 500" (at 500 1.5 > at 500 0.67)

let test_z_l_tails_agree () =
  (* The paper tunes L's alpha = 0.72 so its ACF tail matches Z's. *)
  let z = (Traffic.Models.z ~a:0.9).Traffic.Models.process in
  let l = Traffic.Models.l () in
  List.iter
    (fun k ->
      check_close_rel ~tol:0.1
        (Printf.sprintf "tails agree at %d" k)
        (z.Traffic.Process.acf k)
        (l.Traffic.Process.acf k))
    [ 500; 1000; 2000 ]

let test_dar_fits_match_paper () =
  (* Table 1 reports the fits to three decimals. *)
  let check_fit a p rho weights =
    let fit = Traffic.Models.s_params ~a ~p in
    check_close ~tol:0.005 (Printf.sprintf "rho Z^%g p=%d" a p) rho
      fit.Traffic.Dar.rho;
    List.iteri
      (fun i w ->
        check_close ~tol:0.01
          (Printf.sprintf "a_%d Z^%g p=%d" (i + 1) a p)
          w
          fit.Traffic.Dar.weights.(i))
      weights
  in
  (* Columns as printed in the paper's Table 1 (first column belongs to
     Z^0.975 by the lag-1 value 0.821, second to Z^0.7). *)
  check_fit 0.975 1 0.82 [ 1.0 ];
  check_fit 0.975 2 0.868 [ 0.70; 0.30 ];
  check_fit 0.975 3 0.889 [ 0.63; 0.18; 0.19 ];
  check_fit 0.7 1 0.683 [ 1.0 ];
  check_fit 0.7 2 0.72 [ 0.84; 0.16 ];
  check_fit 0.7 3 0.738 [ 0.81; 0.10; 0.09 ]

let test_s_matches_z_short_lags () =
  List.iter
    (fun a ->
      List.iter
        (fun p ->
          let z = (Traffic.Models.z ~a).Traffic.Models.process in
          let s = Traffic.Models.s ~a ~p in
          for k = 1 to p do
            check_close ~tol:1e-9
              (Printf.sprintf "S(p=%d) lag %d of Z^%g" p k a)
              (z.Traffic.Process.acf k)
              (s.Traffic.Process.acf k)
          done)
        [ 1; 2; 3 ])
    [ 0.7; 0.975 ]

let test_l_params () =
  let l = Traffic.Models.l_params () in
  check_close "L alpha" 0.72 l.Traffic.Fbndp.alpha;
  check_int "L M = 30" 30 l.Traffic.Fbndp.m;
  check_close_rel ~tol:1e-9 "L lambda = 12500" 12500.0 (Traffic.Fbndp.lambda l);
  check_close ~tol:1e-9 "L hurst" 0.86 (Traffic.Fbndp.hurst l)

let test_generation_moments () =
  let z = (Traffic.Models.z ~a:0.9).Traffic.Models.process in
  let x = Traffic.Process.generate z (rng ~seed:151 ()) 60_000 in
  let s = Stats.Descriptive.summarize x in
  check_close_rel ~tol:0.05 "Z sample mean" 500.0 s.Stats.Descriptive.mean;
  check_close_rel ~tol:0.2 "Z sample variance" 5000.0 s.Stats.Descriptive.variance;
  (* Approximate Gaussianity from M = 15 + Gaussian DAR component. *)
  check_true "skewness small" (Float.abs s.Stats.Descriptive.skewness < 0.25)

let test_z_is_lrd_empirically () =
  let z = (Traffic.Models.z ~a:0.7).Traffic.Models.process in
  let x = Traffic.Process.generate z (rng ~seed:153 ()) 65536 in
  let est = Stats.Hurst.aggregated_variance x in
  check_true
    (Printf.sprintf "aggregated-variance H = %.3f > 0.7" est.Stats.Hurst.h)
    (est.Stats.Hurst.h > 0.7)

let suite =
  [
    case "all models share the marginal" test_shared_marginal;
    case "Z anchors from Table 1" test_z_t0_anchor;
    case "Z hurst" test_z_hurst;
    case "Z lag-1 closed form" test_z_lag1;
    case "V^v equal lag-1" test_v_equal_lag1;
    case "V^v tail ordering" test_v_tail_ordering;
    case "Z and L tails agree" test_z_l_tails_agree;
    case "DAR fits match Table 1" test_dar_fits_match_paper;
    case "S matches Z's first p lags" test_s_matches_z_short_lags;
    case "L parameters" test_l_params;
    slow_case "generated moments" test_generation_moments;
    slow_case "Z is empirically LRD" test_z_is_lrd_empirically;
  ]
