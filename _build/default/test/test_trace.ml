open Helpers

let test_roundtrip () =
  let z = (Traffic.Models.z ~a:0.9).Traffic.Models.process in
  let t = Traffic.Trace.of_process z ~ts:0.04 (rng ~seed:161 ()) ~n:500 in
  let path = Filename.temp_file "cts_trace" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Traffic.Trace.save_csv t ~path;
      let back = Traffic.Trace.load_csv ~path in
      check_true "name preserved" (back.Traffic.Trace.name = t.Traffic.Trace.name);
      check_close ~tol:1e-12 "ts preserved" t.Traffic.Trace.ts back.Traffic.Trace.ts;
      check_int "length preserved"
        (Array.length t.Traffic.Trace.frames)
        (Array.length back.Traffic.Trace.frames);
      Array.iteri
        (fun i v ->
          check_close ~tol:0.0 (Printf.sprintf "frame %d" i) v
            back.Traffic.Trace.frames.(i))
        t.Traffic.Trace.frames)

let test_stats_and_aggregate () =
  let t =
    { Traffic.Trace.frames = [| 2.0; 4.0; 6.0; 8.0 |]; ts = 0.04; name = "t" }
  in
  check_close "mean" 5.0 (Traffic.Trace.mean t);
  let agg = Traffic.Trace.aggregate t ~block:2 in
  check_int "aggregated length" 2 (Array.length agg.Traffic.Trace.frames);
  check_close "aggregated ts" 0.08 agg.Traffic.Trace.ts;
  check_close "aggregated first" 3.0 agg.Traffic.Trace.frames.(0)

let test_acf () =
  let z = Traffic.Models.s ~a:0.975 ~p:1 in
  let t = Traffic.Trace.of_process z ~ts:0.04 (rng ~seed:163 ()) ~n:100_000 in
  let r = Traffic.Trace.acf t ~max_lag:1 in
  check_close ~tol:0.02 "trace acf lag 1" 0.821 r.(1)

let suite =
  [
    case "csv roundtrip" test_roundtrip;
    case "stats and aggregation" test_stats_and_aggregate;
    slow_case "trace acf" test_acf;
  ]
