open Helpers

let gaussian_sample ?(seed = 31) n =
  let a = rng ~seed () in
  Array.init n (fun _ -> Numerics.Dist.standard_gaussian a)

let ar1_sample ?(seed = 33) ~rho n =
  let a = rng ~seed () in
  let x = Array.make n 0.0 in
  let innovation_std = sqrt (1.0 -. (rho *. rho)) in
  x.(0) <- Numerics.Dist.standard_gaussian a;
  for t = 1 to n - 1 do
    x.(t) <-
      (rho *. x.(t - 1))
      +. Numerics.Dist.gaussian a ~mean:0.0 ~std:innovation_std
  done;
  x

let test_summary () =
  let s = Stats.Descriptive.summarize [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_close "mean" 3.0 s.Stats.Descriptive.mean;
  check_close "variance" 2.5 s.Stats.Descriptive.variance;
  check_close "skewness of symmetric data" 0.0 s.Stats.Descriptive.skewness;
  check_close "min" 1.0 s.Stats.Descriptive.min;
  check_close "max" 5.0 s.Stats.Descriptive.max

let test_gaussian_moments () =
  let s = Stats.Descriptive.summarize (gaussian_sample 200_000) in
  check_close ~tol:0.02 "gaussian skewness" 0.0 s.Stats.Descriptive.skewness;
  check_close ~tol:0.06 "gaussian excess kurtosis" 0.0
    s.Stats.Descriptive.kurtosis_excess

let test_covariance () =
  let x = [| 1.0; 2.0; 3.0; 4.0 |] in
  let y = [| 2.0; 4.0; 6.0; 8.0 |] in
  check_close_rel ~tol:1e-12 "cov(x, 2x) = 2 var x"
    (2.0 *. Numerics.Float_array.variance x)
    (Stats.Descriptive.covariance x y);
  check_close ~tol:1e-12 "perfect correlation" 1.0
    (Stats.Descriptive.correlation x y)

let test_acf_iid () =
  let r = Stats.Acf.autocorrelation (gaussian_sample 50_000) ~max_lag:5 in
  check_close "lag 0 is 1" 1.0 r.(0);
  for k = 1 to 5 do
    check_close ~tol:0.02 (Printf.sprintf "iid lag %d near 0" k) 0.0 r.(k)
  done

let test_acf_ar1 () =
  let rho = 0.8 in
  let r = Stats.Acf.autocorrelation (ar1_sample ~rho 200_000) ~max_lag:5 in
  for k = 1 to 5 do
    check_close ~tol:0.03
      (Printf.sprintf "AR(1) lag %d" k)
      (rho ** float_of_int k)
      r.(k)
  done

let test_acf_fft_agrees () =
  let x = ar1_sample ~seed:35 ~rho:0.6 5_000 in
  let direct = Stats.Acf.autocorrelation x ~max_lag:50 in
  let fast = Stats.Acf.autocorrelation_fft x ~max_lag:50 in
  for k = 0 to 50 do
    check_close ~tol:1e-9 (Printf.sprintf "lag %d" k) direct.(k) fast.(k)
  done

let test_pacf_ar1_cutoff () =
  let pacf = Stats.Acf.partial_autocorrelation (ar1_sample ~rho:0.7 200_000) ~max_lag:5 in
  check_close ~tol:0.02 "pacf lag 1 = rho" 0.7 pacf.(1);
  for k = 2 to 5 do
    check_close ~tol:0.02 (Printf.sprintf "pacf cuts off at %d" k) 0.0 pacf.(k)
  done

let test_histogram () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  List.iter (Stats.Histogram.add h) [ -1.0; 0.5; 1.5; 2.5; 9.9; 11.0; 10.0 ];
  check_int "underflow" 1 (Stats.Histogram.underflow h);
  check_int "overflow" 2 (Stats.Histogram.overflow h);
  check_int "total" 7 (Stats.Histogram.total h);
  let counts = Stats.Histogram.counts h in
  check_int "bin 0" 2 counts.(0);
  check_int "bin 1" 1 counts.(1);
  check_int "bin 4" 1 counts.(4)

let test_histogram_chi_square_gaussian () =
  let h = Stats.Histogram.create ~lo:(-4.0) ~hi:4.0 ~bins:32 in
  Stats.Histogram.add_array h (gaussian_sample ~seed:37 50_000);
  let stat = Stats.Histogram.chi_square_vs h ~cdf:Numerics.Special.normal_cdf in
  (* 31 dof: the 99.9th percentile is ~ 61; a correct sampler stays
     well below. *)
  check_true
    (Printf.sprintf "chi-square %.1f below 61" stat)
    (stat < 61.0)

let test_ecdf () =
  let e = Stats.Ecdf.of_samples [| 1.0; 2.0; 2.0; 3.0 |] in
  check_close "cdf below" 0.0 (Stats.Ecdf.cdf e 0.5);
  check_close "cdf at 2" 0.75 (Stats.Ecdf.cdf e 2.0);
  check_close "tail at 2" 0.25 (Stats.Ecdf.tail e 2.0);
  check_close "cdf above" 1.0 (Stats.Ecdf.cdf e 10.0)

let test_ci () =
  let ci = Stats.Ci.mean_ci [| 10.0; 12.0; 11.0; 13.0; 9.0 |] in
  check_close "point estimate" 11.0 ci.Stats.Ci.point;
  check_true "half width positive" (ci.Stats.Ci.half_width > 0.0);
  check_true "contains the mean" (Stats.Ci.contains ci 11.0);
  (* Wider confidence level gives wider interval. *)
  let ci99 = Stats.Ci.mean_ci ~level:0.99 [| 10.0; 12.0; 11.0; 13.0; 9.0 |] in
  check_true "99% wider than 95%"
    (ci99.Stats.Ci.half_width > ci.Stats.Ci.half_width)

let test_batch_means () =
  (* On iid data the batch-means interval agrees with the plain one up
     to degrees-of-freedom differences. *)
  let iid = gaussian_sample ~seed:43 10_000 in
  let plain = Stats.Ci.mean_ci iid in
  let batched = Stats.Ci.batch_means_ci ~batches:20 iid in
  check_close ~tol:0.05 "points agree" plain.Stats.Ci.point
    batched.Stats.Ci.point;
  check_close ~tol:0.02 "widths comparable" plain.Stats.Ci.half_width
    batched.Stats.Ci.half_width;
  (* On positively correlated data the batch-means interval must be
     wider than the (invalid) iid interval. *)
  let correlated = ar1_sample ~seed:45 ~rho:0.95 10_000 in
  let naive = Stats.Ci.mean_ci correlated in
  let honest = Stats.Ci.batch_means_ci ~batches:20 correlated in
  check_true "batch means widens the interval under correlation"
    (honest.Stats.Ci.half_width > 2.0 *. naive.Stats.Ci.half_width)

let test_regression_exact () =
  let x = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  let y = Array.map (fun v -> (2.5 *. v) -. 1.0) x in
  let fit = Stats.Regression.linear ~x ~y in
  check_close ~tol:1e-10 "slope" 2.5 fit.Stats.Regression.slope;
  check_close ~tol:1e-10 "intercept" (-1.0) fit.Stats.Regression.intercept;
  check_close ~tol:1e-10 "r^2" 1.0 fit.Stats.Regression.r_squared;
  check_close ~tol:1e-10 "stderr" 0.0 fit.Stats.Regression.stderr_slope

let test_regression_log_log () =
  let x = [| 1.0; 2.0; 4.0; 8.0; 16.0 |] in
  let y = Array.map (fun v -> 3.0 *. (v ** 1.7)) x in
  let fit = Stats.Regression.log_log ~x ~y in
  check_close ~tol:1e-9 "power-law slope" 1.7 fit.Stats.Regression.slope;
  check_close ~tol:1e-9 "power-law intercept" (log 3.0)
    fit.Stats.Regression.intercept

let suite =
  [
    case "summary" test_summary;
    case "gaussian higher moments" test_gaussian_moments;
    case "covariance and correlation" test_covariance;
    case "acf of iid noise" test_acf_iid;
    case "acf of AR(1)" test_acf_ar1;
    case "acf fft vs direct" test_acf_fft_agrees;
    case "pacf cutoff for AR(1)" test_pacf_ar1_cutoff;
    case "histogram counting" test_histogram;
    case "chi-square vs gaussian" test_histogram_chi_square_gaussian;
    case "ecdf" test_ecdf;
    case "confidence interval" test_ci;
    case "batch means" test_batch_means;
    case "regression exact line" test_regression_exact;
    case "regression log-log power law" test_regression_log_log;
    qcheck "ecdf tail + cdf = 1" QCheck2.Gen.(float_range (-3.0) 3.0)
      (fun x ->
        let e = Stats.Ecdf.of_samples (gaussian_sample ~seed:39 500) in
        Float.abs (Stats.Ecdf.cdf e x +. Stats.Ecdf.tail e x -. 1.0) < 1e-12);
    qcheck "acf bounded by 1" QCheck2.Gen.(int_range 1 20)
      (fun lag ->
        let x = ar1_sample ~seed:41 ~rho:0.5 2_000 in
        let r = Stats.Acf.autocorrelation x ~max_lag:lag in
        Array.for_all (fun v -> Float.abs v <= 1.0 +. 1e-9) r);
  ]
