open Helpers

let fgn ?(seed = 51) ~h n =
  Traffic.Fgn.sample_davies_harte (rng ~seed ()) ~h ~n

let white ?(seed = 53) n =
  let a = rng ~seed () in
  Array.init n (fun _ -> Numerics.Dist.standard_gaussian a)

let test_rs_white () =
  let est = Stats.Hurst.rescaled_range (white 32768) in
  (* R/S is biased upward on short series; 0.5-0.65 is the accepted
     range for white noise at this length. *)
  check_true
    (Printf.sprintf "R/S on white noise: %.3f in [0.45, 0.68]" est.Stats.Hurst.h)
    (est.Stats.Hurst.h > 0.45 && est.Stats.Hurst.h < 0.68)

let test_rs_fgn09 () =
  let est = Stats.Hurst.rescaled_range (fgn ~h:0.9 32768) in
  check_true
    (Printf.sprintf "R/S on fGn(0.9): %.3f in [0.78, 1.0]" est.Stats.Hurst.h)
    (est.Stats.Hurst.h > 0.78 && est.Stats.Hurst.h < 1.0)

let test_aggvar_white () =
  let est = Stats.Hurst.aggregated_variance (white ~seed:55 65536) in
  check_true
    (Printf.sprintf "agg-var on white noise: %.3f near 0.5" est.Stats.Hurst.h)
    (est.Stats.Hurst.h > 0.42 && est.Stats.Hurst.h < 0.58)

let test_aggvar_fgn () =
  (* The aggregated-variance estimator is biased downward, increasingly
     so for high H (finite-sample effect well documented in the LRD
     literature), hence the graded tolerances. *)
  List.iter
    (fun (h, tol) ->
      let est = Stats.Hurst.aggregated_variance (fgn ~seed:57 ~h 65536) in
      check_close ~tol
        (Printf.sprintf "agg-var on fGn(%g)" h)
        h est.Stats.Hurst.h)
    [ (0.6, 0.08); (0.75, 0.08); (0.9, 0.12) ]

let test_periodogram_fgn () =
  List.iter
    (fun h ->
      let est = Stats.Hurst.periodogram (fgn ~seed:59 ~h 65536) in
      check_close ~tol:0.1
        (Printf.sprintf "periodogram on fGn(%g)" h)
        h est.Stats.Hurst.h)
    [ 0.7; 0.9 ]

let test_variance_of_sums_fgn () =
  let h = 0.85 in
  let est = Stats.Hurst.variance_of_sums (fgn ~seed:61 ~h 65536) in
  check_close ~tol:0.08 "variance-of-sums on fGn(0.85)" h est.Stats.Hurst.h

let test_local_whittle_fgn () =
  List.iter
    (fun h ->
      let est = Stats.Hurst.local_whittle (fgn ~seed:65 ~h 65536) in
      check_close ~tol:0.06
        (Printf.sprintf "local whittle on fGn(%g)" h)
        h est.Stats.Hurst.h)
    [ 0.6; 0.75; 0.9 ]

let test_local_whittle_white () =
  let est = Stats.Hurst.local_whittle (white ~seed:67 65536) in
  check_close ~tol:0.08 "local whittle on white noise" 0.5 est.Stats.Hurst.h

let test_fit_quality_reported () =
  let est = Stats.Hurst.aggregated_variance (fgn ~seed:63 ~h:0.8 32768) in
  check_true "r^2 of the regression is high"
    (est.Stats.Hurst.r_squared > 0.95);
  check_true "diagnostic points exposed" (Array.length est.Stats.Hurst.points >= 3)

let suite =
  [
    case "R/S on white noise" test_rs_white;
    case "R/S on fGn(0.9)" test_rs_fgn09;
    case "aggregated variance on white noise" test_aggvar_white;
    slow_case "aggregated variance on fGn" test_aggvar_fgn;
    slow_case "periodogram on fGn" test_periodogram_fgn;
    case "variance of sums on fGn" test_variance_of_sums_fgn;
    slow_case "local whittle on fGn" test_local_whittle_fgn;
    case "local whittle on white noise" test_local_whittle_white;
    case "fit diagnostics" test_fit_quality_reported;
  ]
