open Helpers

let ar1_vg rho variance =
  Core.Variance_growth.create ~variance ~acf:(fun k -> rho ** float_of_int k)

let test_variance_growth_vs_naive () =
  let rho = 0.7 and variance = 5000.0 in
  let vg = ar1_vg rho variance in
  let naive m =
    let acc = ref (float_of_int m) in
    for i = 1 to m do
      acc := !acc +. (2.0 *. float_of_int (m - i) *. (rho ** float_of_int i))
    done;
    variance *. !acc
  in
  List.iter
    (fun m ->
      check_close_rel ~tol:1e-10
        (Printf.sprintf "V(%d)" m)
        (naive m)
        (Core.Variance_growth.v vg m))
    [ 1; 2; 3; 5; 10; 100; 1000 ]

let test_variance_growth_v1 () =
  let vg = ar1_vg 0.9 1234.0 in
  check_close "V(1) = sigma^2" 1234.0 (Core.Variance_growth.v vg 1)

let test_variance_growth_iid () =
  let vg = Core.Variance_growth.create ~variance:2.0 ~acf:(fun _ -> 0.0) in
  List.iter
    (fun m ->
      check_close
        (Printf.sprintf "iid V(%d) = m sigma^2" m)
        (2.0 *. float_of_int m)
        (Core.Variance_growth.v vg m))
    [ 1; 7; 64 ]

let test_variance_growth_lrd_asymptote () =
  (* For exact LRD, V(m) ~ g sigma^2 m^2H. *)
  let h = 0.9 and g = 0.9 in
  let acf k = if k = 0 then 1.0 else g *. Traffic.Fgn.acf ~h k in
  let vg = Core.Variance_growth.create ~variance:1.0 ~acf in
  let ratio m = Core.Variance_growth.v vg m /. (g *. (float_of_int m ** (2.0 *. h))) in
  check_close ~tol:0.02 "LRD variance growth exponent" 1.0 (ratio 5000)

let test_truncated () =
  let vg = ar1_vg 0.8 100.0 in
  let tr = Core.Variance_growth.truncated vg ~at:3 in
  (* Same up to the truncation lag... *)
  check_close_rel ~tol:1e-12 "V(2) unchanged" (Core.Variance_growth.v vg 2)
    (Core.Variance_growth.v tr 2);
  (* ...smaller beyond it. *)
  check_true "V(50) reduced"
    (Core.Variance_growth.v tr 50 < Core.Variance_growth.v vg 50)

let test_cts_zero_buffer () =
  let vg = ar1_vg 0.9 5000.0 in
  let a = Core.Cts.analyze vg ~mu:500.0 ~c:538.0 ~b:0.0 in
  check_int "m*(0) = 1: correlations are irrelevant at zero buffer" 1
    a.Core.Cts.m_star;
  (* I(c, 0) = (c - mu)^2 / (2 sigma^2) *)
  check_close_rel ~tol:1e-12 "I(c,0)" (38.0 *. 38.0 /. 10000.0) a.Core.Cts.rate

let test_cts_monotone_in_buffer () =
  let z = (Traffic.Models.z ~a:0.975).Traffic.Models.process in
  let vg =
    Core.Variance_growth.create ~acf:z.Traffic.Process.acf
      ~variance:z.Traffic.Process.variance
  in
  let prev = ref 0 in
  List.iter
    (fun b ->
      let a = Core.Cts.analyze vg ~mu:500.0 ~c:538.0 ~b in
      check_true
        (Printf.sprintf "m* non-decreasing at b = %g" b)
        (a.Core.Cts.m_star >= !prev);
      prev := a.Core.Cts.m_star)
    [ 0.0; 10.0; 50.0; 100.0; 200.0; 400.0 ]

let test_cts_ar1_constant () =
  (* For Gaussian AR(1), m* grows like b / (c - mu) (paper, citing
     Courcoubetis & Weber).  The absolute value carries a finite-b
     offset from the sublinear part of V(m), so test the slope. *)
  let vg = ar1_vg 0.9 5000.0 in
  let c = 538.0 and mu = 500.0 in
  let m_at b = float_of_int (Core.Cts.analyze vg ~mu ~c ~b).Core.Cts.m_star in
  let slope = (m_at 8000.0 -. m_at 4000.0) /. 4000.0 in
  check_close_rel ~tol:0.05 "AR(1) CTS slope 1/(c-mu)"
    (1.0 /. (c -. mu))
    slope

let test_cts_lrd_constant () =
  (* For exact-LRD Gaussian, m* ~ H b / ((1-H)(c - mu)). *)
  let h = 0.86 in
  let acf k = if k = 0 then 1.0 else Traffic.Fgn.acf ~h k in
  let vg = Core.Variance_growth.create ~variance:5000.0 ~acf in
  let b = 1000.0 and c = 538.0 and mu = 500.0 in
  let a = Core.Cts.analyze vg ~mu ~c ~b in
  check_close_rel ~tol:0.05 "LRD CTS closed form"
    (Core.Cts.lrd_closed_form ~h ~mu ~c ~b)
    (float_of_int a.Core.Cts.m_star)

let test_cts_requires_stability () =
  let vg = ar1_vg 0.5 100.0 in
  Alcotest.check_raises "c <= mu rejected"
    (Invalid_argument "Cts.analyze: need c > mu (got c = 400, mu = 500)")
    (fun () -> ignore (Core.Cts.analyze vg ~mu:500.0 ~c:400.0 ~b:10.0))

let test_truncation_beyond_cts_is_free () =
  (* The CTS theorem in action: chopping the ACF beyond m* leaves the
     rate function unchanged. *)
  let z = (Traffic.Models.z ~a:0.975).Traffic.Models.process in
  let vg =
    Core.Variance_growth.create ~acf:z.Traffic.Process.acf
      ~variance:z.Traffic.Process.variance
  in
  let b = 134.5 (* 10 msec at c=538, per-source *) in
  let a = Core.Cts.analyze vg ~mu:500.0 ~c:538.0 ~b in
  let tr = Core.Variance_growth.truncated vg ~at:a.Core.Cts.m_star in
  let a' = Core.Cts.analyze tr ~mu:500.0 ~c:538.0 ~b in
  check_close_rel ~tol:1e-9 "rate unchanged by truncation at m*"
    a.Core.Cts.rate a'.Core.Cts.rate;
  check_int "m* unchanged" a.Core.Cts.m_star a'.Core.Cts.m_star

let test_bahadur_rao_vs_large_n () =
  let vg = ar1_vg 0.82 5000.0 in
  let br = Core.Bahadur_rao.evaluate vg ~mu:500.0 ~c:538.0 ~b:134.5 ~n:30 in
  let ln = Core.Large_n.evaluate vg ~mu:500.0 ~c:538.0 ~b:134.5 ~n:30 in
  (* B-R = Large-N * correction, correction = -0.5 log10(4 pi N I). *)
  let expected_gap =
    0.5 *. log10 (4.0 *. 4.0 *. atan 1.0 *. 30.0 *. br.Core.Bahadur_rao.cts.Core.Cts.rate)
  in
  check_close ~tol:1e-9 "B-R refines Large-N by the log prefactor"
    (ln.Core.Large_n.log10_bop -. expected_gap)
    br.Core.Bahadur_rao.log10_bop;
  check_true "B-R below Large-N"
    (br.Core.Bahadur_rao.log10_bop < ln.Core.Large_n.log10_bop)

let test_bop_decreasing_in_buffer () =
  let vg = ar1_vg 0.9 5000.0 in
  let prev = ref 0.0 in
  List.iter
    (fun b ->
      let r = Core.Bahadur_rao.evaluate vg ~mu:500.0 ~c:538.0 ~b ~n:30 in
      check_true "log BOP decreasing" (r.Core.Bahadur_rao.log10_bop < !prev);
      prev := r.Core.Bahadur_rao.log10_bop)
    [ 10.0; 50.0; 100.0; 200.0 ]

let test_bop_decreasing_in_capacity () =
  let vg = ar1_vg 0.9 5000.0 in
  let prev = ref 0.0 in
  List.iter
    (fun c ->
      let r = Core.Bahadur_rao.evaluate vg ~mu:500.0 ~c ~b:100.0 ~n:30 in
      check_true "log BOP decreasing in c" (r.Core.Bahadur_rao.log10_bop < !prev);
      prev := r.Core.Bahadur_rao.log10_bop)
    [ 520.0; 538.0; 560.0; 600.0 ]

let test_evaluate_total () =
  let vg = ar1_vg 0.8 5000.0 in
  let a = Core.Bahadur_rao.evaluate vg ~mu:500.0 ~c:538.0 ~b:134.5 ~n:30 in
  let b =
    Core.Bahadur_rao.evaluate_total vg ~mu:500.0
      ~total_capacity:(30.0 *. 538.0) ~total_buffer:(30.0 *. 134.5) ~n:30
  in
  check_close ~tol:1e-12 "total and per-source forms agree"
    a.Core.Bahadur_rao.log10_bop b.Core.Bahadur_rao.log10_bop

let test_weibull_kappa () =
  check_close ~tol:1e-12 "kappa(1/2)" 0.5 (Core.Weibull_lrd.kappa 0.5);
  (* kappa(h) = kappa(1-h) *)
  check_close ~tol:1e-12 "kappa symmetric"
    (Core.Weibull_lrd.kappa 0.3)
    (Core.Weibull_lrd.kappa 0.7)

let test_weibull_vs_br_fgn () =
  (* On pure fGn the closed form and the numeric rate agree closely for
     buffers with large m*. *)
  let h = 0.86 in
  let src = { Core.Weibull_lrd.h; g = 1.0; mu = 500.0; variance = 5000.0 } in
  let acf k = if k = 0 then 1.0 else Traffic.Fgn.acf ~h k in
  let vg = Core.Variance_growth.create ~variance:5000.0 ~acf in
  List.iter
    (fun b ->
      let closed = Core.Weibull_lrd.rate src ~c:538.0 ~b in
      let numeric = (Core.Cts.analyze vg ~mu:500.0 ~c:538.0 ~b).Core.Cts.rate in
      check_close_rel ~tol:0.05
        (Printf.sprintf "rates agree at b = %g" b)
        closed numeric)
    [ 200.0; 500.0; 1000.0 ]

let test_weibull_reduces_to_loglinear () =
  (* H -> 1/2 (and g = 1): J is linear in b, i.e. log-linear BOP, the
     effective-bandwidth regime. *)
  let src = { Core.Weibull_lrd.h = 0.5; g = 1.0; mu = 500.0; variance = 5000.0 } in
  let j1 = Core.Weibull_lrd.j src ~c:538.0 ~b:100.0 ~n:30 in
  let j2 = Core.Weibull_lrd.j src ~c:538.0 ~b:200.0 ~n:30 in
  check_close_rel ~tol:1e-9 "J doubles with b at H = 1/2" 2.0 (j2 /. j1)

let test_weibull_subexponential () =
  (* For H > 1/2, doubling the buffer multiplies J by 2^(2-2H) < 2 —
     the Weibull (sub-exponential) slowdown. *)
  let src = { Core.Weibull_lrd.h = 0.9; g = 1.0; mu = 500.0; variance = 5000.0 } in
  let j1 = Core.Weibull_lrd.j src ~c:538.0 ~b:100.0 ~n:30 in
  let j2 = Core.Weibull_lrd.j src ~c:538.0 ~b:200.0 ~n:30 in
  check_close_rel ~tol:1e-9 "Weibull exponent 2 - 2H"
    (2.0 ** 0.2)
    (j2 /. j1)

let test_admission_monotone () =
  let z = (Traffic.Models.z ~a:0.975).Traffic.Models.process in
  let vg =
    Core.Variance_growth.create ~acf:z.Traffic.Process.acf
      ~variance:z.Traffic.Process.variance
  in
  let capacity = 16140.0 in
  let n_strict =
    Core.Admission.max_admissible vg ~mu:500.0 ~total_capacity:capacity
      ~total_buffer:4035.0 ~target_clr:1e-9
  in
  let n_loose =
    Core.Admission.max_admissible vg ~mu:500.0 ~total_capacity:capacity
      ~total_buffer:4035.0 ~target_clr:1e-4
  in
  check_true "looser target admits at least as many" (n_loose >= n_strict);
  check_true "something admitted" (n_strict >= 1);
  check_true "stability respected"
    (float_of_int n_loose *. 500.0 < capacity)

let test_admission_feasibility_boundary () =
  let z = (Traffic.Models.z ~a:0.975).Traffic.Models.process in
  let vg =
    Core.Variance_growth.create ~acf:z.Traffic.Process.acf
      ~variance:z.Traffic.Process.variance
  in
  let capacity = 16140.0 and buffer = 4035.0 and target = 1e-6 in
  let n =
    Core.Admission.max_admissible vg ~mu:500.0 ~total_capacity:capacity
      ~total_buffer:buffer ~target_clr:target
  in
  check_true "admitted count positive" (n >= 1);
  (* n is feasible... *)
  let bop n =
    (Core.Bahadur_rao.evaluate_total vg ~mu:500.0 ~total_capacity:capacity
       ~total_buffer:buffer ~n)
      .Core.Bahadur_rao.log10_bop
  in
  check_true "n feasible" (bop n <= log10 target);
  (* ...and n+1 is not (or hits the stability ceiling). *)
  let next = n + 1 in
  if float_of_int next *. 500.0 < capacity then
    check_true "n+1 infeasible" (bop next > log10 target)

let test_required_capacity () =
  let vg = ar1_vg 0.82 5000.0 in
  let c =
    Core.Admission.required_capacity vg ~mu:500.0 ~n:30 ~total_buffer:4035.0
      ~target_clr:1e-6
  in
  check_true "above mean load" (c > 15000.0);
  let per_source =
    Core.Admission.effective_bandwidth_per_source vg ~mu:500.0 ~n:30
      ~total_buffer:4035.0 ~target_clr:1e-6
  in
  check_close_rel ~tol:1e-9 "per-source consistency" (c /. 30.0) per_source;
  check_true "effective bandwidth above mean" (per_source > 500.0);
  (* Verify the returned capacity indeed meets the target. *)
  let r =
    Core.Bahadur_rao.evaluate_total vg ~mu:500.0 ~total_capacity:c
      ~total_buffer:4035.0 ~n:30
  in
  check_true "capacity meets CLR target" (r.Core.Bahadur_rao.log10_bop <= -6.0)

let suite =
  [
    case "V(m) matches naive evaluation" test_variance_growth_vs_naive;
    case "V(1) = sigma^2" test_variance_growth_v1;
    case "V(m) for iid" test_variance_growth_iid;
    case "V(m) LRD asymptote m^2H" test_variance_growth_lrd_asymptote;
    case "truncated ACF" test_truncated;
    case "CTS at zero buffer" test_cts_zero_buffer;
    case "CTS monotone in buffer" test_cts_monotone_in_buffer;
    case "CTS AR(1) slope" test_cts_ar1_constant;
    case "CTS LRD closed form" test_cts_lrd_constant;
    case "CTS requires c > mu" test_cts_requires_stability;
    case "truncating ACF beyond m* is free" test_truncation_beyond_cts_is_free;
    case "B-R vs Large-N relation" test_bahadur_rao_vs_large_n;
    case "BOP decreasing in buffer" test_bop_decreasing_in_buffer;
    case "BOP decreasing in capacity" test_bop_decreasing_in_capacity;
    case "total vs per-source forms" test_evaluate_total;
    case "kappa" test_weibull_kappa;
    case "Weibull vs B-R on fGn" test_weibull_vs_br_fgn;
    case "Weibull reduces to log-linear at H=1/2" test_weibull_reduces_to_loglinear;
    case "Weibull sub-exponential scaling" test_weibull_subexponential;
    case "admission monotone in target" test_admission_monotone;
    case "admission boundary exact" test_admission_feasibility_boundary;
    case "required capacity" test_required_capacity;
    qcheck ~count:50 "CTS finite and positive rate"
      QCheck2.Gen.(pair (float_range 0.1 0.95) (float_range 0.0 500.0))
      (fun (rho, b) ->
        let vg = ar1_vg rho 5000.0 in
        let a = Core.Cts.analyze vg ~mu:500.0 ~c:538.0 ~b in
        a.Core.Cts.m_star >= 1 && a.Core.Cts.rate > 0.0);
    qcheck ~count:30 "stronger correlations inflate V(m)"
      QCheck2.Gen.(int_range 2 500)
      (fun m ->
        let weak = ar1_vg 0.3 100.0 and strong = ar1_vg 0.9 100.0 in
        Core.Variance_growth.v strong m > Core.Variance_growth.v weak m);
  ]
