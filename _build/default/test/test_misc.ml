open Helpers

(* Edge cases and small behaviours not covered by the per-module
   suites. *)

let test_histogram_density () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:2.0 ~bins:2 in
  List.iter (Stats.Histogram.add h) [ 0.5; 0.6; 1.5; 3.0 ];
  let d = Stats.Histogram.density h in
  (* 4 observations total (incl. overflow), width 1: bin0 carries 2/4. *)
  check_close "density bin 0" 0.5 d.(0);
  check_close "density bin 1" 0.25 d.(1);
  let centers = Stats.Histogram.bin_centers h in
  check_close "center 0" 0.5 centers.(0);
  check_close "center 1" 1.5 centers.(1)

let test_ci_helpers () =
  let ci = { Stats.Ci.point = 1e-4; half_width = 5e-5; level = 0.95 } in
  check_close_rel ~tol:1e-12 "relative half width" 0.5
    (Stats.Ci.relative_half_width ci);
  let lo, hi = Stats.Ci.log10_interval ci in
  check_close ~tol:1e-9 "log10 lower" (log10 5e-5) lo;
  check_close ~tol:1e-9 "log10 upper" (log10 1.5e-4) hi;
  (* Lower endpoint clipped to stay finite. *)
  let wide = { Stats.Ci.point = 1e-4; half_width = 1.0; level = 0.95 } in
  let lo, _ = Stats.Ci.log10_interval wide in
  check_true "clipped lower endpoint is finite" (Float.is_finite lo)

let test_map2 () =
  let r = Numerics.Float_array.map2 ( *. ) [| 1.0; 2.0 |] [| 3.0; 4.0 |] in
  check_close "map2 0" 3.0 r.(0);
  check_close "map2 1" 8.0 r.(1)

let test_erfc () =
  check_close ~tol:1e-7 "erfc 0" 1.0 (Numerics.Special.erfc 0.0);
  check_close ~tol:2e-7 "erfc symmetric"
    (2.0 -. Numerics.Special.erfc 1.3)
    (Numerics.Special.erfc (-1.3))

let test_trace_load_malformed () =
  let path = Filename.temp_file "cts_bad" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "not a csv at all\n";
      close_out oc;
      check_true "malformed trace rejected"
        (match Traffic.Trace.load_csv ~path with
        | (_ : Traffic.Trace.t) -> false
        | exception Failure _ -> true))

let test_dar_iid_case () =
  (* rho = 0 is the i.i.d. degenerate case; ACF collapses to a spike. *)
  let params = { Traffic.Dar.rho = 0.0; weights = [| 1.0 |] } in
  Traffic.Dar.validate params;
  check_close "iid acf lag 1" 0.0 (Traffic.Dar.acf params 1);
  let p =
    Traffic.Dar.make
      (Traffic.Dar.gaussian_marginal ~mean:0.0 ~variance:1.0)
      params
  in
  let x = Traffic.Process.generate p (rng ~seed:221 ()) 50_000 in
  let r = Stats.Acf.autocorrelation x ~max_lag:1 in
  check_close ~tol:0.02 "iid simulated lag 1" 0.0 r.(1)

let test_onoff_alpha_gamma_mapping () =
  let d = Traffic.Onoff_dist.of_alpha ~alpha:0.8 ~a:1.0 in
  check_close "gamma = 2 - alpha" 1.2 d.Traffic.Onoff_dist.gamma

let test_process_scale_name () =
  let base =
    Traffic.Dar.make
      (Traffic.Dar.gaussian_marginal ~mean:10.0 ~variance:4.0)
      { Traffic.Dar.rho = 0.5; weights = [| 1.0 |] }
  in
  let scaled = Traffic.Process.scale base 2.0 in
  check_true "scaled name mentions factor"
    (contains_substring scaled.Traffic.Process.name "2");
  check_close "acf invariant under scaling"
    (base.Traffic.Process.acf 2)
    (scaled.Traffic.Process.acf 2)

let test_shaper_invalid () =
  let p =
    Traffic.Dar.make
      (Traffic.Dar.gaussian_marginal ~mean:10.0 ~variance:4.0)
      { Traffic.Dar.rho = 0.5; weights = [| 1.0 |] }
  in
  check_true "window 0 rejected"
    (match Traffic.Shaper.smooth p ~window:0 with
    | (_ : Traffic.Process.t) -> false
    | exception Invalid_argument _ -> true)

let test_spectrum_low_frequency_monotone () =
  let s =
    Core.Spectrum.create
      ~acf:(fun k -> 0.8 ** float_of_int k)
      ~variance:1.0 ()
  in
  let p1 = Core.Spectrum.low_frequency_power s ~below:0.3 in
  let p2 = Core.Spectrum.low_frequency_power s ~below:1.0 in
  let p3 = Core.Spectrum.low_frequency_power s ~below:3.0 in
  check_true "monotone in cutoff" (p1 < p2 && p2 < p3)

let test_fig2_summaries () =
  let summaries = Experiments.Exp_fig2.summaries () in
  check_int "two paths" 2 (List.length summaries);
  match summaries with
  | [ z; dar ] ->
      (* Aggregate of 10 sources: mean ~ 5000. *)
      check_close_rel ~tol:0.1 "z path mean" 5000.0 z.Experiments.Exp_fig2.mean;
      check_close_rel ~tol:0.05 "dar path mean" 5000.0
        dar.Experiments.Exp_fig2.mean;
      check_true "LRD path measures higher H"
        (z.Experiments.Exp_fig2.hurst_var
        > dar.Experiments.Exp_fig2.hurst_var +. 0.1)
  | _ -> Alcotest.fail "expected exactly two summaries"

let test_admission_required_capacity_bracket () =
  let vg =
    Core.Variance_growth.create
      ~acf:(fun k -> 0.8 ** float_of_int k)
      ~variance:5000.0
  in
  let c =
    Core.Admission.required_capacity vg ~mu:500.0 ~n:10 ~total_buffer:1000.0
      ~target_clr:1e-6
  in
  check_true "above mean load" (c > 5000.0);
  (* Slightly less capacity must miss the target. *)
  let bop capacity =
    (Core.Bahadur_rao.evaluate_total vg ~mu:500.0 ~total_capacity:capacity
       ~total_buffer:1000.0 ~n:10)
      .Core.Bahadur_rao.log10_bop
  in
  check_true "tightness" (bop (c -. 1.0) > -6.0 -. 0.05)

let suite =
  [
    case "histogram density" test_histogram_density;
    case "ci helpers" test_ci_helpers;
    case "map2" test_map2;
    case "erfc" test_erfc;
    case "trace rejects malformed csv" test_trace_load_malformed;
    case "DAR iid case" test_dar_iid_case;
    case "onoff alpha mapping" test_onoff_alpha_gamma_mapping;
    case "process scale" test_process_scale_name;
    case "shaper invalid window" test_shaper_invalid;
    case "spectrum low-frequency monotone" test_spectrum_low_frequency_monotone;
    slow_case "fig2 summaries" test_fig2_summaries;
    case "required capacity bracket" test_admission_required_capacity_bracket;
  ]
