open Helpers

let source = Traffic.Mpeg.create ~mean:500.0 ()

let test_pattern_normalised () =
  let p = Traffic.Mpeg.default_gop in
  check_int "GOP length 12" 12 (Array.length p);
  check_close ~tol:1e-12 "pattern mean 1" 1.0
    (Numerics.Float_array.mean p);
  check_true "I frame largest"
    (Array.for_all (fun g -> g <= p.(0)) p)

let test_moments () =
  check_close "mean" 500.0 (Traffic.Mpeg.frame_mean source);
  check_true "variance positive" (Traffic.Mpeg.frame_variance source > 0.0);
  (* GOP structure adds variance beyond the activity process alone. *)
  let activity_var = (0.12 *. 500.0) ** 2.0 in
  check_true "pattern inflates variance"
    (Traffic.Mpeg.frame_variance source > activity_var)

let test_acf_gop_ripples () =
  let r = Traffic.Mpeg.acf source in
  check_close "r(0)" 1.0 (r 0);
  (* Full-period lags re-align the pattern: r(12) must exceed the
     neighbouring off-period lags. *)
  check_true "ripple peak at the GOP period" (r 12 > r 11 && r 12 > r 13);
  check_true "second ripple" (r 24 > r 23 && r 24 > r 25);
  (* Decay across periods from the activity process. *)
  check_true "ripples decay" (r 12 > r 24 && r 24 > r 36)

let test_acf_matches_simulation () =
  let process = Traffic.Mpeg.process source in
  let x = Traffic.Process.generate process (rng ~seed:201 ()) 200_000 in
  let sample = Stats.Acf.autocorrelation_fft x ~max_lag:13 in
  List.iter
    (fun k ->
      check_close ~tol:0.03
        (Printf.sprintf "simulated acf lag %d" k)
        (Traffic.Mpeg.acf source k)
        sample.(k))
    [ 1; 2; 3; 6; 12; 13 ]

let test_simulated_moments () =
  let process = Traffic.Mpeg.process source in
  let x = Traffic.Process.generate process (rng ~seed:203 ()) 100_000 in
  let s = Stats.Descriptive.summarize x in
  check_close_rel ~tol:0.03 "simulated mean" 500.0 s.Stats.Descriptive.mean;
  check_close_rel ~tol:0.1 "simulated variance"
    (Traffic.Mpeg.frame_variance source)
    s.Stats.Descriptive.variance

let test_phase_randomisation () =
  (* Different spawns start at random GOP phases: the first frames of
     many generators must not all be I frames. *)
  let process = Traffic.Mpeg.process source in
  let master = rng ~seed:205 () in
  let firsts =
    Array.init 64 (fun i ->
        let g = process.Traffic.Process.spawn (Numerics.Rng.jump_to_substream master i) in
        g ())
  in
  let spread =
    Numerics.Float_array.max firsts /. Numerics.Float_array.min firsts
  in
  check_true "first-frame sizes span the GOP pattern" (spread > 2.0)

let test_cts_analysis_works () =
  let process = Traffic.Mpeg.process source in
  let vg =
    Core.Variance_growth.create ~acf:process.Traffic.Process.acf
      ~variance:process.Traffic.Process.variance
  in
  let a = Core.Cts.analyze vg ~mu:500.0 ~c:538.0 ~b:134.5 in
  check_true "finite CTS" (a.Core.Cts.m_star >= 1);
  check_true "positive rate" (a.Core.Cts.rate > 0.0)

let test_invalid () =
  Alcotest.check_raises "bad rho"
    (Invalid_argument "Mpeg: activity_rho outside [0, 1)") (fun () ->
      ignore (Traffic.Mpeg.create ~activity_rho:1.0 ~mean:500.0 ()))

let suite =
  [
    case "pattern normalised" test_pattern_normalised;
    case "moments" test_moments;
    case "GOP ripples in the ACF" test_acf_gop_ripples;
    slow_case "acf matches simulation" test_acf_matches_simulation;
    slow_case "simulated moments" test_simulated_moments;
    case "phase randomisation" test_phase_randomisation;
    case "CTS analysis applies" test_cts_analysis_works;
    case "invalid arguments" test_invalid;
  ]
