test/test_float_array.ml: Array Float Helpers Numerics QCheck2 Stdlib
