test/test_core.ml: Alcotest Core Helpers List Printf QCheck2 Traffic
