test/test_mpeg.ml: Alcotest Array Core Helpers List Numerics Printf Stats Traffic
