test/test_ascii_plot.ml: Array Experiments Helpers String
