test/test_special.ml: Float Helpers List Numerics Printf QCheck2
