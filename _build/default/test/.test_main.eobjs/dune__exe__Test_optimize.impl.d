test/test_optimize.ml: Float Helpers Numerics QCheck2
