test/test_stats.ml: Array Float Helpers List Numerics Printf QCheck2 Stats
