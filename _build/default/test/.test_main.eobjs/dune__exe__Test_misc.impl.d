test/test_misc.ml: Alcotest Array Core Experiments Filename Float Fun Helpers List Numerics Stats Sys Traffic
