test/test_queueing.ml: Array Helpers Numerics Printf QCheck2 Queueing Stats Stdlib Traffic
