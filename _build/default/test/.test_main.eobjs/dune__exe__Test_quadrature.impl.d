test/test_quadrature.ml: Float Helpers Numerics QCheck2
