test/test_models.ml: Array Float Helpers List Printf Stats Traffic
