test/test_onoff.ml: Alcotest Array Helpers List Numerics Printf QCheck2 Stdlib Traffic
