test/test_dist.ml: Array Float Helpers Numerics Printf QCheck2
