test/test_farima_mg.ml: Array Helpers List Numerics Printf Stats Traffic
