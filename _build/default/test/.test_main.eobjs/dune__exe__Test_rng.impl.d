test/test_rng.ml: Array Helpers Numerics Printf QCheck2
