test/test_shaper.ml: Array Core Helpers Printf QCheck2 Stats Traffic
