test/test_trace.ml: Array Filename Fun Helpers Printf Sys Traffic
