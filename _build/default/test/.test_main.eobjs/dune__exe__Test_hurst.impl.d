test/test_hurst.ml: Array Helpers List Numerics Printf Stats Traffic
