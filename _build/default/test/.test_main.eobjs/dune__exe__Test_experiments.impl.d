test/test_experiments.ml: Alcotest Array Experiments Filename Float Fun Helpers List Printf Stdlib Sys Traffic Unix
