test/test_process.ml: Array Float Helpers Numerics Printf QCheck2 Stats Traffic
