test/test_fgn.ml: Array Helpers Numerics Printf QCheck2 Stats Stdlib Traffic
