test/test_fbndp.ml: Alcotest Array Float Helpers Printf QCheck2 Stats Stdlib Traffic
