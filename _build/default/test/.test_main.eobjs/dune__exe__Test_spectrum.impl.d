test/test_spectrum.ml: Core Helpers List Printf QCheck2 Traffic
