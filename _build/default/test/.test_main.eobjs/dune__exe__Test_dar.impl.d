test/test_dar.ml: Alcotest Array Float Helpers List Printf QCheck2 Stats Traffic
