test/test_fft.ml: Array Float Helpers Numerics Printf QCheck2
