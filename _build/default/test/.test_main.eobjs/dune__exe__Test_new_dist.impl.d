test/test_new_dist.ml: Helpers List Numerics Printf QCheck2 Traffic
