test/helpers.ml: Alcotest Float Numerics QCheck2 QCheck_alcotest Stdlib String
