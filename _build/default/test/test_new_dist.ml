open Helpers

(* Gamma and negative-binomial samplers added for the Section 6.1
   marginal experiments. *)

let sample_moments n f =
  let acc = ref 0.0 and acc2 = ref 0.0 in
  for _ = 1 to n do
    let x = f () in
    acc := !acc +. x;
    acc2 := !acc2 +. (x *. x)
  done;
  let mean = !acc /. float_of_int n in
  (mean, (!acc2 /. float_of_int n) -. (mean *. mean))

let gamma_check ~shape ~scale =
  let a = rng ~seed:(int_of_float (shape *. 13.0) + 1) () in
  let mean, var =
    sample_moments 200_000 (fun () -> Numerics.Dist.gamma a ~shape ~scale)
  in
  check_close_rel ~tol:0.02
    (Printf.sprintf "gamma(%g,%g) mean" shape scale)
    (shape *. scale) mean;
  check_close_rel ~tol:0.05
    (Printf.sprintf "gamma(%g,%g) variance" shape scale)
    (shape *. scale *. scale)
    var

let test_gamma_large_shape () = gamma_check ~shape:9.0 ~scale:2.0
let test_gamma_unit_shape () = gamma_check ~shape:1.0 ~scale:3.0

(* Exercises the boosting branch. *)
let test_gamma_small_shape () = gamma_check ~shape:0.4 ~scale:1.5

let test_gamma_exponential_special_case () =
  (* Gamma(1, scale) is exponential: check a tail probability. *)
  let a = rng ~seed:171 () in
  let n = 100_000 in
  let beyond = ref 0 in
  for _ = 1 to n do
    if Numerics.Dist.gamma a ~shape:1.0 ~scale:2.0 > 4.0 then incr beyond
  done;
  check_close ~tol:0.005 "P(X > 2 means) = e^-2"
    (exp (-2.0))
    (float_of_int !beyond /. float_of_int n)

let test_negative_binomial_moments () =
  let a = rng ~seed:173 () in
  let r = 5.0 and p = 0.4 in
  let mean, var =
    sample_moments 200_000 (fun () ->
        float_of_int (Numerics.Dist.negative_binomial a ~r ~p))
  in
  check_close_rel ~tol:0.02 "negbin mean" (r *. (1.0 -. p) /. p) mean;
  check_close_rel ~tol:0.05 "negbin variance" (r *. (1.0 -. p) /. (p *. p)) var

let test_negative_binomial_of_moments () =
  let a = rng ~seed:175 () in
  (* The paper's frame-size moments. *)
  let mean_target = 500.0 and var_target = 5000.0 in
  let mean, var =
    sample_moments 100_000 (fun () ->
        float_of_int
          (Numerics.Dist.negative_binomial_of_moments a ~mean:mean_target
             ~variance:var_target))
  in
  check_close_rel ~tol:0.01 "moment-matched mean" mean_target mean;
  check_close_rel ~tol:0.05 "moment-matched variance" var_target var

let test_marginals_share_moments () =
  List.iter
    (fun (name, marginal) ->
      check_close (name ^ " declared mean") 500.0 marginal.Traffic.Dar.mean;
      check_close (name ^ " declared variance") 5000.0
        marginal.Traffic.Dar.variance)
    [
      ("gaussian", Traffic.Dar.gaussian_marginal ~mean:500.0 ~variance:5000.0);
      ( "negbin",
        Traffic.Dar.negative_binomial_marginal ~mean:500.0 ~variance:5000.0 );
      ("gamma", Traffic.Dar.gamma_marginal ~mean:500.0 ~variance:5000.0);
    ]

let test_marginal_sampling_moments () =
  List.iteri
    (fun i (name, marginal) ->
      let a = rng ~seed:(181 + i) () in
      let mean, var =
        sample_moments 150_000 (fun () -> marginal.Traffic.Dar.sample a)
      in
      check_close_rel ~tol:0.02 (name ^ " sampled mean") 500.0 mean;
      check_close_rel ~tol:0.06 (name ^ " sampled variance") 5000.0 var)
    [
      ("gaussian", Traffic.Dar.gaussian_marginal ~mean:500.0 ~variance:5000.0);
      ( "negbin",
        Traffic.Dar.negative_binomial_marginal ~mean:500.0 ~variance:5000.0 );
      ("gamma", Traffic.Dar.gamma_marginal ~mean:500.0 ~variance:5000.0);
    ]

let test_negbin_heavier_tail_than_gaussian () =
  (* Same moments, but P(X > mu + 4 sigma) should be clearly larger for
     the negative binomial. *)
  let a = rng ~seed:191 () in
  let threshold = 500.0 +. (4.0 *. sqrt 5000.0) in
  let count_tail sample =
    let c = ref 0 in
    for _ = 1 to 300_000 do
      if sample () > threshold then incr c
    done;
    !c
  in
  let gauss = Traffic.Dar.gaussian_marginal ~mean:500.0 ~variance:5000.0 in
  let negbin =
    Traffic.Dar.negative_binomial_marginal ~mean:500.0 ~variance:5000.0
  in
  let g = count_tail (fun () -> gauss.Traffic.Dar.sample a) in
  let nb = count_tail (fun () -> negbin.Traffic.Dar.sample a) in
  check_true
    (Printf.sprintf "negbin tail (%d) heavier than gaussian (%d)" nb g)
    (nb > 2 * g)

let suite =
  [
    case "gamma large shape" test_gamma_large_shape;
    case "gamma shape 1" test_gamma_unit_shape;
    case "gamma small shape (boost)" test_gamma_small_shape;
    case "gamma(1) is exponential" test_gamma_exponential_special_case;
    case "negative binomial moments" test_negative_binomial_moments;
    case "negative binomial of moments" test_negative_binomial_of_moments;
    case "marginal declared moments" test_marginals_share_moments;
    slow_case "marginal sampled moments" test_marginal_sampling_moments;
    slow_case "negbin tail heavier" test_negbin_heavier_tail_than_gaussian;
    qcheck "gamma positive" QCheck2.Gen.(pair (float_range 0.1 20.0) (float_range 0.1 10.0))
      (fun (shape, scale) ->
        let a = rng ~seed:193 () in
        Numerics.Dist.gamma a ~shape ~scale > 0.0);
    qcheck "negbin non-negative" QCheck2.Gen.(pair (float_range 0.2 30.0) (float_range 0.05 0.95))
      (fun (r, p) ->
        let a = rng ~seed:195 () in
        Numerics.Dist.negative_binomial a ~r ~p >= 0);
  ]
