open Helpers

let test_golden_quadratic () =
  let f x = ((x -. 2.5) ** 2.0) +. 1.0 in
  let x = Numerics.Optimize.golden_section ~f ~lo:0.0 ~hi:10.0 ~tol:1e-8 in
  check_close ~tol:1e-6 "golden section on quadratic" 2.5 x

let test_brent_quadratic () =
  let f x = ((x +. 1.25) ** 2.0) -. 3.0 in
  let x = Numerics.Optimize.brent ~f ~lo:(-10.0) ~hi:10.0 ~tol:1e-10 in
  check_close ~tol:1e-6 "brent on quadratic" (-1.25) x

let test_brent_nonsmooth () =
  let f x = Float.abs (x -. 0.7) in
  let x = Numerics.Optimize.brent ~f ~lo:0.0 ~hi:2.0 ~tol:1e-9 in
  check_close ~tol:1e-5 "brent on |x - a|" 0.7 x

let test_integer_argmin_basic () =
  let f m = float_of_int ((m - 17) * (m - 17)) in
  let r =
    Numerics.Optimize.integer_argmin ~f ~lo:1
      ~stop:(fun ~best:_ ~at ~current:_ -> at > 100)
      ()
  in
  check_int "argmin found" 17 r.Numerics.Optimize.argmin;
  check_close "minimum value" 0.0 r.Numerics.Optimize.minimum

let test_integer_argmin_hard_cap () =
  let f m = 1.0 /. float_of_int m in
  let r =
    Numerics.Optimize.integer_argmin ~f ~lo:1 ~hard_cap:500
      ~stop:(fun ~best:_ ~at:_ ~current:_ -> false)
      ()
  in
  check_int "cap respected" 500 r.Numerics.Optimize.scanned_up_to;
  check_int "monotone decreasing keeps last" 500 r.Numerics.Optimize.argmin

let test_roots_bisect () =
  let f x = (x *. x) -. 2.0 in
  let x = Numerics.Roots.bisect ~f ~lo:0.0 ~hi:2.0 ~tol:1e-10 in
  check_close ~tol:1e-8 "bisect sqrt2" (sqrt 2.0) x

let test_roots_newton () =
  let f x = (x ** 3.0) -. 8.0 in
  let df x = 3.0 *. x *. x in
  let x = Numerics.Roots.newton ~f ~df ~x0:5.0 ~tol:1e-12 in
  check_close ~tol:1e-9 "newton cube root of 8" 2.0 x

let test_roots_brent () =
  let f x = cos x -. x in
  let x = Numerics.Roots.brent ~f ~lo:0.0 ~hi:1.5 ~tol:1e-12 in
  check_close ~tol:1e-8 "brent dottie number" 0.7390851332 x

let suite =
  [
    case "golden section" test_golden_quadratic;
    case "brent minimise quadratic" test_brent_quadratic;
    case "brent minimise |x-a|" test_brent_nonsmooth;
    case "integer argmin" test_integer_argmin_basic;
    case "integer argmin hard cap" test_integer_argmin_hard_cap;
    case "bisect" test_roots_bisect;
    case "newton" test_roots_newton;
    case "brent root" test_roots_brent;
    qcheck "golden section finds random quadratic minimum"
      QCheck2.Gen.(float_range (-50.0) 50.0)
      (fun center ->
        let f x = (x -. center) ** 2.0 in
        let x =
          Numerics.Optimize.golden_section ~f ~lo:(center -. 60.0)
            ~hi:(center +. 60.0) ~tol:1e-7
        in
        Float.abs (x -. center) < 1e-4);
    qcheck "bisect solves x = u on monotone cubic"
      QCheck2.Gen.(float_range (-2.0) 2.0)
      (fun target ->
        let f x = (x ** 3.0) +. x -. ((target ** 3.0) +. target) in
        let x = Numerics.Roots.bisect ~f ~lo:(-3.0) ~hi:3.0 ~tol:1e-10 in
        Float.abs (x -. target) < 1e-6);
  ]
