open Helpers

let gaussian_marginal = Traffic.Dar.gaussian_marginal ~mean:500.0 ~variance:5000.0

let test_validate () =
  Traffic.Dar.validate { Traffic.Dar.rho = 0.5; weights = [| 0.5; 0.5 |] };
  Alcotest.check_raises "rho out of range"
    (Invalid_argument "Dar: rho = 1.2 outside [0, 1)")
    (fun () ->
      Traffic.Dar.validate { Traffic.Dar.rho = 1.2; weights = [| 1.0 |] });
  Alcotest.check_raises "weights must sum to 1"
    (Invalid_argument "Dar: weights sum to 0.8, expected 1")
    (fun () ->
      Traffic.Dar.validate { Traffic.Dar.rho = 0.5; weights = [| 0.8 |] })

let test_dar1_acf_geometric () =
  let params = { Traffic.Dar.rho = 0.8; weights = [| 1.0 |] } in
  for k = 0 to 20 do
    check_close ~tol:1e-12
      (Printf.sprintf "DAR(1) lag %d" k)
      (0.8 ** float_of_int k)
      (Traffic.Dar.acf params k)
  done

let test_acf_fun_consistent () =
  let params = { Traffic.Dar.rho = 0.9; weights = [| 0.6; 0.3; 0.1 |] } in
  let f = Traffic.Dar.acf_fun params in
  List.iter
    (fun k ->
      check_close ~tol:1e-12
        (Printf.sprintf "memoized acf at %d" k)
        (Traffic.Dar.acf params k) (f k))
    [ 0; 1; 2; 3; 10; 100; 50; 200 ]

let test_acf_satisfies_recursion () =
  let params = { Traffic.Dar.rho = 0.85; weights = [| 0.5; 0.3; 0.2 |] } in
  let r = Traffic.Dar.acf_fun params in
  (* r(k) = rho sum_i a_i r(|k-i|), including the implicit small-k range. *)
  for k = 1 to 30 do
    let rhs =
      0.85
      *. ((0.5 *. r (abs (k - 1)))
         +. (0.3 *. r (abs (k - 2)))
         +. (0.2 *. r (abs (k - 3))))
    in
    check_close ~tol:1e-10 (Printf.sprintf "YW recursion at %d" k) rhs (r k)
  done

let test_fit_recovers_dar () =
  (* Fitting a DAR(p) to the ACF of a DAR(p) must return the same
     parameters. *)
  let params = { Traffic.Dar.rho = 0.9; weights = [| 0.7; 0.2; 0.1 |] } in
  let fitted = Traffic.Dar.fit ~target_acf:(Traffic.Dar.acf_fun params) ~p:3 in
  check_close ~tol:1e-9 "rho recovered" 0.9 fitted.Traffic.Dar.rho;
  Array.iteri
    (fun i w ->
      check_close ~tol:1e-9
        (Printf.sprintf "weight %d recovered" i)
        params.Traffic.Dar.weights.(i) w)
    fitted.Traffic.Dar.weights

let test_fit_matches_first_p_lags () =
  let z = (Traffic.Models.z ~a:0.9).Traffic.Models.process in
  List.iter
    (fun p ->
      let fitted = Traffic.Dar.fit ~target_acf:z.Traffic.Process.acf ~p in
      let r = Traffic.Dar.acf_fun fitted in
      for k = 1 to p do
        check_close ~tol:1e-9
          (Printf.sprintf "DAR(%d) matches lag %d" p k)
          (z.Traffic.Process.acf k) (r k)
      done)
    [ 1; 2; 3; 4; 5 ]

let test_simulated_marginal () =
  let process =
    Traffic.Dar.make gaussian_marginal { Traffic.Dar.rho = 0.8; weights = [| 1.0 |] }
  in
  let x = Traffic.Process.generate process (rng ~seed:71 ()) 100_000 in
  let s = Stats.Descriptive.summarize x in
  check_close ~tol:5.0 "marginal mean" 500.0 s.Stats.Descriptive.mean;
  check_close_rel ~tol:0.05 "marginal variance" 5000.0 s.Stats.Descriptive.variance

let test_simulated_acf () =
  let params = { Traffic.Dar.rho = 0.75; weights = [| 0.7; 0.3 |] } in
  let process = Traffic.Dar.make gaussian_marginal params in
  let x = Traffic.Process.generate process (rng ~seed:73 ()) 300_000 in
  let sample = Stats.Acf.autocorrelation_fft x ~max_lag:10 in
  let r = Traffic.Dar.acf_fun params in
  for k = 1 to 10 do
    check_close ~tol:0.02
      (Printf.sprintf "simulated acf lag %d" k)
      (r k) sample.(k)
  done

let test_process_metadata () =
  let params = { Traffic.Dar.rho = 0.8; weights = [| 1.0 |] } in
  let process = Traffic.Dar.make gaussian_marginal params in
  check_close "mean" 500.0 process.Traffic.Process.mean;
  check_close "variance" 5000.0 process.Traffic.Process.variance;
  check_true "SRD: no hurst" (process.Traffic.Process.hurst = None)

let random_valid_params =
  QCheck2.Gen.(
    let* p = int_range 1 4 in
    let* rho = float_range 0.05 0.95 in
    let* raw = array_size (return p) (float_range 0.05 1.0) in
    let total = Array.fold_left ( +. ) 0.0 raw in
    return
      { Traffic.Dar.rho; weights = Array.map (fun w -> w /. total) raw })

let suite =
  [
    case "validate" test_validate;
    case "DAR(1) geometric acf" test_dar1_acf_geometric;
    case "memoized acf" test_acf_fun_consistent;
    case "acf satisfies the YW recursion" test_acf_satisfies_recursion;
    case "fit recovers DAR parameters" test_fit_recovers_dar;
    case "fit matches first p lags of Z" test_fit_matches_first_p_lags;
    case "simulated marginal" test_simulated_marginal;
    slow_case "simulated acf" test_simulated_acf;
    case "process metadata" test_process_metadata;
    qcheck ~count:50 "fit(acf(params)) = params" random_valid_params
      (fun params ->
        let p = Array.length params.Traffic.Dar.weights in
        match Traffic.Dar.fit ~target_acf:(Traffic.Dar.acf_fun params) ~p with
        | fitted ->
            Float.abs (fitted.Traffic.Dar.rho -. params.Traffic.Dar.rho) < 1e-6
            && Array.for_all2
                 (fun a b -> Float.abs (a -. b) < 1e-6)
                 fitted.Traffic.Dar.weights params.Traffic.Dar.weights
        | exception Invalid_argument _ ->
            (* Near-degenerate weights can produce an ill-conditioned
               Toeplitz system; rejecting is acceptable behaviour. *)
            true);
    qcheck ~count:50 "analytic acf stays in [-1, 1]" random_valid_params
      (fun params ->
        let r = Traffic.Dar.acf_fun params in
        let ok = ref true in
        for k = 0 to 200 do
          if Float.abs (r k) > 1.0 +. 1e-9 then ok := false
        done;
        !ok);
  ]
