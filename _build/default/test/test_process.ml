open Helpers

let dar rho mean variance =
  Traffic.Dar.make
    (Traffic.Dar.gaussian_marginal ~mean ~variance)
    { Traffic.Dar.rho; weights = [| 1.0 |] }

let test_scale () =
  let p = Traffic.Process.scale (dar 0.8 100.0 400.0) 3.0 in
  check_close "scaled mean" 300.0 p.Traffic.Process.mean;
  check_close "scaled variance" 3600.0 p.Traffic.Process.variance;
  check_close ~tol:1e-12 "acf untouched" 0.8 (p.Traffic.Process.acf 1);
  let x = Traffic.Process.generate p (rng ~seed:131 ()) 50_000 in
  check_close_rel ~tol:0.02 "generated mean scaled" 300.0
    (Numerics.Float_array.mean x)

let test_superpose_moments () =
  let a = dar 0.9 100.0 300.0 and b = dar 0.2 50.0 700.0 in
  let s = Traffic.Process.superpose [ a; b ] in
  check_close "sum mean" 150.0 s.Traffic.Process.mean;
  check_close "sum variance" 1000.0 s.Traffic.Process.variance;
  (* Weighted ACF (paper eq. 5). *)
  let expected k = ((300.0 *. (0.9 ** k)) +. (700.0 *. (0.2 ** k))) /. 1000.0 in
  for k = 1 to 10 do
    check_close ~tol:1e-12
      (Printf.sprintf "weighted acf %d" k)
      (expected (float_of_int k))
      (s.Traffic.Process.acf k)
  done

let test_superpose_hurst () =
  let lrd =
    Traffic.Fgn.process ~block:1024 ~h:0.9 ~mean:10.0 ~variance:4.0 ()
  in
  let srd = dar 0.5 10.0 4.0 in
  let s = Traffic.Process.superpose [ lrd; srd ] in
  check_true "hurst of mix is the max" (s.Traffic.Process.hurst = Some 0.9)

let test_superpose_generation () =
  let a = dar 0.9 100.0 300.0 and b = dar 0.2 50.0 700.0 in
  let s = Traffic.Process.superpose [ a; b ] in
  let x = Traffic.Process.generate s (rng ~seed:133 ()) 100_000 in
  let st = Stats.Descriptive.summarize x in
  check_close_rel ~tol:0.02 "generated mean" 150.0 st.Stats.Descriptive.mean;
  check_close_rel ~tol:0.05 "generated variance" 1000.0
    st.Stats.Descriptive.variance

let test_replicate () =
  let p = Traffic.Process.replicate (dar 0.7 100.0 400.0) 25 in
  check_close "aggregate mean" 2500.0 p.Traffic.Process.mean;
  check_close "aggregate variance" 10000.0 p.Traffic.Process.variance;
  check_close ~tol:1e-12 "acf unchanged by homogeneous aggregation" 0.7
    (p.Traffic.Process.acf 1);
  let x = Traffic.Process.generate p (rng ~seed:135 ()) 50_000 in
  let st = Stats.Descriptive.summarize x in
  check_close_rel ~tol:0.02 "generated aggregate mean" 2500.0
    st.Stats.Descriptive.mean;
  check_close_rel ~tol:0.05 "generated aggregate variance" 10000.0
    st.Stats.Descriptive.variance

let test_acf_array () =
  let p = dar 0.6 0.0 1.0 in
  let r = Traffic.Process.acf_array p ~max_lag:5 in
  check_int "length" 6 (Array.length r);
  check_close "r0" 1.0 r.(0);
  check_close ~tol:1e-12 "r3" (0.6 ** 3.0) r.(3)

let test_spawn_independence () =
  (* Two spawns from substreams must give different paths; the same
     substream must reproduce exactly. *)
  let p = dar 0.6 0.0 1.0 in
  let master = rng ~seed:137 () in
  let x1 =
    Traffic.Process.generate p (Numerics.Rng.jump_to_substream master 0) 100
  in
  let x2 =
    Traffic.Process.generate p (Numerics.Rng.jump_to_substream master 0) 100
  in
  let x3 =
    Traffic.Process.generate p (Numerics.Rng.jump_to_substream master 1) 100
  in
  check_true "same substream reproduces" (x1 = x2);
  check_true "different substream differs" (x1 <> x3)

let suite =
  [
    case "scale" test_scale;
    case "superpose moments and acf" test_superpose_moments;
    case "superpose hurst" test_superpose_hurst;
    case "superpose generation" test_superpose_generation;
    case "replicate" test_replicate;
    case "acf_array" test_acf_array;
    case "spawn substream independence" test_spawn_independence;
    qcheck ~count:50 "superposition variance additivity"
      QCheck2.Gen.(pair (float_range 1.0 100.0) (float_range 1.0 100.0))
      (fun (v1, v2) ->
        let s = Traffic.Process.superpose [ dar 0.5 0.0 v1; dar 0.5 0.0 v2 ] in
        Float.abs (s.Traffic.Process.variance -. (v1 +. v2)) < 1e-9);
  ]
