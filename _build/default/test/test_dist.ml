open Helpers

let sample_moments n f =
  let acc = ref 0.0 and acc2 = ref 0.0 in
  for _ = 1 to n do
    let x = f () in
    acc := !acc +. x;
    acc2 := !acc2 +. (x *. x)
  done;
  let mean = !acc /. float_of_int n in
  let var = (!acc2 /. float_of_int n) -. (mean *. mean) in
  (mean, var)

let test_exponential () =
  let a = rng () in
  let mean, var =
    sample_moments 200_000 (fun () -> Numerics.Dist.exponential a ~rate:2.0)
  in
  check_close ~tol:0.01 "exp mean 1/rate" 0.5 mean;
  check_close ~tol:0.01 "exp var 1/rate^2" 0.25 var

let test_gaussian () =
  let a = rng () in
  let mean, var =
    sample_moments 200_000 (fun () ->
        Numerics.Dist.gaussian a ~mean:3.0 ~std:2.0)
  in
  check_close ~tol:0.03 "gaussian mean" 3.0 mean;
  check_close ~tol:0.08 "gaussian variance" 4.0 var

let test_gaussian_tails () =
  let a = rng () in
  let n = 200_000 in
  let beyond = ref 0 in
  for _ = 1 to n do
    if Float.abs (Numerics.Dist.standard_gaussian a) > 1.959964 then
      incr beyond
  done;
  check_close ~tol:0.004 "5% outside +-1.96"
    0.05
    (float_of_int !beyond /. float_of_int n)

let poisson_check mean_target =
  let a = rng ~seed:(int_of_float (mean_target *. 7.0) + 3) () in
  let mean, var =
    sample_moments 200_000 (fun () ->
        float_of_int (Numerics.Dist.poisson a ~mean:mean_target))
  in
  check_close_rel ~tol:0.02
    (Printf.sprintf "poisson(%g) mean" mean_target)
    mean_target mean;
  check_close_rel ~tol:0.03
    (Printf.sprintf "poisson(%g) variance" mean_target)
    mean_target var

let test_poisson_small () = poisson_check 3.7
let test_poisson_boundary () = poisson_check 11.9

(* Exercises the PTRD branch. *)
let test_poisson_large () = poisson_check 250.0

let test_pareto () =
  let a = rng () in
  (* shape 3 has finite mean and variance: mean = 3/2, var = 3/4 *)
  let mean, var =
    sample_moments 400_000 (fun () ->
        Numerics.Dist.pareto a ~shape:3.0 ~scale:1.0)
  in
  check_close ~tol:0.02 "pareto mean" 1.5 mean;
  check_close ~tol:0.15 "pareto variance" 0.75 var

let test_pareto_tail () =
  let a = rng () in
  let n = 100_000 in
  let beyond = ref 0 in
  for _ = 1 to n do
    if Numerics.Dist.pareto a ~shape:1.5 ~scale:2.0 > 8.0 then incr beyond
  done;
  (* P(X > 8) = (2/8)^1.5 = 0.125 *)
  check_close ~tol:0.005 "pareto tail probability" 0.125
    (float_of_int !beyond /. float_of_int n)

let test_binomial () =
  let a = rng () in
  let n = 40 and p = 0.3 in
  let mean, var =
    sample_moments 100_000 (fun () ->
        float_of_int (Numerics.Dist.binomial a ~n ~p))
  in
  check_close ~tol:0.05 "binomial mean np" (float_of_int n *. p) mean;
  check_close ~tol:0.1 "binomial var npq" (float_of_int n *. p *. 0.7) var

let test_geometric () =
  let a = rng () in
  let p = 0.25 in
  let mean, var =
    sample_moments 200_000 (fun () ->
        float_of_int (Numerics.Dist.geometric a ~p))
  in
  (* failures before success: mean (1-p)/p = 3, var (1-p)/p^2 = 12 *)
  check_close ~tol:0.05 "geometric mean" 3.0 mean;
  check_close ~tol:0.35 "geometric variance" 12.0 var

let test_categorical () =
  let a = rng () in
  let weights = [| 1.0; 2.0; 3.0; 4.0 |] in
  let counts = Array.make 4 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Numerics.Dist.categorical a ~weights in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      check_close ~tol:0.01
        (Printf.sprintf "categorical bucket %d" i)
        (weights.(i) /. 10.0)
        (float_of_int c /. float_of_int n))
    counts

let test_discrete_cdf () =
  let a = rng () in
  let cdf = [| 0.1; 0.4; 0.4; 1.0 |] in
  let counts = Array.make 4 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Numerics.Dist.discrete_cdf_sample a ~cdf in
    counts.(i) <- counts.(i) + 1
  done;
  check_close ~tol:0.01 "mass 0" 0.1 (float_of_int counts.(0) /. float_of_int n);
  check_close ~tol:0.01 "mass 1" 0.3 (float_of_int counts.(1) /. float_of_int n);
  check_int "zero-mass bucket untouched" 0 counts.(2);
  check_close ~tol:0.01 "mass 3" 0.6 (float_of_int counts.(3) /. float_of_int n)

let suite =
  [
    case "exponential moments" test_exponential;
    case "gaussian moments" test_gaussian;
    case "gaussian tails" test_gaussian_tails;
    case "poisson small mean" test_poisson_small;
    case "poisson boundary mean" test_poisson_boundary;
    case "poisson large mean (PTRD)" test_poisson_large;
    case "pareto moments" test_pareto;
    case "pareto tail" test_pareto_tail;
    case "binomial moments" test_binomial;
    case "geometric moments" test_geometric;
    case "categorical frequencies" test_categorical;
    case "discrete cdf sampling" test_discrete_cdf;
    qcheck "poisson non-negative" QCheck2.Gen.(float_range 0.0 500.0)
      (fun mean ->
        let a = rng ~seed:3 () in
        Numerics.Dist.poisson a ~mean >= 0);
    qcheck "binomial within [0, n]" QCheck2.Gen.(pair (int_range 0 200) (float_range 0. 1.))
      (fun (n, p) ->
        let a = rng ~seed:5 () in
        let v = Numerics.Dist.binomial a ~n ~p in
        v >= 0 && v <= n);
    qcheck "pareto at least scale" QCheck2.Gen.(pair (float_range 0.5 4.0) (float_range 0.1 10.0))
      (fun (shape, scale) ->
        let a = rng ~seed:9 () in
        Numerics.Dist.pareto a ~shape ~scale >= scale);
  ]
