open Helpers

let pi = 4.0 *. atan 1.0

let test_simpson_sin () =
  let v = Numerics.Quadrature.adaptive_simpson ~f:sin ~lo:0.0 ~hi:pi ~tol:1e-10 in
  check_close ~tol:1e-8 "integral of sin over [0, pi]" 2.0 v

let test_simpson_gaussian () =
  let f x = exp (-.x *. x /. 2.0) /. sqrt (2.0 *. pi) in
  let v =
    Numerics.Quadrature.adaptive_simpson ~f ~lo:(-8.0) ~hi:8.0 ~tol:1e-10
  in
  check_close ~tol:1e-8 "gaussian density integrates to 1" 1.0 v

let test_simpson_empty () =
  check_close "empty interval" 0.0
    (Numerics.Quadrature.adaptive_simpson ~f:exp ~lo:1.0 ~hi:1.0 ~tol:1e-8)

let test_gauss_legendre_poly () =
  (* Degree-9 polynomial: 16-point GL is exact. *)
  let f x = (5.0 *. (x ** 9.0)) -. (3.0 *. (x ** 4.0)) +. 2.0 in
  let exact = (5.0 /. 10.0 *. (2.0 ** 10.0 -. 1.0)) -. (3.0 /. 5.0 *. (2.0 ** 5.0 -. 1.0)) +. (2.0 *. 1.0) in
  let v = Numerics.Quadrature.gauss_legendre_16 ~f ~lo:1.0 ~hi:2.0 in
  check_close_rel ~tol:1e-12 "GL16 exact on degree 9" exact v

let test_gauss_legendre_vs_simpson () =
  let f x = log (1.0 +. x) *. cos x in
  let a = Numerics.Quadrature.gauss_legendre_16 ~f ~lo:0.0 ~hi:2.0 in
  let b = Numerics.Quadrature.adaptive_simpson ~f ~lo:0.0 ~hi:2.0 ~tol:1e-12 in
  check_close ~tol:1e-9 "GL16 agrees with adaptive Simpson" b a

let test_tail_integral () =
  (* integral_1^inf x^-2 dx = 1 *)
  let v =
    Numerics.Quadrature.tail_integral
      ~f:(fun x -> 1.0 /. (x *. x))
      ~lo:1.0 ~decay:2.0 ~tol:1e-12
  in
  check_close ~tol:1e-6 "tail of x^-2" 1.0 v;
  (* integral_2^inf x^-1.5 dx = 2 / sqrt 2 = sqrt 2 *)
  let v =
    Numerics.Quadrature.tail_integral
      ~f:(fun x -> x ** -1.5)
      ~lo:2.0 ~decay:1.5 ~tol:1e-12
  in
  check_close ~tol:1e-5 "tail of x^-1.5" (sqrt 2.0) v

let suite =
  [
    case "adaptive simpson sin" test_simpson_sin;
    case "adaptive simpson gaussian" test_simpson_gaussian;
    case "adaptive simpson empty interval" test_simpson_empty;
    case "gauss-legendre polynomial exactness" test_gauss_legendre_poly;
    case "gauss-legendre vs simpson" test_gauss_legendre_vs_simpson;
    case "tail integral" test_tail_integral;
    qcheck "simpson linearity on monomials" QCheck2.Gen.(int_range 0 6)
      (fun k ->
        let f x = x ** float_of_int k in
        let v = Numerics.Quadrature.adaptive_simpson ~f ~lo:0.0 ~hi:1.0 ~tol:1e-12 in
        Float.abs (v -. (1.0 /. float_of_int (k + 1))) < 1e-9);
  ]
