open Helpers

(* F-ARIMA(0,d,0) *)

let test_farima_acf_lag1 () =
  (* r(1) = d / (1 - d) *)
  List.iter
    (fun d ->
      check_close_rel ~tol:1e-10
        (Printf.sprintf "r(1) for d = %g" d)
        (d /. (1.0 -. d))
        (Traffic.Farima.acf ~d 1))
    [ 0.1; 0.25; 0.4 ]

let test_farima_acf_ratio () =
  (* r(k+1)/r(k) = (k + d) / (k + 1 - d) *)
  let d = 0.3 in
  for k = 1 to 20 do
    let ratio = Traffic.Farima.acf ~d (k + 1) /. Traffic.Farima.acf ~d k in
    check_close_rel ~tol:1e-9
      (Printf.sprintf "ratio at %d" k)
      ((float_of_int k +. d) /. (float_of_int k +. 1.0 -. d))
      ratio
  done

let test_farima_ma_coefficients () =
  let d = 0.35 in
  let psi = Traffic.Farima.ma_coefficients ~d ~n:10 in
  check_close "psi_0 = 1" 1.0 psi.(0);
  check_close ~tol:1e-12 "psi_1 = d" d psi.(1);
  (* psi_j = Gamma(j+d) / (Gamma(d) Gamma(j+1)) *)
  let open Numerics.Special in
  for j = 2 to 9 do
    let expected =
      exp
        (log_gamma (float_of_int j +. d)
        -. log_gamma d
        -. log_gamma (float_of_int j +. 1.0))
    in
    check_close_rel ~tol:1e-10 (Printf.sprintf "psi_%d" j) expected psi.(j)
  done

let test_farima_process_moments () =
  let p = Traffic.Farima.process ~truncation:512 ~d:0.3 ~mean:500.0 ~variance:5000.0 () in
  check_true "hurst = d + 1/2" (p.Traffic.Process.hurst = Some 0.8);
  let x = Traffic.Process.generate p (rng ~seed:121 ()) 20_000 in
  let s = Stats.Descriptive.summarize x in
  check_close_rel ~tol:0.05 "mean" 500.0 s.Stats.Descriptive.mean;
  check_close_rel ~tol:0.15 "variance" 5000.0 s.Stats.Descriptive.variance

let test_farima_process_acf () =
  let d = 0.25 in
  let p = Traffic.Farima.process ~truncation:1024 ~d ~mean:0.0 ~variance:1.0 () in
  let x = Traffic.Process.generate p (rng ~seed:123 ()) 60_000 in
  let sample = Stats.Acf.autocorrelation_fft x ~max_lag:3 in
  for k = 1 to 3 do
    check_close ~tol:0.03
      (Printf.sprintf "farima sample acf lag %d" k)
      (Traffic.Farima.acf ~d k)
      sample.(k)
  done

(* M/G/infinity *)

let mg = Traffic.Mg_infinity.create ~beta:1.5 ~session_rate:4.0 ()

let zeta_brute beta n0 =
  let acc = ref 0.0 in
  for n = n0 to 2_000_000 do
    acc := !acc +. (float_of_int n ** -.beta)
  done;
  !acc

let test_mg_mean_holding () =
  (* E L = zeta(1.5) = 2.612375... *)
  check_close ~tol:1e-3 "zeta(1.5)" 2.612375
    (Traffic.Mg_infinity.mean_holding mg)

let test_mg_zeta_tail_vs_brute () =
  List.iter
    (fun k ->
      let analytic = Traffic.Mg_infinity.acf mg k in
      let brute = zeta_brute 1.5 (k + 1) /. zeta_brute 1.5 1 in
      check_close ~tol:1e-3 (Printf.sprintf "acf(%d)" k) brute analytic)
    [ 1; 5; 50 ]

let test_mg_hurst () =
  check_close "H = (3 - beta)/2" 0.75 (Traffic.Mg_infinity.hurst mg)

let test_mg_acf_shape () =
  check_close "r(0)" 1.0 (Traffic.Mg_infinity.acf mg 0);
  let prev = ref 1.0 in
  for k = 1 to 100 do
    let r = Traffic.Mg_infinity.acf mg k in
    check_true "decreasing positive" (r > 0.0 && r <= !prev);
    prev := r
  done

let test_mg_simulated_moments () =
  let p = Traffic.Mg_infinity.process mg in
  let x = Traffic.Process.generate p (rng ~seed:125 ()) 60_000 in
  let s = Stats.Descriptive.summarize x in
  check_close_rel ~tol:0.1 "mean active sessions"
    (Traffic.Mg_infinity.frame_mean mg)
    s.Stats.Descriptive.mean;
  check_close_rel ~tol:0.25 "variance"
    (Traffic.Mg_infinity.frame_variance mg)
    s.Stats.Descriptive.variance

let test_mg_simulated_acf () =
  let p = Traffic.Mg_infinity.process mg in
  let x = Traffic.Process.generate p (rng ~seed:127 ()) 120_000 in
  let sample = Stats.Acf.autocorrelation_fft x ~max_lag:2 in
  for k = 1 to 2 do
    check_close ~tol:0.05
      (Printf.sprintf "mg acf lag %d" k)
      (Traffic.Mg_infinity.acf mg k)
      sample.(k)
  done

let suite =
  [
    case "farima acf lag 1" test_farima_acf_lag1;
    case "farima acf ratio recurrence" test_farima_acf_ratio;
    case "farima MA coefficients" test_farima_ma_coefficients;
    slow_case "farima process moments" test_farima_process_moments;
    slow_case "farima process acf" test_farima_process_acf;
    case "mg mean holding = zeta(beta)" test_mg_mean_holding;
    case "mg acf vs brute-force zeta" test_mg_zeta_tail_vs_brute;
    case "mg hurst" test_mg_hurst;
    case "mg acf shape" test_mg_acf_shape;
    slow_case "mg simulated moments" test_mg_simulated_moments;
    slow_case "mg simulated acf" test_mg_simulated_acf;
  ]
