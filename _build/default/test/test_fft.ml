open Helpers

let random_signal n seed =
  let a = rng ~seed () in
  Array.init n (fun _ -> Numerics.Dist.standard_gaussian a)

let naive_dft re im =
  let n = Array.length re in
  let out_re = Array.make n 0.0 and out_im = Array.make n 0.0 in
  let pi = 4.0 *. atan 1.0 in
  for k = 0 to n - 1 do
    for t = 0 to n - 1 do
      let angle = -2.0 *. pi *. float_of_int (k * t) /. float_of_int n in
      out_re.(k) <- out_re.(k) +. (re.(t) *. cos angle) -. (im.(t) *. sin angle);
      out_im.(k) <- out_im.(k) +. (re.(t) *. sin angle) +. (im.(t) *. cos angle)
    done
  done;
  (out_re, out_im)

let test_next_pow2 () =
  check_int "next_pow2 0" 1 (Numerics.Fft.next_pow2 0);
  check_int "next_pow2 1" 1 (Numerics.Fft.next_pow2 1);
  check_int "next_pow2 5" 8 (Numerics.Fft.next_pow2 5);
  check_int "next_pow2 64" 64 (Numerics.Fft.next_pow2 64);
  check_int "next_pow2 65" 128 (Numerics.Fft.next_pow2 65)

let test_vs_naive () =
  let n = 32 in
  let re = random_signal n 3 and im = random_signal n 4 in
  let expect_re, expect_im = naive_dft re im in
  let got_re = Array.copy re and got_im = Array.copy im in
  Numerics.Fft.forward ~re:got_re ~im:got_im;
  for k = 0 to n - 1 do
    check_close ~tol:1e-9 (Printf.sprintf "re %d" k) expect_re.(k) got_re.(k);
    check_close ~tol:1e-9 (Printf.sprintf "im %d" k) expect_im.(k) got_im.(k)
  done

let test_roundtrip () =
  let n = 256 in
  let re = random_signal n 5 and im = random_signal n 6 in
  let work_re = Array.copy re and work_im = Array.copy im in
  Numerics.Fft.forward ~re:work_re ~im:work_im;
  Numerics.Fft.inverse ~re:work_re ~im:work_im;
  for k = 0 to n - 1 do
    check_close ~tol:1e-10 "roundtrip re" re.(k) work_re.(k);
    check_close ~tol:1e-10 "roundtrip im" im.(k) work_im.(k)
  done

let test_parseval () =
  let n = 128 in
  let re = random_signal n 7 in
  let im = Array.make n 0.0 in
  let time_energy = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 re in
  let work_re = Array.copy re and work_im = Array.copy im in
  Numerics.Fft.forward ~re:work_re ~im:work_im;
  let freq_energy = ref 0.0 in
  for k = 0 to n - 1 do
    freq_energy :=
      !freq_energy +. (work_re.(k) *. work_re.(k)) +. (work_im.(k) *. work_im.(k))
  done;
  check_close_rel ~tol:1e-10 "Parseval" time_energy
    (!freq_energy /. float_of_int n)

let test_delta_spectrum () =
  let n = 64 in
  let re = Array.make n 0.0 and im = Array.make n 0.0 in
  re.(0) <- 1.0;
  Numerics.Fft.forward ~re ~im;
  for k = 0 to n - 1 do
    check_close ~tol:1e-12 "delta has flat spectrum" 1.0 re.(k);
    check_close ~tol:1e-12 "delta has zero phase" 0.0 im.(k)
  done

let naive_convolve a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make (la + lb - 1) 0.0 in
  for i = 0 to la - 1 do
    for j = 0 to lb - 1 do
      out.(i + j) <- out.(i + j) +. (a.(i) *. b.(j))
    done
  done;
  out

let test_convolution () =
  let a = [| 1.0; 2.0; 3.0 |] and b = [| 4.0; 5.0 |] in
  let expect = naive_convolve a b in
  let got = Numerics.Fft.convolve a b in
  check_int "conv length" (Array.length expect) (Array.length got);
  Array.iteri
    (fun i e -> check_close ~tol:1e-10 (Printf.sprintf "conv[%d]" i) e got.(i))
    expect

let test_periodogram_sinusoid () =
  let n = 1024 in
  let pi = 4.0 *. atan 1.0 in
  let freq_index = 64 in
  let x =
    Array.init n (fun t ->
        sin (2.0 *. pi *. float_of_int (freq_index * t) /. float_of_int n))
  in
  let spectrum = Numerics.Fft.periodogram x in
  (* The peak must be at w = 2 pi 64 / 1024. *)
  let peak = ref 0 in
  Array.iteri
    (fun i (_, p) -> if p > snd spectrum.(!peak) then peak := i)
    spectrum;
  let w_peak, _ = spectrum.(!peak) in
  check_close ~tol:1e-9 "periodogram peak frequency"
    (2.0 *. pi *. float_of_int freq_index /. float_of_int n)
    w_peak

let suite =
  [
    case "next_pow2" test_next_pow2;
    case "matches naive DFT" test_vs_naive;
    case "forward/inverse roundtrip" test_roundtrip;
    case "Parseval identity" test_parseval;
    case "delta spectrum" test_delta_spectrum;
    case "convolution vs naive" test_convolution;
    case "periodogram locates a sinusoid" test_periodogram_sinusoid;
    qcheck "convolution matches naive on random input"
      QCheck2.Gen.(pair (int_range 1 40) (int_range 1 40))
      (fun (la, lb) ->
        let a = random_signal la (la + 100) in
        let b = random_signal lb (lb + 200) in
        let expect = naive_convolve a b in
        let got = Numerics.Fft.convolve a b in
        Array.for_all2 (fun e g -> Float.abs (e -. g) < 1e-8) expect got);
    qcheck "roundtrip on random power-of-two sizes" QCheck2.Gen.(int_range 0 8)
      (fun log_n ->
        let n = 1 lsl log_n in
        let re = random_signal n 17 and im = random_signal n 19 in
        let wr = Array.copy re and wi = Array.copy im in
        Numerics.Fft.forward ~re:wr ~im:wi;
        Numerics.Fft.inverse ~re:wr ~im:wi;
        Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-9) re wr
        && Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-9) im wi);
  ]
