open Helpers

let test_determinism () =
  let a = Numerics.Rng.create ~seed:42 in
  let b = Numerics.Rng.create ~seed:42 in
  for i = 1 to 100 do
    check_true
      (Printf.sprintf "same seed, same stream (draw %d)" i)
      (Numerics.Rng.uint64 a = Numerics.Rng.uint64 b)
  done

let test_seed_sensitivity () =
  let a = Numerics.Rng.create ~seed:1 in
  let b = Numerics.Rng.create ~seed:2 in
  let equal = ref 0 in
  for _ = 1 to 64 do
    if Numerics.Rng.uint64 a = Numerics.Rng.uint64 b then incr equal
  done;
  check_true "adjacent seeds give different streams" (!equal = 0)

let test_copy () =
  let a = rng () in
  ignore (Numerics.Rng.uint64 a);
  let b = Numerics.Rng.copy a in
  for _ = 1 to 50 do
    check_true "copy replays the future" (Numerics.Rng.uint64 a = Numerics.Rng.uint64 b)
  done

let test_split_independence () =
  let a = rng () in
  let b = Numerics.Rng.split a in
  let matches = ref 0 in
  for _ = 1 to 64 do
    if Numerics.Rng.uint64 a = Numerics.Rng.uint64 b then incr matches
  done;
  check_true "split streams do not collide" (!matches = 0)

let test_substream_reproducible () =
  let a = Numerics.Rng.create ~seed:5 in
  let s1 = Numerics.Rng.jump_to_substream a 3 in
  let s2 = Numerics.Rng.jump_to_substream a 3 in
  check_true "jump_to_substream does not advance parent"
    (Numerics.Rng.uint64 s1 = Numerics.Rng.uint64 s2);
  let s3 = Numerics.Rng.jump_to_substream a 4 in
  let s1' = Numerics.Rng.jump_to_substream a 3 in
  ignore (Numerics.Rng.uint64 s1');
  check_true "distinct substreams differ"
    (Numerics.Rng.uint64 s3 <> Numerics.Rng.uint64 s1')

let test_float_range_unit () =
  let a = rng () in
  for _ = 1 to 10_000 do
    let u = Numerics.Rng.float a in
    check_true "float in (0,1)" (u > 0.0 && u < 1.0)
  done

let test_float_moments () =
  let a = rng () in
  let n = 100_000 in
  let acc = ref 0.0 and acc2 = ref 0.0 in
  for _ = 1 to n do
    let u = Numerics.Rng.float a in
    acc := !acc +. u;
    acc2 := !acc2 +. (u *. u)
  done;
  let mean = !acc /. float_of_int n in
  let second = !acc2 /. float_of_int n in
  check_close ~tol:0.005 "uniform mean 1/2" 0.5 mean;
  check_close ~tol:0.005 "uniform second moment 1/3" (1.0 /. 3.0) second

let test_int_bounds () =
  let a = rng () in
  let counts = Array.make 7 0 in
  for _ = 1 to 70_000 do
    let v = Numerics.Rng.int a ~bound:7 in
    check_true "int within bound" (v >= 0 && v < 7);
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      check_true
        (Printf.sprintf "bucket %d roughly uniform (%d)" i c)
        (c > 9_000 && c < 11_000))
    counts

let test_bool_balance () =
  let a = rng () in
  let trues = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Numerics.Rng.bool a then incr trues
  done;
  let frac = float_of_int !trues /. float_of_int n in
  check_close ~tol:0.01 "bool is fair" 0.5 frac

let suite =
  [
    case "determinism" test_determinism;
    case "seed sensitivity" test_seed_sensitivity;
    case "copy" test_copy;
    case "split independence" test_split_independence;
    case "substream reproducible" test_substream_reproducible;
    case "float in (0,1)" test_float_range_unit;
    case "float moments" test_float_moments;
    case "int bounds and uniformity" test_int_bounds;
    case "bool balance" test_bool_balance;
    qcheck "float_range stays in range"
      QCheck2.Gen.(pair (float_range (-100.) 100.) (float_range 0.001 50.))
      (fun (lo, width) ->
        let a = rng ~seed:11 () in
        let hi = lo +. width in
        let v = Numerics.Rng.float_range a ~lo ~hi in
        v > lo && v < hi);
    qcheck "int bound respected" QCheck2.Gen.(int_range 1 1_000_000)
      (fun bound ->
        let a = rng ~seed:13 () in
        let v = Numerics.Rng.int a ~bound in
        v >= 0 && v < bound);
  ]
