open Helpers
module Fa = Numerics.Float_array

let test_sum_kahan () =
  (* Many tiny terms plus a huge one: naive summation loses them. *)
  let n = 1_000_000 in
  let x = Array.make (n + 1) 1e-10 in
  x.(0) <- 1.0;
  check_close ~tol:1e-12 "compensated sum" (1.0 +. (1e-10 *. float_of_int n))
    (Fa.sum x)

let test_mean_var () =
  let x = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  check_close "mean" 5.0 (Fa.mean x);
  check_close "population variance" 4.0 (Fa.variance_population x);
  check_close_rel ~tol:1e-12 "sample variance" (32.0 /. 7.0) (Fa.variance x)

let test_min_max_dot () =
  let x = [| 3.0; -1.0; 4.0 |] in
  check_close "min" (-1.0) (Fa.min x);
  check_close "max" 4.0 (Fa.max x);
  check_close "dot" (9.0 +. 1.0 +. 16.0) (Fa.dot x x)

let test_prefix_sums () =
  let p = Fa.prefix_sums [| 1.0; 2.0; 3.0 |] in
  check_int "length" 4 (Array.length p);
  check_close "p0" 0.0 p.(0);
  check_close "p1" 1.0 p.(1);
  check_close "p2" 3.0 p.(2);
  check_close "p3" 6.0 p.(3)

let test_linspace () =
  let x = Fa.linspace ~lo:0.0 ~hi:1.0 ~n:5 in
  check_int "count" 5 (Array.length x);
  check_close "first" 0.0 x.(0);
  check_close "middle" 0.5 x.(2);
  check_close "last" 1.0 x.(4)

let test_logspace () =
  let x = Fa.logspace ~lo:1.0 ~hi:1000.0 ~n:4 in
  check_close ~tol:1e-9 "first" 1.0 x.(0);
  check_close ~tol:1e-9 "second" 10.0 x.(1);
  check_close ~tol:1e-9 "third" 100.0 x.(2);
  check_close ~tol:1e-9 "last" 1000.0 x.(3)

let test_quantile () =
  let x = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  check_close "median" 3.0 (Fa.quantile x 0.5);
  check_close "min quantile" 1.0 (Fa.quantile x 0.0);
  check_close "max quantile" 5.0 (Fa.quantile x 1.0);
  check_close "interpolated" 1.5 (Fa.quantile x 0.125)

let test_aggregate () =
  let x = [| 1.0; 3.0; 2.0; 4.0; 100.0 |] in
  let a = Fa.aggregate x ~block:2 in
  check_int "tail dropped" 2 (Array.length a);
  check_close "block 0" 2.0 a.(0);
  check_close "block 1" 3.0 a.(1)

let test_normalize () =
  let x = [| 2.0; 6.0; 2.0 |] in
  Fa.normalize_in_place x;
  check_close "sums to one" 1.0 (Fa.sum x);
  check_close "proportions kept" 0.6 x.(1)

let suite =
  [
    case "kahan sum" test_sum_kahan;
    case "mean and variance" test_mean_var;
    case "min max dot" test_min_max_dot;
    case "prefix sums" test_prefix_sums;
    case "linspace" test_linspace;
    case "logspace" test_logspace;
    case "quantile" test_quantile;
    case "aggregate" test_aggregate;
    case "normalize" test_normalize;
    qcheck "aggregate preserves overall mean on exact blocks"
      QCheck2.Gen.(pair (int_range 1 20) (int_range 1 20))
      (fun (blocks, block) ->
        let a = rng ~seed:(blocks + (7 * block)) () in
        let x =
          Array.init (blocks * block) (fun _ -> Numerics.Rng.float a)
        in
        let agg = Fa.aggregate x ~block in
        Float.abs (Fa.mean agg -. Fa.mean x) < 1e-10);
    qcheck "quantile is monotone" QCheck2.Gen.(pair (float_range 0. 1.) (float_range 0. 1.))
      (fun (p1, p2) ->
        let lo = Stdlib.min p1 p2 and hi = Stdlib.max p1 p2 in
        let a = rng ~seed:23 () in
        let x = Array.init 50 (fun _ -> Numerics.Rng.float a) in
        Fa.quantile x lo <= Fa.quantile x hi +. 1e-12);
  ]
