(* Model fitting workflow: what a traffic engineer does with a measured
   VBR trace.

   The paper uses Z^a as a stand-in for a real LRD videoconference
   trace.  We do the same end-to-end: generate a "measured" trace from
   Z^0.975, estimate its marginal and autocorrelations, fit DAR(p)
   models to the estimates (not to the analytic truth), and compare the
   simulated loss of trace-driven and model-driven multiplexers.

   Run with: dune exec examples/model_fitting.exe *)

let frames = 120_000
let n_sources = 30

(* The link is provisioned at 95% utilisation *of the measured trace*:
   an LRD trace's sample mean wanders (that is the point of LRD), so
   dimensioning against the nominal mean would leave the comparison at
   an uncontrolled operating point. *)
let service_for ~measured_mean = float_of_int n_sources *. measured_mean /. 0.95

let simulate_clr ~service ~next_frame ~buffer_msec =
  let buffer =
    Queueing.Units.buffer_cells_of_msec ~msec:buffer_msec
      ~service_cells_per_frame:service ~ts:Traffic.Models.ts
  in
  (Queueing.Fluid_mux.clr ~next_frame ~service ~buffer ~frames ())
    .Queueing.Fluid_mux.clr

let () =
  let rng = Numerics.Rng.create ~seed:515 in
  (* 1. "Measure" a trace (one source's frame sizes). *)
  let truth = (Traffic.Models.z ~a:0.975).Traffic.Models.process in
  let trace =
    Traffic.Trace.of_process truth ~ts:Traffic.Models.ts
      (Numerics.Rng.split rng) ~n:frames
  in
  let mean = Traffic.Trace.mean trace in
  let variance = Traffic.Trace.variance trace in
  let service = service_for ~measured_mean:mean in
  Printf.printf "Measured trace: %d frames, mean %.1f, variance %.0f\n" frames
    mean variance;

  (* 2. Estimate the ACF and fit DAR(p) to the estimates. *)
  let sample_acf = Traffic.Trace.acf trace ~max_lag:16 in
  Printf.printf "Sample ACF (lags 1-5): %s\n\n"
    (String.concat ", "
       (List.map
          (fun k -> Printf.sprintf "%.3f" sample_acf.(k))
          [ 1; 2; 3; 4; 5 ]));
  let marginal = Traffic.Dar.gaussian_marginal ~mean ~variance in
  let fitted p =
    Traffic.Dar.fit_process marginal
      ~target_acf:(fun k -> sample_acf.(k))
      ~p
  in

  (* 3. Compare multiplexer loss: trace replayed vs fitted models.
     The trace-driven mux replays shifted copies of the measured trace,
     a standard trace-driven-simulation device. *)
  let trace_driven () =
    let offsets =
      Array.init n_sources (fun i -> i * (frames / n_sources))
    in
    let t = ref 0 in
    fun () ->
      let total = ref 0.0 in
      Array.iter
        (fun off ->
          total :=
            !total +. trace.Traffic.Trace.frames.((off + !t) mod frames))
        offsets;
      incr t;
      !total
  in
  let model_driven process =
    (Traffic.Process.replicate process n_sources).Traffic.Process.spawn
      (Numerics.Rng.split rng)
  in
  Printf.printf "%-14s" "buffer (msec)";
  List.iter (fun b -> Printf.printf " %10g" b) [ 2.0; 5.0; 10.0 ];
  print_newline ();
  let row name next_frame =
    Printf.printf "%-14s" name;
    List.iter
      (fun buffer_msec ->
        Printf.printf " %10.2e" (simulate_clr ~service ~next_frame ~buffer_msec))
      [ 2.0; 5.0; 10.0 ];
    print_newline ()
  in
  row "trace replay" (trace_driven ());
  List.iter
    (fun p -> row (Printf.sprintf "DAR(%d) fit" p) (model_driven (fitted p)))
    [ 1; 2; 3 ];
  Printf.printf
    "\nThe DAR fits - estimated purely from the measured trace - reproduce\n\
     the loss scale of the trace-driven multiplexer over practical buffers.\n\
     (Replaying shifted copies of one realisation understates the\n\
     variability of truly independent sources, so the replay row sits a\n\
     little low; the fits bracket it from above, the safe side for CAC.)\n"
