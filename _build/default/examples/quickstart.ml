(* Quickstart: build an LRD video source, ask the two questions the
   library answers — "how many frame correlations matter?" (CTS) and
   "what loss rate does the multiplexer see?" (Bahadur-Rao + simulation).

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. A VBR video source: the paper's Z^0.9 model - Gaussian frames
     (mean 500 cells, variance 5000, 25 frames/s), geometric
     short-term correlations, Hurst parameter 0.9. *)
  let source = (Traffic.Models.z ~a:0.9).Traffic.Models.process in
  Printf.printf "Source: %s\n" source.Traffic.Process.name;
  Printf.printf "  mean %.0f cells/frame, variance %.0f, H = %.2f\n\n"
    source.Traffic.Process.mean source.Traffic.Process.variance
    (Option.value ~default:0.5 source.Traffic.Process.hurst);

  (* 2. Multiplexer: 30 sources, 538 cells/frame each (93% load). *)
  let n = 30 and c = 538.0 in
  let ts = Traffic.Models.ts in
  let vg =
    Core.Variance_growth.create ~acf:source.Traffic.Process.acf
      ~variance:source.Traffic.Process.variance
  in

  (* 3. Critical Time Scale: how many lags of the ACF actually matter? *)
  Printf.printf "%-14s %-8s %-14s\n" "buffer (msec)" "m*_b" "log10 BOP (B-R)";
  List.iter
    (fun msec ->
      let total_service = float_of_int n *. c in
      let b =
        Queueing.Units.buffer_cells_of_msec ~msec
          ~service_cells_per_frame:total_service ~ts
        /. float_of_int n
      in
      let result =
        Core.Bahadur_rao.evaluate vg ~mu:source.Traffic.Process.mean ~c ~b ~n
      in
      Printf.printf "%-14g %-8d %-14.2f\n" msec
        result.Core.Bahadur_rao.cts.Core.Cts.m_star
        result.Core.Bahadur_rao.log10_bop)
    [ 0.0; 5.0; 10.0; 20.0; 30.0 ];
  Printf.printf
    "\nEven with H = 0.9, a 30 msec buffer is influenced by only the first\n\
     few dozen frame correlations - the LRD tail beyond that is invisible\n\
     to the loss rate.  That is the paper's Critical Time Scale result.\n\n";

  (* 4. Simulate the finite-buffer multiplexer to check the analytics. *)
  let scenario = Queueing.Scenario.make ~model:source ~n ~c ~ts in
  let buffers_msec = [| 0.0; 5.0; 10.0 |] in
  let intervals =
    Queueing.Scenario.clr_curve scenario ~buffers_msec ~frames:20_000 ~reps:3
      ~seed:7
  in
  Printf.printf "Simulated CLR (3 x 20k frames):\n";
  Array.iteri
    (fun i ci ->
      Printf.printf "  %5.1f msec: %.2e (+/- %.1e)\n" buffers_msec.(i)
        ci.Stats.Ci.point ci.Stats.Ci.half_width)
    intervals
