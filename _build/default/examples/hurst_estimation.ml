(* Hurst-parameter estimation: reproduce the kind of measurement-study
   evidence (Beran et al.) that started the LRD debate.

   We generate frame traces from four generators with known Hurst
   parameters - white noise, the paper's Z^0.7 model, pure fractional
   Gaussian noise, and an M/G/infinity session process - and run the
   three classical estimators on each.

   Run with: dune exec examples/hurst_estimation.exe *)

let n = 65536

let traces () =
  let rng = Numerics.Rng.create ~seed:2024 in
  let spawn process =
    Traffic.Process.generate process (Numerics.Rng.split rng) n
  in
  [
    ("DAR(1)", 0.5, spawn (Traffic.Models.s ~a:0.7 ~p:1), "(SRD Markov: H = 1/2)");
    ( "Z^0.7",
      0.9,
      spawn (Traffic.Models.z ~a:0.7).Traffic.Models.process,
      "(paper's LRD video model)" );
    ( "fGn(0.8)",
      0.8,
      spawn (Traffic.Fgn.process ~h:0.8 ~mean:500.0 ~variance:5000.0 ()),
      "(exact self-similar reference)" );
    ( "M/G/inf",
      0.75,
      spawn
        (Traffic.Mg_infinity.process
           (Traffic.Mg_infinity.create ~beta:1.5 ~session_rate:5.0
              ~cells_per_session:25.0 ())),
      "(heavy-tailed sessions, H = (3-beta)/2)" );
  ]

let () =
  Printf.printf "%-12s %-7s %-11s %-11s %-13s %s\n" "trace" "true H" "R/S"
    "agg.var" "periodogram" "";
  List.iter
    (fun (name, true_h, x, note) ->
      let rs = Stats.Hurst.rescaled_range x in
      let av = Stats.Hurst.aggregated_variance x in
      let pg = Stats.Hurst.periodogram x in
      Printf.printf "%-12s %-7.2f %-11.3f %-11.3f %-13.3f %s\n" name true_h
        rs.Stats.Hurst.h av.Stats.Hurst.h pg.Stats.Hurst.h note)
    (traces ());
  Printf.printf
    "\nNote the estimators' well-known biases (R/S upward on SRD data,\n\
     aggregated variance downward at high H).  The library exposes the\n\
     regression diagnostics (points, r^2) behind each estimate for\n\
     plotting.\n"
