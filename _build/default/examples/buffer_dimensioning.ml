(* Buffer dimensioning: the delay/bandwidth trade-off behind the
   paper's "realistic scenarios".

   Real-time video allows ~200 msec end to end, so each hop gets
   20-30 msec.  For a range of per-hop delay budgets this example
   computes, per model, the link bandwidth needed to carry 30 calls at
   a 1e-6 cell loss rate, and the implied utilisation.  It shows (i)
   why small buffers are the operating regime that matters, and (ii)
   that the required bandwidth computed from the Markov fit matches the
   LRD model's.

   Run with: dune exec examples/buffer_dimensioning.exe *)

let n = 30
let target_clr = 1e-6
let mu = Traffic.Models.frame_mean

let required_bandwidth process ~delay_msec =
  let vg =
    Core.Variance_growth.create ~acf:process.Traffic.Process.acf
      ~variance:process.Traffic.Process.variance
  in
  (* The buffer in cells depends on the capacity we are solving for, so
     iterate the fixed point: B = capacity * delay; capacity =
     required(B).  A handful of rounds converges far below a cell. *)
  let rec fixed_point capacity iter =
    let total_buffer =
      capacity *. (delay_msec /. 1000.0) /. Traffic.Models.ts
    in
    let next =
      Core.Admission.required_capacity vg ~mu ~n ~total_buffer ~target_clr
    in
    if iter > 20 || Float.abs (next -. capacity) < 0.01 then next
    else fixed_point next (iter + 1)
  in
  fixed_point (float_of_int n *. mu *. 1.2) 0

let () =
  let models =
    [
      ("Z^0.975 (LRD)", (Traffic.Models.z ~a:0.975).Traffic.Models.process);
      ("DAR(3) fit", Traffic.Models.s ~a:0.975 ~p:3);
      ("L (exact LRD)", Traffic.Models.l ());
    ]
  in
  Printf.printf
    "Bandwidth to carry %d calls at CLR <= %.0e (mean load %.0f cells/frame)\n\n"
    n target_clr
    (float_of_int n *. mu);
  Printf.printf "%-16s" "delay budget:";
  List.iter (fun d -> Printf.printf " %11g ms" d) [ 1.0; 5.0; 10.0; 20.0; 30.0 ];
  print_newline ();
  List.iter
    (fun (name, process) ->
      Printf.printf "%-16s" name;
      List.iter
        (fun delay_msec ->
          let capacity = required_bandwidth process ~delay_msec in
          let util = float_of_int n *. mu /. capacity in
          Printf.printf " %7.0f (%2.0f%%)" capacity (100.0 *. util))
        [ 1.0; 5.0; 10.0; 20.0; 30.0 ];
      print_newline ())
    models;
  Printf.printf
    "\nEach cell shows required capacity in cells/frame (and utilisation).\n\
     Tight delay budgets waste bandwidth on every model; the Markov fit\n\
     prices the LRD source correctly throughout the practical range.\n"
