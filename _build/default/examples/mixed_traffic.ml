(* Heterogeneous multiplexing: a link carrying a mix of source types.

   The paper studies homogeneous multiplexers (N identical sources),
   but the machinery extends: the aggregate of independent Gaussian
   sources is Gaussian with summed means/variances and a
   variance-weighted ACF (Process.superpose), so the rate function of
   the aggregate (evaluated with N = 1 on link totals) gives the
   Large-N-style overflow estimate for any mix.

   Here: 20 videoconference-like LRD sources (Z^0.9) share a link with
   10 MPEG GOP sources.  We compare the analytic estimate with
   simulation, and show the CTS of the mix.

   Run with: dune exec examples/mixed_traffic.exe *)

let () =
  let z = (Traffic.Models.z ~a:0.9).Traffic.Models.process in
  let mpeg = Traffic.Mpeg.process (Traffic.Mpeg.create ~mean:500.0 ()) in
  let mix =
    Traffic.Process.superpose ~name:"20xZ^0.9 + 10xMPEG"
      [ Traffic.Process.replicate z 20; Traffic.Process.replicate mpeg 10 ]
  in
  Printf.printf "Aggregate: %s\n" mix.Traffic.Process.name;
  Printf.printf "  mean %.0f cells/frame, std %.0f, H = %s\n\n"
    mix.Traffic.Process.mean
    (sqrt mix.Traffic.Process.variance)
    (match mix.Traffic.Process.hurst with
    | Some h -> Printf.sprintf "%.2f" h
    | None -> "1/2");

  (* Link at ~93% utilisation, like the paper's scenarios. *)
  let capacity = mix.Traffic.Process.mean /. 0.93 in
  let vg =
    Core.Variance_growth.create ~acf:mix.Traffic.Process.acf
      ~variance:mix.Traffic.Process.variance
  in
  Printf.printf "Link capacity %.0f cells/frame (93%% load)\n\n" capacity;
  Printf.printf "%-14s %-8s %-18s %-14s\n" "buffer (msec)" "m*_b"
    "log10 P(W>B) est." "simulated";
  List.iter
    (fun msec ->
      let buffer_cells =
        Queueing.Units.buffer_cells_of_msec ~msec
          ~service_cells_per_frame:capacity ~ts:Traffic.Models.ts
      in
      let analysis =
        Core.Large_n.evaluate vg ~mu:mix.Traffic.Process.mean ~c:capacity
          ~b:buffer_cells ~n:1
      in
      (* Simulate the same finite-buffer multiplexer. *)
      let rng = Numerics.Rng.create ~seed:77 in
      let next_frame = mix.Traffic.Process.spawn rng in
      let r =
        Queueing.Fluid_mux.clr ~next_frame ~service:capacity
          ~buffer:buffer_cells ~frames:30_000 ()
      in
      Printf.printf "%-14g %-8d %-18.2f %-14s\n" msec
        analysis.Core.Large_n.cts.Core.Cts.m_star
        analysis.Core.Large_n.log10_bop
        (if r.Queueing.Fluid_mux.clr > 0.0 then
           Printf.sprintf "%.2f" (log10 r.Queueing.Fluid_mux.clr)
         else "< resolution"))
    [ 0.0; 2.0; 5.0; 10.0; 20.0 ];
  Printf.printf
    "\nThe mixed aggregate is handled by exactly the same CTS machinery:\n\
     superposition closes the model family (means and variances add, the\n\
     ACF mixes by variance weight), so engineering rules derived for the\n\
     homogeneous case carry over to real traffic mixes.\n"
