(* Connection admission control: the paper's motivating application.

   A 155 Mbit/s-class ATM link must decide how many VBR video calls to
   accept while holding the cell loss rate under a target.  We compare
   the admissible-call count computed from the full LRD model Z^a with
   the count computed from its cheap DAR(p) Markov fits - the paper's
   point being that the two agree over practical buffer sizes, so the
   LRD tail can be ignored by the CAC algorithm.

   Run with: dune exec examples/admission_control.exe *)

let link_capacity_cells_per_frame = 16140.0 (* 30 x 538, ~171 Mbit/s *)

let admissible process ~buffer_msec ~target_clr =
  let vg =
    Core.Variance_growth.create ~acf:process.Traffic.Process.acf
      ~variance:process.Traffic.Process.variance
  in
  let total_buffer =
    Queueing.Units.buffer_cells_of_msec ~msec:buffer_msec
      ~service_cells_per_frame:link_capacity_cells_per_frame
      ~ts:Traffic.Models.ts
  in
  Core.Admission.max_admissible vg ~mu:process.Traffic.Process.mean
    ~total_capacity:link_capacity_cells_per_frame ~total_buffer ~target_clr

let () =
  let a = 0.975 in
  let z = (Traffic.Models.z ~a).Traffic.Models.process in
  let models =
    ("Z^0.975 (LRD)", z)
    :: List.map
         (fun p ->
           (Printf.sprintf "DAR(%d) fit" p, Traffic.Models.s ~a ~p))
         [ 1; 2; 3 ]
  in
  Printf.printf
    "Admissible VBR video calls on a %.0f cells/frame link (utilisation \
     ceiling %.0f calls)\n\n"
    link_capacity_cells_per_frame
    (link_capacity_cells_per_frame /. 500.0);
  List.iter
    (fun target_clr ->
      Printf.printf "Target CLR = %.0e\n" target_clr;
      Printf.printf "  %-16s" "buffer (msec):";
      List.iter (fun b -> Printf.printf " %6g" b) [ 5.0; 10.0; 20.0; 30.0 ];
      print_newline ();
      List.iter
        (fun (name, model) ->
          Printf.printf "  %-16s" name;
          List.iter
            (fun buffer_msec ->
              Printf.printf " %6d" (admissible model ~buffer_msec ~target_clr))
            [ 5.0; 10.0; 20.0; 30.0 ];
          print_newline ())
        models;
      print_newline ())
    [ 1e-6; 1e-9 ];
  Printf.printf
    "The Markov fits admit call counts within a call or two of the full\n\
     LRD model across the practical buffer range - the paper's argument\n\
     for Markovian effective-bandwidth CAC, quantified.\n"
