examples/quickstart.ml: Array Core List Option Printf Queueing Stats Traffic
