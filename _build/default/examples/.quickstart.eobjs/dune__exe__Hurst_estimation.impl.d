examples/hurst_estimation.ml: List Numerics Printf Stats Traffic
