examples/mixed_traffic.ml: Core List Numerics Printf Queueing Traffic
