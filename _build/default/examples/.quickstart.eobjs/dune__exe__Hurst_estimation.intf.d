examples/hurst_estimation.mli:
