examples/model_fitting.mli:
