examples/buffer_dimensioning.ml: Core Float List Printf Traffic
