examples/admission_control.ml: Core List Printf Queueing Traffic
