examples/quickstart.mli:
