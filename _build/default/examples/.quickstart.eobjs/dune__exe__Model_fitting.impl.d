examples/model_fitting.ml: Array List Numerics Printf Queueing String Traffic
