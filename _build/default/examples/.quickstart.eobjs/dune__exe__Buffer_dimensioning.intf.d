examples/buffer_dimensioning.mli:
