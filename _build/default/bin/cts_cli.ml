(* Command-line driver for the paper-reproduction experiments. *)

let set_env name = function
  | None -> ()
  | Some v -> Unix.putenv name (string_of_int v)

let apply_scale ~frames ~reps ~seed ~results_dir =
  set_env "CTS_FRAMES" frames;
  set_env "CTS_REPS" reps;
  set_env "CTS_SEED" seed;
  match results_dir with
  | None -> ()
  | Some d -> Unix.putenv "CTS_RESULTS_DIR" d

open Cmdliner

let frames_arg =
  let doc = "Frames per simulation replication (default 20000)." in
  Arg.(value & opt (some int) None & info [ "frames" ] ~docv:"N" ~doc)

let reps_arg =
  let doc = "Simulation replications (default 3)." in
  Arg.(value & opt (some int) None & info [ "reps" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Master random seed (default 1996)." in
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED" ~doc)

let results_dir_arg =
  let doc = "Directory for CSV outputs (default ./results)." in
  Arg.(value & opt (some string) None & info [ "results-dir" ] ~docv:"DIR" ~doc)

let list_cmd =
  let run () =
    Printf.printf "%-12s %-5s %s\n" "id" "sim" "title";
    List.iter
      (fun e ->
        Printf.printf "%-12s %-5s %s\n" e.Experiments.Registry.id
          (if e.Experiments.Registry.simulated then "yes" else "no")
          e.Experiments.Registry.title)
      Experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List available experiments")
    Term.(const run $ const ())

let run_cmd =
  let ids_arg =
    let doc = "Experiment identifiers (see $(b,list)); 'all' runs everything." in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"ID" ~doc)
  in
  let run frames reps seed results_dir ids =
    apply_scale ~frames ~reps ~seed ~results_dir;
    let failures =
      List.filter_map
        (fun id ->
          if id = "all" then begin
            Experiments.Registry.run_all ();
            None
          end
          else begin
            match Experiments.Registry.find id with
            | Some e ->
                Printf.printf "\n######## %s: %s ########\n%!"
                  e.Experiments.Registry.id e.Experiments.Registry.title;
                e.Experiments.Registry.run ();
                None
            | None -> Some id
          end)
        ids
    in
    match failures with
    | [] -> `Ok ()
    | missing ->
        `Error
          (false, "unknown experiment(s): " ^ String.concat ", " missing)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one or more experiments")
    Term.(
      ret
        (const run $ frames_arg $ reps_arg $ seed_arg $ results_dir_arg
       $ ids_arg))

let analytic_cmd =
  let run frames reps seed results_dir =
    apply_scale ~frames ~reps ~seed ~results_dir;
    Experiments.Registry.run_all ~include_simulated:false ()
  in
  Cmd.v
    (Cmd.info "analytic"
       ~doc:"Run only the closed-form experiments (fast, deterministic)")
    Term.(const run $ frames_arg $ reps_arg $ seed_arg $ results_dir_arg)

(* Model selection shared by the engineering subcommands. *)
let model_of_name name =
  match String.lowercase_ascii name with
  | "z0.7" -> Some (Traffic.Models.z ~a:0.7).Traffic.Models.process
  | "z0.9" -> Some (Traffic.Models.z ~a:0.9).Traffic.Models.process
  | "z0.975" -> Some (Traffic.Models.z ~a:0.975).Traffic.Models.process
  | "z0.99" -> Some (Traffic.Models.z ~a:0.99).Traffic.Models.process
  | "l" -> Some (Traffic.Models.l ())
  | "dar1" -> Some (Traffic.Models.s ~a:0.975 ~p:1)
  | "dar2" -> Some (Traffic.Models.s ~a:0.975 ~p:2)
  | "dar3" -> Some (Traffic.Models.s ~a:0.975 ~p:3)
  | "mpeg" -> Some (Traffic.Mpeg.process (Traffic.Mpeg.create ~mean:500.0 ()))
  | _ -> None

let model_names = "z0.7, z0.9, z0.975, z0.99, l, dar1, dar2, dar3, mpeg"

let model_arg =
  let doc = Printf.sprintf "Source model: one of %s." model_names in
  Arg.(value & opt string "z0.975" & info [ "model" ] ~docv:"MODEL" ~doc)

let n_arg =
  let doc = "Number of multiplexed sources." in
  Arg.(value & opt int 30 & info [ "n" ] ~docv:"N" ~doc)

let c_arg =
  let doc = "Bandwidth per source, cells/frame." in
  Arg.(value & opt float 538.0 & info [ "c" ] ~docv:"CELLS" ~doc)

let buffer_arg =
  let doc = "Total buffer size as maximum drain delay, msec." in
  Arg.(value & opt float 10.0 & info [ "buffer-msec" ] ~docv:"MSEC" ~doc)

let analyze_cmd =
  let run model_name n c buffer_msec =
    match model_of_name model_name with
    | None ->
        `Error (false, Printf.sprintf "unknown model %S (try %s)" model_name model_names)
    | Some model ->
        let vg =
          Core.Variance_growth.create ~acf:model.Traffic.Process.acf
            ~variance:model.Traffic.Process.variance
        in
        let mu = model.Traffic.Process.mean in
        let b =
          Queueing.Units.buffer_cells_of_msec ~msec:buffer_msec
            ~service_cells_per_frame:(float_of_int n *. c)
            ~ts:Traffic.Models.ts
          /. float_of_int n
        in
        if c <= mu then `Error (false, "unstable: bandwidth per source <= mean")
        else begin
          let br = Core.Bahadur_rao.evaluate vg ~mu ~c ~b ~n in
          let ln = Core.Large_n.evaluate vg ~mu ~c ~b ~n in
          Printf.printf "model          %s\n" model.Traffic.Process.name;
          Printf.printf "sources        %d at c = %g cells/frame (util %.1f%%)\n"
            n c (100.0 *. mu /. c);
          Printf.printf "buffer         %g msec = %.0f cells total\n" buffer_msec
            (b *. float_of_int n);
          Printf.printf "CTS m*_b       %d frames\n"
            br.Core.Bahadur_rao.cts.Core.Cts.m_star;
          Printf.printf "rate I(c,b)    %.5f\n" br.Core.Bahadur_rao.cts.Core.Cts.rate;
          Printf.printf "log10 BOP      %.3f (Bahadur-Rao)  %.3f (Large-N)\n"
            br.Core.Bahadur_rao.log10_bop ln.Core.Large_n.log10_bop;
          Printf.printf "cutoff freq    %.4f rad/frame (pi / m*)\n"
            (Core.Spectrum.cutoff_frequency_of_cts
               ~m_star:br.Core.Bahadur_rao.cts.Core.Cts.m_star);
          `Ok ()
        end
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Critical time scale and overflow probability for one scenario")
    Term.(ret (const run $ model_arg $ n_arg $ c_arg $ buffer_arg))

let admit_cmd =
  let capacity_arg =
    let doc = "Total link capacity, cells/frame." in
    Arg.(value & opt float 16140.0 & info [ "capacity" ] ~docv:"CELLS" ~doc)
  in
  let target_arg =
    let doc = "Target cell loss rate." in
    Arg.(value & opt float 1e-6 & info [ "clr" ] ~docv:"CLR" ~doc)
  in
  let run model_name capacity buffer_msec target_clr =
    match model_of_name model_name with
    | None ->
        `Error (false, Printf.sprintf "unknown model %S (try %s)" model_name model_names)
    | Some model ->
        let vg =
          Core.Variance_growth.create ~acf:model.Traffic.Process.acf
            ~variance:model.Traffic.Process.variance
        in
        let total_buffer =
          Queueing.Units.buffer_cells_of_msec ~msec:buffer_msec
            ~service_cells_per_frame:capacity ~ts:Traffic.Models.ts
        in
        let n =
          Core.Admission.max_admissible vg ~mu:model.Traffic.Process.mean
            ~total_capacity:capacity ~total_buffer ~target_clr
        in
        Printf.printf
          "%d %s connections admissible on %g cells/frame with %g msec buffer \
           at CLR <= %g\n"
          n model.Traffic.Process.name capacity buffer_msec target_clr;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "admit"
       ~doc:"Connection admission count for a link, buffer and CLR target")
    Term.(ret (const run $ model_arg $ capacity_arg $ buffer_arg $ target_arg))

let simulate_cmd =
  let frames_sim_arg =
    let doc = "Frames to simulate." in
    Arg.(value & opt int 50_000 & info [ "frames" ] ~docv:"N" ~doc)
  in
  let reps_sim_arg =
    let doc = "Independent replications." in
    Arg.(value & opt int 3 & info [ "reps" ] ~docv:"N" ~doc)
  in
  let seed_sim_arg =
    let doc = "Random seed." in
    Arg.(value & opt int 1996 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let run model_name n c buffer_msec frames reps seed =
    match model_of_name model_name with
    | None ->
        `Error (false, Printf.sprintf "unknown model %S (try %s)" model_name model_names)
    | Some model ->
        let scenario =
          Queueing.Scenario.make ~model ~n ~c ~ts:Traffic.Models.ts
        in
        let intervals =
          Queueing.Scenario.clr_curve scenario ~buffers_msec:[| buffer_msec |]
            ~frames ~reps ~seed
        in
        let ci = intervals.(0) in
        Printf.printf
          "%s x%d at c = %g, buffer %g msec: CLR = %.3e (95%% CI +/- %.1e, %d \
           x %d frames)\n"
          model.Traffic.Process.name n c buffer_msec ci.Stats.Ci.point
          ci.Stats.Ci.half_width reps frames;
        (match
           Core.Bahadur_rao.evaluate
             (Core.Variance_growth.create ~acf:model.Traffic.Process.acf
                ~variance:model.Traffic.Process.variance)
             ~mu:model.Traffic.Process.mean ~c
             ~b:
               (Queueing.Units.buffer_cells_of_msec ~msec:buffer_msec
                  ~service_cells_per_frame:(float_of_int n *. c)
                  ~ts:Traffic.Models.ts
               /. float_of_int n)
             ~n
         with
        | r ->
            Printf.printf "Bahadur-Rao estimate: %.3e (infinite-buffer BOP)\n"
              r.Core.Bahadur_rao.bop
        | exception Invalid_argument _ -> ());
        `Ok ()
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Simulate one multiplexer scenario directly")
    Term.(
      ret
        (const run $ model_arg $ n_arg $ c_arg $ buffer_arg $ frames_sim_arg
       $ reps_sim_arg $ seed_sim_arg))

let main =
  let doc =
    "Reproduction of Ryu & Elwalid (SIGCOMM '96): LRD of VBR video in ATM \
     traffic engineering"
  in
  Cmd.group
    (Cmd.info "cts" ~version:"1.0.0" ~doc)
    [ list_cmd; run_cmd; analytic_cmd; analyze_cmd; admit_cmd; simulate_cmd ]

let () = exit (Cmd.eval main)
