package "core" (
  directory = "core"
  version = "1.0.0"
  description = ""
  requires = "cts.numerics"
  archive(byte) = "core.cma"
  archive(native) = "core.cmxa"
  plugin(byte) = "core.cma"
  plugin(native) = "core.cmxs"
)
package "experiments" (
  directory = "experiments"
  version = "1.0.0"
  description = ""
  requires = "cts.core cts.numerics cts.queueing cts.stats cts.traffic"
  archive(byte) = "experiments.cma"
  archive(native) = "experiments.cmxa"
  plugin(byte) = "experiments.cma"
  plugin(native) = "experiments.cmxs"
)
package "numerics" (
  directory = "numerics"
  version = "1.0.0"
  description = ""
  requires = ""
  archive(byte) = "numerics.cma"
  archive(native) = "numerics.cmxa"
  plugin(byte) = "numerics.cma"
  plugin(native) = "numerics.cmxs"
)
package "queueing" (
  directory = "queueing"
  version = "1.0.0"
  description = ""
  requires = "cts.numerics cts.stats cts.traffic"
  archive(byte) = "queueing.cma"
  archive(native) = "queueing.cmxa"
  plugin(byte) = "queueing.cma"
  plugin(native) = "queueing.cmxs"
)
package "stats" (
  directory = "stats"
  version = "1.0.0"
  description = ""
  requires = "cts.numerics"
  archive(byte) = "stats.cma"
  archive(native) = "stats.cmxa"
  plugin(byte) = "stats.cma"
  plugin(native) = "stats.cmxs"
)
package "traffic" (
  directory = "traffic"
  version = "1.0.0"
  description = ""
  requires = "cts.numerics cts.stats"
  archive(byte) = "traffic.cma"
  archive(native) = "traffic.cmxa"
  plugin(byte) = "traffic.cma"
  plugin(native) = "traffic.cmxs"
)