(** The variance of partial sums of a stationary source,

    [V(m) = Var(Y_1 + ... + Y_m)
          = sigma^2 (m + 2 sum_(i=1)^(m) (m - i) r(i))]

    (paper eq. 10) — the only statistic of the source that enters the
    Bahadur–Rao rate function, and hence the carrier of the Critical
    Time Scale result: the CLR depends on the first [m_star]
    autocorrelations, and on them exclusively through [V m_star].

    Evaluation is incremental: prefix sums of [r(i)] and [i * r(i)] are
    memoized, so a scan over [m = 1 .. M] costs O(M) ACF evaluations
    total. *)

type t

val create : acf:(int -> float) -> variance:float -> t
(** [acf] is the source autocorrelation ([acf 0] is ignored and taken
    as 1); [variance > 0] is the frame-size variance sigma^2. *)

val v : t -> int -> float
(** [v t m] is V(m) for [m >= 1]. *)

val variance : t -> float
(** The underlying sigma^2 (= V(1)). *)

val of_acf_array : acf:float array -> variance:float -> t
(** Same, from a tabulated ACF; lags beyond the table are treated as
    zero correlation. *)

val truncated : t -> at:int -> t
(** [truncated t ~at] is the source with correlations beyond lag [at]
    set to zero — the "keep only the first m correlations" surgery used
    to demonstrate the CTS effect directly. *)
