lib/core/large_n.ml: Array Cts
