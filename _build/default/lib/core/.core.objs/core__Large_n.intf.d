lib/core/large_n.mli: Cts Variance_growth
