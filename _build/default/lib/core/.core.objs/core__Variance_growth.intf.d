lib/core/variance_growth.mli:
