lib/core/admission.ml: Bahadur_rao
