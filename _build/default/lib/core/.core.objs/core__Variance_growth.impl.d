lib/core/variance_growth.ml: Array Numerics
