lib/core/weibull_lrd.ml:
