lib/core/spectrum.mli:
