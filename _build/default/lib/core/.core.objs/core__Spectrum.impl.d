lib/core/spectrum.ml: Array Cts Numerics Variance_growth
