lib/core/weibull_lrd.mli:
