lib/core/admission.mli: Variance_growth
