lib/core/bahadur_rao.ml: Array Cts
