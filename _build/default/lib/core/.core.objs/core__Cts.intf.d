lib/core/cts.mli: Variance_growth
