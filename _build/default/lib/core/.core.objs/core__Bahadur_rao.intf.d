lib/core/bahadur_rao.mli: Cts Variance_growth
