lib/core/cts.ml: Array Numerics Printf Variance_growth
