type result = {
  log10_bop : float;
  bop : float;
  cts : Cts.analysis;
}

let log10_e = log10 (exp 1.0)
let pi = 4.0 *. atan 1.0

let evaluate vg ~mu ~c ~b ~n =
  assert (n >= 1);
  let cts = Cts.analyze vg ~mu ~c ~b in
  let nf = float_of_int n in
  let exponent_nats =
    (-.nf *. cts.Cts.rate) -. (0.5 *. log (4.0 *. pi *. nf *. cts.Cts.rate))
  in
  let log10_bop = exponent_nats *. log10_e in
  { log10_bop; bop = exp exponent_nats; cts }

let evaluate_total vg ~mu ~total_capacity ~total_buffer ~n =
  assert (n >= 1);
  let nf = float_of_int n in
  evaluate vg ~mu ~c:(total_capacity /. nf) ~b:(total_buffer /. nf) ~n

let curve vg ~mu ~c ~n ~buffers =
  Array.map (fun b -> (b, evaluate vg ~mu ~c ~b ~n)) buffers
