type t = {
  acf : int -> float;
  variance : float;
  (* prefix.(m) = (sum_(i=1..m) r(i), sum_(i=1..m) i * r(i)); grown on
     demand. *)
  mutable p : float array;  (** p.(m) = sum of r(i) for i in 1..m *)
  mutable q : float array;  (** q.(m) = sum of i r(i) for i in 1..m *)
  mutable filled : int;  (** largest m with valid entries *)
}

let create ~acf ~variance =
  assert (variance > 0.0);
  let capacity = 256 in
  {
    acf;
    variance;
    p = Array.make (capacity + 1) 0.0;
    q = Array.make (capacity + 1) 0.0;
    filled = 0;
  }

let variance t = t.variance

let ensure t m =
  if m > t.filled then begin
    if m >= Array.length t.p then begin
      let capacity = Numerics.Fft.next_pow2 (m + 1) in
      let p = Array.make capacity 0.0 and q = Array.make capacity 0.0 in
      Array.blit t.p 0 p 0 (t.filled + 1);
      Array.blit t.q 0 q 0 (t.filled + 1);
      t.p <- p;
      t.q <- q
    end;
    for i = t.filled + 1 to m do
      let r = t.acf i in
      t.p.(i) <- t.p.(i - 1) +. r;
      t.q.(i) <- t.q.(i - 1) +. (float_of_int i *. r)
    done;
    t.filled <- m
  end

let v t m =
  assert (m >= 1);
  (* sum_(i=1..m) (m - i) r(i) = m * P(m-1) - Q(m-1); the i = m term
     vanishes. *)
  ensure t (m - 1);
  let mf = float_of_int m in
  let weighted = (mf *. t.p.(m - 1)) -. t.q.(m - 1) in
  t.variance *. (mf +. (2.0 *. weighted))

let of_acf_array ~acf ~variance =
  let n = Array.length acf in
  create ~variance ~acf:(fun k -> if k < n then acf.(k) else 0.0)

let truncated t ~at =
  assert (at >= 0);
  create ~variance:t.variance ~acf:(fun k -> if k <= at then t.acf k else 0.0)
