(** The Large-N asymptotic of Courcoubetis & Weber:
    [Psi(c, b, N) ~= exp(-N I(c, b))] — the Bahadur–Rao form without
    the logarithmic prefactor.  Kept separate because the paper's
    Fig. 10 compares the two against simulation. *)

type result = {
  log10_bop : float;
  bop : float;
  cts : Cts.analysis;
}

val evaluate :
  Variance_growth.t -> mu:float -> c:float -> b:float -> n:int -> result

val curve :
  Variance_growth.t ->
  mu:float ->
  c:float ->
  n:int ->
  buffers:float array ->
  (float * result) array
