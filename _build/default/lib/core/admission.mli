(** Connection admission control built on the Bahadur–Rao estimate —
    the paper's motivating application (real-time CAC for VBR video,
    cf. Elwalid et al.).

    All searches treat the link capacity [C] and total buffer [B] as
    fixed and exploit the monotonicity of the BOP in N (more sources
    at fixed C means less spare bandwidth per source). *)

val max_admissible :
  Variance_growth.t ->
  mu:float ->
  total_capacity:float ->
  total_buffer:float ->
  target_clr:float ->
  int
(** Largest [N] with Bahadur–Rao BOP at most [target_clr]; 0 when even
    a single source misses the target.  Binary search over
    [1 .. floor(C / mu) - 1] (the stability limit). *)

val required_capacity :
  Variance_growth.t ->
  mu:float ->
  n:int ->
  total_buffer:float ->
  target_clr:float ->
  float
(** Smallest total link capacity that carries [n] sources within
    [target_clr] — the aggregate effective bandwidth.  Bisection on
    capacity between the mean load (infinite BOP) and the peak-ish
    upper bracket obtained by doubling. *)

val effective_bandwidth_per_source :
  Variance_growth.t ->
  mu:float ->
  n:int ->
  total_buffer:float ->
  target_clr:float ->
  float
(** [required_capacity / n]: the per-source effective bandwidth, in
    cells/frame.  Between the mean and the equivalent-peak as expected
    of any sane effective bandwidth. *)
