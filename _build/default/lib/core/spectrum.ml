type t = {
  acf_table : float array;  (** r(0) .. r(max_lag) *)
  variance : float;
}

let create ~acf ~variance ?(max_lag = 8192) () =
  assert (variance > 0.0 && max_lag >= 1);
  let acf_table =
    Array.init (max_lag + 1) (fun k -> if k = 0 then 1.0 else acf k)
  in
  { acf_table; variance }

let psd t w =
  assert (w > 0.0 && w <= 4.0 *. atan 1.0 +. 1e-12);
  (* Kahan-compensated cosine sum: the terms alternate in sign and the
     LRD tail decays slowly, so naive summation loses digits. *)
  let acc = ref 0.0 and comp = ref 0.0 in
  for k = 1 to Array.length t.acf_table - 1 do
    let term = t.acf_table.(k) *. cos (float_of_int k *. w) in
    let y = term -. !comp in
    let s = !acc +. y in
    comp := s -. !acc -. y;
    acc := s
  done;
  t.variance *. (1.0 +. (2.0 *. !acc))

let total_power t = t.variance

let low_frequency_power t ~below =
  let pi = 4.0 *. atan 1.0 in
  assert (below > 0.0 && below <= pi);
  (* Spectral mass in [-below, below] relative to total:
     (1/pi) integral_0^below S(w) dw / sigma^2.  Guard the w -> 0
     endpoint (the sum converges but slowly) by starting the
     integration a hair above zero. *)
  let lo = below *. 1e-6 in
  let integral =
    Numerics.Quadrature.adaptive_simpson ~f:(fun w -> psd t w) ~lo ~hi:below
      ~tol:(1e-6 *. t.variance)
  in
  integral /. (pi *. t.variance)

let cutoff_frequency_of_cts ~m_star =
  assert (m_star >= 1);
  4.0 *. atan 1.0 /. float_of_int m_star

let cutoff_frequency t ~mu ~c ~b =
  let vg =
    Variance_growth.of_acf_array ~acf:t.acf_table ~variance:t.variance
  in
  let analysis = Cts.analyze vg ~mu ~c ~b in
  cutoff_frequency_of_cts ~m_star:analysis.Cts.m_star
