type result = {
  log10_bop : float;
  bop : float;
  cts : Cts.analysis;
}

let log10_e = log10 (exp 1.0)

let evaluate vg ~mu ~c ~b ~n =
  assert (n >= 1);
  let cts = Cts.analyze vg ~mu ~c ~b in
  let exponent_nats = -.float_of_int n *. cts.Cts.rate in
  { log10_bop = exponent_nats *. log10_e; bop = exp exponent_nats; cts }

let curve vg ~mu ~c ~n ~buffers =
  Array.map (fun b -> (b, evaluate vg ~mu ~c ~b ~n)) buffers
