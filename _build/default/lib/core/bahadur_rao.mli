(** The Bahadur–Rao asymptotic of the buffer overflow probability for a
    multiplexer of [N] homogeneous Gaussian sources (paper eq. 7,
    following Montgomery & De Veciana):

    [Psi(c, b, N) ~= exp(-N I(c,b) - (1/2) log(4 pi N I(c,b)))].

    Dropping the logarithmic refinement gives the Large-N asymptotic of
    Courcoubetis & Weber (see {!Large_n}). *)

type result = {
  log10_bop : float;  (** log10 of the overflow probability *)
  bop : float;  (** the probability itself (may underflow to 0.) *)
  cts : Cts.analysis;  (** the rate-function analysis behind it *)
}

val evaluate :
  Variance_growth.t -> mu:float -> c:float -> b:float -> n:int -> result
(** Per-source parameterisation: [b] and [c] are buffer and bandwidth
    per source. *)

val evaluate_total :
  Variance_growth.t ->
  mu:float ->
  total_capacity:float ->
  total_buffer:float ->
  n:int ->
  result
(** Link-level parameterisation: [B = N b], [C = N c]. *)

val curve :
  Variance_growth.t ->
  mu:float ->
  c:float ->
  n:int ->
  buffers:float array ->
  (float * result) array
(** BOP along a per-source buffer sweep — one paper figure series. *)
