(** The closed-form Weibull approximation of the overflow probability
    for [N] homogeneous Gaussian {e exact-LRD} sources (paper eq. 6 and
    Appendix):

    {v
      P(W > B) ~= exp(-J - (1/2) log(4 pi J)),
      J(N, b, c) = N^(2H-1) (c - mu)^(2H) / (2 g sigma^2 kappa(H)^2)
                   * B^(2 - 2H),
      kappa(H)   = H^H (1 - H)^(1-H),   B = N b.
    v}

    It is obtained by substituting the LRD variance growth
    [V(m) ~= g sigma^2 m^(2H)] into the Bahadur–Rao rate function and
    minimising in closed form — so it embodies exactly the
    "LRD changes everything" reasoning (sub-exponential Weibull tail)
    whose practical relevance the paper then refutes.  For [H = 1/2]
    (and [g = 1]) it collapses to the familiar log-linear effective
    bandwidth behaviour. *)

type source = {
  h : float;  (** Hurst parameter, in (1/2, 1) *)
  g : float;  (** the weight g(T_s) of eq. (2); 1 for pure fGn *)
  mu : float;  (** mean cells/frame *)
  variance : float;  (** sigma^2 *)
}

val j : source -> c:float -> b:float -> n:int -> float
(** The Weibull exponent [J(N, b, c)]. *)

val log10_bop : source -> c:float -> b:float -> n:int -> float

val bop : source -> c:float -> b:float -> n:int -> float

val rate : source -> c:float -> b:float -> float
(** The per-source rate [I(c,b) = J / N]:
    [(c - mu)^(2H) b^(2-2H) / (2 g sigma^2 kappa(H)^2)]. *)

val kappa : float -> float
(** [kappa h = h^h (1-h)^(1-h)]. *)
