(** The Critical Time Scale (CTS) — the paper's central concept.

    For a multiplexer with per-source buffer [b], per-source bandwidth
    [c] and source mean [mu], the Bahadur–Rao rate function is

    [I(c,b) = inf_(m >= 1)  (b + m (c - mu))^2 / (2 V(m))]

    and the minimiser [m*_b] is the Critical Time Scale: the number of
    frame autocorrelations that determine the overflow probability.
    Correlations at lags beyond [m*_b] — in particular the entire LRD
    tail once the buffer is small — do not affect the loss estimate at
    all.

    The key structural facts proved in the paper and surfaced by this
    module: [m*_b] is finite for any source with [V(m) = o(m^2)]
    (Markov or LRD alike), equals 1 at [b = 0], and is non-decreasing
    in [b]. *)

type analysis = {
  m_star : int;  (** the Critical Time Scale *)
  rate : float;  (** I(c, b), the per-source decay rate *)
  scanned_up_to : int;
      (** how far the certified search examined the objective *)
}

val objective : Variance_growth.t -> mu:float -> c:float -> b:float -> int -> float
(** [objective vg ~mu ~c ~b m] is [(b + m (c - mu))^2 / (2 V(m))]. *)

val analyze :
  ?margin:int -> Variance_growth.t -> mu:float -> c:float -> b:float -> analysis
(** Computes [I(c,b)] and [m*_b].  Requires [c > mu] (stability with
    positive spare capacity).  The scan continues until the index
    exceeds [margin * argmin + 64] with the objective at twice the
    running minimum (default [margin = 8]); for the monotone-ACF
    sources of interest the objective is unimodal and this is a
    comfortable certificate. *)

val curve :
  ?margin:int ->
  Variance_growth.t ->
  mu:float ->
  c:float ->
  buffers:float array ->
  (float * analysis) array
(** [m*_b] and [I(c,b)] along a buffer sweep (paper Fig. 4). *)

val lrd_closed_form : h:float -> mu:float -> c:float -> b:float -> float
(** The Appendix's continuous approximation of the CTS for an exact-LRD
    Gaussian source: [m* = H b / ((1 - H)(c - mu))].  For [h = 1/2]
    this reduces to the AR(1) constant [b / (c - mu)]. *)
