(** Input power spectrum and cutoff frequency — the frequency-domain
    reading of the Critical Time Scale (paper Section 6.2, connecting
    the CTS with the cutoff frequency omega_c of Li & Hwang's
    filtered-input-rate analysis).

    For a stationary frame-size process with variance sigma^2 and
    autocorrelation r(k), the (one-sided, discrete-time) power spectral
    density is

    [S(w) = sigma^2 (1 + 2 sum_(k>=1) r(k) cos(k w))],  [w] in [0, pi].

    Low frequencies carry the long-term correlations; a queue with a
    small buffer low-pass-filters nothing and reacts to the whole
    spectrum, while the rate function's minimiser [m*] corresponds to a
    time window of [m*] frames, i.e. to frequencies above roughly
    [pi / m*].  The {!cutoff_frequency} of a buffer is that induced
    frequency: spectral content below it does not affect the loss
    estimate. *)

type t

val create : acf:(int -> float) -> variance:float -> ?max_lag:int -> unit -> t
(** Tabulates the ACF up to [max_lag] (default 8192) for spectrum
    evaluation; the tail beyond is treated as zero, which biases only
    frequencies below [pi / max_lag]. *)

val psd : t -> float -> float
(** [psd t w] for [w] in (0, pi].  Evaluated by direct cosine sum with
    Kahan compensation. *)

val total_power : t -> float
(** [sigma^2] — equals the integral of the PSD over [-pi, pi] divided
    by [2 pi]. *)

val low_frequency_power : t -> below:float -> float
(** Fraction of the variance carried by frequencies [|w| <= below],
    by numerical integration of the PSD. *)

val cutoff_frequency_of_cts : m_star:int -> float
(** The frequency [pi / m*] induced by a Critical Time Scale of [m*]
    frames. *)

val cutoff_frequency :
  t -> mu:float -> c:float -> b:float -> float
(** Convenience: run the CTS analysis for the buffer and translate the
    minimiser into its cutoff frequency. *)
