(** An MPEG-style GOP-structured VBR source — the "further work" the
    paper announces in Section 6.2 (finding the CTS of MPEG-coded
    video).

    MPEG encodes frames in a periodic Group-of-Pictures pattern
    (e.g. I B B P B B P B B P B B): I frames are large, P medium, B
    small.  We model the frame-size process as

    [X_n = g_(n mod P) * Y_n]

    where [g] is the deterministic GOP weight pattern and [Y] is a
    stationary DAR(1) "activity" process capturing scene-level
    correlation.  The phase is randomised, which makes [X] stationary
    with a computable autocorrelation mixing the periodic pattern
    correlation with the activity ACF:

    {v
      E[X]        = gbar mu
      Cov(X, X+k) = m2(k) (sigma^2 rho^|k| + mu^2) - gbar^2 mu^2
      m2(k)       = (1/P) sum_j g_j g_(j+k mod P)
    v}

    The ACF therefore shows the characteristic GOP-period ripples on
    top of the activity decay.  Feeding it to [Core.Cts] answers the
    paper's open question for this source class: the CTS machinery is
    agnostic to where the correlation comes from. *)

type t = private {
  pattern : float array;  (** GOP weights g_0 .. g_(P-1), mean 1 *)
  activity_rho : float;  (** lag-1 correlation of the activity process *)
  mean : float;  (** overall mean frame size (cells) *)
  activity_cv : float;  (** coefficient of variation of the activity *)
}

val default_gop : float array
(** A 12-frame IBBPBBPBBPBB pattern with I:P:B size ratios 5:3:1,
    normalised to mean 1. *)

val create :
  ?pattern:float array ->
  ?activity_rho:float ->
  ?activity_cv:float ->
  mean:float ->
  unit ->
  t
(** Defaults: {!default_gop}, [activity_rho = 0.98] (scene persistence),
    [activity_cv = 0.12]. *)

val period : t -> int

val frame_mean : t -> float
val frame_variance : t -> float

val acf : t -> int -> float
(** Stationary (phase-averaged) autocorrelation; shows GOP-period
    ripples. *)

val process : t -> Process.t
(** Frame process with randomised GOP phase. *)
