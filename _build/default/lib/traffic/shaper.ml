(* Autocovariance of the input at (possibly negative) lag. *)
let autocov (p : Process.t) k = p.Process.variance *. p.Process.acf (abs k)

(* Cov_Y(k) = (1/w^2) sum_(d=-(w-1)..w-1) (w - |d|) Cov_X(k + d). *)
let smoothed_autocov p ~window k =
  let w = window in
  let acc = ref 0.0 in
  for d = -(w - 1) to w - 1 do
    acc := !acc +. (float_of_int (w - abs d) *. autocov p (k + d))
  done;
  !acc /. float_of_int (w * w)

let variance_reduction p ~window =
  assert (window >= 1);
  smoothed_autocov p ~window 0 /. p.Process.variance

let added_delay_frames ~window =
  assert (window >= 1);
  float_of_int (window - 1)

let smooth ?name (p : Process.t) ~window =
  if window < 1 then invalid_arg "Shaper.smooth: window must be >= 1";
  if window = 1 then p
  else begin
    let name =
      match name with
      | Some n -> n
      | None -> Printf.sprintf "MA%d(%s)" window p.Process.name
    in
    let variance = smoothed_autocov p ~window 0 in
    assert (variance > 0.0);
    let acf k =
      if k = 0 then 1.0 else smoothed_autocov p ~window k /. variance
    in
    let spawn rng =
      let next = p.Process.spawn rng in
      (* Seed the pipeline so the first outputs have the right mean;
         exact joint stationarity arrives after [window] frames and is
         covered by simulation warmup. *)
      let ring = Array.init window (fun _ -> next ()) in
      let pos = ref 0 in
      let wf = float_of_int window in
      fun () ->
        ring.(!pos) <- next ();
        pos := (!pos + 1) mod window;
        Numerics.Float_array.sum ring /. wf
    in
    { Process.name; mean = p.Process.mean; variance; acf; hurst = p.Process.hurst; spawn }
  end
