(** The heavy-tailed ON/OFF duration distribution of the fractal
    point-process construction (Ryu & Lowen):

    {v
      p(t) = (gamma/A) exp(-gamma t / A)                 for t <= A
      p(t) = gamma exp(-gamma) A^gamma t^-(gamma+1)      for t >  A
    v}

    with [gamma = 2 - alpha] in (1, 2): exponential body, Pareto tail of
    index [gamma], so the mean is finite but the variance is infinite —
    this is what makes the driven point process exactly long-range
    dependent with [H = (alpha + 1)/2]. *)

type t = private {
  gamma : float;  (** tail index, in (1, 2) *)
  a : float;      (** body/tail breakpoint A > 0 (seconds) *)
  mean : float;   (** E[T], closed form *)
}

val create : gamma:float -> a:float -> t
(** Raises [Invalid_argument] unless [1 < gamma < 2] and [a > 0]. *)

val of_alpha : alpha:float -> a:float -> t
(** [of_alpha ~alpha] is [create ~gamma:(2 - alpha)]; [alpha] in (0,1). *)

val pdf : t -> float -> float
val cdf : t -> float -> float

val survival : t -> float -> float
(** [survival t x] is [P(T > x)]. *)

val sample : t -> Numerics.Rng.t -> float
(** Exact inverse-CDF sampling. *)

val equilibrium_cdf : t -> float -> float
(** CDF of the equilibrium (integrated-tail) distribution
    [F_e(x) = (1/mean) * integral_0^x P(T > u) du]: the law of the
    residual duration seen by a stationary observer.  Note the
    equilibrium distribution has an infinite mean (tail index
    [gamma - 1 < 1]) — the root cause of slow simulation convergence
    for LRD traffic that the paper works around with heavy
    replication. *)

val equilibrium_sample : t -> Numerics.Rng.t -> float
(** Exact inverse-CDF sampling from the equilibrium distribution, used
    to start every ON/OFF process in steady state. *)
