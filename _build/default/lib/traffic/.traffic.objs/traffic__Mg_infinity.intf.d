lib/traffic/mg_infinity.mli: Process
