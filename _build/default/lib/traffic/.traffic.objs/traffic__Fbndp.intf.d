lib/traffic/fbndp.mli: Process
