lib/traffic/trace.ml: Array List Numerics Printf Process Stats String
