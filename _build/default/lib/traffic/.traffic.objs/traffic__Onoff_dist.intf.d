lib/traffic/onoff_dist.mli: Numerics
