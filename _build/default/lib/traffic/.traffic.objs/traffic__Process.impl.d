lib/traffic/process.ml: Array List Numerics Printf Stdlib String
