lib/traffic/fgn.ml: Array Numerics Printf Process
