lib/traffic/fgn.mli: Numerics Process
