lib/traffic/onoff_dist.ml: Numerics Printf
