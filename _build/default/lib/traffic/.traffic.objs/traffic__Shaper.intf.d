lib/traffic/shaper.mli: Process
