lib/traffic/mpeg.ml: Array Dar Numerics Printf Process
