lib/traffic/shaper.ml: Array Numerics Printf Process
