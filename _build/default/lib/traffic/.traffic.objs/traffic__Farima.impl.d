lib/traffic/farima.ml: Array Numerics Printf Process
