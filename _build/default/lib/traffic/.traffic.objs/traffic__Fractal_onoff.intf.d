lib/traffic/fractal_onoff.mli: Numerics Onoff_dist
