lib/traffic/dar.mli: Numerics Process
