lib/traffic/trace.mli: Numerics Process
