lib/traffic/process.mli: Numerics
