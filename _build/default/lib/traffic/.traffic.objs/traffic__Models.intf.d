lib/traffic/models.mli: Dar Fbndp Process
