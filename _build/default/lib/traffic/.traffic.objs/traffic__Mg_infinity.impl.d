lib/traffic/mg_infinity.ml: Hashtbl Numerics Option Printf Process Stdlib
