lib/traffic/fractal_onoff.ml: Numerics Onoff_dist
