lib/traffic/models.ml: Dar Fbndp Printf Process
