lib/traffic/mpeg.mli: Process
