lib/traffic/fbndp.ml: Array Fractal_onoff Numerics Onoff_dist Printf Process
