lib/traffic/dar.ml: Array Float Numerics Printf Process Stdlib
