lib/traffic/farima.mli: Process
