(** Frame-level traffic shaping: a moving-average smoother.

    A shaping buffer that spreads each w-frame window's cells evenly
    emits [Y_n = (1/w) sum_(i=0..w-1) X_(n-i)].  The paper's
    deterministic smoothing is the [w = 1] intra-frame case; larger [w]
    models GOP smoothers and shaping buffers that trade [w - 1] frames
    of added delay for reduced short-term variability.

    The smoothed process stays in the {!Process.t} family exactly:

    {v
      E[Y]        = E[X]
      Cov_Y(k)    = (1/w^2) sum_(i,j) Cov_X(k + i - j)
                  = (1/w^2) sum_(d=-(w-1)..w-1) (w - |d|) Cov_X(k + d)
    v}

    so the CTS/Bahadur–Rao machinery applies to shaped sources with no
    approximation.  Smoothing cannot create or destroy long-range
    dependence — it only reshapes short-term correlations — which is
    precisely the paper's distinction made mechanical. *)

val smooth : ?name:string -> Process.t -> window:int -> Process.t
(** [smooth p ~window] is the moving-average of [window >= 1]
    consecutive frames of [p].  [window = 1] returns an equivalent
    process.  The generator consumes one input frame per output frame
    (steady-state pipeline; the first [window - 1] outputs average a
    partially warm pipeline seeded with independent start-up draws,
    which standard simulation warmup absorbs). *)

val added_delay_frames : window:int -> float
(** Worst-case delay added by the shaper: [window - 1] frames. *)

val variance_reduction : Process.t -> window:int -> float
(** [Var Y / Var X]: how much marginal variance the shaper removes.
    Approaches [V(w) / (w^2 sigma^2)] — the normalised variance growth
    of the paper's eq. 10. *)
