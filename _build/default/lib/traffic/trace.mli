(** Frame traces: materialised sample paths with CSV persistence, used
    by the examples to emulate working from a measured video trace. *)

type t = {
  frames : float array;  (** frame sizes, cells/frame *)
  ts : float;  (** frame duration in seconds *)
  name : string;
}

val of_process : Process.t -> ts:float -> Numerics.Rng.t -> n:int -> t

val save_csv : t -> path:string -> unit
(** Two columns: frame index, frame size.  A comment header records
    name and frame duration. *)

val load_csv : path:string -> t
(** Inverse of {!save_csv}.  Raises [Failure] on malformed input. *)

val mean : t -> float
val variance : t -> float

val acf : t -> max_lag:int -> float array
(** Sample autocorrelation of the trace. *)

val aggregate : t -> block:int -> t
(** Block-averaged trace (frame duration scales by [block]). *)
