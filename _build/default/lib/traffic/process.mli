(** A stationary frame-size process: the common interface of every VBR
    video source model in this library.

    A value of type {!t} bundles the analytic first- and second-order
    statistics of the model (mean and variance of the frame size, and
    the autocorrelation function) with a way of creating stateful
    sample-path generators.  The analytic part feeds the
    large-deviations machinery in [cts.core]; the generator feeds the
    queueing simulators. *)

type generator = unit -> float
(** Each call returns the next frame size (cells/frame).  Generators
    are stateful and must not be shared between threads. *)

type t = {
  name : string;
  mean : float;  (** E[X] in cells/frame *)
  variance : float;  (** Var[X] in (cells/frame)^2 *)
  acf : int -> float;
      (** analytic autocorrelation [r k] for [k >= 0]; [r 0 = 1] *)
  hurst : float option;
      (** analytic Hurst parameter when the model is LRD; [None] for
          short-range dependent models (H = 1/2) *)
  spawn : Numerics.Rng.t -> generator;
      (** [spawn rng] creates a fresh stationary generator drawing its
          randomness from [rng] *)
}

val generate : t -> Numerics.Rng.t -> int -> float array
(** [generate t rng n] materialises [n] frames from a fresh
    generator. *)

val acf_array : t -> max_lag:int -> float array
(** The analytic ACF tabulated for lags [0 .. max_lag]. *)

val scale : t -> float -> t
(** [scale t c] multiplies every frame by [c] (mean scales by [c],
    variance by [c^2]; the ACF is unchanged). *)

val superpose : ?name:string -> t list -> t
(** Sum of independent processes: means and variances add and the ACF
    is the variance-weighted mixture of component ACFs (the paper's
    eq. 5).  The Hurst parameter of the sum is the maximum of the
    component Hurst parameters (power-law tails dominate geometric
    ones).  The list must be non-empty. *)

val replicate : ?name:string -> t -> int -> t
(** [replicate t n] is the superposition of [n] independent copies of
    [t]: the aggregate arrival process of [n] homogeneous sources. *)
