(** The Fractal-Binomial-Noise-Driven Poisson process (FBNDP) of Ryu &
    Lowen — the paper's exact-LRD traffic substrate.

    [M] independent fractal ON/OFF processes are summed into a fractal
    binomial noise (FBN) rate function; a Poisson process modulated by
    [R * FBN(t)] produces cell arrivals; counting arrivals per frame of
    duration [T_s] yields the frame-size process [L_n] with

    {v
      H        = (alpha + 1) / 2
      lambda   = R M / 2                          (cells/sec)
      E[L]     = lambda T_s
      Var[L]   = (1 + (T_s/T_0)^alpha) lambda T_s
      r(k)     = T_s^alpha / (T_s^alpha + T_0^alpha)
                 * (1/2) nabla^2 (k^(alpha+1))
    v}

    where [T_0] (the fractal onset time) is a closed-form function of
    [(alpha, A, R)].  This module works in both directions: physical
    parameters [(alpha, A, M, R)] to statistics, and target statistics
    [(alpha, lambda, T_0, M)] or moments back to physical parameters. *)

type params = private {
  alpha : float;  (** fractal exponent, in (0, 1); H = (alpha+1)/2 *)
  a : float;      (** ON/OFF distribution breakpoint A (seconds) *)
  m : int;        (** number of superposed ON/OFF processes *)
  r : float;      (** arrival rate of one ON process (cells/sec) *)
}

val create : alpha:float -> a:float -> m:int -> r:float -> params
(** Physical parameterisation.  Raises [Invalid_argument] on
    out-of-range inputs. *)

val of_target : alpha:float -> lambda:float -> t0:float -> m:int -> params
(** The paper's parameterisation: mean rate [lambda] (cells/sec) and
    fractal onset time [t0] (seconds); solves for [A] and [R]. *)

val of_moments :
  alpha:float -> mean:float -> variance:float -> m:int -> ts:float -> params
(** Frame-statistics parameterisation: choose [lambda = mean / ts] and
    [t0] such that a frame of duration [ts] has the given mean and
    variance.  Requires [variance > mean] (the Poisson floor). *)

val hurst : params -> float
val lambda : params -> float

val fractal_onset_time : params -> float
(** [T_0 = { alpha (alpha+1) (2-alpha)^-1 [(1-alpha) e^(2-alpha) + 1]
    / (R A^(1-alpha)) }^(1/alpha)]. *)

val frame_mean : params -> ts:float -> float
val frame_variance : params -> ts:float -> float

val frame_acf : params -> ts:float -> int -> float
(** Analytic frame autocorrelation [r k], [k >= 0]. *)

val g_factor : params -> ts:float -> float
(** The weight [g(T_s) = T_s^alpha / (T_s^alpha + T_0^alpha)] of the
    exact-LRD autocorrelation form (paper eq. 2). *)

val process : params -> ts:float -> Process.t
(** The frame-size process: simulation by event-driven ON/OFF tracking
    plus Poisson thinning per frame, analytic moments as above. *)
