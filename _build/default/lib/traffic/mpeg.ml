type t = {
  pattern : float array;
  activity_rho : float;
  mean : float;
  activity_cv : float;
}

let normalize_pattern p =
  let total = Array.fold_left ( +. ) 0.0 p in
  assert (total > 0.0);
  let n = float_of_int (Array.length p) in
  Array.map (fun g -> g *. n /. total) p

let default_gop =
  normalize_pattern
    [| 5.0; 1.0; 1.0; 3.0; 1.0; 1.0; 3.0; 1.0; 1.0; 3.0; 1.0; 1.0 |]

let create ?(pattern = default_gop) ?(activity_rho = 0.98)
    ?(activity_cv = 0.12) ~mean () =
  if Array.length pattern = 0 then invalid_arg "Mpeg: empty GOP pattern";
  Array.iter (fun g -> if g <= 0.0 then invalid_arg "Mpeg: weights must be positive") pattern;
  if not (activity_rho >= 0.0 && activity_rho < 1.0) then
    invalid_arg "Mpeg: activity_rho outside [0, 1)";
  if not (mean > 0.0 && activity_cv > 0.0) then
    invalid_arg "Mpeg: mean and activity_cv must be positive";
  { pattern = normalize_pattern pattern; activity_rho; mean; activity_cv }

let period t = Array.length t.pattern

(* (1/P) sum_j g_j g_(j+k): the pattern's circular correlation. *)
let pattern_m2 t k =
  let p = period t in
  let acc = ref 0.0 in
  for j = 0 to p - 1 do
    acc := !acc +. (t.pattern.(j) *. t.pattern.((j + k) mod p))
  done;
  !acc /. float_of_int p

let frame_mean t = t.mean

(* Activity Y has mean mu, std cv*mu; X = g Y with random phase. *)
let autocovariance t k =
  let mu = t.mean in
  let sigma2 = (t.activity_cv *. mu) ** 2.0 in
  let m2 = pattern_m2 t (k mod period t) in
  (m2 *. ((sigma2 *. (t.activity_rho ** float_of_int k)) +. (mu *. mu)))
  -. (mu *. mu)

let frame_variance t = autocovariance t 0

let acf t k =
  assert (k >= 0);
  if k = 0 then 1.0 else autocovariance t k /. frame_variance t

let process t =
  let p = period t in
  let mu = t.mean in
  let activity_std = t.activity_cv *. mu in
  let spawn rng =
    let phase = ref (Numerics.Rng.int rng ~bound:p) in
    let dar =
      Dar.make
        (Dar.gaussian_marginal ~mean:mu ~variance:(activity_std *. activity_std))
        { Dar.rho = t.activity_rho; weights = [| 1.0 |] }
    in
    let activity = dar.Process.spawn (Numerics.Rng.split rng) in
    fun () ->
      let g = t.pattern.(!phase) in
      phase := (!phase + 1) mod p;
      g *. activity ()
  in
  {
    Process.name = Printf.sprintf "MPEG(GOP=%d,rho=%g)" p t.activity_rho;
    mean = frame_mean t;
    variance = frame_variance t;
    acf = acf t;
    hurst = None;
    spawn;
  }
