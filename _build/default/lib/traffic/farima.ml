let check_d d =
  if not (d > 0.0 && d < 0.5) then
    invalid_arg (Printf.sprintf "Farima: d = %g outside (0, 0.5)" d)

let acf ~d k =
  check_d d;
  assert (k >= 0);
  if k = 0 then 1.0
  else begin
    let open Numerics.Special in
    let kf = float_of_int k in
    exp
      (log_gamma (kf +. d) +. log_gamma (1.0 -. d)
      -. log_gamma (kf -. d +. 1.0)
      -. log_gamma d)
  end

let ma_coefficients ~d ~n =
  check_d d;
  assert (n >= 1);
  let psi = Array.make n 1.0 in
  for j = 1 to n - 1 do
    let jf = float_of_int j in
    psi.(j) <- psi.(j - 1) *. (jf -. 1.0 +. d) /. jf
  done;
  psi

let process ?(truncation = 2048) ~d ~mean ~variance () =
  check_d d;
  assert (truncation >= 2 && variance > 0.0);
  let psi = ma_coefficients ~d ~n:truncation in
  (* Scale innovations so the truncated filter reproduces the requested
     marginal variance exactly. *)
  let sum_sq = Array.fold_left (fun acc p -> acc +. (p *. p)) 0.0 psi in
  let innovation_std = sqrt (variance /. sum_sq) in
  let spawn rng =
    let ring = Array.make truncation 0.0 in
    (* Warm the filter so the first emitted values are stationary. *)
    for i = 0 to truncation - 1 do
      ring.(i) <- Numerics.Dist.gaussian rng ~mean:0.0 ~std:innovation_std
    done;
    let pos = ref 0 in
    fun () ->
      ring.(!pos) <- Numerics.Dist.gaussian rng ~mean:0.0 ~std:innovation_std;
      (* ring.(pos) is eps_t; psi_j multiplies eps_(t-j). *)
      let acc = ref 0.0 in
      for j = 0 to truncation - 1 do
        acc := !acc +. (psi.(j) *. ring.((!pos - j + truncation) mod truncation))
      done;
      pos := (!pos + 1) mod truncation;
      mean +. !acc
  in
  {
    Process.name = Printf.sprintf "F-ARIMA(0,%g,0)" d;
    mean;
    variance;
    acf = acf ~d;
    hurst = Some (d +. 0.5);
    spawn;
  }
