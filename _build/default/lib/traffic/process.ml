type generator = unit -> float

type t = {
  name : string;
  mean : float;
  variance : float;
  acf : int -> float;
  hurst : float option;
  spawn : Numerics.Rng.t -> generator;
}

let generate t rng n =
  assert (n >= 0);
  let next = t.spawn rng in
  Array.init n (fun _ -> next ())

let acf_array t ~max_lag =
  assert (max_lag >= 0);
  Array.init (max_lag + 1) t.acf

let scale t c =
  {
    t with
    name = Printf.sprintf "%g*%s" c t.name;
    mean = c *. t.mean;
    variance = c *. c *. t.variance;
    spawn =
      (fun rng ->
        let next = t.spawn rng in
        fun () -> c *. next ());
  }

let superpose ?name components =
  assert (components <> []);
  let mean = List.fold_left (fun acc c -> acc +. c.mean) 0.0 components in
  let variance =
    List.fold_left (fun acc c -> acc +. c.variance) 0.0 components
  in
  assert (variance > 0.0);
  let name =
    match name with
    | Some n -> n
    | None -> String.concat "+" (List.map (fun c -> c.name) components)
  in
  let acf k =
    if k = 0 then 1.0
    else
      List.fold_left
        (fun acc c -> acc +. (c.variance *. c.acf k))
        0.0 components
      /. variance
  in
  let hurst =
    List.fold_left
      (fun acc c ->
        match (acc, c.hurst) with
        | None, h | h, None -> h
        | Some a, Some b -> Some (Stdlib.max a b))
      None components
  in
  let spawn rng =
    (* Give each component its own substream so adding a component
       does not change the draws of the others. *)
    let gens =
      List.mapi
        (fun i c -> c.spawn (Numerics.Rng.jump_to_substream rng i))
        components
    in
    fun () -> List.fold_left (fun acc g -> acc +. g ()) 0.0 gens
  in
  { name; mean; variance; acf; hurst; spawn }

let replicate ?name t n =
  assert (n >= 1);
  let name =
    match name with Some s -> s | None -> Printf.sprintf "%dx(%s)" n t.name
  in
  let nf = float_of_int n in
  {
    name;
    mean = nf *. t.mean;
    variance = nf *. t.variance;
    acf = t.acf;
    hurst = t.hurst;
    spawn =
      (fun rng ->
        let gens =
          Array.init n (fun i -> t.spawn (Numerics.Rng.jump_to_substream rng i))
        in
        fun () ->
          let acc = ref 0.0 in
          for i = 0 to n - 1 do
            acc := !acc +. gens.(i) ()
          done;
          !acc);
  }
