(** The M/G/infinity (Cox) input model: the LRD construction for which
    Likhanov et al. and Parulekar & Makowski proved hyperbolic buffer
    asymptotics, included as a second independent LRD substrate.

    Sessions arrive in Poisson batches of rate [session_rate] per frame
    and remain active for [L] frames, where the holding time has the
    discrete Pareto law [P(L > j) = (1 + j)^(-beta)] with tail index
    [beta] in (1, 2).  The frame process is the number of active
    sessions, optionally scaled to cells/frame.

    Stationary statistics: [X ~ Poisson(session_rate * E L)] and
    [r(k) = E[(L - k)^+] / E[L]], which decays like [k^(1-beta)], so
    [H = (3 - beta) / 2]. *)

type params = private {
  beta : float;          (** holding-time tail index, in (1, 2) *)
  session_rate : float;  (** expected session arrivals per frame *)
  cells_per_session : float;  (** linear scaling to cells/frame *)
}

val create :
  beta:float -> session_rate:float -> ?cells_per_session:float -> unit -> params

val mean_holding : params -> float
(** [E L = zeta(beta)], evaluated numerically. *)

val acf : params -> int -> float

val hurst : params -> float

val frame_mean : params -> float
val frame_variance : params -> float

val process : params -> Process.t
(** Event-driven simulation: active-session count updated by Poisson
    arrivals and scheduled departures; exact stationary start (Poisson
    number of initial sessions with equilibrium residual holding
    times). *)
