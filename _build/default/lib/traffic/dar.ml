type marginal = {
  sample : Numerics.Rng.t -> float;
  mean : float;
  variance : float;
}

let gaussian_marginal ~mean ~variance =
  assert (variance > 0.0);
  let std = sqrt variance in
  { sample = (fun rng -> Numerics.Dist.gaussian rng ~mean ~std); mean; variance }

let negative_binomial_marginal ~mean ~variance =
  assert (mean > 0.0 && variance > mean);
  {
    sample =
      (fun rng ->
        float_of_int
          (Numerics.Dist.negative_binomial_of_moments rng ~mean ~variance));
    mean;
    variance;
  }

let gamma_marginal ~mean ~variance =
  assert (mean > 0.0 && variance > 0.0);
  let shape = mean *. mean /. variance in
  let scale = variance /. mean in
  {
    sample = (fun rng -> Numerics.Dist.gamma rng ~shape ~scale);
    mean;
    variance;
  }

type params = { rho : float; weights : float array }

let order { weights; _ } = Array.length weights

let validate { rho; weights } =
  if not (rho >= 0.0 && rho < 1.0) then
    invalid_arg (Printf.sprintf "Dar: rho = %g outside [0, 1)" rho);
  if Array.length weights = 0 then invalid_arg "Dar: empty weight vector";
  Array.iter
    (fun a ->
      if a < -1e-12 then invalid_arg (Printf.sprintf "Dar: negative weight %g" a))
    weights;
  let total = Array.fold_left ( +. ) 0.0 weights in
  if Float.abs (total -. 1.0) > 1e-9 then
    invalid_arg (Printf.sprintf "Dar: weights sum to %g, expected 1" total)

(* Dense linear solve by Gaussian elimination with partial pivoting;
   sizes here are the DAR order p, i.e. tiny. *)
let solve_linear a b =
  let n = Array.length b in
  for col = 0 to n - 1 do
    let pivot = ref col in
    for row = col + 1 to n - 1 do
      if Float.abs a.(row).(col) > Float.abs a.(!pivot).(col) then pivot := row
    done;
    if Float.abs a.(!pivot).(col) < 1e-14 then
      invalid_arg "Dar: singular linear system";
    if !pivot <> col then begin
      let tmp = a.(col) in
      a.(col) <- a.(!pivot);
      a.(!pivot) <- tmp;
      let tb = b.(col) in
      b.(col) <- b.(!pivot);
      b.(!pivot) <- tb
    end;
    for row = col + 1 to n - 1 do
      let factor = a.(row).(col) /. a.(col).(col) in
      for j = col to n - 1 do
        a.(row).(j) <- a.(row).(j) -. (factor *. a.(col).(j))
      done;
      b.(row) <- b.(row) -. (factor *. b.(col))
    done
  done;
  let x = Array.make n 0.0 in
  for row = n - 1 downto 0 do
    let acc = ref b.(row) in
    for j = row + 1 to n - 1 do
      acc := !acc -. (a.(row).(j) *. x.(j))
    done;
    x.(row) <- !acc /. a.(row).(row)
  done;
  x

(* r(k) = sum_i rho a_i r(|k - i|), r(0) = 1.  For k < p the equations
   are implicit (r(k) appears on the right through the reflected lags),
   so the first p-1 autocorrelations come from a linear solve; beyond
   that the recursion is explicit. *)
let acf_head params =
  let p = order params in
  let phi i = params.rho *. params.weights.(i - 1) in
  if p = 1 then [||]
  else begin
    (* Unknowns x_j = r(j), j = 1..p-1:
       x_k - sum_(i <> k) phi_i x_(|k-i|) = phi_k. *)
    let n = p - 1 in
    let a = Array.make_matrix n n 0.0 in
    let b = Array.make n 0.0 in
    for k = 1 to n do
      a.(k - 1).(k - 1) <- 1.0;
      b.(k - 1) <- phi k;
      for i = 1 to p do
        if i <> k then begin
          let lag = abs (k - i) in
          if lag = 0 then assert false
          else if lag <= n then
            a.(k - 1).(lag - 1) <- a.(k - 1).(lag - 1) -. phi i
          else
            (* |k - i| can reach p - 1 at most since k <= p-1, i <= p;
               lag <= n always holds. *)
            assert false
        end
      done
    done;
    solve_linear a b
  end

let acf_table params ~up_to =
  let p = order params in
  let head = acf_head params in
  let r = Array.make (up_to + 1) 0.0 in
  r.(0) <- 1.0;
  for k = 1 to Stdlib.min up_to (p - 1) do
    r.(k) <- head.(k - 1)
  done;
  for k = p to up_to do
    let acc = ref 0.0 in
    for i = 1 to p do
      acc := !acc +. (params.weights.(i - 1) *. r.(k - i))
    done;
    r.(k) <- params.rho *. !acc
  done;
  r

let acf params k =
  assert (k >= 0);
  (acf_table params ~up_to:k).(k)

let acf_fun params =
  let table = ref (acf_table params ~up_to:64) in
  fun k ->
    assert (k >= 0);
    if k >= Array.length !table then begin
      let bigger = Stdlib.max k (2 * Array.length !table) in
      table := acf_table params ~up_to:bigger
    end;
    !table.(k)

let make ?name marginal params =
  validate params;
  let p = order params in
  let name =
    match name with Some n -> n | None -> Printf.sprintf "DAR(%d)" p
  in
  let r = acf_fun params in
  let spawn rng =
    (* Ring buffer of the last p values, seeded i.i.d. from the
       marginal; the short correlation transient dies within a few
       multiples of p lags and is absorbed by simulation warmup. *)
    let history = Array.init p (fun _ -> marginal.sample rng) in
    let pos = ref 0 in
    fun () ->
      let value =
        if Numerics.Rng.float rng < params.rho then begin
          (* Reuse the value from A_n frames ago. *)
          let back = 1 + Numerics.Dist.categorical rng ~weights:params.weights in
          history.((!pos - back + (2 * p)) mod p)
        end
        else marginal.sample rng
      in
      history.(!pos) <- value;
      pos := (!pos + 1) mod p;
      value
  in
  {
    Process.name;
    mean = marginal.mean;
    variance = marginal.variance;
    acf = r;
    hurst = None;
    spawn;
  }

(* Solve the p x p symmetric Toeplitz Yule-Walker system
   R phi = rho_vec (p is tiny here, so dense elimination is fine). *)
let solve_yule_walker ~target_acf ~p =
  let a = Array.make_matrix p p 0.0 in
  let b = Array.make p 0.0 in
  for i = 0 to p - 1 do
    b.(i) <- target_acf (i + 1);
    for j = 0 to p - 1 do
      a.(i).(j) <- target_acf (abs (i - j))
    done
  done;
  solve_linear a b

let fit ~target_acf ~p =
  assert (p >= 1);
  let phi = solve_yule_walker ~target_acf ~p in
  let rho = Array.fold_left ( +. ) 0.0 phi in
  if not (rho > 0.0 && rho < 1.0) then
    invalid_arg (Printf.sprintf "Dar.fit: implied rho = %g outside (0, 1)" rho);
  let weights = Array.map (fun c -> c /. rho) phi in
  Array.iteri
    (fun i w ->
      if w < -1e-9 then
        invalid_arg
          (Printf.sprintf "Dar.fit: weight a_%d = %g < 0; no DAR(%d) matches"
             (i + 1) w p))
    weights;
  (* Clamp the tiny negative rounding noise allowed above. *)
  let weights = Array.map (fun w -> Stdlib.max 0.0 w) weights in
  Numerics.Float_array.normalize_in_place weights;
  { rho; weights }

let fit_process ?name marginal ~target_acf ~p =
  let params = fit ~target_acf ~p in
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "DAR(%d)[fit]" p
  in
  make ~name marginal params
