type t = { gamma : float; a : float; mean : float }

let create ~gamma ~a =
  if not (gamma > 1.0 && gamma < 2.0) then
    invalid_arg (Printf.sprintf "Onoff_dist: gamma = %g outside (1, 2)" gamma);
  if not (a > 0.0) then invalid_arg "Onoff_dist: breakpoint must be positive";
  (* mean = integral of the survival function: exponential body part
     plus Pareto tail part. *)
  let e = exp (-.gamma) in
  let mean = (a /. gamma *. (1.0 -. e)) +. (e *. a /. (gamma -. 1.0)) in
  { gamma; a; mean }

let of_alpha ~alpha ~a =
  if not (alpha > 0.0 && alpha < 1.0) then
    invalid_arg (Printf.sprintf "Onoff_dist: alpha = %g outside (0, 1)" alpha);
  create ~gamma:(2.0 -. alpha) ~a

let pdf { gamma; a; _ } x =
  if x < 0.0 then 0.0
  else if x <= a then gamma /. a *. exp (-.gamma *. x /. a)
  else
    gamma *. exp (-.gamma) *. (a ** gamma) *. (x ** (-.gamma -. 1.0))

let survival { gamma; a; _ } x =
  if x <= 0.0 then 1.0
  else if x <= a then exp (-.gamma *. x /. a)
  else exp (-.gamma) *. ((a /. x) ** gamma)

let cdf t x = 1.0 -. survival t x

let sample t rng =
  (* Draw the survival value directly: S(T) is uniform on (0,1). *)
  let s = Numerics.Rng.float rng in
  let e = exp (-.t.gamma) in
  if s > e then -.(t.a /. t.gamma) *. log s
  else t.a *. ((e /. s) ** (1.0 /. t.gamma))

(* integral_0^x S(u) du, needed for the equilibrium distribution. *)
let survival_integral t x =
  let { gamma; a; _ } = t in
  let e = exp (-.gamma) in
  if x <= 0.0 then 0.0
  else if x <= a then a /. gamma *. (1.0 -. exp (-.gamma *. x /. a))
  else begin
    let body = a /. gamma *. (1.0 -. e) in
    let tail =
      e *. (a ** gamma)
      *. ((a ** (1.0 -. gamma)) -. (x ** (1.0 -. gamma)))
      /. (gamma -. 1.0)
    in
    body +. tail
  end

let equilibrium_cdf t x = survival_integral t x /. t.mean

let equilibrium_sample t rng =
  let { gamma; a; mean } = t in
  let u = Numerics.Rng.float rng in
  let target = u *. mean in
  let e = exp (-.gamma) in
  let body_mass = a /. gamma *. (1.0 -. e) in
  if target <= body_mass then begin
    (* Invert the exponential-body branch of the integrated tail. *)
    let inner = 1.0 -. (gamma *. target /. a) in
    -.(a /. gamma) *. log inner
  end
  else begin
    (* Invert the Pareto branch: target = body + e a^g (a^(1-g) - x^(1-g)) / (g-1). *)
    let rhs =
      (a ** (1.0 -. gamma))
      -. ((target -. body_mass) *. (gamma -. 1.0) /. (e *. (a ** gamma)))
    in
    rhs ** (1.0 /. (1.0 -. gamma))
  end
