(** Fractional ARIMA(0, d, 0) — the asymptotically LRD Gaussian process
    cited by the paper (Beran et al.) as a video-trace model.

    [X_t = (1 - B)^(-d) eps_t] with [0 < d < 1/2] has Hurst parameter
    [H = d + 1/2], autocorrelation
    [r(k) = Gamma(k + d) Gamma(1 - d) / (Gamma(k - d + 1) Gamma(d))]
    which decays like [k^(2d - 1)], and an MA(infinity) representation
    with coefficients [psi_j = Gamma(j + d) / (Gamma(d) Gamma(j + 1))]. *)

val acf : d:float -> int -> float
(** Analytic autocorrelation at lag [k >= 0], computed through
    log-gamma for numerical stability at large lags. *)

val ma_coefficients : d:float -> n:int -> float array
(** The first [n] MA(infinity) weights [psi_0 .. psi_(n-1)], by the
    stable recurrence [psi_j = psi_(j-1) (j - 1 + d) / j]. *)

val process :
  ?truncation:int -> d:float -> mean:float -> variance:float -> unit -> Process.t
(** F-ARIMA(0,d,0) as a frame process.  Generation truncates the
    MA(infinity) filter at [truncation] terms (default 2048) and scales
    the innovation variance so the marginal variance is exact; the ACF
    reported is the analytic (untruncated) one.  The truncation biases
    correlations only at lags near and beyond the truncation point. *)
