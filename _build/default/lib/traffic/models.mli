(** The paper's four VBR video source models (Section 3, Table 1).

    All four share the same Gaussian frame-size marginal — mean 500
    cells/frame, variance 5000 (cells/frame)^2, at 25 frames/s
    (T_s = 40 ms) — so any difference in queueing behaviour is due to
    autocorrelation alone:

    - [z ~a]: FBNDP(alpha = 0.8, H = 0.9) + DAR(1) with first-lag [a],
      equal variance split (v = 1).  Varying [a] moves the short-term
      correlations while the LRD tail is fixed.
    - [v ~v]: FBNDP(alpha = 0.9) + DAR(1) with the DAR lag-1 chosen so
      the lag-1 correlation of the sum is the same for every [v].
      Varying [v] moves the weight of the LRD tail while short-term
      correlations stay put.
    - [s ~a ~p]: DAR(p) exactly matching the first [p] autocorrelations
      of [z ~a] — the parsimonious Markov model of Claim 2.
    - [l ()]: FBNDP-only exact-LRD model whose correlation tail matches
      [z]'s (alpha = 0.72, H = 0.86).

    Derived parameters (T_0, A, R, the DAR fits, the lag-1-preserving
    [a(v)]) are computed, not hard-coded, and reproduce Table 1. *)

val ts : float
(** Frame duration: 0.04 s. *)

val frames_per_second : float
(** 25. *)

val frame_mean : float
(** 500 cells/frame. *)

val frame_variance : float
(** 5000 (cells/frame)^2. *)

type composite = {
  process : Process.t;
  fbndp : Fbndp.params;  (** the LRD component *)
  dar_a : float;  (** lag-1 correlation of the DAR(1) component *)
  v : float;  (** variance ratio sigma_X^2 / sigma_Y^2 *)
}

val z : a:float -> composite
(** [z ~a] for [a] in (0, 1); the paper uses 0.7, 0.9, 0.975, 0.99. *)

val z_values : float list
(** The four values of [a] used in the paper. *)

val v : v:float -> composite
(** [v ~v] for [v > 0]; the paper uses 0.67, 1, 1.5.  The DAR lag-1 is
    solved so that the composite lag-1 correlation equals that of the
    [v = 1], [a = 0.8] reference. *)

val v_values : float list
(** The three values of [v] used in the paper. *)

val s : a:float -> p:int -> Process.t
(** DAR(p) matched to the first [p] autocorrelations of [z ~a]. *)

val s_params : a:float -> p:int -> Dar.params
(** The fitted (rho, a_1..a_p), as reported in Table 1. *)

val l : unit -> Process.t
(** The exact-LRD comparator (alpha = 0.72, M = 30). *)

val l_params : unit -> Fbndp.params

val l_alpha : float
(** 0.72, chosen by the paper so the tail of L's ACF matches Z's. *)

val z_alpha : float
(** 0.8 (H = 0.9). *)

val v_alpha : float
(** 0.9. *)
