let check_h h =
  if not (h > 0.0 && h < 1.0) then
    invalid_arg (Printf.sprintf "Fgn: H = %g outside (0, 1)" h)

let acf ~h k =
  check_h h;
  assert (k >= 0);
  if k = 0 then 1.0
  else begin
    let e = 2.0 *. h in
    let kf = float_of_int k in
    0.5 *. (((kf +. 1.0) ** e) -. (2.0 *. (kf ** e)) +. ((kf -. 1.0) ** e))
  end

let sample_davies_harte rng ~h ~n =
  check_h h;
  assert (n >= 1);
  (* Build the first row of the circulant embedding of the (2m)-point
     covariance, take its FFT to get eigenvalues, then synthesise. *)
  let m = Numerics.Fft.next_pow2 n in
  let size = 2 * m in
  let row = Array.make size 0.0 in
  for k = 0 to m do
    let v = acf ~h k in
    row.(k) <- v;
    if k > 0 && k < m then row.(size - k) <- v
  done;
  let re = Array.copy row and im = Array.make size 0.0 in
  Numerics.Fft.forward ~re ~im;
  let eigen = re in
  Array.iteri
    (fun i v ->
      if v < -1e-6 then
        failwith
          (Printf.sprintf "Fgn: negative circulant eigenvalue %g at %d" v i)
      else if v < 0.0 then eigen.(i) <- 0.0)
    eigen;
  (* Complex Gaussian spectrum with the right symmetry. *)
  let wre = Array.make size 0.0 and wim = Array.make size 0.0 in
  let scale = 1.0 /. sqrt (2.0 *. float_of_int size) in
  wre.(0) <- sqrt eigen.(0) *. Numerics.Dist.standard_gaussian rng /. sqrt (float_of_int size);
  wre.(m) <- sqrt eigen.(m) *. Numerics.Dist.standard_gaussian rng /. sqrt (float_of_int size);
  for k = 1 to m - 1 do
    let s = sqrt eigen.(k) *. scale in
    let g1 = Numerics.Dist.standard_gaussian rng in
    let g2 = Numerics.Dist.standard_gaussian rng in
    wre.(k) <- s *. g1;
    wim.(k) <- s *. g2;
    wre.(size - k) <- s *. g1;
    wim.(size - k) <- -.(s *. g2)
  done;
  (* The inverse FFT of this Hermitian spectrum is real with the target
     covariance; our [inverse] divides by size, so compensate. *)
  Numerics.Fft.inverse ~re:wre ~im:wim;
  Array.init n (fun i -> wre.(i) *. float_of_int size)

let sample_hosking rng ~h ~n =
  check_h h;
  assert (n >= 1);
  let out = Array.make n 0.0 in
  let phi = Array.make n 0.0 in
  let prev = Array.make n 0.0 in
  let v = ref 1.0 in
  out.(0) <- Numerics.Dist.standard_gaussian rng;
  for t = 1 to n - 1 do
    (* Durbin-Levinson update of the prediction coefficients. *)
    let num = ref (acf ~h t) in
    for j = 1 to t - 1 do
      num := !num -. (prev.(j - 1) *. acf ~h (t - j))
    done;
    let phi_tt = !num /. !v in
    phi.(t - 1) <- phi_tt;
    for j = 1 to t - 1 do
      phi.(j - 1) <- prev.(j - 1) -. (phi_tt *. prev.(t - 1 - j))
    done;
    v := !v *. (1.0 -. (phi_tt *. phi_tt));
    let mean = ref 0.0 in
    for j = 1 to t do
      mean := !mean +. (phi.(j - 1) *. out.(t - j))
    done;
    out.(t) <- !mean +. (sqrt !v *. Numerics.Dist.standard_gaussian rng);
    Array.blit phi 0 prev 0 t
  done;
  out

let process ?(block = 65536) ~h ~mean ~variance () =
  check_h h;
  assert (block >= 2 && variance > 0.0);
  let std = sqrt variance in
  let spawn rng =
    let buffer = ref [||] in
    let pos = ref 0 in
    fun () ->
      if !pos >= Array.length !buffer then begin
        buffer := sample_davies_harte rng ~h ~n:block;
        pos := 0
      end;
      let v = mean +. (std *. !buffer.(!pos)) in
      incr pos;
      v
  in
  {
    Process.name = Printf.sprintf "fGn(H=%g)" h;
    mean;
    variance;
    acf = acf ~h;
    hurst = Some h;
    spawn;
  }
