type params = { alpha : float; a : float; m : int; r : float }

let check_alpha alpha =
  if not (alpha > 0.0 && alpha < 1.0) then
    invalid_arg (Printf.sprintf "Fbndp: alpha = %g outside (0, 1)" alpha)

let create ~alpha ~a ~m ~r =
  check_alpha alpha;
  if not (a > 0.0) then invalid_arg "Fbndp: breakpoint A must be positive";
  if m < 1 then invalid_arg "Fbndp: M must be at least 1";
  if not (r > 0.0) then invalid_arg "Fbndp: rate R must be positive";
  { alpha; a; m; r }

let hurst { alpha; _ } = (alpha +. 1.0) /. 2.0
let lambda { m; r; _ } = r *. float_of_int m /. 2.0

(* The constant K(alpha) in T_0^alpha = K(alpha) / (R A^(1-alpha)). *)
let onset_constant alpha =
  alpha *. (alpha +. 1.0) /. (2.0 -. alpha)
  *. (((1.0 -. alpha) *. exp (2.0 -. alpha)) +. 1.0)

let fractal_onset_time { alpha; a; r; _ } =
  (onset_constant alpha /. r *. (a ** (alpha -. 1.0))) ** (1.0 /. alpha)

let of_target ~alpha ~lambda ~t0 ~m =
  check_alpha alpha;
  if not (lambda > 0.0 && t0 > 0.0) then
    invalid_arg "Fbndp: lambda and t0 must be positive";
  if m < 1 then invalid_arg "Fbndp: M must be at least 1";
  let r = 2.0 *. lambda /. float_of_int m in
  (* T0^alpha = K / (R A^(1-alpha))  =>  A = (T0^alpha R / K)^(1/(alpha-1)). *)
  let a = ((t0 ** alpha) *. r /. onset_constant alpha) ** (1.0 /. (alpha -. 1.0)) in
  create ~alpha ~a ~m ~r

let frame_mean t ~ts = lambda t *. ts

let frame_variance t ~ts =
  let t0 = fractal_onset_time t in
  (1.0 +. ((ts /. t0) ** t.alpha)) *. lambda t *. ts

let of_moments ~alpha ~mean ~variance ~m ~ts =
  check_alpha alpha;
  if not (ts > 0.0) then invalid_arg "Fbndp: frame duration must be positive";
  if not (variance > mean) then
    invalid_arg "Fbndp: frame variance must exceed the Poisson floor (mean)";
  let lambda = mean /. ts in
  (* variance/mean = 1 + (ts/t0)^alpha  =>  t0 = ts / (var/mean - 1)^(1/alpha). *)
  let ratio = (variance /. mean) -. 1.0 in
  let t0 = ts /. (ratio ** (1.0 /. alpha)) in
  of_target ~alpha ~lambda ~t0 ~m

let g_factor t ~ts =
  let t0 = fractal_onset_time t in
  (ts ** t.alpha) /. ((ts ** t.alpha) +. (t0 ** t.alpha))

(* (1/2) * second central difference of k^(alpha+1). *)
let half_nabla2 alpha k =
  assert (k >= 1);
  let e = alpha +. 1.0 in
  let kf = float_of_int k in
  0.5
  *. (((kf +. 1.0) ** e) -. (2.0 *. (kf ** e)) +. ((kf -. 1.0) ** e))

let frame_acf t ~ts k =
  assert (k >= 0);
  if k = 0 then 1.0 else g_factor t ~ts *. half_nabla2 t.alpha k

let process t ~ts =
  assert (ts > 0.0);
  let dist = Onoff_dist.of_alpha ~alpha:t.alpha ~a:t.a in
  let spawn rng =
    let sources =
      Array.init t.m (fun i ->
          Fractal_onoff.create dist (Numerics.Rng.jump_to_substream rng i))
    in
    let poisson_rng = Numerics.Rng.split rng in
    fun () ->
      let on_time = ref 0.0 in
      for i = 0 to t.m - 1 do
        on_time := !on_time +. Fractal_onoff.on_time sources.(i) ~dt:ts
      done;
      float_of_int (Numerics.Dist.poisson poisson_rng ~mean:(t.r *. !on_time))
  in
  {
    Process.name =
      Printf.sprintf "FBNDP(alpha=%g,M=%d,lambda=%g)" t.alpha t.m (lambda t);
    mean = frame_mean t ~ts;
    variance = frame_variance t ~ts;
    acf = frame_acf t ~ts;
    hurst = Some (hurst t);
    spawn;
  }
