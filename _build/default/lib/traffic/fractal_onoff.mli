(** A single fractal ON/OFF source: an alternating renewal process
    whose ON and OFF durations are i.i.d. draws from the same
    heavy-tailed {!Onoff_dist}.  By symmetry the stationary probability
    of being ON is 1/2.

    The process is advanced in fixed time steps; each step reports the
    amount of ON time inside the step, which is exactly what the
    Poisson-modulation layer of the FBNDP needs. *)

type t

val create : Onoff_dist.t -> Numerics.Rng.t -> t
(** A process started in steady state: ON with probability 1/2, and the
    residual duration of the current period drawn from the equilibrium
    distribution. *)

val is_on : t -> bool

val on_time : t -> dt:float -> float
(** [on_time t ~dt] advances the process by [dt > 0] seconds and
    returns the total ON time accumulated during the step (between 0
    and [dt]). *)
