let ts = 0.04
let frames_per_second = 25.0
let frame_mean = 500.0
let frame_variance = 5000.0
let z_alpha = 0.8
let v_alpha = 0.9
let l_alpha = 0.72
let z_values = [ 0.7; 0.9; 0.975; 0.99 ]
let v_values = [ 0.67; 1.0; 1.5 ]

type composite = {
  process : Process.t;
  fbndp : Fbndp.params;
  dar_a : float;
  v : float;
}

(* Shared construction of FBNDP + DAR(1) with the paper's variance
   split: the FBNDP carries fraction v/(v+1) of the mean and variance,
   the DAR(1) the rest. *)
let build ~name ~alpha ~m ~v ~dar_a =
  assert (v > 0.0 && dar_a > 0.0 && dar_a < 1.0);
  let weight = v /. (v +. 1.0) in
  let fbndp =
    Fbndp.of_moments ~alpha ~mean:(weight *. frame_mean)
      ~variance:(weight *. frame_variance) ~m ~ts
  in
  let lrd_part = Fbndp.process fbndp ~ts in
  let dar_marginal =
    Dar.gaussian_marginal
      ~mean:((1.0 -. weight) *. frame_mean)
      ~variance:((1.0 -. weight) *. frame_variance)
  in
  let dar_part =
    Dar.make ~name:"DAR(1)" dar_marginal { Dar.rho = dar_a; weights = [| 1.0 |] }
  in
  let process = Process.superpose ~name [ lrd_part; dar_part ] in
  { process; fbndp; dar_a; v }

let z ~a =
  assert (a > 0.0 && a < 1.0);
  build ~name:(Printf.sprintf "Z^%g" a) ~alpha:z_alpha ~m:15 ~v:1.0 ~dar_a:a

(* Reference lag-1 correlation: the v = 1, a = 0.8 point of the paper. *)
let v_reference_lag1 =
  let reference =
    build ~name:"V-ref" ~alpha:v_alpha ~m:15 ~v:1.0 ~dar_a:0.8
  in
  reference.process.Process.acf 1

let v ~v:ratio =
  assert (ratio > 0.0);
  (* Solve the composite lag-1 equation
     r(1) = w * r_X(1) + (1 - w) * a  for the DAR lag-1 [a]. *)
  let weight = ratio /. (ratio +. 1.0) in
  let fbndp =
    Fbndp.of_moments ~alpha:v_alpha ~mean:(weight *. frame_mean)
      ~variance:(weight *. frame_variance) ~m:15 ~ts
  in
  let r_x1 = Fbndp.frame_acf fbndp ~ts 1 in
  let dar_a = (v_reference_lag1 -. (weight *. r_x1)) /. (1.0 -. weight) in
  assert (dar_a > 0.0 && dar_a < 1.0);
  build ~name:(Printf.sprintf "V^%g" ratio) ~alpha:v_alpha ~m:15 ~v:ratio ~dar_a

let s_params ~a ~p =
  let { process; _ } = z ~a in
  Dar.fit ~target_acf:process.Process.acf ~p

let s ~a ~p =
  let params = s_params ~a ~p in
  let marginal =
    Dar.gaussian_marginal ~mean:frame_mean ~variance:frame_variance
  in
  Dar.make ~name:(Printf.sprintf "DAR(%d)~Z^%g" p a) marginal params

let l_params () =
  Fbndp.of_moments ~alpha:l_alpha ~mean:frame_mean ~variance:frame_variance
    ~m:30 ~ts

let l () =
  let params = l_params () in
  let process = Fbndp.process params ~ts in
  { process with Process.name = "L" }
