type t = {
  dist : Onoff_dist.t;
  rng : Numerics.Rng.t;
  mutable on : bool;
  mutable remaining : float;  (** time left in the current period *)
}

let create dist rng =
  {
    dist;
    rng;
    on = Numerics.Rng.bool rng;
    remaining = Onoff_dist.equilibrium_sample dist rng;
  }

let is_on t = t.on

let on_time t ~dt =
  assert (dt > 0.0);
  let acc = ref 0.0 in
  let left = ref dt in
  while !left > 0.0 do
    if t.remaining > !left then begin
      if t.on then acc := !acc +. !left;
      t.remaining <- t.remaining -. !left;
      left := 0.0
    end
    else begin
      if t.on then acc := !acc +. t.remaining;
      left := !left -. t.remaining;
      t.on <- not t.on;
      t.remaining <- Onoff_dist.sample t.dist t.rng
    end
  done;
  !acc
