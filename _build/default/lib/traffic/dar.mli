(** The discrete autoregressive process DAR(p) of Jacobs & Lewis
    (1978), the paper's Markov video model.

    The process is [S_n = V_n * S_(n - A_n) + (1 - V_n) * eps_n] where
    [V_n] is Bernoulli(rho), [A_n] picks a lag in [1..p] with
    probabilities [a_1..a_p], and [eps_n] is an i.i.d. draw from the
    marginal distribution.  Whatever the marginal, the autocorrelation
    function satisfies the Yule–Walker-type recursion
    [r(k) = sum_i rho * a_i * r(k - i)], so a DAR(p) can match the
    first [p] autocorrelations of any target process while keeping the
    exact target marginal. *)

type marginal = {
  sample : Numerics.Rng.t -> float;  (** i.i.d. innovation sampler *)
  mean : float;
  variance : float;
}

val gaussian_marginal : mean:float -> variance:float -> marginal
(** The paper's frame-size marginal: Normal(mean, variance). *)

val negative_binomial_marginal : mean:float -> variance:float -> marginal
(** The Heyman–Lakshman frame-size marginal (paper Section 6.1):
    negative binomial with the given moments; requires
    [variance > mean].  Heavier-tailed than the Gaussian at equal
    moments. *)

val gamma_marginal : mean:float -> variance:float -> marginal
(** Gamma frame sizes with the given moments — a continuous
    heavier-than-Gaussian alternative. *)

type params = {
  rho : float;  (** P(V_n = 1); for p = 1 this is the lag-1 correlation *)
  weights : float array;  (** a_1 .. a_p, non-negative, summing to 1 *)
}

val validate : params -> unit
(** Raises [Invalid_argument] if [rho] is outside [0, 1) or the weights
    are not a probability vector. *)

val order : params -> int

val acf : params -> int -> float
(** Analytic autocorrelation at lag [k >= 0] by the Yule–Walker
    recursion (O(k p) on first evaluation; results are memoized
    internally per call chain — use {!acf_fun} for repeated queries). *)

val acf_fun : params -> int -> float
(** A memoizing closure over {!acf}: repeated and increasing-lag
    queries cost amortised O(p) each. *)

val make : ?name:string -> marginal -> params -> Process.t
(** The DAR(p) frame process with the given marginal and correlation
    parameters.  Short-range dependent: [hurst = None]. *)

val fit : target_acf:(int -> float) -> p:int -> params
(** [fit ~target_acf ~p] solves the Yule–Walker system on the first [p]
    target autocorrelations under the DAR constraint
    [sum phi_i = rho, a_i = phi_i / rho].  Raises [Invalid_argument] if
    the solution is not a valid DAR parameterisation (some [phi_i < 0]
    or [rho] outside [0, 1)) — in that situation the target cannot be
    matched exactly by a DAR(p) and a lower order should be used. *)

val fit_process :
  ?name:string -> marginal -> target_acf:(int -> float) -> p:int -> Process.t
(** Convenience: {!fit} followed by {!make}. *)
