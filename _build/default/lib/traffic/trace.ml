type t = { frames : float array; ts : float; name : string }

let of_process process ~ts rng ~n =
  { frames = Process.generate process rng n; ts; name = process.Process.name }

let save_csv t ~path =
  let oc = open_out path in
  (try
     Printf.fprintf oc "# trace: %s\n# ts: %.17g\nframe,cells\n" t.name t.ts;
     Array.iteri (fun i x -> Printf.fprintf oc "%d,%.17g\n" i x) t.frames
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc

let load_csv ~path =
  let ic = open_in path in
  let name = ref "trace" and ts = ref 0.04 in
  let frames = ref [] in
  (try
     (try
        while true do
          let line = String.trim (input_line ic) in
          if line = "" then ()
          else if String.length line > 8 && String.sub line 0 8 = "# trace:" then
            name := String.trim (String.sub line 8 (String.length line - 8))
          else if String.length line > 5 && String.sub line 0 5 = "# ts:" then
            ts := float_of_string (String.trim (String.sub line 5 (String.length line - 5)))
          else if line.[0] = '#' || line = "frame,cells" then ()
          else begin
            match String.index_opt line ',' with
            | None -> failwith ("Trace.load_csv: malformed line: " ^ line)
            | Some i ->
                let v =
                  float_of_string
                    (String.sub line (i + 1) (String.length line - i - 1))
                in
                frames := v :: !frames
          end
        done
      with End_of_file -> ())
   with e ->
     close_in_noerr ic;
     raise e);
  close_in ic;
  { frames = Array.of_list (List.rev !frames); ts = !ts; name = !name }

let mean t = Numerics.Float_array.mean t.frames
let variance t = Numerics.Float_array.variance t.frames
let acf t ~max_lag = Stats.Acf.autocorrelation_fft t.frames ~max_lag

let aggregate t ~block =
  {
    frames = Numerics.Float_array.aggregate t.frames ~block;
    ts = t.ts *. float_of_int block;
    name = Printf.sprintf "%s[x%d]" t.name block;
  }
