type params = {
  beta : float;
  session_rate : float;
  cells_per_session : float;
}

let create ~beta ~session_rate ?(cells_per_session = 1.0) () =
  if not (beta > 1.0 && beta < 2.0) then
    invalid_arg (Printf.sprintf "Mg_infinity: beta = %g outside (1, 2)" beta);
  if not (session_rate > 0.0 && cells_per_session > 0.0) then
    invalid_arg "Mg_infinity: rates must be positive";
  { beta; session_rate; cells_per_session }

(* Sum_{n >= n0} n^(-beta), exact head plus Euler–Maclaurin tail. *)
let zeta_tail ~beta ~n0 =
  assert (n0 >= 1);
  let cut = Stdlib.max (n0 + 64) 256 in
  let head = ref 0.0 in
  for n = n0 to cut - 1 do
    head := !head +. (float_of_int n ** -.beta)
  done;
  let c = float_of_int cut in
  (* integral + half-term + first derivative correction *)
  let tail =
    (c ** (1.0 -. beta)) /. (beta -. 1.0)
    +. (0.5 *. (c ** -.beta))
    -. (beta /. 12.0 *. (c ** (-.beta -. 1.0)))
  in
  !head +. tail

(* E[(L - k)^+] = sum_{j >= k} P(L > j) = sum_{n >= k+1} n^(-beta). *)
let mean_excess t k = zeta_tail ~beta:t.beta ~n0:(k + 1)
let mean_holding t = mean_excess t 0

let acf t k =
  assert (k >= 0);
  if k = 0 then 1.0 else mean_excess t k /. mean_holding t

let hurst t = (3.0 -. t.beta) /. 2.0

let frame_mean t = t.cells_per_session *. t.session_rate *. mean_holding t

let frame_variance t =
  (* Active-session count is Poisson; scaling by c multiplies the
     variance by c^2. *)
  t.cells_per_session *. t.cells_per_session *. t.session_rate
  *. mean_holding t

let sample_holding t rng =
  (* Inverse transform of P(L > j) = (1+j)^(-beta). *)
  let u = Numerics.Rng.float rng in
  let l = int_of_float (ceil ((u ** (-1.0 /. t.beta)) -. 1.0)) in
  Stdlib.max 1 l

(* Residual holding time of a session in progress at time 0: the
   length-biased residual decomposition for the discrete Pareto gives
   P(residual = r) proportional to P(L > r - 1), r >= 1.  The residual
   has infinite mean, so inversion must not scan linearly: we binary
   search the monotone partial-sum function instead. *)
let sample_equilibrium_residual t rng =
  let total = mean_holding t in
  let u = Numerics.Rng.float rng *. total in
  (* partial r = sum_{n=1..r} n^-beta, the unnormalised residual CDF. *)
  let partial r = total -. zeta_tail ~beta:t.beta ~n0:(r + 1) in
  if u <= partial 1 then 1
  else begin
    (* Exponential bracket then bisection on the smallest r with
       partial r >= u. *)
    let rec bracket hi = if partial hi >= u then hi else bracket (2 * hi) in
    let hi = bracket 2 in
    let rec bisect lo hi =
      (* invariant: partial lo < u <= partial hi *)
      if hi - lo <= 1 then hi
      else begin
        let mid = lo + ((hi - lo) / 2) in
        if partial mid >= u then bisect lo mid else bisect mid hi
      end
    in
    bisect (hi / 2) hi
  end

let process t =
  let spawn rng =
    (* Departure counts are scheduled in a hashtable keyed by absolute
       frame index; holding times are unbounded so a ring buffer would
       not do. *)
    let departures : (int, int) Hashtbl.t = Hashtbl.create 1024 in
    let schedule at =
      Hashtbl.replace departures at
        (1 + Option.value ~default:0 (Hashtbl.find_opt departures at))
    in
    let now = ref 0 in
    let active = ref 0 in
    (* Stationary start: Poisson(rate * E L) sessions in progress, each
       with an equilibrium residual. *)
    let initial =
      Numerics.Dist.poisson rng ~mean:(t.session_rate *. mean_holding t)
    in
    for _ = 1 to initial do
      incr active;
      schedule (!now + sample_equilibrium_residual t rng)
    done;
    fun () ->
      (* Departures scheduled for this slot happen first: a session
         arriving at slot s with holding L occupies slots s .. s+L-1
         and its departure is scheduled at s+L. *)
      (match Hashtbl.find_opt departures !now with
      | Some d ->
          active := !active - d;
          Hashtbl.remove departures !now
      | None -> ());
      let arrivals = Numerics.Dist.poisson rng ~mean:t.session_rate in
      for _ = 1 to arrivals do
        incr active;
        schedule (!now + sample_holding t rng)
      done;
      let count = !active in
      incr now;
      t.cells_per_session *. float_of_int count
  in
  {
    Process.name = Printf.sprintf "M/G/inf(beta=%g)" t.beta;
    mean = frame_mean t;
    variance = frame_variance t;
    acf = acf t;
    hurst = Some (hurst t);
    spawn;
  }
