(** Fractional Gaussian noise — the canonical exact-LRD Gaussian
    process (Taqqu), with autocorrelation
    [r(k) = (1/2)((k+1)^2H - 2 k^2H + (k-1)^2H)], i.e. the paper's
    eq. (2) with [g(T_s) = 1].

    Used as the reference exact-LRD model for validating the Weibull
    asymptotic (paper eq. 6 and Appendix) independently of the FBNDP
    construction. *)

val acf : h:float -> int -> float
(** Analytic autocorrelation at lag [k >= 0] for Hurst parameter
    [0 < h < 1]. *)

val sample_davies_harte :
  Numerics.Rng.t -> h:float -> n:int -> float array
(** Exact sampling of [n] standard-fGn values by circulant embedding
    (Davies & Harte 1987): O(n log n), exact covariance.  Raises
    [Failure] if the circulant eigenvalues go negative (does not happen
    for fGn autocovariances). *)

val sample_hosking : Numerics.Rng.t -> h:float -> n:int -> float array
(** Exact sampling by the Hosking (1984) recursive method: O(n^2),
    used in tests to cross-validate the FFT path. *)

val process :
  ?block:int -> h:float -> mean:float -> variance:float -> unit -> Process.t
(** fGn as a frame process with the given marginal moments.  Sample
    paths are produced in Davies–Harte blocks of length [block]
    (default 65536); correlation across block boundaries is not
    preserved, which biases correlations only at lags comparable to the
    block length. *)
